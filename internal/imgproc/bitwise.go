package imgproc

import (
	"fmt"

	"seaice/internal/raster"
)

// And computes the per-pixel bitwise AND of two rasters (OpenCV
// bitwise_and). For binary 0/255 masks this is set intersection.
func And(a, b *raster.Gray) (*raster.Gray, error) {
	if a.W != b.W || a.H != b.H {
		return nil, fmt.Errorf("imgproc: And size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	out := raster.NewGray(a.W, a.H)
	for i := range a.Pix {
		out.Pix[i] = a.Pix[i] & b.Pix[i]
	}
	return out, nil
}

// Or computes the per-pixel bitwise OR (set union on binary masks).
func Or(a, b *raster.Gray) (*raster.Gray, error) {
	if a.W != b.W || a.H != b.H {
		return nil, fmt.Errorf("imgproc: Or size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	out := raster.NewGray(a.W, a.H)
	for i := range a.Pix {
		out.Pix[i] = a.Pix[i] | b.Pix[i]
	}
	return out, nil
}

// Not computes the per-pixel bitwise complement (mask inversion).
func Not(a *raster.Gray) *raster.Gray {
	out := raster.NewGray(a.W, a.H)
	for i := range a.Pix {
		out.Pix[i] = ^a.Pix[i]
	}
	return out
}

// ApplyMask keeps src where mask is nonzero and zeroes it elsewhere
// (OpenCV bitwise_and(src, src, mask=mask)).
func ApplyMask(src, mask *raster.Gray) (*raster.Gray, error) {
	if src.W != mask.W || src.H != mask.H {
		return nil, fmt.Errorf("imgproc: ApplyMask size mismatch %dx%d vs %dx%d", src.W, src.H, mask.W, mask.H)
	}
	out := raster.NewGray(src.W, src.H)
	for i := range src.Pix {
		if mask.Pix[i] != 0 {
			out.Pix[i] = src.Pix[i]
		}
	}
	return out, nil
}

// AddWeighted blends two rasters: alpha*a + beta*b + gamma, saturating to
// [0,255] (OpenCV addWeighted); used to recombine the de-hazed value
// channel with the original.
func AddWeighted(a *raster.Gray, alpha float64, b *raster.Gray, beta, gamma float64) (*raster.Gray, error) {
	if a.W != b.W || a.H != b.H {
		return nil, fmt.Errorf("imgproc: AddWeighted size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	out := raster.NewGray(a.W, a.H)
	for i := range a.Pix {
		out.Pix[i] = clampU8(alpha*float64(a.Pix[i]) + beta*float64(b.Pix[i]) + gamma)
	}
	return out, nil
}

// Subtract computes saturating a-b (OpenCV subtract).
func Subtract(a, b *raster.Gray) (*raster.Gray, error) {
	if a.W != b.W || a.H != b.H {
		return nil, fmt.Errorf("imgproc: Subtract size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	out := raster.NewGray(a.W, a.H)
	for i := range a.Pix {
		d := int(a.Pix[i]) - int(b.Pix[i])
		if d < 0 {
			d = 0
		}
		out.Pix[i] = uint8(d)
	}
	return out, nil
}

// CountNonZero returns the number of nonzero pixels, used for mask
// coverage statistics such as the cloud-fraction bucketing in Table V.
func CountNonZero(a *raster.Gray) int {
	n := 0
	for _, v := range a.Pix {
		if v != 0 {
			n++
		}
	}
	return n
}
