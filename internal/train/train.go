// Package train provides the training loop machinery shared by the
// serial and distributed trainers: deterministic batch iteration over
// tile datasets, epoch bookkeeping, and evaluation against ground truth.
//
// Determinism guarantees (precision-scoped): the batch schedule is pure
// index math (BatchIndices) seeded per epoch, and Fit is defined as
// FitStream over the in-memory batcher — so a streamed run
// (internal/pipeline) and an in-memory run at the same precision execute
// the identical update sequence and produce bit-identical weights; what
// overlaps with the optimizer steps is the only difference. Training is
// generic over the compute precision: float64 is the reference path, and
// float32 (with Config.MasterWeights keeping float64 master copies in
// Adam — mixed precision) tracks it within the tolerance asserted by
// TestMixedPrecisionLossParity while remaining bit-deterministic at any
// worker count.
package train

import (
	"fmt"

	"seaice/internal/metrics"
	"seaice/internal/nn"
	"seaice/internal/noise"
	"seaice/internal/raster"
	"seaice/internal/tensor"
	"seaice/internal/unet"
)

// Sample is one training tile: an RGB image and its per-pixel labels.
type Sample struct {
	Image  *raster.RGB
	Labels *raster.Labels
}

// ToTensor packs samples into an (N,3,H,W) input tensor (channels scaled
// to [0,1]) and a flat label slice. All samples must share dimensions.
func ToTensor[S tensor.Scalar](samples []Sample) (*tensor.Tensor[S], []uint8, error) {
	if len(samples) == 0 {
		return nil, nil, fmt.Errorf("train: empty batch")
	}
	w, h := samples[0].Image.W, samples[0].Image.H
	x := tensor.New[S](len(samples), 3, h, w)
	labels := make([]uint8, len(samples)*h*w)
	plane := h * w
	for si, s := range samples {
		if s.Image.W != w || s.Image.H != h {
			return nil, nil, fmt.Errorf("train: sample %d is %dx%d, batch is %dx%d", si, s.Image.W, s.Image.H, w, h)
		}
		if s.Labels.W != w || s.Labels.H != h {
			return nil, nil, fmt.Errorf("train: sample %d labels are %dx%d, image is %dx%d", si, s.Labels.W, s.Labels.H, w, h)
		}
		for p := 0; p < plane; p++ {
			x.Data[(si*3+0)*plane+p] = S(s.Image.Pix[3*p]) / 255
			x.Data[(si*3+1)*plane+p] = S(s.Image.Pix[3*p+1]) / 255
			x.Data[(si*3+2)*plane+p] = S(s.Image.Pix[3*p+2]) / 255
			labels[si*plane+p] = uint8(s.Labels.Pix[p])
		}
	}
	return x, labels, nil
}

// Batcher yields shuffled mini-batches, reshuffling every epoch with a
// deterministic per-epoch permutation (the dataloader of §IV-A).
type Batcher struct {
	samples   []Sample
	batchSize int
	seed      uint64
}

// NewBatcher wraps a dataset; batchSize must be positive.
func NewBatcher(samples []Sample, batchSize int, seed uint64) (*Batcher, error) {
	if batchSize <= 0 {
		return nil, fmt.Errorf("train: batch size %d", batchSize)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("train: empty dataset")
	}
	return &Batcher{samples: samples, batchSize: batchSize, seed: seed}, nil
}

// NumBatches returns batches per epoch (the final short batch is kept).
func (b *Batcher) NumBatches() int {
	return (len(b.samples) + b.batchSize - 1) / b.batchSize
}

// Len returns the dataset size.
func (b *Batcher) Len() int { return len(b.samples) }

// BatchIndices returns the deterministic sample-index batches of one
// epoch for a dataset of n samples — the index math behind Batcher.Epoch,
// exposed so the streaming pipeline (internal/pipeline) can compute which
// samples batch k of epoch e needs before the data exists. Both paths use
// this one function, so they agree by construction.
func BatchIndices(n, batchSize int, seed uint64, epoch int) [][]int {
	rng := noise.NewRNG(seed, uint64(epoch)+0xba7c4)
	perm := rng.Perm(n)
	var out [][]int
	for lo := 0; lo < len(perm); lo += batchSize {
		hi := lo + batchSize
		if hi > len(perm) {
			hi = len(perm)
		}
		out = append(out, perm[lo:hi])
	}
	return out
}

// Epoch returns the shuffled batches of the given epoch.
func (b *Batcher) Epoch(epoch int) [][]Sample {
	var out [][]Sample
	for _, idx := range BatchIndices(len(b.samples), b.batchSize, b.seed, epoch) {
		batch := make([]Sample, len(idx))
		for i, j := range idx {
			batch[i] = b.samples[j]
		}
		out = append(out, batch)
	}
	return out
}

// Config controls serial training.
type Config struct {
	Epochs    int
	BatchSize int
	LR        float64
	Seed      uint64
	// MasterWeights keeps float64 master copies of the weights in the
	// optimizer — the mixed-precision recipe for float32 training. It has
	// no effect on the float64 path (the master would equal the weights).
	MasterWeights bool
	// Focal, if non-nil, trains with the focal loss at these parameters
	// instead of plain softmax cross-entropy — the class-imbalance
	// recipe for scenes where thin ice is rare. nil keeps the default
	// criterion already set on the model.
	Focal *nn.FocalParams
	// Progress, if non-nil, receives per-epoch mean loss.
	Progress func(epoch int, loss float64)
}

// Result summarizes a training run.
type Result struct {
	EpochLosses []float64
	Steps       int
}

// PackedBatch is one tensor-ready mini-batch: the (N,3,H,W) input and the
// flat label vector ToTensor produces.
type PackedBatch[S tensor.Scalar] struct {
	X      *tensor.Tensor[S]
	Labels []uint8
}

// BatchSource yields the deterministic mini-batch sequence of each epoch.
// Implementations may assemble batches concurrently with consumption —
// the streaming pipeline's double-buffered assembler packs batch k+1
// while the trainer computes batch k — but the sequence of batches an
// epoch yields must not depend on timing.
type BatchSource[S tensor.Scalar] interface {
	// Epoch returns a pull iterator over the epoch's packed batches; the
	// iterator returns (nil, nil) after the last batch. Each epoch must
	// be fully drained before the next is opened.
	Epoch(epoch int) func() (*PackedBatch[S], error)
}

// batcherSource adapts the in-memory Batcher to BatchSource, packing each
// batch on demand. Fit runs on this adapter, so the streaming and
// in-memory training paths execute the identical update sequence.
type batcherSource[S tensor.Scalar] struct{ b *Batcher }

func (s batcherSource[S]) Epoch(epoch int) func() (*PackedBatch[S], error) {
	batches := s.b.Epoch(epoch)
	next := 0
	return func() (*PackedBatch[S], error) {
		if next >= len(batches) {
			return nil, nil
		}
		x, labels, err := ToTensor[S](batches[next])
		if err != nil {
			return nil, err
		}
		next++
		return &PackedBatch[S]{X: x, Labels: labels}, nil
	}
}

// Fit trains the model on the samples with Adam — the single-GPU
// baseline of Table III.
func Fit[S tensor.Scalar](m *unet.Model[S], samples []Sample, cfg Config) (*Result, error) {
	batcher, err := NewBatcher(samples, cfg.BatchSize, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return FitStream(m, batcherSource[S]{batcher}, cfg)
}

// FitStream trains the model from a BatchSource. The batch sequence — and
// therefore the trained weights — is identical to Fit on the equivalent
// in-memory dataset; only where the batches come from (and what overlaps
// with the optimizer steps) differs. cfg.BatchSize and cfg.Seed are
// carried by the source (e.g. pipeline.TrainPlan's BatchSize/BatchSeed)
// and ignored here.
func FitStream[S tensor.Scalar](m *unet.Model[S], src BatchSource[S], cfg Config) (*Result, error) {
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("train: epochs %d", cfg.Epochs)
	}
	if cfg.Focal != nil {
		m.SetCriterion(nn.NewFocal[S](*cfg.Focal))
	}
	params := m.Params()
	opt := nn.NewAdam[S](cfg.LR)
	opt.Master = cfg.MasterWeights
	res := &Result{}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		total, n := 0.0, 0
		next := src.Epoch(epoch)
		for {
			batch, err := next()
			if err != nil {
				return nil, err
			}
			if batch == nil {
				break
			}
			nn.ZeroGrads(params)
			loss, err := m.LossAndGrad(batch.X, batch.Labels)
			if err != nil {
				return nil, err
			}
			opt.Step(params)
			total += loss
			n++
			res.Steps++
		}
		if n == 0 {
			return nil, fmt.Errorf("train: epoch %d yielded no batches", epoch)
		}
		mean := total / float64(n)
		res.EpochLosses = append(res.EpochLosses, mean)
		if cfg.Progress != nil {
			cfg.Progress(epoch, mean)
		}
	}
	return res, nil
}

// Evaluate predicts every sample and accumulates a confusion matrix
// against the provided ground truth (which may differ from the labels
// the model was trained on — e.g. U-Net-Auto validated against manual
// labels). Prediction runs through a unet.Session — the fused-kernel
// buffer-reusing inference engine. Tile sizes the session rejects (not
// divisible by 2^Depth) are reported as errors; the training-path
// forward has the identical requirement, so there is no slower shape to
// fall back to (it would panic in the pooling layers).
func Evaluate[S tensor.Scalar](m *unet.Model[S], samples []Sample) (*metrics.Confusion, error) {
	conf := metrics.NewConfusion(int(raster.NumClasses))
	sess := unet.NewSession(m)
	for i := range samples {
		x, labels, err := ToTensor[S](samples[i : i+1])
		if err != nil {
			return nil, err
		}
		pred, err := sess.Predict(x)
		if err != nil {
			return nil, err
		}
		for p, want := range labels {
			if err := conf.Add(raster.Class(want), raster.Class(pred[p])); err != nil {
				return nil, fmt.Errorf("train: evaluate sample %d: %w", i, err)
			}
		}
	}
	return conf, nil
}
