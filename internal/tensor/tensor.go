// Package tensor provides the dense NCHW tensors underneath the
// from-scratch U-Net, generic over the two compute precisions the stack
// supports (Tensor[float32] and Tensor[float64]). It deliberately
// implements only what a CNN training stack needs — shape bookkeeping, a
// cache-aware matrix multiply, and the im2col/col2im transforms that turn
// convolutions into matrix products — with no autograd: each layer in
// internal/nn derives its own backward pass, validated by
// finite-difference tests.
//
// Precision policy: float64 is the master/reference precision — the
// kernels' float64 instantiations are the exact pre-generics engine and
// remain bit-identical to the serial reference kernels in ref.go. float32
// is the compute precision for training steps and serving: it halves
// cache-line and memory-bus traffic through the same register-blocked
// kernels. Guarantees are precision-scoped: within one precision, the
// parallel kernels fan out over disjoint output panels/stripes on an
// explicit pool (pool.Shared() in training) and accumulate every output
// element in the serial reference order, so results are bit-identical at
// any worker count (property-tested per precision). Across precisions
// only tolerance bounds hold — see the PrecisionTolerance doc below.
package tensor

import (
	"fmt"

	"seaice/internal/noise"
)

// Scalar is the constraint the numeric stack is generic over: the two
// floating-point compute precisions.
type Scalar interface {
	float32 | float64
}

// F64 and F32 name the two tensor instantiations. float64 is the
// master/reference precision; float32 is the bandwidth-saving compute
// precision.
type (
	F64 = Tensor[float64]
	F32 = Tensor[float32]
)

// PrecisionTolerance documents the cross-precision guarantee: a float32
// kernel result y32 matches the float64 reference y64 within
//
//	|y32 − y64| ≤ PrecisionTolerance · k · max(|y64|, 1)
//
// where k is the accumulation length of the output element (the shared k
// dimension of a GEMM, or the tap count of a convolution). The bound is
// the standard worst-case rounding model k·eps with eps = 2⁻²³ ≈ 1.19e-7
// for float32; the property tests assert it at every worker count. Within
// one precision results are bit-identical at any worker count — the
// bit-identity guarantee of the pre-generics engine, now precision-scoped.
const PrecisionTolerance = 1.2e-7

// IsF32 reports whether the instantiation S is float32 — the one
// precision-dispatch helper the stack shares (layers pick the Winograd
// fast path with it, checkpoints record the precision name).
func IsF32[S Scalar]() bool {
	_, ok := any(S(0)).(float32)
	return ok
}

// Tensor is a dense row-major tensor of S.
type Tensor[S Scalar] struct {
	Shape []int
	Data  []S
}

// New allocates a zeroed tensor with the given shape. The type argument
// selects the precision: New[float64](...) for the master path,
// New[float32](...) for the compute path.
func New[S Scalar](shape ...int) *Tensor[S] {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panicBadShape(s, shape)
		}
		n *= s
	}
	return &Tensor[S]{Shape: append([]int(nil), shape...), Data: make([]S, n)}
}

// panicBadShape reports an invalid dimension. It copies the shape before
// formatting so the caller's variadic slice never escapes to the heap —
// that keeps New and Grow allocation-free on their hot paths, which the
// training engine's zero-steady-state-alloc guarantee depends on.
func panicBadShape(dim int, shape []int) {
	panic(fmt.Sprintf("tensor: invalid dimension %d in %v", dim, append([]int(nil), shape...)))
}

// FromData wraps existing data; len(data) must match the shape volume.
func FromData[S Scalar](data []S, shape ...int) *Tensor[S] {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor[S]{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the number of elements.
func (t *Tensor[S]) Len() int { return len(t.Data) }

// Clone returns a deep copy.
func (t *Tensor[S]) Clone() *Tensor[S] {
	c := New[S](t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Zero clears all elements in place.
func (t *Tensor[S]) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// SameShape reports whether two tensors have identical shapes.
func (t *Tensor[S]) SameShape(o *Tensor[S]) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Dim returns the size of axis i.
func (t *Tensor[S]) Dim(i int) int { return t.Shape[i] }

// Reshape returns a view with a new shape of equal volume (shares data).
func (t *Tensor[S]) Reshape(shape ...int) *Tensor[S] {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v", t.Shape, len(t.Data), shape))
	}
	return &Tensor[S]{Shape: append([]int(nil), shape...), Data: t.Data}
}

// AddInPlace accumulates o into t element-wise.
func (t *Tensor[S]) AddInPlace(o *Tensor[S]) {
	if len(t.Data) != len(o.Data) {
		panic(fmt.Sprintf("tensor: add size mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// Scale multiplies every element by s in place.
func (t *Tensor[S]) Scale(s S) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// FillRandn fills the tensor with N(0, std) values from a seeded RNG. The
// draw happens in float64 and is rounded to S, so a float32 tensor filled
// from the same seed holds exactly the float32 rounding of the float64
// initialization — the property the cross-precision parity tests rely on.
func (t *Tensor[S]) FillRandn(rng *noise.RNG, std float64) {
	for i := range t.Data {
		t.Data[i] = S(rng.NormFloat64() * std)
	}
}

// Grow resizes *buf to the given shape, reallocating only when the backing
// array is too small; contents are unspecified. It is the grow-only scratch
// buffer primitive behind the training engine's zero-steady-state-alloc
// guarantee: layers call Grow on the same pointer every step and after the
// first step no allocation happens. Returns *buf for convenience.
func Grow[S Scalar](buf **Tensor[S], shape ...int) *Tensor[S] {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panicBadShape(s, shape)
		}
		n *= s
	}
	t := *buf
	if t == nil || cap(t.Data) < n {
		*buf = New[S](shape...)
		return *buf
	}
	t.Data = t.Data[:n]
	t.Shape = append(t.Shape[:0], shape...)
	return t
}

// Convert copies src into a fresh tensor of the target precision,
// rounding (float64→float32) or widening exactly (float32→float64).
func Convert[D, S Scalar](src *Tensor[S]) *Tensor[D] {
	dst := New[D](src.Shape...)
	for i, v := range src.Data {
		dst.Data[i] = D(v)
	}
	return dst
}
