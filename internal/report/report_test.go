package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := NewTable("Table X: demo", "config", "time (s)", "speedup")
	t.AddRow("1x1", F(108.0), F(1.0))
	t.AddRow("4x4", F(12.0), F(9.0))
	return t
}

func TestStringAligned(t *testing.T) {
	s := sample().String()
	if !strings.Contains(s, "Table X: demo") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	// header and rows share the column start positions
	if !strings.HasPrefix(lines[1], "config") {
		t.Fatalf("header line %q", lines[1])
	}
	if !strings.Contains(lines[3], "108.00") {
		t.Fatalf("row line %q", lines[3])
	}
}

func TestCSV(t *testing.T) {
	c := sample().CSV()
	lines := strings.Split(strings.TrimRight(c, "\n"), "\n")
	if lines[0] != "config,time (s),speedup" {
		t.Fatalf("header %q", lines[0])
	}
	if lines[1] != "1x1,108.00,1.00" {
		t.Fatalf("row %q", lines[1])
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,y", `say "hi"`)
	c := tb.CSV()
	if !strings.Contains(c, `"x,y"`) || !strings.Contains(c, `"say ""hi"""`) {
		t.Fatalf("quoting wrong: %q", c)
	}
}

func TestMarkdown(t *testing.T) {
	m := sample().Markdown()
	if !strings.Contains(m, "| config | time (s) | speedup |") {
		t.Fatalf("markdown header wrong:\n%s", m)
	}
	if !strings.Contains(m, "|---|---|---|") {
		t.Fatalf("markdown separator wrong:\n%s", m)
	}
}

func TestShortRowPadded(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only-one")
	s := tb.String()
	if !strings.Contains(s, "only-one") {
		t.Fatalf("row lost: %s", s)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.234) != "1.23" || F1(1.26) != "1.3" || Pct(0.9897) != "98.97%" || I(42) != "42" {
		t.Fatal("formatters changed")
	}
}
