// Pipeline: the full Ross Sea workflow end to end at demonstration scale —
// scene campaign → filter → auto-label → train U-Net-Man and U-Net-Auto →
// validate both on manual labels (the paper's Table IV comparison) → run
// scene-level inference with the trained model (Fig 9).
//
// The campaign flows through the streaming sharded pipeline
// (internal/pipeline): core.RunAccuracy overlaps scene generation,
// filtering, labeling, and tiling across stage workers, and the first
// section below additionally demonstrates training that consumes its
// first batches while later shards are still being labeled
// (train.FitStream over Stream.TrainBatches). cmd/seaice-pipeline is the
// full orchestrator with sharding knobs and per-stage resume.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"seaice/internal/core"
	"seaice/internal/dataset"
	"seaice/internal/metrics"
	"seaice/internal/pipeline"
	"seaice/internal/scene"
	"seaice/internal/train"
	"seaice/internal/unet"
)

func main() {
	log.SetFlags(0)

	// Streamed label→train overlap on a tiny campaign: the trainer's
	// double-buffered batch source starts fitting as soon as the scenes
	// its first batches need are labeled.
	cc := scene.DefaultCollection(7)
	cc.Scenes = 4
	cc.W, cc.H = 64, 64
	build := dataset.DefaultBuild()
	build.TileSize = 16
	st, err := pipeline.New(pipeline.CollectionSource{Cfg: cc}, pipeline.Config{
		Build: build,
		Plan: &pipeline.TrainPlan{
			TrainFrac: 0.8, SplitSeed: 7,
			TrainTiles: 24, TrainSeed: 7,
			Image: dataset.OriginalImages, Labels: dataset.AutoLabels,
			BatchSize: 6, BatchSeed: 7,
		},
		Progress: func(ev pipeline.Event) {
			if ev.Kind == "shard" {
				log.Printf("» labeled shard %d/%d", ev.Shard+1, ev.Shards)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	batches, err := st.TrainBatches()
	if err != nil {
		log.Fatal(err)
	}
	demo, err := unet.New[float64](unet.Config{Depth: 2, BaseChannels: 4, InChannels: 3, Classes: 3, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fitRes, err := train.FitStream(demo, batches, train.Config{Epochs: 2, BatchSize: 6, LR: 0.01, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed label+train overlap: loss %.4f → %.4f over %d steps\n\n",
		fitRes.EpochLosses[0], fitRes.EpochLosses[len(fitRes.EpochLosses)-1], fitRes.Steps)

	cfg := core.QuickAccuracyConfig(42)
	cfg.Progress = func(stage string) { log.Printf("» %s", stage) }

	res, err := core.RunAccuracy(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(core.Table4Report(res))
	fmt.Println(core.Table5Report(res))
	fmt.Println(core.SSIMReport(res))

	// Scene-level inference with the auto-label-trained model.
	sceneCfg := scene.DefaultConfig(4242)
	sceneCfg.W, sceneCfg.H = 256, 256
	sc, err := scene.Generate(sceneCfg)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := core.Inference(res.UNetAuto, sc.Image, cfg.Build.TileSize, dataset.DefaultBuild())
	if err != nil {
		log.Fatal(err)
	}
	acc, err := metrics.PixelAccuracy(sc.Truth, pred)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scene-level inference (U-Net-Auto, unseen %.0f%%-cloudy scene): %.2f%% accuracy\n",
		100*sc.CloudFraction, 100*acc)
}
