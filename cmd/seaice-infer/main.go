// Command seaice-infer reproduces the paper's inference workflow (Fig 9):
// it takes a big scene (a PNG, or a freshly generated synthetic scene),
// splits it into tiles, runs the thin-cloud/shadow filter, classifies
// every tile with a trained U-Net checkpoint, and stitches the prediction
// back into a scene-sized label map.
//
// Usage:
//
//	seaice-infer -ckpt unet.ckpt -seed 99 -out pred.png
//	seaice-infer -ckpt unet.ckpt -in scene.png -out pred.png
//	seaice-infer -ckpt unet.ckpt -precision f64   # float64 reference numerics
//
// Inference runs in float32 by default (the serving hot path's
// precision); checkpoints of either precision load into either.
package main

import (
	"flag"
	"fmt"
	"log"

	"seaice/internal/core"
	"seaice/internal/dataset"
	"seaice/internal/metrics"
	"seaice/internal/raster"
	"seaice/internal/scene"
	"seaice/internal/tensor"
	"seaice/internal/unet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("seaice-infer: ")

	var (
		ckpt      = flag.String("ckpt", "unet.ckpt", "U-Net checkpoint from seaice-train")
		in        = flag.String("in", "", "input scene PNG (empty: generate a synthetic scene)")
		size      = flag.Int("size", 256, "generated scene size (when -in is empty)")
		tile      = flag.Int("tile", 32, "inference tile size")
		seed      = flag.Uint64("seed", 99, "generated scene seed")
		out       = flag.String("out", "prediction.png", "output label-map PNG")
		precision = flag.String("precision", "f32", "inference precision: f32 | f64")
	)
	flag.Parse()

	switch *precision {
	case "f32":
		run[float32](*ckpt, *in, *size, *tile, *seed, *out)
	case "f64":
		run[float64](*ckpt, *in, *size, *tile, *seed, *out)
	default:
		log.Fatalf("unknown precision %q (want f32 or f64)", *precision)
	}
}

// run loads the checkpoint and performs the Fig 9 workflow in the chosen
// compute precision.
func run[S tensor.Scalar](ckpt, in string, size, tile int, seed uint64, out string) {
	model, err := unet.LoadFile[S](ckpt)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded %d-conv-layer U-Net (%d parameters)", model.NumConvLayers(), model.NumParams())

	var img *raster.RGB
	var truth *raster.Labels
	if in != "" {
		img, err = raster.ReadPNG(in)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		cfg := scene.DefaultConfig(seed)
		cfg.W, cfg.H = size, size
		sc, err := scene.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		img, truth = sc.Image, sc.Truth
		log.Printf("generated synthetic scene (cloud fraction %.1f%%)", 100*sc.CloudFraction)
	}

	pred, err := core.Inference(model, img, tile, dataset.DefaultBuild())
	if err != nil {
		log.Fatal(err)
	}
	if err := pred.Render().WritePNG(out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prediction written to %s\n", out)

	if truth != nil {
		acc, err := metrics.PixelAccuracy(truth, pred)
		if err != nil {
			log.Fatal(err)
		}
		counts := pred.Counts()
		fmt.Printf("accuracy vs ground truth: %.2f%%\n", 100*acc)
		fmt.Printf("class cover: water %.1f%%, thin %.1f%%, thick %.1f%%\n",
			100*float64(counts[raster.ClassWater])/float64(len(pred.Pix)),
			100*float64(counts[raster.ClassThinIce])/float64(len(pred.Pix)),
			100*float64(counts[raster.ClassThickIce])/float64(len(pred.Pix)))
	}
}
