// Package perfmodel holds the calibrated analytic performance models that
// let the repository regenerate the paper's speedup tables on hardware the
// paper's testbeds (a 4-core i5 workstation, a Google Cloud Dataproc
// cluster, an NVIDIA DGX A100) do not resemble. Every model is a small,
// interpretable formula — Amdahl serial fractions, SMT yield, per-core
// memory contention, ring all-reduce cost — whose constants were fitted to
// the paper's published numbers; each fit is derived in the comments and
// validated against the paper in the package tests.
//
// Determinism guarantee: every model is a closed-form function of its
// arguments — no clocks, no randomness, no host-speed dependence — so
// projected tables are bit-reproducible on any machine.
//
// The models answer "how long would this stage take on the paper's
// hardware", and drive the virtual clock of internal/cluster and the
// simulated GPUs of internal/ddp. The *work* the simulated components
// perform is real; only the clock is modeled.
package perfmodel

// SMTMachine models a workstation with a fixed number of physical cores
// plus simultaneous multithreading: hardware threads beyond the physical
// core count each contribute only SMTYield of a core. Together with an
// Amdahl serial fraction this reproduces Table I's multiprocessing curve.
type SMTMachine struct {
	PhysCores  int     // physical cores (paper: 4-core 2 GHz i5)
	SMTYield   float64 // marginal throughput of a hyperthread (0..1)
	SerialFrac float64 // Amdahl serial fraction of the workload
}

// PaperWorkstation returns the Table I machine model. Fit derivation:
// with eff(n) = min(n,4) + max(0, n-4)·y, speedup(n) = 1/(f + (1-f)/eff).
// The paper's speedups 2.0@2, 3.7@4, 4.2@6, 4.5@8 are matched by
// f = 0.027 (serial fraction: result aggregation in the parent process)
// and y = 0.27 (hyperthread yield), giving 1.95/3.70/4.14/4.57.
func PaperWorkstation() SMTMachine {
	return SMTMachine{PhysCores: 4, SMTYield: 0.27, SerialFrac: 0.027}
}

// EffectiveCores returns the throughput, in core-equivalents, of running
// n processes on the machine.
func (m SMTMachine) EffectiveCores(n int) float64 {
	if n <= 0 {
		return 0
	}
	if n <= m.PhysCores {
		return float64(n)
	}
	return float64(m.PhysCores) + float64(n-m.PhysCores)*m.SMTYield
}

// Speedup predicts the parallel speedup of the auto-labeling workload
// with n worker processes.
func (m SMTMachine) Speedup(n int) float64 {
	eff := m.EffectiveCores(n)
	if eff <= 0 {
		return 0
	}
	return 1 / (m.SerialFrac + (1-m.SerialFrac)/eff)
}

// Time predicts the parallel wall-clock time given the sequential time.
func (m SMTMachine) Time(sequential float64, n int) float64 {
	return sequential / m.Speedup(n)
}

// SparkStage models one stage of the paper's PySpark auto-labeling job on
// the Google Cloud Dataproc cluster (Table II). Stage time for E executors
// with C cores each is
//
//	t(E,C) = Serial + (Work/(E·C)) · (1 + Contention/(E·C))
//
// Serial is driver-side coordination that does not parallelize, Work is
// the parallelizable payload, and Contention models per-core memory/GC
// pressure: with few cores each core holds a larger partition resident,
// degrading cache and JVM GC behaviour — which is why the paper's reduce
// column scales superlinearly (5.42× on 4 cores).
type SparkStage struct {
	Serial     float64 // seconds of unparallelizable driver work
	Work       float64 // seconds of payload on one contention-free core
	Contention float64 // dimensionless memory-pressure coefficient
}

// PaperLoadStage returns the Table II data-loading model. Fit: with
// contention 0, t = s + w/(E·C); the nine published cells are matched
// within ~2 s by s = 5.6, w = 102.4 (fit from the 1×1=108 s and 4×4=12 s
// corners; middle cells verify, e.g. 2×2 → 31.2 s vs the paper's 31 s).
func PaperLoadStage() SparkStage {
	return SparkStage{Serial: 5.6, Work: 102.4, Contention: 0}
}

// PaperReduceStage returns the Table II map-reduce execution model. Fit:
// solving the three corners 1×1=390 s, 1×4=72 s, 4×4=24 s gives
// s = 10.8, w = 200, contention = 0.896; middle cells land within ~11 %
// (2×1 → 155.6 s vs 156; 2×4 → 38.6 s vs 41).
func PaperReduceStage() SparkStage {
	return SparkStage{Serial: 10.8, Work: 200, Contention: 0.896}
}

// PaperMapTime is the driver-side cost of registering the lazy map
// transformation (Table II's "Map Time" column, 0.2–0.4 s): Spark does no
// work until an action runs, so the column is constant.
const PaperMapTime = 0.3

// Time predicts the stage's wall-clock seconds on E executors × C cores.
func (s SparkStage) Time(executors, cores int) float64 {
	slots := float64(executors * cores)
	if slots <= 0 {
		return s.Serial + s.Work*(1+s.Contention)
	}
	return s.Serial + (s.Work/slots)*(1+s.Contention/slots)
}

// Speedup predicts the stage speedup versus the 1×1 configuration.
func (s SparkStage) Speedup(executors, cores int) float64 {
	return s.Time(1, 1) / s.Time(executors, cores)
}

// Horovod models the per-epoch time of synchronous data-parallel U-Net
// training on p GPUs (Table III):
//
//	t(p) = InputPipeline + Compute/p + RingOverhead·(p-1)/p
//
// InputPipeline is the serial data-preprocessing/batch-preparation term
// the paper identifies as the source of GPU starvation; Compute is the
// single-GPU epoch time; RingOverhead is the bandwidth term of the
// Patarasuk–Yuan ring all-reduce, whose per-GPU volume scales as
// 2(p-1)/p · |gradient|.
type Horovod struct {
	InputPipeline float64 // seconds per epoch, serial
	Compute       float64 // seconds per epoch on one GPU
	RingOverhead  float64 // seconds per epoch of all-reduce at p→∞
}

// PaperDGX returns the Table III model. Fit: the published times per
// epoch (5.5, 2.778, 1.45, 0.97, 0.79 s for 1,2,4,6,8 GPUs; totals
// 280.72…38.91 s over 50 epochs) collapse onto t = c0 + c1/p with
// c0 = 0.0874 and c1 = 5.5266 (residual < 0.03 s/epoch everywhere). The
// c0 term is the input pipeline; at p=1 Horovod performs no communication
// so c1 is pure compute, and the ring term is folded into c0 because the
// paper's measured curve does not separate them (the ring all-reduce is
// bandwidth-optimal: its cost is nearly flat in p for p ≥ 2).
func PaperDGX() Horovod {
	return Horovod{InputPipeline: 0.0874, Compute: 5.5266, RingOverhead: 0}
}

// EpochTime predicts seconds per epoch on p GPUs.
func (h Horovod) EpochTime(p int) float64 {
	if p <= 0 {
		p = 1
	}
	fp := float64(p)
	return h.InputPipeline + h.Compute/fp + h.RingOverhead*(fp-1)/fp
}

// TotalTime predicts seconds for the given number of epochs.
func (h Horovod) TotalTime(p, epochs int) float64 {
	return h.EpochTime(p) * float64(epochs)
}

// Speedup predicts training speedup on p GPUs versus one.
func (h Horovod) Speedup(p int) float64 {
	return h.EpochTime(1) / h.EpochTime(p)
}

// Throughput predicts images/second given the training-set size.
func (h Horovod) Throughput(p, datasetSize int) float64 {
	return float64(datasetSize) / h.EpochTime(p)
}

// RingAllReduceTime returns the classic cost model of a ring all-reduce
// of n bytes across p participants with link bandwidth bw (bytes/s) and
// per-step latency lat (s): 2(p-1) steps, each moving n/p bytes.
// It is exposed for the ablation benchmarks comparing ring against the
// naive gather-broadcast (2(p-1)·n bytes through a single root).
func RingAllReduceTime(p int, n, bw, lat float64) float64 {
	if p <= 1 {
		return 0
	}
	fp := float64(p)
	steps := 2 * (fp - 1)
	return steps * (lat + (n/fp)/bw)
}

// NaiveAllReduceTime returns the gather-then-broadcast cost through a
// root: the root receives p-1 vectors and sends p-1 vectors of n bytes.
func NaiveAllReduceTime(p int, n, bw, lat float64) float64 {
	if p <= 1 {
		return 0
	}
	fp := float64(p)
	return 2 * (fp - 1) * (lat + n/bw)
}
