package unet_test

import (
	"testing"

	"seaice/internal/raster"
	"seaice/internal/scene"
	"seaice/internal/train"
	"seaice/internal/unet"
)

// parityScenes renders n small ground-truthed scenes.
func parityScenes(t testing.TB, n int, seed uint64) []*scene.Scene {
	t.Helper()
	out := make([]*scene.Scene, n)
	for i := range out {
		cfg := scene.DefaultConfig(seed + uint64(i))
		cfg.W, cfg.H = 32, 32
		cfg.Clouds = scene.ClearClouds()
		sc, err := scene.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = sc
	}
	return out
}

// trainedQuantized builds a briefly-trained float64 master plus its
// calibrated int8 rendering — the PR's end-to-end parity fixture.
func trainedQuantized(t testing.TB) (*unet.Model[float64], *unet.QuantModel) {
	t.Helper()
	scenes := parityScenes(t, 10, 4100)
	samples := make([]train.Sample, len(scenes))
	tiles := make([]*raster.RGB, len(scenes))
	for i, sc := range scenes {
		samples[i] = train.Sample{Image: sc.Image, Labels: sc.Truth}
		tiles[i] = sc.Image
	}
	m, err := unet.New[float64](unet.FastConfig(41))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := train.Fit(m, samples, train.Config{Epochs: 3, BatchSize: 5, LR: 0.01, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	cal, err := unet.Calibrate(m, tiles, 5)
	if err != nil {
		t.Fatal(err)
	}
	qm, err := unet.Quantize(m, cal)
	if err != nil {
		t.Fatal(err)
	}
	return m, qm
}

// accuracy is the fraction of pixels where pred matches truth.
func accuracy(preds []*raster.Labels, scenes []*scene.Scene) float64 {
	match, total := 0, 0
	for i, p := range preds {
		truth := scenes[i].Truth
		for px := range p.Pix {
			if p.Pix[px] == truth.Pix[px] {
				match++
			}
			total++
		}
	}
	return float64(match) / float64(total)
}

// TestInt8ParityWithF64 is the end-to-end quantization gate on a trained
// model and held-out scenes: the int8 engine must agree with the f64
// master on ≥ 99% of pixels, and its ground-truth accuracy must be
// within 0.5% absolute of the master's — the paper-table accuracy-delta
// budget from the serving spec.
func TestInt8ParityWithF64(t *testing.T) {
	m, qm := trainedQuantized(t)
	held := parityScenes(t, 6, 9200)
	tiles := make([]*raster.RGB, len(held))
	for i, sc := range held {
		tiles[i] = sc.Image
	}

	want, err := unet.NewSession(m).PredictTiles(tiles)
	if err != nil {
		t.Fatal(err)
	}
	got, err := unet.NewQuantSession(qm).PredictTiles(tiles)
	if err != nil {
		t.Fatal(err)
	}

	agree, total := 0, 0
	for i := range want {
		for p := range want[i].Pix {
			if want[i].Pix[p] == got[i].Pix[p] {
				agree++
			}
			total++
		}
	}
	agreement := float64(agree) / float64(total)
	accF64 := accuracy(want, held)
	accInt8 := accuracy(got, held)
	delta := accF64 - accInt8
	if delta < 0 {
		delta = -delta
	}
	t.Logf("f64↔int8 pixel agreement %.4f; accuracy f64 %.4f int8 %.4f (|Δ| %.4f)",
		agreement, accF64, accInt8, delta)
	if agreement < 0.99 {
		t.Fatalf("f64↔int8 agreement %.4f below 0.99", agreement)
	}
	if delta > 0.005 {
		t.Fatalf("accuracy delta %.4f exceeds the 0.5%% absolute budget", delta)
	}
}
