package ring

import (
	"math"
	"testing"
)

// TestAllReduceMeanChunkedF32: the float32 ring (half the wire bytes per
// reduce) must leave every rank with identical values, matching the
// float64 mean of the same inputs within float32 accumulation tolerance.
func TestAllReduceMeanChunkedF32(t *testing.T) {
	const p, n = 4, 1000
	f32 := make([][]float32, p)
	f64 := make([][]float64, p)
	for r := 0; r < p; r++ {
		f32[r] = make([]float32, n)
		f64[r] = make([]float64, n)
		for i := 0; i < n; i++ {
			v := float32(r*31+i%17)*0.25 - 3
			f32[r][i] = v
			f64[r][i] = float64(v)
		}
	}
	if err := AllReduceMeanChunked(f32, 64); err != nil {
		t.Fatal(err)
	}
	if err := AllReduceMeanChunked(f64, 64); err != nil {
		t.Fatal(err)
	}
	for r := 1; r < p; r++ {
		for i := range f32[0] {
			if f32[r][i] != f32[0][i] {
				t.Fatalf("rank %d diverges from rank 0 at %d", r, i)
			}
		}
	}
	// p summands + the mean division: (p+1)·eps32 bound.
	tol := float64(p+1) * 1.2e-7
	for i := range f64[0] {
		w := f64[0][i]
		if d := math.Abs(float64(f32[0][i]) - w); d > tol*math.Max(math.Abs(w), 1) {
			t.Fatalf("element %d: f32 %g vs f64 %g", i, f32[0][i], w)
		}
	}
}
