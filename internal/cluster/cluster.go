// Package cluster simulates the multi-node execution environment of the
// paper's PySpark experiments: a Google Cloud Dataproc cluster with one
// master and up to three worker nodes of four cores each (Intel N2
// Cascade Lake). The simulation executes the real scheduling logic
// (FIFO task dispatch onto executor cores, stage barriers, driver
// serialization) against the virtual clock of internal/simtime, with
// per-task durations supplied by the calibrated cost models in
// internal/perfmodel — it reproduces the paper's §IV-C timing
// projections offline, deterministically, on a single machine.
//
// This package is a performance model, not a communication layer: for
// actually running across processes and machines — TCP collectives,
// rendezvous, crash recovery, consistent-hash serving — see
// internal/transport, which seaice-train -peers and seaice-serve -nodes
// are built on.
package cluster

import (
	"fmt"
	"sort"

	"seaice/internal/simtime"
)

// Config sizes the simulated cluster.
type Config struct {
	Executors        int
	CoresPerExecutor int
	// TaskOverhead is per-task scheduling/serialization cost in
	// seconds, paid on the core that runs the task.
	TaskOverhead float64
}

// Validate rejects non-positive topologies.
func (c Config) Validate() error {
	if c.Executors <= 0 || c.CoresPerExecutor <= 0 {
		return fmt.Errorf("cluster: invalid topology %d executors × %d cores", c.Executors, c.CoresPerExecutor)
	}
	if c.TaskOverhead < 0 {
		return fmt.Errorf("cluster: negative task overhead %f", c.TaskOverhead)
	}
	return nil
}

// Slots returns the total number of concurrent task slots.
func (c Config) Slots() int { return c.Executors * c.CoresPerExecutor }

// Task is one schedulable unit with a modeled duration and an arbitrary
// payload the caller executes when the task is dispatched.
type Task struct {
	Duration float64
	// Run, if non-nil, performs the task's real work (the simulation
	// executes it at dispatch; only the clock is virtual).
	Run func()
}

// StageResult reports the outcome of one simulated stage.
type StageResult struct {
	// Start and End are virtual times of the stage barrier.
	Start, End float64
	// Elapsed is End-Start including driver serial time.
	Elapsed float64
	// CoreBusy is the summed busy time of all cores.
	CoreBusy float64
	// Utilization is CoreBusy / (Slots × span of the parallel phase).
	Utilization float64
	// TasksRun is the number of tasks executed.
	TasksRun int
}

// Cluster is a simulated Spark-like cluster bound to a virtual clock.
type Cluster struct {
	cfg      Config
	clock    *simtime.Clock
	coreFree []float64 // next-free virtual time per slot
}

// New creates a cluster on the given clock.
func New(cfg Config, clock *simtime.Clock) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, clock: clock, coreFree: make([]float64, cfg.Slots())}
	for i := range c.coreFree {
		c.coreFree[i] = clock.Now()
	}
	return c, nil
}

// Config returns the cluster topology.
func (c *Cluster) Config() Config { return c.cfg }

// RunStage executes one stage: driverSerial seconds of driver-side work,
// then all tasks dispatched FIFO onto the earliest-free core (the
// scheduling policy of Spark's standalone FIFO scheduler within a stage),
// then a barrier. It returns when every task has finished, advancing the
// virtual clock.
func (c *Cluster) RunStage(driverSerial float64, tasks []Task) StageResult {
	start := c.clock.Now()
	ready := start + driverSerial

	// Reset core availability to the stage start: stages are separated
	// by barriers, so no core is busy across a stage boundary.
	for i := range c.coreFree {
		c.coreFree[i] = ready
	}

	busy := 0.0
	end := ready
	for _, t := range tasks {
		// earliest-free core wins; ties resolve to the lowest slot id,
		// matching deterministic round-robin on an idle cluster.
		slot := 0
		for i := 1; i < len(c.coreFree); i++ {
			if c.coreFree[i] < c.coreFree[slot] {
				slot = i
			}
		}
		dur := t.Duration + c.cfg.TaskOverhead
		startAt := c.coreFree[slot]
		finishAt := startAt + dur
		c.coreFree[slot] = finishAt
		busy += dur
		if finishAt > end {
			end = finishAt
		}
		if t.Run != nil {
			run := t.Run
			c.clock.Schedule(startAt, run)
		}
	}
	// Advance the clock to the barrier.
	c.clock.Schedule(end, func() {})
	c.clock.Run()

	span := end - ready
	util := 0.0
	if span > 0 {
		util = busy / (span * float64(c.cfg.Slots()))
	}
	return StageResult{
		Start:       start,
		End:         end,
		Elapsed:     end - start,
		CoreBusy:    busy,
		Utilization: util,
		TasksRun:    len(tasks),
	}
}

// UniformTasks builds n tasks of equal duration.
func UniformTasks(n int, duration float64) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{Duration: duration}
	}
	return tasks
}

// Makespan computes, without running a clock, the FIFO makespan of the
// given durations on `slots` cores — used by tests to cross-check the
// event-driven scheduler against the closed form.
func Makespan(durations []float64, slots int) float64 {
	if slots <= 0 {
		return 0
	}
	free := make([]float64, slots)
	for _, d := range durations {
		sort.Float64s(free)
		free[0] += d
	}
	max := 0.0
	for _, f := range free {
		if f > max {
			max = f
		}
	}
	return max
}
