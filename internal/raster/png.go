package raster

import (
	"fmt"
	"image"
	"image/png"
	"io"
	"os"
)

// ToImage converts the raster to a standard-library image for encoding.
func (m *RGB) ToImage() *image.NRGBA {
	img := image.NewNRGBA(image.Rect(0, 0, m.W, m.H))
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			si := 3 * (y*m.W + x)
			di := img.PixOffset(x, y)
			img.Pix[di] = m.Pix[si]
			img.Pix[di+1] = m.Pix[si+1]
			img.Pix[di+2] = m.Pix[si+2]
			img.Pix[di+3] = 0xff
		}
	}
	return img
}

// FromImage converts any standard-library image to an RGB raster,
// discarding alpha.
func FromImage(src image.Image) *RGB {
	b := src.Bounds()
	m := NewRGB(b.Dx(), b.Dy())
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			r, g, bl, _ := src.At(b.Min.X+x, b.Min.Y+y).RGBA()
			m.Set(x, y, uint8(r>>8), uint8(g>>8), uint8(bl>>8))
		}
	}
	return m
}

// EncodePNG writes the raster as a PNG stream.
func (m *RGB) EncodePNG(w io.Writer) error {
	return png.Encode(w, m.ToImage())
}

// WritePNG writes the raster to a PNG file.
func (m *RGB) WritePNG(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("raster: %w", err)
	}
	defer f.Close()
	if err := m.EncodePNG(f); err != nil {
		return fmt.Errorf("raster: encode %s: %w", path, err)
	}
	return f.Close()
}

// ReadPNG loads a PNG file into an RGB raster.
func ReadPNG(path string) (*RGB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("raster: %w", err)
	}
	defer f.Close()
	img, err := png.Decode(f)
	if err != nil {
		return nil, fmt.Errorf("raster: decode %s: %w", path, err)
	}
	return FromImage(img), nil
}

// ToImageGray converts a grayscale raster to a standard-library image.
func (m *Gray) ToImageGray() *image.Gray {
	img := image.NewGray(image.Rect(0, 0, m.W, m.H))
	copy(img.Pix, m.Pix)
	return img
}

// WritePNG writes the grayscale raster to a PNG file.
func (m *Gray) WritePNG(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("raster: %w", err)
	}
	defer f.Close()
	if err := png.Encode(f, m.ToImageGray()); err != nil {
		return fmt.Errorf("raster: encode %s: %w", path, err)
	}
	return f.Close()
}

// SideBySide lays out images horizontally with a 2-pixel separator, used
// for the qualitative figure panels (Fig 14). All images must share the
// same height.
func SideBySide(images ...*RGB) (*RGB, error) {
	if len(images) == 0 {
		return nil, fmt.Errorf("raster: SideBySide needs at least one image")
	}
	const sep = 2
	h := images[0].H
	w := 0
	for i, im := range images {
		if im.H != h {
			return nil, fmt.Errorf("raster: SideBySide image %d height %d != %d", i, im.H, h)
		}
		w += im.W
	}
	w += sep * (len(images) - 1)
	out := NewRGB(w, h)
	for i := range out.Pix {
		out.Pix[i] = 255 // white background for separators
	}
	x0 := 0
	for _, im := range images {
		for y := 0; y < h; y++ {
			dst := 3 * (y*out.W + x0)
			src := 3 * y * im.W
			copy(out.Pix[dst:dst+3*im.W], im.Pix[src:src+3*im.W])
		}
		x0 += im.W + sep
	}
	return out, nil
}
