package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"seaice/internal/noise"
	"seaice/internal/simtime"
)

func newCluster(t *testing.T, e, c int) *Cluster {
	t.Helper()
	cl, err := New(Config{Executors: e, CoresPerExecutor: c}, &simtime.Clock{})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	return cl
}

func TestUniformStageMakespan(t *testing.T) {
	// 8 tasks of 1s on 2 slots → 4s + 0.5s driver.
	cl := newCluster(t, 2, 1)
	res := cl.RunStage(0.5, UniformTasks(8, 1))
	if math.Abs(res.Elapsed-4.5) > 1e-12 {
		t.Fatalf("elapsed %f, want 4.5", res.Elapsed)
	}
	if res.TasksRun != 8 {
		t.Fatalf("tasks run %d", res.TasksRun)
	}
	if math.Abs(res.Utilization-1) > 1e-12 {
		t.Fatalf("uniform load should use all cores fully: %f", res.Utilization)
	}
}

func TestHeterogeneousTasksFIFO(t *testing.T) {
	// durations 3,1,1,1 on 2 slots, FIFO: slot0=3, slot1=1+1+1=3.
	cl := newCluster(t, 1, 2)
	tasks := []Task{{Duration: 3}, {Duration: 1}, {Duration: 1}, {Duration: 1}}
	res := cl.RunStage(0, tasks)
	if math.Abs(res.Elapsed-3) > 1e-12 {
		t.Fatalf("elapsed %f, want 3", res.Elapsed)
	}
}

// TestStageMatchesMakespanClosedForm: the event-driven scheduler must
// agree with the arithmetic FIFO makespan for random task sets.
func TestStageMatchesMakespanClosedForm(t *testing.T) {
	f := func(seed uint64) bool {
		rng := noise.NewRNG(seed, 2)
		slots := 1 + rng.Intn(6)
		n := 1 + rng.Intn(40)
		tasks := make([]Task, n)
		durations := make([]float64, n)
		for i := range tasks {
			d := rng.Float64() * 10
			tasks[i] = Task{Duration: d}
			durations[i] = d
		}
		cl, err := New(Config{Executors: 1, CoresPerExecutor: slots}, &simtime.Clock{})
		if err != nil {
			return false
		}
		res := cl.RunStage(0, tasks)
		want := Makespan(durations, slots)
		return math.Abs(res.Elapsed-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialStagesAccumulateTime(t *testing.T) {
	cl := newCluster(t, 1, 1)
	r1 := cl.RunStage(1, UniformTasks(2, 1)) // ends at 3
	r2 := cl.RunStage(1, UniformTasks(1, 1)) // 3 → 5
	if r1.End != 3 || r2.Start != 3 || r2.End != 5 {
		t.Fatalf("stage boundaries wrong: %f %f %f", r1.End, r2.Start, r2.End)
	}
}

func TestTaskRunCallbacksExecute(t *testing.T) {
	cl := newCluster(t, 2, 2)
	ran := make([]bool, 6)
	tasks := make([]Task, 6)
	for i := range tasks {
		i := i
		tasks[i] = Task{Duration: 1, Run: func() { ran[i] = true }}
	}
	cl.RunStage(0, tasks)
	for i, r := range ran {
		if !r {
			t.Fatalf("task %d callback never ran", i)
		}
	}
}

func TestTaskOverheadCharged(t *testing.T) {
	cl, err := New(Config{Executors: 1, CoresPerExecutor: 1, TaskOverhead: 0.5}, &simtime.Clock{})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	res := cl.RunStage(0, UniformTasks(4, 1))
	if math.Abs(res.Elapsed-6) > 1e-12 {
		t.Fatalf("elapsed %f, want 6 (4×1.5)", res.Elapsed)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Executors: 0, CoresPerExecutor: 1},
		{Executors: 1, CoresPerExecutor: 0},
		{Executors: 1, CoresPerExecutor: 1, TaskOverhead: -1},
	} {
		if _, err := New(cfg, &simtime.Clock{}); err == nil {
			t.Fatalf("config %+v should be rejected", cfg)
		}
	}
	if (Config{Executors: 3, CoresPerExecutor: 4}).Slots() != 12 {
		t.Fatal("slots arithmetic wrong")
	}
}

// TestDeterminism: same inputs, same virtual times, independent of host
// scheduling (everything is single-goroutine by construction).
func TestDeterminism(t *testing.T) {
	run := func() float64 {
		cl := newCluster(t, 2, 3)
		rng := noise.NewRNG(7, 7)
		tasks := make([]Task, 30)
		for i := range tasks {
			tasks[i] = Task{Duration: rng.Float64()}
		}
		return cl.RunStage(0.2, tasks).Elapsed
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("virtual elapsed differs across runs: %f vs %f", a, b)
	}
}
