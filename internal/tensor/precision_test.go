package tensor

import (
	"fmt"
	"math"
	"testing"
)

// f32Near asserts the float32 kernel output matches the float64 reference
// within the documented PrecisionTolerance bound: |y32 − y64| ≤
// PrecisionTolerance · accLen · max(|y64|, 1), where accLen is the number
// of accumulated terms per output element. This is the cross-precision
// guarantee — within one precision the engine is bit-identical to its
// reference (see engine_test.go); across precisions only this bound holds.
func f32Near(t *testing.T, label string, workers, accLen int, got *F32, want *F64) {
	t.Helper()
	if len(got.Data) != len(want.Data) {
		t.Fatalf("%s (workers=%d): %d elements, reference %d", label, workers, len(got.Data), len(want.Data))
	}
	tol := PrecisionTolerance * float64(accLen)
	for i := range want.Data {
		w := want.Data[i]
		if diff := math.Abs(float64(got.Data[i]) - w); diff > tol*math.Max(math.Abs(w), 1) {
			t.Fatalf("%s (workers=%d): element %d = %g, reference %g (diff %g > tol %g)",
				label, workers, i, got.Data[i], w, diff, tol*math.Max(math.Abs(w), 1))
		}
	}
}

// toF32 rounds a float64 tensor to float32 — the down-conversion a
// mixed-precision layer applies to weights and activations.
func toF32(x *F64) *F32 { return Convert[float32](x) }

// TestF32MatMulWithinToleranceOfF64: the float32 GEMM on rounded inputs
// must match the float64 reference on the exact inputs within the stated
// k-scaled tolerance bound, at every worker count.
func TestF32MatMulWithinToleranceOfF64(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{1, 1, 1},
		{5, 7, 3},
		{8, 129, 33},
		{3, 5, 1031},
		{16, 72, 2048},
	}
	for _, s := range shapes {
		a := New[float64](s.m, s.k)
		b := New[float64](s.k, s.n)
		at := New[float64](s.k, s.m)
		bt := New[float64](s.n, s.k)
		fillDense(a, uint64(s.m*1000+s.k))
		fillDense(b, uint64(s.k*1000+s.n))
		fillDense(at, uint64(s.m*77+s.n))
		fillDense(bt, uint64(s.n*31+s.k))
		wantAB := MatMulRef(a, b)
		wantATB := MatMulATBRef(at, b)
		wantABT := MatMulABTRef(a, bt)
		a32, b32, at32, bt32 := toF32(a), toF32(b), toF32(at), toF32(bt)
		withWorkers(t, func(workers int) {
			label := fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n)
			// +1 on the accumulation length covers the input rounding step.
			f32Near(t, "matmul "+label, workers, s.k+1, MatMul(a32, b32), wantAB)
			f32Near(t, "matmulATB "+label, workers, s.k+1, MatMulATB(at32, b32), wantATB)
			f32Near(t, "matmulABT "+label, workers, s.k+1, MatMulABT(a32, bt32), wantABT)
		})
	}
}

// TestF32Im2ColExact: the unfold/fold transforms only move and add values;
// im2col moves them untouched, so the float32 unfold of rounded input is
// exactly the rounded float64 unfold, and col2im accumulates at most
// kh·kw terms, bounded like a GEMM.
func TestF32Im2ColExact(t *testing.T) {
	x := New[float64](2, 3, 6, 5)
	fillDense(x, 42)
	wantCols := Im2ColRef(x, 3, 3, 1, 1)
	withWorkers(t, func(workers int) {
		bitEqual(t, "im2col f32", workers, Im2Col(toF32(x), 3, 3, 1, 1), toF32(wantCols))
	})

	grad := New[float64](wantCols.Shape[0], wantCols.Shape[1])
	fillDense(grad, 43)
	wantFold := Col2ImRef(grad, 2, 3, 6, 5, 3, 3, 1, 1)
	withWorkers(t, func(workers int) {
		f32Near(t, "col2im f32", workers, 3*3+1, Col2Im(toF32(grad), 2, 3, 6, 5, 3, 3, 1, 1), wantFold)
	})
}
