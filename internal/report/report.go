// Package report renders the experiment outputs: column-aligned text
// tables in the layout of the paper's Tables I–V, paper-vs-reproduced
// comparison rows, and CSV export for plotting. Rendering is pure
// formatting — rows appear exactly in insertion order, so reports are
// reproducible byte for byte given the same inputs.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned table builder.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with 2–4
// significant decimals via Cell helpers below.
func (t *Table) AddRow(cells ...string) *Table {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// F formats a float for a table cell with two decimals.
func F(v float64) string { return fmt.Sprintf("%.2f", v) }

// F1 formats with one decimal.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }

// Pct formats a ratio as a percentage with two decimals.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// I formats an int.
func I(v int) string { return fmt.Sprintf("%d", v) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (headers first). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.headers)) + "\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}
