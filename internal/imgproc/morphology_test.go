package imgproc

import (
	"testing"
	"testing/quick"

	"seaice/internal/noise"
	"seaice/internal/raster"
)

// bruteExtreme computes dilate/erode by direct window scan.
func bruteExtreme(src *raster.Gray, radius int, max bool) *raster.Gray {
	dst := raster.NewGray(src.W, src.H)
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			var best uint8
			if !max {
				best = 255
			}
			for dy := -radius; dy <= radius; dy++ {
				yy := y + dy
				if yy < 0 || yy >= src.H {
					continue
				}
				for dx := -radius; dx <= radius; dx++ {
					xx := x + dx
					if xx < 0 || xx >= src.W {
						continue
					}
					v := src.At(xx, yy)
					if max && v > best || !max && v < best {
						best = v
					}
				}
			}
			dst.Set(x, y, best)
		}
	}
	return dst
}

func randGray(seed uint64, w, h int) *raster.Gray {
	rng := noise.NewRNG(seed, 1)
	g := raster.NewGray(w, h)
	for i := range g.Pix {
		g.Pix[i] = uint8(rng.Intn(256))
	}
	return g
}

func TestDilateMatchesBruteForce(t *testing.T) {
	for _, radius := range []int{1, 2, 3, 7} {
		g := randGray(uint64(radius), 37, 23)
		got := Dilate(g, radius)
		want := bruteExtreme(g, radius, true)
		for i := range want.Pix {
			if got.Pix[i] != want.Pix[i] {
				t.Fatalf("radius %d: dilate mismatch at %d: got %d want %d", radius, i, got.Pix[i], want.Pix[i])
			}
		}
	}
}

func TestErodeMatchesBruteForce(t *testing.T) {
	for _, radius := range []int{1, 2, 3, 7} {
		g := randGray(uint64(radius)+100, 31, 29)
		got := Erode(g, radius)
		want := bruteExtreme(g, radius, false)
		for i := range want.Pix {
			if got.Pix[i] != want.Pix[i] {
				t.Fatalf("radius %d: erode mismatch at %d: got %d want %d", radius, i, got.Pix[i], want.Pix[i])
			}
		}
	}
}

// TestErodeDilateOrdering: erosion never exceeds the source, dilation
// never falls below it, and opening ≤ source ≤ closing pointwise.
func TestErodeDilateOrdering(t *testing.T) {
	f := func(seed uint64) bool {
		g := randGray(seed, 24, 18)
		er := Erode(g, 2)
		di := Dilate(g, 2)
		op := Open(g, 2)
		cl := Close(g, 2)
		for i := range g.Pix {
			if er.Pix[i] > g.Pix[i] || di.Pix[i] < g.Pix[i] {
				return false
			}
			if op.Pix[i] > g.Pix[i] || cl.Pix[i] < g.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
