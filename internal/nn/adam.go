package nn

import (
	"math"

	"seaice/internal/pool"
	"seaice/internal/tensor"
)

// Adam implements the Adam optimizer (Kingma & Ba), the optimizer the
// paper trains its U-Net with, generic over the parameter precision. One
// instance owns the moment estimates for a fixed parameter set.
//
// The update math always runs in float64: moments are stored as float64
// regardless of S, so the float64 instantiation is bit-identical to the
// pre-generics optimizer. For float32 parameters, setting Master keeps a
// persistent float64 master copy of every weight (the mixed-precision
// recipe): gradients arrive in float32, the master accumulates the full
// float64 update, and the float32 weight is the rounded master. Without
// Master the float32 weight itself is widened, updated, and re-rounded
// each step — cheaper, but updates smaller than the weight's float32 ulp
// are lost.
type Adam[S tensor.Scalar] struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64
	// Master enables float64 master weights (mixed precision). It must be
	// set before the first Step and matters only for float32 parameters;
	// for float64 the master copy would equal the weights bit-for-bit.
	Master bool

	t      int
	m      [][]float64
	v      [][]float64
	master [][]float64
}

// NewAdam returns an optimizer with the conventional defaults
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam[S tensor.Scalar](lr float64) *Adam[S] {
	return &Adam[S]{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step applies one update to the parameters using their accumulated
// gradients, then the caller typically zeroes the grads. Moment (and
// master-weight) buffers are allocated lazily on first use and tracked by
// position, so the same parameter slice (same order) must be passed every
// step.
func (a *Adam[S]) Step(params []*Param[S]) {
	if a.m == nil {
		a.m = make([][]float64, len(params))
		a.v = make([][]float64, len(params))
		for i, p := range params {
			a.m[i] = make([]float64, p.W.Len())
			a.v[i] = make([]float64, p.W.Len())
		}
		if a.Master {
			a.master = make([][]float64, len(params))
			for i, p := range params {
				a.master[i] = make([]float64, p.W.Len())
				for j, w := range p.W.Data {
					a.master[i][j] = float64(w)
				}
			}
		}
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))

	// Parameters are independent, so the update fans out over the shared
	// pool; the per-element math is unchanged, keeping updates
	// bit-identical to a serial sweep at any worker count.
	pool.Shared().MustMapRanges(len(params), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := params[i]
			m, v := a.m[i], a.v[i]
			if a.master != nil {
				w := a.master[i]
				for j, gs := range p.Grad.Data {
					g := float64(gs)
					m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
					v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
					mh := m[j] / bc1
					vh := v[j] / bc2
					w[j] -= a.LR * mh / (math.Sqrt(vh) + a.Epsilon)
					p.W.Data[j] = S(w[j])
				}
				continue
			}
			for j, gs := range p.Grad.Data {
				g := float64(gs)
				m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
				v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
				mh := m[j] / bc1
				vh := v[j] / bc2
				p.W.Data[j] = S(float64(p.W.Data[j]) - a.LR*mh/(math.Sqrt(vh)+a.Epsilon))
			}
		}
	})
}

// Steps reports how many updates have been applied.
func (a *Adam[S]) Steps() int { return a.t }

// AdamState is the full serializable optimizer state: step counter,
// first/second moment estimates, and (for mixed precision) the float64
// master weights. All buffers are float64 regardless of the parameter
// precision, so a snapshot restores either instantiation exactly —
// the fault-tolerance recovery path (internal/ddp) depends on a
// restored optimizer being bit-identical to the one that crashed.
type AdamState struct {
	T      int
	M, V   [][]float64
	Master [][]float64 // nil unless Master weights are enabled and stepped
}

// cloneF64 deep-copies a moment buffer set.
func cloneF64(src [][]float64) [][]float64 {
	if src == nil {
		return nil
	}
	out := make([][]float64, len(src))
	for i, s := range src {
		out[i] = append([]float64(nil), s...)
	}
	return out
}

// State deep-copies the optimizer state. Before the first Step the
// moment buffers are nil; restoring such a state yields a fresh
// optimizer.
func (a *Adam[S]) State() AdamState {
	return AdamState{T: a.t, M: cloneF64(a.m), V: cloneF64(a.v), Master: cloneF64(a.master)}
}

// SetState deep-copies a captured state into the optimizer. The next
// Step must receive the same parameter slice (same order and sizes) the
// state was captured against.
func (a *Adam[S]) SetState(st AdamState) {
	a.t = st.T
	a.m = cloneF64(st.M)
	a.v = cloneF64(st.V)
	a.master = cloneF64(st.Master)
}
