package unet

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"

	"seaice/internal/tensor"
)

// ErrBadCheckpoint is the typed error every malformed-checkpoint load
// failure wraps: corrupted magic, truncated or garbage gob, impossible
// configs, missing or mis-sized weights. Load never panics on
// adversarial input (FuzzLoadCheckpoint asserts this) — callers branch
// with errors.Is(err, ErrBadCheckpoint).
var ErrBadCheckpoint = errors.New("unet: malformed checkpoint")

// Checkpoint format. Version 2 files begin with a fixed magic header
// followed by a gob-encoded checkpointV2; weights are always stored as
// float64 (every float32 value is exactly representable, so a float32
// model round-trips bit-for-bit and a float64 model keeps full
// precision). Files written before the header existed are bare gobs of
// the legacy struct; Load sniffs the magic and falls back, so old
// float64 checkpoints load into either precision (down-converting on
// load for float32 models).

// ckptMagic identifies a versioned checkpoint stream. The trailing byte
// is the format version.
const ckptMagic = "SEAICE-UNET-CKPT\x02"

// checkpoint is the legacy (pre-header) on-disk format.
type checkpoint struct {
	Config  Config
	Weights map[string][]float64
}

// checkpointV2 is the versioned format: the precision records which
// instantiation wrote the file (informational — weights always load into
// the precision the caller requests).
type checkpointV2 struct {
	Precision string
	Config    Config
	Weights   map[string][]float64
}

// precisionName reports "float32" or "float64" for the instantiation.
func precisionName[S tensor.Scalar]() string {
	if tensor.IsF32[S]() {
		return "float32"
	}
	return "float64"
}

// Save writes the model's configuration and weights in the versioned
// format: the magic header, then encoding/gob.
func (m *Model[S]) Save(w io.Writer) error {
	ck := checkpointV2{Precision: precisionName[S](), Config: m.cfg, Weights: m.WeightsF64()}
	if _, err := io.WriteString(w, ckptMagic); err != nil {
		return fmt.Errorf("unet: save: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(ck); err != nil {
		return fmt.Errorf("unet: save: %w", err)
	}
	return nil
}

// SaveFile writes a checkpoint file.
func (m *Model[S]) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("unet: %w", err)
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reconstructs a model from a checkpoint stream in the requested
// precision. Versioned (magic-headed) and legacy bare-gob streams both
// load; float64 weights are rounded when S is float32. Any malformed
// input — bad magic or version byte, truncated or garbage gob,
// impossible config, missing or mis-sized weights — returns an error
// wrapping ErrBadCheckpoint; Load never panics.
func Load[S tensor.Scalar](r io.Reader) (*Model[S], error) {
	br := bufio.NewReader(r)
	var ck checkpointV2
	head, err := br.Peek(len(ckptMagic))
	switch {
	case err == nil && string(head) == ckptMagic:
		if _, err := br.Discard(len(ckptMagic)); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
		}
		if err := gob.NewDecoder(br).Decode(&ck); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
		}
	case err == nil && string(head[:len(ckptMagic)-1]) == ckptMagic[:len(ckptMagic)-1]:
		// Right magic text, unknown version byte: a format this build
		// does not speak. Refuse loudly instead of misparsing it as a
		// legacy bare gob.
		return nil, fmt.Errorf("%w: unsupported checkpoint version %d", ErrBadCheckpoint, head[len(ckptMagic)-1])
	case err == nil || err == io.EOF:
		// No magic: a checkpoint written before the versioned header.
		var legacy checkpoint
		if err := gob.NewDecoder(br).Decode(&legacy); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
		}
		ck = checkpointV2{Precision: "float64", Config: legacy.Config, Weights: legacy.Weights}
	default:
		return nil, fmt.Errorf("unet: load: %w", err)
	}
	m, err := New[S](ck.Config)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if err := m.SetWeightsF64(ck.Weights); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	return m, nil
}

// LoadFile reads a checkpoint file into the requested precision.
func LoadFile[S tensor.Scalar](path string) (*Model[S], error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("unet: %w", err)
	}
	defer f.Close()
	return Load[S](f)
}

// CopyWeightsFrom overwrites this model's parameters with src's — the
// rank-0 broadcast of Horovod-style training. The models must share a
// configuration (ignoring seeds).
func (m *Model[S]) CopyWeightsFrom(src *Model[S]) error {
	a, b := m.Params(), src.Params()
	if len(a) != len(b) {
		return fmt.Errorf("unet: parameter count mismatch %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].W.Len() != b[i].W.Len() {
			return fmt.Errorf("unet: parameter %s size mismatch", a[i].Name)
		}
		copy(a[i].W.Data, b[i].W.Data)
	}
	return nil
}
