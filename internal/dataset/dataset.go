// Package dataset assembles the experiment datasets: it runs the
// thin-cloud/shadow filter and the auto-labeler over a scene campaign,
// splits scenes into tiles (the paper cuts 66 scenes into 4224 tiles),
// pairs every tile with its manual (ground-truth) and auto labels, tracks
// per-tile cloud coverage for Table V's buckets, and produces the
// train/test split and train.Sample views the U-Net experiments consume.
package dataset

import (
	"fmt"

	"seaice/internal/autolabel"
	"seaice/internal/cloudfilter"
	"seaice/internal/noise"
	"seaice/internal/pool"
	"seaice/internal/raster"
	"seaice/internal/scene"
	"seaice/internal/train"
)

// Tile is one dataset entry with every view the experiments need.
type Tile struct {
	// Original is the observed tile, clouds and all.
	Original *raster.RGB
	// Filtered is the thin-cloud/shadow-filtered tile.
	Filtered *raster.RGB
	// Manual holds ground-truth labels (the paper's manually labeled
	// data).
	Manual *raster.Labels
	// Auto holds color-segmentation labels derived from the filtered
	// imagery (the paper's auto-labeling pipeline).
	Auto *raster.Labels
	// CloudFraction is the tile's true disturbed-pixel fraction.
	CloudFraction float64
	// Scene is the source scene index.
	Scene int
}

// Set is a full tile dataset.
type Set struct {
	Tiles    []Tile
	TileSize int
}

// BuildConfig controls dataset assembly.
type BuildConfig struct {
	TileSize int
	Filter   cloudfilter.Config
	Labels   autolabel.Thresholds
	// Workers parallelizes per-scene processing (pool size); <=0 uses
	// GOMAXPROCS.
	Workers int
}

// DefaultBuild returns the experiment-scale configuration: 64² tiles so a
// 66-scene campaign of 512² scenes yields the paper's 4224 tiles.
func DefaultBuild() BuildConfig {
	return BuildConfig{
		TileSize: 64,
		Filter:   cloudfilter.DefaultConfig(),
		Labels:   autolabel.PaperThresholds(),
	}
}

// Build processes every scene — filter, auto-label, tile — in parallel
// over the pool.
func Build(scenes []*scene.Scene, cfg BuildConfig) (*Set, error) {
	if cfg.TileSize <= 0 {
		return nil, fmt.Errorf("dataset: tile size %d", cfg.TileSize)
	}
	perScene := make([][]Tile, len(scenes))
	p := pool.New(cfg.Workers)
	err := p.Map(len(scenes), func(i int) error {
		tiles, err := buildScene(scenes[i], i, cfg)
		if err != nil {
			return fmt.Errorf("dataset: scene %d: %w", i, err)
		}
		perScene[i] = tiles
		return nil
	})
	if err != nil {
		return nil, err
	}
	set := &Set{TileSize: cfg.TileSize}
	for _, tiles := range perScene {
		set.Tiles = append(set.Tiles, tiles...)
	}
	return set, nil
}

// buildScene filters and labels one scene at full scene scale (the
// filter's neighborhood statistics need more context than a single tile)
// and then cuts every product into tiles.
func buildScene(sc *scene.Scene, index int, cfg BuildConfig) ([]Tile, error) {
	res := cloudfilter.Filter(sc.Image, cfg.Filter)
	auto, err := autolabel.Label(res.Image, cfg.Labels)
	if err != nil {
		return nil, err
	}

	origTiles, _, err := raster.Split(sc.Image, cfg.TileSize, cfg.TileSize)
	if err != nil {
		return nil, err
	}
	filtTiles, _, err := raster.Split(res.Image, cfg.TileSize, cfg.TileSize)
	if err != nil {
		return nil, err
	}
	manTiles, _, err := raster.SplitLabels(sc.Truth, cfg.TileSize, cfg.TileSize)
	if err != nil {
		return nil, err
	}
	autoTiles, _, err := raster.SplitLabels(auto, cfg.TileSize, cfg.TileSize)
	if err != nil {
		return nil, err
	}

	out := make([]Tile, len(origTiles))
	for i := range origTiles {
		// Per-tile cloud coverage from the scene's ground truth mask.
		col, row := origTiles[i].Col, origTiles[i].Row
		disturbed := 0
		for y := 0; y < cfg.TileSize; y++ {
			off := (row*cfg.TileSize+y)*sc.CloudMask.W + col*cfg.TileSize
			for x := 0; x < cfg.TileSize; x++ {
				if sc.CloudMask.Pix[off+x] != 0 {
					disturbed++
				}
			}
		}
		out[i] = Tile{
			Original:      origTiles[i].Image,
			Filtered:      filtTiles[i].Image,
			Manual:        manTiles[i],
			Auto:          autoTiles[i],
			CloudFraction: float64(disturbed) / float64(cfg.TileSize*cfg.TileSize),
			Scene:         index,
		}
	}
	return out, nil
}

// Split divides the tiles deterministically into train and test subsets
// (the paper uses 80/20).
func (s *Set) Split(trainFrac float64, seed uint64) (trainSet, testSet []Tile, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: train fraction %.2f outside (0,1)", trainFrac)
	}
	rng := noise.NewRNG(seed, 0x5117)
	perm := rng.Perm(len(s.Tiles))
	nTrain := int(float64(len(s.Tiles)) * trainFrac)
	for i, idx := range perm {
		if i < nTrain {
			trainSet = append(trainSet, s.Tiles[idx])
		} else {
			testSet = append(testSet, s.Tiles[idx])
		}
	}
	return trainSet, testSet, nil
}

// CloudBuckets partitions tiles by cloud coverage around the paper's
// "about 10%" boundary (Table V).
func CloudBuckets(tiles []Tile, boundary float64) (cloudy, clear []Tile) {
	for _, t := range tiles {
		if t.CloudFraction > boundary {
			cloudy = append(cloudy, t)
		} else {
			clear = append(clear, t)
		}
	}
	return cloudy, clear
}

// ImageKind selects which imagery view feeds the model.
type ImageKind int

// LabelKind selects which labels supervise training.
type LabelKind int

// The paper's four dataset views: original vs filtered imagery, manual
// vs auto labels.
const (
	OriginalImages ImageKind = iota
	FilteredImages
)
const (
	ManualLabels LabelKind = iota
	AutoLabels
)

// Samples converts tiles into training samples with the chosen image and
// label views.
func Samples(tiles []Tile, img ImageKind, lab LabelKind) []train.Sample {
	out := make([]train.Sample, len(tiles))
	for i, t := range tiles {
		s := train.Sample{}
		switch img {
		case FilteredImages:
			s.Image = t.Filtered
		default:
			s.Image = t.Original
		}
		switch lab {
		case AutoLabels:
			s.Labels = t.Auto
		default:
			s.Labels = t.Manual
		}
		out[i] = s
	}
	return out
}

// Subsample returns every k-th tile of a deterministic shuffle — the
// stratification used to fit single-core training budgets while keeping
// scene and cloud-cover diversity.
func Subsample(tiles []Tile, n int, seed uint64) []Tile {
	if n >= len(tiles) {
		return tiles
	}
	if n <= 0 {
		return nil
	}
	rng := noise.NewRNG(seed, 0x5ab5)
	perm := rng.Perm(len(tiles))
	out := make([]Tile, n)
	for i := 0; i < n; i++ {
		out[i] = tiles[perm[i]]
	}
	return out
}
