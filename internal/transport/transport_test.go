package transport

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"seaice/internal/chaos"
	"seaice/internal/ring"
)

// newTestRings binds p loopback listeners and returns p connected rings,
// each with its own injector built from spec (as separate processes
// would have) — the seeded schedule resolves identically in every one.
func newTestRings(t *testing.T, p int, spec string) []*Ring {
	t.Helper()
	peers := make([]string, p)
	lns := make([]net.Listener, p)
	for r := range peers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[r] = ln
		peers[r] = ln.Addr().String()
	}
	rings := make([]*Ring, p)
	for r := range rings {
		var inj *chaos.Injector
		if spec != "" {
			sched, err := chaos.Parse(spec)
			if err != nil {
				t.Fatal(err)
			}
			inj = chaos.New(sched, p)
		}
		var err error
		rings[r], err = NewRing(Config{
			Rank:      r,
			Peers:     peers,
			ClusterID: t.Name(),
			Timeout:   time.Second,
			Listener:  lns[r],
			Chaos:     inj,
			Logf:      t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, r := range rings {
			r.Close()
		}
	})
	establishAll(t, rings, 0)
	return rings
}

// establishAll connects every ring concurrently and checks the agreed step.
func establishAll(t *testing.T, rings []*Ring, wantStep int) {
	t.Helper()
	var wg sync.WaitGroup
	for _, r := range rings {
		wg.Add(1)
		go func(r *Ring) {
			defer wg.Done()
			got, err := r.Establish(wantStep)
			if err != nil {
				t.Errorf("rank %d establish: %v", r.Rank(), err)
				return
			}
			if got != wantStep {
				t.Errorf("rank %d agreed step %d, want %d", r.Rank(), got, wantStep)
			}
		}(r)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
}

// perRank runs fn on every rank concurrently and fails on any error.
func perRank(t *testing.T, rings []*Ring, fn func(r *Ring) error) {
	t.Helper()
	errs := make([]error, len(rings))
	var wg sync.WaitGroup
	for i, r := range rings {
		wg.Add(1)
		go func(i int, r *Ring) {
			defer wg.Done()
			errs[i] = fn(r)
		}(i, r)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

func testVec[S ring.Scalar](rank, step, n int) []S {
	vec := make([]S, n)
	for i := range vec {
		vec[i] = S(math.Sin(float64(rank*7919+step*131+i)) * float64(rank+1))
	}
	return vec
}

// golden computes the in-process chunked all-reduce over the same inputs.
func golden[S ring.Scalar](p, step, n, chunk int) [][]S {
	vecs := make([][]S, p)
	for r := range vecs {
		vecs[r] = testVec[S](r, step, n)
	}
	if err := ring.AllReduceMeanChunked(vecs, chunk); err != nil {
		panic(err)
	}
	return vecs
}

// TestAllReduceParity: the network all-reduce must match the in-process
// chunked ring bit for bit, across precisions and vector shapes
// (multi-segment, sub-chunk, and shorter-than-world vectors).
func TestAllReduceParity(t *testing.T) {
	testAllReduceParity[float64](t)
	testAllReduceParity[float32](t)
}

func testAllReduceParity[S ring.Scalar](t *testing.T) {
	t.Helper()
	const p, chunk = 3, 1 << 10
	rings := newTestRings(t, p, "")
	for _, n := range []int{3*chunk + 217, 100, 2} {
		want := golden[S](p, 0, n, chunk)
		perRank(t, rings, func(r *Ring) error {
			vec := testVec[S](r.Rank(), 0, n)
			if err := AllReduceMean(r, vec, chunk); err != nil {
				return err
			}
			for i := range vec {
				if vec[i] != want[r.Rank()][i] {
					return fmt.Errorf("n=%d idx %d: %v != %v", n, i, vec[i], want[r.Rank()][i])
				}
			}
			return nil
		})
	}
}

// TestBroadcastParity: rank 0's bits must land on every rank unchanged.
func TestBroadcastParity(t *testing.T) {
	const p, n = 3, 4097
	rings := newTestRings(t, p, "")
	src := testVec[float64](0, 1, n)
	perRank(t, rings, func(r *Ring) error {
		vec := testVec[float64](r.Rank(), 1, n)
		if err := Broadcast(r, vec); err != nil {
			return err
		}
		for i := range vec {
			if vec[i] != src[i] {
				return fmt.Errorf("idx %d: %v != %v", i, vec[i], src[i])
			}
		}
		return nil
	})
}

// TestCommitBarrier: the barrier completes when all ranks enter with the
// same step.
func TestCommitBarrier(t *testing.T) {
	rings := newTestRings(t, 3, "")
	perRank(t, rings, func(r *Ring) error { return r.Commit(12) })
}

// TestEstablishStepAgreement: ranks re-establishing with divergent steps
// must all agree on the minimum.
func TestEstablishStepAgreement(t *testing.T) {
	rings := newTestRings(t, 3, "")
	steps := []int{5, 4, 5}
	agreed := make([]int, 3)
	perRank(t, rings, func(r *Ring) error {
		got, err := r.Establish(steps[r.Rank()])
		agreed[r.Rank()] = got
		return err
	})
	for rank, got := range agreed {
		if got != 4 {
			t.Errorf("rank %d agreed %d, want 4", rank, got)
		}
	}
}

// runRecoverySteps drives one rank through K steps of
// all-reduce-then-commit with the full abort→Reestablish→retry recovery
// loop, returning the final step-(K−1) result vector.
func runRecoverySteps[S ring.Scalar](r *Ring, K, n, chunk int) ([]S, error) {
	var vec []S
	step := 0
	for step < K {
		r.StepStart(step)
		vec = testVec[S](r.Rank(), step, n)
		err := AllReduceMean(r, vec, chunk)
		if err == nil {
			err = r.Commit(step)
		}
		if err == nil {
			step++
			continue
		}
		var re *ring.RankError
		if !errors.As(err, &re) {
			return nil, fmt.Errorf("step %d: non-RankError: %w", step, err)
		}
		agreed, eerr := reestablishRetry(r, step)
		if eerr != nil {
			return nil, eerr
		}
		// A rank that committed past the agreed step redoes the steps
		// bit-identically (each attempt regenerates its input), so
		// rolling the cursor back is the whole recovery.
		step = agreed
	}
	return vec, nil
}

// reestablishRetry loops Establish until the whole ring converges.
func reestablishRetry(r *Ring, step int) (int, error) {
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		agreed, err := r.Establish(step)
		if err == nil {
			return agreed, nil
		}
		lastErr = err
	}
	return 0, fmt.Errorf("rank %d: establish failed after retries: %w", r.Rank(), lastErr)
}

// testFaultRecovery runs K steps under an injected network fault and
// asserts the surviving results are bit-identical to the clean run.
func testFaultRecovery(t *testing.T, spec string) {
	const p, K, n, chunk = 3, 6, 3000, 1 << 10
	rings := newTestRings(t, p, spec)
	want := golden[float64](p, K-1, n, chunk)
	results := make([][]float64, p)
	perRank(t, rings, func(r *Ring) error {
		vec, err := runRecoverySteps[float64](r, K, n, chunk)
		results[r.Rank()] = vec
		return err
	})
	for rank, vec := range results {
		for i := range vec {
			if vec[i] != want[rank][i] {
				t.Fatalf("%s: rank %d idx %d: %v != %v", spec, rank, i, vec[i], want[rank][i])
			}
		}
	}
}

// TestPartitionRecovery: a severed link at a step boundary aborts the
// step everywhere; after rendezvous the retry is bit-identical.
func TestPartitionRecovery(t *testing.T) { testFaultRecovery(t, "21:part@2:r1") }

// TestReconnectRecovery: a clean link drop takes the same path.
func TestReconnectRecovery(t *testing.T) { testFaultRecovery(t, "23:reconn@4:r2") }

// TestDropFrameRecovery: a frame lost on the wire times out the
// receiver, cascades into a ring-wide abort, and retries bit-identically.
func TestDropFrameRecovery(t *testing.T) { testFaultRecovery(t, "25:drop@3:r0") }

// TestSlowLinkAbsorbed: a slow link delays but never aborts — results
// identical, no recovery needed.
func TestSlowLinkAbsorbed(t *testing.T) { testFaultRecovery(t, "27:slow@1:r1:30ms") }

// TestCompoundFaults: multiple network faults across distinct steps and
// ranks in one run.
func TestCompoundFaults(t *testing.T) {
	testFaultRecovery(t, "29:part@1:r0,drop@3:r2,slow@4:r1:20ms,reconn@5:r1")
}

// TestCorruptFrameRecovery: a bit flipped on the wire fails the CRC32C
// trailer check on the receiving side — silent corruption becomes a
// *ring.RankError, the step aborts ring-wide, and the retry is
// bit-identical to a clean run.
func TestCorruptFrameRecovery(t *testing.T) { testFaultRecovery(t, "33:bitflip@2:r1") }

// TestCorruptFrameCRCDetected: the frame decoder rejects a flipped
// payload bit and a truncated CRC trailer with errors — corrupt bytes
// never surface as a decoded frame.
func TestCorruptFrameCRCDetected(t *testing.T) {
	payload := []byte{0, 0, 0, 1, 0, 0, 0, 2, 42, 43, 44}
	raw := encodeFrame(tagData, payload)

	if fr, err := ReadFrame(bytes.NewReader(raw)); err != nil {
		t.Fatalf("clean frame rejected: %v", err)
	} else if fr.Tag != tagData || !bytes.Equal(fr.Payload, payload) {
		t.Fatal("clean frame decoded wrong")
	}

	for bit := 0; bit < 8; bit++ {
		flipped := append([]byte(nil), raw...)
		flipped[5+len(payload)/2] ^= 1 << uint(bit)
		if _, err := ReadFrame(bytes.NewReader(flipped)); err == nil ||
			!strings.Contains(err.Error(), "CRC mismatch") {
			t.Fatalf("bit %d flip not detected: %v", bit, err)
		}
	}

	// A flipped tag byte is inside the checksummed region too.
	tagFlip := append([]byte(nil), raw...)
	tagFlip[4] ^= 0x01
	if _, err := ReadFrame(bytes.NewReader(tagFlip)); err == nil {
		t.Fatal("tag flip not detected")
	}

	for cut := 1; cut <= 4; cut++ {
		if _, err := ReadFrame(bytes.NewReader(raw[:len(raw)-cut])); err == nil {
			t.Fatalf("truncation of %d bytes not detected", cut)
		}
	}

	// A frame too short to even hold a CRC trailer is rejected before
	// allocation.
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 3, 0x04, 1, 2})); err == nil {
		t.Fatal("trailerless frame accepted")
	}
}

// TestClusterIDMismatch: a ring with a different cluster ID must not
// assemble (the hello rejects the peer).
func TestClusterIDMismatch(t *testing.T) {
	peers := make([]string, 2)
	lns := make([]net.Listener, 2)
	for r := range peers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[r] = ln
		peers[r] = ln.Addr().String()
	}
	mk := func(rank int, cid string) *Ring {
		r, err := NewRing(Config{Rank: rank, Peers: peers, ClusterID: cid,
			Timeout: 300 * time.Millisecond, Listener: lns[rank]})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := mk(0, "alpha"), mk(1, "beta")
	defer a.Close()
	defer b.Close()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, r := range []*Ring{a, b} {
		wg.Add(1)
		go func(i int, r *Ring) {
			defer wg.Done()
			_, errs[i] = r.Establish(0)
		}(i, r)
	}
	wg.Wait()
	if errs[0] == nil && errs[1] == nil {
		t.Fatal("rings with different cluster IDs assembled")
	}
}

// TestRendezvousTotalDeadline: Establish against a half-open peer — one
// whose address accepts TCP connections but never completes the
// handshake — must fail within the total rendezvous budget
// (timeout×(world+3)) instead of hanging until someone kills the
// process.
func TestRendezvousTotalDeadline(t *testing.T) {
	t.Parallel()
	// Black-hole listener standing in for rank 1: accepts, reads,
	// never replies.
	hole, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hole.Close()
	go func() {
		for {
			c, err := hole.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}(c)
		}
	}()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	const timeout = 200 * time.Millisecond
	r, err := NewRing(Config{
		Rank:      0,
		Peers:     []string{ln.Addr().String(), hole.Addr().String()},
		ClusterID: t.Name(),
		Timeout:   timeout,
		Listener:  ln,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	budget := timeout * time.Duration(r.World()+3)
	start := time.Now()
	_, err = r.Establish(0)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("establish against a half-open peer succeeded")
	}
	// Generous slack: the per-op deadlines fire well inside the total
	// budget; what must never happen is an unbounded hang.
	if elapsed > 2*budget {
		t.Fatalf("establish took %v, want well under the %v rendezvous budget", elapsed, budget)
	}
	t.Logf("establish failed in %v: %v", elapsed, err)
}
