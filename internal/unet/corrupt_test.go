package unet

import (
	"errors"
	"math"
	"strings"
	"testing"

	"seaice/internal/noise"
	"seaice/internal/raster"
)

// corruptTile renders one deterministic random tile.
func corruptTile(size int, seed uint64) *raster.RGB {
	rng := noise.NewRNG(seed, 0x7e57)
	img := raster.NewRGB(size, size)
	for p := range img.Pix {
		img.Pix[p] = uint8(rng.Uint64())
	}
	return img
}

// TestCorruptWeightsRejectNonFinite poisons a final-layer parameter (the
// effect of a flipped bit in a loaded checkpoint) and asserts the
// session refuses to argmax the resulting logits, failing typed with
// ErrNonFinite and naming the value kind.
func TestCorruptWeightsRejectNonFinite(t *testing.T) {
	for _, tc := range []struct {
		name   string
		poison float64
	}{
		{"NaN", math.NaN()},
		{"Inf", math.Inf(1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, err := New[float64](FastConfig(3))
			if err != nil {
				t.Fatal(err)
			}
			// The last parameter feeds the logits directly (no ReLU
			// between it and the output), so the poison cannot be masked.
			ps := m.Params()
			ps[len(ps)-1].W.Data[0] = tc.poison

			s := NewSession(m)
			_, err = s.PredictTiles([]*raster.RGB{corruptTile(16, 4)})
			if !errors.Is(err, ErrNonFinite) {
				t.Fatalf("PredictTiles = %v, want ErrNonFinite", err)
			}
			if !strings.Contains(err.Error(), tc.name) {
				t.Errorf("error %q does not name the value kind %q", err, tc.name)
			}
		})
	}
}

// TestCleanWeightsPassGuard is the control: an unpoisoned model predicts
// without tripping the non-finite guard.
func TestCleanWeightsPassGuard(t *testing.T) {
	m, err := New[float64](FastConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(m)
	if _, err := s.PredictTiles([]*raster.RGB{corruptTile(16, 4)}); err != nil {
		t.Fatalf("clean model tripped the guard: %v", err)
	}
}
