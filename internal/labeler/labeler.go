// Package labeler makes the auto-labeling step pluggable: the paper's
// HSV color-threshold segmentation (internal/autolabel) becomes one of
// three interchangeable labeling engines behind the Labeler interface,
// joined by mini-batch K-means and a diagonal-covariance Gaussian
// mixture fitted by EM — the unsupervised band-vector clustering the
// related Sentinel-2 lead-classification work reports at 99.6% agreement
// with ESA reference labels. Engines are selected on the CLIs with
// -labeler hsv|kmeans|gmm[:k] and threaded through dataset.BuildConfig,
// so the whole training workflow can run on any of them.
//
// Parallelism/bit-identity guarantees: every engine is deterministic in
// (image, config, seed) and byte-identical at any worker count. The
// clustering engines fit with a seeded noise.RNG whose draws never
// depend on scheduling (fitting is a serial recurrence; only bulk
// per-pixel passes fan out, over pool.Shared()), reductions accumulate
// fixed-size chunk partials in chunk order, and the GMM E-step routes
// its Gaussian log-densities through the tensor GEMM engine, which
// carries the same bit-identity guarantee. The package property tests
// assert worker-count invariance for every engine, mirroring the
// autolabel tests.
package labeler

import (
	"fmt"
	"strconv"
	"strings"

	"seaice/internal/autolabel"
	"seaice/internal/raster"
)

// Labeler is one labeling engine: it turns an RGB scene (or tile) into a
// per-pixel class map. Implementations must be deterministic in the
// image and their own configuration — the same input yields byte-
// identical labels at any pool.Shared() worker count — because shard
// checkpoints and golden tests fingerprint labeler output.
type Labeler interface {
	// Name returns the canonical engine spec, e.g. "hsv", "kmeans:3",
	// "gmm:2" — round-trippable through Parse and stable across runs, so
	// it can key checkpoints and reports.
	Name() string
	// Label classifies every pixel of img.
	Label(img *raster.RGB) (*raster.Labels, error)
}

// HSV is the paper's engine: fixed HSV threshold boxes (§III-B),
// delegated to internal/autolabel.
type HSV struct {
	T autolabel.Thresholds
}

// PaperHSV returns the HSV engine with the published Ross Sea
// thresholds.
func PaperHSV() HSV { return HSV{T: autolabel.PaperThresholds()} }

// Name implements Labeler.
func (h HSV) Name() string { return "hsv" }

// Label implements Labeler via autolabel.Label.
func (h HSV) Label(img *raster.RGB) (*raster.Labels, error) {
	return autolabel.Label(img, h.T)
}

// Parse resolves a CLI engine spec — "hsv", "kmeans", "gmm", optionally
// with a cluster count as in "kmeans:4" — into a Labeler. seed feeds the
// clustering engines' deterministic RNG; hsv ignores it. The empty spec
// selects hsv, the paper's engine.
func Parse(spec string, seed uint64) (Labeler, error) {
	name, arg, hasArg := strings.Cut(spec, ":")
	k := 0
	if hasArg {
		v, err := strconv.Atoi(arg)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("labeler: bad cluster count %q in spec %q", arg, spec)
		}
		k = v
	}
	switch name {
	case "", "hsv":
		if hasArg {
			return nil, fmt.Errorf("labeler: hsv takes no cluster count (got %q)", spec)
		}
		return PaperHSV(), nil
	case "kmeans":
		return KMeans{K: k, Seed: seed}, nil
	case "gmm":
		return GMM{K: k, Seed: seed}, nil
	default:
		return nil, fmt.Errorf("labeler: unknown engine %q (want hsv|kmeans|gmm[:k])", spec)
	}
}

// Fingerprint returns a string that changes whenever the labeler would
// produce different output: the engine name plus its full configuration.
// Shard and model checkpoints mix it into their keys so a resume never
// silently continues with labels from a different engine.
func Fingerprint(l Labeler) string {
	if l == nil {
		l = PaperHSV()
	}
	return fmt.Sprintf("%s %+v", l.Name(), l)
}

// classOfCenter maps a cluster centroid (mean band vector, each channel
// in [0,1]) to a sea-ice class through the paper's brightness bands: the
// centroid's HSV value channel is its brightest band (V = max(R,G,B)),
// classified water ≤ 30, thin ice 31–204, thick ice ≥ 205 on the 8-bit
// scale. Cluster counts above three simply fold multiple clusters into
// the same class.
func classOfCenter(c [3]float64) raster.Class {
	v := 255 * max(c[0], max(c[1], c[2]))
	switch {
	case v < 30.5:
		return raster.ClassWater
	case v < 204.5:
		return raster.ClassThinIce
	default:
		return raster.ClassThickIce
	}
}

// bandVec returns pixel i of img as a band vector scaled to [0,1] — the
// feature space both clustering engines operate in.
func bandVec(img *raster.RGB, i int) [3]float64 {
	return [3]float64{
		float64(img.Pix[3*i]) / 255,
		float64(img.Pix[3*i+1]) / 255,
		float64(img.Pix[3*i+2]) / 255,
	}
}

// chunkPix is the fixed pixel-chunk size for parallel passes whose
// results are reduced: boundaries depend only on the image size — never
// on the worker count — so chunk-ordered reductions are byte-identical
// on any pool.
const chunkPix = 8192

// chunks returns the fixed-size chunk count covering n pixels.
func chunks(n int) int { return (n + chunkPix - 1) / chunkPix }

// chunkBounds returns chunk ci's pixel range [lo, hi).
func chunkBounds(n, ci int) (lo, hi int) {
	lo = ci * chunkPix
	hi = lo + chunkPix
	if hi > n {
		hi = n
	}
	return lo, hi
}
