package pipeline

import (
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"seaice/internal/dataset"
)

// shardCheckpoint is the on-disk record of one completed shard. Key ties
// the record to the exact source content and build configuration, so a
// resume against different data silently falls back to recomputing.
type shardCheckpoint struct {
	Version int
	Key     string
	Scenes  []int
	Tiles   [][]dataset.Tile
}

const checkpointVersion = 1

// checkpointKey fingerprints everything a shard's tiles depend on.
func (s *Stream) checkpointKey() string {
	h := sha256.Sum256([]byte(fmt.Sprintf(
		"v%d|%d scenes|%dx%d|tile %d|filter %+v|labels %+v|src %s",
		checkpointVersion, s.n, s.w, s.h, s.cfg.Build.TileSize,
		s.cfg.Build.Filter, s.cfg.Build.Labels, s.src.Fingerprint(),
	)))
	return fmt.Sprintf("%x", h[:])
}

// shardPath names shard k's checkpoint file.
func (s *Stream) shardPath(k int) string {
	return filepath.Join(s.cfg.CheckpointDir, fmt.Sprintf("shard-%04d.gob", k))
}

// restoreShards loads every matching shard checkpoint and delivers its
// tiles straight to the assembler, bypassing the label and tiling
// stages. It returns the set of scene indices restored. Unreadable or
// mismatched files are treated as cache misses, never as errors.
func (s *Stream) restoreShards() map[int]bool {
	restored := make(map[int]bool)
	if s.cfg.CheckpointDir == "" {
		return restored
	}
	key := s.checkpointKey()
	for k := range s.shards {
		cp, err := readShard(s.shardPath(k))
		if err != nil || cp.Version != checkpointVersion || cp.Key != key {
			continue
		}
		if len(cp.Scenes) != len(s.shards[k]) || len(cp.Tiles) != len(s.shards[k]) {
			continue
		}
		ok := true
		for i, idx := range cp.Scenes {
			if idx != s.shards[k][i] || len(cp.Tiles[i]) != s.tilesPerScene {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		s.emit(Event{Kind: "resume", Shard: k, ScenesDone: s.completed()})
		for i, idx := range cp.Scenes {
			restored[idx] = true
			s.deliver(idx, cp.Tiles[i], false)
		}
	}
	return restored
}

// completed reads the global completion count.
func (s *Stream) completed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.doneCount
}

// saveShard persists a completed shard. Write failures are recorded as
// the stream's non-fatal checkpoint error (CheckpointErr) — a broken
// disk must not kill a compute run that can finish in memory.
func (s *Stream) saveShard(k int) {
	if s.cfg.CheckpointDir == "" {
		return
	}
	cp := shardCheckpoint{
		Version: checkpointVersion,
		Key:     s.checkpointKey(),
		Scenes:  s.shards[k],
	}
	s.mu.Lock()
	for _, idx := range s.shards[k] {
		cp.Tiles = append(cp.Tiles, s.tiles[idx])
	}
	s.mu.Unlock()

	err := func() error {
		if err := os.MkdirAll(s.cfg.CheckpointDir, 0o755); err != nil {
			return err
		}
		tmp, err := os.CreateTemp(s.cfg.CheckpointDir, "shard-*.tmp")
		if err != nil {
			return err
		}
		defer os.Remove(tmp.Name())
		if err := gob.NewEncoder(tmp).Encode(&cp); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Close(); err != nil {
			return err
		}
		return os.Rename(tmp.Name(), s.shardPath(k))
	}()
	if err != nil {
		s.mu.Lock()
		s.cpErr = fmt.Errorf("pipeline: checkpoint shard %d: %w", k, err)
		s.mu.Unlock()
	}
}

// CheckpointErr reports the last non-fatal checkpoint write failure, if
// any; the pipeline's data products are unaffected by it.
func (s *Stream) CheckpointErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cpErr
}

// readShard decodes one checkpoint file.
func readShard(path string) (*shardCheckpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var cp shardCheckpoint
	if err := gob.NewDecoder(f).Decode(&cp); err != nil {
		return nil, err
	}
	return &cp, nil
}
