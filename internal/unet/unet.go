// Package unet assembles the paper's U-Net semantic-segmentation model
// (§III-C, Fig 7) from the layers in internal/nn: a contracting path of
// double 3×3 convolutions with ReLU and 2×2 max-pooling, a bottleneck, an
// expanding path of 2×2 up-convolutions with skip-connection
// concatenation and double convolutions, dropout between convolutions,
// and a final 1×1 convolution onto the three sea-ice classes.
//
// PaperConfig reproduces the published architecture exactly — five down
// steps, one bottleneck, five up steps, 28 convolutional layers in total.
// FastConfig is the reduced preset the accuracy experiments run at
// (DESIGN.md §5): same block structure, three levels, eight base
// channels, sized for pure-Go training on a single core.
//
// The model is generic over the compute precision (tensor.Scalar):
// Model[float64] is the master/reference instantiation, Model[float32]
// the bandwidth-saving compute path training and serving default to.
//
// Determinism guarantees are precision-scoped: weight initialization and
// dropout are seeded (Config.Seed), and the float64 fused-kernel
// inference Session is bit-compatible with the float64 training-path
// forward — Session.Predict on a tile equals Model.Forward's argmax
// exactly, which is asserted in the infer tests. The float32 session
// runs its 3×3 convolutions through Winograd transforms, so it matches
// the float64 model within the documented tolerance bound instead
// (TestF32SessionWithinToleranceOfF64) while remaining deterministic
// bit-for-bit across runs. A Session reuses its buffers and serves one
// request at a time; concurrent servers allocate one session per
// worker.
package unet

import (
	"fmt"

	"seaice/internal/nn"
	"seaice/internal/noise"
	"seaice/internal/tensor"
)

// Config describes a U-Net variant.
type Config struct {
	// Depth is the number of down-sampling steps (paper: 5).
	Depth int
	// BaseChannels is the feature width of the first level (paper: 64);
	// level l uses BaseChannels·2^l.
	BaseChannels int
	// InChannels is 3 for RGB tiles.
	InChannels int
	// Classes is 3: thick ice, thin ice, open water.
	Classes int
	// DropoutRate regularizes between convolutions (paper explores
	// 0.1/0.2/0.3).
	DropoutRate float64
	// Seed drives weight initialization and dropout.
	Seed uint64
}

// PaperConfig is the published architecture: 5 down steps + bottleneck +
// 5 up steps = 28 conv layers (10 contracting + 2 bottleneck + 5 up-conv
// + 10 expanding + 1 final 1×1).
func PaperConfig(seed uint64) Config {
	return Config{Depth: 5, BaseChannels: 64, InChannels: 3, Classes: 3, DropoutRate: 0.2, Seed: seed}
}

// FastConfig is the single-core experiment preset.
func FastConfig(seed uint64) Config {
	return Config{Depth: 3, BaseChannels: 8, InChannels: 3, Classes: 3, DropoutRate: 0.1, Seed: seed}
}

// Validate rejects impossible configurations.
func (c Config) Validate() error {
	if c.Depth < 1 {
		return fmt.Errorf("unet: depth must be ≥1, got %d", c.Depth)
	}
	if c.BaseChannels < 1 || c.InChannels < 1 || c.Classes < 2 {
		return fmt.Errorf("unet: invalid channels (base %d, in %d, classes %d)", c.BaseChannels, c.InChannels, c.Classes)
	}
	if c.DropoutRate < 0 || c.DropoutRate >= 1 {
		return fmt.Errorf("unet: invalid dropout %f", c.DropoutRate)
	}
	return nil
}

// MinInputSize returns the smallest square input the network accepts
// (spatial size must survive Depth halvings).
func (c Config) MinInputSize() int { return 1 << c.Depth }

// NumConvLayers counts convolutional layers (incl. up-convolutions and
// the final 1×1): 2·Depth contracting + 2 bottleneck + Depth up-convs +
// 2·Depth expanding + 1 head — 28 for PaperConfig, matching §III-C1.
func (c Config) NumConvLayers() int { return 5*c.Depth + 3 }

// block is one double-convolution group.
type block[S tensor.Scalar] struct {
	conv1 *nn.Conv2D[S]
	relu1 *nn.ReLU[S]
	drop  *nn.Dropout[S]
	conv2 *nn.Conv2D[S]
	relu2 *nn.ReLU[S]
}

func newBlock[S tensor.Scalar](name string, inC, outC int, rate float64, rng *noise.RNG) *block[S] {
	return &block[S]{
		conv1: nn.NewConv2D[S](name+".conv1", inC, outC, 3, rng),
		relu1: nn.NewReLU[S](name + ".relu1"),
		drop:  nn.NewDropout[S](name+".drop", rate, rng),
		conv2: nn.NewConv2D[S](name+".conv2", outC, outC, 3, rng),
		relu2: nn.NewReLU[S](name + ".relu2"),
	}
}

func (b *block[S]) forward(x *tensor.Tensor[S], train bool) *tensor.Tensor[S] {
	x = b.relu1.Forward(b.conv1.Forward(x, train), train)
	x = b.drop.Forward(x, train)
	return b.relu2.Forward(b.conv2.Forward(x, train), train)
}

func (b *block[S]) backward(dy *tensor.Tensor[S]) *tensor.Tensor[S] {
	dy = b.conv2.Backward(b.relu2.Backward(dy))
	dy = b.drop.Backward(dy)
	return b.conv1.Backward(b.relu1.Backward(dy))
}

func (b *block[S]) params() []*nn.Param[S] {
	return append(b.conv1.Params(), b.conv2.Params()...)
}

// Model is an assembled U-Net.
type Model[S tensor.Scalar] struct {
	cfg Config

	enc        []*block[S]
	pools      []*nn.MaxPool2[S]
	bottleneck *block[S]
	ups        []*nn.ConvTranspose2x2[S]
	concats    []*nn.Concat[S]
	dec        []*block[S]
	final      *nn.Conv2D[S]

	// loss is the training criterion; nil selects the default softmax
	// cross-entropy on first use. SetCriterion swaps in an alternative
	// (e.g. nn.FocalCrossEntropy via train.Config.Focal). The criterion
	// is stateless apart from scratch buffers, so it is deliberately
	// not part of checkpoints or snapshots.
	loss nn.Criterion[S]

	// rng is the model's one deterministic stream (He init, then dropout
	// noise). Its position is part of the training state: the
	// fault-tolerance snapshots capture and restore it so a recovered
	// run draws the identical dropout masks a never-failed run would.
	rng *noise.RNG
}

// New builds a model with deterministic He initialization from cfg.Seed.
func New[S tensor.Scalar](cfg Config) (*Model[S], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := noise.NewRNG(cfg.Seed, 0x0de1)
	m := &Model[S]{cfg: cfg, rng: rng}

	ch := cfg.BaseChannels
	in := cfg.InChannels
	for l := 0; l < cfg.Depth; l++ {
		m.enc = append(m.enc, newBlock[S](fmt.Sprintf("enc%d", l), in, ch, cfg.DropoutRate, rng))
		m.pools = append(m.pools, nn.NewMaxPool2[S](fmt.Sprintf("pool%d", l)))
		in, ch = ch, ch*2
	}
	m.bottleneck = newBlock[S]("bottleneck", in, ch, cfg.DropoutRate, rng)

	for l := cfg.Depth - 1; l >= 0; l-- {
		skipC := cfg.BaseChannels << l
		m.ups = append(m.ups, nn.NewConvTranspose2x2[S](fmt.Sprintf("up%d", l), ch, skipC, rng))
		m.concats = append(m.concats, nn.NewConcat[S](fmt.Sprintf("concat%d", l)))
		m.dec = append(m.dec, newBlock[S](fmt.Sprintf("dec%d", l), skipC*2, skipC, cfg.DropoutRate, rng))
		ch = skipC
	}
	m.final = nn.NewConv2D[S]("final", cfg.BaseChannels, cfg.Classes, 1, rng)
	return m, nil
}

// Config returns the model's configuration.
func (m *Model[S]) Config() Config { return m.cfg }

// RNGState captures the position of the model's dropout/init stream —
// part of the exact training state alongside weights and optimizer
// moments.
func (m *Model[S]) RNGState() noise.RNGState { return m.rng.State() }

// SetRNGState rewinds the model's stream to a captured position, so a
// replayed or retried step draws the same dropout masks.
func (m *Model[S]) SetRNGState(st noise.RNGState) { m.rng.SetState(st) }

// WeightsF64 exports every parameter as float64 keyed by name — the
// snapshot/checkpoint representation (exact for either precision, since
// every float32 is representable in float64).
func (m *Model[S]) WeightsF64() map[string][]float64 {
	out := make(map[string][]float64)
	for _, p := range m.Params() {
		data := make([]float64, p.W.Len())
		for i, v := range p.W.Data {
			data[i] = float64(v)
		}
		out[p.Name] = data
	}
	return out
}

// SetWeightsF64 loads float64 weights by parameter name (rounding when S
// is float32 — the same conversion Load applies).
func (m *Model[S]) SetWeightsF64(weights map[string][]float64) error {
	for _, p := range m.Params() {
		data, ok := weights[p.Name]
		if !ok {
			return fmt.Errorf("unet: missing weights for %s", p.Name)
		}
		if len(data) != p.W.Len() {
			return fmt.Errorf("unet: weight %s has %d values, model needs %d", p.Name, len(data), p.W.Len())
		}
		for i, v := range data {
			p.W.Data[i] = S(v)
		}
	}
	return nil
}

// NumConvLayers counts the model's convolutional layers; see
// Config.NumConvLayers.
func (m *Model[S]) NumConvLayers() int {
	return 2*len(m.enc) + 2 + len(m.ups) + 2*len(m.dec) + 1
}

// Params lists every learnable parameter in a stable order.
func (m *Model[S]) Params() []*nn.Param[S] {
	var out []*nn.Param[S]
	for _, b := range m.enc {
		out = append(out, b.params()...)
	}
	out = append(out, m.bottleneck.params()...)
	for i := range m.ups {
		out = append(out, m.ups[i].Params()...)
		out = append(out, m.dec[i].params()...)
	}
	return append(out, m.final.Params()...)
}

// NumParams returns the total scalar parameter count.
func (m *Model[S]) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += p.W.Len()
	}
	return n
}

// Forward runs the network on x (N,3,H,W) and returns class logits
// (N,Classes,H,W). H and W must be divisible by 2^Depth.
func (m *Model[S]) Forward(x *tensor.Tensor[S], train bool) *tensor.Tensor[S] {
	skips := make([]*tensor.Tensor[S], len(m.enc))
	for l, b := range m.enc {
		s := b.forward(x, train)
		skips[l] = s
		x = m.pools[l].Forward(s, train)
	}
	x = m.bottleneck.forward(x, train)
	for i := range m.ups {
		l := m.cfg.Depth - 1 - i
		x = m.ups[i].Forward(x, train)
		x = m.concats[i].Join(skips[l], x)
		x = m.dec[i].forward(x, train)
	}
	return m.final.Forward(x, train)
}

// Backward propagates dL/dlogits through the whole graph, accumulating
// parameter gradients, and returns dL/dinput.
func (m *Model[S]) Backward(dy *tensor.Tensor[S]) *tensor.Tensor[S] {
	dy = m.final.Backward(dy)
	dskips := make([]*tensor.Tensor[S], len(m.enc))
	for i := len(m.ups) - 1; i >= 0; i-- {
		l := m.cfg.Depth - 1 - i
		dy = m.dec[i].backward(dy)
		var dskip *tensor.Tensor[S]
		dskip, dy = m.concats[i].Split(dy)
		dskips[l] = dskip
		dy = m.ups[i].Backward(dy)
	}
	dy = m.bottleneck.backward(dy)
	for l := len(m.enc) - 1; l >= 0; l-- {
		dy = m.pools[l].Backward(dy)
		dy.AddInPlace(dskips[l])
		dy = m.enc[l].backward(dy)
	}
	return dy
}

// SetCriterion selects the training loss for LossAndGrad; nil restores
// the default softmax cross-entropy. Swapping the criterion does not
// touch weights or optimizer state, so it composes with checkpoints and
// the fault-tolerance snapshots.
func (m *Model[S]) SetCriterion(c nn.Criterion[S]) { m.loss = c }

// criterion returns the active training loss, defaulting to softmax
// cross-entropy on first use.
func (m *Model[S]) criterion() nn.Criterion[S] {
	if m.loss == nil {
		m.loss = &nn.SoftmaxCrossEntropy[S]{}
	}
	return m.loss
}

// LossAndGrad computes the training criterion (softmax cross-entropy by
// default, see SetCriterion) on a forward pass and runs the full
// backward pass. It returns the mean loss.
func (m *Model[S]) LossAndGrad(x *tensor.Tensor[S], labels []uint8) (float64, error) {
	crit := m.criterion()
	logits := m.Forward(x, true)
	loss, err := crit.Loss(logits, labels)
	if err != nil {
		return 0, err
	}
	m.Backward(crit.Grad())
	return loss, nil
}

// Predict returns per-pixel class predictions for x.
func (m *Model[S]) Predict(x *tensor.Tensor[S]) []uint8 {
	return nn.Predict(m.Forward(x, false))
}
