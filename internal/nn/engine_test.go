package nn

import (
	"math"
	"testing"

	"seaice/internal/noise"
	"seaice/internal/pool"
	"seaice/internal/tensor"
)

// runSteps drives a layer through full forward/backward cycles on the
// same input, zeroing gradients between steps — the steady-state buffer
// reuse pattern of the training loop — and returns the gradients of the
// final step as detached copies.
func runSteps[S tensor.Scalar](layer Layer[S], x *tensor.Tensor[S], steps int) (dx *tensor.Tensor[S], grads []*tensor.Tensor[S]) {
	var y *tensor.Tensor[S]
	for s := 0; s < steps; s++ {
		ZeroGrads(layer.Params())
		y = layer.Forward(x, false)
		dx = layer.Backward(y.Clone()) // dL/dy = y for the ½Σy² loss
	}
	dxCopy := dx.Clone()
	for _, p := range layer.Params() {
		grads = append(grads, p.Grad.Clone())
	}
	return dxCopy, grads
}

// TestGradcheckWithBufferReuseAcrossSteps: after three consecutive
// forward/backward cycles through the reused scratch buffers, layer
// gradients must still match finite differences — stale buffer contents
// must never leak into a later step.
func TestGradcheckWithBufferReuseAcrossSteps(t *testing.T) {
	layers := []struct {
		name  string
		layer Layer[float64]
		shape []int
	}{
		{"conv3x3", NewConv2D[float64]("conv", 3, 4, 3, noise.NewRNG(1, 1)), []int{2, 3, 6, 5}},
		{"conv1x1", NewConv2D[float64]("conv1x1", 4, 3, 1, noise.NewRNG(2, 1)), []int{2, 4, 5, 5}},
		{"convT", NewConvTranspose2x2[float64]("up", 4, 2, noise.NewRNG(3, 1)), []int{2, 4, 3, 5}},
	}
	for _, lc := range layers {
		t.Run(lc.name, func(t *testing.T) {
			rng := noise.NewRNG(99, 7)
			x := tensor.New[float64](lc.shape...)
			x.FillRandn(rng, 1)

			dx, grads := runSteps(lc.layer, x, 3)

			forwardLoss := func() float64 {
				y := lc.layer.Forward(x, false)
				s := 0.0
				for _, v := range y.Data {
					s += v * v
				}
				return s / 2
			}
			const tol = 1e-6
			for i := 0; i < x.Len(); i += 1 + x.Len()/17 {
				want := numGrad(x.Data, i, forwardLoss)
				if got := dx.Data[i]; math.Abs(got-want) > tol*(1+math.Abs(want)) {
					t.Fatalf("input grad [%d] = %.6g, finite diff %.6g", i, got, want)
				}
			}
			for pi, p := range lc.layer.Params() {
				for i := 0; i < p.W.Len(); i += 1 + p.W.Len()/13 {
					want := numGrad(p.W.Data, i, forwardLoss)
					if got := grads[pi].Data[i]; math.Abs(got-want) > tol*(1+math.Abs(want)) {
						t.Fatalf("param %s grad [%d] = %.6g, finite diff %.6g", p.Name, i, got, want)
					}
				}
			}
		})
	}
}

// TestEngineStepsMatchLegacySteps: three consecutive engine steps must
// produce bit-identical gradients to three legacy (pre-engine, serial,
// allocate-per-step) steps for the convolution layers — the engine's
// accumulation orders are the reference's.
func TestEngineStepsMatchLegacySteps(t *testing.T) {
	// float64 is the master path: bit-identical to the legacy kernels.
	// float32 is tolerance-scoped — its 3×3 layers may take the Winograd
	// fast path, which reassociates arithmetic — so the f32 engine is
	// compared to the f32 legacy path within the documented bound instead
	// (accumulation length InC·9 with transform amplification headroom).
	t.Run("f64", func(t *testing.T) { testEngineStepsMatchLegacySteps[float64](t, 0) })
	t.Run("f32", func(t *testing.T) {
		testEngineStepsMatchLegacySteps[float32](t, tensor.PrecisionTolerance*9*4*64)
	})
}

func testEngineStepsMatchLegacySteps[S tensor.Scalar](t *testing.T, tol float64) {
	defer pool.SetSharedWorkers(0)
	build := func() []Layer[S] {
		return []Layer[S]{
			NewConv2D[S]("conv", 3, 4, 3, noise.NewRNG(11, 1)),
			NewConv2D[S]("conv1x1", 4, 3, 1, noise.NewRNG(12, 1)),
			NewConvTranspose2x2[S]("up", 4, 2, noise.NewRNG(13, 1)),
		}
	}
	shapes := [][]int{{2, 3, 8, 8}, {2, 4, 7, 7}, {2, 4, 4, 6}}

	legacy := build()
	SetLegacyKernels(true)
	var wantDx []*tensor.Tensor[S]
	var wantGrads [][]*tensor.Tensor[S]
	for li, l := range legacy {
		x := tensor.New[S](shapes[li]...)
		x.FillRandn(noise.NewRNG(uint64(li), 5), 1)
		dx, grads := runSteps(l, x, 3)
		wantDx = append(wantDx, dx)
		wantGrads = append(wantGrads, grads)
	}
	SetLegacyKernels(false)

	for _, workers := range []int{1, 4} {
		pool.SetSharedWorkers(workers)
		engine := build()
		for li, l := range engine {
			x := tensor.New[S](shapes[li]...)
			x.FillRandn(noise.NewRNG(uint64(li), 5), 1)
			dx, grads := runSteps(l, x, 3)
			for i := range wantDx[li].Data {
				if !closeEnough(float64(dx.Data[i]), float64(wantDx[li].Data[i]), tol) {
					t.Fatalf("workers=%d layer %s dx[%d] = %g, legacy %g", workers, l.Name(), i, float64(dx.Data[i]), float64(wantDx[li].Data[i]))
				}
			}
			for pi := range grads {
				for i := range grads[pi].Data {
					if !closeEnough(float64(grads[pi].Data[i]), float64(wantGrads[li][pi].Data[i]), tol) {
						t.Fatalf("workers=%d layer %s param %d grad[%d] = %g, legacy %g",
							workers, l.Name(), pi, i, float64(grads[pi].Data[i]), float64(wantGrads[li][pi].Data[i]))
					}
				}
			}
		}
	}
}

// closeEnough compares within a relative tolerance; tol 0 demands exact
// (bitwise) equality.
func closeEnough(got, want, tol float64) bool {
	if tol == 0 {
		return got == want
	}
	d := got - want
	if d < 0 {
		d = -d
	}
	lim := want
	if lim < 0 {
		lim = -lim
	}
	if lim < 1 {
		lim = 1
	}
	return d <= tol*lim
}
