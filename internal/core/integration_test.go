package core

import (
	"testing"
	"time"

	"seaice/internal/catalog"
	"seaice/internal/dataset"
	"seaice/internal/metrics"
	"seaice/internal/raster"
	"seaice/internal/scene"
	"seaice/internal/unet"
)

// TestCatalogToDatasetIntegration exercises the §III-A data-collection
// path end to end: query the archive by the paper's region and month,
// fetch the scenes, and build the labeled tile dataset from them.
func TestCatalogToDatasetIntegration(t *testing.T) {
	cfg := catalog.DefaultConfig(77)
	cfg.GridLat, cfg.GridLon = 2, 2
	cfg.Passes = 1
	cfg.SceneSize = 128
	cat, err := catalog.New(cfg)
	if err != nil {
		t.Fatalf("catalog: %v", err)
	}

	found := cat.Find(catalog.Query{
		Region:   catalog.RossSea,
		From:     time.Date(2019, 11, 1, 0, 0, 0, 0, time.UTC),
		To:       time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC),
		MaxCloud: -1,
	})
	if len(found) != 4 {
		t.Fatalf("found %d scenes, want 4", len(found))
	}
	scenes, err := cat.FetchAll(found)
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}

	build := dataset.DefaultBuild()
	build.TileSize = 32
	set, err := dataset.Build(scenes, build)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if len(set.Tiles) != 4*16 {
		t.Fatalf("built %d tiles, want 64", len(set.Tiles))
	}

	// The auto labels must be usable: they agree with manual labels on
	// the filtered imagery far better than chance.
	agree, total := 0, 0
	for _, tile := range set.Tiles {
		for i := range tile.Manual.Pix {
			if tile.Manual.Pix[i] == tile.Auto.Pix[i] {
				agree++
			}
			total++
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.85 {
		t.Fatalf("catalog-fed auto labels agree only %.3f with manual", frac)
	}
}

// TestInferenceRoundTrip: scene-level inference (Fig 9) must produce a
// stitched prediction of scene size that beats chance against truth even
// with an untrained model replaced by... a trained tiny model on the
// same distribution.
func TestInferenceRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a tiny model; skipped with -short")
	}
	cfg := QuickAccuracyConfig(555)
	cfg.Campaign.Scenes = 4
	cfg.Epochs = 6
	cfg.TrainTiles = 48
	cfg.TestTiles = 32
	res, err := RunAccuracy(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	// a fresh scene from the same campaign family
	sc := mustScene(t, 556)
	pred, err := Inference(res.UNetAuto, sc.Image, cfg.Build.TileSize, cfg.Build)
	if err != nil {
		t.Fatalf("inference: %v", err)
	}
	if pred.W != sc.Image.W || pred.H != sc.Image.H {
		t.Fatalf("prediction %dx%d, want scene size", pred.W, pred.H)
	}
	acc, err := metrics.PixelAccuracy(sc.Truth, pred)
	if err != nil {
		t.Fatalf("accuracy: %v", err)
	}
	t.Logf("scene-level inference accuracy: %.4f", acc)
	// Chance on these scenes is ~40% (majority class); a tiny model
	// on a 48-tile budget must still clear 0.70 on an unseen scene.
	if acc < 0.70 {
		t.Fatalf("inference accuracy %.4f below 0.70", acc)
	}
}

// TestPredictTileShape checks the tile-level prediction helper.
func TestPredictTileShape(t *testing.T) {
	m, err := unet.New[float64](unet.Config{Depth: 2, BaseChannels: 4, InChannels: 3, Classes: 3, Seed: 1})
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	img := raster.NewRGB(16, 16)
	lab, err := PredictTile(m, img)
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	if lab.W != 16 || lab.H != 16 {
		t.Fatalf("label map %dx%d", lab.W, lab.H)
	}
}

// mustScene renders a quick-config scene for integration tests.
func mustScene(t *testing.T, seed uint64) *scene.Scene {
	t.Helper()
	cfg := scene.DefaultConfig(seed)
	cfg.W, cfg.H = 128, 128
	sc, err := scene.Generate(cfg)
	if err != nil {
		t.Fatalf("scene: %v", err)
	}
	return sc
}
