package tensor

import (
	"fmt"

	"seaice/internal/pool"
)

// convOut returns the output spatial size of a convolution.
func convOut(h, kh, stride, pad int) int { return (h+2*pad-kh)/stride + 1 }

// Im2Col unfolds x (N,C,H,W) into a matrix of shape
// (C·KH·KW, N·OH·OW) for a convolution with the given kernel, stride and
// symmetric zero padding. Column j holds the receptive field of output
// position j, so a convolution becomes weights (Cout, C·KH·KW) × cols.
func Im2Col[S Scalar](x *Tensor[S], kh, kw, stride, pad int) *Tensor[S] {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("tensor: Im2Col needs NCHW input, got %v", x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := convOut(h, kh, stride, pad)
	ow := convOut(w, kw, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col output empty for input %v kernel %dx%d", x.Shape, kh, kw))
	}
	cols := New[S](c*kh*kw, n*oh*ow)
	Im2ColInto(cols, x, kh, kw, stride, pad)
	return cols
}

// Im2ColInto unfolds x into dst, which must be pre-shaped
// (C·KH·KW, N·OH·OW). dst is fully overwritten (padding positions are
// zeroed), so a grow-only scratch buffer can be reused across steps. Rows
// of dst are independent, which is what the row-stripe parallelism splits.
func Im2ColInto[S Scalar](dst, x *Tensor[S], kh, kw, stride, pad int) {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("tensor: Im2Col needs NCHW input, got %v", x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := convOut(h, kh, stride, pad)
	ow := convOut(w, kw, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col output empty for input %v kernel %dx%d", x.Shape, kh, kw))
	}
	rows := c * kh * kw
	colW := n * oh * ow
	if len(dst.Shape) != 2 || dst.Shape[0] != rows || dst.Shape[1] != colW {
		panic(fmt.Sprintf("tensor: Im2Col dst %v for %d×%d unfold", dst.Shape, rows, colW))
	}
	p := pool.Shared()
	if p.Workers() == 1 {
		im2ColRows(dst.Data, x.Data, n, c, h, w, kh, kw, stride, pad, oh, ow, 0, rows)
		return
	}
	p.MustMapRanges(rows, 1, func(lo, hi int) {
		im2ColRows(dst.Data, x.Data, n, c, h, w, kh, kw, stride, pad, oh, ow, lo, hi)
	})
}

// validRange returns the [lo, hi] output positions whose input index
// o·stride + k − pad lands inside [0, size); hi < lo means none do. The
// per-pixel padding guards of the naive loops become loop bounds, keeping
// the inner loops branch-free.
func validRange(size, k, stride, pad, outSize int) (lo, hi int) {
	lo = 0
	if d := pad - k; d > 0 {
		lo = (d + stride - 1) / stride
	}
	top := size - 1 + pad - k
	if top < 0 {
		return 0, -1
	}
	hi = top / stride
	if hi > outSize-1 {
		hi = outSize - 1
	}
	return lo, hi
}

// im2ColRows fills rows [lo,hi) of the unfold matrix; row r corresponds to
// the (channel, ky, kx) triple r = (ch·KH+ky)·KW+kx.
func im2ColRows[S Scalar](dst, x []S, n, c, h, w, kh, kw, stride, pad, oh, ow, lo, hi int) {
	colW := n * oh * ow
	for r := lo; r < hi; r++ {
		kx := r % kw
		ky := (r / kw) % kh
		ch := r / (kw * kh)
		row := dst[r*colW : (r+1)*colW]
		for i := range row {
			row[i] = 0
		}
		oyLo, oyHi := validRange(h, ky, stride, pad, oh)
		oxLo, oxHi := validRange(w, kx, stride, pad, ow)
		kyp, kxp := ky-pad, kx-pad
		for img := 0; img < n; img++ {
			src := ((img*c + ch) * h) * w
			dstOff := img * oh * ow
			for oy := oyLo; oy <= oyHi; oy++ {
				srow := src + (oy*stride+kyp)*w
				drow := dstOff + oy*ow
				if stride == 1 {
					copy(row[drow+oxLo:drow+oxHi+1], x[srow+oxLo+kxp:srow+oxHi+kxp+1])
					continue
				}
				for ox := oxLo; ox <= oxHi; ox++ {
					row[drow+ox] = x[srow+ox*stride+kxp]
				}
			}
		}
	}
}

// Col2Im folds a column matrix back into an (N,C,H,W) tensor, summing
// overlapping contributions — the adjoint of Im2Col, used by convolution
// backward passes to accumulate input gradients.
func Col2Im[S Scalar](cols *Tensor[S], n, c, h, w, kh, kw, stride, pad int) *Tensor[S] {
	x := New[S](n, c, h, w)
	Col2ImInto(x, cols, kh, kw, stride, pad)
	return x
}

// Col2ImInto folds cols into dst, which must be pre-shaped (N,C,H,W) and
// is fully overwritten. Channels write disjoint planes, so the fold is
// parallelized per channel; within a channel the accumulation order is the
// serial reference's (ky, kx, image, row ascending), keeping results
// bit-identical at any worker count.
func Col2ImInto[S Scalar](dst, cols *Tensor[S], kh, kw, stride, pad int) {
	if len(dst.Shape) != 4 {
		panic(fmt.Sprintf("tensor: Col2Im needs NCHW dst, got %v", dst.Shape))
	}
	n, c, h, w := dst.Shape[0], dst.Shape[1], dst.Shape[2], dst.Shape[3]
	oh := convOut(h, kh, stride, pad)
	ow := convOut(w, kw, stride, pad)
	if cols.Shape[0] != c*kh*kw || cols.Shape[1] != n*oh*ow {
		panic(fmt.Sprintf("tensor: Col2Im shape %v does not match target %dx%dx%dx%d k%dx%d", cols.Shape, n, c, h, w, kh, kw))
	}
	p := pool.Shared()
	if p.Workers() == 1 {
		col2ImChannels(dst.Data, cols.Data, n, c, h, w, kh, kw, stride, pad, oh, ow, 0, c)
		return
	}
	p.MustMapRanges(c, 1, func(lo, hi int) {
		col2ImChannels(dst.Data, cols.Data, n, c, h, w, kh, kw, stride, pad, oh, ow, lo, hi)
	})
}

// col2ImChannels folds the rows belonging to channels [lo,hi).
func col2ImChannels[S Scalar](x, cols []S, n, c, h, w, kh, kw, stride, pad, oh, ow, lo, hi int) {
	colW := n * oh * ow
	for ch := lo; ch < hi; ch++ {
		for img := 0; img < n; img++ {
			plane := x[((img*c+ch)*h)*w : ((img*c+ch)*h+h)*w]
			for i := range plane {
				plane[i] = 0
			}
		}
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := ((ch*kh+ky)*kw + kx) * colW
				oyLo, oyHi := validRange(h, ky, stride, pad, oh)
				oxLo, oxHi := validRange(w, kx, stride, pad, ow)
				kyp, kxp := ky-pad, kx-pad
				for img := 0; img < n; img++ {
					dst := ((img*c + ch) * h) * w
					src := row + img*oh*ow
					for oy := oyLo; oy <= oyHi; oy++ {
						drow := dst + (oy*stride+kyp)*w
						srow := src + oy*ow
						if stride == 1 {
							xr := x[drow+oxLo+kxp : drow+oxHi+kxp+1]
							cr := cols[srow+oxLo : srow+oxHi+1]
							for i, v := range cr {
								xr[i] += v
							}
							continue
						}
						for ox := oxLo; ox <= oxHi; ox++ {
							x[drow+ox*stride+kxp] += cols[srow+ox]
						}
					}
				}
			}
		}
	}
}
