package labeler

import (
	"fmt"
	"math"

	"seaice/internal/noise"
	"seaice/internal/pool"
	"seaice/internal/raster"
)

// KMeans labels by mini-batch K-means clustering (Sculley's web-scale
// variant) over per-pixel band vectors, with clusters mapped to classes
// by centroid brightness. Fitting is a serial recurrence over RNG-drawn
// mini-batches — deterministic in (image, config, Seed) by construction
// — and only the final full-image assignment pass fans out over
// pool.Shared(); each pixel's label depends on its own band vector
// alone, so the output is byte-identical at any worker count.
type KMeans struct {
	// K is the cluster count; 0 selects 8. The default deliberately
	// over-segments: clusters fold into the three classes by centroid
	// brightness, and finer clusters place the folded class boundaries
	// much closer to the HSV thresholds than one cluster per class
	// would (Euclidean midpoints between 3 centroids land far from the
	// paper's V-band edges; with 8 they align to ≥99% pixel agreement
	// on clean scenes — the floor the package tests assert).
	K int
	// Seed drives the deterministic RNG used for initialization and
	// mini-batch sampling.
	Seed uint64
	// Batch is the mini-batch size; 0 selects 1024.
	Batch int
	// Iters is the number of mini-batch update steps; 0 selects 60.
	Iters int
}

// kmeansDefaults resolves zero fields to their defaults.
func (k KMeans) kmeansDefaults() KMeans {
	if k.K == 0 {
		k.K = 8
	}
	if k.Batch == 0 {
		k.Batch = 1024
	}
	if k.Iters == 0 {
		k.Iters = 60
	}
	return k
}

// Name implements Labeler.
func (k KMeans) Name() string { return fmt.Sprintf("kmeans:%d", k.kmeansDefaults().K) }

// Label implements Labeler.
func (k KMeans) Label(img *raster.RGB) (*raster.Labels, error) {
	n := img.W * img.H
	if n == 0 {
		return nil, fmt.Errorf("labeler: kmeans on empty %dx%d image", img.W, img.H)
	}
	k = k.kmeansDefaults()
	if k.K < 1 || k.K > 256 {
		return nil, fmt.Errorf("labeler: kmeans cluster count %d outside [1,256]", k.K)
	}
	centers := k.fit(img)
	classes := make([]raster.Class, len(centers))
	for c := range centers {
		classes[c] = classOfCenter(centers[c])
	}

	out := raster.NewLabels(img.W, img.H)
	err := pool.Shared().Map(chunks(n), func(ci int) error {
		lo, hi := chunkBounds(n, ci)
		for i := lo; i < hi; i++ {
			out.Pix[i] = classes[nearest(centers, bandVec(img, i))]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// fit runs k-means++ seeding over an RNG-drawn candidate pool followed
// by Iters mini-batch update steps with per-center decaying learning
// rates. Everything here is a serial recurrence on one RNG stream, so
// the fitted centers never depend on scheduling. Exposed within the
// package so the GMM engine can reuse it for mean initialization.
func (k KMeans) fit(img *raster.RGB) [][3]float64 {
	n := img.W * img.H
	rng := noise.NewRNG(k.Seed, 0x6b6d65616e73) // stream "kmeans"

	// k-means++ over a bounded candidate pool: spread the initial
	// centers by sampling proportionally to squared distance from the
	// nearest center chosen so far.
	m := n
	if m > 2048 {
		m = 2048
	}
	cand := make([]int, m)
	for j := range cand {
		cand[j] = rng.Intn(n)
	}
	centers := make([][3]float64, k.K)
	centers[0] = bandVec(img, cand[rng.Intn(m)])
	d2 := make([]float64, m)
	for j := range d2 {
		d2[j] = dist2(bandVec(img, cand[j]), centers[0])
	}
	for c := 1; c < k.K; c++ {
		total := 0.0
		for _, d := range d2 {
			total += d
		}
		if total <= 0 {
			// Degenerate pool (e.g. constant image): fall back to
			// uniform draws; duplicate centers are harmless.
			centers[c] = bandVec(img, cand[rng.Intn(m)])
		} else {
			r := rng.Float64() * total
			pick := m - 1
			for j, d := range d2 {
				if r < d {
					pick = j
					break
				}
				r -= d
			}
			centers[c] = bandVec(img, cand[pick])
		}
		for j := range d2 {
			if d := dist2(bandVec(img, cand[j]), centers[c]); d < d2[j] {
				d2[j] = d
			}
		}
	}

	// Mini-batch updates: each drawn pixel pulls its nearest center
	// toward itself with a 1/count learning rate (Sculley 2010).
	counts := make([]float64, k.K)
	for it := 0; it < k.Iters; it++ {
		for b := 0; b < k.Batch; b++ {
			x := bandVec(img, rng.Intn(n))
			c := nearest(centers, x)
			counts[c]++
			eta := 1 / counts[c]
			for d := 0; d < 3; d++ {
				centers[c][d] += eta * (x[d] - centers[c][d])
			}
		}
	}
	return centers
}

// nearest returns the index of the center closest to x; ties resolve to
// the lowest index, keeping assignment deterministic.
func nearest(centers [][3]float64, x [3]float64) int {
	best, bestD := 0, math.Inf(1)
	for c := range centers {
		if d := dist2(centers[c], x); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// dist2 is squared Euclidean distance in band space.
func dist2(a, b [3]float64) float64 {
	dr := a[0] - b[0]
	dg := a[1] - b[1]
	db := a[2] - b[2]
	return dr*dr + dg*dg + db*db
}
