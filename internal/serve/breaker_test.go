package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is an injectable clock for breaker and token-bucket tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// TestBreakerStateMachine walks the full closed → open → half-open →
// closed cycle, including the failed-trial path back to open.
func TestBreakerStateMachine(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	b := NewBreaker(100*time.Millisecond, clock.Now)

	if b.State() != BreakerClosed || !b.Available() {
		t.Fatal("new breaker should be closed and available")
	}
	// One hard failure from a healthy baseline trips it (score 0 → 0.5 ≥
	// 0.45) — matching the old binary mark-down for clean kills.
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failure: %v, want open", b.State())
	}
	if b.Available() || b.TryProbe() {
		t.Fatal("open breaker inside cooldown must admit nothing")
	}

	clock.Advance(150 * time.Millisecond)
	if !b.Available() {
		t.Fatal("open breaker past cooldown should be probe-able")
	}
	if !b.TryProbe() {
		t.Fatal("first probe past cooldown should be admitted")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after probe claim: %v, want half-open", b.State())
	}

	// Failed trial → straight back to open with a fresh cooldown.
	b.Record(false)
	if b.State() != BreakerOpen || b.TryProbe() {
		t.Fatal("failed trial must reopen the breaker for a fresh cooldown")
	}
	clock.Advance(150 * time.Millisecond)
	if !b.TryProbe() {
		t.Fatal("probe after second cooldown should be admitted")
	}
	// Successful trial closes from any state.
	b.Record(true)
	if b.State() != BreakerClosed || !b.Available() {
		t.Fatal("successful trial must close the breaker")
	}
	if b.Score() >= breakerTrip {
		t.Fatalf("score %0.3f still above trip threshold after success", b.Score())
	}
}

// TestBreakerHalfOpenSingleTrial: while half-open, concurrent callers
// must win exactly one trial slot — the "exactly one request probes a
// recovering node" guarantee.
func TestBreakerHalfOpenSingleTrial(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	b := NewBreaker(50*time.Millisecond, clock.Now)
	b.Record(false) // trip
	clock.Advance(60 * time.Millisecond)

	var admitted atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.TryProbe() {
				admitted.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("%d concurrent probes admitted while half-open, want exactly 1", got)
	}
	// Release without a verdict frees the slot for the next trial.
	b.Release()
	if !b.TryProbe() {
		t.Fatal("released slot should be claimable again")
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatal("trial success should close")
	}
}

// TestBreakerFlakeDecay: isolated failures between successes must decay
// below the trip threshold instead of flapping the breaker open.
func TestBreakerFlakeDecay(t *testing.T) {
	b := NewBreaker(time.Second, nil)
	for i := 0; i < 10; i++ {
		b.Record(true)
		b.Record(true)
		b.Record(true)
	}
	if b.State() != BreakerClosed {
		t.Fatal("healthy breaker opened")
	}
	// A single failure after sustained success: score jumps to ~0.5 and
	// trips — by design, one hard failure is definitive for clean kills.
	// But a success immediately halves it back under the threshold.
	b.Record(false)
	b.Record(true)
	if b.State() != BreakerClosed || b.Score() >= breakerTrip {
		t.Fatalf("success did not recover: state %v score %.3f", b.State(), b.Score())
	}
}

// TestTokenBucket: the retry budget drains by Take and refills with
// time, capped at the bucket size.
func TestTokenBucket(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	tb := NewTokenBucket(4, 2, clock.Now)
	for i := 0; i < 4; i++ {
		if !tb.Take() {
			t.Fatalf("take %d from a full bucket of 4 failed", i)
		}
	}
	if tb.Take() {
		t.Fatal("empty bucket granted a token")
	}
	clock.Advance(time.Second) // +2 tokens at 2/s
	if !tb.Take() || !tb.Take() {
		t.Fatal("refilled tokens not granted")
	}
	if tb.Take() {
		t.Fatal("bucket granted more than the refill")
	}
	clock.Advance(time.Hour)
	if got := tb.Tokens(); got != 4 {
		t.Fatalf("bucket refilled to %g, want capped at 4", got)
	}
}
