package train

import (
	"testing"

	"seaice/internal/noise"
	"seaice/internal/raster"
	"seaice/internal/unet"
)

func synthSamples(seed uint64, n, size int) []Sample {
	rng := noise.NewRNG(seed, 1)
	out := make([]Sample, n)
	for i := range out {
		img := raster.NewRGB(size, size)
		lab := raster.NewLabels(size, size)
		for p := 0; p < size*size; p++ {
			// brightness-coded classes so the task is learnable
			c := raster.Class(rng.Intn(3))
			lab.Pix[p] = c
			var v uint8
			switch c {
			case raster.ClassWater:
				v = 20
			case raster.ClassThinIce:
				v = 120
			default:
				v = 230
			}
			img.Pix[3*p], img.Pix[3*p+1], img.Pix[3*p+2] = v, v, v
		}
		out[i] = Sample{Image: img, Labels: lab}
	}
	return out
}

func TestToTensorScalesAndOrders(t *testing.T) {
	s := synthSamples(1, 2, 4)
	x, labels, err := ToTensor[float64](s)
	if err != nil {
		t.Fatalf("totensor: %v", err)
	}
	if x.Shape[0] != 2 || x.Shape[1] != 3 || x.Shape[2] != 4 || x.Shape[3] != 4 {
		t.Fatalf("shape %v", x.Shape)
	}
	if len(labels) != 32 {
		t.Fatalf("labels %d", len(labels))
	}
	// channel scaling: pixel value v maps to v/255
	wantR := float64(s[0].Image.Pix[0]) / 255
	if x.Data[0] != wantR {
		t.Fatalf("red channel %f, want %f", x.Data[0], wantR)
	}
}

func TestToTensorErrors(t *testing.T) {
	if _, _, err := ToTensor[float64](nil); err == nil {
		t.Fatal("expected empty-batch error")
	}
	a := synthSamples(2, 1, 4)[0]
	b := synthSamples(3, 1, 8)[0]
	if _, _, err := ToTensor[float64]([]Sample{a, b}); err == nil {
		t.Fatal("expected size-mismatch error")
	}
	bad := a
	bad.Labels = raster.NewLabels(3, 4)
	if _, _, err := ToTensor[float64]([]Sample{bad}); err == nil {
		t.Fatal("expected label-size error")
	}
}

func TestBatcherCoversDatasetEachEpoch(t *testing.T) {
	s := synthSamples(4, 10, 4)
	b, err := NewBatcher(s, 3, 7)
	if err != nil {
		t.Fatalf("batcher: %v", err)
	}
	if b.NumBatches() != 4 || b.Len() != 10 {
		t.Fatalf("batches %d len %d", b.NumBatches(), b.Len())
	}
	for epoch := 0; epoch < 3; epoch++ {
		batches := b.Epoch(epoch)
		total := 0
		for _, batch := range batches {
			total += len(batch)
		}
		if total != 10 {
			t.Fatalf("epoch %d covers %d samples", epoch, total)
		}
	}
	// different epochs shuffle differently (with overwhelming probability)
	e0 := b.Epoch(0)
	e1 := b.Epoch(1)
	same := true
	for i := range e0[0] {
		if e0[0][i].Image != e1[0][i].Image {
			same = false
		}
	}
	if same {
		t.Fatal("epochs not reshuffled")
	}
	// determinism for the same epoch index
	e0b := b.Epoch(0)
	for i := range e0[0] {
		if e0[0][i].Image != e0b[0][i].Image {
			t.Fatal("epoch shuffle not deterministic")
		}
	}
}

func TestFitLearnsBrightnessTask(t *testing.T) {
	samples := synthSamples(5, 12, 8)
	cfg := unet.Config{Depth: 2, BaseChannels: 4, InChannels: 3, Classes: 3, DropoutRate: 0, Seed: 7}
	m, err := unet.New[float64](cfg)
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	var losses []float64
	res, err := Fit(m, samples, Config{
		Epochs: 12, BatchSize: 4, LR: 0.02, Seed: 3,
		Progress: func(_ int, l float64) { losses = append(losses, l) },
	})
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	if len(losses) != 12 || res.Steps != 12*3 {
		t.Fatalf("bookkeeping wrong: %d losses, %d steps", len(losses), res.Steps)
	}
	if losses[len(losses)-1] > losses[0]*0.5 {
		t.Fatalf("loss barely moved: %f → %f", losses[0], losses[len(losses)-1])
	}

	conf, err := Evaluate(m, samples)
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	if conf.Accuracy() < 0.9 {
		t.Fatalf("brightness task accuracy %.4f < 0.9", conf.Accuracy())
	}
}

func TestFitValidation(t *testing.T) {
	samples := synthSamples(6, 2, 4)
	cfg := unet.Config{Depth: 1, BaseChannels: 2, InChannels: 3, Classes: 3, Seed: 1}
	m, _ := unet.New[float64](cfg)
	if _, err := Fit(m, samples, Config{Epochs: 0, BatchSize: 1, LR: 0.01}); err == nil {
		t.Fatal("expected epochs error")
	}
	if _, err := Fit(m, samples, Config{Epochs: 1, BatchSize: 0, LR: 0.01}); err == nil {
		t.Fatal("expected batch error")
	}
	if _, err := Fit(m, nil, Config{Epochs: 1, BatchSize: 1, LR: 0.01}); err == nil {
		t.Fatal("expected empty-dataset error")
	}
}
