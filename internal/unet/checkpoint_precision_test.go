package unet

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
)

// legacyEncode writes the pre-header bare-gob format — what every
// checkpoint file looked like before the versioned header existed.
func legacyEncode(t *testing.T, m *Model[float64]) []byte {
	t.Helper()
	ck := checkpoint{Config: m.cfg, Weights: make(map[string][]float64)}
	for _, p := range m.Params() {
		ck.Weights[p.Name] = p.W.Data
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLegacyCheckpointLoadsIntoBothPrecisions: a bare-gob float64
// checkpoint (no magic header) must load into a float64 model bit-for-bit
// and into a float32 model as the rounded weights.
func TestLegacyCheckpointLoadsIntoBothPrecisions(t *testing.T) {
	m, err := New[float64](FastConfig(31))
	if err != nil {
		t.Fatal(err)
	}
	legacy := legacyEncode(t, m)

	m64, err := Load[float64](bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy → float64: %v", err)
	}
	for i, p := range m.Params() {
		for j, w := range p.W.Data {
			if m64.Params()[i].W.Data[j] != w {
				t.Fatalf("legacy f64 load: %s[%d] differs", p.Name, j)
			}
		}
	}

	m32, err := Load[float32](bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy → float32: %v", err)
	}
	for i, p := range m.Params() {
		for j, w := range p.W.Data {
			if m32.Params()[i].W.Data[j] != float32(w) {
				t.Fatalf("legacy f32 load: %s[%d] = %g, want rounded %g", p.Name, j, m32.Params()[i].W.Data[j], float32(w))
			}
		}
	}
}

// TestF32CheckpointRoundTrip: every float32 value is exactly representable
// in the file's float64 storage, so a float32 model round-trips
// bit-for-bit through Save/Load.
func TestF32CheckpointRoundTrip(t *testing.T) {
	m, err := New[float32](FastConfig(32))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), ckptMagic) {
		t.Fatal("versioned checkpoint must start with the magic header")
	}
	got, err := Load[float32](&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range m.Params() {
		for j, w := range p.W.Data {
			if got.Params()[i].W.Data[j] != w {
				t.Fatalf("f32 round trip: %s[%d] differs", p.Name, j)
			}
		}
	}
}

// TestCrossPrecisionCheckpointLoad: a versioned float64 checkpoint loads
// into a float32 model (down-converted) and a float32 checkpoint loads
// into a float64 model (exactly widened).
func TestCrossPrecisionCheckpointLoad(t *testing.T) {
	m64, err := New[float64](FastConfig(33))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m64.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m32, err := Load[float32](bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("v2 f64 → f32: %v", err)
	}
	for i, p := range m64.Params() {
		for j, w := range p.W.Data {
			if m32.Params()[i].W.Data[j] != float32(w) {
				t.Fatalf("f64→f32: %s[%d] not the rounded weight", p.Name, j)
			}
		}
	}

	var buf32 bytes.Buffer
	if err := m32.Save(&buf32); err != nil {
		t.Fatal(err)
	}
	back, err := Load[float64](&buf32)
	if err != nil {
		t.Fatalf("v2 f32 → f64: %v", err)
	}
	for i, p := range m32.Params() {
		for j, w := range p.W.Data {
			if back.Params()[i].W.Data[j] != float64(w) {
				t.Fatalf("f32→f64: %s[%d] not exactly widened", p.Name, j)
			}
		}
	}
}
