package ring

import (
	"math"
	"testing"
)

// TestAllReduceMeanChunkedMatchesMean: the chunked concurrent reduce must
// produce the same means as the single-shot reduce (exactly, for these
// small rank counts) and leave all ranks identical.
func TestAllReduceMeanChunkedMatchesMean(t *testing.T) {
	for _, tc := range []struct{ p, n, chunk int }{
		{1, 100, 16},
		{2, 5, 16},   // n < chunk: falls back to one reduce
		{3, 100, 16}, // uneven tail segment
		{4, 1 << 12, 256},
		{5, 997, 64}, // prime length
	} {
		ref := make([][]float64, tc.p)
		got := make([][]float64, tc.p)
		for r := 0; r < tc.p; r++ {
			ref[r] = make([]float64, tc.n)
			got[r] = make([]float64, tc.n)
			for i := range ref[r] {
				v := float64(r*31+i%17) * 0.25
				ref[r][i], got[r][i] = v, v
			}
		}
		if err := AllReduceMean(ref); err != nil {
			t.Fatalf("p=%d: mean: %v", tc.p, err)
		}
		if err := AllReduceMeanChunked(got, tc.chunk); err != nil {
			t.Fatalf("p=%d: chunked: %v", tc.p, err)
		}
		for r := 0; r < tc.p; r++ {
			for i := range got[r] {
				if math.Abs(got[r][i]-ref[r][i]) > 1e-12 {
					t.Fatalf("p=%d n=%d chunk=%d: rank %d elem %d = %g, want %g",
						tc.p, tc.n, tc.chunk, r, i, got[r][i], ref[r][i])
				}
				if got[r][i] != got[0][i] {
					t.Fatalf("p=%d: rank %d diverged from rank 0 at %d", tc.p, r, i)
				}
			}
		}
	}
}

// TestAllReduceMeanChunkedRejectsMismatch mirrors the length validation of
// the unchunked entry points.
func TestAllReduceMeanChunkedRejectsMismatch(t *testing.T) {
	if err := AllReduceMeanChunked[float64](nil, 8); err == nil {
		t.Fatalf("empty rank set accepted")
	}
	if err := AllReduceMeanChunked([][]float64{make([]float64, 4), make([]float64, 5)}, 2); err == nil {
		t.Fatalf("mismatched lengths accepted")
	}
}
