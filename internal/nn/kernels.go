package nn

import (
	"seaice/internal/pool"
	"seaice/internal/tensor"
)

// Direct NCHW convolution kernels shared by the training engine (Conv2D,
// ConvTranspose2x2) and the inference session in internal/unet. They avoid
// materializing im2col matrices and fuse bias (and optionally ReLU) into
// the output pass. Accumulation order per output element matches the
// im2col matrix product exactly — channel-major, then kernel row, then
// kernel column, bias last — with zero-padding taps skipped (those
// contribute an exact +0 in the im2col formulation), so results are
// bit-identical to the reference path.

// Conv3x3Planes computes a same-padded 3×3 stride-1 convolution with fused
// bias (and optionally ReLU) directly on NCHW planes. The input may be
// split across two backing buffers to virtualize the U-Net skip
// concatenation: channels [0, ca) read from xa, channels [ca, ca+cb) from
// xb. Output planes are independent, so the (image, out-channel) pairs are
// distributed over the provided pool; pass pool.Serial() from contexts
// that supply their own concurrency (e.g. per-worker inference sessions).
func Conv3x3Planes[S tensor.Scalar](p *pool.Pool, c *Conv2D[S], xa []S, ca int, xb []S, cb int, n, h, w int, dst []S, relu bool) {
	inC := ca + cb
	plane := h * w
	tasks := n * c.OutC
	minGrain := 1
	if g := (1 << 14) / (plane*inC + 1); g > 1 {
		minGrain = g // keep at least ~16k tap-multiplies per task
	}
	if p.Workers() == 1 {
		conv3x3Range(c, xa, ca, xb, cb, h, w, dst, relu, 0, tasks)
		return
	}
	p.MustMapRanges(tasks, minGrain, func(lo, hi int) {
		conv3x3Range(c, xa, ca, xb, cb, h, w, dst, relu, lo, hi)
	})
}

// conv3x3Range computes (image, out-channel) pairs [lo,hi).
func conv3x3Range[S tensor.Scalar](c *Conv2D[S], xa []S, ca int, xb []S, cb int, h, w int, dst []S, relu bool, lo, hi int) {
	inC := ca + cb
	plane := h * w
	wd := c.Weight.W.Data
	for t := lo; t < hi; t++ {
		img, oc := t/c.OutC, t%c.OutC
		dp := dst[(img*c.OutC+oc)*plane : (img*c.OutC+oc+1)*plane]
		for i := range dp {
			dp[i] = 0
		}
		wrow := wd[oc*inC*9 : (oc+1)*inC*9]
		for ic := 0; ic < inC; ic++ {
			var xp []S
			if ic < ca {
				xp = xa[(img*ca+ic)*plane : (img*ca+ic+1)*plane]
			} else {
				xp = xb[(img*cb+ic-ca)*plane : (img*cb+ic-ca+1)*plane]
			}
			Acc3x3(dp, xp, wrow[ic*9:ic*9+9], h, w)
		}
		b := c.Bias.W.Data[oc]
		if relu {
			for i, v := range dp {
				v += b
				if v < 0 {
					v = 0
				}
				dp[i] = v
			}
		} else {
			for i := range dp {
				dp[i] += b
			}
		}
	}
}

// Acc3x3 accumulates one input plane's 3×3 contribution into dst.
// Taps falling into the zero padding are skipped (they contribute
// exactly zero in the im2col formulation).
func Acc3x3[S tensor.Scalar](dst, xp, k []S, h, w int) {
	if w < 3 || h < 1 {
		acc3x3Small(dst, xp, k, h, w)
		return
	}
	w00, w01, w02 := k[0], k[1], k[2]
	w10, w11, w12 := k[3], k[4], k[5]
	w20, w21, w22 := k[6], k[7], k[8]
	for oy := 0; oy < h; oy++ {
		d := dst[oy*w : (oy+1)*w]
		r1 := xp[oy*w : (oy+1)*w]
		var r0, r2 []S
		if oy > 0 {
			r0 = xp[(oy-1)*w : oy*w]
		}
		if oy < h-1 {
			r2 = xp[(oy+1)*w : (oy+2)*w]
		}
		switch {
		case r0 != nil && r2 != nil:
			// Interior rows: fully unrolled 9-tap kernel.
			acc := d[0]
			acc += w01 * r0[0]
			acc += w02 * r0[1]
			acc += w11 * r1[0]
			acc += w12 * r1[1]
			acc += w21 * r2[0]
			acc += w22 * r2[1]
			d[0] = acc
			for ox := 1; ox < w-1; ox++ {
				acc := d[ox]
				acc += w00 * r0[ox-1]
				acc += w01 * r0[ox]
				acc += w02 * r0[ox+1]
				acc += w10 * r1[ox-1]
				acc += w11 * r1[ox]
				acc += w12 * r1[ox+1]
				acc += w20 * r2[ox-1]
				acc += w21 * r2[ox]
				acc += w22 * r2[ox+1]
				d[ox] = acc
			}
			acc = d[w-1]
			acc += w00 * r0[w-2]
			acc += w01 * r0[w-1]
			acc += w10 * r1[w-2]
			acc += w11 * r1[w-1]
			acc += w20 * r2[w-2]
			acc += w21 * r2[w-1]
			d[w-1] = acc
		case r2 != nil:
			// Top row (no r0).
			acc := d[0]
			acc += w11 * r1[0]
			acc += w12 * r1[1]
			acc += w21 * r2[0]
			acc += w22 * r2[1]
			d[0] = acc
			for ox := 1; ox < w-1; ox++ {
				acc := d[ox]
				acc += w10 * r1[ox-1]
				acc += w11 * r1[ox]
				acc += w12 * r1[ox+1]
				acc += w20 * r2[ox-1]
				acc += w21 * r2[ox]
				acc += w22 * r2[ox+1]
				d[ox] = acc
			}
			acc = d[w-1]
			acc += w10 * r1[w-2]
			acc += w11 * r1[w-1]
			acc += w20 * r2[w-2]
			acc += w21 * r2[w-1]
			d[w-1] = acc
		case r0 != nil:
			// Bottom row (no r2).
			acc := d[0]
			acc += w01 * r0[0]
			acc += w02 * r0[1]
			acc += w11 * r1[0]
			acc += w12 * r1[1]
			d[0] = acc
			for ox := 1; ox < w-1; ox++ {
				acc := d[ox]
				acc += w00 * r0[ox-1]
				acc += w01 * r0[ox]
				acc += w02 * r0[ox+1]
				acc += w10 * r1[ox-1]
				acc += w11 * r1[ox]
				acc += w12 * r1[ox+1]
				d[ox] = acc
			}
			acc = d[w-1]
			acc += w00 * r0[w-2]
			acc += w01 * r0[w-1]
			acc += w10 * r1[w-2]
			acc += w11 * r1[w-1]
			d[w-1] = acc
		default:
			// Single-row plane.
			acc3x3Small(dst[oy*w:(oy+1)*w], r1, k, 1, w)
		}
	}
}

// acc3x3Small is the fully guarded fallback for planes too small for the
// unrolled kernel.
func acc3x3Small[S tensor.Scalar](dst, xp, k []S, h, w int) {
	for oy := 0; oy < h; oy++ {
		for ox := 0; ox < w; ox++ {
			acc := dst[oy*w+ox]
			for ky := 0; ky < 3; ky++ {
				iy := oy + ky - 1
				if iy < 0 || iy >= h {
					continue
				}
				for kx := 0; kx < 3; kx++ {
					ix := ox + kx - 1
					if ix < 0 || ix >= w {
						continue
					}
					acc += k[ky*3+kx] * xp[iy*w+ix]
				}
			}
			dst[oy*w+ox] = acc
		}
	}
}

// Conv1x1Planes computes a 1×1 convolution with bias on NCHW planes.
func Conv1x1Planes[S tensor.Scalar](p *pool.Pool, c *Conv2D[S], x []S, inC, n, h, w int, dst []S) {
	if p.Workers() == 1 {
		conv1x1Range(c, x, inC, h, w, dst, 0, n*c.OutC)
		return
	}
	p.MustMapRanges(n*c.OutC, 1, func(lo, hi int) {
		conv1x1Range(c, x, inC, h, w, dst, lo, hi)
	})
}

// conv1x1Range computes (image, out-channel) pairs [lo,hi).
func conv1x1Range[S tensor.Scalar](c *Conv2D[S], x []S, inC, h, w int, dst []S, lo, hi int) {
	plane := h * w
	wd := c.Weight.W.Data
	for t := lo; t < hi; t++ {
		img, oc := t/c.OutC, t%c.OutC
		dp := dst[(img*c.OutC+oc)*plane : (img*c.OutC+oc+1)*plane]
		for i := range dp {
			dp[i] = 0
		}
		for ic := 0; ic < inC; ic++ {
			wv := wd[oc*inC+ic]
			xp := x[(img*inC+ic)*plane : (img*inC+ic+1)*plane]
			for i, v := range xp {
				dp[i] += wv * v
			}
		}
		b := c.Bias.W.Data[oc]
		for i := range dp {
			dp[i] += b
		}
	}
}

// MaxPool2Planes applies 2×2 stride-2 max pooling over nc planes of h×w.
func MaxPool2Planes[S tensor.Scalar](x []S, nc, h, w int, dst []S) {
	oh, ow := h/2, w/2
	for p := 0; p < nc; p++ {
		base := p * h * w
		oi := p * oh * ow
		for oy := 0; oy < oh; oy++ {
			i0 := base + (2*oy)*w
			i1 := base + (2*oy+1)*w
			for ox := 0; ox < ow; ox++ {
				bv := x[i0+2*ox]
				if v := x[i0+2*ox+1]; v > bv {
					bv = v
				}
				if v := x[i1+2*ox]; v > bv {
					bv = v
				}
				if v := x[i1+2*ox+1]; v > bv {
					bv = v
				}
				dst[oi] = bv
				oi++
			}
		}
	}
}

// ConvT2x2Planes computes the stride-2 2×2 transposed convolution with
// bias on NCHW planes. With kernel 2 and stride 2 the output blocks do not
// overlap, so each (image, out-channel) plane is independent and the pairs
// are distributed over the provided pool; per element the input channels
// accumulate in ascending order, bias last, matching the reference.
func ConvT2x2Planes[S tensor.Scalar](p *pool.Pool, u *ConvTranspose2x2[S], x []S, n, h, w int, dst []S) {
	if p.Workers() == 1 {
		convT2x2Range(u, x, h, w, dst, 0, n*u.OutC)
		return
	}
	p.MustMapRanges(n*u.OutC, 1, func(lo, hi int) {
		convT2x2Range(u, x, h, w, dst, lo, hi)
	})
}

// convT2x2Range computes (image, out-channel) planes [lo,hi).
func convT2x2Range[S tensor.Scalar](u *ConvTranspose2x2[S], x []S, h, w int, dst []S, lo, hi int) {
	plane := 4 * h * w
	for t := lo; t < hi; t++ {
		img, oc := t/u.OutC, t%u.OutC
		yp := dst[(img*u.OutC+oc)*plane : (img*u.OutC+oc+1)*plane]
		for i := range yp {
			yp[i] = 0
		}
		for ic := 0; ic < u.InC; ic++ {
			k := u.Weight.W.Data[ic*u.OutC*4+oc*4 : ic*u.OutC*4+oc*4+4]
			k0, k1, k2, k3 := k[0], k[1], k[2], k[3]
			xp := x[(img*u.InC+ic)*h*w : (img*u.InC+ic+1)*h*w]
			for iy := 0; iy < h; iy++ {
				row0 := yp[(2*iy)*(2*w):]
				row1 := yp[(2*iy+1)*(2*w):]
				xr := xp[iy*w : (iy+1)*w]
				for ix, v := range xr {
					row0[2*ix] += v * k0
					row0[2*ix+1] += v * k1
					row1[2*ix] += v * k2
					row1[2*ix+1] += v * k3
				}
			}
		}
		b := u.Bias.W.Data[oc]
		for i := range yp {
			yp[i] += b
		}
	}
}

// poolMapChannels runs fn(c) for every channel in [0, n) on the shared
// pool; channels own disjoint output slices so no synchronization is
// needed beyond the pool's join.
func poolMapChannels(n int, fn func(c int)) {
	p := pool.Shared()
	if p.Workers() == 1 {
		for c := 0; c < n; c++ {
			fn(c)
		}
		return
	}
	p.MustMapRanges(n, 1, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			fn(c)
		}
	})
}

// conv3x3WeightGrad accumulates the weight gradient of a same-padded 3×3
// stride-1 convolution directly from the input planes and the
// output-channel-major gradient dout (OutC, N·H·W), without an im2col
// matrix. For each (oc, ic) pair the nine taps keep independent
// accumulator chains over the (image, row, column ascending) order — the
// same per-element order as dW = dout × colsᵀ, with zero-padding taps
// skipped (exact +0 terms). Out-channel rows of the gradient are disjoint,
// so they parallelize freely.
func conv3x3WeightGrad[S tensor.Scalar](c *Conv2D[S], x []S, dout []S, n, h, w int) {
	p := pool.Shared()
	if p.Workers() == 1 {
		conv3x3WeightGradRange(c, x, dout, n, h, w, 0, c.OutC)
		return
	}
	p.MustMapRanges(c.OutC, 1, func(lo, hi int) {
		conv3x3WeightGradRange(c, x, dout, n, h, w, lo, hi)
	})
}

// conv3x3WeightGradRange accumulates the gradient rows of out-channels
// [lo,hi).
func conv3x3WeightGradRange[S tensor.Scalar](c *Conv2D[S], x []S, dout []S, n, h, w, lo, hi int) {
	plane := h * w
	inC := c.InC
	gd := c.Weight.Grad.Data
	for oc := lo; oc < hi; oc++ {
		dbase := dout[oc*n*plane : (oc+1)*n*plane]
		grow := gd[oc*inC*9 : (oc+1)*inC*9]
		for ic := 0; ic < inC; ic++ {
			var s00, s01, s02, s10, s11, s12, s20, s21, s22 S
			for img := 0; img < n; img++ {
				xp := x[(img*inC+ic)*plane : (img*inC+ic+1)*plane]
				dp := dbase[img*plane : (img+1)*plane]
				for oy := 0; oy < h; oy++ {
					dr := dp[oy*w : (oy+1)*w]
					r1 := xp[oy*w : (oy+1)*w]
					var r0, r2 []S
					if oy > 0 {
						r0 = xp[(oy-1)*w : oy*w]
					}
					if oy < h-1 {
						r2 = xp[(oy+1)*w : (oy+2)*w]
					}
					if w < 3 {
						// Degenerate width: fully guarded taps.
						for ox := 0; ox < w; ox++ {
							g := dr[ox]
							if r0 != nil {
								if ox > 0 {
									s00 += g * r0[ox-1]
								}
								s01 += g * r0[ox]
								if ox < w-1 {
									s02 += g * r0[ox+1]
								}
							}
							if ox > 0 {
								s10 += g * r1[ox-1]
							}
							s11 += g * r1[ox]
							if ox < w-1 {
								s12 += g * r1[ox+1]
							}
							if r2 != nil {
								if ox > 0 {
									s20 += g * r2[ox-1]
								}
								s21 += g * r2[ox]
								if ox < w-1 {
									s22 += g * r2[ox+1]
								}
							}
						}
						continue
					}
					// Left edge (ox = 0): no ox-1 taps.
					g := dr[0]
					if r0 != nil {
						s01 += g * r0[0]
						s02 += g * r0[1]
					}
					s11 += g * r1[0]
					s12 += g * r1[1]
					if r2 != nil {
						s21 += g * r2[0]
						s22 += g * r2[1]
					}
					// Interior: branch-free nine-tap accumulation.
					switch {
					case r0 != nil && r2 != nil:
						for ox := 1; ox < w-1; ox++ {
							g := dr[ox]
							s00 += g * r0[ox-1]
							s01 += g * r0[ox]
							s02 += g * r0[ox+1]
							s10 += g * r1[ox-1]
							s11 += g * r1[ox]
							s12 += g * r1[ox+1]
							s20 += g * r2[ox-1]
							s21 += g * r2[ox]
							s22 += g * r2[ox+1]
						}
					case r2 != nil:
						for ox := 1; ox < w-1; ox++ {
							g := dr[ox]
							s10 += g * r1[ox-1]
							s11 += g * r1[ox]
							s12 += g * r1[ox+1]
							s20 += g * r2[ox-1]
							s21 += g * r2[ox]
							s22 += g * r2[ox+1]
						}
					case r0 != nil:
						for ox := 1; ox < w-1; ox++ {
							g := dr[ox]
							s00 += g * r0[ox-1]
							s01 += g * r0[ox]
							s02 += g * r0[ox+1]
							s10 += g * r1[ox-1]
							s11 += g * r1[ox]
							s12 += g * r1[ox+1]
						}
					default:
						for ox := 1; ox < w-1; ox++ {
							g := dr[ox]
							s10 += g * r1[ox-1]
							s11 += g * r1[ox]
							s12 += g * r1[ox+1]
						}
					}
					// Right edge (ox = w-1): no ox+1 taps.
					g = dr[w-1]
					if r0 != nil {
						s00 += g * r0[w-2]
						s01 += g * r0[w-1]
					}
					s10 += g * r1[w-2]
					s11 += g * r1[w-1]
					if r2 != nil {
						s20 += g * r2[w-2]
						s21 += g * r2[w-1]
					}
				}
			}
			gk := grow[ic*9 : ic*9+9]
			gk[0] += s00
			gk[1] += s01
			gk[2] += s02
			gk[3] += s10
			gk[4] += s11
			gk[5] += s12
			gk[6] += s20
			gk[7] += s21
			gk[8] += s22
		}
	}
}

// conv1x1WeightGrad accumulates dW for a 1×1 convolution: a dot product of
// each dout row with each input channel plane over all images.
func conv1x1WeightGrad[S tensor.Scalar](c *Conv2D[S], x []S, dout []S, n, h, w int) {
	p := pool.Shared()
	if p.Workers() == 1 {
		conv1x1WeightGradRange(c, x, dout, n, h, w, 0, c.OutC)
		return
	}
	p.MustMapRanges(c.OutC, 1, func(lo, hi int) {
		conv1x1WeightGradRange(c, x, dout, n, h, w, lo, hi)
	})
}

// conv1x1WeightGradRange accumulates dW rows of out-channels [lo,hi).
func conv1x1WeightGradRange[S tensor.Scalar](c *Conv2D[S], x []S, dout []S, n, h, w, lo, hi int) {
	plane := h * w
	inC := c.InC
	gd := c.Weight.Grad.Data
	for oc := lo; oc < hi; oc++ {
		dbase := dout[oc*n*plane : (oc+1)*n*plane]
		for ic := 0; ic < inC; ic++ {
			var s S
			for img := 0; img < n; img++ {
				xp := x[(img*inC+ic)*plane : (img*inC+ic+1)*plane]
				dp := dbase[img*plane : img*plane+len(xp)]
				for i, v := range xp {
					s += dp[i] * v
				}
			}
			gd[oc*inC+ic] += s
		}
	}
}

// conv1x1InputGrad computes dx for a 1×1 convolution directly in NCHW
// layout: dx[ic] = Σ_oc W[oc][ic]·dout[oc], out-channels ascending —
// exactly the dcols = Wᵀ×dout chain of the reference path.
func conv1x1InputGrad[S tensor.Scalar](c *Conv2D[S], dout []S, n, h, w int, dx []S) {
	p := pool.Shared()
	if p.Workers() == 1 {
		conv1x1InputGradRange(c, dout, n, h, w, dx, 0, n*c.InC)
		return
	}
	p.MustMapRanges(n*c.InC, 1, func(lo, hi int) {
		conv1x1InputGradRange(c, dout, n, h, w, dx, lo, hi)
	})
}

// conv1x1InputGradRange computes dx planes for (image, in-channel) pairs
// [lo,hi).
func conv1x1InputGradRange[S tensor.Scalar](c *Conv2D[S], dout []S, n, h, w int, dx []S, lo, hi int) {
	plane := h * w
	inC := c.InC
	wd := c.Weight.W.Data
	for t := lo; t < hi; t++ {
		img, ic := t/inC, t%inC
		dp := dx[(img*inC+ic)*plane : (img*inC+ic+1)*plane]
		for i := range dp {
			dp[i] = 0
		}
		for oc := 0; oc < c.OutC; oc++ {
			wv := wd[oc*inC+ic]
			sp := dout[oc*n*plane+img*plane : oc*n*plane+(img+1)*plane]
			for i, v := range sp {
				dp[i] += wv * v
			}
		}
	}
}
