package nn

import (
	"sync"

	"seaice/internal/pool"
	"seaice/internal/tensor"
)

// Winograd convolution — the reduced-multiplication algorithms the
// float32 compute path runs its same-padded 3×3 convolutions through.
// F(4×4,3×3) computes each 4×4 output tile from a 6×6 input window with
// 36 multiplies per (ic, oc) pair — 2.25× fewer than the direct kernel —
// and F(2×2,3×3) covers planes divisible by two but not four. The
// transform-domain accumulations are independent (OutC×InC)×(InC×tiles)
// matrix products, which reuse the register-blocked GEMM in
// internal/tensor; on a scalar core that GEMM is FP-throughput-bound, so
// the multiply reduction converts directly into wall-clock.
//
// Precision policy: Winograd reassociates the arithmetic, so its outputs
// are NOT bit-identical to the direct kernels — they agree within the
// float32 tolerance bound (see tensor.PrecisionTolerance; the F(2×2)
// constants are exact in binary, the F(4×4) constants round at eps).
// That is why only the float32 path uses it: the float64 master path
// keeps the direct kernels' exact per-element accumulation order
// everywhere. The algorithm itself is deterministic and its batch
// parallelism splits disjoint images with disjoint scratch, so results
// are bit-identical at any worker count — the same worker-count
// guarantee as the direct engine, just scoped to the f32 algebra.
type Winograd[S tensor.Scalar] struct {
	// Static marks weights as frozen (inference sessions): filter
	// transforms are computed once per layer and cached. Training
	// instances leave it false and re-transform every call — the
	// transform is O(OutC·InC) against O(OutC·InC·H·W) conv work.
	Static bool

	u  map[*Conv2D[S]]*tensor.Tensor[S] // F(2×2,3×3) cache: (16, OutC, InC)
	u4 map[*Conv2D[S]]*tensor.Tensor[S] // F(4×4,3×3) cache: (36, OutC, InC)

	// Grow-only scratch: filter transform (non-static), and the serial
	// path's transform-domain V/M rows.
	ubuf, v, m *tensor.Tensor[S]

	// scratch recycles per-task V/M row buffers for the batch-parallel
	// paths; sync.Pool keeps steady-state allocation near zero without
	// needing worker identities from the pool.
	scratch sync.Pool
}

// rowScratch is one task's transform-domain scratch (V then M rows).
type rowScratch[S tensor.Scalar] struct{ v, m []S }

// getScratch returns a scratch pair with at least the requested sizes.
func (wg *Winograd[S]) getScratch(vsz, msz int) *rowScratch[S] {
	rs, _ := wg.scratch.Get().(*rowScratch[S])
	if rs == nil {
		rs = &rowScratch[S]{}
	}
	if cap(rs.v) < vsz {
		rs.v = make([]S, vsz)
	}
	if cap(rs.m) < msz {
		rs.m = make([]S, msz)
	}
	rs.v, rs.m = rs.v[:vsz], rs.m[:msz]
	return rs
}

// NewWinograd returns an empty transform engine; static marks the
// weights as frozen (see Static).
func NewWinograd[S tensor.Scalar](static bool) *Winograd[S] {
	return &Winograd[S]{
		Static: static,
		u:      make(map[*Conv2D[S]]*tensor.Tensor[S]),
		u4:     make(map[*Conv2D[S]]*tensor.Tensor[S]),
	}
}

// Usable reports whether the layer/shape combination can run a Winograd
// transform: a same-padded 3×3 stride-1 convolution on an even-sized
// plane.
func (wg *Winograd[S]) Usable(c *Conv2D[S], h, w int) bool {
	return c.KH == 3 && c.KW == 3 && c.Stride == 1 && c.Pad == 1 && h%2 == 0 && w%2 == 0 && h > 0 && w > 0
}

// usable4 reports whether the F(4×4,3×3) tiling covers the plane.
func usable4(h, w int) bool { return h%4 == 0 && w%4 == 0 }

// convSrc locates input planes: channels [0, ca) in xa, [ca, ca+cb) in
// xb (the virtualized skip concatenation). chanMajor selects the
// (C, N, plane) layout of the backward pass's dout instead of NCHW.
type convSrc[S tensor.Scalar] struct {
	xa, xb    []S
	ca, cb    int
	chanMajor bool
}

// plane returns channel ic of image img.
func (s convSrc[S]) plane(ic, img, n, plane int) []S {
	buf, c, k := s.xa, s.ca, ic
	if ic >= s.ca {
		buf, c, k = s.xb, s.cb, ic-s.ca
	}
	var base int
	if s.chanMajor {
		base = (k*n + img) * plane
	} else {
		base = (img*c + k) * plane
	}
	return buf[base : base+plane]
}

// filterTransform computes U = G·g·Gᵀ for F(2×2,3×3), laid out as 16
// contiguous (OutC, InC) GEMM A-operands.
func (wg *Winograd[S]) filterTransform(c *Conv2D[S]) *tensor.Tensor[S] {
	if wg.Static {
		if u, ok := wg.u[c]; ok {
			return u
		}
	}
	outC, inC := c.OutC, c.InC
	var u *tensor.Tensor[S]
	if wg.Static {
		u = tensor.New[S](16, outC, inC)
		wg.u[c] = u
	} else {
		u = tensor.Grow(&wg.ubuf, 16, outC, inC)
	}
	wd := c.Weight.W.Data
	var gg [12]S // G·g, 4×3
	for oc := 0; oc < outC; oc++ {
		for ic := 0; ic < inC; ic++ {
			g := wd[oc*inC*9+ic*9 : oc*inC*9+ic*9+9]
			for col := 0; col < 3; col++ {
				g0, g1, g2 := g[col], g[3+col], g[6+col]
				gg[col] = g0
				gg[3+col] = (g0 + g1 + g2) / 2
				gg[6+col] = (g0 - g1 + g2) / 2
				gg[9+col] = g2
			}
			for row := 0; row < 4; row++ {
				t0, t1, t2 := gg[row*3], gg[row*3+1], gg[row*3+2]
				base := (row * 4 * outC * inC)
				u.Data[base+oc*inC+ic] = t0
				u.Data[base+outC*inC+oc*inC+ic] = (t0 + t1 + t2) / 2
				u.Data[base+2*outC*inC+oc*inC+ic] = (t0 - t1 + t2) / 2
				u.Data[base+3*outC*inC+oc*inC+ic] = t2
			}
		}
	}
	return u
}

// g4Row applies the 1-D F(4×4,3×3) G stencil to one 3-tap row.
func g4Row[S tensor.Scalar](a, b, c S) (r0, r1, r2, r3, r4, r5 S) {
	r0 = a / 4
	r1 = -(a + b + c) / 6
	r2 = (-a + b - c) / 6
	r3 = a/24 + b/12 + c/6
	r4 = a/24 - b/12 + c/6
	r5 = c
	return
}

// filterTransform4Into computes the F(4×4,3×3) filter transform
// U = G·g·Gᵀ into dst (36, outRows, inRows). tap selects the 3×3 taps:
// the forward conv reads W[oc][ic] directly; the input-gradient conv
// reads the transposed, 180°-rotated filter.
func filterTransform4Into[S tensor.Scalar](dst []S, outRows, inRows int, tap func(o, i, ky, kx int) S) {
	var t [18]S // G·g, 6×3
	for o := 0; o < outRows; o++ {
		for i := 0; i < inRows; i++ {
			for col := 0; col < 3; col++ {
				r0, r1, r2, r3, r4, r5 := g4Row(tap(o, i, 0, col), tap(o, i, 1, col), tap(o, i, 2, col))
				t[col], t[3+col], t[6+col] = r0, r1, r2
				t[9+col], t[12+col], t[15+col] = r3, r4, r5
			}
			for row := 0; row < 6; row++ {
				u0, u1, u2, u3, u4, u5 := g4Row(t[row*3], t[row*3+1], t[row*3+2])
				base := row * 6 * outRows * inRows
				step := outRows * inRows
				dst[base+o*inRows+i] = u0
				dst[base+step+o*inRows+i] = u1
				dst[base+2*step+o*inRows+i] = u2
				dst[base+3*step+o*inRows+i] = u3
				dst[base+4*step+o*inRows+i] = u4
				dst[base+5*step+o*inRows+i] = u5
			}
		}
	}
}

// filterTransform4 returns the forward F(4×4,3×3) filter transform,
// cached when Static.
func (wg *Winograd[S]) filterTransform4(c *Conv2D[S]) []S {
	if wg.Static {
		if u, ok := wg.u4[c]; ok {
			return u.Data
		}
	}
	outC, inC := c.OutC, c.InC
	wd := c.Weight.W.Data
	var dst []S
	if wg.Static {
		u := tensor.New[S](36, outC, inC)
		wg.u4[c] = u
		dst = u.Data
	} else {
		dst = tensor.Grow(&wg.ubuf, 36, outC, inC).Data
	}
	filterTransform4Into(dst, outC, inC, func(o, i, ky, kx int) S {
		return wd[o*inC*9+i*9+ky*3+kx]
	})
	return dst
}

// gradFilterTransform4 returns the transform of the transposed,
// 180°-rotated filter — the kernel of dx = conv(dy, rot180(W)ᵀ). Always
// recomputed: it is only used on the training path, where weights move
// every step.
func (wg *Winograd[S]) gradFilterTransform4(c *Conv2D[S]) []S {
	outC, inC := c.OutC, c.InC
	wd := c.Weight.W.Data
	dst := tensor.Grow(&wg.ubuf, 36, inC, outC).Data
	filterTransform4Into(dst, inC, outC, func(o, i, ky, kx int) S {
		return wd[i*inC*9+o*9+(2-ky)*3+(2-kx)]
	})
	return dst
}

// Conv computes the same-padded 3×3 convolution with fused bias (and
// optionally ReLU) through the Winograd transform, serially — inference
// sessions own their worker. Planes divisible by four run F(4×4,3×3);
// the rest run F(2×2,3×3).
func (wg *Winograd[S]) Conv(c *Conv2D[S], xa []S, ca int, xb []S, cb int, n, h, w int, dst []S, relu bool) {
	src := convSrc[S]{xa: xa, xb: xb, ca: ca, cb: cb}
	if usable4(h, w) {
		u := wg.filterTransform4(c)
		inC, outC := ca+cb, c.OutC
		th, tw := h/4, w/4
		v := tensor.Grow(&wg.v, 36, inC, tw)
		m := tensor.Grow(&wg.m, 36, outC, tw)
		for img := 0; img < n; img++ {
			for ty := 0; ty < th; ty++ {
				wg.conv4Row(u, c.Bias.W.Data, src, img, ty, n, h, w, inC, outC, dst, relu, v.Data, m.Data)
			}
		}
		return
	}
	wg.conv2(c, src, n, h, w, dst, relu)
}

// ConvBatch is Conv parallelized over (image, tile-row) tasks on the
// given pool — the training forward. Tasks write disjoint output rows
// and draw scratch from a recycling pool, so results are bit-identical
// at any worker count and a single large image still fans out. The
// caller must have checked Usable and plane divisibility by four.
func (wg *Winograd[S]) ConvBatch(p *pool.Pool, c *Conv2D[S], x []S, n, h, w int, dst []S, relu bool) {
	src := convSrc[S]{xa: x, ca: c.InC}
	u := wg.filterTransform4(c)
	wg.runTasks(p, u, c.Bias.W.Data, src, n, h, w, c.InC, c.OutC, dst, relu)
}

// InputGradBatch computes dx = conv(dy, rot180(W)ᵀ) — the input gradient
// of a same-padded 3×3 convolution — through F(4×4,3×3), parallel over
// (image, tile-row) tasks. dout is the backward pass's channel-major
// (OutC, N, plane) gradient; dx is written NCHW. The caller must have
// checked plane divisibility by four.
func (wg *Winograd[S]) InputGradBatch(p *pool.Pool, c *Conv2D[S], dout []S, n, h, w int, dx []S) {
	src := convSrc[S]{xa: dout, ca: c.OutC, chanMajor: true}
	u := wg.gradFilterTransform4(c)
	// in/out roles swap for the gradient conv.
	wg.runTasks(p, u, nil, src, n, h, w, c.OutC, c.InC, dx, false)
}

// runTasks fans (image, tile-row) tasks out on the pool. Each range call
// borrows one scratch pair; task outputs are disjoint dst rows, so any
// partitioning yields bit-identical results.
func (wg *Winograd[S]) runTasks(p *pool.Pool, u, bias []S, src convSrc[S], n, h, w, inC, outC int, dst []S, relu bool) {
	th, tw := h/4, w/4
	vsz, msz := 36*inC*tw, 36*outC*tw
	run := func(lo, hi int) {
		rs := wg.getScratch(vsz, msz)
		for t := lo; t < hi; t++ {
			wg.conv4Row(u, bias, src, t/th, t%th, n, h, w, inC, outC, dst, relu, rs.v, rs.m)
		}
		wg.scratch.Put(rs)
	}
	if p.Workers() == 1 {
		run(0, n*th)
		return
	}
	p.MustMapRanges(n*th, 1, run)
}

// bt4Row applies the 1-D F(4×4,3×3) Bᵀ stencil to six samples.
func bt4Row[S tensor.Scalar](d0, d1, d2, d3, d4, d5 S) (t0, t1, t2, t3, t4, t5 S) {
	t0 = 4*d0 - 5*d2 + d4
	t1 = -4*d1 - 4*d2 + d3 + d4
	t2 = 4*d1 - 4*d2 - d3 + d4
	t3 = -2*d1 - d2 + 2*d3 + d4
	t4 = 2*d1 - d2 - 2*d3 + d4
	t5 = 4*d1 - 5*d3 + d5
	return
}

// at4Row applies the 1-D F(4×4,3×3) Aᵀ stencil to six samples.
func at4Row[S tensor.Scalar](m0, m1, m2, m3, m4, m5 S) (y0, y1, y2, y3 S) {
	y0 = m0 + m1 + m2 + m3 + m4
	y1 = m1 - m2 + 2*m3 - 2*m4
	y2 = m1 + m2 + 4*m3 + 4*m4
	y3 = m1 - m2 + 8*m3 - 8*m4 + m5
	return
}

// conv4Row runs the F(4×4,3×3) pipeline for one tile row of one image:
// 4×4 output tiles from 6×6 input windows, 36 multiplies per 16
// outputs. The V and M scratch for a row is a few tens of KB, so the 36
// transform component streams and the 36 small GEMMs all run over
// L1/L2-resident memory instead of thrashing plane-sized buffers
// through DRAM. bias may be nil (the gradient conv has none).
func (wg *Winograd[S]) conv4Row(u, bias []S, src convSrc[S], img, ty, n, h, w, inC, outC int, dst []S, relu bool, vbuf, mbuf []S) {
	tw := w / 4
	plane := h * w
	var vr [36][]S
	var mr [36][]S
	{
		y0 := 4*ty - 1
		interiorY := y0 >= 0 && y0+6 <= h

		// Input transform: V[u][ic][tx] = (Bᵀ·d·B)[u]. Interior tiles
		// take a branch-free fast path on six row slices.
		for ic := 0; ic < inC; ic++ {
			xsrc := src.plane(ic, img, n, plane)
			for idx := 0; idx < 36; idx++ {
				vr[idx] = vbuf[(idx*inC+ic)*tw : (idx*inC+ic)*tw+tw]
			}
			for tx := 0; tx < tw; tx++ {
				x0 := 4*tx - 1
				var d [36]S
				if interiorY && x0 >= 0 && x0+6 <= w {
					p := y0*w + x0
					for r := 0; r < 6; r++ {
						row := xsrc[p+r*w : p+r*w+6 : p+r*w+6]
						d[r*6+0], d[r*6+1], d[r*6+2] = row[0], row[1], row[2]
						d[r*6+3], d[r*6+4], d[r*6+5] = row[3], row[4], row[5]
					}
				} else {
					for r := 0; r < 6; r++ {
						iy := y0 + r
						if iy < 0 || iy >= h {
							continue
						}
						row := xsrc[iy*w : iy*w+w]
						for cc := 0; cc < 6; cc++ {
							ix := x0 + cc
							if ix >= 0 && ix < w {
								d[r*6+cc] = row[ix]
							}
						}
					}
				}
				// Bᵀ·d (column ops) …
				var t [36]S
				for cc := 0; cc < 6; cc++ {
					t0, t1, t2, t3, t4, t5 := bt4Row(d[cc], d[6+cc], d[12+cc], d[18+cc], d[24+cc], d[30+cc])
					t[cc], t[6+cc], t[12+cc] = t0, t1, t2
					t[18+cc], t[24+cc], t[30+cc] = t3, t4, t5
				}
				// … then ·B (row ops), one write stream per component.
				for r := 0; r < 6; r++ {
					t0, t1, t2, t3, t4, t5 := bt4Row(t[r*6], t[r*6+1], t[r*6+2], t[r*6+3], t[r*6+4], t[r*6+5])
					vr[r*6+0][tx], vr[r*6+1][tx], vr[r*6+2][tx] = t0, t1, t2
					vr[r*6+3][tx], vr[r*6+4][tx], vr[r*6+5][tx] = t3, t4, t5
				}
			}
		}

		// Transform-domain accumulation: 36 small GEMMs over the hot row
		// scratch, serial within the image (batch parallelism is outside).
		for idx := 0; idx < 36; idx++ {
			tensor.GemmSerial(
				mbuf[idx*outC*tw:(idx+1)*outC*tw],
				u[idx*outC*inC:(idx+1)*outC*inC],
				vbuf[idx*inC*tw:(idx+1)*inC*tw],
				outC, inC, tw)
		}

		// Output transform: Y = Aᵀ·M·A (4×4 per tile) + bias (+ReLU).
		for oc := 0; oc < outC; oc++ {
			var b S
			if bias != nil {
				b = bias[oc]
			}
			dp := dst[(img*outC+oc)*plane : (img*outC+oc+1)*plane]
			for idx := 0; idx < 36; idx++ {
				mr[idx] = mbuf[(idx*outC+oc)*tw : (idx*outC+oc)*tw+tw]
			}
			var outRow [4][]S
			for r := 0; r < 4; r++ {
				outRow[r] = dp[(4*ty+r)*w : (4*ty+r)*w+w]
			}
			for tx := 0; tx < tw; tx++ {
				var e [24]S // Aᵀ·M, 4×6
				for cc := 0; cc < 6; cc++ {
					y0, y1, y2, y3 := at4Row(mr[cc][tx], mr[6+cc][tx], mr[12+cc][tx], mr[18+cc][tx], mr[24+cc][tx], mr[30+cc][tx])
					e[cc], e[6+cc], e[12+cc], e[18+cc] = y0, y1, y2, y3
				}
				for r := 0; r < 4; r++ {
					y0, y1, y2, y3 := at4Row(e[r*6], e[r*6+1], e[r*6+2], e[r*6+3], e[r*6+4], e[r*6+5])
					y0, y1, y2, y3 = y0+b, y1+b, y2+b, y3+b
					if relu {
						if y0 < 0 {
							y0 = 0
						}
						if y1 < 0 {
							y1 = 0
						}
						if y2 < 0 {
							y2 = 0
						}
						if y3 < 0 {
							y3 = 0
						}
					}
					o := outRow[r]
					o[4*tx], o[4*tx+1], o[4*tx+2], o[4*tx+3] = y0, y1, y2, y3
				}
			}
		}
	}
}

// conv2 is the F(2×2,3×3) pipeline, covering even planes not divisible
// by four (serial; only the inference session reaches it).
func (wg *Winograd[S]) conv2(c *Conv2D[S], src convSrc[S], n, h, w int, dst []S, relu bool) {
	inC := src.ca + src.cb
	outC := c.OutC
	th, tw := h/2, w/2
	u := wg.filterTransform(c)
	v := tensor.Grow(&wg.v, 16, inC, tw)
	m := tensor.Grow(&wg.m, 16, outC, tw)
	plane := h * w

	var vr [16][]S
	var mr [16][]S
	for img := 0; img < n; img++ {
		for ty := 0; ty < th; ty++ {
			y0 := 2*ty - 1
			interiorY := ty >= 1 && ty <= th-2

			for ic := 0; ic < inC; ic++ {
				xsrc := src.plane(ic, img, n, plane)
				for idx := 0; idx < 16; idx++ {
					vr[idx] = v.Data[(idx*inC+ic)*tw : (idx*inC+ic)*tw+tw]
				}
				for tx := 0; tx < tw; tx++ {
					x0 := 2*tx - 1
					var d00, d01, d02, d03, d10, d11, d12, d13 S
					var d20, d21, d22, d23, d30, d31, d32, d33 S
					if interiorY && tx >= 1 && tx <= tw-2 {
						p := y0*w + x0
						r0 := xsrc[p : p+4 : p+4]
						r1 := xsrc[p+w : p+w+4 : p+w+4]
						r2 := xsrc[p+2*w : p+2*w+4 : p+2*w+4]
						r3 := xsrc[p+3*w : p+3*w+4 : p+3*w+4]
						d00, d01, d02, d03 = r0[0], r0[1], r0[2], r0[3]
						d10, d11, d12, d13 = r1[0], r1[1], r1[2], r1[3]
						d20, d21, d22, d23 = r2[0], r2[1], r2[2], r2[3]
						d30, d31, d32, d33 = r3[0], r3[1], r3[2], r3[3]
					} else {
						var d [16]S
						for r := 0; r < 4; r++ {
							iy := y0 + r
							if iy < 0 || iy >= h {
								continue
							}
							row := xsrc[iy*w : iy*w+w]
							for cc := 0; cc < 4; cc++ {
								ix := x0 + cc
								if ix >= 0 && ix < w {
									d[r*4+cc] = row[ix]
								}
							}
						}
						d00, d01, d02, d03 = d[0], d[1], d[2], d[3]
						d10, d11, d12, d13 = d[4], d[5], d[6], d[7]
						d20, d21, d22, d23 = d[8], d[9], d[10], d[11]
						d30, d31, d32, d33 = d[12], d[13], d[14], d[15]
					}
					// Bᵀ·d (column ops), then ·B (row ops).
					t00, t01, t02, t03 := d00-d20, d01-d21, d02-d22, d03-d23
					t10, t11, t12, t13 := d10+d20, d11+d21, d12+d22, d13+d23
					t20, t21, t22, t23 := d20-d10, d21-d11, d22-d12, d23-d13
					t30, t31, t32, t33 := d10-d30, d11-d31, d12-d32, d13-d33
					vr[0][tx], vr[1][tx], vr[2][tx], vr[3][tx] = t00-t02, t01+t02, t02-t01, t01-t03
					vr[4][tx], vr[5][tx], vr[6][tx], vr[7][tx] = t10-t12, t11+t12, t12-t11, t11-t13
					vr[8][tx], vr[9][tx], vr[10][tx], vr[11][tx] = t20-t22, t21+t22, t22-t21, t21-t23
					vr[12][tx], vr[13][tx], vr[14][tx], vr[15][tx] = t30-t32, t31+t32, t32-t31, t31-t33
				}
			}

			for idx := 0; idx < 16; idx++ {
				tensor.GemmSerial(
					m.Data[idx*outC*tw:(idx+1)*outC*tw],
					u.Data[idx*outC*inC:(idx+1)*outC*inC],
					v.Data[idx*inC*tw:(idx+1)*inC*tw],
					outC, inC, tw)
			}

			// Output transform: Y = Aᵀ·M·A per tile, plus bias (+ReLU).
			for oc := 0; oc < outC; oc++ {
				b := c.Bias.W.Data[oc]
				dp := dst[(img*outC+oc)*plane : (img*outC+oc+1)*plane]
				out0 := dp[(2*ty)*w : (2*ty)*w+w]
				out1 := dp[(2*ty+1)*w : (2*ty+1)*w+w]
				for idx := 0; idx < 16; idx++ {
					mr[idx] = m.Data[(idx*outC+oc)*tw : (idx*outC+oc)*tw+tw]
				}
				for tx := 0; tx < tw; tx++ {
					m00, m01, m02, m03 := mr[0][tx], mr[1][tx], mr[2][tx], mr[3][tx]
					m10, m11, m12, m13 := mr[4][tx], mr[5][tx], mr[6][tx], mr[7][tx]
					m20, m21, m22, m23 := mr[8][tx], mr[9][tx], mr[10][tx], mr[11][tx]
					m30, m31, m32, m33 := mr[12][tx], mr[13][tx], mr[14][tx], mr[15][tx]
					// Aᵀ·M (column ops), then ·A (row ops).
					r00, r01, r02, r03 := m00+m10+m20, m01+m11+m21, m02+m12+m22, m03+m13+m23
					r10, r11, r12, r13 := m10-m20-m30, m11-m21-m31, m12-m22-m32, m13-m23-m33
					y00 := r00 + r01 + r02 + b
					y01 := r01 - r02 - r03 + b
					y10 := r10 + r11 + r12 + b
					y11 := r11 - r12 - r13 + b
					if relu {
						if y00 < 0 {
							y00 = 0
						}
						if y01 < 0 {
							y01 = 0
						}
						if y10 < 0 {
							y10 = 0
						}
						if y11 < 0 {
							y11 = 0
						}
					}
					out0[2*tx], out0[2*tx+1] = y00, y01
					out1[2*tx], out1[2*tx+1] = y10, y11
				}
			}
		}
	}
}
