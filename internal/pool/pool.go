// Package pool provides the single-machine parallel substrate of the
// workflow — the Go analogue of the Python multiprocessing pool the paper
// uses to scale auto-labeling on a 4-core workstation (§III-B, Table I).
//
// Work items are distributed to a fixed set of worker goroutines over a
// channel; results are written to their original positions, so Map
// preserves order. Errors and panics in workers are captured and
// propagated to the caller rather than crashing the process, matching the
// robustness of a process pool.
package pool

import (
	"fmt"
	"runtime"
	"sync"
)

// Pool runs tasks on a fixed number of workers.
type Pool struct {
	workers int
}

// New returns a pool with the given worker count; n <= 0 selects
// runtime.GOMAXPROCS(0), mirroring multiprocessing.Pool()'s default of
// os.cpu_count().
func New(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: n}
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.workers }

// Map applies fn to every index in [0, n) on the pool's workers and
// returns the first error encountered (remaining work is still drained).
// Panics inside fn are converted to errors. fn receives the item index;
// callers capture their input and output slices, which keeps this API
// free of reflection or generics gymnastics while preserving order.
func (p *Pool) Map(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := p.workers
	if workers > n {
		workers = n
	}

	idx := make(chan int)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var firstErr error
			for i := range idx {
				if firstErr != nil {
					continue // drain remaining work after a failure
				}
				firstErr = runTask(fn, i)
			}
			errs <- firstErr
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runTask invokes fn(i), converting panics into errors.
func runTask(fn func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pool: task %d panicked: %v", i, r)
		}
	}()
	return fn(i)
}

// MapSlice is a generic convenience over Map: it applies fn to each input
// element and returns the outputs in input order.
func MapSlice[In, Out any](p *Pool, in []In, fn func(In) (Out, error)) ([]Out, error) {
	out := make([]Out, len(in))
	err := p.Map(len(in), func(i int) error {
		v, err := fn(in[i])
		if err != nil {
			return fmt.Errorf("pool: item %d: %w", i, err)
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
