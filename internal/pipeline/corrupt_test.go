package pipeline

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"seaice/internal/dataset"
)

// TestCorruptBadSceneRetryByteIdentical asserts injected silent scene
// corruption (NaN reflectance / truncated bands) is caught by
// validation, absorbed by the per-scene retry, and the streamed product
// is byte-identical to an undisturbed run — the poisoned copy never
// reaches the label kernels, and the retry sees the source's pristine
// bytes.
func TestCorruptBadSceneRetryByteIdentical(t *testing.T) {
	src, build := chaosSource()

	clean := StreamBuilder{Config: Config{Build: build, Workers: 3, Shards: 3}}
	want, err := clean.BuildSet(src)
	if err != nil {
		t.Fatal(err)
	}

	in := injector(t, "7:badscene@1,badscene@4")
	st, err := New(src, Config{Build: build, Workers: 3, Shards: 3, Retries: 1, Chaos: in})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got, err := st.Set()
	if err != nil {
		t.Fatal(err)
	}

	if in.Remaining() != 0 {
		t.Fatalf("badscene faults not delivered: %d pending", in.Remaining())
	}
	if q := st.Quarantined(); len(q) != 0 {
		t.Fatalf("retryable corruption was quarantined: %v", q)
	}
	if !bytes.Equal(setBytes(t, got), setBytes(t, want)) {
		t.Fatal("corruption-retried stream differs from undisturbed run")
	}
}

// TestCorruptBadSceneFatalWithoutQuarantine asserts a poisoned scene
// with no retry budget and quarantine off fails the stream loudly — a
// silently shrinking dataset is never the default.
func TestCorruptBadSceneFatalWithoutQuarantine(t *testing.T) {
	src, build := chaosSource()
	st, err := New(src, Config{Build: build, Workers: 2, Chaos: injector(t, "7:badscene@2")})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Set(); err == nil || !strings.Contains(err.Error(), "scene 2") {
		t.Fatalf("Set() = %v, want a scene-2 validation error", err)
	}
}

// TestCorruptQuarantineReport asserts opt-in quarantine drops a scene
// that stays poisoned through the retry budget into the report — with a
// quarantine event, a populated Quarantined() record, and the rest of
// the campaign intact — instead of failing the run.
func TestCorruptQuarantineReport(t *testing.T) {
	src, build := chaosSource()

	clean := StreamBuilder{Config: Config{Build: build, Workers: 2, Shards: 3}}
	want, err := clean.BuildSet(src)
	if err != nil {
		t.Fatal(err)
	}

	in := injector(t, "7:badscene@3")
	var mu sync.Mutex
	events := 0
	st, err := New(src, Config{
		Build: build, Workers: 2, Shards: 3, Quarantine: true, Chaos: in,
		Progress: func(ev Event) {
			if ev.Kind == "quarantine" {
				mu.Lock()
				events++
				mu.Unlock()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got, err := st.Set()
	if err != nil {
		t.Fatalf("quarantined run failed: %v", err)
	}

	q := st.Quarantined()
	if len(q) != 1 || q[0].Scene != 3 {
		t.Fatalf("Quarantined() = %v, want exactly scene 3", q)
	}
	if q[0].Reason == "" {
		t.Error("quarantine record has no reason")
	}
	mu.Lock()
	if events != 1 {
		t.Errorf("quarantine events = %d, want 1", events)
	}
	mu.Unlock()
	// The quarantined scene contributes no tiles; everything else does.
	perScene := len(want.Tiles) / 6
	if len(got.Tiles) != len(want.Tiles)-perScene {
		t.Errorf("got %d tiles, want %d (campaign minus one quarantined scene)",
			len(got.Tiles), len(want.Tiles)-perScene)
	}
}

// TestCorruptQuarantineBlocksPlan asserts a training plan that needs a
// quarantined scene's tiles fails with a diagnosable error instead of
// silently training on a shrunken dataset.
func TestCorruptQuarantineBlocksPlan(t *testing.T) {
	src, build := chaosSource()
	plan := &TrainPlan{
		TrainFrac: 0.8, SplitSeed: 7,
		TestSeed: 8,
		Image:    dataset.OriginalImages, Labels: dataset.AutoLabels,
		BatchSize: 4, BatchSeed: 7,
	}
	st, err := New(src, Config{
		Build: build, Workers: 2, Shards: 3, Quarantine: true, Plan: plan,
		Chaos: injector(t, "7:badscene@3"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// The 80/20 split puts scene 3's tiles on one side or the other; the
	// side that needs them must refuse.
	_, trainErr := st.TrainSamples()
	_, testErr := st.TestTiles()
	combined := errors.Join(trainErr, testErr)
	if combined == nil || !strings.Contains(combined.Error(), "quarantined") {
		t.Fatalf("plan over a quarantined scene: train=%v test=%v, want a quarantine error", trainErr, testErr)
	}
}

// TestCorruptShardCheckpointIgnored asserts a bit-flipped or torn shard
// checkpoint is detected by the CRC-framed format, treated as a cache
// miss (the shard recomputes), and the resumed product stays
// byte-identical to a never-failed run.
func TestCorruptShardCheckpointIgnored(t *testing.T) {
	src, build := chaosSource()
	dir := t.TempDir()
	cfg := Config{Build: build, Workers: 2, Shards: 3, CheckpointDir: dir}

	first, err := New(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := first.Set()
	if err != nil {
		t.Fatal(err)
	}
	first.Close()

	// Flip a byte mid-body in one shard and tear another in half.
	flip := filepath.Join(dir, "shard-0001.gob")
	b, err := os.ReadFile(flip)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x20
	if err := os.WriteFile(flip, b, 0o644); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "shard-0002.gob")
	tb, err := os.ReadFile(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(torn, tb[:len(tb)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	for _, p := range []string{flip, torn} {
		if _, _, err := VerifyShardFile(p); !errors.Is(err, ErrCorruptShard) {
			t.Fatalf("VerifyShardFile(%s) = %v, want ErrCorruptShard", filepath.Base(p), err)
		}
	}
	if _, _, err := VerifyShardFile(filepath.Join(dir, "shard-0000.gob")); err != nil {
		t.Fatalf("intact shard failed verification: %v", err)
	}

	var mu sync.Mutex
	resumes := 0
	rcfg := cfg
	rcfg.Progress = func(ev Event) {
		if ev.Kind == "resume" {
			mu.Lock()
			resumes++
			mu.Unlock()
		}
	}
	resumed, err := New(src, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	got, err := resumed.Set()
	if err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	if resumes != 1 {
		t.Errorf("resume events = %d, want 1 (only the intact shard restores)", resumes)
	}
	mu.Unlock()
	if !bytes.Equal(setBytes(t, got), setBytes(t, want)) {
		t.Fatal("recomputed-after-corruption product differs from the clean run")
	}
}
