package train

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"seaice/internal/tensor"
)

// GuardPolicy selects what a numeric-anomaly guard does after an
// anomalous step has been rolled back and retried once without clearing.
type GuardPolicy int

const (
	// GuardOff disables the guard: gradients are applied unchecked.
	GuardOff GuardPolicy = iota
	// GuardSkip drops the poisoned update (weights untouched) and
	// continues with the next batch — degraded but alive, counted in
	// stats. The retry-first contract still holds: transient corruption
	// (an injected NaN, a flipped bit healed upstream) never skips,
	// because the rolled-back retry comes out clean.
	GuardSkip
	// GuardAbort stops training with a typed *AnomalyError once the
	// retry reproduces the anomaly — the fail-fast policy for runs where
	// a silently skipped batch is worse than a dead job.
	GuardAbort
)

// String names the policy with its -guard keyword.
func (p GuardPolicy) String() string {
	switch p {
	case GuardOff:
		return "off"
	case GuardSkip:
		return "skip"
	case GuardAbort:
		return "abort"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// GuardConfig is the per-step numeric anomaly guard over the flattened
// gradient vector. The ddp trainers run CheckGrads on the already-
// reduced vector each step: every rank scans identical bytes with
// identical serial float64 arithmetic, so all ranks reach the same
// verdict with no extra coordination. On anomaly the step is rolled
// back via the per-rank RNG-rewind machinery and retried once; an
// anomaly that survives the retry is deterministic in (weights, batch,
// RNG) and is handled by Policy.
type GuardConfig struct {
	// Policy enables the guard; GuardOff (the zero value) disables it.
	Policy GuardPolicy
	// MaxNorm, when > 0, additionally flags a gradient whose L2 norm
	// exceeds it — the exploding-gradient tripwire. 0 checks finiteness
	// only.
	MaxNorm float64
}

// Enabled reports whether the guard runs at all.
func (g GuardConfig) Enabled() bool { return g.Policy != GuardOff }

// ParseGuard reads a -guard flag value: "off" (or empty), or
// "skip"/"abort" with an optional ":N" max-norm suffix, e.g.
// "skip", "abort", "skip:1e3".
func ParseGuard(spec string) (GuardConfig, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return GuardConfig{}, nil
	}
	head, norm, hasNorm := strings.Cut(spec, ":")
	var g GuardConfig
	switch head {
	case "skip":
		g.Policy = GuardSkip
	case "abort":
		g.Policy = GuardAbort
	default:
		return GuardConfig{}, fmt.Errorf("train: guard policy %q (want off|skip|abort[:maxnorm])", head)
	}
	if hasNorm {
		v, err := strconv.ParseFloat(norm, 64)
		if err != nil || v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			return GuardConfig{}, fmt.Errorf("train: guard max-norm %q must be a positive number", norm)
		}
		g.MaxNorm = v
	}
	return g, nil
}

// AnomalyError reports a numeric anomaly the guard refused to apply.
type AnomalyError struct {
	// Step is the global step whose gradient tripped the guard.
	Step int
	// Reason describes the trip: a non-finite element or a norm bound.
	Reason string
	// Norm is the gradient L2 norm at the trip (NaN/Inf for non-finite
	// gradients).
	Norm float64
}

func (e *AnomalyError) Error() string {
	return fmt.Sprintf("train: numeric anomaly at step %d: %s (grad norm %g)", e.Step, e.Reason, e.Norm)
}

// CheckGrads scans one flattened gradient vector and returns a non-nil
// *AnomalyError if any element is NaN/±Inf or the L2 norm exceeds
// MaxNorm. The scan is serial float64 arithmetic over the vector in
// order, so identical bytes always produce the identical verdict —
// the property that keeps distributed ranks in lockstep.
func CheckGrads[S tensor.Scalar](g GuardConfig, step int, flat []S) *AnomalyError {
	if !g.Enabled() {
		return nil
	}
	sumsq := 0.0
	for i, v := range flat {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return &AnomalyError{Step: step, Reason: fmt.Sprintf("non-finite gradient element at index %d", i), Norm: f}
		}
		sumsq += f * f
	}
	norm := math.Sqrt(sumsq)
	if g.MaxNorm > 0 && norm > g.MaxNorm {
		return &AnomalyError{Step: step, Reason: fmt.Sprintf("gradient norm exceeds bound %g", g.MaxNorm), Norm: norm}
	}
	return nil
}
