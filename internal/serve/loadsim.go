package serve

import (
	"fmt"
	"math"
	"sort"
	"time"

	"seaice/internal/chaos"
	"seaice/internal/noise"
	"seaice/internal/simtime"
)

// LoadSimConfig parameterizes one discrete-event run of the serving
// stack under offered load. The simulation reuses the production
// admission path — the same SvcModel EWMA service-time estimator and the
// same predict-vs-budget decision SubmitDeadline makes — over a virtual
// simtime clock, so latency-versus-load curves and deadline invariants
// are measured deterministically in microseconds of real time.
type LoadSimConfig struct {
	// Nodes is the worker node count; each arriving request is routed to
	// a seeded-uniform node (the hash ring spreads distinct tiles the
	// same way).
	Nodes int `json:"nodes"`
	// Workers is the parallel batch executors per node and MaxBatch the
	// tiles per forward pass, mirroring serve.Config.
	Workers  int `json:"workers"`
	MaxBatch int `json:"max_batch"`
	// QueueCap is the per-node admission queue bound (requests).
	QueueCap int `json:"queue_cap"`
	// TileTime and BatchOverhead model one forward pass: overhead +
	// tileTime×size virtual seconds per batch on a healthy node.
	TileTime      float64 `json:"tile_time_s"`
	BatchOverhead float64 `json:"batch_overhead_s"`
	// Deadline is each client's budget in virtual seconds; 0 disables
	// deadlines (pure backpressure serving).
	Deadline float64 `json:"deadline_s"`
	// Duration is how long arrivals are generated, in virtual seconds
	// (in-flight work drains past the end).
	Duration float64 `json:"duration_s"`
	// Seed drives arrivals and routing; equal seeds reproduce runs
	// bit-for-bit.
	Seed uint64 `json:"seed"`
	// SecondsPerStep maps chaos fault steps to virtual instants
	// (DeliverVirtual); 0 selects 0.1s.
	SecondsPerStep float64 `json:"seconds_per_step"`
	// BurstFactor multiplies the arrival rate inside a burst fault's
	// window; 0 selects 4.
	BurstFactor float64 `json:"burst_factor"`
	// RestartTime is the worker-restart delay after an injected panic;
	// 0 selects 0.05s.
	RestartTime float64 `json:"restart_time_s"`
}

func (c *LoadSimConfig) defaults() {
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.TileTime <= 0 {
		c.TileTime = 0.002
	}
	if c.BatchOverhead <= 0 {
		c.BatchOverhead = 0.001
	}
	if c.Duration <= 0 {
		c.Duration = 10
	}
	if c.SecondsPerStep <= 0 {
		c.SecondsPerStep = 0.1
	}
	if c.BurstFactor <= 0 {
		c.BurstFactor = 4
	}
	if c.RestartTime <= 0 {
		c.RestartTime = 0.05
	}
}

// LoadPoint is one measured point of the latency-versus-load curve plus
// the run's deadline-invariant counters.
type LoadPoint struct {
	// OfferedRPS is the baseline arrival rate (bursts multiply it
	// inside their window).
	OfferedRPS float64 `json:"offered_rps"`
	Arrived    int     `json:"arrived"`
	Admitted   int     `json:"admitted"`
	Completed  int     `json:"completed"`
	// RejectedOverload counts full-queue 429s; RejectedInfeasible
	// counts predictive-admission 429s (the model said the deadline
	// cannot be met); ExpiredDropped counts admitted requests dropped at
	// batch pickup because their deadline had passed (504s).
	RejectedOverload   int `json:"rejected_overload"`
	RejectedInfeasible int `json:"rejected_infeasible"`
	ExpiredDropped     int `json:"expired_dropped"`
	// MissedDeadline counts requests that completed after their
	// deadline (admission predicted they would fit, then a fault slowed
	// the node mid-flight).
	MissedDeadline int `json:"missed_deadline"`
	// AdmittedThenRejected and ExpiredComputed are the hard invariants —
	// both must be 0 on every run: an admitted request is never later
	// converted into a 429, and a request already past its deadline is
	// never dispatched into a forward pass.
	AdmittedThenRejected int     `json:"admitted_then_rejected"`
	ExpiredComputed      int     `json:"expired_computed"`
	FaultsDelivered      int     `json:"faults_delivered"`
	P50MS                float64 `json:"p50_ms"`
	P99MS                float64 `json:"p99_ms"`
}

// simReq is one in-flight simulated request.
type simReq struct {
	arrive   float64
	deadline float64 // absolute virtual deadline; 0 = none
}

// simBatch is one dispatched forward pass; cancelled marks a batch
// killed by an injected worker panic (its requests requeue).
type simBatch struct {
	reqs      []simReq
	cancelled bool
}

// simNode is one worker node's queueing state.
type simNode struct {
	queue    []simReq
	busy     int
	dead     int     // workers currently restarting after a panic
	slow     float64 // slownode penalty added to every batch
	model    *SvcModel
	inflight []*simBatch
}

// LoadSim drives one simulated run. Construct with NewLoadSim, then
// Run.
type LoadSim struct {
	cfg        LoadSimConfig
	rate       float64
	clock      *simtime.Clock
	rng        *noise.RNG
	inj        *chaos.Injector
	nodes      []*simNode
	burstUntil float64
	point      LoadPoint
	lat        []float64
}

// NewLoadSim builds a simulator for one offered-load point. inj may be
// nil (no faults); it is consumed (each fault fires once), so build a
// fresh injector per run.
func NewLoadSim(cfg LoadSimConfig, offeredRPS float64, inj *chaos.Injector) (*LoadSim, error) {
	cfg.defaults()
	if offeredRPS <= 0 {
		return nil, fmt.Errorf("serve: offered load must be positive, got %g", offeredRPS)
	}
	s := &LoadSim{
		cfg:   cfg,
		rate:  offeredRPS,
		clock: &simtime.Clock{},
		rng:   noise.NewRNG(cfg.Seed, 0x10ad),
		inj:   inj,
		nodes: make([]*simNode, cfg.Nodes),
		point: LoadPoint{OfferedRPS: offeredRPS},
	}
	for i := range s.nodes {
		s.nodes[i] = &simNode{model: NewSvcModel(cfg.MaxBatch)}
	}
	return s, nil
}

// Run generates arrivals for cfg.Duration virtual seconds, drains all
// in-flight work, and returns the measured point.
func (s *LoadSim) Run() LoadPoint {
	if s.inj != nil {
		s.inj.DeliverVirtual(s.clock, s.cfg.SecondsPerStep, s.applyFault)
	}
	s.clock.Schedule(0, s.arrive)
	s.clock.Run()
	s.point.FaultsDelivered = len(s.inj.Events())
	sort.Float64s(s.lat)
	if n := len(s.lat); n > 0 {
		s.point.P50MS = 1000 * s.lat[percentileIndex(n, 0.50)]
		s.point.P99MS = 1000 * s.lat[percentileIndex(n, 0.99)]
	}
	return s.point
}

// applyFault reacts to a chaos fault at its virtual instant. Kinds that
// target other subsystems are ignored.
func (s *LoadSim) applyFault(f chaos.Fault) {
	now := s.clock.Now()
	switch f.Kind {
	case chaos.LoadBurst:
		d := f.Delay.Seconds()
		if d <= 0 {
			d = 1
		}
		if until := now + d; until > s.burstUntil {
			s.burstUntil = until
		}
	case chaos.SlowNode:
		n := s.nodes[f.Target%len(s.nodes)]
		if f.Delay > 0 {
			n.slow += f.Delay.Seconds()
		} else {
			n.slow += 0.01
		}
	case chaos.ServePanic:
		// Kill the busiest node's oldest in-flight batch: its requests
		// requeue (the production scheduler's panic-recover path) and the
		// worker restarts after RestartTime.
		node := s.nodes[0]
		for _, n := range s.nodes {
			if len(n.inflight) > len(node.inflight) {
				node = n
			}
		}
		if len(node.inflight) == 0 {
			return
		}
		b := node.inflight[0]
		node.inflight = node.inflight[1:]
		b.cancelled = true
		node.busy--
		node.dead++
		node.queue = append(node.queue, b.reqs...)
		s.clock.After(s.cfg.RestartTime, func() {
			node.dead--
			s.dispatch(node)
		})
		s.dispatch(node)
	}
}

// curRate is the instantaneous arrival rate, honoring burst windows.
func (s *LoadSim) curRate() float64 {
	if s.clock.Now() < s.burstUntil {
		return s.rate * s.cfg.BurstFactor
	}
	return s.rate
}

// arrive admits or rejects one request and schedules the next arrival.
func (s *LoadSim) arrive() {
	now := s.clock.Now()
	if now < s.cfg.Duration {
		// Exponential interarrival at the current (possibly burst) rate.
		u := s.rng.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		s.clock.After(-math.Log(u)/s.curRate(), s.arrive)
	}
	s.point.Arrived++
	node := s.nodes[s.rng.Intn(len(s.nodes))]
	if len(node.queue) >= s.cfg.QueueCap {
		s.point.RejectedOverload++
		return
	}
	req := simReq{arrive: now}
	if s.cfg.Deadline > 0 {
		req.deadline = now + s.cfg.Deadline
		// The production admission decision, verbatim: predicted
		// completion versus remaining budget (SubmitDeadline).
		predicted := node.model.PredictWait(len(node.queue), s.cfg.Workers)
		if predicted > 0 && predicted.Seconds() > s.cfg.Deadline {
			s.point.RejectedInfeasible++
			return
		}
	}
	s.point.Admitted++
	node.queue = append(node.queue, req)
	s.dispatch(node)
}

// dispatch starts batches on node while workers and work are available,
// dropping deadline-expired requests at pickup exactly as the production
// worker loop does.
func (s *LoadSim) dispatch(node *simNode) {
	now := s.clock.Now()
	for node.busy < s.cfg.Workers-node.dead && len(node.queue) > 0 {
		take := len(node.queue)
		if take > s.cfg.MaxBatch {
			take = s.cfg.MaxBatch
		}
		batch := &simBatch{}
		for _, r := range node.queue[:take] {
			if r.deadline > 0 && now > r.deadline {
				s.point.ExpiredDropped++
				continue
			}
			batch.reqs = append(batch.reqs, r)
		}
		node.queue = append(node.queue[:0], node.queue[take:]...)
		if len(batch.reqs) == 0 {
			continue
		}
		// Invariant probe: nothing already expired may enter compute.
		for _, r := range batch.reqs {
			if r.deadline > 0 && now > r.deadline {
				s.point.ExpiredComputed++
			}
		}
		node.busy++
		node.inflight = append(node.inflight, batch)
		dur := s.cfg.BatchOverhead + s.cfg.TileTime*float64(len(batch.reqs)) + node.slow
		node.model.Observe(len(batch.reqs), secToDur(dur))
		s.clock.After(dur, func() { s.complete(node, batch) })
	}
}

// complete finishes one batch, records latencies, and keeps the node
// draining.
func (s *LoadSim) complete(node *simNode, batch *simBatch) {
	if batch.cancelled {
		return
	}
	now := s.clock.Now()
	for i, b := range node.inflight {
		if b == batch {
			node.inflight = append(node.inflight[:i], node.inflight[i+1:]...)
			break
		}
	}
	node.busy--
	for _, r := range batch.reqs {
		s.point.Completed++
		s.lat = append(s.lat, now-r.arrive)
		if r.deadline > 0 && now > r.deadline {
			s.point.MissedDeadline++
		}
	}
	s.dispatch(node)
}

// secToDur converts virtual seconds to a time.Duration for the shared
// SvcModel.
func secToDur(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}

// LoadSweep runs one simulation per offered rate, each with a fresh
// injector built from spec (empty spec = fault-free), and returns the
// latency-versus-load curve. Accounting identity checked per point:
// every arrival is admitted or rejected, and every admitted request
// either completes or is dropped expired — an admitted request never
// becomes a rejection (AdmittedThenRejected).
func LoadSweep(cfg LoadSimConfig, rates []float64, spec string) ([]LoadPoint, error) {
	points := make([]LoadPoint, 0, len(rates))
	for _, r := range rates {
		var inj *chaos.Injector
		if spec != "" {
			sched, err := chaos.Parse(spec)
			if err != nil {
				return nil, err
			}
			inj = chaos.New(sched, cfg.Nodes)
		}
		sim, err := NewLoadSim(cfg, r, inj)
		if err != nil {
			return nil, err
		}
		p := sim.Run()
		if got := p.Admitted + p.RejectedOverload + p.RejectedInfeasible; got != p.Arrived {
			p.AdmittedThenRejected = p.Arrived - got
		}
		points = append(points, p)
	}
	return points, nil
}
