// Seasons: the paper notes (§IV-B2) that its summer color thresholds
// stop working for the Antarctic partial-night season and "a manual color
// limit setup may be needed". This example implements that future work:
// it shows the published thresholds failing on dim partial-night imagery
// and recovers accuracy by calibrating new thresholds from a single
// labeled reference scene (autolabel.Calibrate).
//
//	go run ./examples/seasons
package main

import (
	"fmt"
	"log"

	"seaice/internal/autolabel"
	"seaice/internal/metrics"
	"seaice/internal/raster"
	"seaice/internal/scene"
)

func partialNight(seed uint64) (*scene.Scene, error) {
	cfg := scene.DefaultConfig(seed)
	cfg.W, cfg.H = 384, 384
	cfg.Illumination = 0.55 // low sun: every surface dimmed by 45%
	cfg.Clouds = scene.ClearClouds()
	return scene.Generate(cfg)
}

func main() {
	log.SetFlags(0)

	ref, err := partialNight(300)
	if err != nil {
		log.Fatal(err)
	}
	eval, err := partialNight(301)
	if err != nil {
		log.Fatal(err)
	}

	score := func(th autolabel.Thresholds) float64 {
		lab, err := autolabel.Label(eval.Image, th)
		if err != nil {
			log.Fatal(err)
		}
		acc, err := metrics.PixelAccuracy(eval.Truth, lab)
		if err != nil {
			log.Fatal(err)
		}
		return acc
	}

	summer := autolabel.PaperThresholds()
	fmt.Printf("partial-night scene, published summer thresholds: %.2f%% accuracy\n", 100*score(summer))

	calibrated, err := autolabel.Calibrate(
		[]*raster.RGB{ref.Image}, []*raster.Labels{ref.Truth})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated on one labeled reference scene:       %.2f%% accuracy\n", 100*score(calibrated))
	fmt.Printf("\ncalibrated value bands: water ≤%d, thin %d–%d, thick ≥%d (summer: ≤30, 31–204, ≥205)\n",
		calibrated.Water.Hi.V, calibrated.ThinIce.Lo.V, calibrated.ThinIce.Hi.V, calibrated.ThickIce.Lo.V)
}
