package pipeline

import (
	"errors"
	"fmt"

	"seaice/internal/dataset"
	"seaice/internal/pool"
	"seaice/internal/train"
)

// sharedWorkers sizes the default stage fan-out from the shared kernel
// pool, so `-procs` (pool.SetSharedWorkers) is the one parallelism knob.
func sharedWorkers() int { return pool.Shared().Workers() }

// labeled carries one scene between the label and tiling stages.
type labeled struct {
	index int
	ls    *dataset.LabeledScene
}

// ensureStarted launches the stage goroutines exactly once.
func (s *Stream) ensureStarted() {
	s.start.Do(func() { go s.run() })
}

// run is the pipeline driver: it restores checkpointed shards, feeds the
// remaining scenes to the label workers in schedule order, fans the
// results through the bounded tiling stage, and delivers per-scene tiles
// to the assembler.
func (s *Stream) run() {
	resumed := s.restoreShards()

	// Scene feed, skipping scenes restored from checkpoints but keeping
	// the priority order for the rest.
	sceneCh := make(chan int, s.cfg.Prefetch)
	go func() {
		defer close(sceneCh)
		for _, i := range s.order {
			if resumed[i] {
				continue
			}
			select {
			case sceneCh <- i:
			case <-s.quit:
				return
			}
		}
	}()

	// Stage 1: filter + auto-label workers. Each worker's per-pixel
	// kernels (cloudfilter, autolabel) additionally stripe across
	// pool.Shared().
	labeledCh := make(chan labeled, s.cfg.Prefetch)
	go func() {
		defer close(labeledCh)
		p := pool.New(s.cfg.Workers)
		// Expected errors are reported through s.fail inline (closing
		// s.quit stops the feeder and unblocks every stage early), but
		// the Map error must still be checked: a panic inside a worker
		// surfaces only there, and dropping it would leave the stream
		// hung instead of failed.
		if err := p.Map(s.cfg.Workers, func(int) error {
			for i := range sceneCh {
				ls, err := s.labelSceneWithRetry(i)
				if err != nil {
					var poison *poisonError
					if s.cfg.Quarantine && errors.As(err, &poison) {
						// The scene stayed poisoned through the retry
						// budget: drop it into the report and keep the
						// run alive.
						s.quarantine(i, err)
						continue
					}
					s.fail(err)
					return nil
				}
				select {
				case labeledCh <- labeled{index: i, ls: ls}:
				case <-s.quit:
					return nil
				}
			}
			return nil
		}); err != nil {
			s.fail(err)
		}
	}()

	// Stage 2: tiling workers behind the bounded prefetch channel. Tiling
	// is much cheaper than labeling, so half the stage width suffices;
	// the bounded channels keep at most Prefetch scene products in
	// flight between the stages, which caps memory at any shard count.
	tilers := (s.cfg.Workers + 1) / 2
	p := pool.New(tilers)
	if err := p.Map(tilers, func(int) error {
		for l := range labeledCh {
			tiles, err := dataset.TileScene(l.ls, l.index, s.cfg.Build)
			if err != nil {
				s.fail(fmt.Errorf("pipeline: tile scene %d: %w", l.index, err))
				return nil
			}
			s.deliver(l.index, tiles, true)
		}
		return nil
	}); err != nil {
		s.fail(err)
	}
}

// labelSceneWithRetry runs the fetch+filter+label stage for one scene,
// re-attempting after a worker panic or error up to Config.Retries
// times — the shard-level fault tolerance of the label stage. Every
// stage is a pure function of (scene, config), so a retried scene's
// products are identical to a first-try success; retry changes wall
// clock only. The chaos injector's stage faults fire here, at their
// exact scene index, one-shot — so an injected panic is recovered by
// the first retry.
func (s *Stream) labelSceneWithRetry(i int) (*dataset.LabeledScene, error) {
	var lastErr error
	for attempt := 0; attempt <= s.cfg.Retries; attempt++ {
		if attempt > 0 {
			s.emit(Event{Kind: "retry", Shard: s.shardOf(i), ScenesDone: s.completed()})
		}
		ls, err := s.labelScene(i)
		if err == nil {
			return ls, nil
		}
		lastErr = err
		var perm *permanentError
		if errors.As(err, &perm) {
			// Deterministic failures (mis-sized scene, bad label
			// config) recur on every attempt; retrying would only burn
			// fetch I/O and emit misleading retry events.
			break
		}
	}
	return nil, lastErr
}

// permanentError marks a stage failure that is a pure function of
// (scene, config) and therefore not worth retrying.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// labelScene is one attempt: panics (injected or real) surface as
// errors, so the stage worker survives to retry. Transient-shaped
// failures (fetch errors, panics) return plain errors; deterministic
// ones come back wrapped as permanentError.
func (s *Stream) labelScene(i int) (ls *dataset.LabeledScene, err error) {
	defer func() {
		if r := recover(); r != nil {
			// A panic mid-decode means the scene bytes are suspect:
			// poison-typed, so Quarantine can catch a scene that panics
			// through the whole retry budget.
			err = &poisonError{fmt.Errorf("pipeline: scene %d stage worker panicked: %v", i, r)}
		}
	}()
	sc, err := s.src.SceneAt(i)
	if err != nil {
		return nil, fmt.Errorf("pipeline: scene %d: %w", i, err)
	}
	// Global tile indexing assumes every scene matches the source's
	// declared size; a mismatched scene (e.g. a mixed-size SliceSource)
	// would silently misaddress tiles, so reject it here.
	if sc.Image.W != s.w || sc.Image.H != s.h {
		return nil, &permanentError{fmt.Errorf("pipeline: scene %d is %dx%d, source declared %dx%d",
			i, sc.Image.W, sc.Image.H, s.w, s.h)}
	}
	if s.cfg.Chaos.BadScene(i) {
		// Injected silent corruption: poison a copy (the retry after this
		// one-shot fault must see the source's pristine bytes).
		sc = poisonScene(sc)
	}
	if err := validateScene(i, sc); err != nil {
		return nil, err
	}
	if s.cfg.Chaos.StagePanic(i) {
		panic(fmt.Sprintf("chaos: injected stage fault on scene %d", i))
	}
	ls, err = dataset.LabelScene(sc, s.cfg.Build)
	if err != nil {
		return nil, &permanentError{fmt.Errorf("pipeline: label scene %d: %w", i, err)}
	}
	return ls, nil
}

// shardOf maps a scene index to its contiguous shard.
func (s *Stream) shardOf(scene int) int {
	per := (s.n + s.cfg.Shards - 1) / s.cfg.Shards
	return scene / per
}

// deliver hands one scene's tiles to the assembler, emits progress, and
// flushes the scene's shard checkpoint when the shard completes.
// checkpointable is false for scenes restored from disk.
func (s *Stream) deliver(scene int, tiles []dataset.Tile, checkpointable bool) {
	shard := s.shardOf(scene)

	s.mu.Lock()
	if s.tiles[scene] != nil {
		s.mu.Unlock()
		return
	}
	s.tiles[scene] = tiles
	s.doneCount++
	s.shardLeft[shard]--
	shardDone := s.shardLeft[shard] == 0
	saving := shardDone && checkpointable && s.cfg.CheckpointDir != ""
	if saving {
		// Registered under the same lock that publishes completion, so
		// waitAll cannot observe the stream done while this shard's
		// checkpoint write (with its fsyncs) is still in flight.
		s.cpPending++
	}
	done := s.doneCount
	s.mu.Unlock()
	s.cond.Broadcast()

	s.emit(Event{Kind: "scene", Shard: shard, ScenesDone: done})
	if shardDone {
		if saving {
			s.saveShard(shard)
			s.mu.Lock()
			s.cpPending--
			s.mu.Unlock()
			s.cond.Broadcast()
		}
		s.emit(Event{Kind: "shard", Shard: shard, ScenesDone: done})
	}
}

// waitScenes blocks until every scene in idx is assembled (or the stream
// fails). idx may contain duplicates.
func (s *Stream) waitScenes(idx []int) error {
	s.ensureStarted()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, i := range idx {
		for s.tiles[i] == nil && s.err == nil {
			s.cond.Wait()
		}
		if s.err != nil && s.tiles[i] == nil {
			return s.err
		}
	}
	return nil
}

// waitAll blocks until the full campaign is assembled and every shard
// checkpoint write has settled (so a returned build implies durable
// checkpoints).
func (s *Stream) waitAll() error {
	s.ensureStarted()
	s.mu.Lock()
	defer s.mu.Unlock()
	for (s.doneCount < s.n || s.cpPending > 0) && s.err == nil {
		s.cond.Wait()
	}
	if s.doneCount == s.n && s.cpPending == 0 {
		return nil
	}
	return s.err
}

// Set drains the stream into the legacy batch product: a dataset.Set
// with tiles in scene order, byte-identical to dataset.Build.
func (s *Stream) Set() (*dataset.Set, error) {
	if err := s.waitAll(); err != nil {
		return nil, err
	}
	set := &dataset.Set{TileSize: s.cfg.Build.TileSize}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, tiles := range s.tiles {
		set.Tiles = append(set.Tiles, tiles...)
	}
	return set, nil
}

// tileAt returns the already-assembled tile with the given global index;
// callers must have waited on its scene.
func (s *Stream) tileAt(global int) dataset.Tile {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tiles[global/s.tilesPerScene][global%s.tilesPerScene]
}

// gather waits for and collects the tiles with the given global indices,
// in order.
func (s *Stream) gather(global []int) ([]dataset.Tile, error) {
	scenes := make([]int, len(global))
	for i, g := range global {
		scenes[i] = g / s.tilesPerScene
	}
	if err := s.waitScenes(scenes); err != nil {
		return nil, err
	}
	out := make([]dataset.Tile, len(global))
	for i, g := range global {
		if sc := g / s.tilesPerScene; s.isQuarantined(sc) {
			return nil, fmt.Errorf("pipeline: scene %d was quarantined but the training plan needs its tiles", sc)
		}
		out[i] = s.tileAt(g)
	}
	return out, nil
}

// TrainSamples materializes the plan's training subset (in the legacy
// order) as train.Sample views — the entry point for consumers that
// need the whole set at once, e.g. the multi-replica ddp trainer.
func (s *Stream) TrainSamples() ([]train.Sample, error) { return s.planSamples(true) }

// TrainLen reports the planned training-sample count — known from index
// math alone, before any scene is labeled.
func (s *Stream) TrainLen() (int, error) {
	if s.plan == nil {
		return 0, fmt.Errorf("pipeline: no TrainPlan configured")
	}
	return len(s.plan.trainTileIdx), nil
}

// TestTiles materializes the plan's held-out subset (legacy order). It
// waits only for the scenes the subset touches.
func (s *Stream) TestTiles() ([]dataset.Tile, error) {
	if s.plan == nil {
		return nil, fmt.Errorf("pipeline: no TrainPlan configured")
	}
	return s.gather(s.plan.testTileIdx)
}
