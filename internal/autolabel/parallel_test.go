package autolabel

import (
	"testing"

	"seaice/internal/colorspace"
	"seaice/internal/noise"
	"seaice/internal/pool"
	"seaice/internal/raster"
)

// testImage builds a deterministic image covering all three value bands
// with sizes that do not divide evenly into stripes.
func testImage(w, h int, seed uint64) *raster.RGB {
	rng := noise.NewRNG(seed, 0xa07)
	img := raster.NewRGB(w, h)
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(256))
	}
	return img
}

// segmentSerialReference is the pre-stripe implementation: full-image HSV
// conversion followed by three whole-image InRange passes.
func segmentSerialReference(img *raster.RGB, t Thresholds) Masks {
	hsv := colorspace.ToHSV(img)
	return Masks{
		ThickIce: colorspace.InRange(hsv, t.ThickIce),
		ThinIce:  colorspace.InRange(hsv, t.ThinIce),
		Water:    colorspace.InRange(hsv, t.Water),
	}
}

// TestSegmentByteIdenticalAcrossWorkers: striped Segment must reproduce
// the serial reference masks byte-for-byte at every pool size.
func TestSegmentByteIdenticalAcrossWorkers(t *testing.T) {
	defer pool.SetSharedWorkers(0)
	th := PaperThresholds()
	for _, dim := range []struct{ w, h int }{{1, 1}, {64, 64}, {100, 37}, {257, 129}} {
		img := testImage(dim.w, dim.h, uint64(dim.w*1000+dim.h))
		pool.SetSharedWorkers(1)
		want := segmentSerialReference(img, th)
		for _, workers := range []int{1, 3, 8} {
			pool.SetSharedWorkers(workers)
			got := Segment(img, th)
			for i := range want.ThickIce.Pix {
				if got.ThickIce.Pix[i] != want.ThickIce.Pix[i] ||
					got.ThinIce.Pix[i] != want.ThinIce.Pix[i] ||
					got.Water.Pix[i] != want.Water.Pix[i] {
					t.Fatalf("%dx%d workers=%d: mask mismatch at pixel %d", dim.w, dim.h, workers, i)
				}
			}
		}
	}
}

// TestLabelMatchesMergeSegment: the fused striped Label must equal
// Merge(Segment(img)) byte-for-byte at every pool size.
func TestLabelMatchesMergeSegment(t *testing.T) {
	defer pool.SetSharedWorkers(0)
	th := PaperThresholds()
	for _, dim := range []struct{ w, h int }{{1, 1}, {64, 64}, {100, 37}, {257, 129}} {
		img := testImage(dim.w, dim.h, uint64(dim.w*31+dim.h))
		want, err := Merge(segmentSerialReference(img, th))
		if err != nil {
			t.Fatalf("merge: %v", err)
		}
		for _, workers := range []int{1, 3, 8} {
			pool.SetSharedWorkers(workers)
			got, err := Label(img, th)
			if err != nil {
				t.Fatalf("label: %v", err)
			}
			for i := range want.Pix {
				if got.Pix[i] != want.Pix[i] {
					t.Fatalf("%dx%d workers=%d: label mismatch at pixel %d: %d vs %d",
						dim.w, dim.h, workers, i, got.Pix[i], want.Pix[i])
				}
			}
		}
	}
}
