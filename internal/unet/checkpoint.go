package unet

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// checkpoint is the on-disk format: the config plus named weight tensors.
type checkpoint struct {
	Config  Config
	Weights map[string][]float64
}

// Save writes the model's configuration and weights with encoding/gob.
func (m *Model) Save(w io.Writer) error {
	ck := checkpoint{Config: m.cfg, Weights: make(map[string][]float64)}
	for _, p := range m.Params() {
		ck.Weights[p.Name] = p.W.Data
	}
	if err := gob.NewEncoder(w).Encode(ck); err != nil {
		return fmt.Errorf("unet: save: %w", err)
	}
	return nil
}

// SaveFile writes a checkpoint file.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("unet: %w", err)
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reconstructs a model from a checkpoint stream.
func Load(r io.Reader) (*Model, error) {
	var ck checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return nil, fmt.Errorf("unet: load: %w", err)
	}
	m, err := New(ck.Config)
	if err != nil {
		return nil, err
	}
	for _, p := range m.Params() {
		data, ok := ck.Weights[p.Name]
		if !ok {
			return nil, fmt.Errorf("unet: checkpoint missing weights for %s", p.Name)
		}
		if len(data) != p.W.Len() {
			return nil, fmt.Errorf("unet: checkpoint weight %s has %d values, model needs %d", p.Name, len(data), p.W.Len())
		}
		copy(p.W.Data, data)
	}
	return m, nil
}

// LoadFile reads a checkpoint file.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("unet: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// CopyWeightsFrom overwrites this model's parameters with src's — the
// rank-0 broadcast of Horovod-style training. The models must share a
// configuration (ignoring seeds).
func (m *Model) CopyWeightsFrom(src *Model) error {
	a, b := m.Params(), src.Params()
	if len(a) != len(b) {
		return fmt.Errorf("unet: parameter count mismatch %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].W.Len() != b[i].W.Len() {
			return fmt.Errorf("unet: parameter %s size mismatch", a[i].Name)
		}
		copy(a[i].W.Data, b[i].W.Data)
	}
	return nil
}
