package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"image/png"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"seaice/internal/core"
	"seaice/internal/noise"
	"seaice/internal/raster"
	"seaice/internal/scene"
	"seaice/internal/unet"
)

// testModel builds a small deterministic model.
func testModel(t testing.TB, seed uint64) *unet.Model[float64] {
	t.Helper()
	m, err := unet.New[float64](unet.FastConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// testTiles renders deterministic random tiles.
func testTiles(n, size int, seed uint64) []*raster.RGB {
	rng := noise.NewRNG(seed, 0x711e)
	out := make([]*raster.RGB, n)
	for i := range out {
		img := raster.NewRGB(size, size)
		for p := range img.Pix {
			img.Pix[p] = uint8(rng.Uint64())
		}
		out[i] = img
	}
	return out
}

// testServer spins up a ready-to-use server around one model.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	reg := NewRegistry()
	if err := reg.Add("default", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postPNG(t *testing.T, client *http.Client, url string, img *raster.RGB) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := img.EncodePNG(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "image/png", &buf)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestClassifyConcurrent fires 64+ concurrent /classify requests and
// expects every one to succeed with a well-formed label-map PNG — the
// acceptance bar for the micro-batching path under -race.
func TestClassifyConcurrent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TileSize = 16
	cfg.QueueSize = 512
	_, ts := testServer(t, cfg)

	const concurrent = 72
	tiles := testTiles(concurrent, 16, 9)
	errs := make([]error, concurrent)
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var buf bytes.Buffer
			if err := tiles[i].EncodePNG(&buf); err != nil {
				errs[i] = err
				return
			}
			resp, err := http.Post(ts.URL+"/classify", "image/png", &buf)
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			decoded, err := png.Decode(resp.Body)
			if err != nil {
				errs[i] = fmt.Errorf("bad PNG response: %w", err)
				return
			}
			b := decoded.Bounds()
			if b.Dx() != 16 || b.Dy() != 16 {
				errs[i] = fmt.Errorf("label map %dx%d, want 16x16", b.Dx(), b.Dy())
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}

// TestClassifySceneMatchesCLI posts a full scene and checks the served
// label map is pixel-identical to the offline core.Inference path — the
// CLI and server share one inference code path.
func TestClassifySceneMatchesCLI(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TileSize = 32
	cfg.CacheSize = 0
	srv, ts := testServer(t, cfg)

	sceneCfg := scene.DefaultConfig(33)
	sceneCfg.W, sceneCfg.H = 128, 128
	sc, err := scene.Generate(sceneCfg)
	if err != nil {
		t.Fatal(err)
	}

	resp, body := postPNG(t, http.DefaultClient, ts.URL+"/classify", sc.Image)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}

	model, err := srv.reg.Get("")
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Inference(model, sc.Image, cfg.TileSize, cfg.Build)
	if err != nil {
		t.Fatal(err)
	}
	var wantPNG bytes.Buffer
	if err := want.Render().EncodePNG(&wantPNG); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, wantPNG.Bytes()) {
		t.Fatal("served label map differs from offline core.Inference output")
	}

	var stats classifyStats
	if err := json.Unmarshal([]byte(resp.Header.Get("X-Seaice-Stats")), &stats); err != nil {
		t.Fatalf("bad X-Seaice-Stats header: %v", err)
	}
	if stats.Tiles != 16 {
		t.Fatalf("stats report %d tiles, want 16", stats.Tiles)
	}
	if sum := stats.Water + stats.ThinIce + stats.ThickIce; sum < 0.999 || sum > 1.001 {
		t.Fatalf("class fractions sum to %f", sum)
	}
}

// TestCacheServesRepeats posts the same tile twice and expects the
// second answer to come from the LRU, byte-identical.
func TestCacheServesRepeats(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TileSize = 16
	srv, ts := testServer(t, cfg)

	tile := testTiles(1, 16, 5)[0]
	_, first := postPNG(t, http.DefaultClient, ts.URL+"/classify", tile)
	resp, second := postPNG(t, http.DefaultClient, ts.URL+"/classify", tile)
	if !bytes.Equal(first, second) {
		t.Fatal("cached response differs from first response")
	}
	var stats classifyStats
	if err := json.Unmarshal([]byte(resp.Header.Get("X-Seaice-Stats")), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 1 {
		t.Fatalf("second request reports %d cache hits, want 1", stats.CacheHits)
	}
	if hits, _ := srv.cache.Counters(); hits != 1 {
		t.Fatalf("cache counters report %d hits, want 1", hits)
	}
}

// TestLargeSceneExceedsQueue posts a scene with more tiles than the
// whole request queue; the throttled fan-out must classify it anyway
// instead of flooding the queue and rejecting its own tiles with 429.
func TestLargeSceneExceedsQueue(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TileSize = 16
	cfg.QueueSize = 8
	cfg.Workers = 1
	cfg.CacheSize = 0
	_, ts := testServer(t, cfg)

	// 128×128 at tile 16 → 64 tiles, 8× the queue capacity.
	sceneCfg := scene.DefaultConfig(44)
	sceneCfg.W, sceneCfg.H = 128, 128
	sc, err := scene.Generate(sceneCfg)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postPNG(t, http.DefaultClient, ts.URL+"/classify", sc.Image)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	decoded, err := png.Decode(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if b := decoded.Bounds(); b.Dx() != 128 || b.Dy() != 128 {
		t.Fatalf("label map %dx%d, want 128x128", b.Dx(), b.Dy())
	}
}

// TestBackpressure drowns a deliberately tiny deployment and expects a
// mix of 200s and clean 429s — never hangs, never other failures.
func TestBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TileSize = 16
	cfg.Workers = 1
	cfg.QueueSize = 1
	cfg.MaxBatch = 1
	cfg.CacheSize = 0
	_, ts := testServer(t, cfg)

	const concurrent = 64
	tiles := testTiles(concurrent, 16, 6)
	status := make([]int, concurrent)
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var buf bytes.Buffer
			if err := tiles[i].EncodePNG(&buf); err != nil {
				return
			}
			resp, err := http.Post(ts.URL+"/classify", "image/png", &buf)
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			status[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	var ok, rejected, other int
	for _, s := range status {
		switch s {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			rejected++
		default:
			other++
		}
	}
	t.Logf("%d ok, %d rejected, %d other", ok, rejected, other)
	if ok == 0 {
		t.Fatal("no request succeeded under overload")
	}
	if other != 0 {
		t.Fatalf("%d requests failed with unexpected statuses: %v", other, status)
	}
}

// TestHTTPErrorPaths covers method, payload, geometry, and model-name
// validation.
func TestHTTPErrorPaths(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TileSize = 16
	_, ts := testServer(t, cfg)

	if resp, err := http.Get(ts.URL + "/classify"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /classify: status %d, want 405", resp.StatusCode)
		}
	}

	resp, err := http.Post(ts.URL+"/classify", "image/png", bytes.NewReader([]byte("not a png")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad payload: status %d, want 400", resp.StatusCode)
	}

	resp, _ = postPNG(t, http.DefaultClient, ts.URL+"/classify", raster.NewRGB(17, 16))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("indivisible image: status %d, want 400", resp.StatusCode)
	}

	resp, _ = postPNG(t, http.DefaultClient, ts.URL+"/classify?model=nope", testTiles(1, 16, 1)[0])
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: status %d, want 404", resp.StatusCode)
	}

	// A tiny PNG whose header claims absurd dimensions must be
	// rejected from the header alone, before the full decode can
	// attempt a huge allocation.
	bomb := pngWithHeaderDims(t, 100000, 100000)
	resp, body := func() (*http.Response, []byte) {
		resp, err := http.Post(ts.URL+"/classify", "image/png", bytes.NewReader(bomb))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, b
	}()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dimension bomb: status %d (%s), want 400", resp.StatusCode, body)
	}

	// An over-limit body must come back as 413, not a decode error.
	huge := make([]byte, maxBodyBytes+1)
	resp, err = http.Post(ts.URL+"/classify", "image/png", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

// pngWithHeaderDims hand-assembles a syntactically valid PNG whose
// IHDR declares the given dimensions with almost no pixel data behind
// it.
func pngWithHeaderDims(t *testing.T, w, h int) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.Write([]byte{0x89, 'P', 'N', 'G', '\r', '\n', 0x1a, '\n'})
	writeChunk := func(typ string, data []byte) {
		var hdr [8]byte
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(data)))
		copy(hdr[4:], typ)
		buf.Write(hdr[:])
		buf.Write(data)
		crc := crc32.NewIEEE()
		crc.Write([]byte(typ))
		crc.Write(data)
		var sum [4]byte
		binary.BigEndian.PutUint32(sum[:], crc.Sum32())
		buf.Write(sum[:])
	}
	ihdr := make([]byte, 13)
	binary.BigEndian.PutUint32(ihdr[0:], uint32(w))
	binary.BigEndian.PutUint32(ihdr[4:], uint32(h))
	ihdr[8] = 8 // bit depth
	ihdr[9] = 0 // grayscale
	writeChunk("IHDR", ihdr)
	return buf.Bytes()
}

// TestHealthzAndStatz sanity-checks the observability endpoints.
func TestHealthzAndStatz(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TileSize = 16
	_, ts := testServer(t, cfg)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status  string   `json:"status"`
		Models  []string `json:"models"`
		Default string   `json:"default"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Default != "default" || len(health.Models) != 1 {
		t.Fatalf("unexpected health: %+v", health)
	}

	postPNG(t, http.DefaultClient, ts.URL+"/classify", testTiles(1, 16, 2)[0])
	resp, err = http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Requests != 1 || snap.Tiles != 1 || snap.Batches < 1 {
		t.Fatalf("unexpected snapshot: %+v", snap)
	}
	if snap.P50Millis <= 0 {
		t.Fatalf("p50 latency not recorded: %+v", snap)
	}
}
