package pipeline

import (
	"fmt"

	"seaice/internal/dataset"
	"seaice/internal/train"
)

// TrainBatches returns a double-buffered train.BatchSource over the
// plan's training subset: a background assembler waits for the scenes
// batch k+1 needs, gathers its tiles, and packs the tensor while the
// trainer computes batch k. The batch sequence equals
// train.Fit(dataset.Samples(...)) exactly — only the overlap differs.
func (s *Stream) TrainBatches() (train.BatchSource, error) {
	if s.plan == nil {
		return nil, fmt.Errorf("pipeline: no TrainPlan configured")
	}
	s.ensureStarted()
	return &batchSource{s: s}, nil
}

type batchSource struct{ s *Stream }

type packed struct {
	pb  *train.PackedBatch
	err error
}

// Epoch implements train.BatchSource. The capacity-1 channel plus the
// producer working one batch ahead is the double buffer: at steady state
// one packed batch waits while the next is being assembled and the
// trainer consumes a third.
func (b *batchSource) Epoch(epoch int) func() (*train.PackedBatch, error) {
	s := b.s
	plan := *s.cfg.Plan
	batches := train.BatchIndices(len(s.plan.trainTileIdx), plan.BatchSize, plan.BatchSeed, epoch)

	ch := make(chan packed, 1)
	go func() {
		defer close(ch)
		for _, idxs := range batches {
			global := make([]int, len(idxs))
			for i, j := range idxs {
				global[i] = s.plan.trainTileIdx[j]
			}
			tiles, err := s.gather(global)
			var pb *train.PackedBatch
			if err == nil {
				samples := dataset.Samples(tiles, plan.Image, plan.Labels)
				xt, labels, terr := train.ToTensor(samples)
				if terr != nil {
					err = terr
				} else {
					pb = &train.PackedBatch{X: xt, Labels: labels}
				}
			}
			select {
			case ch <- packed{pb: pb, err: err}:
			case <-s.quit:
				return
			}
			if err != nil {
				return
			}
		}
	}()

	delivered := 0
	return func() (*train.PackedBatch, error) {
		it, ok := <-ch
		if !ok {
			if delivered < len(batches) {
				return nil, s.interruptErr()
			}
			return nil, nil
		}
		if it.err != nil {
			return nil, it.err
		}
		delivered++
		return it.pb, nil
	}
}

// interruptErr explains an epoch that ended before all its batches were
// delivered.
func (s *Stream) interruptErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return fmt.Errorf("pipeline: batch stream interrupted")
}

// planSamples gathers one of the plan's subsets as training samples.
func (s *Stream) planSamples(trainSubset bool) ([]train.Sample, error) {
	if s.plan == nil {
		return nil, fmt.Errorf("pipeline: no TrainPlan configured")
	}
	idx := s.plan.trainTileIdx
	if !trainSubset {
		idx = s.plan.testTileIdx
	}
	tiles, err := s.gather(idx)
	if err != nil {
		return nil, err
	}
	return dataset.Samples(tiles, s.cfg.Plan.Image, s.cfg.Plan.Labels), nil
}
