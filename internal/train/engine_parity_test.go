package train

import (
	"math"
	"testing"

	"seaice/internal/nn"
	"seaice/internal/noise"
	"seaice/internal/pool"
	"seaice/internal/raster"
	"seaice/internal/unet"
)

// paritySamples builds a deterministic synthetic tile set.
func paritySamples(seed uint64, n, size int) []Sample {
	rng := noise.NewRNG(seed, 0x9a7)
	out := make([]Sample, n)
	for i := range out {
		img := raster.NewRGB(size, size)
		for j := range img.Pix {
			img.Pix[j] = uint8(rng.Intn(256))
		}
		lab := raster.NewLabels(size, size)
		for j := range lab.Pix {
			lab.Pix[j] = raster.Class(rng.Intn(3))
		}
		out[i] = Sample{Image: img, Labels: lab}
	}
	return out
}

// TestEngineLossParityWithLegacy is the tentpole acceptance gate: two
// epochs of training through the engine (direct kernels, buffer reuse,
// parallel GEMM/Adam) must match two epochs through the pre-PR legacy
// path within 1e-9 per epoch loss — at every pool size. The engine's
// kernels preserve the reference accumulation orders, so the match is in
// fact exact.
func TestEngineLossParityWithLegacy(t *testing.T) {
	defer pool.SetSharedWorkers(0)
	samples := paritySamples(42, 16, 16)
	cfg := Config{Epochs: 2, BatchSize: 8, LR: 0.01, Seed: 5}
	// FastConfig exercises dropout (rate 0.1), so RNG stream alignment
	// between the paths is covered too.
	model := unet.FastConfig(3)

	run := func(legacy bool) []float64 {
		prev := nn.SetLegacyKernels(legacy)
		defer nn.SetLegacyKernels(prev)
		m, err := unet.New[float64](model)
		if err != nil {
			t.Fatalf("model: %v", err)
		}
		res, err := Fit(m, samples, cfg)
		if err != nil {
			t.Fatalf("fit: %v", err)
		}
		return res.EpochLosses
	}

	pool.SetSharedWorkers(1)
	want := run(true)
	for _, workers := range []int{1, 4} {
		pool.SetSharedWorkers(workers)
		got := run(false)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d epochs, want %d", workers, len(got), len(want))
		}
		for e := range want {
			if d := math.Abs(got[e] - want[e]); d > 1e-9 {
				t.Fatalf("workers=%d epoch %d: engine loss %.17g vs legacy %.17g (|Δ|=%g > 1e-9)",
					workers, e, got[e], want[e], d)
			}
		}
	}
}
