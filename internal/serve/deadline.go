package serve

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// DeadlineHeader carries the client's remaining latency budget in
// integer milliseconds. The receiving tier anchors the absolute deadline
// at request arrival; each hop forwards only the budget that is left, so
// the deadline tightens as it propagates (client → coordinator → worker)
// and no tier can spend time a downstream tier was promised.
const DeadlineHeader = "X-Seaice-Deadline-Ms"

// PartialHeader marks a degraded-mode coordinator response: the scene
// came back 200 but some tiles were served stale from the coordinator's
// fallback cache or could not be classified at all. The value is a JSON
// object {"missing":M,"stale":S,"total":T}.
const PartialHeader = "X-Seaice-Partial"

// ErrDeadlineExpired reports work whose deadline passed while it waited
// in the queue; the scheduler drops it before compute and HTTP callers
// translate it to 504 — the client already gave up, so burning a forward
// pass on it would only steal capacity from feasible requests.
var ErrDeadlineExpired = errors.New("serve: deadline expired before compute")

// InfeasibleError is a predictive admission rejection: the service-time
// model says the request cannot finish inside its deadline, so it is
// refused at enqueue (HTTP 429) instead of being accepted and timed out
// later. RetryAfter is model-derived: how long until the backlog has
// drained enough that the same budget would be feasible.
type InfeasibleError struct {
	Predicted  time.Duration // modeled completion time from now
	Budget     time.Duration // what the client allowed
	RetryAfter time.Duration
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("serve: predicted completion %v exceeds deadline budget %v (retry in %v)",
		e.Predicted.Round(time.Millisecond), e.Budget.Round(time.Millisecond), e.RetryAfter.Round(time.Second))
}

// parseDeadline reads DeadlineHeader relative to the request's arrival
// instant. A missing header returns the zero time (no deadline); a
// malformed or non-positive value is a client error.
func parseDeadline(r *http.Request, arrival time.Time) (time.Time, error) {
	h := r.Header.Get(DeadlineHeader)
	if h == "" {
		return time.Time{}, nil
	}
	ms, err := strconv.ParseInt(h, 10, 64)
	if err != nil || ms <= 0 {
		return time.Time{}, fmt.Errorf("serve: bad %s %q (want positive integer milliseconds)", DeadlineHeader, h)
	}
	return arrival.Add(time.Duration(ms) * time.Millisecond), nil
}

// setDeadlineHeader stamps the remaining budget onto an outgoing
// request, rounding up so a sub-millisecond remainder is not forwarded
// as zero. A zero deadline stamps nothing.
func setDeadlineHeader(h http.Header, deadline time.Time, now time.Time) {
	if deadline.IsZero() {
		return
	}
	remain := deadline.Sub(now)
	if remain <= 0 {
		remain = time.Millisecond
	}
	ms := (remain + time.Millisecond - 1) / time.Millisecond
	h.Set(DeadlineHeader, strconv.FormatInt(int64(ms), 10))
}

// retryAfterSeconds renders a Retry-After value from a model-predicted
// wait, rounding up to whole seconds with a floor of 1 (the header's
// granularity).
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
