// Package imgproc is the workflow's classical image-processing toolkit —
// a from-scratch Go replacement for the OpenCV operations the paper's
// thin-cloud/shadow filter and color segmentation depend on: box, Gaussian
// and median smoothing, absolute difference, bitwise mask algebra, min-max
// normalization, binary/truncated/Otsu thresholding, and binary
// morphology. All operators use OpenCV conventions (8-bit data, masks with
// 0/255 values, border replication for neighborhoods).
//
// Every operator is a deterministic pure function of its input rasters
// and parameters (no RNG, no global state), so compositions like the
// cloud filter are bit-reproducible and safe to run concurrently on
// different images — the property the pipeline's parallel label stage
// relies on.
package imgproc

import (
	"fmt"
	"math"

	"seaice/internal/raster"
)

// clampIdx clamps a coordinate to [0, n) — border replication.
func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// BoxBlur smooths with a (2r+1)×(2r+1) mean filter using a separable
// two-pass running sum, O(1) per pixel regardless of radius.
func BoxBlur(src *raster.Gray, radius int) *raster.Gray {
	if radius <= 0 {
		return src.Clone()
	}
	w, h := src.W, src.H
	tmp := make([]float64, w*h)
	dst := raster.NewGray(w, h)
	win := float64(2*radius + 1)

	// horizontal pass
	for y := 0; y < h; y++ {
		row := src.Pix[y*w : (y+1)*w]
		sum := 0.0
		for k := -radius; k <= radius; k++ {
			sum += float64(row[clampIdx(k, w)])
		}
		for x := 0; x < w; x++ {
			tmp[y*w+x] = sum
			sum -= float64(row[clampIdx(x-radius, w)])
			sum += float64(row[clampIdx(x+radius+1, w)])
		}
	}
	// vertical pass
	for x := 0; x < w; x++ {
		sum := 0.0
		for k := -radius; k <= radius; k++ {
			sum += tmp[clampIdx(k, h)*w+x]
		}
		for y := 0; y < h; y++ {
			dst.Pix[y*w+x] = clampU8(sum / (win * win))
			sum -= tmp[clampIdx(y-radius, h)*w+x]
			sum += tmp[clampIdx(y+radius+1, h)*w+x]
		}
	}
	return dst
}

func clampU8(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}

// GaussianKernel returns a normalized 1-D Gaussian kernel with the given
// standard deviation; the radius follows OpenCV's rule of 3σ rounded up.
func GaussianKernel(sigma float64) []float64 {
	if sigma <= 0 {
		return []float64{1}
	}
	radius := int(math.Ceil(3 * sigma))
	k := make([]float64, 2*radius+1)
	sum := 0.0
	for i := range k {
		d := float64(i - radius)
		k[i] = math.Exp(-d * d / (2 * sigma * sigma))
		sum += k[i]
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// GaussianBlur smooths with a separable Gaussian of the given sigma.
func GaussianBlur(src *raster.Gray, sigma float64) *raster.Gray {
	k := GaussianKernel(sigma)
	radius := len(k) / 2
	if radius == 0 {
		return src.Clone()
	}
	w, h := src.W, src.H
	tmp := make([]float64, w*h)
	dst := raster.NewGray(w, h)

	for y := 0; y < h; y++ {
		row := src.Pix[y*w : (y+1)*w]
		for x := 0; x < w; x++ {
			sum := 0.0
			for i, kv := range k {
				sum += kv * float64(row[clampIdx(x+i-radius, w)])
			}
			tmp[y*w+x] = sum
		}
	}
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			sum := 0.0
			for i, kv := range k {
				sum += kv * tmp[clampIdx(y+i-radius, h)*w+x]
			}
			dst.Pix[y*w+x] = clampU8(sum)
		}
	}
	return dst
}

// MedianFilter applies a (2r+1)×(2r+1) median using a 256-bin histogram
// slide per row, the standard constant-time-per-update approach for 8-bit
// data.
func MedianFilter(src *raster.Gray, radius int) *raster.Gray {
	if radius <= 0 {
		return src.Clone()
	}
	w, h := src.W, src.H
	dst := raster.NewGray(w, h)
	win := (2*radius + 1) * (2*radius + 1)
	half := win / 2

	var hist [256]int
	for y := 0; y < h; y++ {
		// build histogram for x=0 window
		for i := range hist {
			hist[i] = 0
		}
		for dy := -radius; dy <= radius; dy++ {
			sy := clampIdx(y+dy, h)
			for dx := -radius; dx <= radius; dx++ {
				hist[src.Pix[sy*w+clampIdx(dx, w)]]++
			}
		}
		for x := 0; x < w; x++ {
			// find median
			cnt := 0
			med := 0
			for v := 0; v < 256; v++ {
				cnt += hist[v]
				if cnt > half {
					med = v
					break
				}
			}
			dst.Pix[y*w+x] = uint8(med)
			// slide window right
			if x+1 < w {
				outX := clampIdx(x-radius, w)
				inX := clampIdx(x+radius+1, w)
				for dy := -radius; dy <= radius; dy++ {
					sy := clampIdx(y+dy, h)
					hist[src.Pix[sy*w+outX]]--
					hist[src.Pix[sy*w+inX]]++
				}
			}
		}
	}
	return dst
}

// AbsDiff computes |a-b| per pixel. The rasters must be the same size.
func AbsDiff(a, b *raster.Gray) (*raster.Gray, error) {
	if a.W != b.W || a.H != b.H {
		return nil, fmt.Errorf("imgproc: AbsDiff size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	out := raster.NewGray(a.W, a.H)
	for i := range a.Pix {
		d := int(a.Pix[i]) - int(b.Pix[i])
		if d < 0 {
			d = -d
		}
		out.Pix[i] = uint8(d)
	}
	return out, nil
}

// BoxMeanFloat computes the per-pixel mean of a float raster over a
// (2r+1)² window clipped at the borders, via integral images.
func BoxMeanFloat(src *raster.Float, radius int) *raster.Float {
	if radius <= 0 {
		return src.Clone()
	}
	w, h := src.W, src.H
	integ := make([]float64, (w+1)*(h+1))
	for y := 0; y < h; y++ {
		rowSum := 0.0
		for x := 0; x < w; x++ {
			rowSum += src.Pix[y*w+x]
			integ[(y+1)*(w+1)+(x+1)] = integ[y*(w+1)+(x+1)] + rowSum
		}
	}
	out := raster.NewFloat(w, h)
	for y := 0; y < h; y++ {
		y0, y1 := clampIdx(y-radius, h), clampIdx(y+radius, h)
		for x := 0; x < w; x++ {
			x0, x1 := clampIdx(x-radius, w), clampIdx(x+radius, w)
			n := float64((x1 - x0 + 1) * (y1 - y0 + 1))
			s := integ[(y1+1)*(w+1)+(x1+1)] - integ[y0*(w+1)+(x1+1)] - integ[(y1+1)*(w+1)+x0] + integ[y0*(w+1)+x0]
			out.Pix[y*w+x] = s / n
		}
	}
	return out
}

// LocalVariance computes the per-pixel variance over a (2r+1)² window,
// returned as a float raster. Thin clouds are locally smooth (low
// variance) while sea-ice texture is rough; the cloud detector uses this
// contrast.
func LocalVariance(src *raster.Gray, radius int) *raster.Float {
	w, h := src.W, src.H
	// Compute E[x] and E[x²] with float accumulation via integral images.
	integ := make([]float64, (w+1)*(h+1))
	integSq := make([]float64, (w+1)*(h+1))
	for y := 0; y < h; y++ {
		rowSum := 0.0
		rowSumSq := 0.0
		for x := 0; x < w; x++ {
			v := float64(src.Pix[y*w+x])
			rowSum += v
			rowSumSq += v * v
			integ[(y+1)*(w+1)+(x+1)] = integ[y*(w+1)+(x+1)] + rowSum
			integSq[(y+1)*(w+1)+(x+1)] = integSq[y*(w+1)+(x+1)] + rowSumSq
		}
	}
	rectSum := func(tab []float64, x0, y0, x1, y1 int) float64 { // inclusive box
		return tab[(y1+1)*(w+1)+(x1+1)] - tab[y0*(w+1)+(x1+1)] - tab[(y1+1)*(w+1)+x0] + tab[y0*(w+1)+x0]
	}
	out := raster.NewFloat(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			x0, x1 := clampIdx(x-radius, w), clampIdx(x+radius, w)
			y0, y1 := clampIdx(y-radius, h), clampIdx(y+radius, h)
			n := float64((x1 - x0 + 1) * (y1 - y0 + 1))
			s := rectSum(integ, x0, y0, x1, y1)
			s2 := rectSum(integSq, x0, y0, x1, y1)
			m := s / n
			out.Pix[y*w+x] = s2/n - m*m
		}
	}
	return out
}
