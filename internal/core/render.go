package core

import (
	"fmt"
	"path/filepath"

	"seaice/internal/raster"
	"seaice/internal/report"
	"seaice/internal/tensor"
	"seaice/internal/train"
	"seaice/internal/unet"
)

// Table1Report renders Table I (plus Fig 10's speedup series).
func Table1Report(rows []Table1Row) *report.Table {
	t := report.NewTable(
		"Table I — multiprocessing-based auto-labeling (paper vs SMT-machine model vs this host)",
		"processes", "paper time (s)", "paper speedup", "model time (s)", "model speedup", "host time (s)")
	for _, r := range rows {
		host := "-"
		if r.MeasuredTime > 0 {
			host = report.F(r.MeasuredTime)
		}
		t.AddRow(report.I(r.Processes), report.F(r.PaperTime), report.F1(r.PaperSpeedup),
			report.F(r.ModelTime), report.F(r.ModelSpeedup), host)
	}
	return t
}

// Table2Report renders Table II.
func Table2Report(rows []Table2Row) *report.Table {
	t := report.NewTable(
		"Table II — PySpark-style auto-labeling on the simulated Dataproc cluster (paper vs simulation)",
		"exec", "cores",
		"paper load", "sim load", "paper map", "sim map", "paper reduce", "sim reduce",
		"paper spd-load", "sim spd-load", "paper spd-reduce", "sim spd-reduce")
	for _, r := range rows {
		t.AddRow(report.I(r.Executors), report.I(r.Cores),
			report.F(r.PaperLoad), report.F(r.SimLoad),
			report.F(r.PaperMap), report.F(r.SimMap),
			report.F(r.PaperReduce), report.F(r.SimReduce),
			report.F(r.PaperSpeedupLoad), report.F(r.SimSpeedupLoad),
			report.F(r.PaperSpeedupReduce), report.F(r.SimSpeedupReduce))
	}
	return t
}

// Table3Report renders Table III (Fig 12's four series are its columns).
func Table3Report(rows []Table3Row) *report.Table {
	t := report.NewTable(
		"Table III — Horovod-style distributed U-Net training (paper vs simulated DGX; real ring all-reduce beneath)",
		"GPUs", "paper total (s)", "sim total (s)", "paper s/epoch", "sim s/epoch",
		"paper img/s", "sim img/s", "paper speedup", "sim speedup", "final loss")
	for _, r := range rows {
		t.AddRow(report.I(r.GPUs),
			report.F(r.PaperTotal), report.F(r.SimTotal),
			report.F(r.PaperPerEpoch), report.F(r.SimPerEpoch),
			report.F(r.PaperThroughput), report.F(r.SimThroughput),
			report.F(r.PaperSpeedup), report.F(r.SimSpeedup),
			fmt.Sprintf("%.4f", r.FinalLoss))
	}
	return t
}

// Table4Report renders Table IV: overall classification accuracy.
func Table4Report(r *AccuracyResult) *report.Table {
	t := report.NewTable(
		"Table IV — U-Net sea-ice classification accuracy (paper → reproduced)",
		"dataset", "U-Net-Man", "U-Net-Auto", "paper Man", "paper Auto")
	t.AddRow("original S2 images", report.Pct(r.ManOrig.Accuracy), report.Pct(r.AutoOrig.Accuracy), "91.39%", "90.18%")
	t.AddRow("thin cloud & shadow filtered", report.Pct(r.ManFilt.Accuracy), report.Pct(r.AutoFilt.Accuracy), "98.40%", "98.97%")
	return t
}

// Table5Report renders Table V: accuracy by cloud/shadow coverage.
func Table5Report(r *AccuracyResult) *report.Table {
	t := report.NewTable(
		"Table V — validation accuracy by cloud/shadow coverage (paper → reproduced)",
		"bucket", "images", "U-Net-Man", "U-Net-Auto", "paper Man", "paper Auto")
	t.AddRow(">10% cloud/shadow", "original", report.Pct(r.CloudyManOrig.Accuracy), report.Pct(r.CloudyAutoOrig.Accuracy), "88.74%", "79.91%")
	t.AddRow(">10% cloud/shadow", "filtered", report.Pct(r.CloudyManFilt.Accuracy), report.Pct(r.CloudyAutoFilt.Accuracy), "98.91%", "99.28%")
	t.AddRow("<10% cloud/shadow", "original", report.Pct(r.ClearManOrig.Accuracy), report.Pct(r.ClearAutoOrig.Accuracy), "92.27%", "93.60%")
	t.AddRow("<10% cloud/shadow", "filtered", report.Pct(r.ClearManFilt.Accuracy), report.Pct(r.ClearAutoFilt.Accuracy), "98.23%", "98.87%")
	return t
}

// Fig13Report renders the six confusion matrices of Fig 13 as text.
func Fig13Report(r *AccuracyResult) string {
	out := "Fig 13 — confusion matrices (rows = true class, diagonal = per-class accuracy)\n\n"
	panels := []struct {
		name string
		cell Cell
	}{
		{"U-Net-Man, >10% cloud, original", r.CloudyManOrig},
		{"U-Net-Auto, >10% cloud, original", r.CloudyAutoOrig},
		{"U-Net-Man, >10% cloud, filtered", r.CloudyManFilt},
		{"U-Net-Auto, >10% cloud, filtered", r.CloudyAutoFilt},
		{"U-Net-Man, <10% cloud, original", r.ClearManOrig},
		{"U-Net-Auto, <10% cloud, original", r.ClearAutoOrig},
	}
	for _, p := range panels {
		if p.cell.Confusion == nil {
			continue
		}
		out += p.name + ":\n" + p.cell.Confusion.String() + "\n"
	}
	return out
}

// SSIMReport renders the §IV-B2 auto-label validation numbers.
func SSIMReport(r *AccuracyResult) *report.Table {
	t := report.NewTable(
		"§IV-B2 — auto-label SSIM vs manual labels (paper → reproduced)",
		"imagery", "reproduced", "paper")
	t.AddRow("original S2", report.F(r.SSIMOriginal), "0.89")
	t.AddRow("cloud & shadow filtered", report.F(r.SSIMFiltered), "0.9964")
	return t
}

// WriteFig14Panels writes qualitative prediction panels (original / manual
// ground truth / U-Net-Man prediction / U-Net-Auto prediction) for the
// first n test tiles to dir, reproducing Fig 14.
func WriteFig14Panels(r *AccuracyResult, dir string, n int) ([]string, error) {
	if r.UNetMan == nil || r.UNetAuto == nil {
		return nil, fmt.Errorf("core: models not trained")
	}
	var paths []string
	for i := 0; i < n && i < len(r.Test); i++ {
		tile := r.Test[i]
		manPred, err := PredictTile(r.UNetMan, tile.Filtered)
		if err != nil {
			return nil, err
		}
		autoPred, err := PredictTile(r.UNetAuto, tile.Filtered)
		if err != nil {
			return nil, err
		}
		panel, err := raster.SideBySide(tile.Original, tile.Manual.Render(), manPred.Render(), autoPred.Render())
		if err != nil {
			return nil, err
		}
		path := filepath.Join(dir, fmt.Sprintf("fig14_tile%02d.png", i))
		if err := panel.WritePNG(path); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// PredictTile runs a trained model on one RGB tile and returns the
// predicted label map.
func PredictTile[S tensor.Scalar](m *unet.Model[S], img *raster.RGB) (*raster.Labels, error) {
	x, _, err := train.ToTensor[S]([]train.Sample{{Image: img, Labels: raster.NewLabels(img.W, img.H)}})
	if err != nil {
		return nil, err
	}
	pred := m.Predict(x)
	out := raster.NewLabels(img.W, img.H)
	for i, c := range pred {
		out.Pix[i] = raster.Class(c)
	}
	return out, nil
}
