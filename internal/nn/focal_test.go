package nn

import (
	"math"
	"testing"

	"seaice/internal/noise"
	"seaice/internal/tensor"
)

// randLogitsLabels builds a random (2,3,4,4) logit tensor and matching
// labels, the standard loss-test fixture.
func randLogitsLabels(seedLogits, seedLabels uint64) (*tensor.F64, []uint8) {
	rng := noise.NewRNG(seedLogits, 1)
	logits := tensor.New[float64](2, 3, 4, 4)
	logits.FillRandn(rng, 1)
	labels := make([]uint8, 2*4*4)
	lr := noise.NewRNG(seedLabels, 1)
	for i := range labels {
		labels[i] = uint8(lr.Intn(3))
	}
	return logits, labels
}

// TestFocalCrossEntropyGrad validates the focal gradient against central
// finite differences across focusing exponents, including the γ<1 regime
// where the (1−p_t)^(γ−1) factor is most delicate, and with per-class α
// weights.
func TestFocalCrossEntropyGrad(t *testing.T) {
	logits, labels := randLogitsLabels(8, 9)
	for _, cfg := range []FocalParams{
		{Gamma: 0},
		{Gamma: 0.5},
		{Gamma: 1},
		{Gamma: 2},
		{Gamma: 2, Alpha: []float64{0.25, 1, 0.5}},
	} {
		f := NewFocal[float64](cfg)
		lossFn := func() float64 {
			l, err := f.Loss(logits, labels)
			if err != nil {
				t.Fatalf("γ=%g loss: %v", cfg.Gamma, err)
			}
			return l
		}
		lossFn()
		g := f.Grad()
		for i := 0; i < logits.Len(); i += 3 {
			want := numGrad(logits.Data, i, lossFn)
			got := g.Data[i]
			if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				t.Fatalf("γ=%g α=%v: focal grad [%d] = %.8g, finite diff %.8g", cfg.Gamma, cfg.Alpha, i, got, want)
			}
		}
	}
}

// TestFocalGammaZeroMatchesCrossEntropy: at γ=0 with nil α the focal
// loss is plain softmax cross-entropy — loss and gradient agree to
// floating-point noise.
func TestFocalGammaZeroMatchesCrossEntropy(t *testing.T) {
	logits, labels := randLogitsLabels(12, 13)
	var ce SoftmaxCrossEntropy[float64]
	fl := NewFocal[float64](FocalParams{Gamma: 0})
	lc, err := ce.Loss(logits, labels)
	if err != nil {
		t.Fatalf("ce: %v", err)
	}
	lf, err := fl.Loss(logits, labels)
	if err != nil {
		t.Fatalf("focal: %v", err)
	}
	if math.Abs(lc-lf) > 1e-12*(1+math.Abs(lc)) {
		t.Fatalf("γ=0 focal loss %.12g != cross-entropy %.12g", lf, lc)
	}
	gc, gf := ce.Grad(), fl.Grad()
	for i := range gc.Data {
		if math.Abs(gc.Data[i]-gf.Data[i]) > 1e-12 {
			t.Fatalf("γ=0 focal grad [%d] = %.12g, ce %.12g", i, gf.Data[i], gc.Data[i])
		}
	}
}

// TestFocalDownWeightsEasyPixels pins the defining property: with γ>0, a
// confidently-correct pixel contributes far less loss than under plain
// cross-entropy, while a misclassified pixel keeps nearly all of its.
func TestFocalDownWeightsEasyPixels(t *testing.T) {
	// One-pixel evaluations: pix(6,0) is confident-correct for class 0
	// (logit margin 6), pix(0,6) confident-wrong.
	pix := func(c0, c1 float64, lab uint8, crit Criterion[float64]) float64 {
		l := tensor.New[float64](1, 2, 1, 1)
		l.Data[0], l.Data[1] = c0, c1
		v, err := crit.Loss(l, []uint8{lab})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	var ce SoftmaxCrossEntropy[float64]
	fl := NewFocal[float64](FocalParams{Gamma: 2})
	easyRatio := pix(6, 0, 0, fl) / pix(6, 0, 0, &ce)
	hardRatio := pix(0, 6, 0, fl) / pix(0, 6, 0, &ce)
	if easyRatio > 1e-4 {
		t.Fatalf("easy pixel kept %.2g of its CE loss, want ≪ 1", easyRatio)
	}
	if hardRatio < 0.9 {
		t.Fatalf("hard pixel kept only %.2g of its CE loss, want ≈ 1", hardRatio)
	}
}

// TestFocalValidation: malformed inputs surface as errors.
func TestFocalValidation(t *testing.T) {
	logits, labels := randLogitsLabels(20, 21)
	if _, err := NewFocal[float64](FocalParams{Gamma: -1}).Loss(logits, labels); err == nil {
		t.Fatal("negative gamma accepted")
	}
	if _, err := NewFocal[float64](FocalParams{Gamma: 2, Alpha: []float64{1}}).Loss(logits, labels); err == nil {
		t.Fatal("short alpha accepted")
	}
	bad := make([]uint8, len(labels))
	copy(bad, labels)
	bad[3] = 9
	if _, err := NewFocal[float64](FocalParams{Gamma: 2}).Loss(logits, bad); err == nil {
		t.Fatal("out-of-range label accepted")
	}
}

// TestFocalDeterministic: identical inputs give bit-identical loss and
// gradient across repeated evaluations (the passes are serial loops, so
// this guards accidental introduction of order-dependent reduction).
func TestFocalDeterministic(t *testing.T) {
	logits, labels := randLogitsLabels(30, 31)
	f1 := NewFocal[float64](FocalParams{Gamma: 2, Alpha: []float64{0.3, 1, 0.7}})
	f2 := NewFocal[float64](FocalParams{Gamma: 2, Alpha: []float64{0.3, 1, 0.7}})
	l1, err := f1.Loss(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := f2.Loss(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Fatalf("focal loss not bit-deterministic: %.17g vs %.17g", l1, l2)
	}
	g1, g2 := f1.Grad(), f2.Grad()
	for i := range g1.Data {
		if g1.Data[i] != g2.Data[i] {
			t.Fatalf("focal grad [%d] not bit-deterministic", i)
		}
	}
}
