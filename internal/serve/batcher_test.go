package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"seaice/internal/raster"
	"seaice/internal/unet"
)

// schedCfg returns a scheduler-oriented config for tests.
func schedCfg() Config {
	cfg := DefaultConfig()
	cfg.TileSize = 16
	cfg.Workers = 1
	return cfg
}

// TestSchedulerCoalesces submits a burst of concurrent tiles and checks
// that the single worker served them in fewer forward passes than tiles.
func TestSchedulerCoalesces(t *testing.T) {
	m := testModel(t, 2)
	cfg := schedCfg()
	cfg.MaxBatch = 8
	cfg.BatchWait = 50 * time.Millisecond
	stats := NewStats()
	sched := NewScheduler(cfg, stats)
	defer sched.Close()

	const n = 16
	tiles := testTiles(n, 16, 3)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = sched.Submit(m, tiles[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	snap := stats.Snapshot(0, 0, 0, 0)
	if snap.Batches >= n {
		t.Fatalf("%d batches for %d tiles — no coalescing happened", snap.Batches, n)
	}
	if snap.AvgBatchSize <= 1 {
		t.Fatalf("average batch size %.2f, want > 1", snap.AvgBatchSize)
	}
	t.Logf("%d tiles in %d batches (avg %.2f)", n, snap.Batches, snap.AvgBatchSize)
}

// TestSchedulerMatchesSession checks batched scheduling returns exactly
// what a plain session would.
func TestSchedulerMatchesSession(t *testing.T) {
	m := testModel(t, 4)
	cfg := schedCfg()
	sched := NewScheduler(cfg, nil)
	defer sched.Close()

	tiles := testTiles(12, 16, 8)
	want, err := unet.NewSession(m).PredictTiles(tiles)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	got := make([]*raster.Labels, len(tiles))
	errs := make([]error, len(tiles))
	for i := range tiles {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = sched.Submit(m, tiles[i])
		}(i)
	}
	wg.Wait()
	for i := range tiles {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		for p := range want[i].Pix {
			if got[i].Pix[p] != want[i].Pix[p] {
				t.Fatalf("tile %d pixel %d: scheduler %d, session %d", i, p, got[i].Pix[p], want[i].Pix[p])
			}
		}
	}
}

// TestSchedulerMixedShapes interleaves two tile sizes and two models;
// every request must land on a correctly shaped batch.
func TestSchedulerMixedShapes(t *testing.T) {
	m1, m2 := testModel(t, 5), testModel(t, 6)
	cfg := schedCfg()
	cfg.MaxBatch = 4
	cfg.BatchWait = 10 * time.Millisecond
	sched := NewScheduler(cfg, nil)
	defer sched.Close()

	small := testTiles(6, 16, 10)
	big := testTiles(6, 32, 11)
	var wg sync.WaitGroup
	errs := make([]error, 0, 24)
	var mu sync.Mutex
	submit := func(m *unet.Model[float64], tile *raster.RGB, wantSize int) {
		defer wg.Done()
		labels, err := sched.Submit(m, tile)
		if err == nil && (labels.W != wantSize || labels.H != wantSize) {
			err = fmt.Errorf("labels %dx%d, want %d", labels.W, labels.H, wantSize)
		}
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}
	for i := 0; i < 6; i++ {
		wg.Add(4)
		go submit(m1, small[i], 16)
		go submit(m2, small[i], 16)
		go submit(m1, big[i], 32)
		go submit(m2, big[i], 32)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSchedulerBackpressure fills a tiny queue faster than one worker
// drains it and expects ErrOverloaded, not blocking.
func TestSchedulerBackpressure(t *testing.T) {
	m := testModel(t, 7)
	cfg := schedCfg()
	cfg.QueueSize = 1
	cfg.MaxBatch = 1
	cfg.BatchWait = 0
	stats := NewStats()
	sched := NewScheduler(cfg, stats)
	defer sched.Close()

	const n = 48
	tiles := testTiles(n, 16, 12)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var ok, overloaded int
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := sched.Submit(m, tiles[i])
			mu.Lock()
			defer mu.Unlock()
			switch err {
			case nil:
				ok++
			case ErrOverloaded:
				overloaded++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if ok == 0 {
		t.Fatal("nothing succeeded")
	}
	if ok+overloaded != n {
		t.Fatalf("accounted %d of %d requests", ok+overloaded, n)
	}
	snap := stats.Snapshot(0, 0, 0, 0)
	if snap.Rejected != int64(overloaded) {
		t.Fatalf("stats count %d rejects, test saw %d", snap.Rejected, overloaded)
	}
	t.Logf("%d served, %d shed", ok, overloaded)
}

// TestSchedulerClose verifies shutdown answers in-flight work and
// rejects later submits.
func TestSchedulerClose(t *testing.T) {
	m := testModel(t, 8)
	cfg := schedCfg()
	sched := NewScheduler(cfg, nil)

	tiles := testTiles(8, 16, 13)
	var wg sync.WaitGroup
	errs := make([]error, len(tiles))
	for i := range tiles {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = sched.Submit(m, tiles[i])
		}(i)
	}
	wg.Wait()
	sched.Close()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("pre-close submit %d: %v", i, err)
		}
	}
	if _, err := sched.Submit(m, tiles[0]); err != ErrClosed {
		t.Fatalf("post-close submit: %v, want ErrClosed", err)
	}
	sched.Close() // idempotent
}
