// Package nn implements the neural-network layers of the paper's U-Net —
// 3×3 convolutions with ReLU, 2×2 max-pooling, 2×2 up-convolutions
// (transposed convolutions), skip-connection concatenation, dropout, the
// softmax + categorical cross-entropy loss, and the Adam optimizer — each
// with a hand-derived backward pass verified against finite differences
// in the package tests. There is no autograd: the U-Net in internal/unet
// wires these layers into its encoder–decoder graph explicitly.
//
// Every layer is generic over the compute precision (tensor.Scalar:
// float32 or float64). float64 is the master/reference path; float32 is
// the default compute precision for training steps and serving, with the
// Adam optimizer optionally holding float64 master weights (mixed
// precision) so repeated tiny updates don't vanish in float32 rounding.
//
// Layers cache forward activations for the backward pass, so a layer
// instance supports one in-flight forward/backward pair at a time; the
// data-parallel trainer gives each simulated GPU its own model replica.
//
// Parallelism guarantees are precision-scoped: conv kernels take an
// explicit pool — training passes pool.Shared(), the inference session
// runs them serially — and accumulate in the serial reference order, so
// within one precision outputs are bit-identical at any worker count
// (and identical between the direct NCHW kernels and the legacy im2col
// path, see SetLegacyKernels). Across precisions only the tolerance
// bounds of tensor.PrecisionTolerance hold. Layer scratch buffers are
// grow-only: a steady-state training step performs a handful of heap
// allocations.
package nn

import "seaice/internal/tensor"

// Param is one learnable tensor with its gradient accumulator.
type Param[S tensor.Scalar] struct {
	Name string
	W    *tensor.Tensor[S]
	Grad *tensor.Tensor[S]
}

// Layer is a differentiable module.
type Layer[S tensor.Scalar] interface {
	// Name identifies the layer in diagnostics and checkpoints.
	Name() string
	// Forward computes the output; train enables dropout.
	Forward(x *tensor.Tensor[S], train bool) *tensor.Tensor[S]
	// Backward consumes dL/dy and returns dL/dx, accumulating
	// parameter gradients.
	Backward(dy *tensor.Tensor[S]) *tensor.Tensor[S]
	// Params lists learnable parameters (possibly none).
	Params() []*Param[S]
}

// ZeroGrads clears the gradient accumulators of all params.
func ZeroGrads[S tensor.Scalar](params []*Param[S]) {
	for _, p := range params {
		p.Grad.Zero()
	}
}

// CollectParams gathers parameters from several layers.
func CollectParams[S tensor.Scalar](layers ...Layer[S]) []*Param[S] {
	var out []*Param[S]
	for _, l := range layers {
		out = append(out, l.Params()...)
	}
	return out
}
