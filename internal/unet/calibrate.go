package unet

import (
	"fmt"
	"math"
	"sort"

	"seaice/internal/raster"
	"seaice/internal/tensor"
)

// Calibration holds the observed activation range of every quantizable
// stage of the network, gathered by running the float64 master on
// representative tiles. It is the bridge between the float model and its
// int8 rendering: Quantize turns each range into an activation
// scale/zero-point via tensor.ActParams.
type Calibration struct {
	// Ranges maps stage name (the producing layer's name: "enc0.conv1",
	// "up2", "dec0.conv2", …) to the observed [lo, hi] activation range.
	Ranges map[string]Range
}

// Range is a closed activation interval.
type Range struct{ Lo, Hi float64 }

// merge widens r to cover v.
func (r *Range) merge(lo, hi float64) {
	if lo < r.Lo {
		r.Lo = lo
	}
	if hi > r.Hi {
		r.Hi = hi
	}
}

// Stages lists the calibrated stage names in sorted order.
func (c *Calibration) Stages() []string {
	out := make([]string, 0, len(c.Ranges))
	for k := range c.Ranges {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Calibrate runs the float64 master model over representative tiles in
// batches of batchSize, recording each stage's activation range. The
// observation is a pure min/max merge — commutative and associative — and
// the underlying session computes serially inside one worker, so the
// result is bit-identical at any pool worker count (asserted by
// TestCalibrateDeterministic).
//
// The input stage needs no calibration: tiles are 8-bit, so the input
// quantization is the fixed exact map q = round(127·pix/255).
func Calibrate(m *Model[float64], tiles []*raster.RGB, batchSize int) (*Calibration, error) {
	if len(tiles) == 0 {
		return nil, fmt.Errorf("unet: Calibrate needs at least one representative tile")
	}
	if batchSize < 1 {
		batchSize = 1
	}
	cal := &Calibration{Ranges: make(map[string]Range)}
	s := NewSession(m)
	var firstNaN string
	s.SetObserver(func(stage string, data []float64) {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range data {
			if math.IsNaN(v) {
				if firstNaN == "" {
					firstNaN = stage
				}
				return
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		r, ok := cal.Ranges[stage]
		if !ok {
			r = Range{Lo: lo, Hi: hi}
		} else {
			r.merge(lo, hi)
		}
		cal.Ranges[stage] = r
	})
	defer s.SetObserver(nil)
	for start := 0; start < len(tiles); start += batchSize {
		end := start + batchSize
		if end > len(tiles) {
			end = len(tiles)
		}
		if _, err := s.PredictTiles(tiles[start:end]); err != nil {
			return nil, fmt.Errorf("unet: calibration batch at tile %d: %v", start, err)
		}
	}
	if firstNaN != "" {
		return nil, fmt.Errorf("unet: calibration saw NaN activations at stage %s", firstNaN)
	}
	return cal, nil
}

// ActQuants derives the per-stage activation quantizations from the
// calibrated ranges — the scale/zero-point tables the quantized model
// (and its checkpoint) is built from.
func (c *Calibration) ActQuants() map[string]tensor.ActQuant {
	out := make(map[string]tensor.ActQuant, len(c.Ranges))
	for stage, r := range c.Ranges {
		out[stage] = tensor.ActParams(r.Lo, r.Hi)
	}
	return out
}
