package nn

import (
	"fmt"

	"seaice/internal/noise"
	"seaice/internal/tensor"
)

// ReLU is the rectified linear activation used after every convolution in
// the paper's architecture.
type ReLU[S tensor.Scalar] struct {
	name        string
	mask        []bool
	yBuf, dxBuf *tensor.Tensor[S]
}

// NewReLU returns a ReLU layer.
func NewReLU[S tensor.Scalar](name string) *ReLU[S] { return &ReLU[S]{name: name} }

// Name implements Layer.
func (r *ReLU[S]) Name() string { return r.name }

// Params implements Layer.
func (r *ReLU[S]) Params() []*Param[S] { return nil }

// Forward clamps negatives to zero, remembering the active set. The
// output aliases a layer-owned grow-only buffer, valid until the next
// Forward.
func (r *ReLU[S]) Forward(x *tensor.Tensor[S], train bool) *tensor.Tensor[S] {
	y := tensor.Grow(&r.yBuf, x.Shape...)
	copy(y.Data, x.Data)
	if cap(r.mask) < len(y.Data) {
		r.mask = make([]bool, len(y.Data))
	}
	r.mask = r.mask[:len(y.Data)]
	for i, v := range y.Data {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			y.Data[i] = 0
		}
	}
	return y
}

// Backward passes gradients only through the active set.
func (r *ReLU[S]) Backward(dy *tensor.Tensor[S]) *tensor.Tensor[S] {
	dx := tensor.Grow(&r.dxBuf, dy.Shape...)
	copy(dx.Data, dy.Data)
	for i := range dx.Data {
		if !r.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

// MaxPool2 is the 2×2 stride-2 max pooling of the contraction path.
type MaxPool2[S tensor.Scalar] struct {
	name        string
	argmax      []int32
	inShp       []int
	yBuf, dxBuf *tensor.Tensor[S]
}

// NewMaxPool2 returns a max-pool layer.
func NewMaxPool2[S tensor.Scalar](name string) *MaxPool2[S] { return &MaxPool2[S]{name: name} }

// Name implements Layer.
func (m *MaxPool2[S]) Name() string { return m.name }

// Params implements Layer.
func (m *MaxPool2[S]) Params() []*Param[S] { return nil }

// Forward keeps the max of each 2×2 block and records its index.
func (m *MaxPool2[S]) Forward(x *tensor.Tensor[S], train bool) *tensor.Tensor[S] {
	if len(x.Shape) != 4 || x.Shape[2]%2 != 0 || x.Shape[3]%2 != 0 {
		panic(fmt.Sprintf("nn: %s needs even NCHW input, got %v", m.name, x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := h/2, w/2
	m.inShp = append(m.inShp[:0], x.Shape...)
	y := tensor.Grow(&m.yBuf, n, c, oh, ow)
	if cap(m.argmax) < y.Len() {
		m.argmax = make([]int32, y.Len())
	}
	m.argmax = m.argmax[:y.Len()]

	oi := 0
	for nc := 0; nc < n*c; nc++ {
		base := nc * h * w
		for oy := 0; oy < oh; oy++ {
			i0 := base + (2*oy)*w
			i1 := base + (2*oy+1)*w
			for ox := 0; ox < ow; ox++ {
				a, b, cc, d := i0+2*ox, i0+2*ox+1, i1+2*ox, i1+2*ox+1
				best, bv := a, x.Data[a]
				if x.Data[b] > bv {
					best, bv = b, x.Data[b]
				}
				if x.Data[cc] > bv {
					best, bv = cc, x.Data[cc]
				}
				if x.Data[d] > bv {
					best, bv = d, x.Data[d]
				}
				y.Data[oi] = bv
				m.argmax[oi] = int32(best)
				oi++
			}
		}
	}
	return y
}

// Backward routes each gradient to the block's argmax position.
func (m *MaxPool2[S]) Backward(dy *tensor.Tensor[S]) *tensor.Tensor[S] {
	dx := tensor.Grow(&m.dxBuf, m.inShp...)
	dx.Zero()
	for i, v := range dy.Data {
		dx.Data[m.argmax[i]] += v
	}
	return dx
}

// Dropout zeroes a fraction of activations during training and scales the
// survivors (inverted dropout), the regularization the paper inserts
// between convolutional layers.
type Dropout[S tensor.Scalar] struct {
	name        string
	Rate        float64
	rng         *noise.RNG
	keep        []bool
	yBuf, dxBuf *tensor.Tensor[S]
}

// NewDropout builds a dropout layer with its own deterministic stream.
func NewDropout[S tensor.Scalar](name string, rate float64, rng *noise.RNG) *Dropout[S] {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: %s invalid dropout rate %f", name, rate))
	}
	return &Dropout[S]{name: name, Rate: rate, rng: rng}
}

// Name implements Layer.
func (d *Dropout[S]) Name() string { return d.name }

// Params implements Layer.
func (d *Dropout[S]) Params() []*Param[S] { return nil }

// Forward applies inverted dropout in training mode and is the identity
// at inference.
func (d *Dropout[S]) Forward(x *tensor.Tensor[S], train bool) *tensor.Tensor[S] {
	y := tensor.Grow(&d.yBuf, x.Shape...)
	copy(y.Data, x.Data)
	if !train || d.Rate == 0 {
		d.keep = nil
		return y
	}
	if cap(d.keep) < len(y.Data) {
		d.keep = make([]bool, len(y.Data))
	}
	d.keep = d.keep[:len(y.Data)]
	scale := 1 / (1 - d.Rate)
	for i := range y.Data {
		if d.rng.Float64() < d.Rate {
			d.keep[i] = false
			y.Data[i] = 0
		} else {
			d.keep[i] = true
			y.Data[i] *= S(scale)
		}
	}
	return y
}

// Backward mirrors the forward mask.
func (d *Dropout[S]) Backward(dy *tensor.Tensor[S]) *tensor.Tensor[S] {
	dx := tensor.Grow(&d.dxBuf, dy.Shape...)
	copy(dx.Data, dy.Data)
	if d.keep == nil {
		return dx
	}
	scale := 1 / (1 - d.Rate)
	for i := range dx.Data {
		if d.keep[i] {
			dx.Data[i] *= S(scale)
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Concat joins two NCHW tensors along the channel axis — the U-Net skip
// connection that concatenates encoder features onto the upsampled
// decoder features.
type Concat[S tensor.Scalar] struct {
	name               string
	aC, bC             int
	yBuf, daBuf, dbBuf *tensor.Tensor[S]
}

// NewConcat returns a channel-concatenation "layer" with a two-input
// Join/backward-split API instead of the single-input Layer interface.
func NewConcat[S tensor.Scalar](name string) *Concat[S] { return &Concat[S]{name: name} }

// Name identifies the join in diagnostics.
func (c *Concat[S]) Name() string { return c.name }

// Join concatenates a and b along channels.
func (c *Concat[S]) Join(a, b *tensor.Tensor[S]) *tensor.Tensor[S] {
	if len(a.Shape) != 4 || len(b.Shape) != 4 ||
		a.Shape[0] != b.Shape[0] || a.Shape[2] != b.Shape[2] || a.Shape[3] != b.Shape[3] {
		panic(fmt.Sprintf("nn: %s cannot concat %v and %v", c.name, a.Shape, b.Shape))
	}
	n, h, w := a.Shape[0], a.Shape[2], a.Shape[3]
	c.aC, c.bC = a.Shape[1], b.Shape[1]
	y := tensor.Grow(&c.yBuf, n, c.aC+c.bC, h, w)
	plane := h * w
	for img := 0; img < n; img++ {
		copy(y.Data[img*(c.aC+c.bC)*plane:], a.Data[img*c.aC*plane:(img+1)*c.aC*plane])
		copy(y.Data[(img*(c.aC+c.bC)+c.aC)*plane:], b.Data[img*c.bC*plane:(img+1)*c.bC*plane])
	}
	return y
}

// Split divides the joined gradient back into the two inputs' gradients.
func (c *Concat[S]) Split(dy *tensor.Tensor[S]) (da, db *tensor.Tensor[S]) {
	n, h, w := dy.Shape[0], dy.Shape[2], dy.Shape[3]
	plane := h * w
	da = tensor.Grow(&c.daBuf, n, c.aC, h, w)
	db = tensor.Grow(&c.dbBuf, n, c.bC, h, w)
	for img := 0; img < n; img++ {
		copy(da.Data[img*c.aC*plane:(img+1)*c.aC*plane], dy.Data[img*(c.aC+c.bC)*plane:])
		copy(db.Data[img*c.bC*plane:(img+1)*c.bC*plane], dy.Data[(img*(c.aC+c.bC)+c.aC)*plane:])
	}
	return da, db
}
