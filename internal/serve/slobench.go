package serve

import "fmt"

// SLOBounds are the committed service-level objectives the regression
// test holds every faulted run to.
type SLOBounds struct {
	// P99BoundMS caps the p99 latency of completed requests at every
	// measured load point, faults included.
	P99BoundMS float64 `json:"p99_bound_ms"`
	// MaxErrorRate caps (overload 429s + infeasible 429s + expired
	// 504s) / arrivals on baseline points offered at most CapacityRPS:
	// below the knee, a healthy cluster must serve nearly everything.
	// Faulted sweeps are exempt — a 4× burst pushes even sub-capacity
	// points past the knee, and shedding that load as 429s while p99
	// stays bounded IS the design under test, not an error.
	MaxErrorRate float64 `json:"max_error_rate"`
	// CapacityRPS is the knee used by MaxErrorRate.
	CapacityRPS float64 `json:"capacity_rps"`
}

// SLOBench is the full benchmark artifact committed as BENCH_serve.json:
// the simulated cluster's latency-versus-offered-load curve with and
// without injected faults, plus the SLO bounds the regression test
// enforces. Every number is deterministic (seeded arrivals over a
// virtual clock), so the committed file is bit-reproducible.
type SLOBench struct {
	Schema    string        `json:"schema"`
	Workload  string        `json:"workload"`
	Config    LoadSimConfig `json:"config"`
	Rates     []float64     `json:"rates_rps"`
	FaultSpec string        `json:"fault_spec"`
	Baseline  []LoadPoint   `json:"baseline"`
	Faulted   []LoadPoint   `json:"faulted"`
	SLO       SLOBounds     `json:"slo"`
}

// sloFaultSpec is the chaos schedule the faulted sweep runs under: a 4×
// traffic burst at t=2s for 2s, node 1 degraded (+30ms per batch) from
// t=4s, and a worker killed mid-batch at t=6s — the ISSUE's
// burst + slownode + worker-kill trio.
const sloFaultSpec = "7:burst@20:2s,slownode@40:r1:30ms,serve@60"

// sloConfig is the simulated cluster the committed curves are measured
// on: 2 nodes × 2 workers × batch 8 at 2ms/tile ≈ 1.8k requests/s of
// healthy capacity, 250ms client deadlines.
func sloConfig() LoadSimConfig {
	return LoadSimConfig{
		Nodes:          2,
		Workers:        2,
		MaxBatch:       8,
		QueueCap:       64,
		TileTime:       0.002,
		BatchOverhead:  0.001,
		Deadline:       0.25,
		Duration:       10,
		Seed:           42,
		SecondsPerStep: 0.1,
		BurstFactor:    4,
		RestartTime:    0.05,
	}
}

// sloRates sweeps from comfortable load to ~1.3× capacity.
func sloRates() []float64 { return []float64{200, 400, 800, 1600, 2400} }

// sloBounds are the committed objectives; see SLOBounds.
func sloBounds() SLOBounds {
	return SLOBounds{P99BoundMS: 250, MaxErrorRate: 0.02, CapacityRPS: 1600}
}

// RunSLOBench measures both sweeps and returns the artifact. The same
// function backs `seaice-serve -slo` (which writes BENCH_serve.json) and
// the SLO regression test (which re-measures and compares against the
// committed file).
func RunSLOBench() (*SLOBench, error) {
	cfg := sloConfig()
	rates := sloRates()
	baseline, err := LoadSweep(cfg, rates, "")
	if err != nil {
		return nil, fmt.Errorf("serve: baseline sweep: %w", err)
	}
	faulted, err := LoadSweep(cfg, rates, sloFaultSpec)
	if err != nil {
		return nil, fmt.Errorf("serve: faulted sweep: %w", err)
	}
	return &SLOBench{
		Schema: "seaice-bench-serve/v1",
		Workload: "chaos-under-load SLO sweep on the simtime cluster model; " +
			"regenerate with `go run ./cmd/seaice-serve -slo` " +
			"(bit-reproducible — no host section needed)",
		Config:    cfg,
		Rates:     rates,
		FaultSpec: sloFaultSpec,
		Baseline:  baseline,
		Faulted:   faulted,
		SLO:       sloBounds(),
	}, nil
}
