package serve

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// TestSLORegression is the chaos-under-load SLO gate: it re-measures the
// deterministic benchmark behind BENCH_serve.json and holds every point
// to the committed bounds — p99 within SLO under burst + slownode +
// worker-kill faults, no feasible-at-admission request 429'd after the
// fact, and no expired request ever dispatched into a forward pass. It
// also cross-checks the committed artifact so a code change that shifts
// the curves must regenerate the file (seaice-serve -slo) in the same
// commit.
func TestSLORegression(t *testing.T) {
	bench, err := RunSLOBench()
	if err != nil {
		t.Fatal(err)
	}
	slo := bench.SLO
	check := func(label string, points []LoadPoint) {
		for _, p := range points {
			if p.AdmittedThenRejected != 0 {
				t.Errorf("%s @%g rps: %d admitted requests later rejected (must be 0)",
					label, p.OfferedRPS, p.AdmittedThenRejected)
			}
			if p.ExpiredComputed != 0 {
				t.Errorf("%s @%g rps: %d expired requests reached compute (must be 0)",
					label, p.OfferedRPS, p.ExpiredComputed)
			}
			if p.P99MS > slo.P99BoundMS {
				t.Errorf("%s @%g rps: p99 %.1fms exceeds SLO bound %.1fms",
					label, p.OfferedRPS, p.P99MS, slo.P99BoundMS)
			}
			if got := p.Admitted; got != p.Completed+p.ExpiredDropped {
				t.Errorf("%s @%g rps: admitted %d != completed %d + expired %d (requests lost)",
					label, p.OfferedRPS, got, p.Completed, p.ExpiredDropped)
			}
		}
	}
	check("baseline", bench.Baseline)
	check("faulted", bench.Faulted)

	// Below the capacity knee a healthy cluster must serve nearly
	// everything (the faulted sweep is exempt: its burst windows exceed
	// the knee by design and shedding them is the behavior under test).
	for _, p := range bench.Baseline {
		if p.OfferedRPS > slo.CapacityRPS {
			continue
		}
		errs := p.RejectedOverload + p.RejectedInfeasible + p.ExpiredDropped
		if rate := float64(errs) / float64(p.Arrived); rate > slo.MaxErrorRate {
			t.Errorf("baseline @%g rps: error rate %.3f exceeds %.3f below capacity",
				p.OfferedRPS, rate, slo.MaxErrorRate)
		}
	}

	// The faulted sweep must actually have delivered its faults —
	// an SLO held against a chaos schedule that never fired proves
	// nothing.
	for _, p := range bench.Faulted {
		if p.FaultsDelivered != 3 {
			t.Errorf("faulted @%g rps: %d of 3 faults delivered", p.OfferedRPS, p.FaultsDelivered)
		}
	}

	// Cross-check the committed artifact point by point.
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_serve.json"))
	if err != nil {
		t.Fatalf("read committed benchmark (regenerate with seaice-serve -slo): %v", err)
	}
	var committed SLOBench
	if err := json.Unmarshal(data, &committed); err != nil {
		t.Fatalf("parse BENCH_serve.json: %v", err)
	}
	comparePoints := func(label string, got, want []LoadPoint) {
		if len(got) != len(want) {
			t.Fatalf("%s: measured %d points, committed %d (regenerate with seaice-serve -slo)",
				label, len(got), len(want))
		}
		for i := range got {
			g, w := got[i], want[i]
			if g.Admitted != w.Admitted || g.Completed != w.Completed ||
				g.RejectedOverload != w.RejectedOverload ||
				g.RejectedInfeasible != w.RejectedInfeasible ||
				g.ExpiredDropped != w.ExpiredDropped ||
				math.Abs(g.P99MS-w.P99MS) > 1e-6 {
				t.Errorf("%s @%g rps drifted from BENCH_serve.json (regenerate with seaice-serve -slo):\n got %+v\nwant %+v",
					label, g.OfferedRPS, g, w)
			}
		}
	}
	comparePoints("baseline", bench.Baseline, committed.Baseline)
	comparePoints("faulted", bench.Faulted, committed.Faulted)
	if committed.SLO != slo {
		t.Errorf("committed SLO bounds %+v differ from code %+v", committed.SLO, slo)
	}
}

// TestSLOLoadSimDeterminism: equal seeds reproduce a run bit-for-bit;
// the committed benchmark depends on it.
func TestSLOLoadSimDeterminism(t *testing.T) {
	run := func() []LoadPoint {
		pts, err := LoadSweep(sloConfig(), []float64{800}, sloFaultSpec)
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	a, b := run(), run()
	if a[0] != b[0] {
		t.Fatalf("same seed, different runs:\n a %+v\n b %+v", a[0], b[0])
	}
}

// TestSLOLoadSimShedsUnderOverload: past capacity the simulator must
// reject rather than let latency run away — the knee behavior the
// admission controller exists for.
func TestSLOLoadSimShedsUnderOverload(t *testing.T) {
	cfg := sloConfig()
	pts, err := LoadSweep(cfg, []float64{5000}, "")
	if err != nil {
		t.Fatal(err)
	}
	p := pts[0]
	if p.RejectedOverload+p.RejectedInfeasible == 0 {
		t.Fatalf("5000 rps against ~1.8k capacity produced zero rejections: %+v", p)
	}
	if p.P99MS > 1000*cfg.Deadline+50 {
		t.Fatalf("completed-request p99 %.1fms ran away past the %.0fms deadline", p.P99MS, 1000*cfg.Deadline)
	}
}

// TestSLOLoadSimBurstFault: a burst fault must raise arrivals inside its
// window relative to the same run without it.
func TestSLOLoadSimBurstFault(t *testing.T) {
	cfg := sloConfig()
	quiet, err := LoadSweep(cfg, []float64{400}, "")
	if err != nil {
		t.Fatal(err)
	}
	bursty, err := LoadSweep(cfg, []float64{400}, "7:burst@10:3s")
	if err != nil {
		t.Fatal(err)
	}
	if bursty[0].FaultsDelivered != 1 {
		t.Fatalf("burst fault not delivered: %+v", bursty[0])
	}
	if bursty[0].Arrived <= quiet[0].Arrived {
		t.Fatalf("burst did not raise arrivals: %d (burst) vs %d (quiet)",
			bursty[0].Arrived, quiet[0].Arrived)
	}
}

// TestSLOLoadSimSlowNodeFault: degrading one node must raise the tail
// without stalling the healthy node — p99 grows, work still completes.
func TestSLOLoadSimSlowNodeFault(t *testing.T) {
	cfg := sloConfig()
	cfg.Deadline = 0 // isolate the latency effect from deadline shedding
	healthy, err := LoadSweep(cfg, []float64{400}, "")
	if err != nil {
		t.Fatal(err)
	}
	sick, err := LoadSweep(cfg, []float64{400}, "3:slownode@0:r1:40ms")
	if err != nil {
		t.Fatal(err)
	}
	if sick[0].FaultsDelivered != 1 {
		t.Fatalf("slownode fault not delivered: %+v", sick[0])
	}
	if sick[0].P99MS <= healthy[0].P99MS {
		t.Fatalf("slownode did not raise p99: %.2fms (sick) vs %.2fms (healthy)",
			sick[0].P99MS, healthy[0].P99MS)
	}
	if sick[0].Completed == 0 {
		t.Fatal("slownode run completed nothing")
	}
}
