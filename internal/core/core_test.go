package core

import (
	"os"
	"testing"
)

// TestRunAccuracyQuick is the end-to-end pipeline test at reduced scale:
// it must reproduce the *signs* of Table IV — filtering improves both
// models, and U-Net-Auto tracks U-Net-Man closely — without asserting
// the paper's absolute numbers.
func TestRunAccuracyQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run; skipped with -short")
	}
	cfg := QuickAccuracyConfig(1234)
	cfg.Progress = func(stage string) { t.Logf("stage: %s", stage) }
	res, err := RunAccuracy(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	res.WriteSummary(os.Stderr)
	t.Logf("Man: orig %.4f filt %.4f | Auto: orig %.4f filt %.4f",
		res.ManOrig.Accuracy, res.ManFilt.Accuracy, res.AutoOrig.Accuracy, res.AutoFilt.Accuracy)
	t.Logf("SSIM orig %.4f filt %.4f | buckets cloudy=%d clear=%d",
		res.SSIMOriginal, res.SSIMFiltered, res.CloudyTest, res.ClearTest)

	if res.ManFilt.Accuracy < 0.85 || res.AutoFilt.Accuracy < 0.85 {
		t.Errorf("filtered accuracy too low: man %.4f auto %.4f", res.ManFilt.Accuracy, res.AutoFilt.Accuracy)
	}
	if res.ManFilt.Accuracy <= res.ManOrig.Accuracy-0.02 {
		t.Errorf("filtering should not hurt U-Net-Man: %.4f vs %.4f", res.ManFilt.Accuracy, res.ManOrig.Accuracy)
	}
	diff := res.AutoFilt.Accuracy - res.ManFilt.Accuracy
	if diff < -0.08 {
		t.Errorf("U-Net-Auto much worse than U-Net-Man on filtered data: %.4f vs %.4f", res.AutoFilt.Accuracy, res.ManFilt.Accuracy)
	}
	if res.SSIMFiltered <= res.SSIMOriginal {
		t.Errorf("filtered auto-label SSIM %.4f not above original %.4f", res.SSIMFiltered, res.SSIMOriginal)
	}
}
