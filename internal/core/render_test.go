package core

import (
	"strings"
	"testing"

	"seaice/internal/metrics"
	"seaice/internal/raster"
)

// fakeCell builds a Cell with a simple diagonal-dominant confusion.
func fakeCell(acc float64) Cell {
	c := metrics.NewConfusion(int(raster.NumClasses))
	diag := int64(acc * 1000)
	off := (1000 - diag) / 2
	for i := 0; i < 3; i++ {
		c.Count[i][i] = diag
		c.Count[i][(i+1)%3] = off
		c.Count[i][(i+2)%3] = 1000 - diag - off
	}
	return cellFrom(c)
}

func fakeResult() *AccuracyResult {
	r := &AccuracyResult{
		ManOrig: fakeCell(0.91), AutoOrig: fakeCell(0.90),
		ManFilt: fakeCell(0.98), AutoFilt: fakeCell(0.99),
		CloudyManOrig: fakeCell(0.88), CloudyAutoOrig: fakeCell(0.80),
		CloudyManFilt: fakeCell(0.99), CloudyAutoFilt: fakeCell(0.99),
		ClearManOrig: fakeCell(0.92), ClearAutoOrig: fakeCell(0.93),
		ClearManFilt: fakeCell(0.98), ClearAutoFilt: fakeCell(0.98),
		SSIMOriginal: 0.89, SSIMFiltered: 0.99,
	}
	return r
}

func TestTable4ReportContainsPaperAndOurs(t *testing.T) {
	s := Table4Report(fakeResult()).String()
	for _, want := range []string{"91.39%", "98.97%", "91.00%", "99.00%", "original S2 images"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table IV missing %q:\n%s", want, s)
		}
	}
}

func TestTable5ReportStructure(t *testing.T) {
	s := Table5Report(fakeResult()).String()
	for _, want := range []string{">10% cloud/shadow", "<10% cloud/shadow", "79.91%", "filtered"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table V missing %q:\n%s", want, s)
		}
	}
}

func TestFig13ReportHasSixPanels(t *testing.T) {
	s := Fig13Report(fakeResult())
	if n := strings.Count(s, "true\\pred"); n != 6 {
		t.Fatalf("fig 13 has %d panels, want 6:\n%s", n, s)
	}
}

func TestSSIMReportValues(t *testing.T) {
	s := SSIMReport(fakeResult()).String()
	if !strings.Contains(s, "0.89") || !strings.Contains(s, "0.9964") {
		t.Fatalf("ssim report missing values:\n%s", s)
	}
}

func TestTable1ReportRendersModel(t *testing.T) {
	rows, err := RunTable1(nil, false)
	if err != nil {
		t.Fatalf("table1: %v", err)
	}
	s := Table1Report(rows).String()
	if !strings.Contains(s, "17.40") || !strings.Contains(s, "4.58") {
		t.Fatalf("table I report incomplete:\n%s", s)
	}
}

func TestTable3ReportRendersPaperColumn(t *testing.T) {
	rows := make([]Table3Row, len(Table3Paper))
	copy(rows, Table3Paper)
	s := Table3Report(rows).String()
	if !strings.Contains(s, "280.72") || !strings.Contains(s, "7.21") {
		t.Fatalf("table III report incomplete:\n%s", s)
	}
}
