package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"seaice/internal/dataset"
	"seaice/internal/raster"
	"seaice/internal/scene"
	"seaice/internal/unet"
)

// -update regenerates the committed int8 golden raster. Run it ONLY when
// an intentional quantization or inference-pipeline change lands, and
// re-review the diff: this file is what turns silent drift in the int8
// numerics (scale derivation, requantization rounding, GEMM kernels,
// zero-point folding) into a test failure.
var updateInt8Golden = flag.Bool("update", false, "rewrite the golden int8 scene raster")

// int8GoldenPath is the committed label raster: the end-to-end int8
// classification (filter → tile → quantized U-Net → stitch) of the
// noise-seeded 96×96 scene below, one class byte per pixel.
const int8GoldenPath = "testdata/int8-scene-golden-seed4242.bin"

// int8GoldenLabels runs the exact pipeline under test: a seed-determined
// float64 master, calibrated on the scene's own tiles, quantized to
// int8, then driven through the shared Fig 9 inference workflow. Every
// stage is deterministic — weight init and the scene from seeded RNGs,
// calibration from pure float64 forward passes, and the int8 forward
// pass bit-deterministic by construction (fixed-point requantization;
// see internal/tensor) — so the output raster is a platform-independent
// function of the seed.
func int8GoldenLabels(t *testing.T) *raster.Labels {
	t.Helper()
	cfg := scene.DefaultConfig(4242)
	cfg.W, cfg.H = 96, 96
	sc, err := scene.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := unet.New[float64](unet.FastConfig(4242))
	if err != nil {
		t.Fatal(err)
	}
	tiles, _, err := raster.Split(sc.Image, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	imgs := make([]*raster.RGB, len(tiles))
	for i, tl := range tiles {
		imgs[i] = tl.Image
	}
	cal, err := unet.Calibrate(m, imgs, 4)
	if err != nil {
		t.Fatal(err)
	}
	qm, err := unet.Quantize(m, cal)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := Inference(qm, sc.Image, 32, dataset.DefaultBuild())
	if err != nil {
		t.Fatal(err)
	}
	return pred
}

// TestGoldenInt8SceneRaster byte-compares the end-to-end int8 scene
// classification against the committed golden raster — the quantized
// counterpart of autolabel's golden test. Any refactor that shifts even
// one pixel's class (a changed scale formula, a requant rounding tweak,
// a GEMM kernel bug) fails here rather than surfacing as a silent
// accuracy regression.
func TestGoldenInt8SceneRaster(t *testing.T) {
	pred := int8GoldenLabels(t)
	got := make([]byte, len(pred.Pix))
	for i, c := range pred.Pix {
		got[i] = byte(c)
	}

	if *updateInt8Golden {
		if err := os.MkdirAll(filepath.Dir(int8GoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(int8GoldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden raster rewritten (%d bytes) — review the diff", len(got))
		return
	}

	want, err := os.ReadFile(int8GoldenPath)
	if err != nil {
		t.Fatalf("golden raster missing (regenerate with -update after reviewing): %v", err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden raster is %d bytes, pipeline produced %d", len(want), len(got))
	}
	if !bytes.Equal(got, want) {
		diff, first := 0, -1
		for i := range got {
			if got[i] != want[i] {
				diff++
				if first < 0 {
					first = i
				}
			}
		}
		t.Fatalf("int8 inference output drifted from golden raster: %d/%d pixels differ (first at index %d: got class %d, want %d)",
			diff, len(got), first, got[first], want[first])
	}
}
