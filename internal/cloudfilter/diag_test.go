package cloudfilter

import (
	"math"
	"testing"

	"seaice/internal/autolabel"
	"seaice/internal/metrics"
	"seaice/internal/raster"
	"seaice/internal/scene"
)

// maxch returns the max RGB channel (the HSV value) of pixel i.
func maxch(img *raster.RGB, i int) uint8 {
	v := img.Pix[3*i]
	if img.Pix[3*i+1] > v {
		v = img.Pix[3*i+1]
	}
	if img.Pix[3*i+2] > v {
		v = img.Pix[3*i+2]
	}
	return v
}

// TestDiagFilterBreakdown prints a detailed error breakdown used while
// calibrating the filter; it never fails, it only reports.
func TestDiagFilterBreakdown(t *testing.T) {
	cfg := scene.DefaultConfig(42)
	cfg.W, cfg.H = 512, 512
	sc, _ := scene.Generate(cfg)
	res := FilterDefault(sc.Image)

	// opacity and shadow estimate errors over disturbed pixels
	var aErr, shErr float64
	var aN int
	for i := range sc.CloudOpacity.Pix {
		aErr += math.Abs(res.Opacity.Pix[i] - sc.CloudOpacity.Pix[i])
		shErr += math.Abs(res.Shadow.Pix[i] - sc.Shadow.Pix[i])
		aN++
	}
	t.Logf("mean |opacity err| %.4f  mean |shadow err| %.4f", aErr/float64(aN), shErr/float64(aN))

	labOrig, _ := autolabel.LabelPaper(sc.Image)
	labFilt, _ := autolabel.LabelPaper(res.Image)

	// Sample residual errors with their field values.
	sample := func(name string, truth, pred raster.Class) {
		shown := 0
		for i := range sc.Truth.Pix {
			if shown >= 5 {
				break
			}
			if sc.Truth.Pix[i] == truth && labFilt.Pix[i] == pred && sc.Truth.Pix[i] != labFilt.Pix[i] {
				t.Logf("%s px %d: aTrue=%.3f shTrue=%.3f aEst=%.3f shEst=%.3f obsV=%d filtV=%d", name, i,
					sc.CloudOpacity.Pix[i], sc.Shadow.Pix[i], res.Opacity.Pix[i], res.Shadow.Pix[i],
					maxch(sc.Image, i), maxch(res.Image, i))
				shown++
			}
		}
	}
	sample("thick→thin", raster.ClassThickIce, raster.ClassThinIce)
	sample("water→thin", raster.ClassWater, raster.ClassThinIce)
	sample("water→thick", raster.ClassWater, raster.ClassThickIce)
	sample("thin→water", raster.ClassThinIce, raster.ClassWater)

	for _, part := range []struct {
		name string
		want uint8 // cloud mask value selecting the partition
	}{{"disturbed", 255}, {"clear", 0}} {
		co := metrics.NewConfusion(int(raster.NumClasses))
		cf := metrics.NewConfusion(int(raster.NumClasses))
		for i := range sc.Truth.Pix {
			if sc.CloudMask.Pix[i] != part.want {
				continue
			}
			if err := co.Add(sc.Truth.Pix[i], labOrig.Pix[i]); err != nil {
				t.Fatal(err)
			}
			if err := cf.Add(sc.Truth.Pix[i], labFilt.Pix[i]); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("%s pixels (n=%d): original acc %.4f filtered acc %.4f", part.name, co.Total(), co.Accuracy(), cf.Accuracy())
		t.Logf("%s original confusion:\n%s", part.name, co)
		t.Logf("%s filtered confusion:\n%s", part.name, cf)
	}
}
