package simtime

import (
	"testing"
	"testing/quick"

	"seaice/internal/noise"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	var c Clock
	var order []int
	c.After(3, func() { order = append(order, 3) })
	c.After(1, func() { order = append(order, 1) })
	c.After(2, func() { order = append(order, 2) })
	end := c.Run()
	if end != 3 {
		t.Fatalf("final time %f, want 3", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	var c Clock
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.Schedule(7, func() { order = append(order, i) })
	}
	c.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events reordered: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	var c Clock
	var times []float64
	c.After(1, func() {
		times = append(times, c.Now())
		c.After(2, func() { times = append(times, c.Now()) })
	})
	end := c.Run()
	if end != 3 || len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("nested scheduling wrong: end=%f times=%v", end, times)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	var c Clock
	c.After(5, func() {})
	c.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past must panic")
		}
	}()
	c.Schedule(1, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	var c Clock
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay must panic")
		}
	}()
	c.After(-1, func() {})
}

func TestStepAndPending(t *testing.T) {
	var c Clock
	c.After(1, func() {})
	c.After(2, func() {})
	if c.Pending() != 2 {
		t.Fatalf("pending %d, want 2", c.Pending())
	}
	if !c.Step() {
		t.Fatal("step should run an event")
	}
	if c.Now() != 1 || c.Pending() != 1 {
		t.Fatalf("after one step: now=%f pending=%d", c.Now(), c.Pending())
	}
	c.Run()
	if c.Step() {
		t.Fatal("step on empty queue should report false")
	}
}

// TestMonotonicProperty: for random event sets, observed times are
// non-decreasing and every event fires exactly once.
func TestMonotonicProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := noise.NewRNG(seed, 1)
		var c Clock
		n := 1 + rng.Intn(50)
		fired := 0
		last := -1.0
		for i := 0; i < n; i++ {
			at := rng.Float64() * 100
			c.Schedule(at, func() {
				if c.Now() < last {
					t.Fatalf("time went backwards: %f after %f", c.Now(), last)
				}
				last = c.Now()
				fired++
			})
		}
		c.Run()
		return fired == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
