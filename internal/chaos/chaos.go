// Package chaos is the deterministic fault-injection subsystem behind
// the repository's elastic fault-tolerance stack. Production-scale runs
// lose workers as a matter of course; this package turns "a worker died"
// into a reproducible, seeded event so the recovery machinery in
// internal/ddp (replica crash + heal), internal/pipeline (stage retry),
// and internal/serve (worker restart) can be tested for *provable*
// recovery — the bit-identity invariants in ARCHITECTURE.md are asserted
// against schedules built here.
//
// A Schedule is parsed from a compact spec (the -chaos flag of
// seaice-train and seaice-serve):
//
//	<seed>:<fault>[,<fault>...]
//	fault := kind@N[:rR][:dur]
//
//	crash@N[:rR]      kill ddp replica R at the start of global step N
//	kill@N            kill the whole training process at step N
//	stage@N           panic the pipeline stage worker labeling scene N
//	serve@N           panic the serve inference worker on batch pickup N
//	stall@N[:rR][:D]  delay replica R by D (default 10ms) at step N
//
// Network faults target the TCP transport (internal/transport) under
// multi-process training; they are delivered by rank R's own process at
// exact step boundaries (part, reconn) or at the next frame send during
// step N (slow, drop):
//
//	part@N[:rR]       partition rank R at step N: both ring links drop
//	reconn@N[:rR]     close rank R's outbound link at step N (forces redial)
//	drop@N[:rR]       silently drop rank R's next outgoing frame in step N
//	slow@N[:rR][:D]   delay rank R's next frame send in step N by D (default 10ms)
//
// Overload faults target the serve plane and its load driver
// (serve.LoadSim); slownode also fires in a real seaice-serve process at
// batch-pickup ordinal N:
//
//	burst@N[:D]          multiply offered load for D (default 1s) from virtual step N
//	slownode@N[:rR][:D]  degrade node R from step N on: every batch +D (default 10ms)
//
// Data faults model silent corruption — bytes or floats going bad
// without any process dying. Each is caught by a matching integrity
// layer (CRC32C frame trailers, checksummed checkpoints, numeric
// guards, scene validation) and recovered from deterministically:
//
//	bitflip@N[:rR]    flip one bit in rank R's next outgoing frame in step N
//	nanstep@N[:rR]    poison rank R's gradient vector with NaN at step N
//	badscene@K        corrupt scene K's raster bytes before the label stage
//	torn@N            truncate the checkpoint written at step N mid-write
//
// Omitted targets are drawn from the schedule seed, so "7:crash@3" names
// one concrete fault, not a random one. Example:
//
//	seaice-train -workers 4 -chaos "7:crash@3:r1,stall@5:r2:50ms,crash@9"
//
// Determinism guarantees: every fault fires exactly once (one-shot), at
// an exact boundary — a (rank, step) pair for training, a scene index
// for the pipeline, a batch-pickup ordinal for serving — never "after
// roughly t seconds". Simulated runs instead deliver faults at exact
// virtual instants via internal/simtime (DeliverVirtual), with the
// clock's FIFO tie-break making simultaneous faults reproducible too.
// The same spec therefore produces the same fault sequence on any host
// at any parallelism, which is what lets the recovery tests compare a
// chaos run byte-for-byte against an undisturbed one.
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"seaice/internal/noise"
	"seaice/internal/simtime"
)

// Kind enumerates the fault types the injector can deliver.
type Kind uint8

const (
	// ReplicaCrash kills one ddp replica at a global-step boundary.
	ReplicaCrash Kind = iota
	// ProcessKill aborts the whole training run at a step boundary
	// (recovery is a restart resuming from the last snapshot).
	ProcessKill
	// StagePanic panics the pipeline stage worker processing one scene.
	StagePanic
	// ServePanic panics a serve inference worker as it picks up a batch.
	ServePanic
	// Straggler delays one replica at a step boundary without killing it.
	Straggler
	// NetPartition drops both of one rank's ring links at a step
	// boundary — the network analogue of ReplicaCrash: peers detect it
	// as connection errors (*ring.RankError) and the step is retried
	// after the ring re-establishes.
	NetPartition
	// SlowLink delays one rank's next outgoing frame during a step —
	// the network straggler (wall clock only; results unaffected).
	SlowLink
	// DropFrame silently discards one rank's next outgoing frame during
	// a step; the receiver detects the loss by read deadline.
	DropFrame
	// Reconnect closes one rank's outbound ring link at a step
	// boundary, exercising the dial-retry/backoff path.
	Reconnect
	// LoadBurst multiplies the offered load of the serve load driver for
	// a window starting at virtual step N (duration D, default 1s) — the
	// correlated-traffic-spike fault the admission controller must
	// absorb as 429s, not latency collapse.
	LoadBurst
	// SlowNode degrades one serve node's service time: from batch-pickup
	// (or virtual-instant) N onward, every batch on the node is delayed
	// by D (default 10ms). Unlike ServePanic it models a sick-but-alive
	// node — the case health binaries miss and EWMA detectors catch.
	SlowNode
	// Bitflip flips one bit in rank R's next outgoing transport frame
	// during step N — a silent in-flight corruption. The CRC32C frame
	// trailer detects it on the receiving side, which surfaces a
	// *ring.RankError and drives the normal rollback-and-retry recovery.
	Bitflip
	// NaNStep poisons one rank's flattened gradient vector with NaN just
	// before the step-N all-reduce. NaN propagates through the reduction,
	// so every rank's numeric guard sees the same non-finite reduced
	// vector and rolls the step back in lockstep (train.GuardConfig).
	NaNStep
	// BadScene corrupts scene K's bytes before the label stage — the
	// corrupt-granule fault. Scene validation detects the poison and the
	// per-scene retry (or quarantine) path handles it.
	BadScene
	// TornWrite truncates the snapshot/shard checkpoint written at step N
	// mid-write — a torn write the checksummed on-disk format detects at
	// load, falling back to the previous rotation entry.
	TornWrite
)

// String names the kind with its spec keyword.
func (k Kind) String() string {
	switch k {
	case ReplicaCrash:
		return "crash"
	case ProcessKill:
		return "kill"
	case StagePanic:
		return "stage"
	case ServePanic:
		return "serve"
	case Straggler:
		return "stall"
	case NetPartition:
		return "part"
	case SlowLink:
		return "slow"
	case DropFrame:
		return "drop"
	case Reconnect:
		return "reconn"
	case LoadBurst:
		return "burst"
	case SlowNode:
		return "slownode"
	case Bitflip:
		return "bitflip"
	case NaNStep:
		return "nanstep"
	case BadScene:
		return "badscene"
	case TornWrite:
		return "torn"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// defaultStall is the straggler delay when the spec omits one.
const defaultStall = 10 * time.Millisecond

// Fault is one scheduled failure.
type Fault struct {
	Kind Kind
	// Step is the boundary ordinal the fault fires at: a global training
	// step (crash/kill/stall), a scene index (stage), or a batch-pickup
	// ordinal counted from 0 (serve).
	Step int
	// Target is the victim rank for crash/stall; -1 means "derive from
	// the schedule seed when the rank domain is known" (Injector.New).
	Target int
	// Delay is the straggler duration; zero means defaultStall.
	Delay time.Duration
}

// Schedule is a parsed, seeded fault plan.
type Schedule struct {
	Seed   uint64
	Faults []Fault
}

// Parse reads the -chaos spec format documented in the package comment.
// An empty spec returns (nil, nil): chaos disabled.
func Parse(spec string) (*Schedule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	head, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("chaos: spec %q missing ':' after seed (want <seed>:<fault>,...)", spec)
	}
	seed, err := strconv.ParseUint(head, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("chaos: bad seed %q: %w", head, err)
	}
	s := &Schedule{Seed: seed}
	for _, part := range strings.Split(rest, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := parseFault(part)
		if err != nil {
			return nil, err
		}
		s.Faults = append(s.Faults, f)
	}
	if len(s.Faults) == 0 {
		return nil, fmt.Errorf("chaos: spec %q names no faults", spec)
	}
	return s, nil
}

// parseFault reads one kind@N[:rR][:dur] clause.
func parseFault(part string) (Fault, error) {
	kindStr, rest, ok := strings.Cut(part, "@")
	if !ok {
		return Fault{}, fmt.Errorf("chaos: fault %q missing '@step'", part)
	}
	f := Fault{Target: -1}
	switch kindStr {
	case "crash":
		f.Kind = ReplicaCrash
	case "kill":
		f.Kind = ProcessKill
	case "stage":
		f.Kind = StagePanic
	case "serve":
		f.Kind = ServePanic
	case "stall":
		f.Kind = Straggler
	case "part":
		f.Kind = NetPartition
	case "slow":
		f.Kind = SlowLink
	case "drop":
		f.Kind = DropFrame
	case "reconn":
		f.Kind = Reconnect
	case "burst":
		f.Kind = LoadBurst
	case "slownode":
		f.Kind = SlowNode
	case "bitflip":
		f.Kind = Bitflip
	case "nanstep":
		f.Kind = NaNStep
	case "badscene":
		f.Kind = BadScene
	case "torn":
		f.Kind = TornWrite
	default:
		return Fault{}, fmt.Errorf("chaos: unknown fault kind %q (want crash|kill|stage|serve|stall|part|slow|drop|reconn|burst|slownode|bitflip|nanstep|badscene|torn)", kindStr)
	}
	fields := strings.Split(rest, ":")
	step, err := strconv.Atoi(fields[0])
	if err != nil || step < 0 {
		return Fault{}, fmt.Errorf("chaos: fault %q has bad step %q", part, fields[0])
	}
	f.Step = step
	for _, field := range fields[1:] {
		switch {
		case strings.HasPrefix(field, "r"):
			r, err := strconv.Atoi(field[1:])
			if err != nil || r < 0 {
				return Fault{}, fmt.Errorf("chaos: fault %q has bad rank %q", part, field)
			}
			f.Target = r
		default:
			d, err := time.ParseDuration(field)
			if err != nil || d < 0 {
				return Fault{}, fmt.Errorf("chaos: fault %q has bad duration %q", part, field)
			}
			f.Delay = d
		}
	}
	if f.Target >= 0 && (f.Kind == ProcessKill || f.Kind == StagePanic || f.Kind == ServePanic || f.Kind == LoadBurst || f.Kind == BadScene || f.Kind == TornWrite) {
		return Fault{}, fmt.Errorf("chaos: fault %q: %s faults take no rank target", part, f.Kind)
	}
	switch f.Kind {
	case Straggler, SlowLink, LoadBurst, SlowNode:
		// Duration-bearing kinds.
	default:
		if f.Delay > 0 {
			return Fault{}, fmt.Errorf("chaos: fault %q: only stall, slow, burst, and slownode faults take a duration", part)
		}
	}
	return f, nil
}

// Event records one delivered fault for logs and assertions.
type Event struct {
	Kind   Kind
	Step   int
	Target int
	// Virtual is the simtime instant for faults delivered by
	// DeliverVirtual; 0 for boundary-delivered faults.
	Virtual float64
}

// String renders the event in spec-like form.
func (e Event) String() string {
	s := fmt.Sprintf("%s@%d", e.Kind, e.Step)
	if e.Target >= 0 {
		s += fmt.Sprintf(":r%d", e.Target)
	}
	if e.Virtual > 0 {
		s += fmt.Sprintf(" (t=%.6fs)", e.Virtual)
	}
	return s
}

// Injector delivers a schedule's faults, each exactly once. A nil
// *Injector is valid and never fires, so instrumented call sites need no
// nil checks. All methods are safe for concurrent use.
type Injector struct {
	mu      sync.Mutex
	faults  []Fault
	fired   []bool
	pickups int // serve batch-pickup counter
	// slowBatch is the latched slow-node delay: once a slownode fault's
	// pickup is reached the process stays degraded (every subsequent
	// batch delayed) — a sick-but-alive node, not a one-shot hiccup.
	slowBatch time.Duration
	log       []Event
}

// New resolves a schedule into an injector. ranks is the rank domain for
// auto-targeted (Target < 0) crash/stall faults: each draws its victim
// from the schedule seed, one independent stream per fault index, so the
// same spec always names the same victims. ranks <= 0 resolves
// auto-targets to rank 0. A nil schedule returns a nil injector (chaos
// disabled).
func New(s *Schedule, ranks int) *Injector {
	if s == nil {
		return nil
	}
	in := &Injector{
		faults: make([]Fault, len(s.Faults)),
		fired:  make([]bool, len(s.Faults)),
	}
	copy(in.faults, s.Faults)
	for i := range in.faults {
		f := &in.faults[i]
		if f.Target >= 0 || !rankTargeted(f.Kind) {
			continue
		}
		if ranks <= 1 {
			f.Target = 0
			continue
		}
		f.Target = noise.NewRNG(s.Seed, uint64(i)+0xc4a05).Intn(ranks)
	}
	return in
}

// rankTargeted reports whether the kind names a victim rank (and so
// participates in seed-derived auto-targeting).
func rankTargeted(k Kind) bool {
	switch k {
	case ReplicaCrash, Straggler, NetPartition, SlowLink, DropFrame, Reconnect, SlowNode, Bitflip, NaNStep:
		return true
	}
	return false
}

// fire marks fault i delivered and logs it. Callers hold in.mu.
func (in *Injector) fire(i int, virtual float64) {
	in.fired[i] = true
	in.log = append(in.log, Event{
		Kind: in.faults[i].Kind, Step: in.faults[i].Step,
		Target: in.faults[i].Target, Virtual: virtual,
	})
}

// ReplicaCrash reports whether replica rank should die at the start of
// global step. The matching fault fires at most once.
func (in *Injector) ReplicaCrash(rank, step int) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, f := range in.faults {
		if !in.fired[i] && f.Kind == ReplicaCrash && f.Step == step && f.Target == rank {
			in.fire(i, 0)
			return true
		}
	}
	return false
}

// ProcessKill reports whether the whole run should abort at the start of
// global step.
func (in *Injector) ProcessKill(step int) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, f := range in.faults {
		if !in.fired[i] && f.Kind == ProcessKill && f.Step == step {
			in.fire(i, 0)
			return true
		}
	}
	return false
}

// StagePanic reports whether the pipeline stage worker should panic
// while processing the given scene index.
func (in *Injector) StagePanic(scene int) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, f := range in.faults {
		if !in.fired[i] && f.Kind == StagePanic && f.Step == scene {
			in.fire(i, 0)
			return true
		}
	}
	return false
}

// ServePanic reports whether the serve worker picking up the next batch
// should panic. Pickups are counted from 0 across the whole scheduler,
// so serve@N names the Nth batch dispatch.
func (in *Injector) ServePanic() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	pickup := in.pickups
	in.pickups++
	for i, f := range in.faults {
		if !in.fired[i] && f.Kind == ServePanic && f.Step == pickup {
			in.fire(i, 0)
			return true
		}
	}
	return false
}

// ServeBatch is the serve scheduler's per-batch-pickup query, combining
// the one-shot worker panic (serve@N, exactly as ServePanic reports it)
// with the durable slow-node degradation: the first pickup at or past a
// slownode fault's step fires it and latches its delay, and every
// subsequent batch — including this one — reports that delay. The two
// kinds share one pickup counter, so a spec mixing serve@ and slownode@
// ordinals reads consistently.
func (in *Injector) ServeBatch() (panicNow bool, slow time.Duration) {
	if in == nil {
		return false, 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	pickup := in.pickups
	in.pickups++
	for i, f := range in.faults {
		if in.fired[i] {
			continue
		}
		switch f.Kind {
		case ServePanic:
			if f.Step == pickup {
				in.fire(i, 0)
				panicNow = true
			}
		case SlowNode:
			if f.Step <= pickup {
				in.fire(i, 0)
				if f.Delay > 0 {
					in.slowBatch = f.Delay
				} else {
					in.slowBatch = defaultStall
				}
			}
		}
	}
	return panicNow, in.slowBatch
}

// fireRankStep delivers the first pending fault of kind k targeting
// (rank, step) and reports whether one fired.
func (in *Injector) fireRankStep(k Kind, rank, step int) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, f := range in.faults {
		if !in.fired[i] && f.Kind == k && f.Step == step && f.Target == rank {
			in.fire(i, 0)
			return true
		}
	}
	return false
}

// Partition reports whether rank's ring links should drop at the start
// of global step — the transport consumes it at its step boundary.
func (in *Injector) Partition(rank, step int) bool {
	return in.fireRankStep(NetPartition, rank, step)
}

// Reconnect reports whether rank should close its outbound ring link at
// the start of global step, forcing a redial with backoff.
func (in *Injector) Reconnect(rank, step int) bool {
	return in.fireRankStep(Reconnect, rank, step)
}

// DropFrame reports whether rank's next outgoing frame during global
// step should be silently discarded — queried per send, so the fault
// consumes exactly one frame.
func (in *Injector) DropFrame(rank, step int) bool {
	return in.fireRankStep(DropFrame, rank, step)
}

// Bitflip reports whether one bit of rank's next outgoing transport
// frame during global step should be flipped — queried per send, so the
// fault corrupts exactly one frame. The receiver's CRC32C trailer check
// turns the silent corruption into a loud *ring.RankError.
func (in *Injector) Bitflip(rank, step int) bool {
	return in.fireRankStep(Bitflip, rank, step)
}

// NaNStep reports whether rank should poison its local flattened
// gradient vector with NaN at the given global step, before the
// all-reduce — so every rank's numeric guard trips on the same reduced
// vector and the step rolls back deterministically.
func (in *Injector) NaNStep(rank, step int) bool {
	return in.fireRankStep(NaNStep, rank, step)
}

// BadScene reports whether the given scene's bytes should be corrupted
// before the label stage — the pipeline's scene validation must catch
// the poison and retry (or quarantine) the scene.
func (in *Injector) BadScene(scene int) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, f := range in.faults {
		if !in.fired[i] && f.Kind == BadScene && f.Step == scene {
			in.fire(i, 0)
			return true
		}
	}
	return false
}

// TornWrite reports whether the snapshot/shard checkpoint being written
// at the given step (or shard) ordinal should be truncated mid-write —
// the checksummed on-disk format detects the tear at load.
func (in *Injector) TornWrite(step int) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, f := range in.faults {
		if !in.fired[i] && f.Kind == TornWrite && f.Step == step {
			in.fire(i, 0)
			return true
		}
	}
	return false
}

// SlowLink returns how long rank's next frame send during global step
// should be delayed (0 = no slow link scheduled).
func (in *Injector) SlowLink(rank, step int) time.Duration {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, f := range in.faults {
		if !in.fired[i] && f.Kind == SlowLink && f.Step == step && f.Target == rank {
			in.fire(i, 0)
			if f.Delay > 0 {
				return f.Delay
			}
			return defaultStall
		}
	}
	return 0
}

// StragglerDelay returns how long replica rank should stall at the start
// of global step (0 = no stall scheduled).
func (in *Injector) StragglerDelay(rank, step int) time.Duration {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, f := range in.faults {
		if !in.fired[i] && f.Kind == Straggler && f.Step == step && f.Target == rank {
			in.fire(i, 0)
			if f.Delay > 0 {
				return f.Delay
			}
			return defaultStall
		}
	}
	return 0
}

// DeliverVirtual schedules every not-yet-fired fault on a simtime clock
// at the exact virtual instant step × secondsPerStep — the delivery
// mode for discrete-event simulations (internal/cluster-style runs and
// the chaos tests); the real-goroutine training/serving paths consume
// faults at step/shard boundaries via the query methods instead. fire
// receives each fault as the clock reaches its instant; simultaneous
// faults arrive in schedule order (simtime's FIFO tie-break). The
// injector's event log records the virtual instants.
func (in *Injector) DeliverVirtual(c *simtime.Clock, secondsPerStep float64, fire func(Fault)) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i := range in.faults {
		if in.fired[i] {
			continue
		}
		i := i
		f := in.faults[i]
		at := float64(f.Step) * secondsPerStep
		c.Schedule(at, func() {
			in.mu.Lock()
			if !in.fired[i] {
				in.fire(i, at)
			}
			in.mu.Unlock()
			if fire != nil {
				fire(f)
			}
		})
	}
}

// Events returns a copy of the delivered-fault log, in delivery order.
func (in *Injector) Events() []Event {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.log))
	copy(out, in.log)
	return out
}

// Count reports how many faults of the given kind the schedule holds
// (delivered or not) — callers size retry budgets from it.
func (in *Injector) Count(k Kind) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, f := range in.faults {
		if f.Kind == k {
			n++
		}
	}
	return n
}

// Remaining counts faults not yet delivered — recovery tests assert it
// reaches zero, proving the schedule was exercised rather than dodged.
func (in *Injector) Remaining() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, fired := range in.fired {
		if !fired {
			n++
		}
	}
	return n
}

// Pending lists undelivered faults sorted by step — cmds print it when a
// run ends with faults left over (usually a schedule outliving the run).
func (in *Injector) Pending() []Fault {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var out []Fault
	for i, fired := range in.fired {
		if !fired {
			out = append(out, in.faults[i])
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Step < out[b].Step })
	return out
}
