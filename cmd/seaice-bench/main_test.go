package main

import "testing"

// TestValidatePrecision pins the -precision contract: f32/f64 accepted,
// everything else refused with a clear error (previously a bad value was
// silently ignored unless the table3 experiment ran).
func TestValidatePrecision(t *testing.T) {
	for _, ok := range []string{"f32", "f64"} {
		if err := validatePrecision(ok); err != nil {
			t.Errorf("validatePrecision(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", "f16", "float64", "F32", "mixed"} {
		if err := validatePrecision(bad); err == nil {
			t.Errorf("validatePrecision(%q) accepted, want error", bad)
		}
	}
}
