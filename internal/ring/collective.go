package ring

import (
	"fmt"
	"sync"
)

// Collective is the per-rank view of the ring collectives: each rank —
// a goroutine in one process, or one process of a real cluster — holds
// only its own vector and calls the operations in lockstep with its
// peers. Two implementations exist behind this one interface, so the
// distributed trainer (ddp.FitNet) is transport-agnostic:
//
//   - Local (this package): ranks are goroutines rendezvousing in
//     memory; the operations delegate to AllReduceMeanChunked /
//     Broadcast, so results are bit-identical to the shared-memory ring.
//   - transport.Collective: ranks are processes connected by the
//     length-prefixed TCP ring of internal/transport, running the same
//     chunk schedule over sockets — bit-identical to Local by
//     construction (parity-tested).
//
// Failures surface as *RankError naming the lost peer; the caller
// rewinds its step state, calls Reestablish, and retries — exactly the
// recovery contract of the in-process membership ring (Group).
type Collective[S Scalar] interface {
	// Rank is this member's position in [0, World).
	Rank() int
	// World is the full member count.
	World() int
	// StepStart marks a global-step boundary; transports deliver
	// boundary-scheduled network faults (partition, reconnect) here.
	StepStart(step int)
	// AllReduceMean averages the ranks' vectors in place with the
	// chunked ring schedule (chunk <= 0 selects DefaultChunk). Every
	// rank must call it with an equal-length vector.
	AllReduceMean(vec []S, chunk int) error
	// Broadcast copies rank 0's vector to every rank.
	Broadcast(vec []S) error
	// Commit is the end-of-step agreement barrier: it succeeds only if
	// every rank completed step's collectives, so either all ranks
	// commit an update or none do (the callers' retry keeps them
	// bit-synchronized).
	Commit(step int) error
	// Reestablish rebuilds the member links after a failure and agrees
	// on the step to retry from: the returned step is the minimum the
	// members advertised (a rank that committed ahead rolls back to it).
	Reestablish(step int) (int, error)
	// Close releases the member's resources.
	Close() error
}

// localOp names the collective a localRound gathers; mixing operations
// in one rendezvous is a lockstep violation and fails fast.
type localOp string

const (
	opReduce    localOp = "all-reduce-mean"
	opBroadcast localOp = "broadcast"
	opBarrier   localOp = "barrier"
)

// localRound is one rendezvous of all p ranks: vectors are gathered,
// the shared-memory collective runs once, and every participant
// observes the same error.
type localRound[S Scalar] struct {
	op    localOp
	chunk int
	vecs  [][]S
	n     int
	done  chan struct{}
	err   error
}

// localHub is the shared rendezvous state behind a set of Local ranks.
type localHub[S Scalar] struct {
	p   int
	mu  sync.Mutex
	cur *localRound[S]
}

// Local is the in-process Collective: p goroutines sharing a hub. It
// exists so per-rank callers (ddp.FitNet, the transport parity tests)
// can run against shared memory with results bit-identical to
// AllReduceMeanChunked, making the network transport a drop-in swap.
type Local[S Scalar] struct {
	hub  *localHub[S]
	rank int
}

// NewLocal returns p connected in-process ranks. All p must call each
// collective for any to return (the same lockstep contract a socket
// transport imposes).
func NewLocal[S Scalar](p int) ([]*Local[S], error) {
	if p <= 0 {
		return nil, fmt.Errorf("ring: local collective size %d", p)
	}
	hub := &localHub[S]{p: p}
	out := make([]*Local[S], p)
	for r := range out {
		out[r] = &Local[S]{hub: hub, rank: r}
	}
	return out, nil
}

// Rank implements Collective.
func (l *Local[S]) Rank() int { return l.rank }

// World implements Collective.
func (l *Local[S]) World() int { return l.hub.p }

// StepStart implements Collective; in-process ranks have no links to
// fault, so it is a no-op.
func (l *Local[S]) StepStart(step int) {}

// rendezvous joins (or opens) the current round for op, deposits vec,
// and blocks until all p ranks arrived and the round's collective ran.
func (l *Local[S]) rendezvous(op localOp, chunk int, vec []S) error {
	h := l.hub
	if h.p == 1 {
		// Single-rank degenerate case: the collectives are identities
		// (AllReduceMeanChunked with p=1 leaves the vector unchanged).
		return nil
	}
	h.mu.Lock()
	if h.cur == nil {
		h.cur = &localRound[S]{op: op, chunk: chunk, vecs: make([][]S, h.p), done: make(chan struct{})}
	}
	round := h.cur
	if round.op != op {
		h.mu.Unlock()
		return fmt.Errorf("ring: rank %d called %s while a %s round is open", l.rank, op, round.op)
	}
	round.vecs[l.rank] = vec
	round.n++
	if round.n == h.p {
		// Last arriver executes the shared-memory collective for all.
		switch op {
		case opReduce:
			round.err = AllReduceMeanChunked(round.vecs, round.chunk)
		case opBroadcast:
			round.err = Broadcast(round.vecs)
		case opBarrier:
			// Rendezvous itself is the barrier.
		}
		h.cur = nil
		close(round.done)
		h.mu.Unlock()
		return round.err
	}
	h.mu.Unlock()
	<-round.done
	return round.err
}

// AllReduceMean implements Collective via the shared-memory chunked
// ring; all ranks' vectors must share one length.
func (l *Local[S]) AllReduceMean(vec []S, chunk int) error {
	return l.rendezvous(opReduce, chunk, vec)
}

// Broadcast implements Collective: rank 0's vector is copied to all.
func (l *Local[S]) Broadcast(vec []S) error {
	return l.rendezvous(opBroadcast, 0, vec)
}

// Commit implements Collective; in-process ranks share a failure domain
// so the rendezvous alone is the agreement.
func (l *Local[S]) Commit(step int) error {
	return l.rendezvous(opBarrier, 0, nil)
}

// Reestablish implements Collective: in-process links cannot break, so
// it degenerates to a barrier that echoes the caller's step.
func (l *Local[S]) Reestablish(step int) (int, error) {
	if err := l.rendezvous(opBarrier, 0, nil); err != nil {
		return 0, err
	}
	return step, nil
}

// Close implements Collective.
func (l *Local[S]) Close() error { return nil }
