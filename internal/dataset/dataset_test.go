package dataset

import (
	"testing"

	"seaice/internal/raster"
	"seaice/internal/scene"
)

func buildSmall(t *testing.T, seed uint64, scenes int) *Set {
	t.Helper()
	cc := scene.DefaultCollection(seed)
	cc.Scenes = scenes
	cc.W, cc.H = 128, 128
	scs, err := scene.GenerateCollection(cc)
	if err != nil {
		t.Fatalf("scenes: %v", err)
	}
	cfg := DefaultBuild()
	cfg.TileSize = 32
	set, err := Build(scs, cfg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return set
}

func TestBuildTileCount(t *testing.T) {
	set := buildSmall(t, 3, 4)
	want := 4 * (128 / 32) * (128 / 32)
	if len(set.Tiles) != want {
		t.Fatalf("built %d tiles, want %d", len(set.Tiles), want)
	}
	for i, tile := range set.Tiles {
		if tile.Original == nil || tile.Filtered == nil || tile.Manual == nil || tile.Auto == nil {
			t.Fatalf("tile %d missing views", i)
		}
		if tile.Original.W != 32 || tile.Manual.W != 32 {
			t.Fatalf("tile %d wrong size", i)
		}
		if tile.CloudFraction < 0 || tile.CloudFraction > 1 {
			t.Fatalf("tile %d cloud fraction %f", i, tile.CloudFraction)
		}
	}
}

func TestBuildRejectsBadTileSize(t *testing.T) {
	cfg := DefaultBuild()
	cfg.TileSize = 0
	if _, err := Build(nil, cfg); err == nil {
		t.Fatal("expected tile-size error")
	}
	// indivisible tile size
	cc := scene.DefaultCollection(1)
	cc.Scenes = 1
	cc.W, cc.H = 100, 100
	scs, _ := scene.GenerateCollection(cc)
	cfg = DefaultBuild()
	cfg.TileSize = 33
	if _, err := Build(scs, cfg); err == nil {
		t.Fatal("expected divisibility error")
	}
}

func TestSplitDisjointAndComplete(t *testing.T) {
	set := buildSmall(t, 5, 3)
	tr, te, err := set.Split(0.8, 42)
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	if len(tr)+len(te) != len(set.Tiles) {
		t.Fatalf("split loses tiles: %d + %d != %d", len(tr), len(te), len(set.Tiles))
	}
	wantTrain := int(0.8 * float64(len(set.Tiles)))
	if len(tr) != wantTrain {
		t.Fatalf("train size %d, want %d", len(tr), wantTrain)
	}
	// determinism
	tr2, _, _ := set.Split(0.8, 42)
	for i := range tr {
		if tr[i].Scene != tr2[i].Scene || tr[i].CloudFraction != tr2[i].CloudFraction {
			t.Fatal("split not deterministic")
		}
	}
	if _, _, err := set.Split(1.5, 1); err == nil {
		t.Fatal("expected fraction error")
	}
}

func TestCloudBucketsPartition(t *testing.T) {
	set := buildSmall(t, 7, 4)
	cloudy, clear := CloudBuckets(set.Tiles, 0.10)
	if len(cloudy)+len(clear) != len(set.Tiles) {
		t.Fatal("buckets lose tiles")
	}
	for _, tile := range cloudy {
		if tile.CloudFraction <= 0.10 {
			t.Fatalf("cloudy bucket has %f", tile.CloudFraction)
		}
	}
	for _, tile := range clear {
		if tile.CloudFraction > 0.10 {
			t.Fatalf("clear bucket has %f", tile.CloudFraction)
		}
	}
	if len(cloudy) == 0 || len(clear) == 0 {
		t.Fatalf("degenerate buckets: %d cloudy, %d clear", len(cloudy), len(clear))
	}
}

func TestSamplesViews(t *testing.T) {
	set := buildSmall(t, 9, 2)
	tiles := set.Tiles[:4]

	so := Samples(tiles, OriginalImages, ManualLabels)
	sf := Samples(tiles, FilteredImages, AutoLabels)
	for i := range tiles {
		if so[i].Image != tiles[i].Original || so[i].Labels != tiles[i].Manual {
			t.Fatalf("original/manual view wrong at %d", i)
		}
		if sf[i].Image != tiles[i].Filtered || sf[i].Labels != tiles[i].Auto {
			t.Fatalf("filtered/auto view wrong at %d", i)
		}
	}
}

func TestSubsample(t *testing.T) {
	set := buildSmall(t, 11, 2)
	sub := Subsample(set.Tiles, 5, 1)
	if len(sub) != 5 {
		t.Fatalf("subsample size %d", len(sub))
	}
	all := Subsample(set.Tiles, 10000, 1)
	if len(all) != len(set.Tiles) {
		t.Fatal("oversized subsample should return everything")
	}
	if Subsample(set.Tiles, 0, 1) != nil {
		t.Fatal("zero subsample should be nil")
	}
}

// TestAutoLabelsTrackManualOnClearTiles: on tiles without clouds, the
// auto labels must agree with manual labels almost everywhere — the
// foundation of the paper's auto-labeling claim.
func TestAutoLabelsTrackManualOnClearTiles(t *testing.T) {
	set := buildSmall(t, 13, 4)
	_, clear := CloudBuckets(set.Tiles, 0.02)
	if len(clear) == 0 {
		t.Skip("no clear tiles in this campaign")
	}
	agree, total := 0, 0
	for _, tile := range clear {
		for i := range tile.Manual.Pix {
			if tile.Manual.Pix[i] == tile.Auto.Pix[i] {
				agree++
			}
			total++
		}
	}
	frac := float64(agree) / float64(total)
	if frac < 0.95 {
		t.Fatalf("clear-tile auto/manual agreement %.4f < 0.95", frac)
	}
}

// TestTileViewsShareScenePixels: a tile's original view must match the
// source scene's pixels at the tile offset.
func TestTileViewsShareScenePixels(t *testing.T) {
	cc := scene.DefaultCollection(15)
	cc.Scenes = 1
	cc.W, cc.H = 64, 64
	scs, _ := scene.GenerateCollection(cc)
	cfg := DefaultBuild()
	cfg.TileSize = 32
	set, err := Build(scs, cfg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	// tile 3 = (col 1, row 1)
	tile := set.Tiles[3]
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			tr, tg, tb := tile.Original.At(x, y)
			sr, sg, sb := scs[0].Image.At(32+x, 32+y)
			if tr != sr || tg != sg || tb != sb {
				t.Fatalf("tile pixel (%d,%d) differs from scene", x, y)
			}
			if tile.Manual.At(x, y) != scs[0].Truth.At(32+x, 32+y) {
				t.Fatalf("tile label (%d,%d) differs from truth", x, y)
			}
		}
	}
	_ = raster.ClassWater
}
