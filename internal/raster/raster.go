// Package raster provides the image containers used throughout the sea-ice
// workflow: 8-bit RGB and grayscale rasters, float rasters for intermediate
// filter results, and class-label maps. It also provides scene tiling and
// stitching (the paper splits 2048² Sentinel-2 scenes into 256² tiles for
// training and stitches predictions back together for inference) and PNG
// interop with the standard library image packages.
//
// Pixels are stored row-major. RGB rasters are interleaved (3 bytes per
// pixel) to match the memory layout the color-space and filtering code
// iterates over.
//
// Split/Stitch enumerate tiles in deterministic row-major grid order —
// the order the dataset, pipeline, and inference layers all assume when
// they index tiles by position — and rasters carry no hidden state, so
// concurrent readers (the pipeline's stage workers) are safe.
package raster

import "fmt"

// RGB is an 8-bit interleaved RGB raster.
type RGB struct {
	W, H int
	Pix  []uint8 // len == 3*W*H, row-major, R G B per pixel
}

// NewRGB returns a zeroed (black) RGB raster of the given size.
func NewRGB(w, h int) *RGB {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("raster: invalid RGB size %dx%d", w, h))
	}
	return &RGB{W: w, H: h, Pix: make([]uint8, 3*w*h)}
}

// At returns the pixel at (x, y).
func (m *RGB) At(x, y int) (r, g, b uint8) {
	i := 3 * (y*m.W + x)
	return m.Pix[i], m.Pix[i+1], m.Pix[i+2]
}

// Set stores the pixel at (x, y).
func (m *RGB) Set(x, y int, r, g, b uint8) {
	i := 3 * (y*m.W + x)
	m.Pix[i], m.Pix[i+1], m.Pix[i+2] = r, g, b
}

// Clone returns a deep copy.
func (m *RGB) Clone() *RGB {
	c := NewRGB(m.W, m.H)
	copy(c.Pix, m.Pix)
	return c
}

// Bounds reports the raster dimensions.
func (m *RGB) Bounds() (w, h int) { return m.W, m.H }

// Gray is an 8-bit single-channel raster. It doubles as a binary mask with
// the convention 0 = background, 255 = foreground (matching OpenCV masks).
type Gray struct {
	W, H int
	Pix  []uint8
}

// NewGray returns a zeroed grayscale raster.
func NewGray(w, h int) *Gray {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("raster: invalid Gray size %dx%d", w, h))
	}
	return &Gray{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the value at (x, y).
func (m *Gray) At(x, y int) uint8 { return m.Pix[y*m.W+x] }

// Set stores the value at (x, y).
func (m *Gray) Set(x, y int, v uint8) { m.Pix[y*m.W+x] = v }

// Clone returns a deep copy.
func (m *Gray) Clone() *Gray {
	c := NewGray(m.W, m.H)
	copy(c.Pix, m.Pix)
	return c
}

// Fill sets every pixel to v.
func (m *Gray) Fill(v uint8) {
	for i := range m.Pix {
		m.Pix[i] = v
	}
}

// Bounds reports the raster dimensions.
func (m *Gray) Bounds() (w, h int) { return m.W, m.H }

// Float is a float64 single-channel raster used for intermediate filter
// computations where 8-bit precision would accumulate rounding error.
type Float struct {
	W, H int
	Pix  []float64
}

// NewFloat returns a zeroed float raster.
func NewFloat(w, h int) *Float {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("raster: invalid Float size %dx%d", w, h))
	}
	return &Float{W: w, H: h, Pix: make([]float64, w*h)}
}

// At returns the value at (x, y).
func (m *Float) At(x, y int) float64 { return m.Pix[y*m.W+x] }

// Set stores the value at (x, y).
func (m *Float) Set(x, y int, v float64) { m.Pix[y*m.W+x] = v }

// Clone returns a deep copy.
func (m *Float) Clone() *Float {
	c := NewFloat(m.W, m.H)
	copy(c.Pix, m.Pix)
	return c
}

// FromGray converts an 8-bit raster to float values in [0,255].
func FromGray(g *Gray) *Float {
	f := NewFloat(g.W, g.H)
	for i, v := range g.Pix {
		f.Pix[i] = float64(v)
	}
	return f
}

// ToGray converts the float raster back to 8 bits, clamping to [0,255]
// and rounding to nearest.
func (m *Float) ToGray() *Gray {
	g := NewGray(m.W, m.H)
	for i, v := range m.Pix {
		g.Pix[i] = clampU8(v)
	}
	return g
}

func clampU8(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}

// Class identifies one of the paper's three sea-ice surface classes.
type Class uint8

// The three classes, ordered by increasing brightness: open water is the
// darkest surface (HSV value ≤ 30 in the paper's thresholds), thin/young
// ice is intermediate (31–204), and thick/snow-covered ice is the
// brightest (≥ 205).
const (
	ClassWater Class = iota
	ClassThinIce
	ClassThickIce
	NumClasses = 3
)

// String returns the class name used in reports and confusion matrices.
func (c Class) String() string {
	switch c {
	case ClassWater:
		return "open-water"
	case ClassThinIce:
		return "thin-ice"
	case ClassThickIce:
		return "thick-ice"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Labels is a per-pixel class map.
type Labels struct {
	W, H int
	Pix  []Class
}

// NewLabels returns a label map initialized to ClassWater.
func NewLabels(w, h int) *Labels {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("raster: invalid Labels size %dx%d", w, h))
	}
	return &Labels{W: w, H: h, Pix: make([]Class, w*h)}
}

// At returns the class at (x, y).
func (m *Labels) At(x, y int) Class { return m.Pix[y*m.W+x] }

// Set stores the class at (x, y).
func (m *Labels) Set(x, y int, c Class) { m.Pix[y*m.W+x] = c }

// Clone returns a deep copy.
func (m *Labels) Clone() *Labels {
	c := NewLabels(m.W, m.H)
	copy(c.Pix, m.Pix)
	return c
}

// Counts returns the number of pixels per class.
func (m *Labels) Counts() [NumClasses]int {
	var n [NumClasses]int
	for _, c := range m.Pix {
		if int(c) < NumClasses {
			n[c]++
		}
	}
	return n
}

// Render colors the label map using the paper's legend: red for
// thick/snow-covered ice, blue for thin/young ice, green for open water.
func (m *Labels) Render() *RGB {
	out := NewRGB(m.W, m.H)
	for i, c := range m.Pix {
		var r, g, b uint8
		switch c {
		case ClassThickIce:
			r = 230
		case ClassThinIce:
			b = 230
		case ClassWater:
			g = 180
		}
		out.Pix[3*i], out.Pix[3*i+1], out.Pix[3*i+2] = r, g, b
	}
	return out
}
