//go:build amd64

#include "textflag.h"

// func gemmRowU8S8AVX2(w *int8, x *uint8, k, npx, stride int, out *int32)
//
// One weight row against npx activation columns: out[c] = Σ w[i]·x[c·stride+i]
// for i < k, k a multiple of 32 and ≥ 32. Per 32-byte step:
//   VPMADDUBSW  u8(x)·s8(w) → 16 × s16 pair sums (exact: acts ≤ 127)
//   VPMADDWD    s16 × 1     → 8 × s32 partial sums
//   VPADDD      accumulate
TEXT ·gemmRowU8S8AVX2(SB), NOSPLIT, $0-48
	MOVQ w+0(FP), SI
	MOVQ x+8(FP), DI
	MOVQ k+16(FP), CX
	MOVQ npx+24(FP), DX
	MOVQ stride+32(FP), R11
	MOVQ out+40(FP), R8
	SUBQ CX, R11             // stride-k: column tail to skip after kloop

	VPCMPEQW Y7, Y7, Y7      // all-ones words …
	VPSRLW   $15, Y7, Y7     // … → sixteen words of 1 for VPMADDWD

colloop:
	MOVQ  SI, R9             // rewind weight cursor
	MOVQ  CX, R10            // k countdown
	VPXOR Y0, Y0, Y0         // dword accumulators

kloop:
	VMOVDQU    (R9), Y1      // 32 signed weight bytes
	VMOVDQU    (DI), Y2      // 32 unsigned activation bytes
	VPMADDUBSW Y1, Y2, Y3    // pair sums: x(u8)·w(s8) → s16
	VPMADDWD   Y7, Y3, Y3    // widen: s16 pairs → s32
	VPADDD     Y3, Y0, Y0
	ADDQ       $32, R9
	ADDQ       $32, DI
	SUBQ       $32, R10
	JNZ        kloop

	// horizontal sum of the 8 dwords in Y0
	VEXTRACTI128 $1, Y0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0x4E, X0, X1  // swap 64-bit halves
	VPADDD       X1, X0, X0
	VPSHUFD      $0x55, X0, X1  // lane 1 → lane 0
	VPADDD       X1, X0, X0
	VMOVD        X0, AX
	MOVL         AX, (R8)

	ADDQ R11, DI             // skip column tail: DI += stride-k
	ADDQ $4, R8
	DECQ DX
	JNZ  colloop

	VZEROUPPER
	RET

// func gemmRow4U8S8AVX2(w *int8, x *uint8, k, npx, stride, wstride int, out *int32)
//
// Four weight rows at once against npx activation columns: each 32-byte
// activation load feeds four madd chains (one per row), and the four
// horizontal reductions collapse into one VPHADDD tree, so the per-output
// overhead of the single-row kernel is quartered. k is a multiple of 32
// and ≥ 32; weight rows are wstride bytes apart (wstride ≥ k, the k%32
// tail being the caller's); rows r..r+3 write out[r·npx+c].
TEXT ·gemmRow4U8S8AVX2(SB), NOSPLIT, $0-56
	MOVQ w+0(FP), SI
	MOVQ x+8(FP), DI
	MOVQ k+16(FP), CX
	MOVQ npx+24(FP), DX
	MOVQ stride+32(FP), R11
	MOVQ wstride+40(FP), BX
	MOVQ out+48(FP), R8
	SUBQ CX, R11             // stride-k: column tail to skip after kloop
	LEAQ (BX)(BX*2), R14     // 3·wstride: weight-row-3 offset
	MOVQ DX, R12
	SHLQ $2, R12             // npx·4: output row stride in bytes
	LEAQ (R12)(R12*2), R13   // 3·npx·4

	VPCMPEQW Y7, Y7, Y7
	VPSRLW   $15, Y7, Y7     // sixteen words of 1 for VPMADDWD

colloop4:
	MOVQ  SI, R9
	MOVQ  CX, R10
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3

kloop4:
	VMOVDQU    (DI), Y8          // 32 activation bytes, shared by 4 rows
	VMOVDQU    (R9), Y9
	VPMADDUBSW Y9, Y8, Y9
	VPMADDWD   Y7, Y9, Y9
	VPADDD     Y9, Y0, Y0
	VMOVDQU    (R9)(BX*1), Y10
	VPMADDUBSW Y10, Y8, Y10
	VPMADDWD   Y7, Y10, Y10
	VPADDD     Y10, Y1, Y1
	VMOVDQU    (R9)(BX*2), Y11
	VPMADDUBSW Y11, Y8, Y11
	VPMADDWD   Y7, Y11, Y11
	VPADDD     Y11, Y2, Y2
	VMOVDQU    (R9)(R14*1), Y12
	VPMADDUBSW Y12, Y8, Y12
	VPMADDWD   Y7, Y12, Y12
	VPADDD     Y12, Y3, Y3
	ADDQ       $32, R9
	ADDQ       $32, DI
	SUBQ       $32, R10
	JNZ        kloop4

	// collapse the four 8-dword accumulators into [s0 s1 s2 s3]
	VPHADDD      Y1, Y0, Y4
	VPHADDD      Y3, Y2, Y5
	VPHADDD      Y5, Y4, Y4
	VEXTRACTI128 $1, Y4, X5
	VPADDD       X5, X4, X4
	VMOVD        X4, AX
	MOVL         AX, (R8)
	VPEXTRD      $1, X4, AX
	MOVL         AX, (R8)(R12*1)
	VPEXTRD      $2, X4, AX
	MOVL         AX, (R8)(R12*2)
	VPEXTRD      $3, X4, AX
	MOVL         AX, (R8)(R13*1)

	ADDQ R11, DI
	ADDQ $4, R8
	DECQ DX
	JNZ  colloop4

	VZEROUPPER
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
