package labeler

import (
	"fmt"
	"strings"

	"seaice/internal/metrics"
	"seaice/internal/raster"
)

// Compare runs every engine over every image and builds the
// labeler-agreement report: scene-by-scene pixel agreement and SSIM for
// each engine pair, the pooled per-class confusion of each non-reference
// engine against the first (reference) engine, and overall pairwise
// summaries. The report is plain text, built in fixed iteration order
// from deterministic engines, so it is bit-reproducible — the golden
// test commits one and regenerates it byte-for-byte.
func Compare(imgs []*raster.RGB, engines []Labeler) (string, error) {
	if len(imgs) == 0 {
		return "", fmt.Errorf("labeler: compare needs at least one image")
	}
	if len(engines) < 2 {
		return "", fmt.Errorf("labeler: compare needs at least two engines, got %d", len(engines))
	}

	names := make([]string, len(engines))
	for e, eng := range engines {
		names[e] = eng.Name()
	}

	type pairStat struct {
		agreeSum float64 // mean pixel agreement accumulated over scenes
		ssimSum  float64
	}
	pairs := make(map[[2]int]*pairStat)
	confusions := make(map[[2]int]*metrics.Confusion)
	for a := 0; a < len(engines); a++ {
		for b := a + 1; b < len(engines); b++ {
			pairs[[2]int{a, b}] = &pairStat{}
			confusions[[2]int{a, b}] = metrics.NewConfusion(int(raster.NumClasses))
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "labeler agreement report\n")
	fmt.Fprintf(&b, "engines: %s · scenes: %d\n\n", strings.Join(names, ", "), len(imgs))
	fmt.Fprintf(&b, "%-6s %-22s %10s %8s\n", "scene", "pair", "agreement", "ssim")

	for s, img := range imgs {
		labels := make([]*raster.Labels, len(engines))
		for e, eng := range engines {
			lab, err := eng.Label(img)
			if err != nil {
				return "", fmt.Errorf("labeler: compare scene %d engine %s: %w", s, eng.Name(), err)
			}
			labels[e] = lab
		}
		for p := 0; p < len(engines); p++ {
			for q := p + 1; q < len(engines); q++ {
				agree, err := metrics.PixelAccuracy(labels[p], labels[q])
				if err != nil {
					return "", fmt.Errorf("labeler: compare scene %d %s/%s: %w", s, names[p], names[q], err)
				}
				ssim, err := metrics.SSIMRGB(labels[p].Render(), labels[q].Render())
				if err != nil {
					return "", fmt.Errorf("labeler: compare scene %d %s/%s ssim: %w", s, names[p], names[q], err)
				}
				if err := confusions[[2]int{p, q}].AddLabels(labels[p], labels[q]); err != nil {
					return "", fmt.Errorf("labeler: compare scene %d %s/%s confusion: %w", s, names[p], names[q], err)
				}
				st := pairs[[2]int{p, q}]
				st.agreeSum += agree
				st.ssimSum += ssim
				fmt.Fprintf(&b, "%-6d %-22s %9.2f%% %8.4f\n", s, names[p]+" vs "+names[q], 100*agree, ssim)
			}
		}
	}

	fmt.Fprintf(&b, "\noverall (mean over scenes)\n")
	fmt.Fprintf(&b, "%-22s %10s %8s\n", "pair", "agreement", "ssim")
	ns := float64(len(imgs))
	for p := 0; p < len(engines); p++ {
		for q := p + 1; q < len(engines); q++ {
			st := pairs[[2]int{p, q}]
			fmt.Fprintf(&b, "%-22s %9.2f%% %8.4f\n", names[p]+" vs "+names[q], 100*st.agreeSum/ns, st.ssimSum/ns)
		}
	}

	for p := 0; p < len(engines); p++ {
		for q := p + 1; q < len(engines); q++ {
			fmt.Fprintf(&b, "\nper-class confusion, %s (rows) vs %s (columns), all scenes:\n%s",
				names[p], names[q], confusions[[2]int{p, q}])
		}
	}
	return b.String(), nil
}
