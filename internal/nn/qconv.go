package nn

import (
	"fmt"
	"math"

	"seaice/internal/tensor"
)

// Quantized inference layers. These are forward-only, int8 counterparts
// of Conv2D / ConvTranspose2x2, built post-training from a float master's
// weights plus calibrated activation ranges (unet.Calibrate). The design
// follows the int8 rung of the precision policy:
//
//   - Activations are uint8 in [0, 127] (tensor.QuantMax), NHWC with the
//     channel innermost — a 1×1 conv's GEMM column is then a contiguous
//     pixel row, and a 3×3 im2col gathers nine small channel runs.
//   - Weights are per-output-channel symmetric int8, stored tap-major
//     (w[oc][t·InC+c]) and padded to a multiple of 32 taps so the AVX2
//     GEMM never runs a scalar tail. The per-input-channel activation
//     scale is folded INTO the float weights before quantization, which
//     is what lets the decoder's concatenated skip+up inputs (two
//     different quantizations) share one integer GEMM.
//   - Zero-points fold into the bias exactly: conv ≈ s_w·(acc − Σ_c z_c·Σ_t wq),
//     provided spatial padding taps contribute the input's zero-point
//     byte (QIm2Col3x3 does) and column-length padding taps carry zero
//     weights (the builders do).
//   - The integer GEMM runs on the active tensor.Int8 backend; the
//     requantization epilogue stays here in pure Go, so backend choice
//     can never change an output bit.
type QConv struct {
	Name      string
	InC, OutC int
	K         int // kernel size, 1 or 3 (stride 1, "same" padding)
	KPad      int // padded GEMM column length: K²·InC rounded up to 32
	W         []int8
	Bias      []int32 // round(b/(s_w)) − Σ_c z_c·Σ_t wq, per output channel
	Req       []tensor.Requant
	OutZ      uint8
}

// padTo32 rounds a GEMM column length up to the AVX2 kernel's 32-byte
// step so quantized layers never pay the scalar tail.
func padTo32(k int) int { return (k + 31) &^ 31 }

// NewQConv quantizes one float convolution. w is Conv2D's layout
// (outC, inC·k·k) with taps minor; in gives each input channel's
// activation quantization (a concat input passes the two sources'
// quantizations per channel), out the calibrated output quantization.
func NewQConv(name string, inC, outC, k int, w, bias []float64, in []tensor.ActQuant, out tensor.ActQuant) (*QConv, error) {
	taps := k * k
	if len(w) != outC*inC*taps || len(bias) != outC || len(in) != inC {
		return nil, fmt.Errorf("nn: NewQConv(%s) shape mismatch: %d weights, %d biases, %d in-quants for %d→%d k=%d",
			name, len(w), len(bias), len(in), inC, outC, k)
	}
	if inC*taps > tensor.Int8AccumBoundTaps {
		return nil, fmt.Errorf("nn: NewQConv(%s): %d taps exceeds the int32 accumulator bound %d",
			name, inC*taps, tensor.Int8AccumBoundTaps)
	}
	// Remap to tap-major and fold each input channel's scale into the
	// float weight, so the integer GEMM's product is uniform in s_w.
	wf := make([]float64, outC*inC*taps)
	for oc := 0; oc < outC; oc++ {
		src := w[oc*inC*taps : (oc+1)*inC*taps]
		dst := wf[oc*inC*taps : (oc+1)*inC*taps]
		for c := 0; c < inC; c++ {
			for t := 0; t < taps; t++ {
				dst[t*inC+c] = src[c*taps+t] * in[c].Scale
			}
		}
	}
	q, scales := tensor.QuantizeWeightsPerChannel(wf, outC, inC*taps)

	kPad := padTo32(inC * taps)
	c := &QConv{
		Name: name, InC: inC, OutC: outC, K: k, KPad: kPad,
		W:    make([]int8, outC*kPad),
		Bias: make([]int32, outC),
		Req:  make([]tensor.Requant, outC),
		OutZ: out.Zero,
	}
	for oc := 0; oc < outC; oc++ {
		copy(c.W[oc*kPad:], q[oc*inC*taps:(oc+1)*inC*taps]) // pad taps stay 0
		var zCorr int64
		for ch := 0; ch < inC; ch++ {
			var sumW int64
			for t := 0; t < taps; t++ {
				sumW += int64(q[oc*inC*taps+t*inC+ch])
			}
			zCorr += int64(in[ch].Zero) * sumW
		}
		c.Bias[oc] = int32(int64(math.Round(bias[oc]/scales[oc])) - zCorr)
		c.Req[oc] = tensor.NewRequant(scales[oc] / out.Scale)
	}
	return c, nil
}

// QIm2Col3x3 gathers the tap-major padded GEMM columns for a same-padded
// 3×3 convolution over the virtual channel concat of two NHWC sources
// (xb may be nil): column (img,y,x) holds, for each of the nine taps,
// xa's ca channels then xb's cb channels at (y+ky, x+kx); out-of-image
// taps are filled with the source's zero-point byte so they dequantize
// to exactly zero, and the [9·(ca+cb), kPad) pad region is zeroed (its
// weights are zero, so its content is immaterial — zeroing keeps the
// buffer deterministic).
func QIm2Col3x3(xa []uint8, ca int, za uint8, xb []uint8, cb int, zb uint8, n, h, w, kPad int, dst []uint8) {
	inC := ca + cb
	plane := h * w
	for img := 0; img < n; img++ {
		pa := xa[img*plane*ca : (img+1)*plane*ca]
		var pb []uint8
		if cb > 0 {
			pb = xb[img*plane*cb : (img+1)*plane*cb]
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				col := dst[((img*h+y)*w+x)*kPad:]
				t := 0
				for ky := -1; ky <= 1; ky++ {
					yy := y + ky
					if yy < 0 || yy >= h {
						for j := 0; j < 3; j++ {
							d := col[(t+j)*inC : (t+j)*inC+inC]
							for i := 0; i < ca; i++ {
								d[i] = za
							}
							for i := ca; i < inC; i++ {
								d[i] = zb
							}
						}
						t += 3
						continue
					}
					if x > 0 && x+1 < w {
						// Interior pixels: the row's three taps are
						// contiguous in the source, so the whole kernel
						// row moves in one copy per source (the hot path
						// — only the w-2 boundary columns fall through).
						base := yy*w + x - 1
						if cb == 0 {
							copy(col[t*inC:(t+3)*inC], pa[base*ca:(base+3)*ca])
						} else {
							for j := 0; j < 3; j++ {
								d := col[(t+j)*inC : (t+j)*inC+inC]
								copy(d[:ca], pa[(base+j)*ca:])
								copy(d[ca:], pb[(base+j)*cb:])
							}
						}
						t += 3
						continue
					}
					for kx := -1; kx <= 1; kx++ {
						xx := x + kx
						d := col[t*inC : t*inC+inC]
						if xx < 0 || xx >= w {
							for i := 0; i < ca; i++ {
								d[i] = za
							}
							for i := ca; i < inC; i++ {
								d[i] = zb
							}
						} else {
							copy(d[:ca], pa[(yy*w+xx)*ca:])
							if cb > 0 {
								copy(d[ca:], pb[(yy*w+xx)*cb:])
							}
						}
						t++
					}
				}
				for i := 9 * inC; i < kPad; i++ {
					col[i] = 0
				}
			}
		}
	}
}

// QPadColumns copies an NHWC tensor into kPad-strided GEMM columns — the
// "im2col" of a 1×1 kernel, needed only to pad the column length to the
// vector kernel's step. Pad bytes are zero (zero weights there).
func QPadColumns(x []uint8, npx, c, kPad int, dst []uint8) {
	for p := 0; p < npx; p++ {
		col := dst[p*kPad : (p+1)*kPad]
		copy(col, x[p*c:(p+1)*c])
		for i := c; i < kPad; i++ {
			col[i] = 0
		}
	}
}

// Forward applies the quantized convolution to pre-built GEMM columns
// (QIm2Col3x3 or QPadColumns output; npx columns of c.KPad bytes),
// writing the requantized NHWC result to out (npx·OutC bytes). acc is
// caller-owned int32 scratch with at least OutC·npx elements. The lower
// clamp of the requantization IS the ReLU when OutZ == 0.
func (c *QConv) Forward(cols []uint8, npx int, acc []int32, out []uint8) {
	tensor.Int8().GemmU8S8(c.W, cols, c.OutC, c.KPad, npx, acc)
	for oc := 0; oc < c.OutC; oc++ {
		b, rq := c.Bias[oc], c.Req[oc]
		row := acc[oc*npx : (oc+1)*npx]
		d := out[oc:]
		for p, v := range row {
			d[p*c.OutC] = tensor.RequantClamp(v+b, rq, c.OutZ)
		}
	}
}

// QMaxPool2NHWC is the 2×2 stride-2 max pool on NHWC uint8: max is
// monotone, so the output reuses the input's quantization unchanged.
func QMaxPool2NHWC(x []uint8, n, h, w, c int, out []uint8) {
	oh, ow := h/2, w/2
	for img := 0; img < n; img++ {
		src := x[img*h*w*c:]
		dst := out[img*oh*ow*c:]
		for y := 0; y < oh; y++ {
			r0 := src[(2*y)*w*c:]
			r1 := src[(2*y+1)*w*c:]
			drow := dst[y*ow*c:]
			for x2 := 0; x2 < ow; x2++ {
				a := r0[(2*x2)*c : (2*x2)*c+c]
				b := r0[(2*x2+1)*c : (2*x2+1)*c+c]
				e := r1[(2*x2)*c : (2*x2)*c+c]
				f := r1[(2*x2+1)*c : (2*x2+1)*c+c]
				d := drow[x2*c : (x2+1)*c]
				for i := range d {
					m := a[i]
					if b[i] > m {
						m = b[i]
					}
					if e[i] > m {
						m = e[i]
					}
					if f[i] > m {
						m = f[i]
					}
					d[i] = m
				}
			}
		}
	}
}

// QConvT is the quantized 2×2 stride-2 transposed convolution. With
// non-overlapping output blocks it decomposes into four independent
// 1×1-style GEMMs, one per kernel tap, each scattering to one output
// parity. Its output is not ReLU-clamped, so it carries a nonzero
// zero-point when the calibrated range dips below zero.
type QConvT struct {
	Name      string
	InC, OutC int
	KPad      int // InC rounded up to 32
	W         [4][]int8
	Bias      [4][]int32
	Req       [4][]tensor.Requant
	OutZ      uint8
}

// NewQConvT quantizes a float ConvTranspose2x2: w is its layout
// (inC, outC·4) — w[ic][oc·4+tap] — bias len outC.
func NewQConvT(name string, inC, outC int, w, bias []float64, in []tensor.ActQuant, out tensor.ActQuant) (*QConvT, error) {
	if len(w) != inC*outC*4 || len(bias) != outC || len(in) != inC {
		return nil, fmt.Errorf("nn: NewQConvT(%s) shape mismatch: %d weights, %d biases, %d in-quants for %d→%d",
			name, len(w), len(bias), len(in), inC, outC)
	}
	u := &QConvT{Name: name, InC: inC, OutC: outC, KPad: padTo32(inC), OutZ: out.Zero}
	wf := make([]float64, outC*inC)
	for tap := 0; tap < 4; tap++ {
		for oc := 0; oc < outC; oc++ {
			for ic := 0; ic < inC; ic++ {
				wf[oc*inC+ic] = w[ic*outC*4+oc*4+tap] * in[ic].Scale
			}
		}
		q, scales := tensor.QuantizeWeightsPerChannel(wf, outC, inC)
		u.W[tap] = make([]int8, outC*u.KPad)
		u.Bias[tap] = make([]int32, outC)
		u.Req[tap] = make([]tensor.Requant, outC)
		for oc := 0; oc < outC; oc++ {
			copy(u.W[tap][oc*u.KPad:], q[oc*inC:(oc+1)*inC])
			var zCorr int64
			for ic := 0; ic < inC; ic++ {
				zCorr += int64(in[ic].Zero) * int64(q[oc*inC+ic])
			}
			u.Bias[tap][oc] = int32(int64(math.Round(bias[oc]/scales[oc])) - zCorr)
			u.Req[tap][oc] = tensor.NewRequant(scales[oc] / out.Scale)
		}
	}
	return u, nil
}

// Forward applies the up-convolution to padded input columns
// (QPadColumns of the (n,h,w,InC) NHWC input; npx = n·h·w), writing the
// doubled-resolution NHWC output (n,2h,2w,OutC). acc needs OutC·npx
// int32s.
func (u *QConvT) Forward(cols []uint8, n, h, w int, acc []int32, out []uint8) {
	npx := n * h * w
	ow := 2 * w
	for tap := 0; tap < 4; tap++ {
		ty, tx := tap/2, tap%2
		tensor.Int8().GemmU8S8(u.W[tap], cols, u.OutC, u.KPad, npx, acc)
		for oc := 0; oc < u.OutC; oc++ {
			b, rq := u.Bias[tap][oc], u.Req[tap][oc]
			row := acc[oc*npx : (oc+1)*npx]
			for p, v := range row {
				img, rem := p/(h*w), p%(h*w)
				y, x := rem/w, rem%w
				out[(((img*2*h+2*y+ty)*ow)+2*x+tx)*u.OutC+oc] = tensor.RequantClamp(v+b, rq, u.OutZ)
			}
		}
	}
}

// QHead is the quantized final 1×1 convolution fused with the argmax:
// it dequantizes its int32 accumulators to float logits (the classifier
// head needs no requantization — nothing consumes its quantized form)
// and emits per-pixel class labels with Predict's exact tie rule
// (strictly-greater wins, so ties resolve to the lowest class index).
type QHead struct {
	Classes, InC int
	KPad         int
	W            []int8
	Scale        []float64 // per class: the folded weight scale s_w
	ZCorr        []int32   // per class: Σ_c z_c·wq
	Bias         []float64
}

// NewQHead quantizes the final 1×1 convolution (w: (classes, inC)).
func NewQHead(inC, classes int, w, bias []float64, in []tensor.ActQuant) (*QHead, error) {
	if len(w) != classes*inC || len(bias) != classes || len(in) != inC {
		return nil, fmt.Errorf("nn: NewQHead shape mismatch: %d weights, %d biases, %d in-quants for %d→%d",
			len(w), len(bias), len(in), inC, classes)
	}
	wf := make([]float64, classes*inC)
	for cl := 0; cl < classes; cl++ {
		for c := 0; c < inC; c++ {
			wf[cl*inC+c] = w[cl*inC+c] * in[c].Scale
		}
	}
	q, scales := tensor.QuantizeWeightsPerChannel(wf, classes, inC)
	hd := &QHead{
		Classes: classes, InC: inC, KPad: padTo32(inC),
		W:     make([]int8, classes*padTo32(inC)),
		Scale: scales,
		ZCorr: make([]int32, classes),
		Bias:  append([]float64(nil), bias...),
	}
	for cl := 0; cl < classes; cl++ {
		copy(hd.W[cl*hd.KPad:], q[cl*inC:(cl+1)*inC])
		var zc int64
		for c := 0; c < inC; c++ {
			zc += int64(in[c].Zero) * int64(q[cl*inC+c])
		}
		hd.ZCorr[cl] = int32(zc)
	}
	return hd, nil
}

// Forward classifies npx padded columns (QPadColumns output) directly to
// labels. acc needs Classes·npx int32s.
func (hd *QHead) Forward(cols []uint8, npx int, acc []int32, labels []uint8) {
	tensor.Int8().GemmU8S8(hd.W, cols, hd.Classes, hd.KPad, npx, acc)
	for p := 0; p < npx; p++ {
		best, bv := 0, hd.Scale[0]*float64(acc[p]-hd.ZCorr[0])+hd.Bias[0]
		for cl := 1; cl < hd.Classes; cl++ {
			v := hd.Scale[cl]*float64(acc[cl*npx+p]-hd.ZCorr[cl]) + hd.Bias[cl]
			if v > bv {
				best, bv = cl, v
			}
		}
		labels[p] = uint8(best)
	}
}
