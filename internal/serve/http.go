package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"image/png"
	"io"
	"net/http"
	"sync"
	"time"

	"seaice/internal/core"
	"seaice/internal/raster"
	"seaice/internal/unet"
)

// maxBodyBytes bounds /classify uploads (a 2048² RGBA PNG is well under
// this).
const maxBodyBytes = 64 << 20

// Server is the HTTP front end: it owns the scheduler, cache, and stats
// and exposes the classification service over stdlib net/http.
type Server struct {
	cfg   Config
	reg   *Registry
	sched *Scheduler
	cache *Cache
	stats *Stats
	mux   *http.ServeMux
	// fanout caps how many scheduler submits one request keeps in
	// flight, so a single large scene cannot fill the queue by itself.
	fanout int
}

// NewServer validates cfg, warms every registered model, and starts the
// inference worker pool. Callers must Close the server to stop the pool.
func NewServer(cfg Config, reg *Registry) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(reg.Names()) == 0 {
		return nil, fmt.Errorf("serve: registry has no models")
	}
	if err := reg.Warm(cfg.TileSize); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		reg:   reg,
		cache: NewCache(cfg.CacheSize),
		stats: NewStats(),
		// Leave at least half the queue for other requests, but keep
		// enough submits in flight to fill micro-batches.
		fanout: max(1, min(cfg.QueueSize/2, 4*cfg.MaxBatch)),
	}
	s.sched = NewScheduler(cfg, s.stats)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/classify", s.handleClassify)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statz", s.handleStatz)
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the inference pool, draining in-flight requests.
func (s *Server) Close() { s.sched.Close() }

// Stats exposes the server's recorder (for tests and the load
// generator).
func (s *Server) Stats() Snapshot {
	hits, misses := s.cache.Counters()
	snap := s.stats.Snapshot(s.sched.QueueDepth(), s.sched.LiveWorkers(), hits, misses)
	snap.PredictedWaitMS = float64(s.sched.Model().PredictWait(s.sched.QueueDepth(), s.cfg.Workers)) /
		float64(time.Millisecond)
	return snap
}

// classifyStats is the per-request summary returned in the
// X-Seaice-Stats response header.
type classifyStats struct {
	Model      string  `json:"model"`
	Tiles      int     `json:"tiles"`
	CacheHits  int     `json:"cache_hits"`
	Water      float64 `json:"water"`
	ThinIce    float64 `json:"thin_ice"`
	ThickIce   float64 `json:"thick_ice"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	TileSize   int     `json:"tile_size"`
	FilterUsed bool    `json:"filter"`
}

// handleClassify implements POST /classify: PNG scene (or single tile)
// in, label-map PNG plus class statistics out. Unknown models 404, bad
// inputs 400, backpressure 429.
func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a PNG to /classify", http.StatusMethodNotAllowed)
		return
	}
	start := time.Now()
	modelName := r.URL.Query().Get("model")
	engine, err := s.reg.Get(modelName)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	if modelName == "" {
		modelName = s.reg.Default()
	}

	img, errStatus, err := decodeSceneBody(r, s.cfg.TileSize)
	if err != nil {
		http.Error(w, err.Error(), errStatus)
		return
	}
	deadline, err := parseDeadline(r, start)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// filtered=1 marks imagery already passed through the thin-cloud
	// filter (the coordinator filters once at scene scale before
	// sharding tiles, so worker nodes must not filter again).
	preFiltered := r.URL.Query().Get("filtered") == "1"

	pred := &servingPredictor{srv: s, engine: engine, modelName: modelName, deadline: deadline}
	var labels *raster.Labels
	if preFiltered {
		labels, err = core.InferFilteredScene(pred, img, s.cfg.TileSize)
	} else {
		labels, err = core.InferScene(pred, img, s.cfg.TileSize, s.cfg.Build)
	}
	elapsed := time.Since(start)
	if err != nil {
		s.stats.RecordRequest(elapsed, pred.tiles, true)
		var infeasible *InfeasibleError
		switch {
		case errors.As(err, &infeasible):
			s.writeInfeasible(w, infeasible)
		case errors.Is(err, ErrOverloaded):
			s.writeOverloaded(w)
		case errors.Is(err, ErrDeadlineExpired):
			http.Error(w, err.Error(), http.StatusGatewayTimeout)
		case errors.Is(err, ErrClosed):
			http.Error(w, "server shutting down", http.StatusServiceUnavailable)
		case errors.Is(err, unet.ErrNonFinite):
			// Corrupted weights or activations produced non-finite
			// logits; the result never reached the cache, and the client
			// learns the output is unusable rather than receiving a
			// laundered class map.
			http.Error(w, err.Error(), http.StatusBadRequest)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	s.stats.RecordRequest(elapsed, pred.tiles, false)

	counts := labels.Counts()
	total := float64(len(labels.Pix))
	stats := classifyStats{
		Model:      modelName,
		Tiles:      pred.tiles,
		CacheHits:  pred.cacheHits,
		Water:      float64(counts[raster.ClassWater]) / total,
		ThinIce:    float64(counts[raster.ClassThinIce]) / total,
		ThickIce:   float64(counts[raster.ClassThickIce]) / total,
		ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
		TileSize:   s.cfg.TileSize,
		FilterUsed: !preFiltered,
	}
	hdr, _ := json.Marshal(stats)

	// format=raw returns the label map as one Class byte per pixel
	// (row-major) instead of a rendered PNG — the machine-to-machine
	// format the coordinator slices per tile without a decode step.
	if r.URL.Query().Get("format") == "raw" {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Seaice-Stats", string(hdr))
		w.Header().Set("X-Seaice-Dims", fmt.Sprintf("%dx%d", labels.W, labels.H))
		w.WriteHeader(http.StatusOK)
		pix := make([]byte, len(labels.Pix))
		for i, c := range labels.Pix {
			pix[i] = byte(c)
		}
		w.Write(pix)
		return
	}

	var buf bytes.Buffer
	if err := labels.Render().EncodePNG(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "image/png")
	w.Header().Set("X-Seaice-Stats", string(hdr))
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

// overloadBody is the JSON payload of a 429 response: the client sees
// how deep the queue is against its bound, and Retry-After tells it when
// a retry is worth attempting.
type overloadBody struct {
	Error      string `json:"error"`
	QueueDepth int    `json:"queue_depth"`
	QueueSize  int    `json:"queue_size"`
	// PredictedWaitMS is the service-time model's completion estimate
	// behind the Retry-After value (0 until the model has observations).
	PredictedWaitMS float64 `json:"predicted_wait_ms,omitempty"`
}

// writeOverloaded answers a backpressure rejection: 429 with a
// model-derived Retry-After (the EWMA service-time model's estimate of
// how long the current backlog takes to drain, not a hardcoded guess)
// and a JSON body carrying the current queue depth.
func (s *Server) writeOverloaded(w http.ResponseWriter) {
	depth := s.sched.QueueDepth()
	wait := s.sched.Model().PredictWait(depth, s.cfg.Workers)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", retryAfterSeconds(wait))
	w.WriteHeader(http.StatusTooManyRequests)
	json.NewEncoder(w).Encode(overloadBody{
		Error:           "inference queue full, retry later",
		QueueDepth:      depth,
		QueueSize:       s.cfg.QueueSize,
		PredictedWaitMS: float64(wait) / float64(time.Millisecond),
	})
}

// writeInfeasible answers a predictive admission rejection: the model
// says this deadline cannot be met, so the client is told immediately —
// and told when retrying becomes worthwhile — instead of queueing work
// destined to time out.
func (s *Server) writeInfeasible(w http.ResponseWriter, e *InfeasibleError) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", retryAfterSeconds(e.RetryAfter))
	w.WriteHeader(http.StatusTooManyRequests)
	json.NewEncoder(w).Encode(overloadBody{
		Error:           e.Error(),
		QueueDepth:      s.sched.QueueDepth(),
		QueueSize:       s.cfg.QueueSize,
		PredictedWaitMS: float64(e.Predicted) / float64(time.Millisecond),
	})
}

// maxSceneDim caps accepted scene dimensions; the paper's largest
// scenes are 2048². Checked before the full PNG decode so a tiny
// crafted header cannot force a huge allocation.
const maxSceneDim = 8192

// decodeSceneBody reads and validates the uploaded PNG.
func decodeSceneBody(r *http.Request, tileSize int) (*raster.RGB, int, error) {
	body := http.MaxBytesReader(nil, r.Body, maxBodyBytes)
	defer body.Close()
	raw, err := io.ReadAll(body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("serve: request body exceeds %d bytes", tooLarge.Limit)
		}
		return nil, http.StatusBadRequest, fmt.Errorf("serve: read body: %w", err)
	}
	cfg, err := png.DecodeConfig(bytes.NewReader(raw))
	if err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("serve: decode PNG: %w", err)
	}
	if cfg.Width < 1 || cfg.Height < 1 || cfg.Width > maxSceneDim || cfg.Height > maxSceneDim {
		return nil, http.StatusBadRequest,
			fmt.Errorf("serve: image %dx%d outside supported range (max %d per side)", cfg.Width, cfg.Height, maxSceneDim)
	}
	if cfg.Width%tileSize != 0 || cfg.Height%tileSize != 0 {
		return nil, http.StatusBadRequest,
			fmt.Errorf("serve: image %dx%d does not divide into %d×%d tiles", cfg.Width, cfg.Height, tileSize, tileSize)
	}
	decoded, err := png.Decode(bytes.NewReader(raw))
	if err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("serve: decode PNG: %w", err)
	}
	return raster.FromImage(decoded), 0, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// The worker pool self-heals, so health degrades only if restarts
	// outpace respawns and the pool is actually empty right now — and
	// status-code probes (k8s, load balancers) must see that too.
	status := "ok"
	live := s.sched.LiveWorkers()
	w.Header().Set("Content-Type", "application/json")
	if live == 0 {
		status = "degraded"
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(map[string]any{
		"status":          status,
		"models":          s.reg.Names(),
		"default":         s.reg.Default(),
		"workers":         s.cfg.Workers,
		"live_workers":    live,
		"worker_restarts": s.stats.WorkerRestarts(),
	})
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}

// servingPredictor is the core.TilePredictor the HTTP path plugs into
// the shared inference workflow: cached tiles are answered from the LRU,
// misses fan out as concurrent scheduler submits so the micro-batcher
// can coalesce them, and fresh results are written back to the cache.
type servingPredictor struct {
	srv       *Server
	engine    unet.Engine
	modelName string
	deadline  time.Time // request deadline, propagated into every submit
	tiles     int
	cacheHits int
}

// PredictTiles implements core.TilePredictor.
func (p *servingPredictor) PredictTiles(tiles []*raster.RGB) ([]*raster.Labels, error) {
	p.tiles += len(tiles)
	out := make([]*raster.Labels, len(tiles))
	cached := p.srv.cache.Enabled()
	var keys []CacheKey
	var missed []int
	if cached {
		keys = make([]CacheKey, len(tiles))
		for i, t := range tiles {
			keys[i] = TileKey(p.modelName, t)
			if labels, ok := p.srv.cache.Get(keys[i]); ok {
				out[i] = labels
				p.cacheHits++
			} else {
				missed = append(missed, i)
			}
		}
	} else {
		missed = make([]int, len(tiles))
		for i := range tiles {
			missed[i] = i
		}
	}
	if len(missed) == 0 {
		return out, nil
	}

	// Fan the misses out concurrently so the scheduler can coalesce
	// them into micro-batches — but throttled, so one large scene
	// cannot flood the bounded queue and reject itself: the queue must
	// stay available to signal true cross-request overload.
	limit := p.srv.fanout
	if limit > len(missed) {
		limit = len(missed)
	}
	sem := make(chan struct{}, limit)
	errs := make([]error, len(missed))
	var wg sync.WaitGroup
	for mi, i := range missed {
		wg.Add(1)
		sem <- struct{}{}
		go func(mi, i int) {
			defer wg.Done()
			defer func() { <-sem }()
			labels, err := p.srv.sched.SubmitDeadline(p.engine, tiles[i], p.deadline)
			if err != nil {
				errs[mi] = err
				return
			}
			if cached {
				p.srv.cache.Put(keys[i], labels)
			}
			out[i] = labels
		}(mi, i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
