// Package serve turns trained U-Net checkpoints into an online sea-ice
// classification service — the serving layer the paper's offline
// workflow (Fig 9) stops short of. It provides:
//
//   - a model Registry that loads, validates, and warms checkpoints;
//   - a Scheduler that coalesces concurrent tile-classification requests
//     into micro-batches executed by a fixed pool of inference workers,
//     each owning a pre-allocated unet.Session (amortizing conv cost the
//     same way internal/train batches do);
//   - a content-hash LRU Cache over per-tile predictions;
//   - bounded queues with backpressure, so overload surfaces as
//     ErrOverloaded (HTTP 429) instead of collapse;
//   - self-healing workers: a panic escaping a batch (injected via
//     internal/chaos or real) restarts only that worker and requeues its
//     batch — queued requests are never dropped, and requests fail only
//     as 429 past the existing bound; /healthz exposes live_workers and
//     worker_restarts;
//   - an HTTP front end (Server) with /classify, /healthz, and /statz.
//
// cmd/seaice-serve is the binary wrapping this package; the tile →
// filter → classify → stitch pipeline itself is shared with the CLI via
// internal/core's TilePredictor seam.
//
// The stack is precision-agnostic: it serves any unet.Engine, so one
// registry can mix the f64 reference numerics, the f32 bandwidth- and
// multiply-reduced hot path, and the int8 post-training-quantized
// engine (cmd/seaice-serve selects per model with -precision; int8
// needs a quantized checkpoint from seaice-train -quantize). Unknown
// precision names are rejected with the typed *UnknownPrecisionError.
//
// Parallelism/determinism guarantees: each inference worker owns its
// predictor, so requests never share mutable model state, and a tile's
// prediction is a pure function of its pixels, the checkpoint, and the
// serving precision — micro-batch composition, queue order, worker
// count, and cache hits/misses change latency, never a single output
// pixel. The int8 engine is additionally bit-deterministic across
// GEMM backends and hosts (fixed-point requantization; see
// internal/tensor's quantization docs).
package serve

import (
	"fmt"
	"runtime"
	"time"

	"seaice/internal/chaos"
	"seaice/internal/dataset"
)

// Config sizes the service.
type Config struct {
	// TileSize is the served tile edge; /classify inputs must divide
	// evenly into TileSize×TileSize tiles.
	TileSize int
	// MaxBatch caps tiles per forward pass.
	MaxBatch int
	// BatchWait is how long a batch leader waits for followers before
	// the batch is dispatched partially filled.
	BatchWait time.Duration
	// Workers is the number of inference workers (each owns a session
	// per model).
	Workers int
	// QueueSize bounds the request queue; a full queue rejects with
	// ErrOverloaded.
	QueueSize int
	// CacheSize is the tile-result LRU capacity in entries; 0 disables
	// caching.
	CacheSize int
	// Build supplies the thin-cloud/shadow filter configuration of the
	// shared inference path.
	Build dataset.BuildConfig
	// Chaos injects deterministic worker panics (by batch-pickup
	// ordinal) to exercise the self-healing worker pool; nil disables
	// injection. Real panics escaping a session take the identical
	// restart path.
	Chaos *chaos.Injector
}

// DefaultConfig returns production-shaped defaults for the host.
func DefaultConfig() Config {
	return Config{
		TileSize:  32,
		MaxBatch:  16,
		BatchWait: 2 * time.Millisecond,
		Workers:   runtime.GOMAXPROCS(0),
		QueueSize: 256,
		CacheSize: 4096,
		Build:     dataset.DefaultBuild(),
	}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.TileSize < 1 {
		return fmt.Errorf("serve: tile size must be ≥1, got %d", c.TileSize)
	}
	if c.MaxBatch < 1 {
		return fmt.Errorf("serve: max batch must be ≥1, got %d", c.MaxBatch)
	}
	if c.BatchWait < 0 {
		return fmt.Errorf("serve: negative batch wait %v", c.BatchWait)
	}
	if c.Workers < 1 {
		return fmt.Errorf("serve: workers must be ≥1, got %d", c.Workers)
	}
	if c.QueueSize < 1 {
		return fmt.Errorf("serve: queue size must be ≥1, got %d", c.QueueSize)
	}
	if c.CacheSize < 0 {
		return fmt.Errorf("serve: negative cache size %d", c.CacheSize)
	}
	return nil
}
