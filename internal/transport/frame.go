// Package transport is the real multi-node network layer under the ring
// collectives: a length-prefixed TCP message protocol (framed read/write
// with deadlines, dial retry with backoff, peer identification) plus a
// rendezvous/handshake that assembles p processes into the same
// unidirectional ring the in-process implementation uses. The collectives
// (AllReduceMean, Broadcast) run the exact chunk schedule of
// ring.AllReduceMeanChunked over the sockets — same segment bounds, same
// accumulation order, same mean scaling — so a multi-process run is
// bit-identical to the in-process one, and the two transports are
// interchangeable behind ring.Collective.
//
// Failure mapping: any connection error — a peer crash, an injected
// partition, a dropped frame timing out a read — surfaces as
// *ring.RankError naming the neighbor, exactly the signal the ddp
// trainer's recovery loop already handles. The caller rewinds its step
// state, calls Reestablish (tear down, re-dial/re-accept, agree on the
// minimum outstanding step), and retries; the commit barrier guarantees
// no rank's committed history diverges by more than one step, so a
// boundary snapshot pair is always enough to roll back.
//
// Wire format (all integers big-endian):
//
//	frame  := [length:4][tag:1][payload:length-5][crc32c:4]
//	hello  := [magic:4][rank:4][world:4][cidLen:2][clusterID]
//	sync   := [step:4]            (Establish step agreement, ring min)
//	commit := [step:4]            (end-of-step barrier token)
//	data   := [step:4][seq:4][scalar bytes, little-endian IEEE-754]
//
// length counts the tag byte and the 4-byte CRC32C (Castagnoli) trailer,
// computed over tag+payload and verified by ReadFrame before the frame
// is surfaced — a flipped bit anywhere in flight fails the check and is
// reported as an error, never as silently corrupt data; the caller maps
// it to *ring.RankError and the step retries. Frames above MaxFrame are
// rejected before allocation, so a corrupt or malicious length prefix
// cannot balloon memory (fuzzed in FuzzReadFrame).
package transport

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// castagnoli is the CRC32C polynomial table shared by every frame
// checksum (and by the checksummed checkpoint formats built on top).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// MaxFrame is the maximum frame length (tag + payload) the decoder
// accepts: 1 MiB + 16 bytes of header slack, comfortably above the
// largest collective hop (a DefaultChunk segment is ≤128 KiB of float64)
// while keeping a corrupt length prefix from allocating gigabytes.
const MaxFrame = 1<<20 + 16

// Frame tags.
const (
	tagHello  = 0x01 // rendezvous handshake: identity + cluster check
	tagSync   = 0x02 // Establish step agreement (ring min-reduction)
	tagCommit = 0x03 // end-of-step commit barrier token
	tagData   = 0x04 // collective payload chunk
)

// helloMagic identifies the protocol ("SeaIce Ring 1"); a peer speaking
// anything else is rejected at handshake.
var helloMagic = [4]byte{'S', 'I', 'R', '1'}

// Frame is one decoded protocol message.
type Frame struct {
	Tag     byte
	Payload []byte
}

// crcTrailer is the size of the CRC32C integrity trailer every frame
// carries after its payload.
const crcTrailer = 4

// WriteFrame encodes one frame to w: 4-byte length prefix, tag, payload,
// and a CRC32C trailer over tag+payload.
func WriteFrame(w io.Writer, tag byte, payload []byte) error {
	n := 1 + len(payload) + crcTrailer
	if n > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds MaxFrame %d", n, MaxFrame)
	}
	hdr := [5]byte{}
	binary.BigEndian.PutUint32(hdr[:4], uint32(n))
	hdr[4] = tag
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	crc := crc32.Checksum(hdr[4:5], castagnoli)
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
		crc = crc32.Update(crc, castagnoli, payload)
	}
	var trailer [crcTrailer]byte
	binary.BigEndian.PutUint32(trailer[:], crc)
	_, err := w.Write(trailer[:])
	return err
}

// encodeFrame renders one complete frame — length prefix, tag, payload,
// CRC32C trailer — into a fresh buffer. The bitflip injector uses it to
// corrupt an already-checksummed frame the way the wire would.
func encodeFrame(tag byte, payload []byte) []byte {
	n := 1 + len(payload) + crcTrailer
	buf := make([]byte, 4+n)
	binary.BigEndian.PutUint32(buf[:4], uint32(n))
	buf[4] = tag
	copy(buf[5:], payload)
	crc := crc32.Checksum(buf[4:4+n-crcTrailer], castagnoli)
	binary.BigEndian.PutUint32(buf[4+n-crcTrailer:], crc)
	return buf
}

// ReadFrame decodes one frame from r, rejecting undersized or oversized
// lengths before any payload allocation and verifying the CRC32C
// trailer before surfacing the payload — corruption anywhere in the
// frame body comes back as an error, never as silently wrong bytes.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1+crcTrailer {
		return Frame{}, fmt.Errorf("transport: frame of %d bytes lacks tag+CRC trailer", n)
	}
	if n > MaxFrame {
		return Frame{}, fmt.Errorf("transport: frame of %d bytes exceeds MaxFrame %d", n, MaxFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Frame{}, err
	}
	body := buf[:n-crcTrailer]
	want := binary.BigEndian.Uint32(buf[n-crcTrailer:])
	if got := crc32.Checksum(body, castagnoli); got != want {
		return Frame{}, fmt.Errorf("transport: frame CRC mismatch (got %08x, want %08x): corrupt frame", got, want)
	}
	return Frame{Tag: body[0], Payload: body[1:]}, nil
}

// hello is the decoded handshake payload.
type hello struct {
	Rank    int
	World   int
	Cluster string
}

// encodeHello builds a hello payload for the given identity.
func encodeHello(rank, world int, cluster string) []byte {
	if len(cluster) > 1<<15 {
		cluster = cluster[:1<<15]
	}
	buf := make([]byte, 4+4+4+2+len(cluster))
	copy(buf[:4], helloMagic[:])
	binary.BigEndian.PutUint32(buf[4:8], uint32(rank))
	binary.BigEndian.PutUint32(buf[8:12], uint32(world))
	binary.BigEndian.PutUint16(buf[12:14], uint16(len(cluster)))
	copy(buf[14:], cluster)
	return buf
}

// decodeHello parses and validates a hello payload.
func decodeHello(p []byte) (hello, error) {
	if len(p) < 14 {
		return hello{}, fmt.Errorf("transport: hello of %d bytes", len(p))
	}
	if [4]byte(p[:4]) != helloMagic {
		return hello{}, fmt.Errorf("transport: bad hello magic %q", p[:4])
	}
	cidLen := int(binary.BigEndian.Uint16(p[12:14]))
	if len(p) != 14+cidLen {
		return hello{}, fmt.Errorf("transport: hello cluster-id length %d vs %d payload bytes", cidLen, len(p)-14)
	}
	return hello{
		Rank:    int(binary.BigEndian.Uint32(p[4:8])),
		World:   int(binary.BigEndian.Uint32(p[8:12])),
		Cluster: string(p[14:]),
	}, nil
}

// encodeStep builds a sync/commit payload.
func encodeStep(step int) []byte {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], uint32(step))
	return buf[:]
}

// decodeStep parses a sync/commit payload.
func decodeStep(p []byte) (int, error) {
	if len(p) != 4 {
		return 0, fmt.Errorf("transport: step payload of %d bytes", len(p))
	}
	return int(binary.BigEndian.Uint32(p)), nil
}
