// Package pipeline is the streaming, sharded scene-to-batch pipeline —
// the paper's actual workflow shape. Where the batch path
// (dataset.Build) filters, labels, and tiles every scene before the
// first training step can run, this package overlaps the stages the
// paper pipelines across nodes:
//
//	sharded scene catalog ──▶ filter+label workers ──▶ tiling stage ──▶ batch assembler ──▶ train.FitStream
//	      (Source)             (Config.Workers,          (bounded            (double-buffered,
//	                            pool.Shared kernels)      prefetch)           scene-priority)
//
// A Stream pulls scenes from a Source in priority order (scenes feeding
// the earliest training batches first), runs the cloud filter and
// auto-labeler concurrently on Config.Workers stage workers (whose
// per-pixel kernels fan out on pool.Shared()), cuts the products into
// tiles behind bounded prefetch channels, and hands mini-batches to the
// trainer through a double-buffered assembler — so train.FitStream
// consumes epoch batches while later shards are still being labeled.
// Shards are the unit of cataloging, checkpointing (resume skips shards
// already on disk), and progress reporting.
//
// Determinism guarantee: every per-scene product depends only on the
// scene and the build configuration — never on shard count, worker
// count, or completion order — and all split/subsample/batch index math
// is shared with the legacy path (dataset.SplitIndices,
// dataset.SubsampleIndices, train.BatchIndices). The stream therefore
// emits tiles, labels, and the train/test split byte-identical to
// dataset.Build at any parallelism, which the parity tests assert; the
// LegacyBuilder keeps the batch path alive behind the same Builder
// interface for exactly that comparison.
package pipeline

import (
	"fmt"
	"sort"
	"sync"

	"seaice/internal/catalog"
	"seaice/internal/chaos"
	"seaice/internal/dataset"
	"seaice/internal/raster"
	"seaice/internal/scene"
	"seaice/internal/train"
)

// Source is a sharded scene catalog: anything that can name its scene
// count and render scene i on demand. Implementations must be safe for
// concurrent SceneAt calls and deterministic — SceneAt(i) yields
// identical pixels every time, so resumed and re-run pipelines agree.
type Source interface {
	// Len is the number of scenes in the campaign.
	Len() int
	// Size is the scene dimensions (all scenes share them).
	Size() (w, h int)
	// SceneAt renders or fetches scene i.
	SceneAt(i int) (*scene.Scene, error)
	// Fingerprint identifies the source's content; checkpoints recorded
	// under a different fingerprint are ignored on resume.
	Fingerprint() string
}

// CollectionSource streams a synthetic campaign, generating each scene
// on demand via scene.GenerateAt — no scene is materialized before its
// shard is pulled.
type CollectionSource struct {
	Cfg scene.CollectionConfig
}

// Len implements Source.
func (s CollectionSource) Len() int { return s.Cfg.Scenes }

// Size implements Source.
func (s CollectionSource) Size() (w, h int) { return s.Cfg.W, s.Cfg.H }

// SceneAt implements Source.
func (s CollectionSource) SceneAt(i int) (*scene.Scene, error) {
	return scene.GenerateAt(s.Cfg, i)
}

// Fingerprint implements Source.
func (s CollectionSource) Fingerprint() string {
	return fmt.Sprintf("collection/%+v", s.Cfg)
}

// SliceSource adapts pre-materialized scenes (the legacy callers' shape)
// to the streaming interface. All scenes must share the dimensions of
// the first; the stream rejects mismatched scenes when they reach the
// label stage (global tile indexing depends on a uniform grid).
type SliceSource []*scene.Scene

// Len implements Source.
func (s SliceSource) Len() int { return len(s) }

// Size implements Source.
func (s SliceSource) Size() (w, h int) {
	if len(s) == 0 {
		return 0, 0
	}
	return s[0].Image.W, s[0].Image.H
}

// SceneAt implements Source.
func (s SliceSource) SceneAt(i int) (*scene.Scene, error) { return s[i], nil }

// Fingerprint implements Source. Scenes are deterministic in their
// configs, so the config list identifies the content.
func (s SliceSource) Fingerprint() string {
	h := "slice"
	for _, sc := range s {
		h += fmt.Sprintf("/%+v", sc.Config)
	}
	return h
}

// CatalogSource streams the result of a catalog query: each shard's
// scenes are fetched ("downloaded") on demand by the stage workers,
// never materialized up front. Fetches are deterministic in the
// descriptor seeds, so resumed runs see identical pixels.
type CatalogSource struct {
	Cat    *catalog.Catalog
	Scenes []catalog.Descriptor
}

// Len implements Source.
func (s CatalogSource) Len() int { return len(s.Scenes) }

// Size implements Source.
func (s CatalogSource) Size() (w, h int) {
	return s.Cat.SceneSize(), s.Cat.SceneSize()
}

// SceneAt implements Source.
func (s CatalogSource) SceneAt(i int) (*scene.Scene, error) {
	return s.Cat.Fetch(s.Scenes[i])
}

// Fingerprint implements Source. Descriptor IDs and seeds identify the
// fetched content.
func (s CatalogSource) Fingerprint() string {
	h := "catalog"
	for _, d := range s.Scenes {
		h += fmt.Sprintf("/%s:%d", d.ID, d.Seed)
	}
	return h
}

// TrainPlan fixes the deterministic train/test plumbing the assembler
// needs ahead of the data: the split, the optional stratified subsamples,
// the dataset views, and the batch schedule. Tile counts are known from
// the source dimensions alone, so the whole plan — including which scenes
// feed which training batches — is computed before a single scene is
// labeled; that is what lets the scheduler prioritize the scenes the
// first batches need.
type TrainPlan struct {
	// TrainFrac and SplitSeed drive dataset.SplitIndices (paper: 0.8).
	TrainFrac float64
	SplitSeed uint64
	// TrainTiles caps the training subset via dataset.SubsampleIndices
	// with TrainSeed; 0 keeps every train tile. TestTiles/TestSeed do
	// the same for the held-out subset.
	TrainTiles int
	TrainSeed  uint64
	TestTiles  int
	TestSeed   uint64
	// Image and Labels select the dataset views fed to the model.
	Image  dataset.ImageKind
	Labels dataset.LabelKind
	// BatchSize and BatchSeed drive train.BatchIndices; the epoch count
	// is the trainer's (train.Config.Epochs) — each Epoch(e) call
	// derives that epoch's schedule independently.
	BatchSize int
	BatchSeed uint64
}

// Event is one pipeline progress notification.
type Event struct {
	// Kind is "resume" (shard restored from checkpoint), "scene" (one
	// scene labeled and tiled), "retry" (a stage failure being
	// re-attempted), "quarantine" (a poisoned scene dropped from the
	// products), or "shard" (one shard fully done).
	Kind string
	// Shard/Shards locate the event: Shard is the shard the scene or
	// completion belongs to.
	Shard, Shards int
	// ScenesDone/Scenes is the global completion count.
	ScenesDone, Scenes int
}

// Config controls a Stream.
type Config struct {
	// Build is the shared filter/label/tile configuration.
	Build dataset.BuildConfig
	// Shards partitions the catalog; <= 0 derives one shard per two
	// stage workers (at least one). Shards are the checkpoint and
	// progress unit.
	Shards int
	// Workers is the number of concurrent filter+label stage workers;
	// <= 0 uses the build config's worker count, and failing that
	// GOMAXPROCS. Per-pixel kernels inside each worker additionally fan
	// out on pool.Shared().
	Workers int
	// Prefetch bounds the channels between the label and tiling stages
	// (items in flight); <= 0 means 2.
	Prefetch int
	// CheckpointDir, when non-empty, persists each completed shard's
	// tiles and resumes from matching shards on the next run.
	CheckpointDir string
	// Retries is the per-scene retry budget of the label/tile stages: a
	// stage worker that panics or errors on a scene (an injected chaos
	// fault, a flaky catalog fetch) re-attempts it up to Retries times
	// before the failure becomes fatal. Retried scenes produce identical
	// products (every stage is a pure function of scene + config), so
	// retry changes wall clock, never output. 0 disables retry.
	Retries int
	// Chaos injects deterministic stage-worker faults (panics, corrupted
	// scene bytes, torn checkpoint writes at exact scene indices) for the
	// fault-tolerance tests and the -chaos flags; nil disables injection.
	Chaos *chaos.Injector
	// Quarantine, when set, drops scenes that stay poisoned (failed
	// integrity validation or a panicking stage) through the whole retry
	// budget into the stream's quarantine report (Quarantined) instead of
	// failing the run. Quarantined scenes contribute no tiles; plan-based
	// consumers that need one of their tiles report an error naming the
	// scene. Off by default: a silently shrinking dataset is the wrong
	// default for training parity.
	Quarantine bool
	// Plan enables TrainBatches/TrainSamples/TestTiles and scene
	// prioritization. Without it scenes are processed in index order.
	Plan *TrainPlan
	// Progress, if non-nil, receives Events. Calls are serialized.
	Progress func(Event)
}

// Builder turns a scene source into a tile dataset. The streaming
// pipeline and the legacy batch path implement it identically (byte for
// byte), so callers and parity tests can swap them freely.
type Builder interface {
	BuildSet(src Source) (*dataset.Set, error)
}

// LegacyBuilder is the pre-pipeline path behind the Builder interface:
// materialize every scene, then run the batch dataset.Build.
type LegacyBuilder struct {
	Build dataset.BuildConfig
}

// BuildSet implements Builder.
func (b LegacyBuilder) BuildSet(src Source) (*dataset.Set, error) {
	scenes := make([]*scene.Scene, src.Len())
	for i := range scenes {
		sc, err := src.SceneAt(i)
		if err != nil {
			return nil, fmt.Errorf("pipeline: scene %d: %w", i, err)
		}
		scenes[i] = sc
	}
	return dataset.Build(scenes, b.Build)
}

// StreamBuilder runs the streaming pipeline to completion behind the
// Builder interface.
type StreamBuilder struct {
	Config Config
}

// BuildSet implements Builder.
func (b StreamBuilder) BuildSet(src Source) (*dataset.Set, error) {
	st, err := New(src, b.Config)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	return st.Set()
}

// Stream is one pipeline run over a source. Consumers (Set, TrainBatches,
// TrainSamples, TestTiles) may be used concurrently; the stage goroutines
// start on first consumption.
type Stream struct {
	src Source
	cfg Config

	n             int // scenes
	w, h          int
	tilesPerScene int
	shards        [][]int // scene indices per shard (index order)
	order         []int   // global scene processing order (priority)

	plan *planState // nil without cfg.Plan

	start  sync.Once
	quit   chan struct{} // closed by Close or on failure
	emitMu sync.Mutex    // serializes Progress callbacks

	mu          sync.Mutex
	cond        *sync.Cond
	tiles       [][]dataset.Tile // per-scene, nil until ready
	doneCount   int
	shardLeft   []int // scenes outstanding per shard
	cpPending   int   // shard checkpoint writes in flight
	closed      bool
	err         error
	cpErr       error // last non-fatal checkpoint I/O error
	quarantined []QuarantineRecord
	qSet        map[int]bool // scene index -> quarantined
}

// planState is the precomputed index plumbing of a TrainPlan.
type planState struct {
	trainTileIdx []int   // global tile index per training sample
	testTileIdx  []int   // global tile index per held-out sample
	batchScenes  [][]int // epoch-0 batch → distinct scenes it needs
	priority     []int   // per-scene: first epoch-0 batch needing it
}

// New validates the configuration and lays out shards and the scene
// schedule; stages start on first consumption.
func New(src Source, cfg Config) (*Stream, error) {
	n := src.Len()
	if n <= 0 {
		return nil, fmt.Errorf("pipeline: source has no scenes")
	}
	w, h := src.Size()
	if cfg.Build.TileSize <= 0 {
		return nil, fmt.Errorf("pipeline: tile size %d", cfg.Build.TileSize)
	}
	grid, err := raster.GridFor(w, h, cfg.Build.TileSize, cfg.Build.TileSize)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	s := &Stream{
		src:           src,
		cfg:           cfg,
		n:             n,
		w:             w,
		h:             h,
		tilesPerScene: grid.Cols * grid.Rows,
		quit:          make(chan struct{}),
		tiles:         make([][]dataset.Tile, n),
	}
	s.cond = sync.NewCond(&s.mu)

	if s.cfg.Workers <= 0 {
		s.cfg.Workers = cfg.Build.Workers
	}
	if s.cfg.Workers <= 0 {
		s.cfg.Workers = defaultWorkers()
	}
	if s.cfg.Prefetch <= 0 {
		s.cfg.Prefetch = 2
	}
	if s.cfg.Shards <= 0 {
		s.cfg.Shards = (s.cfg.Workers + 1) / 2
	}
	if s.cfg.Shards > n {
		s.cfg.Shards = n
	}

	// Contiguous shard layout: shard k covers scenes [k*per, …).
	per := (n + s.cfg.Shards - 1) / s.cfg.Shards
	s.shardLeft = make([]int, s.cfg.Shards)
	for k := 0; k < s.cfg.Shards; k++ {
		lo, hi := k*per, (k+1)*per
		if hi > n {
			hi = n
		}
		shard := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			shard = append(shard, i)
		}
		s.shards = append(s.shards, shard)
		s.shardLeft[k] = len(shard)
	}

	if cfg.Plan != nil {
		if s.plan, err = s.computePlan(*cfg.Plan); err != nil {
			return nil, err
		}
	}
	s.order = s.schedule()
	return s, nil
}

// computePlan resolves a TrainPlan into concrete tile indices and the
// scene priorities of epoch 0 — pure index math shared with the legacy
// path, evaluated before any scene exists.
func (s *Stream) computePlan(p TrainPlan) (*planState, error) {
	if p.BatchSize <= 0 {
		return nil, fmt.Errorf("pipeline: plan batch size %d", p.BatchSize)
	}
	total := s.n * s.tilesPerScene
	trainIdx, testIdx, err := dataset.SplitIndices(total, p.TrainFrac, p.SplitSeed)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	ps := &planState{}
	if p.TrainTiles > 0 {
		for _, j := range dataset.SubsampleIndices(len(trainIdx), p.TrainTiles, p.TrainSeed) {
			ps.trainTileIdx = append(ps.trainTileIdx, trainIdx[j])
		}
	} else {
		ps.trainTileIdx = trainIdx
	}
	if p.TestTiles > 0 {
		for _, j := range dataset.SubsampleIndices(len(testIdx), p.TestTiles, p.TestSeed) {
			ps.testTileIdx = append(ps.testTileIdx, testIdx[j])
		}
	} else {
		ps.testTileIdx = testIdx
	}
	if len(ps.trainTileIdx) == 0 {
		return nil, fmt.Errorf("pipeline: plan selects no training tiles")
	}

	// Scene priority: the first epoch-0 batch that touches the scene.
	// Scenes no training batch needs sort after all training scenes.
	ps.priority = make([]int, s.n)
	unneeded := 1 << 30
	for i := range ps.priority {
		ps.priority[i] = unneeded
	}
	batches := train.BatchIndices(len(ps.trainTileIdx), p.BatchSize, p.BatchSeed, 0)
	ps.batchScenes = make([][]int, len(batches))
	for b, idxs := range batches {
		seen := map[int]bool{}
		for _, sampleIdx := range idxs {
			sc := ps.trainTileIdx[sampleIdx] / s.tilesPerScene
			if !seen[sc] {
				seen[sc] = true
				ps.batchScenes[b] = append(ps.batchScenes[b], sc)
			}
			if b < ps.priority[sc] {
				ps.priority[sc] = b
			}
		}
		sort.Ints(ps.batchScenes[b])
	}
	return ps, nil
}

// schedule orders scene processing: with a plan, by the first training
// batch each scene feeds (ties and test-only scenes by index); without
// one, by index. The order affects wall-clock overlap only — outputs are
// order-independent.
func (s *Stream) schedule() []int {
	order := make([]int, s.n)
	for i := range order {
		order[i] = i
	}
	if s.plan == nil {
		return order
	}
	sort.SliceStable(order, func(a, b int) bool {
		return s.plan.priority[order[a]] < s.plan.priority[order[b]]
	})
	return order
}

// Close releases the stage goroutines. It is safe to call at any time;
// consumers blocked on the stream return ErrClosed-wrapped errors.
func (s *Stream) Close() {
	s.fail(fmt.Errorf("pipeline: stream closed"))
}

// fail records the first error, wakes every waiter, and stops the
// stages by closing quit. Waiters report the error only for data that
// never arrived, so closing a completed stream keeps its results usable.
func (s *Stream) fail(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.err = err
		close(s.quit)
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// emit serializes Progress callbacks (concurrent tiling workers may
// deliver simultaneously; the dedicated mutex keeps the documented
// one-at-a-time contract without holding the assembler lock).
func (s *Stream) emit(ev Event) {
	if s.cfg.Progress == nil {
		return
	}
	ev.Shards = s.cfg.Shards
	ev.Scenes = s.n
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	s.cfg.Progress(ev)
}

func defaultWorkers() int {
	// The stage pool mirrors the kernel pool: one knob (pool.Shared)
	// sizes the engine, and the stage fan-out matches it.
	return sharedWorkers()
}
