package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"seaice/internal/raster"
	"seaice/internal/tensor"
	"seaice/internal/unet"
)

// ErrOverloaded reports that the request queue is full; HTTP callers
// translate it to 429 so overload degrades gracefully instead of piling
// unbounded work onto the inference pool.
var ErrOverloaded = errors.New("serve: queue full")

// ErrClosed reports a submit against a scheduler that has shut down.
var ErrClosed = errors.New("serve: scheduler closed")

// request is one tile awaiting classification.
type request[S tensor.Scalar] struct {
	model *unet.Model[S]
	tile  *raster.RGB
	out   chan result
}

type result struct {
	labels *raster.Labels
	err    error
}

// Scheduler coalesces concurrent tile requests into forward-pass
// micro-batches. A fixed pool of workers drains a bounded queue; each
// worker owns one inference session per model (pre-allocated tensor
// buffers that are reused across batches). The first request a worker
// picks up becomes the batch leader and waits up to BatchWait for
// followers with the same model and tile size, up to MaxBatch tiles.
//
// Workers are self-healing: a panic escaping a batch (an injected chaos
// fault or a real session bug) kills only that worker, which is
// restarted immediately; the requests of the crashed batch are pushed
// back onto the bounded queue rather than dropped, and only if the
// queue cannot absorb them do they fail with ErrOverloaded — overload
// semantics (HTTP 429) stay exactly the existing bound. Restart counts
// and the live-worker gauge surface through Stats and /healthz.
type Scheduler[S tensor.Scalar] struct {
	cfg   Config
	queue chan *request[S]
	done  chan struct{}

	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup // Submit calls between enqueue and response
	workers  sync.WaitGroup

	live atomic.Int64 // currently running workers (health gauge)

	stats *Stats
}

// NewScheduler starts the worker pool. stats may be nil.
func NewScheduler[S tensor.Scalar](cfg Config, stats *Stats) *Scheduler[S] {
	s := &Scheduler[S]{
		cfg:   cfg,
		queue: make(chan *request[S], cfg.QueueSize),
		done:  make(chan struct{}),
		stats: stats,
	}
	for w := 0; w < cfg.Workers; w++ {
		s.spawn()
	}
	return s
}

// spawn starts one worker goroutine and accounts it live.
func (s *Scheduler[S]) spawn() {
	s.workers.Add(1)
	s.live.Add(1)
	go s.worker()
}

// QueueDepth reports the number of queued (not yet running) requests.
func (s *Scheduler[S]) QueueDepth() int { return len(s.queue) }

// LiveWorkers reports the number of currently running workers — the
// health gauge behind /healthz (a worker mid-restart dips the count
// momentarily; it recovers without intervention).
func (s *Scheduler[S]) LiveWorkers() int { return int(s.live.Load()) }

// Submit enqueues one tile and blocks until its prediction is ready.
// A full queue returns ErrOverloaded immediately.
func (s *Scheduler[S]) Submit(m *unet.Model[S], tile *raster.RGB) (*raster.Labels, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	defer s.inflight.Done()

	req := &request[S]{model: m, tile: tile, out: make(chan result, 1)}
	select {
	case s.queue <- req:
	default:
		if s.stats != nil {
			s.stats.RecordReject()
		}
		return nil, ErrOverloaded
	}
	res := <-req.out
	return res.labels, res.err
}

// Close drains in-flight work and stops the workers. Safe to call more
// than once.
func (s *Scheduler[S]) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.workers.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()

	// No new submits can start; wait for every enqueued request to be
	// answered (workers are still running), then stop the pool.
	s.inflight.Wait()
	close(s.done)
	s.workers.Wait()
}

// worker drains the queue, forming micro-batches. A panic escaping a
// batch is contained here: the crashed batch's requests (and any
// pending next leader) are requeued, the worker is respawned with a
// fresh session map, and the panic never reaches the process.
func (s *Scheduler[S]) worker() {
	defer s.workers.Done()
	defer s.live.Add(-1)

	var cur []*request[S]   // batch being executed, requeued on panic
	var pending *request[S] // first request of the next batch after a mismatch
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if s.stats != nil {
			s.stats.RecordWorkerRestart()
		}
		requeue := cur
		if pending != nil {
			requeue = append(requeue, pending)
		}
		for _, req := range requeue {
			select {
			case s.queue <- req:
				// Back onto the bounded queue; a healthy worker (or this
				// worker's replacement) will pick it up.
			default:
				// Queue full: the request fails exactly as it would have
				// at submit time — backpressure, not loss.
				req.out <- result{err: ErrOverloaded}
			}
		}
		// The replacement inherits nothing: sessions are rebuilt lazily,
		// so a corrupted buffer cannot outlive the crash.
		s.spawn()
	}()

	sessions := make(map[*unet.Model[S]]*unet.Session[S])
	for {
		var leader *request[S]
		if pending != nil {
			leader, pending = pending, nil
		} else {
			select {
			case <-s.done:
				return
			case leader = <-s.queue:
			}
		}
		batch := []*request[S]{leader}
		if s.cfg.MaxBatch > 1 {
			batch, pending = s.collect(batch)
		}
		cur = batch
		s.run(sessions, batch)
		cur = nil
	}
}

// collect gathers followers for batch's leader until the batch is full,
// BatchWait elapses, or a mismatched request arrives (returned as the
// next leader).
func (s *Scheduler[S]) collect(batch []*request[S]) ([]*request[S], *request[S]) {
	leader := batch[0]
	timer := time.NewTimer(s.cfg.BatchWait)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case r := <-s.queue:
			if r.model != leader.model || r.tile.W != leader.tile.W || r.tile.H != leader.tile.H {
				return batch, r
			}
			batch = append(batch, r)
		case <-timer.C:
			return batch, nil
		case <-s.done:
			return batch, nil
		}
	}
	return batch, nil
}

// run executes one batch on the worker's session for its model and
// delivers per-request results. Injected chaos faults fire here, at the
// batch-pickup ordinal, before any result is delivered — so the restart
// path always sees a whole batch to requeue.
func (s *Scheduler[S]) run(sessions map[*unet.Model[S]]*unet.Session[S], batch []*request[S]) {
	if s.cfg.Chaos.ServePanic() {
		panic("chaos: injected inference-worker fault")
	}
	sess, ok := sessions[batch[0].model]
	if !ok {
		sess = unet.NewSession(batch[0].model)
		sessions[batch[0].model] = sess
	}
	tiles := make([]*raster.RGB, len(batch))
	for i, r := range batch {
		tiles[i] = r.tile
	}
	labels, err := sess.PredictTiles(tiles)
	if s.stats != nil {
		s.stats.RecordBatch(len(batch))
	}
	for i, r := range batch {
		if err != nil {
			r.out <- result{err: err}
		} else {
			r.out <- result{labels: labels[i]}
		}
	}
}
