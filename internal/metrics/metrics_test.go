package metrics

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"seaice/internal/noise"
	"seaice/internal/raster"
)

func TestConfusionPerfectDiagonal(t *testing.T) {
	c := NewConfusion(3)
	for cls := 0; cls < 3; cls++ {
		for k := 0; k < 10*(cls+1); k++ {
			c.Add(raster.Class(cls), raster.Class(cls))
		}
	}
	if got := c.Accuracy(); got != 1 {
		t.Fatalf("accuracy %f, want 1", got)
	}
	for _, v := range c.Precision() {
		if v != 1 {
			t.Fatalf("precision %v", c.Precision())
		}
	}
	if c.MacroF1() != 1 {
		t.Fatalf("macro F1 %f", c.MacroF1())
	}
	norm := c.RowNormalized()
	for i := range norm {
		if math.Abs(norm[i][i]-100) > 1e-9 {
			t.Fatalf("diagonal %f, want 100", norm[i][i])
		}
	}
}

func TestConfusionKnownValues(t *testing.T) {
	// 2-class example with hand-computed metrics:
	// true 0: 8 predicted 0, 2 predicted 1
	// true 1: 1 predicted 0, 9 predicted 1
	c := NewConfusion(2)
	add := func(a, b raster.Class, n int) {
		for i := 0; i < n; i++ {
			c.Add(a, b)
		}
	}
	add(0, 0, 8)
	add(0, 1, 2)
	add(1, 0, 1)
	add(1, 1, 9)

	if got, want := c.Accuracy(), 17.0/20; math.Abs(got-want) > 1e-12 {
		t.Fatalf("accuracy %f, want %f", got, want)
	}
	p := c.Precision()
	if math.Abs(p[0]-8.0/9) > 1e-12 || math.Abs(p[1]-9.0/11) > 1e-12 {
		t.Fatalf("precision %v", p)
	}
	r := c.Recall()
	if math.Abs(r[0]-0.8) > 1e-12 || math.Abs(r[1]-0.9) > 1e-12 {
		t.Fatalf("recall %v", r)
	}
	f1 := c.F1()
	wantF1 := 2 * (8.0 / 9) * 0.8 / ((8.0 / 9) + 0.8)
	if math.Abs(f1[0]-wantF1) > 1e-12 {
		t.Fatalf("f1[0] = %f, want %f", f1[0], wantF1)
	}
}

// TestConfusionRowsSumTo100: row normalization is a probability
// distribution per true class.
func TestConfusionRowsSumTo100(t *testing.T) {
	rng := noise.NewRNG(4, 1)
	c := NewConfusion(3)
	for k := 0; k < 500; k++ {
		c.Add(raster.Class(rng.Intn(3)), raster.Class(rng.Intn(3)))
	}
	for i, row := range c.RowNormalized() {
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if math.Abs(sum-100) > 1e-9 {
			t.Fatalf("row %d sums to %f", i, sum)
		}
	}
}

func TestConfusionMergeAndString(t *testing.T) {
	a := NewConfusion(3)
	b := NewConfusion(3)
	a.Add(0, 1)
	b.Add(0, 1)
	b.Add(2, 2)
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if a.Count[0][1] != 2 || a.Count[2][2] != 1 {
		t.Fatalf("merge wrong: %v", a.Count)
	}
	if err := a.Merge(NewConfusion(2)); err == nil {
		t.Fatal("expected size-mismatch error")
	}
	s := a.String()
	if !strings.Contains(s, "thin-ice") || !strings.Contains(s, "%") {
		t.Fatalf("render missing class names: %q", s)
	}
}

func TestAddLabelsSizeMismatch(t *testing.T) {
	c := NewConfusion(3)
	if err := c.AddLabels(raster.NewLabels(4, 4), raster.NewLabels(5, 4)); err == nil {
		t.Fatal("expected size error")
	}
}

func TestSSIMIdentityIsOne(t *testing.T) {
	rng := noise.NewRNG(9, 1)
	g := raster.NewGray(32, 32)
	for i := range g.Pix {
		g.Pix[i] = uint8(rng.Intn(256))
	}
	s, err := SSIM(g, g)
	if err != nil {
		t.Fatalf("ssim: %v", err)
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("SSIM(x,x) = %f", s)
	}
}

func TestSSIMSymmetricAndOrdered(t *testing.T) {
	rng := noise.NewRNG(10, 1)
	a := raster.NewGray(32, 32)
	for i := range a.Pix {
		a.Pix[i] = uint8(rng.Intn(256))
	}
	// small perturbation vs large perturbation
	small := a.Clone()
	big := a.Clone()
	for i := range small.Pix {
		if i%7 == 0 {
			small.Pix[i] ^= 0x08
			big.Pix[i] ^= 0x80
		}
	}
	sAB, _ := SSIM(a, small)
	sBA, _ := SSIM(small, a)
	if math.Abs(sAB-sBA) > 1e-12 {
		t.Fatalf("SSIM not symmetric: %f vs %f", sAB, sBA)
	}
	sBig, _ := SSIM(a, big)
	if sBig >= sAB {
		t.Fatalf("larger distortion scored higher: %f vs %f", sBig, sAB)
	}
}

func TestSSIMErrors(t *testing.T) {
	if _, err := SSIM(raster.NewGray(32, 32), raster.NewGray(16, 32)); err == nil {
		t.Fatal("expected size-mismatch error")
	}
	if _, err := SSIM(raster.NewGray(4, 4), raster.NewGray(4, 4)); err == nil {
		t.Fatal("expected too-small error")
	}
}

func TestSSIMRGBIdentity(t *testing.T) {
	rng := noise.NewRNG(11, 1)
	img := raster.NewRGB(24, 24)
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(256))
	}
	s, err := SSIMRGB(img, img)
	if err != nil {
		t.Fatalf("ssim: %v", err)
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("SSIMRGB(x,x) = %f", s)
	}
}

func TestMSEPSNR(t *testing.T) {
	a := raster.NewGray(8, 8)
	b := raster.NewGray(8, 8)
	for i := range b.Pix {
		b.Pix[i] = 10
	}
	mse, err := MSE(a, b)
	if err != nil {
		t.Fatalf("mse: %v", err)
	}
	if mse != 100 {
		t.Fatalf("mse %f, want 100", mse)
	}
	p, _ := PSNR(a, b)
	want := 10 * math.Log10(255*255/100.0)
	if math.Abs(p-want) > 1e-9 {
		t.Fatalf("psnr %f, want %f", p, want)
	}
	pInf, _ := PSNR(a, a)
	if !math.IsInf(pInf, 1) {
		t.Fatalf("psnr of identical images %f, want +Inf", pInf)
	}
}

// TestPixelAccuracyProperty: accuracy equals direct agreement count.
func TestPixelAccuracyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := noise.NewRNG(seed, 3)
		a := raster.NewLabels(8, 8)
		b := raster.NewLabels(8, 8)
		agree := 0
		for i := range a.Pix {
			a.Pix[i] = raster.Class(rng.Intn(3))
			b.Pix[i] = raster.Class(rng.Intn(3))
			if a.Pix[i] == b.Pix[i] {
				agree++
			}
		}
		acc, err := PixelAccuracy(a, b)
		if err != nil {
			return false
		}
		return math.Abs(acc-float64(agree)/64) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptClassRejected: a corrupt class byte (out of matrix range)
// must surface as a *ClassRangeError, not an index panic, and must leave
// the matrix untouched. Runs under the CI chaos-smoke `-run Corrupt` pass
// with the rest of the silent-corruption defenses.
func TestCorruptClassRejected(t *testing.T) {
	c := NewConfusion(int(raster.NumClasses))
	var rangeErr *ClassRangeError

	if err := c.Add(raster.Class(7), raster.ClassWater); err == nil {
		t.Fatal("corrupt true-class byte accepted")
	} else if !errors.As(err, &rangeErr) {
		t.Fatalf("want *ClassRangeError, got %T: %v", err, err)
	} else if int(rangeErr.Class) != 7 || rangeErr.N != int(raster.NumClasses) {
		t.Fatalf("error carries %d/%d, want 7/%d", rangeErr.Class, rangeErr.N, raster.NumClasses)
	}
	if err := c.Add(raster.ClassWater, raster.Class(255)); err == nil {
		t.Fatal("corrupt predicted-class byte accepted")
	}
	if c.Total() != 0 {
		t.Fatalf("rejected observations still counted: total %d", c.Total())
	}

	// Same defense on the bulk path: one flipped pixel byte in a label map.
	truth := raster.NewLabels(8, 8)
	pred := raster.NewLabels(8, 8)
	pred.Pix[13] = raster.Class(0xEE)
	if err := c.AddLabels(truth, pred); err == nil {
		t.Fatal("corrupt label map accepted")
	} else if !errors.As(err, &rangeErr) {
		t.Fatalf("want *ClassRangeError, got %T: %v", err, err)
	}
	truth.Pix[2] = raster.Class(0x99)
	pred.Pix[13] = raster.ClassWater
	if err := c.AddLabels(truth, pred); err == nil {
		t.Fatal("corrupt truth map accepted")
	}

	// PixelAccuracy rides AddLabels and must propagate the verdict.
	if _, err := PixelAccuracy(truth, pred); err == nil {
		t.Fatal("PixelAccuracy accepted corrupt map")
	}

	// In-range observations still accumulate afterwards.
	if err := c.Add(raster.ClassThinIce, raster.ClassThinIce); err != nil {
		t.Fatalf("valid observation rejected: %v", err)
	}
}
