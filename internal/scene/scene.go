// Package scene synthesizes Sentinel-2-like RGB scenes of polar sea ice
// with per-pixel ground truth. It substitutes for the paper's Google Earth
// Engine imagery of the Ross Sea (66 scenes, November 2019), which is not
// available offline.
//
// The generator reproduces the optical structure the paper's pipeline
// depends on:
//
//   - An ice-concentration field (domain-warped fBm) partitions the scene
//     into thick/snow-covered ice, thin/young ice, and open water, with
//     ridged-noise leads (narrow linear cracks) carved through the pack —
//     the same three WMO-style classes the paper labels.
//   - Rendering keeps each class inside the paper's HSV bands: thick ice
//     value ≥ 205, thin ice value in [31,204], open water value ≤ 30
//     (OpenCV 8-bit convention), with natural in-class texture.
//   - Thin clouds are a smooth, low-frequency additive veil (surface is
//     alpha-blended toward a bright veil color), and every cloud casts a
//     displaced multiplicative shadow — exactly the two disturbances the
//     paper's thin-cloud/shadow filter removes. Clouds brighten dark
//     surfaces (water and thin ice read as ice) while shadows darken
//     thick ice (reads as thin ice), reproducing the confusion structure
//     of the paper's Fig 13.
//
// Everything is deterministic in Config.Seed, so the whole experiment
// suite is reproducible. Generation is a pure function of its config —
// no shared state — so the streaming pipeline's stage workers render
// scenes concurrently (GenerateAt) with results identical to the serial
// GenerateCollection loop.
package scene

import (
	"fmt"

	"seaice/internal/noise"
	"seaice/internal/raster"
)

// CloudSpec controls the synthetic atmosphere of one scene.
type CloudSpec struct {
	// Bias shifts the cloud fBm before gain; higher bias means less
	// cloud. Typical range [0.35, 0.75]; ≥ 1 disables clouds entirely.
	Bias float64
	// Gain scales the shifted field into opacity.
	Gain float64
	// MaxOpacity caps the veil alpha; thin clouds stay translucent.
	MaxOpacity float64
	// Freq is the base frequency of the cloud field in cycles/pixel;
	// clouds are much smoother than ice texture.
	Freq float64
	// OffsetX, OffsetY displace the cloud shadow on the ground (sun
	// geometry), in pixels.
	OffsetX, OffsetY int
	// ShadowStrength is the peak multiplicative darkening (0 disables
	// shadows). A value of 0.35 darkens fully shadowed pixels by 35%.
	ShadowStrength float64
}

// Config describes one synthetic scene.
type Config struct {
	W, H int
	Seed uint64

	// IceFreq is the base frequency of the ice-concentration field.
	IceFreq float64
	// LeadFreq is the base frequency of the ridged lead field.
	LeadFreq float64
	// ThickThreshold and ThinThreshold partition the concentration
	// field: c ≥ ThickThreshold → thick ice, c ≥ ThinThreshold → thin
	// ice, below → open water.
	ThickThreshold, ThinThreshold float64
	// LeadDepth controls how strongly leads cut concentration.
	LeadDepth float64
	// NoiseSigma is per-channel Gaussian sensor noise (8-bit units).
	NoiseSigma float64
	// Illumination scales surface brightness globally: 1 (the zero
	// value is promoted to 1) is polar summer, ~0.55 models the
	// Antarctic partial-night season the paper's §IV-B2 discusses —
	// where the published summer thresholds stop working and must be
	// recalibrated (see autolabel.Calibrate).
	Illumination float64

	Clouds CloudSpec
}

// DefaultConfig returns the experiment-scale configuration: a 512×512
// scene (the paper's 2048² at quarter scale; tile counts are preserved by
// using 64² tiles, see DESIGN.md §5) with moderate ice cover.
func DefaultConfig(seed uint64) Config {
	return Config{
		W: 512, H: 512,
		Seed:           seed,
		IceFreq:        1.0 / 96.0,
		LeadFreq:       1.0 / 72.0,
		ThickThreshold: 0.58,
		ThinThreshold:  0.42,
		LeadDepth:      0.38,
		NoiseSigma:     1.6,
		Clouds:         DefaultClouds(),
	}
}

// DefaultClouds returns a moderate thin-cloud specification.
func DefaultClouds() CloudSpec {
	return CloudSpec{
		Bias:           0.52,
		Gain:           2.6,
		MaxOpacity:     0.48,
		Freq:           1.0 / 280.0,
		OffsetX:        96,
		OffsetY:        64,
		ShadowStrength: 0.38,
	}
}

// ClearClouds returns a specification with no clouds or shadows.
func ClearClouds() CloudSpec {
	return CloudSpec{Bias: 2, Gain: 0, MaxOpacity: 0, Freq: 1.0 / 280.0}
}

// Scene is one generated scene with full ground truth. Image is what the
// classification pipeline is allowed to see; the remaining fields exist
// for validation and tests (the paper's "manual labels" correspond to
// Truth).
type Scene struct {
	Config Config

	// Image is the observed RGB scene: surface + veil + shadow + noise.
	Image *raster.RGB
	// Clean is the surface as it would appear with no atmosphere.
	Clean *raster.RGB
	// Truth is the per-pixel ground-truth class map ("manual labels").
	Truth *raster.Labels
	// CloudOpacity is the true veil alpha in [0,1] per pixel.
	CloudOpacity *raster.Float
	// Shadow is the true multiplicative shadow strength in [0,1].
	Shadow *raster.Float
	// CloudMask marks pixels disturbed by veil or shadow (≥ 5% effect).
	CloudMask *raster.Gray
	// CloudFraction is the fraction of disturbed pixels in [0,1].
	CloudFraction float64
}

// The paper's HSV labeling bands (OpenCV convention). Rendering keeps
// clean surfaces inside these bands.
const (
	waterVMax = 30
	thinVMin  = 31
	thinVMax  = 204
	thickVMin = 205

	// VeilR, VeilG, VeilB is the thin-cloud veil color surfaces blend
	// toward; it is close to — but not exactly — thick-ice white, as
	// thin clouds look slightly blue-gray from above.
	VeilR = 232
	VeilG = 235
	VeilB = 242
)

// Generate renders one scene from the configuration.
func Generate(cfg Config) (*Scene, error) {
	if cfg.W <= 0 || cfg.H <= 0 {
		return nil, fmt.Errorf("scene: invalid size %dx%d", cfg.W, cfg.H)
	}
	if !(cfg.ThinThreshold < cfg.ThickThreshold) {
		return nil, fmt.Errorf("scene: ThinThreshold %.3f must be below ThickThreshold %.3f", cfg.ThinThreshold, cfg.ThickThreshold)
	}

	illum := cfg.Illumination
	if illum == 0 {
		illum = 1
	}
	if illum < 0.1 || illum > 1.5 {
		return nil, fmt.Errorf("scene: illumination %.2f outside [0.1,1.5]", illum)
	}

	w, h := cfg.W, cfg.H
	s := &Scene{
		Config:       cfg,
		Image:        raster.NewRGB(w, h),
		Clean:        raster.NewRGB(w, h),
		Truth:        raster.NewLabels(w, h),
		CloudOpacity: raster.NewFloat(w, h),
		Shadow:       raster.NewFloat(w, h),
		CloudMask:    raster.NewGray(w, h),
	}

	conc := noise.FBM{Seed: cfg.Seed ^ 0x1ce, Octaves: 5, Frequency: cfg.IceFreq, Lacunarity: 2, Persistence: 0.55}
	lead := noise.FBM{Seed: cfg.Seed ^ 0x1ead, Octaves: 4, Frequency: cfg.LeadFreq, Lacunarity: 2.1, Persistence: 0.5}
	texture := noise.FBM{Seed: cfg.Seed ^ 0x7e47, Octaves: 4, Frequency: 1.0 / 14.0, Lacunarity: 2, Persistence: 0.5}
	cloud := noise.FBM{Seed: cfg.Seed ^ 0xc10d, Octaves: 4, Frequency: cfg.Clouds.Freq, Lacunarity: 2.2, Persistence: 0.55}
	rng := noise.NewRNG(cfg.Seed, 0x5e15e)

	// cloudAt evaluates the veil opacity field at scene coordinates;
	// keeping it as a closure lets the shadow sample the same analytic
	// field at the sun-displaced position without storing a second grid.
	cloudAt := func(x, y float64) float64 {
		if cfg.Clouds.Gain <= 0 {
			return 0
		}
		v := (cloud.Warped(x, y, 40) - cfg.Clouds.Bias) * cfg.Clouds.Gain
		if v < 0 {
			return 0
		}
		if v > cfg.Clouds.MaxOpacity {
			return cfg.Clouds.MaxOpacity
		}
		return v
	}

	disturbed := 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			fx, fy := float64(x), float64(y)

			// --- surface synthesis ---
			c := conc.Warped(fx, fy, 28)
			// Leads: the ridged field spikes near 1 along crease
			// lines; subtract to carve open-water channels.
			l := lead.Ridged(fx, fy)
			if l > 0.62 {
				c -= cfg.LeadDepth * (l - 0.62) / 0.38
			}
			t := texture.At(fx, fy) // in-class texture, [0,1)

			var class raster.Class
			var r, g, b float64
			switch {
			case c >= cfg.ThickThreshold:
				class = raster.ClassThickIce
				// Bright white with faint texture; V in [213,252].
				v := 216.0 + 36*t
				if v < thickVMin+2 {
					v = thickVMin + 2
				}
				if v > 252 {
					v = 252
				}
				r, g, b = v-4*t, v-2*t, v
			case c >= cfg.ThinThreshold:
				class = raster.ClassThinIce
				// Blue-gray gradient tied to concentration: young
				// grease ice is dark, thicker gray-white ice is
				// brighter. V spans [45,190].
				u := (c - cfg.ThinThreshold) / (cfg.ThickThreshold - cfg.ThinThreshold)
				v := 45 + 145*u + 18*(t-0.5)
				if v < thinVMin+6 {
					v = thinVMin + 6
				}
				if v > thinVMax-8 {
					v = thinVMax - 8
				}
				// Bluish: blue channel carries V, red is suppressed.
				// Keeping saturation ≥ ~0.2 matters: the cloud filter
				// relies on clean thin ice staying visibly blue while
				// a veil desaturates everything it covers.
				sat := 0.46 - 0.24*u // young ice is more saturated blue
				r, g, b = v*(1-sat), v*(1-0.35*sat), v
			default:
				class = raster.ClassWater
				// Dark ocean, deep blue. V in [6,28].
				v := 8 + 18*t
				if v > waterVMax-2 {
					v = waterVMax - 2
				}
				r, g, b = v*0.25, v*0.55, v
			}
			s.Truth.Set(x, y, class)
			// Season: partial-night sun angles dim every surface by
			// the same factor (the atmosphere above is unaffected).
			r, g, b = r*illum, g*illum, b*illum

			// --- atmosphere ---
			a := cloudAt(fx, fy)
			// The shadow tracks the cloud field displaced by the sun
			// geometry; its strength is normalized by MaxOpacity so
			// ShadowStrength is the true peak darkening.
			sh := 0.0
			if cfg.Clouds.MaxOpacity > 0 {
				sh = cfg.Clouds.ShadowStrength * cloudAt(fx+float64(cfg.Clouds.OffsetX), fy+float64(cfg.Clouds.OffsetY)) / cfg.Clouds.MaxOpacity
			}

			s.CloudOpacity.Set(x, y, a)
			s.Shadow.Set(x, y, sh)

			cr, cg, cb := clamp8(r), clamp8(g), clamp8(b)
			s.Clean.Set(x, y, cr, cg, cb)

			// shadow first (sunlight attenuated at the surface), then
			// the veil blends toward cloud color above the shadow.
			or := (r*(1-sh))*(1-a) + VeilR*a
			og := (g*(1-sh))*(1-a) + VeilG*a
			ob := (b*(1-sh))*(1-a) + VeilB*a

			if cfg.NoiseSigma > 0 {
				or += rng.NormFloat64() * cfg.NoiseSigma
				og += rng.NormFloat64() * cfg.NoiseSigma
				ob += rng.NormFloat64() * cfg.NoiseSigma
			}
			s.Image.Set(x, y, clamp8(or), clamp8(og), clamp8(ob))

			if a >= 0.05 || sh >= 0.05 {
				s.CloudMask.Set(x, y, 255)
				disturbed++
			}
		}
	}
	s.CloudFraction = float64(disturbed) / float64(w*h)
	return s, nil
}

func clamp8(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}
