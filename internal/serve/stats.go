package serve

import (
	"sort"
	"sync"
	"time"
)

// latencyWindow is how many recent request latencies the percentile
// estimates are computed over.
const latencyWindow = 4096

// Stats aggregates service-level metrics: request/tile/batch counters
// and a sliding window of request latencies for percentile estimates.
// All methods are safe for concurrent use.
type Stats struct {
	mu       sync.Mutex
	start    time.Time
	requests int64
	tiles    int64
	errors   int64
	rejected int64
	batches  int64
	batched  int64 // tiles that went through batches
	restarts int64 // inference workers restarted after a panic
	expired  int64 // requests dropped in queue after their deadline passed
	infeasib int64 // requests refused by predictive deadline admission

	lat    []time.Duration // ring buffer of recent request latencies
	latIdx int
	latN   int
}

// NewStats returns a zeroed recorder with the clock started.
func NewStats() *Stats {
	return &Stats{start: time.Now(), lat: make([]time.Duration, latencyWindow)}
}

// RecordRequest accounts one classification request covering n tiles.
// Failed requests count as errors but stay out of the latency window:
// fast 429s during overload must not drag the reported percentiles
// down while the requests that actually succeed are slow.
func (s *Stats) RecordRequest(d time.Duration, n int, failed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requests++
	s.tiles += int64(n)
	if failed {
		s.errors++
		return
	}
	s.lat[s.latIdx] = d
	s.latIdx = (s.latIdx + 1) % len(s.lat)
	if s.latN < len(s.lat) {
		s.latN++
	}
}

// RecordBatch accounts one executed forward-pass batch of n tiles.
func (s *Stats) RecordBatch(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches++
	s.batched += int64(n)
}

// RecordWorkerRestart accounts one inference worker restarted after a
// panic (injected or real) — the health signal behind /healthz.
func (s *Stats) RecordWorkerRestart() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.restarts++
}

// WorkerRestarts reports the cumulative restart count.
func (s *Stats) WorkerRestarts() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restarts
}

// RecordReject accounts one request refused for backpressure.
func (s *Stats) RecordReject() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rejected++
}

// RecordExpired accounts one queued request dropped before compute
// because its deadline had already passed.
func (s *Stats) RecordExpired() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expired++
}

// RecordDeadlineReject accounts one request refused at admission because
// the service-time model predicted it could not meet its deadline.
func (s *Stats) RecordDeadlineReject() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.infeasib++
}

// Snapshot is a point-in-time view of the service metrics, shaped for
// the /statz endpoint.
type Snapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      int64   `json:"requests"`
	Tiles         int64   `json:"tiles"`
	Errors        int64   `json:"errors"`
	Rejected      int64   `json:"rejected"`
	Batches       int64   `json:"batches"`
	AvgBatchSize  float64 `json:"avg_batch_size"`
	P50Millis     float64 `json:"p50_ms"`
	P99Millis     float64 `json:"p99_ms"`
	RequestsPerS  float64 `json:"requests_per_s"`
	TilesPerS     float64 `json:"tiles_per_s"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	QueueDepth    int     `json:"queue_depth"`
	// WorkerRestarts and LiveWorkers are the self-healing pool's health
	// signals: restarts count recovered panics; live is the current
	// worker gauge (dips briefly mid-restart).
	WorkerRestarts int64 `json:"worker_restarts"`
	LiveWorkers    int   `json:"live_workers"`
	// ExpiredDropped counts queued requests dropped before compute after
	// their deadline passed (HTTP 504); DeadlineRejected counts requests
	// the admission model refused at enqueue (HTTP 429 with a
	// model-derived Retry-After); PredictedWaitMS is the model's current
	// completion estimate for a newly enqueued request.
	ExpiredDropped   int64   `json:"expired_dropped"`
	DeadlineRejected int64   `json:"deadline_rejected"`
	PredictedWaitMS  float64 `json:"predicted_wait_ms"`
}

// Snapshot folds the counters and the current queue/cache/worker state
// into a Snapshot.
func (s *Stats) Snapshot(queueDepth, liveWorkers int, cacheHits, cacheMisses int64) Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	up := time.Since(s.start).Seconds()
	snap := Snapshot{
		UptimeSeconds:    up,
		Requests:         s.requests,
		Tiles:            s.tiles,
		Errors:           s.errors,
		Rejected:         s.rejected,
		Batches:          s.batches,
		CacheHits:        cacheHits,
		CacheMisses:      cacheMisses,
		QueueDepth:       queueDepth,
		WorkerRestarts:   s.restarts,
		LiveWorkers:      liveWorkers,
		ExpiredDropped:   s.expired,
		DeadlineRejected: s.infeasib,
	}
	if s.batches > 0 {
		snap.AvgBatchSize = float64(s.batched) / float64(s.batches)
	}
	if up > 0 {
		snap.RequestsPerS = float64(s.requests) / up
		snap.TilesPerS = float64(s.tiles) / up
	}
	if total := cacheHits + cacheMisses; total > 0 {
		snap.CacheHitRate = float64(cacheHits) / float64(total)
	}
	if s.latN > 0 {
		window := make([]time.Duration, s.latN)
		copy(window, s.lat[:s.latN])
		sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
		snap.P50Millis = float64(window[percentileIndex(s.latN, 0.50)]) / float64(time.Millisecond)
		snap.P99Millis = float64(window[percentileIndex(s.latN, 0.99)]) / float64(time.Millisecond)
	}
	return snap
}

// percentileIndex maps a percentile to a sorted-slice index (nearest
// rank).
func percentileIndex(n int, p float64) int {
	i := int(p*float64(n) + 0.5)
	if i >= n {
		i = n - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}
