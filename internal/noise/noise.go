// Package noise provides deterministic, seedable procedural noise used by
// the synthetic Sentinel-2 scene generator. It implements smoothed value
// noise, fractional Brownian motion (fBm), ridged multifractal noise, and
// domain warping — the standard toolkit for generating natural-looking
// ice-concentration and cloud-density fields.
//
// All functions are pure with respect to their seed: the same (seed, x, y)
// always yields the same value on every platform, which keeps the entire
// experiment pipeline reproducible.
package noise

import "math"

// splitmix64 is the SplitMix64 mixing function. It is used to derive
// high-quality per-lattice-point hashes from a seed and coordinates.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hash2 maps an integer lattice point and seed to a uniform value in [0,1).
func hash2(seed uint64, x, y int32) float64 {
	h := splitmix64(seed ^ splitmix64(uint64(uint32(x))<<32|uint64(uint32(y))))
	return float64(h>>11) / float64(1<<53)
}

// smoothstep is the cubic Hermite interpolant 3t²-2t³ on [0,1].
func smoothstep(t float64) float64 { return t * t * (3 - 2*t) }

// lerp linearly interpolates between a and b by t.
func lerp(a, b, t float64) float64 { return a + (b-a)*t }

// Value returns smoothed value noise in [0,1) at continuous coordinates
// (x, y) for the given seed. Lattice values are bilinearly blended with a
// smoothstep fade, giving C¹-continuous output.
func Value(seed uint64, x, y float64) float64 {
	xf := math.Floor(x)
	yf := math.Floor(y)
	xi := int32(xf)
	yi := int32(yf)
	tx := smoothstep(x - xf)
	ty := smoothstep(y - yf)

	v00 := hash2(seed, xi, yi)
	v10 := hash2(seed, xi+1, yi)
	v01 := hash2(seed, xi, yi+1)
	v11 := hash2(seed, xi+1, yi+1)

	return lerp(lerp(v00, v10, tx), lerp(v01, v11, tx), ty)
}

// FBM holds parameters for fractional Brownian motion: a sum of noise
// octaves with geometrically increasing frequency and decreasing amplitude.
type FBM struct {
	Seed        uint64
	Octaves     int     // number of layers; values <1 are treated as 1
	Frequency   float64 // base spatial frequency (cycles per unit)
	Lacunarity  float64 // frequency multiplier per octave (typically 2)
	Persistence float64 // amplitude multiplier per octave (typically 0.5)
}

// DefaultFBM returns an FBM with conventional parameters: 5 octaves,
// lacunarity 2, persistence 0.5.
func DefaultFBM(seed uint64, frequency float64) FBM {
	return FBM{Seed: seed, Octaves: 5, Frequency: frequency, Lacunarity: 2, Persistence: 0.5}
}

// At evaluates the fBm at (x, y), normalized to [0,1).
func (f FBM) At(x, y float64) float64 {
	oct := f.Octaves
	if oct < 1 {
		oct = 1
	}
	freq := f.Frequency
	amp := 1.0
	sum := 0.0
	norm := 0.0
	seed := f.Seed
	for i := 0; i < oct; i++ {
		sum += amp * Value(seed, x*freq, y*freq)
		norm += amp
		freq *= f.Lacunarity
		amp *= f.Persistence
		seed = splitmix64(seed + 0x632be59bd9b4e019)
	}
	return sum / norm
}

// Ridged evaluates ridged multifractal noise in [0,1): each octave is
// folded around its midpoint (1-|2v-1|), producing sharp crease lines.
// It is used to carve leads (narrow linear cracks) into the ice field.
func (f FBM) Ridged(x, y float64) float64 {
	oct := f.Octaves
	if oct < 1 {
		oct = 1
	}
	freq := f.Frequency
	amp := 1.0
	sum := 0.0
	norm := 0.0
	seed := f.Seed
	for i := 0; i < oct; i++ {
		v := Value(seed, x*freq, y*freq)
		v = 1 - math.Abs(2*v-1)
		sum += amp * v * v
		norm += amp
		freq *= f.Lacunarity
		amp *= f.Persistence
		seed = splitmix64(seed + 0x9e3779b97f4a7c15)
	}
	return sum / norm
}

// Warped evaluates the fBm with domain warping: the sample point is first
// displaced by two auxiliary fBm fields scaled by strength. Warping breaks
// up the axis-aligned artifacts of lattice noise and yields the swirling
// shapes characteristic of pack ice and cloud veils.
func (f FBM) Warped(x, y, strength float64) float64 {
	wx := FBM{Seed: splitmix64(f.Seed ^ 0xa5a5a5a5a5a5a5a5), Octaves: f.Octaves, Frequency: f.Frequency, Lacunarity: f.Lacunarity, Persistence: f.Persistence}
	wy := FBM{Seed: splitmix64(f.Seed ^ 0x5a5a5a5a5a5a5a5a), Octaves: f.Octaves, Frequency: f.Frequency, Lacunarity: f.Lacunarity, Persistence: f.Persistence}
	dx := (wx.At(x, y) - 0.5) * 2 * strength
	dy := (wy.At(x, y) - 0.5) * 2 * strength
	return f.At(x+dx, y+dy)
}

// RNG is a small, fast, seedable PCG-XSH-RR style generator used wherever
// the pipeline needs a stream of reproducible pseudo-random numbers
// independent of math/rand's global state.
type RNG struct {
	state uint64
	inc   uint64
}

// NewRNG returns a generator seeded deterministically from seed and stream.
// Distinct streams yield independent sequences for the same seed.
func NewRNG(seed, stream uint64) *RNG {
	r := &RNG{inc: stream<<1 | 1}
	r.state = splitmix64(seed)
	r.Uint64()
	return r
}

// Uint64 returns the next 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state = r.state*6364136223846793005 + r.inc
	x := r.state
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("noise: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate via the Box–Muller
// transform (one value per call; the pair's second member is discarded to
// keep the generator stateless beyond its counter).
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// RNGState is the full serializable state of an RNG: restoring it
// resumes the stream at the exact position it was captured, which is how
// the fault-tolerance snapshots (internal/ddp) replay dropout noise
// bit-identically after a crash.
type RNGState struct {
	State, Inc uint64
}

// State captures the generator's position.
func (r *RNG) State() RNGState { return RNGState{State: r.state, Inc: r.inc} }

// SetState rewinds (or fast-forwards) the generator to a captured
// position.
func (r *RNG) SetState(st RNGState) { r.state, r.inc = st.State, st.Inc }

// Perm returns a deterministic pseudo-random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
