package imgproc

import (
	"math"
	"testing"
	"testing/quick"

	"seaice/internal/noise"
	"seaice/internal/raster"
)

func constGray(w, h int, v uint8) *raster.Gray {
	g := raster.NewGray(w, h)
	g.Fill(v)
	return g
}

func TestBoxBlurPreservesConstant(t *testing.T) {
	g := constGray(16, 12, 77)
	b := BoxBlur(g, 3)
	for i, v := range b.Pix {
		if v != 77 {
			t.Fatalf("constant image changed at %d: %d", i, v)
		}
	}
}

func TestBoxBlurMatchesBruteForce(t *testing.T) {
	g := randGray(42, 13, 9)
	radius := 2
	got := BoxBlur(g, radius)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			sum, n := 0.0, 0.0
			for dy := -radius; dy <= radius; dy++ {
				for dx := -radius; dx <= radius; dx++ {
					xx, yy := clampIdx(x+dx, g.W), clampIdx(y+dy, g.H)
					sum += float64(g.At(xx, yy))
					n++
				}
			}
			// replicate-border box blur normalizes by window area, and
			// the separable version replicates per axis — recompute the
			// same way: clamp per axis independently.
			_ = n
			sep := 0.0
			win := float64(2*radius + 1)
			for dy := -radius; dy <= radius; dy++ {
				rowSum := 0.0
				for dx := -radius; dx <= radius; dx++ {
					rowSum += float64(g.At(clampIdx(x+dx, g.W), clampIdx(y+dy, g.H)))
				}
				sep += rowSum
			}
			want := sep / (win * win)
			if math.Abs(float64(got.At(x, y))-want) > 0.75 {
				t.Fatalf("(%d,%d): got %d want %.2f", x, y, got.At(x, y), want)
			}
		}
	}
}

func TestGaussianKernelNormalized(t *testing.T) {
	for _, sigma := range []float64{0.5, 1, 2.5, 8} {
		k := GaussianKernel(sigma)
		sum := 0.0
		for _, v := range k {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("sigma %.1f: kernel sums to %g", sigma, sum)
		}
		if len(k)%2 != 1 {
			t.Fatalf("sigma %.1f: even kernel length %d", sigma, len(k))
		}
		// symmetric
		for i := range k {
			if math.Abs(k[i]-k[len(k)-1-i]) > 1e-15 {
				t.Fatalf("sigma %.1f: kernel asymmetric", sigma)
			}
		}
	}
}

func TestGaussianBlurPreservesConstantAndSmooths(t *testing.T) {
	g := constGray(20, 20, 90)
	b := GaussianBlur(g, 2)
	for i, v := range b.Pix {
		if v < 89 || v > 91 {
			t.Fatalf("constant image changed at %d: %d", i, v)
		}
	}
	// an impulse must spread: center loses mass, neighbors gain
	imp := raster.NewGray(21, 21)
	imp.Set(10, 10, 255)
	s := GaussianBlur(imp, 1.5)
	if s.At(10, 10) >= 255 || s.At(11, 10) == 0 {
		t.Fatalf("impulse did not spread: center %d neighbor %d", s.At(10, 10), s.At(11, 10))
	}
}

func TestMedianFilterRemovesSaltPepper(t *testing.T) {
	g := constGray(15, 15, 100)
	g.Set(7, 7, 255)
	g.Set(3, 4, 0)
	m := MedianFilter(g, 1)
	if m.At(7, 7) != 100 || m.At(3, 4) != 100 {
		t.Fatalf("isolated outliers survived the median: %d %d", m.At(7, 7), m.At(3, 4))
	}
}

func TestMedianFilterMatchesBruteForce(t *testing.T) {
	g := randGray(17, 11, 8)
	radius := 1
	got := MedianFilter(g, radius)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			var vals []int
			for dy := -radius; dy <= radius; dy++ {
				for dx := -radius; dx <= radius; dx++ {
					vals = append(vals, int(g.At(clampIdx(x+dx, g.W), clampIdx(y+dy, g.H))))
				}
			}
			// median of 9 values (with clamped duplicates)
			for i := 0; i < len(vals); i++ {
				for j := i + 1; j < len(vals); j++ {
					if vals[j] < vals[i] {
						vals[i], vals[j] = vals[j], vals[i]
					}
				}
			}
			want := vals[len(vals)/2]
			if int(got.At(x, y)) != want {
				t.Fatalf("(%d,%d): got %d want %d", x, y, got.At(x, y), want)
			}
		}
	}
}

func TestAbsDiff(t *testing.T) {
	a := constGray(4, 4, 100)
	b := constGray(4, 4, 160)
	d, err := AbsDiff(a, b)
	if err != nil {
		t.Fatalf("absdiff: %v", err)
	}
	for _, v := range d.Pix {
		if v != 60 {
			t.Fatalf("absdiff = %d, want 60", v)
		}
	}
	if _, err := AbsDiff(a, constGray(5, 4, 0)); err == nil {
		t.Fatal("expected size-mismatch error")
	}
}

func TestThresholdKinds(t *testing.T) {
	g := raster.NewGray(1, 5)
	copy(g.Pix, []uint8{0, 50, 100, 150, 250})
	cases := []struct {
		kind ThresholdKind
		want []uint8
	}{
		{ThreshBinary, []uint8{0, 0, 0, 255, 255}},
		{ThreshBinaryInv, []uint8{255, 255, 255, 0, 0}},
		{ThreshTrunc, []uint8{0, 50, 100, 100, 100}},
		{ThreshToZero, []uint8{0, 0, 0, 150, 250}},
		{ThreshToZeroInv, []uint8{0, 50, 100, 0, 0}},
	}
	for _, c := range cases {
		got := Threshold(g, 100, 255, c.kind)
		for i := range c.want {
			if got.Pix[i] != c.want[i] {
				t.Errorf("%v: pix %d = %d, want %d", c.kind, i, got.Pix[i], c.want[i])
			}
		}
	}
}

// TestOtsuSeparatesBimodal: on a clean bimodal histogram Otsu must land
// between the modes.
func TestOtsuSeparatesBimodal(t *testing.T) {
	g := raster.NewGray(10, 10)
	for i := range g.Pix {
		if i%2 == 0 {
			g.Pix[i] = 40
		} else {
			g.Pix[i] = 200
		}
	}
	th := OtsuThreshold(g)
	if th < 40 || th >= 200 {
		t.Fatalf("otsu threshold %d outside (40,200)", th)
	}
	mask, _ := OtsuBinary(g)
	for i := range g.Pix {
		want := uint8(0)
		if g.Pix[i] > th {
			want = 255
		}
		if mask.Pix[i] != want {
			t.Fatalf("otsu mask wrong at %d", i)
		}
	}
}

// TestOtsuWithinSupport: the threshold always lies within the occupied
// intensity range.
func TestOtsuWithinSupport(t *testing.T) {
	f := func(seed uint64) bool {
		g := randGray(seed, 12, 12)
		mn, mx := g.Pix[0], g.Pix[0]
		for _, v := range g.Pix {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		th := OtsuThreshold(g)
		return th >= mn && th <= mx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeMapsOntoRange(t *testing.T) {
	g := randGray(23, 9, 9)
	n := Normalize(g, 10, 240)
	mn, mx := n.Pix[0], n.Pix[0]
	for _, v := range n.Pix {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if mn != 10 || mx != 240 {
		t.Fatalf("normalized range [%d,%d], want [10,240]", mn, mx)
	}
	// constant image maps to lo
	c := Normalize(constGray(4, 4, 99), 10, 240)
	for _, v := range c.Pix {
		if v != 10 {
			t.Fatalf("constant image normalized to %d, want 10", v)
		}
	}
}

func TestBitwiseOps(t *testing.T) {
	a := raster.NewGray(1, 4)
	b := raster.NewGray(1, 4)
	copy(a.Pix, []uint8{0, 255, 0, 255})
	copy(b.Pix, []uint8{0, 0, 255, 255})

	and, _ := And(a, b)
	or, _ := Or(a, b)
	not := Not(a)
	wantAnd := []uint8{0, 0, 0, 255}
	wantOr := []uint8{0, 255, 255, 255}
	wantNot := []uint8{255, 0, 255, 0}
	for i := 0; i < 4; i++ {
		if and.Pix[i] != wantAnd[i] || or.Pix[i] != wantOr[i] || not.Pix[i] != wantNot[i] {
			t.Fatalf("bitwise mismatch at %d", i)
		}
	}
}

func TestApplyMaskAndSubtract(t *testing.T) {
	src := constGray(2, 2, 80)
	mask := raster.NewGray(2, 2)
	mask.Set(0, 0, 255)
	m, err := ApplyMask(src, mask)
	if err != nil {
		t.Fatalf("mask: %v", err)
	}
	if m.At(0, 0) != 80 || m.At(1, 1) != 0 {
		t.Fatalf("mask application wrong: %d %d", m.At(0, 0), m.At(1, 1))
	}

	s, err := Subtract(constGray(2, 2, 50), constGray(2, 2, 80))
	if err != nil {
		t.Fatalf("subtract: %v", err)
	}
	if s.At(0, 0) != 0 {
		t.Fatalf("saturating subtract gave %d, want 0", s.At(0, 0))
	}
}

func TestAddWeighted(t *testing.T) {
	a := constGray(2, 2, 100)
	b := constGray(2, 2, 200)
	out, err := AddWeighted(a, 0.5, b, 0.5, 10)
	if err != nil {
		t.Fatalf("addweighted: %v", err)
	}
	if out.At(0, 0) != 160 {
		t.Fatalf("0.5·100+0.5·200+10 = %d, want 160", out.At(0, 0))
	}
	// saturation
	sat, _ := AddWeighted(a, 2, b, 2, 0)
	if sat.At(0, 0) != 255 {
		t.Fatalf("expected saturation to 255, got %d", sat.At(0, 0))
	}
}

func TestCountNonZero(t *testing.T) {
	g := raster.NewGray(2, 3)
	g.Set(0, 0, 1)
	g.Set(1, 2, 200)
	if got := CountNonZero(g); got != 2 {
		t.Fatalf("count %d, want 2", got)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := raster.NewGray(6, 3)
	// two blobs: left column pair and right single
	g.Set(0, 0, 255)
	g.Set(0, 1, 255)
	g.Set(5, 2, 255)
	labels, n := ConnectedComponents(g)
	if n != 2 {
		t.Fatalf("found %d components, want 2", n)
	}
	if labels[0] == 0 || labels[0] != labels[6] {
		t.Fatalf("vertical neighbors not merged: %d vs %d", labels[0], labels[6])
	}
	if labels[2*6+5] == labels[0] {
		t.Fatal("distinct blobs merged")
	}
}

func TestLocalVarianceFlatVsEdge(t *testing.T) {
	flat := constGray(12, 12, 128)
	v := LocalVariance(flat, 2)
	for _, x := range v.Pix {
		if x > 1e-9 {
			t.Fatalf("flat image has variance %g", x)
		}
	}
	// a hard edge has large variance at the boundary
	edge := raster.NewGray(12, 12)
	for y := 0; y < 12; y++ {
		for x := 6; x < 12; x++ {
			edge.Set(x, y, 250)
		}
	}
	ve := LocalVariance(edge, 2)
	if ve.At(6, 6) < 100 {
		t.Fatalf("edge variance %g too small", ve.At(6, 6))
	}
}

func TestBoxMeanFloatMatchesDirect(t *testing.T) {
	rng := noise.NewRNG(31, 1)
	f := raster.NewFloat(10, 7)
	for i := range f.Pix {
		f.Pix[i] = rng.Float64() * 100
	}
	radius := 2
	got := BoxMeanFloat(f, radius)
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			sum, n := 0.0, 0.0
			x0, x1 := clampIdx(x-radius, f.W), clampIdx(x+radius, f.W)
			y0, y1 := clampIdx(y-radius, f.H), clampIdx(y+radius, f.H)
			for yy := y0; yy <= y1; yy++ {
				for xx := x0; xx <= x1; xx++ {
					sum += f.At(xx, yy)
					n++
				}
			}
			want := sum / n
			if math.Abs(got.At(x, y)-want) > 1e-9 {
				t.Fatalf("(%d,%d): got %g want %g", x, y, got.At(x, y), want)
			}
		}
	}
}
