package serve

import (
	"sync"
	"time"
)

// BreakerState is one of the three circuit-breaker states.
type BreakerState uint8

const (
	// BreakerClosed: the node is healthy; requests flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the failure detector tripped; no requests are sent
	// until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed and exactly one trial
	// request is probing the node; everything else routes around it
	// until the trial reports back.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

const (
	// breakerAlpha is the EWMA weight of one health observation. 0.5
	// means a single hard failure from a healthy baseline (score 0 →
	// 0.5) trips the breaker, matching the old binary mark-down for
	// clean kills, while a node that merely flakes (isolated failures
	// between successes) decays back under the threshold instead of
	// flapping up and down.
	breakerAlpha = 0.5
	// breakerTrip is the EWMA failure score that opens the breaker.
	breakerTrip = 0.45
)

// Breaker is a per-node circuit breaker with an EWMA failure detector —
// the replacement for the coordinator's old binary up/down flag. State
// machine: Closed → (EWMA failure score trips) → Open → (cooldown
// elapses) → HalfOpen with exactly one trial request → Closed on trial
// success / Open again on trial failure. Any recorded success fully
// closes the breaker (a live answer is definitive evidence), so recovery
// latency is one successful probe, exactly as the old flag behaved.
//
// The clock is injectable for deterministic tests and the simtime load
// driver. All methods are safe for concurrent use.
type Breaker struct {
	mu       sync.Mutex
	now      func() time.Time
	cooldown time.Duration

	state    BreakerState
	score    float64 // EWMA failure score in [0,1]
	openedAt time.Time
	probing  bool // the single half-open trial slot is claimed
}

// NewBreaker builds a closed breaker. cooldown <= 0 selects 1s; now ==
// nil selects time.Now.
func NewBreaker(cooldown time.Duration, now func() time.Time) *Breaker {
	if cooldown <= 0 {
		cooldown = time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{now: now, cooldown: cooldown}
}

// State reports the current state (Open is reported even after the
// cooldown has elapsed; the transition to HalfOpen happens when a trial
// is claimed via TryProbe).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Score reports the EWMA failure score.
func (b *Breaker) Score() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.score
}

// Available reports whether the routing layer should consider the node
// at all: closed, or open-past-cooldown (a probe could be claimed), or
// half-open with the trial slot free. It never mutates state, so it is
// safe to call once per tile while grouping.
func (b *Breaker) Available() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		return b.now().Sub(b.openedAt) >= b.cooldown
	case BreakerHalfOpen:
		return !b.probing
	}
	return false
}

// TryProbe claims the right to actually send a request to the node. In
// Closed state it always succeeds (no slot needed). In Open state past
// the cooldown it transitions to HalfOpen and claims the single trial
// slot; in HalfOpen it succeeds only if the slot is free. Callers that
// get true in a non-closed state MUST call Record with the trial's
// outcome to release the slot.
func (b *Breaker) TryProbe() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Record feeds one request or health-probe outcome into the detector.
// Success closes the breaker from any state and decays the score;
// failure raises the score, trips Closed → Open past the threshold, and
// sends a failed half-open trial straight back to Open for another
// cooldown.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		b.score *= 1 - breakerAlpha
		b.state = BreakerClosed
		b.probing = false
		return
	}
	b.score += breakerAlpha * (1 - b.score)
	switch b.state {
	case BreakerClosed:
		if b.score >= breakerTrip {
			b.state = BreakerOpen
			b.openedAt = b.now()
		}
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.probing = false
	}
}

// Release frees a trial slot claimed by TryProbe without recording a
// verdict — for attempts that were cancelled (a hedge loser says nothing
// about the node's health). A no-op when no slot is held.
func (b *Breaker) Release() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// TokenBucket is the retry budget shared by reroutes and hedges: each
// recovery action spends one token, and tokens refill at a bounded rate
// — so a mass failure degrades service instead of amplifying load with
// unbounded retries (retry storms are how overload turns into outage).
type TokenBucket struct {
	mu     sync.Mutex
	now    func() time.Time
	tokens float64
	max    float64
	perSec float64
	last   time.Time
}

// NewTokenBucket builds a full bucket holding max tokens refilled at
// perSec tokens per second. now == nil selects time.Now.
func NewTokenBucket(max, perSec float64, now func() time.Time) *TokenBucket {
	if now == nil {
		now = time.Now
	}
	return &TokenBucket{now: now, tokens: max, max: max, perSec: perSec, last: now()}
}

// Take spends one token, reporting whether one was available.
func (t *TokenBucket) Take() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.refill()
	if t.tokens < 1 {
		return false
	}
	t.tokens--
	return true
}

// Tokens reports the current balance.
func (t *TokenBucket) Tokens() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.refill()
	return t.tokens
}

// refill credits elapsed time. Callers hold t.mu.
func (t *TokenBucket) refill() {
	now := t.now()
	if dt := now.Sub(t.last).Seconds(); dt > 0 {
		t.tokens += dt * t.perSec
		if t.tokens > t.max {
			t.tokens = t.max
		}
	}
	t.last = now
}
