package cloudfilter

import (
	"testing"

	"seaice/internal/autolabel"

	"seaice/internal/metrics"
	"seaice/internal/raster"
	"seaice/internal/scene"
)

// accuracyOf labels an image and scores it against ground truth.
func accuracyOf(t *testing.T, img *raster.RGB, truth *raster.Labels) float64 {
	t.Helper()
	lab, err := autolabel.LabelPaper(img)
	if err != nil {
		t.Fatalf("autolabel: %v", err)
	}
	acc, err := metrics.PixelAccuracy(truth, lab)
	if err != nil {
		t.Fatalf("accuracy: %v", err)
	}
	return acc
}

// TestFilterRecoversAutolabelAccuracy is the core calibration check of the
// whole reproduction: on a cloudy scene, auto-labeling the original image
// must be substantially degraded, and auto-labeling the filtered image
// must recover to near-clean quality — the paper's §IV-B2 result (SSIM
// 89% original vs 99.64% filtered).
func TestFilterRecoversAutolabelAccuracy(t *testing.T) {
	cfg := scene.DefaultConfig(42)
	cfg.W, cfg.H = 512, 512
	sc, err := scene.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if sc.CloudFraction < 0.05 {
		t.Fatalf("calibration scene should be cloudy, got fraction %.3f", sc.CloudFraction)
	}

	cleanAcc := accuracyOf(t, sc.Clean, sc.Truth)
	origAcc := accuracyOf(t, sc.Image, sc.Truth)
	res := FilterDefault(sc.Image)
	filtAcc := accuracyOf(t, res.Image, sc.Truth)

	t.Logf("cloud fraction %.3f | autolabel accuracy: clean %.4f original %.4f filtered %.4f",
		sc.CloudFraction, cleanAcc, origAcc, filtAcc)

	if cleanAcc < 0.97 {
		t.Errorf("clean-sky autolabel accuracy %.4f below 0.97 — renderer bands and thresholds disagree", cleanAcc)
	}
	if origAcc > cleanAcc-0.02 {
		t.Errorf("cloudy autolabel accuracy %.4f not degraded vs clean %.4f — clouds too weak", origAcc, cleanAcc)
	}
	if filtAcc < origAcc+0.02 {
		t.Errorf("filter did not recover accuracy: original %.4f filtered %.4f", origAcc, filtAcc)
	}
	if filtAcc < 0.93 {
		t.Errorf("filtered autolabel accuracy %.4f below 0.93", filtAcc)
	}
}

// TestFilterLeavesClearScenesAlone verifies the filter is close to the
// identity on cloud-free imagery: labels derived before and after must
// agree almost everywhere.
func TestFilterLeavesClearScenesAlone(t *testing.T) {
	cfg := scene.DefaultConfig(7)
	cfg.W, cfg.H = 512, 512
	cfg.Clouds = scene.ClearClouds()
	sc, err := scene.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if sc.CloudFraction != 0 {
		t.Fatalf("clear scene has cloud fraction %.3f", sc.CloudFraction)
	}

	origAcc := accuracyOf(t, sc.Image, sc.Truth)
	res := FilterDefault(sc.Image)
	filtAcc := accuracyOf(t, res.Image, sc.Truth)

	t.Logf("clear scene: original %.4f filtered %.4f", origAcc, filtAcc)
	if filtAcc < origAcc-0.01 {
		t.Errorf("filter damaged a clear scene: %.4f -> %.4f", origAcc, filtAcc)
	}
}

// TestAutolabelSSIMvsManual reproduces the paper's §IV-B2 measurement:
// SSIM of the rendered auto-label map against the rendered manual labels,
// for original imagery (paper: 89%) versus thin-cloud/shadow-filtered
// imagery (paper: 99.64%). The filtered labels must be far more similar.
func TestAutolabelSSIMvsManual(t *testing.T) {
	cfg := scene.DefaultConfig(123)
	cfg.W, cfg.H = 512, 512
	sc, err := scene.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	res := FilterDefault(sc.Image)

	manual := sc.Truth.Render()
	labOrig, err := autolabel.LabelPaper(sc.Image)
	if err != nil {
		t.Fatalf("autolabel: %v", err)
	}
	labFilt, err := autolabel.LabelPaper(res.Image)
	if err != nil {
		t.Fatalf("autolabel: %v", err)
	}

	ssimOrig, err := metrics.SSIMRGB(manual, labOrig.Render())
	if err != nil {
		t.Fatalf("ssim: %v", err)
	}
	ssimFilt, err := metrics.SSIMRGB(manual, labFilt.Render())
	if err != nil {
		t.Fatalf("ssim: %v", err)
	}
	t.Logf("auto-label SSIM vs manual: original %.4f filtered %.4f (paper: 0.89 vs 0.9964)", ssimOrig, ssimFilt)
	if ssimFilt <= ssimOrig+0.02 {
		t.Errorf("filtered auto-labels not substantially closer to manual: %.4f vs %.4f", ssimFilt, ssimOrig)
	}
	if ssimFilt < 0.90 {
		t.Errorf("filtered auto-label SSIM %.4f below 0.90", ssimFilt)
	}
}
