package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// DefaultTimeout bounds every blocking network operation (dial total,
// accept, frame read/write) when Config.Timeout is unset. A peer that
// stays silent longer is treated as failed — the network analogue of the
// in-process ring's membership check.
const DefaultTimeout = 5 * time.Second

// Conn is one framed, deadline-guarded ring link. Writes are buffered
// (one flush per frame) so a collective hop costs one syscall, not three.
type Conn struct {
	nc      net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	timeout time.Duration

	mu     sync.Mutex
	closed bool
}

// newConn wraps an established socket.
func newConn(nc net.Conn, timeout time.Duration) *Conn {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		// Collective hops are latency-bound small frames; never batch them.
		tc.SetNoDelay(true)
	}
	return &Conn{
		nc:      nc,
		br:      bufio.NewReaderSize(nc, 64<<10),
		bw:      bufio.NewWriterSize(nc, 64<<10),
		timeout: timeout,
	}
}

// WriteFrame sends one frame under the write deadline and flushes it.
func (c *Conn) WriteFrame(tag byte, payload []byte) error {
	if err := c.nc.SetWriteDeadline(time.Now().Add(c.timeout)); err != nil {
		return err
	}
	if err := WriteFrame(c.bw, tag, payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// writeRaw sends pre-encoded frame bytes under the write deadline and
// flushes them. It exists for the bitflip fault injector, which must
// corrupt a frame *after* its CRC trailer is computed — exactly what a
// wire-level bit error looks like to the receiver.
func (c *Conn) writeRaw(b []byte) error {
	if err := c.nc.SetWriteDeadline(time.Now().Add(c.timeout)); err != nil {
		return err
	}
	if _, err := c.bw.Write(b); err != nil {
		return err
	}
	return c.bw.Flush()
}

// ReadFrame receives one frame under the read deadline.
func (c *Conn) ReadFrame() (Frame, error) {
	if err := c.nc.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
		return Frame{}, err
	}
	return ReadFrame(c.br)
}

// Close shuts the link; safe to call concurrently and repeatedly (the
// fault injector closes links out from under in-flight collectives).
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.nc.Close()
}

// DialRetry dials addr until it succeeds or the deadline budget runs
// out, backing off 10ms→320ms between attempts. Rendezvous needs this:
// peers start in arbitrary order, and after a fault both sides of a link
// re-establish concurrently, so the first dials race the peer's listener
// coming (back) up.
func DialRetry(addr string, timeout time.Duration) (net.Conn, error) {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	deadline := time.Now().Add(timeout)
	backoff := 10 * time.Millisecond
	var lastErr error
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, fmt.Errorf("transport: dial %s: deadline after %v: %w", addr, timeout, lastErr)
		}
		nc, err := net.DialTimeout("tcp", addr, remain)
		if err == nil {
			return nc, nil
		}
		lastErr = err
		time.Sleep(backoff)
		if backoff < 320*time.Millisecond {
			backoff *= 2
		}
	}
}
