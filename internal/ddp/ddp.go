// Package ddp is the Horovod analogue: synchronous data-parallel U-Net
// training across N workers with ring all-reduce gradient averaging
// (§III-C1). Each worker is a goroutine owning a full model replica — the
// stand-in for one GPU of the paper's DGX A100 — and every step follows
// Horovod's protocol:
//
//  1. rank 0 broadcasts initial weights (BroadcastGlobalVariables),
//  2. each rank computes gradients on its shard of the global batch,
//  3. gradients are averaged with the bandwidth-optimal ring all-reduce,
//  4. every rank applies an identical Adam update, keeping replicas
//     bit-synchronized.
//
// Because this host has a single core, the *wall-clock* speedup of real
// goroutines is ~1×; Table III's timing is therefore reported through the
// calibrated perfmodel.Horovod virtual clock, while the gradient math is
// real and the equivalence theorem "K-worker DDP step == single-model
// step on the merged batch" is verified in the tests.
//
// The trainer consumes materialized sample sets (each rank needs random
// access to its shard of every global batch); streaming callers
// materialize via pipeline.Stream.TrainSamples, which still overlaps
// labeling with scene generation upstream.
//
// The trainer is generic over the compute precision: float64 replicas
// reproduce the reference engine bit-for-bit, float32 replicas halve
// every ring hop's wire bytes and may enable float64 master weights
// (Config.MasterWeights) for mixed-precision stability; either
// instantiation is bit-deterministic across runs and worker counts.
package ddp

import (
	"fmt"
	"sync"
	"time"

	"seaice/internal/nn"
	"seaice/internal/perfmodel"
	"seaice/internal/ring"
	"seaice/internal/tensor"
	"seaice/internal/train"
	"seaice/internal/unet"
)

// Config controls a distributed training run.
type Config struct {
	// Workers is the number of simulated GPUs (the paper sweeps
	// 1,2,4,6,8).
	Workers int
	// BatchPerWorker is the per-GPU batch size (paper: 32 per node).
	BatchPerWorker int
	Epochs         int
	LR             float64
	Seed           uint64
	// MasterWeights keeps float64 master copies of the weights in each
	// rank's Adam — the mixed-precision recipe for float32 replicas; it
	// has no effect on float64 replicas.
	MasterWeights bool
	// Timing supplies the virtual clock for reported epoch times; the
	// zero value disables virtual timing.
	Timing perfmodel.Horovod
	// Progress, if non-nil, receives per-epoch mean loss.
	Progress func(epoch int, loss float64)
}

// EpochStat records one epoch's timing and loss.
type EpochStat struct {
	Loss           float64
	VirtualSeconds float64
	RealSeconds    float64
}

// Result summarizes the run.
type Result struct {
	Epochs       []EpochStat
	VirtualTotal float64
	RealTotal    float64
	// Throughput is images/second against the virtual clock (the
	// paper's "Data/s" column).
	Throughput float64
}

// Trainer owns the worker replicas, generic over the compute precision
// of the replicas and the reduced gradient vectors (float32 halves the
// bytes every ring hop moves).
type Trainer[S tensor.Scalar] struct {
	cfg      Config
	replicas []*unet.Model[S]
	opts     []*nn.Adam[S]
	// flat holds one contiguous gradient vector per replica, reused
	// across steps: packing every parameter into one buffer lets the
	// all-reduce run as a single chunked, pipelined operation instead of
	// one serial ring per parameter.
	flat [][]S
}

// New builds a trainer whose rank-0 replica is initialized from the model
// configuration; ranks 1..N-1 receive rank 0's weights by broadcast.
func New[S tensor.Scalar](modelCfg unet.Config, cfg Config) (*Trainer[S], error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("ddp: workers %d", cfg.Workers)
	}
	if cfg.BatchPerWorker <= 0 || cfg.Epochs <= 0 {
		return nil, fmt.Errorf("ddp: invalid batch %d or epochs %d", cfg.BatchPerWorker, cfg.Epochs)
	}
	t := &Trainer[S]{cfg: cfg}
	for r := 0; r < cfg.Workers; r++ {
		mc := modelCfg
		// Distinct dropout streams per rank; weights are broadcast
		// from rank 0 below, so only regularization noise differs.
		mc.Seed = modelCfg.Seed + uint64(r)*0x9e37
		m, err := unet.New[S](mc)
		if err != nil {
			return nil, err
		}
		t.replicas = append(t.replicas, m)
		opt := nn.NewAdam[S](cfg.LR)
		opt.Master = cfg.MasterWeights
		t.opts = append(t.opts, opt)
	}
	for r := 1; r < cfg.Workers; r++ {
		if err := t.replicas[r].CopyWeightsFrom(t.replicas[0]); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Replica exposes a rank's model (rank 0 is the canonical result).
func (t *Trainer[S]) Replica(rank int) *unet.Model[S] { return t.replicas[rank] }

// Step runs one synchronous data-parallel step: shards[r] is rank r's
// mini-batch. It returns the mean loss across ranks.
func (t *Trainer[S]) Step(shards [][]train.Sample) (float64, error) {
	p := len(t.replicas)
	if len(shards) != p {
		return 0, fmt.Errorf("ddp: %d shards for %d workers", len(shards), p)
	}

	// Each replica goroutine fans its kernels out on the shared pool, so
	// a step can enqueue up to Workers × pool-size compute goroutines.
	// Go caps running threads at GOMAXPROCS, so this nesting costs only
	// scheduler queuing, and it keeps all cores busy both when replicas
	// outnumber cores and when cores outnumber replicas.
	losses := make([]float64, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for r := 0; r < p; r++ {
		go func(rank int) {
			defer wg.Done()
			m := t.replicas[rank]
			nn.ZeroGrads(m.Params())
			if len(shards[rank]) == 0 {
				return // rank idles this step; contributes zero grads
			}
			x, labels, err := train.ToTensor[S](shards[rank])
			if err != nil {
				errs[rank] = err
				return
			}
			losses[rank], errs[rank] = m.LossAndGrad(x, labels)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}

	// Flatten every parameter gradient into one contiguous vector per
	// replica and average them with a single chunked, concurrent ring
	// all-reduce — early chunks travel the ring while later chunks queue,
	// which is the communication/communication overlap Horovod gets from
	// its fusion buffer.
	params := make([][]*nn.Param[S], p)
	for r := 0; r < p; r++ {
		params[r] = t.replicas[r].Params()
	}
	flatLen := 0
	for _, prm := range params[0] {
		flatLen += prm.Grad.Len()
	}
	if t.flat == nil {
		t.flat = make([][]S, p)
	}
	for r := 0; r < p; r++ {
		if cap(t.flat[r]) < flatLen {
			t.flat[r] = make([]S, flatLen)
		}
		t.flat[r] = t.flat[r][:flatLen]
		off := 0
		for _, prm := range params[r] {
			off += copy(t.flat[r][off:], prm.Grad.Data)
		}
	}
	if err := ring.AllReduceMeanChunked(t.flat, ring.DefaultChunk); err != nil {
		return 0, err
	}
	for r := 0; r < p; r++ {
		off := 0
		for _, prm := range params[r] {
			off += copy(prm.Grad.Data, t.flat[r][off:off+prm.Grad.Len()])
		}
	}

	// Identical optimizer updates keep replicas synchronized; ranks are
	// independent here, so they update concurrently.
	wg.Add(p)
	for r := 0; r < p; r++ {
		go func(rank int) {
			defer wg.Done()
			t.opts[rank].Step(params[rank])
		}(r)
	}
	wg.Wait()

	total := 0.0
	for _, l := range losses {
		total += l
	}
	return total / float64(p), nil
}

// Fit trains for the configured epochs over the dataset, sharding each
// global batch of Workers×BatchPerWorker samples across ranks.
func (t *Trainer[S]) Fit(samples []train.Sample) (*Result, error) {
	globalBatch := t.cfg.Workers * t.cfg.BatchPerWorker
	batcher, err := train.NewBatcher(samples, globalBatch, t.cfg.Seed)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for epoch := 0; epoch < t.cfg.Epochs; epoch++ {
		start := time.Now()
		totalLoss, nSteps := 0.0, 0
		for _, batch := range batcher.Epoch(epoch) {
			shards := shard(batch, t.cfg.Workers)
			loss, err := t.Step(shards)
			if err != nil {
				return nil, err
			}
			totalLoss += loss
			nSteps++
		}
		stat := EpochStat{
			Loss:        totalLoss / float64(nSteps),
			RealSeconds: time.Since(start).Seconds(),
		}
		if t.cfg.Timing.Compute > 0 {
			stat.VirtualSeconds = t.cfg.Timing.EpochTime(t.cfg.Workers)
		}
		res.Epochs = append(res.Epochs, stat)
		res.RealTotal += stat.RealSeconds
		res.VirtualTotal += stat.VirtualSeconds
		if t.cfg.Progress != nil {
			t.cfg.Progress(epoch, stat.Loss)
		}
	}
	if res.VirtualTotal > 0 {
		res.Throughput = float64(len(samples)*t.cfg.Epochs) / res.VirtualTotal
	}
	return res, nil
}

// shard splits a batch round-robin across ranks; with batch =
// Workers×BatchPerWorker every rank gets exactly BatchPerWorker samples.
func shard(batch []train.Sample, workers int) [][]train.Sample {
	out := make([][]train.Sample, workers)
	for i, s := range batch {
		r := i % workers
		out[r] = append(out[r], s)
	}
	return out
}
