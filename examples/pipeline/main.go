// Pipeline: the full Ross Sea workflow end to end at demonstration scale —
// scene campaign → filter → auto-label → train U-Net-Man and U-Net-Auto →
// validate both on manual labels (the paper's Table IV comparison) → run
// scene-level inference with the trained model (Fig 9).
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"seaice/internal/core"
	"seaice/internal/dataset"
	"seaice/internal/metrics"
	"seaice/internal/scene"
)

func main() {
	log.SetFlags(0)

	cfg := core.QuickAccuracyConfig(42)
	cfg.Progress = func(stage string) { log.Printf("» %s", stage) }

	res, err := core.RunAccuracy(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(core.Table4Report(res))
	fmt.Println(core.Table5Report(res))
	fmt.Println(core.SSIMReport(res))

	// Scene-level inference with the auto-label-trained model.
	sceneCfg := scene.DefaultConfig(4242)
	sceneCfg.W, sceneCfg.H = 256, 256
	sc, err := scene.Generate(sceneCfg)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := core.Inference(res.UNetAuto, sc.Image, cfg.Build.TileSize, dataset.DefaultBuild())
	if err != nil {
		log.Fatal(err)
	}
	acc, err := metrics.PixelAccuracy(sc.Truth, pred)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scene-level inference (U-Net-Auto, unseen %.0f%%-cloudy scene): %.2f%% accuracy\n",
		100*sc.CloudFraction, 100*acc)
}
