package labeler

import (
	"fmt"
	"math"

	"seaice/internal/pool"
	"seaice/internal/raster"
	"seaice/internal/tensor"
)

// GMM labels by fitting a K-component Gaussian mixture with diagonal
// covariances to the per-pixel band vectors via EM, then assigning each
// pixel its maximum-posterior component; components map to classes by
// mean brightness.
//
// The E-step routes through the tensor GEMM engine: for diagonal
// covariances the component log-densities decompose as
//
//	log N(x|μ_k, σ²_k) = Σ_d x²_d·A[d,k] + Σ_d x_d·B[d,k] + c_k
//	A[d,k] = −1/(2σ²_{k,d})   B[d,k] = μ_{k,d}/σ²_{k,d}
//
// so one EM iteration is two (n×3)·(3×K) matrix products — X²·A and
// X·B — evaluated by tensor.MatMulInto, whose output is bit-identical
// at any worker count. The responsibility sums of the M-step accumulate
// fixed-size chunk partials reduced in chunk order, so the whole fit —
// and therefore the label map — is byte-identical on any pool.
type GMM struct {
	// K is the component count; 0 selects 3, one per class.
	K int
	// Seed drives the deterministic RNG of the K-means initialization.
	Seed uint64
	// Iters is the number of EM iterations; 0 selects 15.
	Iters int
}

// gmmDefaults resolves zero fields to their defaults.
func (g GMM) gmmDefaults() GMM {
	if g.K == 0 {
		g.K = 3
	}
	if g.Iters == 0 {
		g.Iters = 15
	}
	return g
}

// Name implements Labeler.
func (g GMM) Name() string { return fmt.Sprintf("gmm:%d", g.gmmDefaults().K) }

// sigmaFloor keeps variances strictly positive: a component collapsing
// onto identical pixels would otherwise drive its density to a delta.
const sigmaFloor = 1e-6

// gmmPartial holds one pixel chunk's contribution to the M-step sums.
type gmmPartial struct {
	n      []float64 // Σ_i r_ik                 (len K)
	sum    []float64 // Σ_i r_ik·x_id            (len K*3)
	sumSq  []float64 // Σ_i r_ik·x²_id           (len K*3)
	loglik float64   // Σ_i log Σ_k π_k N(x_i|k)
}

// Label implements Labeler.
func (g GMM) Label(img *raster.RGB) (*raster.Labels, error) {
	n := img.W * img.H
	if n == 0 {
		return nil, fmt.Errorf("labeler: gmm on empty %dx%d image", img.W, img.H)
	}
	g = g.gmmDefaults()
	if g.K < 1 || g.K > 256 {
		return nil, fmt.Errorf("labeler: gmm component count %d outside [1,256]", g.K)
	}
	kk := g.K

	// Feature matrices shared by every iteration: X holds the band
	// vectors, Xsq their elementwise squares.
	X := tensor.New[float64](n, 3)
	Xsq := tensor.New[float64](n, 3)
	if err := pool.Shared().Map(chunks(n), func(ci int) error {
		lo, hi := chunkBounds(n, ci)
		for i := lo; i < hi; i++ {
			v := bandVec(img, i)
			for d := 0; d < 3; d++ {
				X.Data[3*i+d] = v[d]
				Xsq.Data[3*i+d] = v[d] * v[d]
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Initialization: means from a short deterministic K-means fit,
	// uniform weights, and per-dimension global variance — all serial or
	// reused from the K-means recurrence, so the starting point is
	// scheduling-independent.
	mu := KMeans{K: kk, Seed: g.Seed, Iters: 20}.kmeansDefaults().fit(img)
	sigma2 := make([][3]float64, kk)
	globalVar := bandVariance(X.Data, n)
	for c := range sigma2 {
		sigma2[c] = globalVar
	}
	pi := make([]float64, kk)
	for c := range pi {
		pi[c] = 1 / float64(kk)
	}

	// Per-iteration work areas. G1/G2 hold the two GEMM outputs; the
	// partials are indexed by fixed chunk and reduced in chunk order.
	A := tensor.New[float64](3, kk)
	B := tensor.New[float64](3, kk)
	ck := make([]float64, kk)
	G1 := tensor.New[float64](n, kk)
	G2 := tensor.New[float64](n, kk)
	nc := chunks(n)
	partials := make([]gmmPartial, nc)
	for ci := range partials {
		partials[ci] = gmmPartial{
			n:     make([]float64, kk),
			sum:   make([]float64, kk*3),
			sumSq: make([]float64, kk*3),
		}
	}

	for iter := 0; iter < g.Iters; iter++ {
		g.fillCoeffs(A, B, ck, mu, sigma2, pi)
		tensor.MatMulInto(G1, Xsq, A)
		tensor.MatMulInto(G2, X, B)

		// E-step responsibilities + M-step partial sums, one fixed
		// chunk per task.
		if err := pool.Shared().Map(nc, func(ci int) error {
			p := &partials[ci]
			for c := range p.n {
				p.n[c] = 0
			}
			for c := range p.sum {
				p.sum[c] = 0
				p.sumSq[c] = 0
			}
			p.loglik = 0
			resp := make([]float64, kk)
			lo, hi := chunkBounds(n, ci)
			for i := lo; i < hi; i++ {
				lse := respRow(resp, G1.Data[i*kk:(i+1)*kk], G2.Data[i*kk:(i+1)*kk], ck)
				p.loglik += lse
				for c := 0; c < kk; c++ {
					r := resp[c]
					p.n[c] += r
					for d := 0; d < 3; d++ {
						p.sum[c*3+d] += r * X.Data[3*i+d]
						p.sumSq[c*3+d] += r * Xsq.Data[3*i+d]
					}
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}

		// Chunk-ordered reduction, then the closed-form M-step update.
		Nk := make([]float64, kk)
		sum := make([]float64, kk*3)
		sumSq := make([]float64, kk*3)
		for ci := range partials {
			for c := 0; c < kk; c++ {
				Nk[c] += partials[ci].n[c]
			}
			for j := range sum {
				sum[j] += partials[ci].sum[j]
				sumSq[j] += partials[ci].sumSq[j]
			}
		}
		for c := 0; c < kk; c++ {
			if Nk[c] < 1e-9 {
				// Starved component: keep its parameters rather than
				// dividing by ~0; it simply stops claiming pixels.
				continue
			}
			pi[c] = Nk[c] / float64(n)
			for d := 0; d < 3; d++ {
				m := sum[c*3+d] / Nk[c]
				mu[c][d] = m
				v := sumSq[c*3+d]/Nk[c] - m*m
				if v < sigmaFloor {
					v = sigmaFloor
				}
				sigma2[c][d] = v
			}
		}
	}

	// Final assignment: maximum-posterior component per pixel (ties to
	// the lowest index), folded to classes by component mean brightness.
	g.fillCoeffs(A, B, ck, mu, sigma2, pi)
	tensor.MatMulInto(G1, Xsq, A)
	tensor.MatMulInto(G2, X, B)
	classes := make([]raster.Class, kk)
	for c := range classes {
		classes[c] = classOfCenter(mu[c])
	}
	out := raster.NewLabels(img.W, img.H)
	if err := pool.Shared().Map(nc, func(ci int) error {
		lo, hi := chunkBounds(n, ci)
		for i := lo; i < hi; i++ {
			g1 := G1.Data[i*kk : (i+1)*kk]
			g2 := G2.Data[i*kk : (i+1)*kk]
			best, bestL := 0, math.Inf(-1)
			for c := 0; c < kk; c++ {
				if l := g1[c] + g2[c] + ck[c]; l > bestL {
					best, bestL = c, l
				}
			}
			out.Pix[i] = classes[best]
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// fillCoeffs packs the current parameters into the GEMM operands: A and
// B are the 3×K quadratic and linear coefficient matrices of the
// diagonal-Gaussian log-density, ck the per-component constant including
// the mixing weight, so that log π_k N(x|k) = (x²·A + x·B)[k] + ck[k].
func (g GMM) fillCoeffs(A, B *tensor.Tensor[float64], ck []float64, mu, sigma2 [][3]float64, pi []float64) {
	kk := len(ck)
	for c := 0; c < kk; c++ {
		ck[c] = math.Log(pi[c])
		for d := 0; d < 3; d++ {
			s2 := sigma2[c][d]
			A.Data[d*kk+c] = -0.5 / s2
			B.Data[d*kk+c] = mu[c][d] / s2
			ck[c] += -0.5*math.Log(2*math.Pi*s2) - 0.5*mu[c][d]*mu[c][d]/s2
		}
	}
}

// respRow turns one pixel's GEMM outputs into normalized
// responsibilities via a log-sum-exp, returning the pixel's
// log-likelihood contribution.
func respRow(resp, g1, g2, ck []float64) float64 {
	m := math.Inf(-1)
	for c := range resp {
		resp[c] = g1[c] + g2[c] + ck[c]
		if resp[c] > m {
			m = resp[c]
		}
	}
	var z float64
	for c := range resp {
		resp[c] = math.Exp(resp[c] - m)
		z += resp[c]
	}
	for c := range resp {
		resp[c] /= z
	}
	return m + math.Log(z)
}

// bandVariance returns the per-dimension variance of the n band vectors
// in x (row-major n×3), computed serially — 3n flops, far below any
// parallel threshold — so initialization is trivially deterministic.
func bandVariance(x []float64, n int) [3]float64 {
	var mean, sq [3]float64
	for i := 0; i < n; i++ {
		for d := 0; d < 3; d++ {
			mean[d] += x[3*i+d]
			sq[d] += x[3*i+d] * x[3*i+d]
		}
	}
	var out [3]float64
	for d := 0; d < 3; d++ {
		m := mean[d] / float64(n)
		v := sq[d]/float64(n) - m*m
		if v < sigmaFloor {
			v = sigmaFloor
		}
		out[d] = v
	}
	return out
}
