package perfmodel

import (
	"math"
	"testing"
)

// within reports |got-want| <= tol·want.
func within(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*math.Abs(want)
}

// TestWorkstationReproducesTable1: the SMT model must land within 3% of
// every published Table I speedup.
func TestWorkstationReproducesTable1(t *testing.T) {
	m := PaperWorkstation()
	paper := map[int]float64{1: 1.0, 2: 2.0, 4: 3.7, 6: 4.2, 8: 4.5}
	for n, want := range paper {
		got := m.Speedup(n)
		if !within(got, want, 0.03) {
			t.Errorf("speedup(%d) = %.3f, paper %.1f", n, got, want)
		}
	}
	// Time scales inversely with speedup.
	if !within(m.Time(17.40, 8), 17.40/m.Speedup(8), 1e-12) {
		t.Error("Time inconsistent with Speedup")
	}
}

func TestSMTMachineMonotone(t *testing.T) {
	m := PaperWorkstation()
	prev := 0.0
	for n := 1; n <= 16; n++ {
		s := m.Speedup(n)
		if s < prev {
			t.Fatalf("speedup not monotone at %d: %f < %f", n, s, prev)
		}
		prev = s
	}
	if m.EffectiveCores(0) != 0 {
		t.Fatal("zero processes must yield zero throughput")
	}
}

// TestLoadStageReproducesTable2: every Table II load cell within 10%.
func TestLoadStageReproducesTable2(t *testing.T) {
	s := PaperLoadStage()
	cells := []struct {
		e, c int
		want float64
	}{
		{1, 1, 108}, {1, 2, 58}, {1, 4, 33},
		{2, 1, 56}, {2, 2, 31}, {2, 4, 19},
		{4, 1, 31}, {4, 2, 17}, {4, 4, 12},
	}
	for _, cell := range cells {
		got := s.Time(cell.e, cell.c)
		if !within(got, cell.want, 0.10) {
			t.Errorf("load(%d,%d) = %.1f s, paper %.0f s", cell.e, cell.c, got, cell.want)
		}
	}
	if !within(s.Speedup(4, 4), 9.0, 0.06) {
		t.Errorf("load speedup(4,4) = %.2f, paper 9.0", s.Speedup(4, 4))
	}
}

// TestReduceStageReproducesTable2: every Table II reduce cell within 15%
// (the paper's middle cells carry cloud measurement noise).
func TestReduceStageReproducesTable2(t *testing.T) {
	s := PaperReduceStage()
	cells := []struct {
		e, c int
		want float64
	}{
		{1, 1, 390}, {1, 2, 174}, {1, 4, 72},
		{2, 1, 156}, {2, 2, 84}, {2, 4, 41},
		{4, 1, 78}, {4, 2, 39}, {4, 4, 24},
	}
	for _, cell := range cells {
		got := s.Time(cell.e, cell.c)
		if !within(got, cell.want, 0.15) {
			t.Errorf("reduce(%d,%d) = %.1f s, paper %.0f s", cell.e, cell.c, got, cell.want)
		}
	}
	if !within(s.Speedup(4, 4), 16.25, 0.1) {
		t.Errorf("reduce speedup(4,4) = %.2f, paper 16.25", s.Speedup(4, 4))
	}
}

// TestDGXReproducesTable3: per-epoch times within 4% and speedups within
// 3% of every Table III row.
func TestDGXReproducesTable3(t *testing.T) {
	h := PaperDGX()
	rows := []struct {
		p                 int
		perEpoch, speedup float64
	}{
		{1, 5.61, 1.00}, // paper rounds 280.72/50 to 5.5
		{2, 2.86, 1.96},
		{4, 1.48, 3.79},
		{6, 1.03, 5.44},
		{8, 0.78, 7.21},
	}
	for _, r := range rows {
		if !within(h.EpochTime(r.p), r.perEpoch, 0.04) {
			t.Errorf("epoch(%d) = %.3f s, want ≈%.2f s", r.p, h.EpochTime(r.p), r.perEpoch)
		}
		if !within(h.Speedup(r.p), r.speedup, 0.03) {
			t.Errorf("speedup(%d) = %.3f, paper %.2f", r.p, h.Speedup(r.p), r.speedup)
		}
	}
	// Throughput on 8 GPUs ≈ 4248 img/s for the 3379-tile training set.
	if !within(h.Throughput(8, 3379), 4248.56, 0.05) {
		t.Errorf("throughput(8) = %.1f img/s, paper 4248.56", h.Throughput(8, 3379))
	}
	// Total over 50 epochs ≈ 38.91 s.
	if !within(h.TotalTime(8, 50), 38.91, 0.05) {
		t.Errorf("total(8, 50 epochs) = %.2f s, paper 38.91", h.TotalTime(8, 50))
	}
}

func TestHorovodDegenerateInputs(t *testing.T) {
	h := PaperDGX()
	if h.EpochTime(0) != h.EpochTime(1) {
		t.Fatal("p=0 should clamp to 1")
	}
}

// TestRingBeatsNaiveAtScale: the ring's per-rank volume 2(p-1)/p·n stays
// bounded while the naive root moves 2(p-1)·n — the ring must win for
// large vectors and any p ≥ 3.
func TestRingBeatsNaiveAtScale(t *testing.T) {
	const n = 1 << 20 // 1M values
	const bw = 1e9
	const lat = 1e-6
	for p := 3; p <= 16; p++ {
		ring := RingAllReduceTime(p, n, bw, lat)
		naive := NaiveAllReduceTime(p, n, bw, lat)
		if ring >= naive {
			t.Errorf("p=%d: ring %.6f s not faster than naive %.6f s", p, ring, naive)
		}
	}
	if RingAllReduceTime(1, n, bw, lat) != 0 || NaiveAllReduceTime(1, n, bw, lat) != 0 {
		t.Error("single rank should cost nothing")
	}
}

// TestRingLatencyTradeoff: for tiny vectors and many ranks, latency
// dominates and the ring's 2(p-1) steps make it slower than naive for a
// star with fewer serialized rounds — the classic small-message regime.
func TestRingCostShape(t *testing.T) {
	// Bandwidth term: doubling the vector roughly doubles the time.
	a := RingAllReduceTime(8, 1<<20, 1e9, 0)
	b := RingAllReduceTime(8, 1<<21, 1e9, 0)
	if !within(b, 2*a, 1e-9) {
		t.Errorf("ring bandwidth term not linear: %g vs %g", a, b)
	}
	// Per-rank volume approaches 2n/bw as p grows: time is nearly flat.
	t8 := RingAllReduceTime(8, 1<<20, 1e9, 0)
	t16 := RingAllReduceTime(16, 1<<20, 1e9, 0)
	if math.Abs(t16-t8)/t8 > 0.1 {
		t.Errorf("ring time should be nearly flat in p: %g vs %g", t8, t16)
	}
}

// TestMapTimeConstant: the lazy map's driver cost matches Table II's
// constant 0.2–0.4 s column.
func TestMapTimeConstant(t *testing.T) {
	if PaperMapTime < 0.2 || PaperMapTime > 0.4 {
		t.Fatalf("map time %.2f outside the paper's 0.2–0.4 s column", PaperMapTime)
	}
}
