package mapreduce

import (
	"fmt"
	"time"

	"seaice/internal/cluster"
	"seaice/internal/perfmodel"
	"seaice/internal/pool"
	"seaice/internal/simtime"
)

// StageStats reports how a stage executed.
type StageStats struct {
	// Elapsed is wall-clock seconds: real for LocalRunner, virtual for
	// SimRunner.
	Elapsed float64
	// Items is the total number of elements processed.
	Items int
	// Utilization is busy-time / (slots × span); only SimRunner fills
	// it.
	Utilization float64
	// Virtual marks simulated time.
	Virtual bool
}

// Runner executes the partitions of one stage. work(p) computes partition
// p and returns the number of items it processed.
type Runner interface {
	RunStage(nParts int, work func(p int) (int, error)) (StageStats, error)
}

// LocalRunner executes partitions on real goroutines — the engine's
// correctness baseline, and a real speedup path on multi-core hosts.
type LocalRunner struct {
	Parallelism int // goroutines; <=0 means GOMAXPROCS
}

// RunStage implements Runner.
func (r LocalRunner) RunStage(nParts int, work func(p int) (int, error)) (StageStats, error) {
	counts := make([]int, nParts)
	p := pool.New(r.Parallelism)
	start := time.Now()
	err := p.Map(nParts, func(i int) error {
		n, err := work(i)
		if err != nil {
			return err
		}
		counts[i] = n
		return nil
	})
	stats := StageStats{Elapsed: time.Since(start).Seconds()}
	for _, c := range counts {
		stats.Items += c
	}
	return stats, err
}

// StageCost converts item counts into modeled task durations for the
// simulated cluster. It is the per-task form of perfmodel.SparkStage:
// a task over k items on a cluster with s slots costs
//
//	k · PerItem · (1 + ContentionK/s)
//
// and the stage pays DriverSerial once at the driver.
type StageCost struct {
	DriverSerial float64
	PerItem      float64
	ContentionK  float64
}

// CostFromSparkStage converts the calibrated whole-stage model into a
// per-item cost, given the workload size the model was fitted on.
func CostFromSparkStage(m perfmodel.SparkStage, totalItems int) StageCost {
	if totalItems <= 0 {
		totalItems = 1
	}
	return StageCost{
		DriverSerial: m.Serial,
		PerItem:      m.Work / float64(totalItems),
		ContentionK:  m.Contention,
	}
}

// SimRunner executes partitions as tasks on the simulated Dataproc
// cluster. The partition computations actually run (on this goroutine, at
// task-dispatch virtual times); only the reported Elapsed is virtual.
type SimRunner struct {
	Cluster *cluster.Cluster
	Cost    StageCost
}

// NewSimRunner builds a cluster of the given topology on a fresh virtual
// clock.
func NewSimRunner(executors, cores int, cost StageCost) (*SimRunner, error) {
	cl, err := cluster.New(cluster.Config{Executors: executors, CoresPerExecutor: cores}, &simtime.Clock{})
	if err != nil {
		return nil, err
	}
	return &SimRunner{Cluster: cl, Cost: cost}, nil
}

// RunStage implements Runner. The partitions' real work runs first (the
// host has one core; ordering cannot change the results of pure
// per-partition computations), and the stage is then scheduled on the
// virtual cluster with per-task durations priced from the true item
// counts. Elapsed is the virtual makespan including driver serial time.
func (r *SimRunner) RunStage(nParts int, work func(p int) (int, error)) (StageStats, error) {
	if r.Cluster == nil {
		return StageStats{}, fmt.Errorf("mapreduce: SimRunner has no cluster")
	}
	counts := make([]int, nParts)
	for p := 0; p < nParts; p++ {
		n, err := work(p)
		if err != nil {
			return StageStats{Virtual: true}, err
		}
		counts[p] = n
	}

	slots := r.Cluster.Config().Slots()
	contention := 1 + r.Cost.ContentionK/float64(slots)
	tasks := make([]cluster.Task, nParts)
	items := 0
	for p, c := range counts {
		tasks[p] = cluster.Task{Duration: float64(c) * r.Cost.PerItem * contention}
		items += c
	}
	result := r.Cluster.RunStage(r.Cost.DriverSerial, tasks)
	return StageStats{
		Elapsed:     result.Elapsed,
		Items:       items,
		Utilization: result.Utilization,
		Virtual:     true,
	}, nil
}
