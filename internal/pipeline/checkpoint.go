package pipeline

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"seaice/internal/dataset"
)

// shardCheckpoint is the on-disk record of one completed shard. Key ties
// the record to the exact source content and build configuration, so a
// resume against different data silently falls back to recomputing.
type shardCheckpoint struct {
	Version int
	Key     string
	Scenes  []int
	Tiles   [][]dataset.Tile
}

const checkpointVersion = 2

// shardMagic heads on-disk shard checkpoint files; the trailing byte is
// the format version. Version 2 is the checksummed layout:
//
//	v2 := [magic:13][bodyLen:8 BE][gob body][crc32c(body):4 BE]
//
// The CRC32C (Castagnoli) trailer covers the gob body, so a flipped bit
// anywhere in the cached tiles fails verification at load, and the
// explicit length makes a torn (truncated) write detectable before gob
// ever runs. Loaders treat any verification failure as a cache miss and
// recompute the shard — a corrupt cache must never poison the products.
const shardMagic = "SEAICE-SHARD\x02"

// shardTable is the CRC32C polynomial table for checkpoint checksums.
var shardTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptShard reports a shard checkpoint whose header is valid but
// whose body fails integrity verification — truncation, checksum
// mismatch, or undecodable contents.
var ErrCorruptShard = errors.New("pipeline: corrupt shard checkpoint")

// checkpointKey fingerprints everything a shard's tiles depend on.
func (s *Stream) checkpointKey() string {
	h := sha256.Sum256([]byte(fmt.Sprintf(
		"v%d|%d scenes|%dx%d|tile %d|filter %+v|labeler %s|src %s",
		checkpointVersion, s.n, s.w, s.h, s.cfg.Build.TileSize,
		s.cfg.Build.Filter, s.cfg.Build.LabelerKey(), s.src.Fingerprint(),
	)))
	return fmt.Sprintf("%x", h[:])
}

// shardPath names shard k's checkpoint file.
func (s *Stream) shardPath(k int) string {
	return filepath.Join(s.cfg.CheckpointDir, fmt.Sprintf("shard-%04d.gob", k))
}

// restoreShards loads every matching shard checkpoint and delivers its
// tiles straight to the assembler, bypassing the label and tiling
// stages. It returns the set of scene indices restored. Unreadable,
// corrupt, or mismatched files are treated as cache misses, never as
// errors.
func (s *Stream) restoreShards() map[int]bool {
	restored := make(map[int]bool)
	if s.cfg.CheckpointDir == "" {
		return restored
	}
	key := s.checkpointKey()
	for k := range s.shards {
		cp, err := readShard(s.shardPath(k))
		if err != nil || cp.Version != checkpointVersion || cp.Key != key {
			continue
		}
		if len(cp.Scenes) != len(s.shards[k]) || len(cp.Tiles) != len(s.shards[k]) {
			continue
		}
		ok := true
		for i, idx := range cp.Scenes {
			if idx != s.shards[k][i] || len(cp.Tiles[i]) != s.tilesPerScene {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		s.emit(Event{Kind: "resume", Shard: k, ScenesDone: s.completed()})
		for i, idx := range cp.Scenes {
			restored[idx] = true
			s.deliver(idx, cp.Tiles[i], false)
		}
	}
	return restored
}

// completed reads the global completion count.
func (s *Stream) completed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.doneCount
}

// saveShard persists a completed shard durably: checksummed body, temp
// file fsynced before the atomic rename, directory fsynced after, and
// orphaned temp files from earlier interrupted writes of this shard
// reaped first. Write failures are recorded as the stream's non-fatal
// checkpoint error (CheckpointErr) — a broken disk must not kill a
// compute run that can finish in memory.
func (s *Stream) saveShard(k int) {
	if s.cfg.CheckpointDir == "" {
		return
	}
	cp := shardCheckpoint{
		Version: checkpointVersion,
		Key:     s.checkpointKey(),
		Scenes:  s.shards[k],
	}
	s.mu.Lock()
	for _, idx := range s.shards[k] {
		cp.Tiles = append(cp.Tiles, s.tiles[idx])
	}
	s.mu.Unlock()

	err := func() error {
		if err := os.MkdirAll(s.cfg.CheckpointDir, 0o755); err != nil {
			return err
		}
		// Shards save concurrently, so the temp pattern and the stale-file
		// sweep are both per-shard (the writer is serial per shard).
		pattern := fmt.Sprintf("shard-%04d-*.tmp", k)
		if stale, gerr := filepath.Glob(filepath.Join(s.cfg.CheckpointDir, pattern)); gerr == nil {
			for _, p := range stale {
				os.Remove(p)
			}
		}
		tmp, err := os.CreateTemp(s.cfg.CheckpointDir, pattern)
		if err != nil {
			return err
		}
		defer os.Remove(tmp.Name())
		if err := writeShard(tmp, &cp); err != nil {
			tmp.Close()
			return err
		}
		if s.cfg.Chaos.TornWrite(k) {
			// Injected torn write: truncate mid-body, simulating a crash
			// between write and fsync. The CRC layout makes the next
			// restore detect it and recompute the shard.
			if st, serr := tmp.Stat(); serr == nil {
				tmp.Truncate(st.Size() / 2)
			}
		}
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Close(); err != nil {
			return err
		}
		if err := os.Rename(tmp.Name(), s.shardPath(k)); err != nil {
			return err
		}
		return syncDir(s.cfg.CheckpointDir)
	}()
	if err != nil {
		s.mu.Lock()
		s.cpErr = fmt.Errorf("pipeline: checkpoint shard %d: %w", k, err)
		s.mu.Unlock()
	}
}

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return err
	}
	return nil
}

// CheckpointErr reports the last non-fatal checkpoint write failure, if
// any; the pipeline's data products are unaffected by it.
func (s *Stream) CheckpointErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cpErr
}

// writeShard encodes one checkpoint in the checksummed v2 layout.
func writeShard(w io.Writer, cp *shardCheckpoint) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(cp); err != nil {
		return err
	}
	if _, err := io.WriteString(w, shardMagic); err != nil {
		return err
	}
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(body.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(body.Bytes()); err != nil {
		return err
	}
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.Checksum(body.Bytes(), shardTable))
	_, err := w.Write(crc[:])
	return err
}

// readShard decodes one checkpoint file, verifying the magic header, the
// explicit body length, and the CRC32C trailer before trusting a single
// decoded byte.
func readShard(path string) (*shardCheckpoint, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(shardMagic) || string(raw[:len(shardMagic)]) != shardMagic {
		return nil, fmt.Errorf("%w: missing or unknown header", ErrCorruptShard)
	}
	rest := raw[len(shardMagic):]
	if len(rest) < 8 {
		return nil, fmt.Errorf("%w: truncated length header", ErrCorruptShard)
	}
	n := binary.BigEndian.Uint64(rest[:8])
	if n == 0 || n != uint64(len(rest)-8-4) {
		return nil, fmt.Errorf("%w: body length %d does not match file size (torn write?)", ErrCorruptShard, n)
	}
	body := rest[8 : 8+n]
	want := binary.BigEndian.Uint32(rest[8+n:])
	if got := crc32.Checksum(body, shardTable); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch (got %08x, want %08x)", ErrCorruptShard, got, want)
	}
	var cp shardCheckpoint
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&cp); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptShard, err)
	}
	return &cp, nil
}

// VerifyShardFile scrubs one checkpoint file without loading it into a
// stream: it verifies the checksummed layout end to end and returns the
// scene count and total tile count it holds. Used by the CLI
// -verify-state scrub mode.
func VerifyShardFile(path string) (scenes, tiles int, err error) {
	cp, err := readShard(path)
	if err != nil {
		return 0, 0, err
	}
	if cp.Version != checkpointVersion {
		return 0, 0, fmt.Errorf("%w: version %d (want %d)", ErrCorruptShard, cp.Version, checkpointVersion)
	}
	if len(cp.Scenes) != len(cp.Tiles) {
		return 0, 0, fmt.Errorf("%w: %d scenes but %d tile sets", ErrCorruptShard, len(cp.Scenes), len(cp.Tiles))
	}
	for _, ts := range cp.Tiles {
		tiles += len(ts)
	}
	return len(cp.Scenes), tiles, nil
}
