package noise

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueDeterministic(t *testing.T) {
	a := Value(42, 1.5, 2.5)
	b := Value(42, 1.5, 2.5)
	if a != b {
		t.Fatal("same inputs produced different noise")
	}
	if Value(42, 1.5, 2.5) == Value(43, 1.5, 2.5) {
		t.Fatal("different seeds produced identical noise (suspicious)")
	}
}

func TestValueRange(t *testing.T) {
	f := func(seed uint64, xi, yi int16, fx, fy uint8) bool {
		x := float64(xi) + float64(fx)/256
		y := float64(yi) + float64(fy)/256
		v := Value(seed, x, y)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestValueContinuity: value noise is C¹; nearby samples must be close.
func TestValueContinuity(t *testing.T) {
	const eps = 1e-4
	for i := 0; i < 100; i++ {
		x := float64(i) * 0.37
		y := float64(i) * 0.59
		a := Value(7, x, y)
		b := Value(7, x+eps, y)
		if math.Abs(a-b) > 0.01 {
			t.Fatalf("discontinuity at (%f,%f): %f vs %f", x, y, a, b)
		}
	}
}

func TestValueInterpolatesLattice(t *testing.T) {
	// at integer lattice points, Value returns the lattice hash, and
	// between them it stays within the hull of the corner values
	v00 := Value(3, 10, 20)
	v10 := Value(3, 11, 20)
	mid := Value(3, 10.5, 20)
	lo, hi := math.Min(v00, v10), math.Max(v00, v10)
	// mid blends corners of the row below/above as well, so use the
	// full 4-corner hull
	v01 := Value(3, 10, 21)
	v11 := Value(3, 11, 21)
	lo = math.Min(lo, math.Min(v01, v11))
	hi = math.Max(hi, math.Max(v01, v11))
	if mid < lo-1e-12 || mid > hi+1e-12 {
		t.Fatalf("interpolant %f outside corner hull [%f,%f]", mid, lo, hi)
	}
}

func TestFBMRangeAndOctaves(t *testing.T) {
	f := DefaultFBM(9, 0.05)
	for i := 0; i < 200; i++ {
		v := f.At(float64(i)*1.3, float64(i)*0.7)
		if v < 0 || v >= 1 {
			t.Fatalf("fbm out of range: %f", v)
		}
	}
	// zero octaves treated as one
	z := FBM{Seed: 1, Octaves: 0, Frequency: 0.1, Lacunarity: 2, Persistence: 0.5}
	if v := z.At(3, 4); v < 0 || v >= 1 {
		t.Fatalf("degenerate fbm out of range: %f", v)
	}
}

func TestRidgedRange(t *testing.T) {
	f := DefaultFBM(11, 0.03)
	for i := 0; i < 200; i++ {
		v := f.Ridged(float64(i)*0.9, float64(i)*1.1)
		if v < 0 || v > 1 {
			t.Fatalf("ridged out of range: %f", v)
		}
	}
}

func TestWarpedDiffersFromPlain(t *testing.T) {
	f := DefaultFBM(13, 0.02)
	diff := 0
	for i := 0; i < 50; i++ {
		x, y := float64(i)*3.1, float64(i)*2.7
		if f.At(x, y) != f.Warped(x, y, 30) {
			diff++
		}
	}
	if diff < 40 {
		t.Fatalf("warping changed only %d/50 samples", diff)
	}
}

func TestRNGDeterministicStreams(t *testing.T) {
	a := NewRNG(5, 1)
	b := NewRNG(5, 1)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same stream diverged")
		}
	}
	c := NewRNG(5, 2)
	d := NewRNG(5, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 1 and 2 collide on %d/100 outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(6, 1)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("float64 out of range: %f", v)
		}
	}
}

func TestIntnBoundsAndPanic(t *testing.T) {
	r := NewRNG(7, 1)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	r.Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(8, 1)
	const n = 20000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Fatalf("normal mean %f", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %f", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(9, 1)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}
