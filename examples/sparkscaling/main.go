// Sparkscaling: the PySpark-style map-reduce auto-labeling job of §III-B
// on the simulated Google Cloud Dataproc cluster — load the tiles into a
// distributed dataset, register the auto-label UDF as a lazy Map, trigger
// it with Collect, and sweep the executor×core grid of Table II.
//
//	go run ./examples/sparkscaling
package main

import (
	"fmt"
	"log"

	"seaice/internal/autolabel"
	"seaice/internal/cloudfilter"
	"seaice/internal/mapreduce"
	"seaice/internal/perfmodel"
	"seaice/internal/raster"
	"seaice/internal/scene"
)

func main() {
	log.SetFlags(0)

	// Tile workload: two 256² scenes → 32 tiles of 64².
	cc := scene.DefaultCollection(3)
	cc.Scenes = 2
	cc.W, cc.H = 256, 256
	scenes, err := scene.GenerateCollection(cc)
	if err != nil {
		log.Fatal(err)
	}
	var tiles []*raster.RGB
	for _, sc := range scenes {
		ts, _, err := raster.Split(sc.Image, 64, 64)
		if err != nil {
			log.Fatal(err)
		}
		for _, t := range ts {
			tiles = append(tiles, t.Image)
		}
	}
	fmt.Printf("workload: %d tiles\n\n", len(tiles))

	loadCost := mapreduce.CostFromSparkStage(perfmodel.PaperLoadStage(), len(tiles))
	reduceCost := mapreduce.CostFromSparkStage(perfmodel.PaperReduceStage(), len(tiles))

	fmt.Println("exec  cores  load(s)  map(s)  reduce(s)  speedup")
	var base float64
	for _, tc := range []struct{ e, c int }{{1, 1}, {1, 2}, {1, 4}, {2, 2}, {4, 4}} {
		parts := tc.e * tc.c * 4

		// Stage 1: load into the distributed dataset.
		loadRunner, err := mapreduce.NewSimRunner(tc.e, tc.c, loadCost)
		if err != nil {
			log.Fatal(err)
		}
		ds, err := mapreduce.Parallelize(tiles, parts)
		if err != nil {
			log.Fatal(err)
		}
		loaded, loadStats, err := mapreduce.Collect(ds, loadRunner)
		if err != nil {
			log.Fatal(err)
		}

		// Stage 2: the lazy auto-label UDF (driver-side only).
		reDs, _ := mapreduce.Parallelize(loaded, parts)
		labeled := mapreduce.Map(reDs, func(img *raster.RGB) (*raster.Labels, error) {
			return autolabel.LabelPaper(cloudfilter.FilterDefault(img).Image)
		})

		// Stage 3: Collect triggers execution on the cluster.
		reduceRunner, err := mapreduce.NewSimRunner(tc.e, tc.c, reduceCost)
		if err != nil {
			log.Fatal(err)
		}
		labels, reduceStats, err := mapreduce.Collect(labeled, reduceRunner)
		if err != nil {
			log.Fatal(err)
		}
		if len(labels) != len(tiles) {
			log.Fatalf("lost tiles: %d of %d", len(labels), len(tiles))
		}
		if base == 0 {
			base = reduceStats.Elapsed
		}
		fmt.Printf("%4d  %5d  %7.1f  %6.1f  %9.1f  %6.2fx\n",
			tc.e, tc.c, loadStats.Elapsed, perfmodel.PaperMapTime, reduceStats.Elapsed, base/reduceStats.Elapsed)
	}
	fmt.Println("\n(virtual seconds on the calibrated Dataproc model; paper: 390 s → 24 s = 16.25x)")
}
