package core

import (
	"math"
	"testing"

	"seaice/internal/dataset"
	"seaice/internal/raster"
	"seaice/internal/scene"
	"seaice/internal/train"
	"seaice/internal/unet"
)

func smallScenes(t *testing.T, n, size int) []*scene.Scene {
	t.Helper()
	cc := scene.DefaultCollection(31)
	cc.Scenes = n
	cc.W, cc.H = size, size
	scenes, err := scene.GenerateCollection(cc)
	if err != nil {
		t.Fatalf("scenes: %v", err)
	}
	return scenes
}

// TestRunTable1ModelMatchesPaper: the Table I harness must land within 3%
// of the paper's speedups, and the measured pool path must actually label
// the tiles.
func TestRunTable1ModelMatchesPaper(t *testing.T) {
	scenes := smallScenes(t, 1, 128)
	tiles, _, err := raster.Split(scenes[0].Image, 32, 32)
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	imgs := make([]*raster.RGB, len(tiles))
	for i, tl := range tiles {
		imgs[i] = tl.Image
	}
	rows, err := RunTable1(imgs, true)
	if err != nil {
		t.Fatalf("table1: %v", err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.ModelSpeedup-r.PaperSpeedup) > 0.03*r.PaperSpeedup {
			t.Errorf("procs=%d: model speedup %.2f vs paper %.2f", r.Processes, r.ModelSpeedup, r.PaperSpeedup)
		}
		if r.MeasuredItems != len(imgs) || r.MeasuredTime <= 0 {
			t.Errorf("procs=%d: measurement missing", r.Processes)
		}
	}
}

// TestRunTable2SimMatchesPaper: every simulated Table II cell must land
// within 16% of the paper (the model's documented worst cell is ~15%),
// and the corner speedups must hit 9.0× / 16.25×.
func TestRunTable2SimMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real labeling engine 9 times; skipped with -short")
	}
	scenes := smallScenes(t, 1, 128)
	rows, err := RunTable2(scenes, 32)
	if err != nil {
		t.Fatalf("table2: %v", err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows, want 9", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.SimLoad-r.PaperLoad) > 0.16*r.PaperLoad {
			t.Errorf("%dx%d load: sim %.1f vs paper %.1f", r.Executors, r.Cores, r.SimLoad, r.PaperLoad)
		}
		if math.Abs(r.SimReduce-r.PaperReduce) > 0.16*r.PaperReduce {
			t.Errorf("%dx%d reduce: sim %.1f vs paper %.1f", r.Executors, r.Cores, r.SimReduce, r.PaperReduce)
		}
	}
	last := rows[len(rows)-1]
	if math.Abs(last.SimSpeedupReduce-16.25) > 1.0 {
		t.Errorf("4x4 reduce speedup %.2f, paper 16.25", last.SimSpeedupReduce)
	}
	if math.Abs(last.SimSpeedupLoad-9.0) > 0.6 {
		t.Errorf("4x4 load speedup %.2f, paper 9.0", last.SimSpeedupLoad)
	}
}

// TestRunTable3SimMatchesPaper: the Table III harness must reproduce the
// paper's speedup column within 4% while running real ring-all-reduce
// training underneath.
func TestRunTable3SimMatchesPaper(t *testing.T) {
	scenes := smallScenes(t, 1, 64)
	set := buildTinySet(t, scenes)
	rows, err := RunTable3(Table3Config{
		Samples: set,
		Model:   unet.Config{Depth: 2, BaseChannels: 4, InChannels: 3, Classes: 3, DropoutRate: 0, Seed: 2},
		Epochs:  50, RealEpochs: 1, BatchPer: 2, LR: 0.01, Seed: 3,
	})
	if err != nil {
		t.Fatalf("table3: %v", err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.SimSpeedup-r.PaperSpeedup) > 0.04*r.PaperSpeedup {
			t.Errorf("gpus=%d: sim speedup %.2f vs paper %.2f", r.GPUs, r.SimSpeedup, r.PaperSpeedup)
		}
		if math.Abs(r.SimTotal-r.PaperTotal) > 0.05*r.PaperTotal {
			t.Errorf("gpus=%d: sim total %.1f vs paper %.1f", r.GPUs, r.SimTotal, r.PaperTotal)
		}
		if r.FinalLoss <= 0 || math.IsNaN(r.FinalLoss) {
			t.Errorf("gpus=%d: no real training happened (loss %f)", r.GPUs, r.FinalLoss)
		}
	}
}

// buildTinySet assembles a minimal sample set for harness tests.
func buildTinySet(t *testing.T, scenes []*scene.Scene) []train.Sample {
	t.Helper()
	build := dataset.DefaultBuild()
	build.TileSize = 16
	set, err := dataset.Build(scenes, build)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	tiles := dataset.Subsample(set.Tiles, 16, 1)
	return dataset.Samples(tiles, dataset.OriginalImages, dataset.AutoLabels)
}
