package pipeline

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"seaice/internal/chaos"
	"seaice/internal/dataset"
	"seaice/internal/scene"
)

// chaosSource is a tiny deterministic campaign for the fault tests.
func chaosSource() (Source, dataset.BuildConfig) {
	cc := scene.DefaultCollection(31)
	cc.Scenes = 6
	cc.W, cc.H = 64, 64
	build := dataset.DefaultBuild()
	build.TileSize = 32
	return CollectionSource{Cfg: cc}, build
}

// setBytes renders a dataset for byte comparison.
func setBytes(t *testing.T, set *dataset.Set) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, tile := range set.Tiles {
		buf.Write(tile.Original.Pix)
		buf.Write(tile.Filtered.Pix)
		for _, p := range tile.Auto.Pix {
			buf.WriteByte(byte(p))
		}
		for _, p := range tile.Manual.Pix {
			buf.WriteByte(byte(p))
		}
	}
	return buf.Bytes()
}

// injector builds a chaos injector from a spec.
func injector(t *testing.T, spec string) *chaos.Injector {
	t.Helper()
	sched, err := chaos.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return chaos.New(sched, 0)
}

// TestChaosStageRetryByteIdentical asserts injected stage-worker panics
// are absorbed by the per-scene retry and the streamed product is
// byte-identical to an undisturbed run.
func TestChaosStageRetryByteIdentical(t *testing.T) {
	src, build := chaosSource()

	clean := StreamBuilder{Config: Config{Build: build, Workers: 3, Shards: 3}}
	want, err := clean.BuildSet(src)
	if err != nil {
		t.Fatal(err)
	}

	in := injector(t, "5:stage@1,stage@4")
	var mu sync.Mutex
	retries := 0
	st, err := New(src, Config{
		Build: build, Workers: 3, Shards: 3, Retries: 1, Chaos: in,
		Progress: func(ev Event) {
			if ev.Kind == "retry" {
				mu.Lock()
				retries++
				mu.Unlock()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got, err := st.Set()
	if err != nil {
		t.Fatal(err)
	}

	if in.Remaining() != 0 {
		t.Fatalf("stage faults not delivered: %d pending", in.Remaining())
	}
	mu.Lock()
	if retries != 2 {
		t.Fatalf("retry events = %d, want 2", retries)
	}
	mu.Unlock()
	if !bytes.Equal(setBytes(t, got), setBytes(t, want)) {
		t.Fatal("chaos-retried stream differs from undisturbed run")
	}
}

// TestChaosStageDoubleFaultNeedsBudget asserts two faults stacked on
// one scene are absorbed when the retry budget covers them (the cmds
// size Retries from the schedule via chaos.Injector.Count).
func TestChaosStageDoubleFaultNeedsBudget(t *testing.T) {
	src, build := chaosSource()
	in := injector(t, "5:stage@2,stage@2")
	st, err := New(src, Config{Build: build, Workers: 2, Retries: in.Count(chaos.StagePanic), Chaos: in})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Set(); err != nil {
		t.Fatalf("double fault with matching budget: %v", err)
	}
	if in.Remaining() != 0 {
		t.Fatalf("%d faults undelivered", in.Remaining())
	}
}

// TestChaosStageFaultFatalWithoutRetry asserts an injected panic with no
// retry budget fails the stream with a diagnosable error instead of
// hanging it.
func TestChaosStageFaultFatalWithoutRetry(t *testing.T) {
	src, build := chaosSource()
	st, err := New(src, Config{Build: build, Workers: 2, Chaos: injector(t, "5:stage@2")})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Set(); err == nil || !strings.Contains(err.Error(), "chaos: injected stage fault") {
		t.Fatalf("Set() = %v, want injected-fault error", err)
	}
}

// TestChaosCheckpointResumeAfterAbort asserts the fingerprint-checked
// shard checkpoints turn a chaos-aborted run into a resumable one: the
// rerun restores the completed shards and finishes with a product
// byte-identical to a never-failed run.
func TestChaosCheckpointResumeAfterAbort(t *testing.T) {
	src, build := chaosSource()
	dir := t.TempDir()

	clean := StreamBuilder{Config: Config{Build: build, Workers: 2, Shards: 3}}
	want, err := clean.BuildSet(src)
	if err != nil {
		t.Fatal(err)
	}

	// First run: unretried fault on scene 5 (last shard) aborts the
	// stream after earlier shards may have checkpointed.
	aborted, err := New(src, Config{
		Build: build, Workers: 2, Shards: 3, CheckpointDir: dir,
		Chaos: injector(t, "5:stage@5"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aborted.Set(); err == nil {
		t.Fatal("aborted run unexpectedly succeeded")
	}
	aborted.Close()

	// Rerun with the same fingerprint: completed shards restore from
	// disk, the rest recompute, and the product matches byte for byte.
	resumed, err := New(src, Config{Build: build, Workers: 2, Shards: 3, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	got, err := resumed.Set()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(setBytes(t, got), setBytes(t, want)) {
		t.Fatal("resumed run differs from undisturbed run")
	}
}
