package pipeline

import (
	"fmt"
	"math"

	"seaice/internal/dataset"
	"seaice/internal/raster"
	"seaice/internal/scene"
)

// poisonError marks a scene whose content failed integrity validation
// (or whose stage worker panicked mid-decode): the data itself is
// suspect, not the machinery around it. Poisoned scenes are retried like
// any transient failure — an injected one-shot corruption comes out
// clean on the retry — and, when Config.Quarantine is set, a scene that
// stays poisoned through the retry budget is quarantined into the
// stream's report instead of killing the run.
type poisonError struct{ err error }

func (e *poisonError) Error() string { return e.err.Error() }
func (e *poisonError) Unwrap() error { return e.err }

// QuarantineRecord is one quarantined scene in the stream's report.
type QuarantineRecord struct {
	// Scene is the global scene index that was dropped.
	Scene int
	// Reason is the final stage error that exhausted the retry budget.
	Reason string
}

// Quarantined returns the quarantine report: every poisoned scene the
// stream dropped (Config.Quarantine), in completion order. Empty for
// healthy runs.
func (s *Stream) Quarantined() []QuarantineRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]QuarantineRecord, len(s.quarantined))
	copy(out, s.quarantined)
	return out
}

// isQuarantined reports whether a scene was dropped from the products.
func (s *Stream) isQuarantined(i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.qSet[i]
}

// quarantine drops a poisoned scene: records it, emits the event, and
// delivers an empty tile set so shard accounting and waiters complete.
// The empty delivery is non-checkpointable — a shard holding a
// quarantined scene recomputes from the source on resume, giving the
// scene another chance with fresh bytes.
func (s *Stream) quarantine(i int, err error) {
	s.mu.Lock()
	if s.qSet == nil {
		s.qSet = make(map[int]bool)
	}
	s.qSet[i] = true
	s.quarantined = append(s.quarantined, QuarantineRecord{Scene: i, Reason: err.Error()})
	s.mu.Unlock()
	s.emit(Event{Kind: "quarantine", Shard: s.shardOf(i), ScenesDone: s.completed()})
	s.deliver(i, make([]dataset.Tile, 0), false)
}

// validateScene is the integrity gate between the source and the label
// stage: it rejects truncated rasters and non-finite or out-of-range
// reflectance values — the silent-corruption shapes that would otherwise
// flow into tiles, labels, and ultimately trained weights. Validation
// failures are poisonError (retryable; quarantinable).
func validateScene(i int, sc *scene.Scene) error {
	w, h := sc.Image.W, sc.Image.H
	if len(sc.Image.Pix) != 3*w*h {
		return &poisonError{fmt.Errorf("pipeline: scene %d: truncated image raster (%d bytes, want %d)",
			i, len(sc.Image.Pix), 3*w*h)}
	}
	if err := validateBand(i, "cloud-opacity", sc.CloudOpacity, w*h); err != nil {
		return err
	}
	return validateBand(i, "shadow", sc.Shadow, w*h)
}

// validateBand checks one optional float raster for truncation and
// non-finite or out-of-range ([0,1]) values.
func validateBand(i int, name string, r *raster.Float, want int) error {
	if r == nil {
		return nil
	}
	if len(r.Pix) != want {
		return &poisonError{fmt.Errorf("pipeline: scene %d: truncated %s raster (%d values, want %d)",
			i, name, len(r.Pix), want)}
	}
	for p, v := range r.Pix {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return &poisonError{fmt.Errorf("pipeline: scene %d: non-finite %s value at pixel %d", i, name, p)}
		}
		if v < 0 || v > 1 {
			return &poisonError{fmt.Errorf("pipeline: scene %d: %s value %g at pixel %d outside [0,1]",
				i, name, v, p)}
		}
	}
	return nil
}

// poisonScene returns a corrupted copy of a scene for the badscene chaos
// fault: the original is never mutated (sources may share scene
// pointers, and the retry after the one-shot fault must see pristine
// bytes). The corruption is a NaN dropped into the cloud-opacity
// raster — exactly the silent-poison shape validateScene exists to stop.
func poisonScene(sc *scene.Scene) *scene.Scene {
	cp := *sc
	if sc.CloudOpacity != nil && len(sc.CloudOpacity.Pix) > 0 {
		r := *sc.CloudOpacity
		r.Pix = append([]float64(nil), sc.CloudOpacity.Pix...)
		r.Pix[len(r.Pix)/2] = math.NaN()
		cp.CloudOpacity = &r
	} else {
		img := *sc.Image
		img.Pix = append([]uint8(nil), sc.Image.Pix...)
		img.Pix = img.Pix[:len(img.Pix)/2] // torn decode: truncated raster
		cp.Image = &img
	}
	return &cp
}
