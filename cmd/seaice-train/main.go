// Command seaice-train trains a U-Net sea-ice classifier on a synthetic
// campaign, either serially or with Horovod-style synchronous data
// parallelism over simulated GPUs (§III-C). It saves a checkpoint usable
// by seaice-infer. The dataset is fed through the streaming pipeline
// (internal/pipeline), so filtering and auto-labeling overlap training;
// cmd/seaice-pipeline exposes the full orchestration (sharding knobs,
// per-stage resume) on top of the same machinery.
//
// Usage:
//
//	seaice-train -preset fast -epochs 8 -labels auto -ckpt unet-auto.ckpt
//	seaice-train -workers 4 -epochs 4          # distributed (ring all-reduce)
//	seaice-train -preset paper -epochs 1       # full 28-conv-layer variant
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"seaice/internal/dataset"
	"seaice/internal/ddp"
	"seaice/internal/perfmodel"
	"seaice/internal/pipeline"
	"seaice/internal/pool"
	"seaice/internal/scene"
	"seaice/internal/train"
	"seaice/internal/unet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("seaice-train: ")

	var (
		preset   = flag.String("preset", "fast", "model preset: fast | paper")
		scenes   = flag.Int("scenes", 12, "scenes in the training campaign")
		size     = flag.Int("size", 256, "scene size")
		tile     = flag.Int("tile", 32, "tile size")
		labels   = flag.String("labels", "auto", "training labels: manual | auto")
		epochs   = flag.Int("epochs", 8, "training epochs")
		batch    = flag.Int("batch", 8, "batch size (per worker when -workers > 1)")
		lr       = flag.Float64("lr", 0.01, "Adam learning rate")
		workers  = flag.Int("workers", 1, "simulated GPUs for distributed training")
		maxTiles = flag.Int("max-tiles", 256, "cap on training tiles (0 = all)")
		seed     = flag.Uint64("seed", 7, "seed")
		ckpt     = flag.String("ckpt", "unet.ckpt", "checkpoint output path")
		procs    = flag.Int("procs", 0, "worker threads for the training engine's kernels (0 = all cores)")
	)
	flag.Parse()
	pool.SetSharedWorkers(*procs)
	log.Printf("training engine: %d kernel workers", pool.Shared().Workers())

	var modelCfg unet.Config
	switch *preset {
	case "fast":
		modelCfg = unet.FastConfig(*seed)
	case "paper":
		modelCfg = unet.PaperConfig(*seed)
	default:
		log.Fatalf("unknown preset %q", *preset)
	}
	if *tile < modelCfg.MinInputSize() {
		log.Fatalf("tile size %d below the %s preset's minimum %d", *tile, *preset, modelCfg.MinInputSize())
	}

	var labKind dataset.LabelKind
	switch *labels {
	case "manual":
		labKind = dataset.ManualLabels
	case "auto":
		labKind = dataset.AutoLabels
	default:
		log.Fatalf("unknown label kind %q", *labels)
	}

	cc := scene.DefaultCollection(*seed)
	cc.Scenes = *scenes
	cc.W, cc.H = *size, *size

	// The streaming pipeline replaces the old generate-all → build-all
	// sequence: scenes are generated, filtered, and labeled by
	// concurrent stage workers while training consumes its first
	// batches. Split, subsample, and batch order are byte-identical to
	// the legacy batch path (see internal/pipeline parity tests).
	build := dataset.DefaultBuild()
	build.TileSize = *tile
	plan := &pipeline.TrainPlan{
		TrainFrac: 0.8, SplitSeed: *seed,
		TrainTiles: *maxTiles, TrainSeed: *seed,
		TestTiles: 128, TestSeed: *seed + 1,
		Image: dataset.OriginalImages, Labels: labKind,
		BatchSize: *batch, BatchSeed: *seed,
	}
	if *workers > 1 {
		// The ddp trainer shards globally, so the global batch is the
		// planning unit.
		plan.BatchSize = *batch * *workers
	}
	log.Printf("streaming %d scenes of %dx%d through filter/label/tile…", *scenes, *size, *size)
	st, err := pipeline.New(pipeline.CollectionSource{Cfg: cc}, pipeline.Config{
		Build: build,
		Plan:  plan,
		Progress: func(ev pipeline.Event) {
			if ev.Kind == "shard" {
				log.Printf("labeled shard %d/%d (%d/%d scenes)", ev.Shard+1, ev.Shards, ev.ScenesDone, ev.Scenes)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	nTrain, err := st.TrainLen()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("training on %d tiles (%s labels), %d epochs, preset %s (%d conv layers)",
		nTrain, *labels, *epochs, *preset, modelCfg.NumConvLayers())

	var model *unet.Model
	if *workers > 1 {
		samples, err := st.TrainSamples()
		if err != nil {
			log.Fatal(err)
		}
		nTrain = len(samples)
		tr, err := ddp.New(modelCfg, ddp.Config{
			Workers:        *workers,
			BatchPerWorker: *batch,
			Epochs:         *epochs,
			LR:             *lr,
			Seed:           *seed,
			Timing:         perfmodel.PaperDGX(),
			Progress: func(epoch int, loss float64) {
				log.Printf("epoch %d: loss %.4f", epoch, loss)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := tr.Fit(samples)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("distributed training: %d workers, virtual DGX time %.2f s, real %.2f s",
			*workers, res.VirtualTotal, res.RealTotal)
		model = tr.Replica(0)
	} else {
		batches, err := st.TrainBatches()
		if err != nil {
			log.Fatal(err)
		}
		model, err = unet.New(modelCfg)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := train.FitStream(model, batches, train.Config{
			Epochs: *epochs, BatchSize: *batch, LR: *lr, Seed: *seed,
			Progress: func(epoch int, loss float64) {
				log.Printf("epoch %d: loss %.4f", epoch, loss)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		log.Printf("streamed training: %d steps in %s (%.1f ms/step, %.1f tiles/s)",
			res.Steps, elapsed.Round(time.Millisecond),
			float64(elapsed.Milliseconds())/float64(res.Steps),
			float64(nTrain**epochs)/elapsed.Seconds())
	}

	// Validate on held-out tiles against manual labels.
	testTiles, err := st.TestTiles()
	if err != nil {
		log.Fatal(err)
	}
	conf, err := train.Evaluate(model, dataset.Samples(testTiles, dataset.FilteredImages, dataset.ManualLabels))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("validation accuracy (filtered imagery, manual labels): %.2f%%\n", 100*conf.Accuracy())
	fmt.Println(conf)

	if err := model.SaveFile(*ckpt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint written to %s\n", *ckpt)
}
