package serve

import (
	"path/filepath"
	"testing"
	"time"

	"seaice/internal/raster"
)

func labelsOf(class raster.Class, size int) *raster.Labels {
	l := raster.NewLabels(size, size)
	for i := range l.Pix {
		l.Pix[i] = class
	}
	return l
}

// TestTileKeyDiscriminates makes sure the content hash separates model
// names, dimensions, and pixel contents.
func TestTileKeyDiscriminates(t *testing.T) {
	a := testTiles(1, 16, 1)[0]
	b := a.Clone()
	if TileKey("m", a) != TileKey("m", b) {
		t.Fatal("identical tiles hash differently")
	}
	b.Pix[0] ^= 1
	if TileKey("m", a) == TileKey("m", b) {
		t.Fatal("differing pixels hash equal")
	}
	if TileKey("m1", a) == TileKey("m2", a) {
		t.Fatal("differing models hash equal")
	}
	// Same byte count, different geometry.
	wide, tall := raster.NewRGB(32, 8), raster.NewRGB(8, 32)
	if TileKey("m", wide) == TileKey("m", tall) {
		t.Fatal("differing geometry hashes equal")
	}
}

// TestCacheLRU exercises eviction order and the recency bump on Get.
func TestCacheLRU(t *testing.T) {
	c := NewCache(2)
	tiles := testTiles(3, 8, 2)
	k0, k1, k2 := TileKey("m", tiles[0]), TileKey("m", tiles[1]), TileKey("m", tiles[2])

	c.Put(k0, labelsOf(raster.ClassWater, 8))
	c.Put(k1, labelsOf(raster.ClassThinIce, 8))
	if _, ok := c.Get(k0); !ok {
		t.Fatal("k0 missing before capacity hit")
	}
	// k1 is now least recently used; inserting k2 must evict it.
	c.Put(k2, labelsOf(raster.ClassThickIce, 8))
	if _, ok := c.Get(k1); ok {
		t.Fatal("k1 survived eviction")
	}
	if _, ok := c.Get(k0); !ok {
		t.Fatal("k0 evicted despite recent use")
	}
	if got, ok := c.Get(k2); !ok || got.Pix[0] != raster.ClassThickIce {
		t.Fatal("k2 missing or wrong payload")
	}
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
	hits, misses := c.Counters()
	if hits != 3 || misses != 1 {
		t.Fatalf("counters %d/%d, want 3 hits / 1 miss", hits, misses)
	}
}

// TestCacheDisabled checks that a zero-capacity cache is inert.
func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	k := TileKey("m", testTiles(1, 8, 3)[0])
	c.Put(k, labelsOf(raster.ClassWater, 8))
	if _, ok := c.Get(k); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.Len() != 0 {
		t.Fatal("disabled cache stored an entry")
	}
}

// TestStatsPercentiles feeds a known latency distribution through the
// recorder.
func TestStatsPercentiles(t *testing.T) {
	s := NewStats()
	for i := 1; i <= 100; i++ {
		s.RecordRequest(time.Duration(i)*time.Millisecond, 1, false)
	}
	snap := s.Snapshot(3, 4, 30, 70)
	if snap.Requests != 100 || snap.Tiles != 100 {
		t.Fatalf("counts %+v", snap)
	}
	if snap.P50Millis < 45 || snap.P50Millis > 55 {
		t.Fatalf("p50 %.1f ms, want ≈50", snap.P50Millis)
	}
	if snap.P99Millis < 95 || snap.P99Millis > 100 {
		t.Fatalf("p99 %.1f ms, want ≈99", snap.P99Millis)
	}
	if snap.QueueDepth != 3 {
		t.Fatalf("queue depth %d, want 3", snap.QueueDepth)
	}
	if snap.CacheHitRate < 0.29 || snap.CacheHitRate > 0.31 {
		t.Fatalf("cache hit rate %.2f, want 0.30", snap.CacheHitRate)
	}
}

// TestRegistry covers load/lookup/default/error paths, including a
// corrupt checkpoint failing cleanly.
func TestRegistry(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.ckpt")
	m := testModel(t, 11)
	if err := m.SaveFile(good); err != nil {
		t.Fatal(err)
	}

	r := NewRegistry()
	if err := r.Load("man", good, "f64"); err != nil {
		t.Fatal(err)
	}
	if err := r.Load("auto", good, "f32"); err != nil {
		t.Fatal(err)
	}
	if r.Default() != "man" {
		t.Fatalf("default %q, want first-registered \"man\"", r.Default())
	}
	if _, err := r.Get(""); err != nil {
		t.Fatalf("default lookup: %v", err)
	}
	if _, err := r.Get("auto"); err != nil {
		t.Fatalf("named lookup: %v", err)
	}
	if _, err := r.Get("nope"); err == nil {
		t.Fatal("unknown model lookup succeeded")
	}
	if err := r.Load("man", good, "f64"); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if err := r.Load("bad", filepath.Join(dir, "missing.ckpt"), "f64"); err == nil {
		t.Fatal("missing checkpoint accepted")
	}
	if got := r.Names(); len(got) != 2 || got[0] != "auto" || got[1] != "man" {
		t.Fatalf("names %v", got)
	}
	if err := r.Warm(16); err != nil {
		t.Fatalf("warm: %v", err)
	}
	// FastConfig depth 3 needs multiples of 8; 12 must be rejected.
	if err := r.Warm(12); err == nil {
		t.Fatal("warm accepted an unservable tile size")
	}
}
