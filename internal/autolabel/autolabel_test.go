package autolabel

import (
	"testing"
	"testing/quick"

	"seaice/internal/colorspace"
	"seaice/internal/imgproc"
	"seaice/internal/noise"
	"seaice/internal/raster"
)

func TestPaperThresholdsValid(t *testing.T) {
	if err := PaperThresholds().Validate(); err != nil {
		t.Fatalf("published thresholds rejected: %v", err)
	}
}

func TestValidateRejectsGapsAndOverlaps(t *testing.T) {
	th := PaperThresholds()
	th.ThinIce.Lo.V = 40 // gap between water (≤30) and thin (≥40)
	if err := th.Validate(); err == nil {
		t.Fatal("expected gap to be rejected")
	}
	th = PaperThresholds()
	th.Water.Hi.V = 50 // overlap with thin (≥31)
	if err := th.Validate(); err == nil {
		t.Fatal("expected overlap to be rejected")
	}
}

// TestMasksPartitionImage is the paper's "non-intersecting borders"
// property: for any image, the three masks are pairwise disjoint and
// jointly cover every pixel.
func TestMasksPartitionImage(t *testing.T) {
	f := func(seed uint64) bool {
		rng := noise.NewRNG(seed, 1)
		img := raster.NewRGB(16, 16)
		for i := range img.Pix {
			img.Pix[i] = uint8(rng.Intn(256))
		}
		m := Segment(img, PaperThresholds())
		for i := 0; i < 256; i++ {
			claims := 0
			if m.ThickIce.Pix[i] != 0 {
				claims++
			}
			if m.ThinIce.Pix[i] != 0 {
				claims++
			}
			if m.Water.Pix[i] != 0 {
				claims++
			}
			if claims != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestLabelMatchesValueBand: the merged label must agree with the pixel's
// HSV value band.
func TestLabelMatchesValueBand(t *testing.T) {
	rng := noise.NewRNG(3, 1)
	img := raster.NewRGB(32, 32)
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(256))
	}
	lab, err := LabelPaper(img)
	if err != nil {
		t.Fatalf("label: %v", err)
	}
	for i := 0; i < 32*32; i++ {
		v := colorspace.RGBToHSV(img.Pix[3*i], img.Pix[3*i+1], img.Pix[3*i+2]).V
		var want raster.Class
		switch {
		case v >= 205:
			want = raster.ClassThickIce
		case v >= 31:
			want = raster.ClassThinIce
		default:
			want = raster.ClassWater
		}
		if lab.Pix[i] != want {
			t.Fatalf("pixel %d (V=%d) labeled %v, want %v", i, v, lab.Pix[i], want)
		}
	}
}

func TestSegmentMaskCountsConsistent(t *testing.T) {
	rng := noise.NewRNG(6, 1)
	img := raster.NewRGB(20, 20)
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(256))
	}
	m := Segment(img, PaperThresholds())
	lab, _ := Merge(m)
	counts := lab.Counts()
	if imgproc.CountNonZero(m.Water) != counts[raster.ClassWater] {
		t.Fatalf("water mask %d vs labels %d", imgproc.CountNonZero(m.Water), counts[raster.ClassWater])
	}
	if imgproc.CountNonZero(m.ThickIce) != counts[raster.ClassThickIce] {
		t.Fatalf("thick mask %d vs labels %d", imgproc.CountNonZero(m.ThickIce), counts[raster.ClassThickIce])
	}
}

func TestMergeSizeMismatch(t *testing.T) {
	m := Masks{
		ThickIce: raster.NewGray(4, 4),
		ThinIce:  raster.NewGray(4, 4),
		Water:    raster.NewGray(5, 4),
	}
	if _, err := Merge(m); err == nil {
		t.Fatal("expected size-mismatch error")
	}
}

// TestPureColorPatches: canonical pixels land in the right classes.
func TestPureColorPatches(t *testing.T) {
	img := raster.NewRGB(3, 1)
	img.Set(0, 0, 250, 250, 250) // bright white → thick
	img.Set(1, 0, 60, 80, 120)   // mid blue-gray → thin
	img.Set(2, 0, 5, 10, 20)     // near black → water
	lab, err := LabelPaper(img)
	if err != nil {
		t.Fatalf("label: %v", err)
	}
	want := []raster.Class{raster.ClassThickIce, raster.ClassThinIce, raster.ClassWater}
	for i, w := range want {
		if lab.Pix[i] != w {
			t.Fatalf("pixel %d labeled %v, want %v", i, lab.Pix[i], w)
		}
	}
}

// TestValidateRejectsWraparound is the uint8 regression: with byte
// arithmetic, Water.Hi.V=255 makes Water.Hi.V+1 wrap to 0, so a config
// whose bands fully overlap used to pass the contiguity check.
func TestValidateRejectsWraparound(t *testing.T) {
	th := PaperThresholds()
	th.Water.Hi.V = 255 // water covers everything…
	th.ThinIce.Lo.V = 0 // …and thin starts at 0: fully overlapping
	if err := th.Validate(); err == nil {
		t.Fatal("wraparound config (water 0-255, thin 0-204) accepted")
	}
	th = PaperThresholds()
	th.ThinIce.Hi.V = 255 // same wrap on the thin/thick boundary
	th.ThickIce.Lo.V = 0
	if err := th.Validate(); err == nil {
		t.Fatal("wraparound config (thin 31-255, thick 0-255) accepted")
	}
}

// TestOverlapResolvesBrightestFirst pins the documented multi-claim rule
// for non-paper thresholds: a pixel inside several boxes takes the
// brightest class, so thin beats water (the pre-fix code checked water
// before the thin default) and thick beats both. Asserted on Merge and on
// the fused Label path, which must agree.
func TestOverlapResolvesBrightestFirst(t *testing.T) {
	th := PaperThresholds()
	th.Water.Hi.V = 60 // overlaps thin ice on V in [31,60]

	img := raster.NewRGB(2, 1)
	img.Set(0, 0, 45, 45, 45)    // V=45: claimed by water AND thin → thin
	img.Set(1, 0, 220, 220, 220) // V=220: thick only (control)

	lab, err := Merge(Segment(img, th))
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	fused, err := Label(img, th)
	if err != nil {
		t.Fatalf("label: %v", err)
	}
	for name, got := range map[string]*raster.Labels{"Merge": lab, "Label": fused} {
		if got.Pix[0] != raster.ClassThinIce {
			t.Errorf("%s: water∩thin pixel labeled %v, want ThinIce (brightest-first)", name, got.Pix[0])
		}
		if got.Pix[1] != raster.ClassThickIce {
			t.Errorf("%s: thick pixel labeled %v, want ThickIce", name, got.Pix[1])
		}
	}

	// Thick/thin overlap: thick wins.
	th = PaperThresholds()
	th.ThinIce.Hi.V = 255 // overlaps thick ice on V in [205,255]
	one := raster.NewRGB(1, 1)
	one.Set(0, 0, 230, 230, 230)
	fused, err = Label(one, th)
	if err != nil {
		t.Fatalf("label: %v", err)
	}
	if fused.Pix[0] != raster.ClassThickIce {
		t.Errorf("thick∩thin pixel labeled %v, want ThickIce", fused.Pix[0])
	}

	// Claimed by no box (a gap): still defaults to thin, the middle class.
	th = PaperThresholds()
	th.Water.Hi.V = 20 // V in [21,30] claimed by nobody
	gap := raster.NewRGB(1, 1)
	gap.Set(0, 0, 25, 25, 25)
	fused, err = Label(gap, th)
	if err != nil {
		t.Fatalf("label: %v", err)
	}
	if fused.Pix[0] != raster.ClassThinIce {
		t.Errorf("unclaimed pixel labeled %v, want ThinIce default", fused.Pix[0])
	}
}
