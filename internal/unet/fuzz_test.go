package unet

import (
	"bytes"
	"encoding/gob"
	"errors"
	"io"
	"math"
	"strings"
	"testing"

	"seaice/internal/tensor"
)

// FuzzLoadCheckpoint throws adversarial checkpoint streams at Load and
// asserts the contract: it never panics, and every failure is a typed
// error (ErrBadCheckpoint for malformed content, or a plain error for
// I/O) — so a corrupted checkpoint on a production node degrades into a
// diagnosable refusal, not a crash. Seeds cover the three canonical
// corruptions: malformed magic, truncated gob, bogus version/precision
// byte.
func FuzzLoadCheckpoint(f *testing.F) {
	// A genuine checkpoint to mutate from.
	m, err := New[float64](Config{Depth: 1, BaseChannels: 2, InChannels: 3, Classes: 3, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	var good bytes.Buffer
	if err := m.Save(&good); err != nil {
		f.Fatal(err)
	}
	valid := good.Bytes()

	// Malformed magic.
	f.Add([]byte("SEAICE-UNET-XKPT\x02garbage"))
	// Truncated gob: header intact, payload cut mid-stream.
	f.Add(valid[:len(ckptMagic)+7])
	f.Add(valid[:len(valid)/2])
	// Bogus version/precision byte after the magic text.
	bogus := append([]byte(nil), valid...)
	bogus[len(ckptMagic)-1] = 0x7f
	f.Add(bogus)
	// Bare garbage (legacy-gob path), empty, and magic-only streams.
	f.Add([]byte("not a checkpoint at all"))
	f.Add([]byte{})
	f.Add([]byte(ckptMagic))
	// A legacy-path gob with absurd claimed lengths.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x7f, 0x01, 0x02})

	// Quantized (version 3) seeds. Start from a genuine quantized
	// checkpoint, then cover its canonical corruptions: corrupt scale
	// table, out-of-domain zero-point, missing stage, truncated payload.
	cal, err := Calibrate(m, calibTiles(2, 16, 3), 2)
	if err != nil {
		f.Fatal(err)
	}
	qm, err := Quantize(m, cal)
	if err != nil {
		f.Fatal(err)
	}
	var goodQ bytes.Buffer
	if err := qm.Save(&goodQ); err != nil {
		f.Fatal(err)
	}
	validQ := goodQ.Bytes()
	f.Add(validQ)
	f.Add(validQ[:len(ckptMagicV3)+5]) // truncated gob
	f.Add(validQ[:len(validQ)-9])      // truncated scale/zero-point table
	corruptActs := func(mutate func(map[string]tensor.ActQuant)) []byte {
		acts := make(map[string]tensor.ActQuant, len(qm.acts))
		for k, v := range qm.acts {
			acts[k] = v
		}
		mutate(acts)
		var buf bytes.Buffer
		buf.WriteString(ckptMagicV3)
		if err := gob.NewEncoder(&buf).Encode(checkpointV3{Config: m.Config(), Weights: m.WeightsF64(), Acts: acts}); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(corruptActs(func(a map[string]tensor.ActQuant) {
		a["enc0.conv1"] = tensor.ActQuant{Scale: 0, Zero: 1} // zeroed scale
	}))
	f.Add(corruptActs(func(a map[string]tensor.ActQuant) {
		a["up0"] = tensor.ActQuant{Scale: math.Inf(1), Zero: 0} // blown scale
	}))
	f.Add(corruptActs(func(a map[string]tensor.ActQuant) {
		a["dec0.conv2"] = tensor.ActQuant{Scale: 0.01, Zero: 200} // zero-point out of [0,127]
	}))
	f.Add(corruptActs(func(a map[string]tensor.ActQuant) {
		delete(a, "bottleneck.conv2") // missing stage
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Load panicked on %d-byte input: %v", len(data), r)
			}
		}()
		for _, load := range []func() error{
			func() error { _, err := Load[float64](bytes.NewReader(data)); return err },
			func() error { _, err := Load[float32](bytes.NewReader(data)); return err },
			func() error { _, err := LoadQuantized(bytes.NewReader(data)); return err },
			func() error { _, err := LoadMasterFromQuantized(bytes.NewReader(data)); return err },
		} {
			err := load()
			if err == nil {
				continue // a mutation may still be a valid checkpoint
			}
			// Every failure must be typed or an honest I/O error —
			// never an internal panic-turned-string.
			if !errors.Is(err, ErrBadCheckpoint) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
				if !strings.HasPrefix(err.Error(), "unet:") {
					t.Fatalf("untyped load error: %v", err)
				}
			}
		}
	})
}

// TestLoadTypedErrors pins the ErrBadCheckpoint contract on the three
// canonical corruptions without needing the fuzz engine.
func TestLoadTypedErrors(t *testing.T) {
	m, err := New[float64](Config{Depth: 1, BaseChannels: 2, InChannels: 3, Classes: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var good bytes.Buffer
	if err := m.Save(&good); err != nil {
		t.Fatal(err)
	}
	valid := good.Bytes()

	bogusVersion := append([]byte(nil), valid...)
	bogusVersion[len(ckptMagic)-1] = 0x09

	for name, data := range map[string][]byte{
		"malformed magic": []byte("SEAICE-UNET-XKPT\x02" + string(valid[len(ckptMagic):])),
		"truncated gob":   valid[:len(valid)-11],
		"bogus version":   bogusVersion,
		"garbage":         []byte("ceci n'est pas un checkpoint"),
	} {
		if _, err := Load[float64](bytes.NewReader(data)); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("%s: Load = %v, want ErrBadCheckpoint", name, err)
		}
	}

	// And the happy path still loads.
	if _, err := Load[float64](bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid checkpoint failed to load: %v", err)
	}
}
