package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"seaice/internal/raster"
	"seaice/internal/unet"
)

// Precisions lists the precision rungs the serving stack understands, in
// descending cost order. These are the only values -precision flags and
// Registry.Load accept.
var Precisions = []string{"f64", "f32", "int8"}

// UnknownPrecisionError is the typed rejection for a precision name
// outside Precisions — CLI flag validation and Registry.Load both return
// it so callers can branch with errors.As.
type UnknownPrecisionError struct {
	Precision string
}

func (e *UnknownPrecisionError) Error() string {
	return fmt.Sprintf("serve: unknown precision %q (valid: %s)", e.Precision, strings.Join(Precisions, ", "))
}

// ParsePrecision normalizes a precision flag value to its canonical rung
// name, accepting the spelled-out aliases ("float64", "float32"). Any
// other value returns *UnknownPrecisionError.
func ParsePrecision(s string) (string, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "f64", "float64":
		return "f64", nil
	case "f32", "float32":
		return "f32", nil
	case "int8":
		return "int8", nil
	}
	return "", &UnknownPrecisionError{Precision: s}
}

// Registry holds the engines the service can classify with, keyed by
// name. Engines are precision-agnostic (unet.Engine): one registry can
// mix f64, f32, and int8 models. The first engine registered becomes the
// default (requests that name no model use it). Loading and lookup are
// safe for concurrent use; the engines themselves are only ever read
// after registration.
type Registry struct {
	mu     sync.RWMutex
	models map[string]unet.Engine
	def    string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{models: make(map[string]unet.Engine)}
}

// Add registers an in-memory engine under name.
func (r *Registry) Add(name string, e unet.Engine) error {
	if name == "" {
		return fmt.Errorf("serve: empty model name")
	}
	if e == nil {
		return fmt.Errorf("serve: model %q: nil engine", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.models[name]; dup {
		return fmt.Errorf("serve: model %q already registered", name)
	}
	r.models[name] = e
	if r.def == "" {
		r.def = name
	}
	return nil
}

// Load reads a checkpoint file at the requested precision and registers
// it under name. See LoadEngine for the precision semantics.
func (r *Registry) Load(name, path, precision string) error {
	e, err := LoadEngine(path, precision)
	if err != nil {
		if _, unknown := err.(*UnknownPrecisionError); unknown {
			return err
		}
		return fmt.Errorf("serve: model %q: %w", name, err)
	}
	return r.Add(name, e)
}

// LoadEngine reads a checkpoint file at the requested precision.
// "f64"/"f32" load float checkpoints (versions ≤ 2, or the master
// embedded in a quantized file); "int8" requires a quantized (version 3)
// checkpoint, whose calibrated tables rebuild the integer model
// deterministically. An unrecognized precision is rejected with
// *UnknownPrecisionError before the file is touched.
func LoadEngine(path, precision string) (unet.Engine, error) {
	p, err := ParsePrecision(precision)
	if err != nil {
		return nil, err
	}
	switch p {
	case "f64":
		return loadFloat[float64](path)
	case "f32":
		return loadFloat[float32](path)
	}
	qm, err := unet.LoadQuantizedFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w (int8 serving needs a quantized checkpoint; produce one with seaice-train -quantize)", err)
	}
	return qm, nil
}

// loadFloat loads a float checkpoint, falling back to the master weights
// inside a quantized checkpoint so a v3 file serves at any precision.
func loadFloat[S interface{ float32 | float64 }](path string) (unet.Engine, error) {
	m, err := unet.LoadFile[S](path)
	if err == nil {
		return m, nil
	}
	if qm, qerr := unet.LoadQuantizedFile(path); qerr == nil {
		f64 := qm.WeightsF64()
		fm, nerr := unet.New[S](qm.Config())
		if nerr != nil {
			return nil, nerr
		}
		if serr := fm.SetWeightsF64(f64); serr != nil {
			return nil, serr
		}
		return fm, nil
	}
	return nil, err
}

// Get resolves an engine by name; the empty string selects the default.
func (r *Registry) Get(name string) (unet.Engine, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		name = r.def
	}
	e, ok := r.models[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown model %q", name)
	}
	return e, nil
}

// Names lists registered model names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.models))
	for n := range r.models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Default returns the default model's name ("" when empty).
func (r *Registry) Default() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.def
}

// Warm verifies every registered engine can serve the given tile size
// and runs one throwaway batch per engine, pre-faulting weight memory
// and catching broken checkpoints at startup instead of on the first
// request. (Worker sessions still grow their own activation buffers on
// their first batch; that cost is per worker and unavoidable here.)
func (r *Registry) Warm(tileSize int) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	tile := raster.NewRGB(tileSize, tileSize)
	for name, e := range r.models {
		if tileSize%e.Config().MinInputSize() != 0 {
			return fmt.Errorf("serve: model %q needs tile sizes divisible by %d, serving %d",
				name, e.Config().MinInputSize(), tileSize)
		}
		if _, err := e.NewPredictor().PredictTiles([]*raster.RGB{tile}); err != nil {
			return fmt.Errorf("serve: warm %q: %w", name, err)
		}
	}
	return nil
}
