// Command seaice-pipeline orchestrates the paper's full parallel
// workflow end to end — sharded scene catalog → concurrent thin-cloud
// filtering and auto-labeling → tiling → streamed U-Net training →
// evaluation — with the stages overlapped: training consumes its first
// batches while later shards are still being labeled, which is the
// pipelining the paper runs across nodes (§III).
//
// Every stage is resumable when -state names a directory: labeled shards
// are checkpointed as they complete (and restored on the next run), the
// trained model is saved to <state>/model.ckpt and reloaded instead of
// retrained, and the evaluation report is written to <state>/eval.txt.
//
// Usage:
//
//	seaice-pipeline -scenes 16 -epochs 6 -shards 4 -procs 4
//	seaice-pipeline -state run1 -scenes 66 -size 512 -tile 64   # resumable
//	seaice-pipeline -state run1 ...                             # resumes
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"seaice/internal/dataset"
	"seaice/internal/labeler"
	"seaice/internal/pipeline"
	"seaice/internal/pool"
	"seaice/internal/scene"
	"seaice/internal/train"
	"seaice/internal/unet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("seaice-pipeline: ")

	var (
		preset     = flag.String("preset", "fast", "model preset: fast | paper")
		scenes     = flag.Int("scenes", 12, "scenes in the campaign")
		size       = flag.Int("size", 256, "scene size")
		tile       = flag.Int("tile", 32, "tile size")
		labels     = flag.String("labels", "auto", "training labels: manual | auto")
		labSpec    = flag.String("labeler", "hsv", "auto-labeling engine: hsv|kmeans|gmm[:k]")
		epochs     = flag.Int("epochs", 8, "training epochs")
		batch      = flag.Int("batch", 8, "batch size")
		lr         = flag.Float64("lr", 0.01, "Adam learning rate")
		trainFrac  = flag.Float64("train-frac", 0.8, "train/test split fraction")
		maxTiles   = flag.Int("max-tiles", 256, "cap on training tiles (0 = all)")
		testTiles  = flag.Int("test-tiles", 128, "cap on held-out tiles (0 = all)")
		seed       = flag.Uint64("seed", 7, "seed")
		shards     = flag.Int("shards", 0, "scene shards (0 = one per two workers)")
		workers    = flag.Int("workers", 0, "label-stage workers (0 = kernel pool size)")
		prefetch   = flag.Int("prefetch", 2, "bounded prefetch depth between stages")
		state      = flag.String("state", "", "state directory for resumable per-stage checkpoints")
		ckpt       = flag.String("ckpt", "", "model checkpoint path (default <state>/model.ckpt or unet.ckpt)")
		procs      = flag.Int("procs", 0, "worker threads for the compute kernels (0 = all cores)")
		quarantine = flag.Bool("quarantine", false, "drop scenes that stay poisoned through retries into a report instead of failing the run")
		verify     = flag.Bool("verify-state", false, "scrub mode: verify the -state directory's on-disk integrity (shard checkpoints, model checkpoint), report per section, and exit")
	)
	flag.Parse()
	if *verify {
		if *state == "" {
			log.Fatal("-verify-state requires -state <dir>")
		}
		verifyState(*state, *ckpt)
		return
	}
	pool.SetSharedWorkers(*procs)
	log.Printf("compute kernels: %d workers", pool.Shared().Workers())

	var modelCfg unet.Config
	switch *preset {
	case "fast":
		modelCfg = unet.FastConfig(*seed)
	case "paper":
		modelCfg = unet.PaperConfig(*seed)
	default:
		log.Fatalf("unknown preset %q", *preset)
	}
	if *tile < modelCfg.MinInputSize() {
		log.Fatalf("tile size %d below the %s preset's minimum %d", *tile, *preset, modelCfg.MinInputSize())
	}
	var labKind dataset.LabelKind
	switch *labels {
	case "manual":
		labKind = dataset.ManualLabels
	case "auto":
		labKind = dataset.AutoLabels
	default:
		log.Fatalf("unknown label kind %q", *labels)
	}

	modelPath := *ckpt
	shardDir, evalPath := "", ""
	if *state != "" {
		if err := os.MkdirAll(*state, 0o755); err != nil {
			log.Fatal(err)
		}
		shardDir = filepath.Join(*state, "shards")
		evalPath = filepath.Join(*state, "eval.txt")
		if modelPath == "" {
			modelPath = filepath.Join(*state, "model.ckpt")
		}
	}
	if modelPath == "" {
		modelPath = "unet.ckpt"
	}

	cc := scene.DefaultCollection(*seed)
	cc.Scenes = *scenes
	cc.W, cc.H = *size, *size

	build := dataset.DefaultBuild()
	build.TileSize = *tile
	eng, err := labeler.Parse(*labSpec, *seed)
	if err != nil {
		log.Fatal(err)
	}
	build.Labeler = eng

	plan := &pipeline.TrainPlan{
		TrainFrac: *trainFrac, SplitSeed: *seed,
		TrainTiles: *maxTiles, TrainSeed: *seed,
		TestTiles: *testTiles, TestSeed: *seed + 1,
		Image: dataset.OriginalImages, Labels: labKind,
		BatchSize: *batch, BatchSeed: *seed,
	}
	st, err := pipeline.New(pipeline.CollectionSource{Cfg: cc}, pipeline.Config{
		Build:         build,
		Shards:        *shards,
		Workers:       *workers,
		Prefetch:      *prefetch,
		CheckpointDir: shardDir,
		Quarantine:    *quarantine,
		Plan:          plan,
		Progress: func(ev pipeline.Event) {
			switch ev.Kind {
			case "resume":
				log.Printf("label: shard %d/%d restored from checkpoint", ev.Shard+1, ev.Shards)
			case "quarantine":
				log.Printf("label: poisoned scene on shard %d/%d quarantined", ev.Shard+1, ev.Shards)
			case "shard":
				log.Printf("label: shard %d/%d done (%d/%d scenes)", ev.Shard+1, ev.Shards, ev.ScenesDone, ev.Scenes)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	// Stage: train — streamed, overlapping with labeling — unless a
	// model checkpoint from an identical configuration already exists
	// under -state. The key file ties the checkpoint to every flag that
	// shapes the trained weights, mirroring the fingerprint guard on
	// shard checkpoints: a stale or mismatched model retrains instead of
	// being silently reported as the requested configuration.
	modelKey := fmt.Sprintf("preset=%s seed=%d scenes=%d size=%d tile=%d labels=%s labeler=%s epochs=%d batch=%d lr=%g train-frac=%g max-tiles=%d",
		*preset, *seed, *scenes, *size, *tile, *labels, build.LabelerKey(), *epochs, *batch, *lr, *trainFrac, *maxTiles)
	keyPath := modelPath + ".key"
	var model *unet.Model[float64]
	if prev, readErr := os.ReadFile(keyPath); *state != "" && readErr == nil && string(prev) == modelKey {
		model, err = unet.LoadFile[float64](modelPath)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("train: resumed model from %s", modelPath)
	} else {
		if *state != "" && readErr == nil {
			log.Printf("train: %s was trained with different flags (%s); retraining", modelPath, string(prev))
		}
		batches, err := st.TrainBatches()
		if err != nil {
			log.Fatal(err)
		}
		model, err = unet.New[float64](modelCfg)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := train.FitStream(model, batches, train.Config{
			Epochs: *epochs, BatchSize: *batch, LR: *lr, Seed: *seed,
			Progress: func(epoch int, loss float64) {
				log.Printf("train: epoch %d loss %.4f", epoch, loss)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		log.Printf("train: %d steps in %s (streamed; first batches consumed while later shards labeled)",
			res.Steps, elapsed.Round(time.Millisecond))
		if err := model.SaveFile(modelPath); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(keyPath, []byte(modelKey), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("train: checkpoint written to %s", modelPath)
	}
	if err := st.CheckpointErr(); err != nil {
		log.Printf("warning: %v", err)
	}
	for _, q := range st.Quarantined() {
		log.Printf("quarantine: scene %d dropped — %s", q.Scene, q.Reason)
	}

	// Stage: eval — held-out tiles, filtered imagery, manual labels.
	heldOut, err := st.TestTiles()
	if err != nil {
		log.Fatal(err)
	}
	conf, err := train.Evaluate(model, dataset.Samples(heldOut, dataset.FilteredImages, dataset.ManualLabels))
	if err != nil {
		log.Fatal(err)
	}
	report := fmt.Sprintf("validation accuracy (filtered imagery, manual labels, %d tiles): %.2f%%\n%s",
		len(heldOut), 100*conf.Accuracy(), conf)
	fmt.Print(report)
	if evalPath != "" {
		if err := os.WriteFile(evalPath, []byte(report), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("eval: report written to %s", evalPath)
	}
}

// verifyState is the -verify-state scrub mode: it checks every on-disk
// artifact under the state directory — each shard checkpoint's
// checksummed layout and the model checkpoint's decodability — printing
// a per-section report and exiting non-zero if anything fails to verify.
func verifyState(state, ckpt string) {
	bad := false

	shardDir := filepath.Join(state, "shards")
	paths, _ := filepath.Glob(filepath.Join(shardDir, "shard-*.gob"))
	if len(paths) == 0 {
		fmt.Printf("shards: none found under %s\n", shardDir)
	}
	for _, p := range paths {
		scenes, tiles, err := pipeline.VerifyShardFile(p)
		if err != nil {
			fmt.Printf("shard %s: CORRUPT — %v\n", filepath.Base(p), err)
			bad = true
			continue
		}
		fmt.Printf("shard %s: OK — header ok, CRC ok, %d scenes, %d tiles\n", filepath.Base(p), scenes, tiles)
	}

	modelPath := ckpt
	if modelPath == "" {
		modelPath = filepath.Join(state, "model.ckpt")
	}
	if _, err := os.Stat(modelPath); err != nil {
		fmt.Printf("model %s: absent\n", modelPath)
	} else if _, err := unet.LoadFile[float64](modelPath); err != nil {
		fmt.Printf("model %s: CORRUPT — %v\n", modelPath, err)
		bad = true
	} else {
		fmt.Printf("model %s: OK\n", modelPath)
	}

	if bad {
		log.Fatalf("state directory %s failed verification", state)
	}
}
