package train

import (
	"math"
	"testing"

	"seaice/internal/pool"
	"seaice/internal/unet"
)

// mixedParityTol bounds the relative per-epoch loss difference between
// two epochs of float32 mixed-precision training (float32
// activations/gradients, float64 master weights in Adam) and the same
// two epochs on the float64 reference path. float32 carries ~7 decimal
// digits; per-pixel probability errors (~1e-7 relative) largely average
// out in the mean loss, and the f64 master weights keep the update
// trajectories aligned. Measured drift on this workload is ≤1e-7
// relative; the bound leaves ~100× headroom for deeper models and other
// hosts without being able to mask a real numeric defect (a broken
// kernel shifts the loss at the 1e-1 level).
const mixedParityTol = 1e-5

// TestMixedPrecisionLossParity is the mixed-precision acceptance gate:
// two epochs of f32+master training must track the f64 reference losses
// within mixedParityTol relative — at every pool size. Bit-identity is
// precision-scoped (each precision is deterministic at any worker
// count); across precisions this tolerance is the guarantee.
func TestMixedPrecisionLossParity(t *testing.T) {
	defer pool.SetSharedWorkers(0)
	samples := paritySamples(43, 16, 16)
	model := unet.FastConfig(4)

	fit64 := func() []float64 {
		m, err := unet.New[float64](model)
		if err != nil {
			t.Fatalf("model: %v", err)
		}
		res, err := Fit(m, samples, Config{Epochs: 2, BatchSize: 8, LR: 0.01, Seed: 6})
		if err != nil {
			t.Fatalf("fit f64: %v", err)
		}
		return res.EpochLosses
	}
	fit32 := func() []float64 {
		m, err := unet.New[float32](model)
		if err != nil {
			t.Fatalf("model: %v", err)
		}
		res, err := Fit(m, samples, Config{Epochs: 2, BatchSize: 8, LR: 0.01, Seed: 6, MasterWeights: true})
		if err != nil {
			t.Fatalf("fit f32: %v", err)
		}
		return res.EpochLosses
	}

	pool.SetSharedWorkers(1)
	want := fit64()
	for _, workers := range []int{1, 4} {
		pool.SetSharedWorkers(workers)
		got := fit32()
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d epochs, want %d", workers, len(got), len(want))
		}
		for e := range want {
			rel := math.Abs(got[e]-want[e]) / math.Abs(want[e])
			t.Logf("workers=%d epoch %d: f32 %.8f vs f64 %.8f (rel %.2e)", workers, e, got[e], want[e], rel)
			if rel > mixedParityTol {
				t.Fatalf("workers=%d epoch %d: f32 loss %.8f vs f64 %.8f (rel %.2e > %g)",
					workers, e, got[e], want[e], rel, mixedParityTol)
			}
		}
	}

	// The f32 epoch losses themselves must be deterministic across worker
	// counts — the precision-scoped bit-identity guarantee end-to-end.
	pool.SetSharedWorkers(1)
	a := fit32()
	pool.SetSharedWorkers(4)
	b := fit32()
	for e := range a {
		if a[e] != b[e] {
			t.Fatalf("f32 epoch %d loss differs across worker counts: %.17g vs %.17g", e, a[e], b[e])
		}
	}
}
