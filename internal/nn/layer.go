// Package nn implements the neural-network layers of the paper's U-Net —
// 3×3 convolutions with ReLU, 2×2 max-pooling, 2×2 up-convolutions
// (transposed convolutions), skip-connection concatenation, dropout, the
// softmax + categorical cross-entropy loss, and the Adam optimizer — each
// with a hand-derived backward pass verified against finite differences
// in the package tests. There is no autograd: the U-Net in internal/unet
// wires these layers into its encoder–decoder graph explicitly.
//
// Layers cache forward activations for the backward pass, so a layer
// instance supports one in-flight forward/backward pair at a time; the
// data-parallel trainer gives each simulated GPU its own model replica.
//
// Parallelism/bit-identity guarantees: conv kernels take an explicit
// pool — training passes pool.Shared(), the inference session runs them
// serially — and accumulate in the serial reference order, so outputs
// are bit-identical at any worker count (and identical between the
// direct NCHW kernels and the legacy im2col path, see
// SetLegacyKernels). Layer scratch buffers are grow-only: a
// steady-state training step performs a handful of heap allocations.
package nn

import "seaice/internal/tensor"

// Param is one learnable tensor with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
}

// Layer is a differentiable module.
type Layer interface {
	// Name identifies the layer in diagnostics and checkpoints.
	Name() string
	// Forward computes the output; train enables dropout.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes dL/dy and returns dL/dx, accumulating
	// parameter gradients.
	Backward(dy *tensor.Tensor) *tensor.Tensor
	// Params lists learnable parameters (possibly none).
	Params() []*Param
}

// ZeroGrads clears the gradient accumulators of all params.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.Grad.Zero()
	}
}

// CollectParams gathers parameters from several layers.
func CollectParams(layers ...Layer) []*Param {
	var out []*Param
	for _, l := range layers {
		out = append(out, l.Params()...)
	}
	return out
}
