package ring

import (
	"math"
	"testing"
	"testing/quick"

	"seaice/internal/noise"
)

// sumReference computes the expected all-reduce result directly.
func sumReference(vectors [][]float64) []float64 {
	n := len(vectors[0])
	out := make([]float64, n)
	for _, v := range vectors {
		for i := range v {
			out[i] += v[i]
		}
	}
	return out
}

func randVectors(seed uint64, p, n int) [][]float64 {
	rng := noise.NewRNG(seed, 1)
	out := make([][]float64, p)
	for r := range out {
		out[r] = make([]float64, n)
		for i := range out[r] {
			out[r][i] = rng.NormFloat64()
		}
	}
	return out
}

func TestAllReduceSumMatchesReference(t *testing.T) {
	for _, tc := range []struct{ p, n int }{
		{1, 5}, {2, 8}, {3, 7}, {4, 16}, {5, 3}, {8, 1000}, {7, 13},
		{3, 1}, {4, 2}, // vector shorter than ring: some chunks are empty
	} {
		vectors := randVectors(uint64(tc.p*1000+tc.n), tc.p, tc.n)
		want := sumReference(vectors)
		if err := AllReduceSum(vectors); err != nil {
			t.Fatalf("p=%d n=%d: %v", tc.p, tc.n, err)
		}
		for r := 0; r < tc.p; r++ {
			for i := 0; i < tc.n; i++ {
				if math.Abs(vectors[r][i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
					t.Fatalf("p=%d n=%d: rank %d elem %d = %g, want %g", tc.p, tc.n, r, i, vectors[r][i], want[i])
				}
			}
		}
	}
}

// TestAllReduceSumProperty: for arbitrary rank counts and lengths, every
// rank converges to the reference sum.
func TestAllReduceSumProperty(t *testing.T) {
	f := func(seed uint64, pRaw, nRaw uint8) bool {
		p := int(pRaw)%9 + 1
		n := int(nRaw) % 64
		vectors := randVectors(seed, p, n)
		want := sumReference(vectors)
		if err := AllReduceSum(vectors); err != nil {
			return false
		}
		for r := 0; r < p; r++ {
			for i := 0; i < n; i++ {
				if math.Abs(vectors[r][i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceMean(t *testing.T) {
	vectors := randVectors(11, 4, 10)
	want := sumReference(vectors)
	for i := range want {
		want[i] /= 4
	}
	if err := AllReduceMean(vectors); err != nil {
		t.Fatal(err)
	}
	for r := range vectors {
		for i := range want {
			if math.Abs(vectors[r][i]-want[i]) > 1e-9 {
				t.Fatalf("rank %d elem %d = %g, want %g", r, i, vectors[r][i], want[i])
			}
		}
	}
}

func TestNaiveAllReduceMatchesRing(t *testing.T) {
	a := randVectors(22, 5, 37)
	b := make([][]float64, len(a))
	for r := range a {
		b[r] = append([]float64(nil), a[r]...)
	}
	if err := AllReduceSum(a); err != nil {
		t.Fatal(err)
	}
	if err := NaiveAllReduceSum(b); err != nil {
		t.Fatal(err)
	}
	for r := range a {
		for i := range a[r] {
			if math.Abs(a[r][i]-b[r][i]) > 1e-9*(1+math.Abs(b[r][i])) {
				t.Fatalf("ring and naive disagree at rank %d elem %d: %g vs %g", r, i, a[r][i], b[r][i])
			}
		}
	}
}

func TestBroadcast(t *testing.T) {
	vectors := randVectors(33, 4, 9)
	src := append([]float64(nil), vectors[0]...)
	if err := Broadcast(vectors); err != nil {
		t.Fatal(err)
	}
	for r := range vectors {
		for i := range src {
			if vectors[r][i] != src[i] {
				t.Fatalf("rank %d not broadcast at %d", r, i)
			}
		}
	}
}

func TestAllReduceErrors(t *testing.T) {
	if err := AllReduceSum[float64](nil); err == nil {
		t.Fatal("expected error for zero ranks")
	}
	if err := AllReduceSum([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("expected error for mismatched lengths")
	}
}
