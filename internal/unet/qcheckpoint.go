package unet

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"seaice/internal/tensor"
)

// Quantized checkpoint format (version 3). The stream begins with the
// shared magic text and the version byte \x03, followed by a gob of
// checkpointV3: the architecture, the float64 master weights, and the
// calibrated activation quantization table. Storing the master plus the
// scale/zero-point tables — rather than the derived int8 tensors — keeps
// the file a superset of a float checkpoint: quantization is
// deterministic, so LoadQuantized rebuilds bit-identical integer tables,
// and the same file can be loaded as a float model for re-training or
// re-calibration.
const ckptMagicV3 = "SEAICE-UNET-CKPT\x03"

// checkpointV3 is the on-disk quantized format.
type checkpointV3 struct {
	Config  Config
	Weights map[string][]float64
	Acts    map[string]tensor.ActQuant
}

// Save writes the quantized checkpoint (version 3).
func (q *QuantModel) Save(w io.Writer) error {
	ck := checkpointV3{Config: q.cfg, Weights: q.weights, Acts: q.acts}
	if _, err := io.WriteString(w, ckptMagicV3); err != nil {
		return fmt.Errorf("unet: save: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(ck); err != nil {
		return fmt.Errorf("unet: save: %w", err)
	}
	return nil
}

// SaveFile writes a quantized checkpoint file.
func (q *QuantModel) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("unet: %w", err)
	}
	defer f.Close()
	if err := q.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadQuantized reconstructs an int8 model from a version-3 checkpoint
// stream. Like Load, any malformed input — wrong magic or version,
// truncated or garbage gob, impossible config, missing or mis-sized
// weights, corrupt scale tables or out-of-domain zero-points — returns
// an error wrapping ErrBadCheckpoint and never panics
// (FuzzLoadCheckpoint asserts this for both loaders).
func LoadQuantized(r io.Reader) (*QuantModel, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(ckptMagicV3))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if string(head) != ckptMagicV3 {
		if string(head[:len(ckptMagicV3)-1]) == ckptMagicV3[:len(ckptMagicV3)-1] {
			return nil, fmt.Errorf("%w: checkpoint version %d is not quantized (version 3)",
				ErrBadCheckpoint, head[len(ckptMagicV3)-1])
		}
		return nil, fmt.Errorf("%w: bad magic", ErrBadCheckpoint)
	}
	var ck checkpointV3
	if err := gob.NewDecoder(br).Decode(&ck); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	qm, err := buildQuant(ck.Config, ck.Weights, ck.Acts)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	return qm, nil
}

// LoadQuantizedFile reads a quantized checkpoint file.
func LoadQuantizedFile(path string) (*QuantModel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("unet: %w", err)
	}
	defer f.Close()
	return LoadQuantized(f)
}

// LoadMasterFromQuantized loads the float64 master embedded in a
// version-3 checkpoint — the re-training/re-calibration escape hatch.
func LoadMasterFromQuantized(r io.Reader) (*Model[float64], error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(ckptMagicV3))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if string(head) != ckptMagicV3 {
		return nil, fmt.Errorf("%w: not a quantized checkpoint", ErrBadCheckpoint)
	}
	var ck checkpointV3
	if err := gob.NewDecoder(br).Decode(&ck); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	m, err := New[float64](ck.Config)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if err := m.SetWeightsF64(ck.Weights); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	return m, nil
}
