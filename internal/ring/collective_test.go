package ring

import (
	"math"
	"sync"
	"testing"
)

// fillVecs builds p deterministic, distinct vectors of length n.
func fillVecs[S Scalar](p, n int) [][]S {
	vecs := make([][]S, p)
	for r := range vecs {
		vecs[r] = make([]S, n)
		for i := range vecs[r] {
			vecs[r][i] = S(math.Sin(float64(r*1000+i)) * float64(r+1))
		}
	}
	return vecs
}

func cloneVecs[S Scalar](vecs [][]S) [][]S {
	out := make([][]S, len(vecs))
	for r := range vecs {
		out[r] = append([]S(nil), vecs[r]...)
	}
	return out
}

// runLocal drives one collective call on every rank concurrently.
func runLocal[S Scalar](t *testing.T, ranks []*Local[S], call func(l *Local[S]) error) {
	t.Helper()
	errs := make([]error, len(ranks))
	var wg sync.WaitGroup
	for r, l := range ranks {
		wg.Add(1)
		go func(r int, l *Local[S]) {
			defer wg.Done()
			errs[r] = call(l)
		}(r, l)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestLocalCollectiveParity asserts the per-rank Local collective is
// bit-identical to calling the shared-memory collectives directly — the
// baseline every transport implementation is then compared against.
func TestLocalCollectiveParity(t *testing.T) {
	testLocalParity[float64](t)
	testLocalParity[float32](t)
}

func testLocalParity[S Scalar](t *testing.T) {
	t.Helper()
	const p, n, chunk = 3, 1009, 128

	want := fillVecs[S](p, n)
	got := cloneVecs(want)
	if err := AllReduceMeanChunked(want, chunk); err != nil {
		t.Fatal(err)
	}

	ranks, err := NewLocal[S](p)
	if err != nil {
		t.Fatal(err)
	}
	runLocal(t, ranks, func(l *Local[S]) error {
		l.StepStart(0)
		return l.AllReduceMean(got[l.Rank()], chunk)
	})
	for r := range want {
		for i := range want[r] {
			if want[r][i] != got[r][i] {
				t.Fatalf("%s reduce: rank %d idx %d: %v != %v",
					precision[S](), r, i, got[r][i], want[r][i])
			}
		}
	}

	// Broadcast: rank 0's vector must land bit-exactly on every rank.
	bvecs := fillVecs[S](p, n)
	src := append([]S(nil), bvecs[0]...)
	runLocal(t, ranks, func(l *Local[S]) error {
		return l.Broadcast(bvecs[l.Rank()])
	})
	for r := range bvecs {
		for i := range src {
			if bvecs[r][i] != src[i] {
				t.Fatalf("%s broadcast: rank %d idx %d differs", precision[S](), r, i)
			}
		}
	}

	// Commit and Reestablish are plain barriers in process.
	runLocal(t, ranks, func(l *Local[S]) error { return l.Commit(7) })
	runLocal(t, ranks, func(l *Local[S]) error {
		step, err := l.Reestablish(7)
		if err == nil && step != 7 {
			t.Errorf("reestablish returned step %d", step)
		}
		return err
	})
}

func precision[S Scalar]() string {
	var z S
	if _, ok := any(z).(float32); ok {
		return "float32"
	}
	return "float64"
}

// TestLocalSingleRank checks the p=1 degenerate case is the identity.
func TestLocalSingleRank(t *testing.T) {
	ranks, err := NewLocal[float64](1)
	if err != nil {
		t.Fatal(err)
	}
	l := ranks[0]
	vec := []float64{1, 2, 3}
	if err := l.AllReduceMean(vec, 0); err != nil {
		t.Fatal(err)
	}
	if vec[0] != 1 || vec[1] != 2 || vec[2] != 3 {
		t.Fatalf("p=1 all-reduce changed the vector: %v", vec)
	}
	if err := l.Commit(0); err != nil {
		t.Fatal(err)
	}
}
