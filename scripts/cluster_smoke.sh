#!/usr/bin/env sh
# cluster_smoke.sh — end-to-end cluster smoke test, run by CI.
#
# Proves the two tentpole invariants with real processes on loopback:
#   1. A 3-process TCP training run (seaice-train -peers) with an
#      injected network partition finishes with weights byte-identical
#      to the never-failed single-process 3-worker run — for float64
#      and for float32 mixed precision ("weights sha256" lines match).
#   2. A 2-node sharded-serve cluster (seaice-serve -nodes coordinator)
#      answers a scene round trip with exactly the bytes a single
#      server produces, and keeps answering after one worker is killed.
#   3. Under offered load past capacity with a latched slow node and
#      client deadlines attached, the error surface stays bounded:
#      every request resolves as 200 (served), 429 (shed at admission),
#      or 504 (deadline expired before compute) — never a 5xx, a hang,
#      or a dropped connection — and an infeasible 1 ms budget is
#      refused or expired up front, never computed.
set -eu

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
PIDS=""
cleanup() {
    [ -n "$PIDS" ] && kill $PIDS 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

go build -o "$TMP/seaice-train" ./cmd/seaice-train
go build -o "$TMP/seaice-serve" ./cmd/seaice-serve
go build -o "$TMP/seaice-label" ./cmd/seaice-label

TRAIN_FLAGS="-scenes 4 -size 64 -tile 16 -epochs 2 -batch 4 -max-tiles 32 -seed 7"
PEERS="127.0.0.1:17731,127.0.0.1:17732,127.0.0.1:17733"
FAULT="21:part@2:r1"

sha_of() { grep -o 'weights sha256: [0-9a-f]*' "$1" | head -n1 | cut -d' ' -f3; }

for prec in f64 f32; do
    echo "== training parity ($prec): golden single-process 3-worker run"
    "$TMP/seaice-train" $TRAIN_FLAGS -precision "$prec" -workers 3 \
        -ckpt "$TMP/golden-$prec.ckpt" >"$TMP/golden-$prec.log" 2>&1
    GOLD=$(sha_of "$TMP/golden-$prec.log")
    [ -n "$GOLD" ] || { echo "FAIL: golden run printed no weights sha256"; cat "$TMP/golden-$prec.log"; exit 1; }

    echo "== training parity ($prec): 3 loopback ranks with a network partition"
    RANK_PIDS=""
    for r in 0 1 2; do
        "$TMP/seaice-train" $TRAIN_FLAGS -precision "$prec" -peers "$PEERS" -rank "$r" \
            -chaos "$FAULT" -ckpt "$TMP/net-$prec.ckpt" >"$TMP/rank$r-$prec.log" 2>&1 &
        RANK_PIDS="$RANK_PIDS $!"
    done
    for pid in $RANK_PIDS; do
        wait "$pid" || { echo "FAIL: a cluster rank exited non-zero"; tail -n 20 "$TMP"/rank*-"$prec".log; exit 1; }
    done
    for r in 0 1 2; do
        GOT=$(sha_of "$TMP/rank$r-$prec.log")
        if [ "$GOT" != "$GOLD" ]; then
            echo "FAIL ($prec): rank $r weights $GOT != golden $GOLD"
            tail -n 20 "$TMP/rank$r-$prec.log"
            exit 1
        fi
    done
    grep -q 'part@2' "$TMP/rank1-$prec.log" || {
        echo "FAIL ($prec): partition fault was never delivered"; exit 1; }
    echo "ok: all 3 ranks recovered to golden weights $GOLD"
done

echo "== corruption parity: bitflip + NaN gradient injected into 3 TCP ranks"
# Silent-corruption defense end to end with real processes: one bit
# flipped in a data frame (after its CRC — the trailer must catch it)
# and one NaN planted in a rank's gradient (the -guard scan must roll
# it back). Both are transient, so the run must finish byte-identical
# to the clean f64 golden run.
GOLD=$(sha_of "$TMP/golden-f64.log")
CFAULT="51:bitflip@3:r1,nanstep@4:r0"
RANK_PIDS=""
for r in 0 1 2; do
    "$TMP/seaice-train" $TRAIN_FLAGS -precision f64 -peers "$PEERS" -rank "$r" \
        -chaos "$CFAULT" -guard skip -ckpt "$TMP/corrupt.ckpt" >"$TMP/crank$r.log" 2>&1 &
    RANK_PIDS="$RANK_PIDS $!"
done
for pid in $RANK_PIDS; do
    wait "$pid" || { echo "FAIL: a corruption-run rank exited non-zero"; tail -n 20 "$TMP"/crank*.log; exit 1; }
done
for r in 0 1 2; do
    GOT=$(sha_of "$TMP/crank$r.log")
    if [ "$GOT" != "$GOLD" ]; then
        echo "FAIL: corrupted-run rank $r weights $GOT != golden $GOLD"
        tail -n 20 "$TMP/crank$r.log"
        exit 1
    fi
done
grep -q 'delivered bitflip@3' "$TMP/crank1.log" || {
    echo "FAIL: bitflip fault was never delivered"; exit 1; }
grep -q 'delivered nanstep@4' "$TMP/crank0.log" || {
    echo "FAIL: nanstep fault was never delivered"; exit 1; }
grep -q 'guard:' "$TMP/crank0.log" || {
    echo "FAIL: the numeric guard never saw the injected NaN"; exit 1; }
echo "ok: bitflip + NaN runs recovered to golden weights $GOLD"

echo "== sharded serve: 2 worker nodes behind a coordinator"
"$TMP/seaice-label" -scenes 1 -size 64 -out "$TMP/scenes" >/dev/null 2>&1
SCENE="$TMP/scenes/scene00.png"
[ -f "$SCENE" ] || { echo "FAIL: no scene PNG generated"; exit 1; }

CKPT="$TMP/golden-f32.ckpt"
"$TMP/seaice-serve" -ckpt "$CKPT" -tile 32 -addr 127.0.0.1:17741 >"$TMP/worker1.log" 2>&1 &
W1=$!
"$TMP/seaice-serve" -ckpt "$CKPT" -tile 32 -addr 127.0.0.1:17742 >"$TMP/worker2.log" 2>&1 &
W2=$!
"$TMP/seaice-serve" -nodes 127.0.0.1:17741,127.0.0.1:17742 -tile 32 \
    -addr 127.0.0.1:17740 >"$TMP/coord.log" 2>&1 &
CO=$!
PIDS="$W1 $W2 $CO"

wait_healthy() {
    i=0
    until curl -sf "http://$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -gt 50 ] && { echo "FAIL: $1 never became healthy"; exit 1; }
        sleep 0.2
    done
}
wait_healthy 127.0.0.1:17741
wait_healthy 127.0.0.1:17742
wait_healthy 127.0.0.1:17740

curl -sf -X POST --data-binary @"$SCENE" -H 'Content-Type: image/png' \
    "http://127.0.0.1:17741/classify" -o "$TMP/single.png"
curl -sf -X POST --data-binary @"$SCENE" -H 'Content-Type: image/png' \
    "http://127.0.0.1:17740/classify" -o "$TMP/sharded.png"
cmp -s "$TMP/single.png" "$TMP/sharded.png" || {
    echo "FAIL: sharded label map differs from single-server output"; exit 1; }
echo "ok: sharded round trip matches single-server bytes"

echo "== sharded serve: kill one worker, coordinator must reroute"
kill "$W1" 2>/dev/null
wait "$W1" 2>/dev/null || true
PIDS="$W2 $CO"
curl -sf -X POST --data-binary @"$SCENE" -H 'Content-Type: image/png' \
    "http://127.0.0.1:17740/classify" -o "$TMP/rerouted.png"
cmp -s "$TMP/single.png" "$TMP/rerouted.png" || {
    echo "FAIL: post-kill label map differs (rerouting broken)"; exit 1; }
echo "ok: survived worker kill with identical bytes"

echo "== overload: load past capacity with a slow node, deadlines attached"
# Fresh 2-node cluster built to overrun: node A latches a +200ms
# per-batch slow fault, queues are tiny, worker caches are off so every
# request really computes. 32 concurrent deadline-carrying clients then
# storm the coordinator; the only legal outcomes are 200/429/504.
"$TMP/seaice-serve" -ckpt "$CKPT" -tile 32 -addr 127.0.0.1:17751 -workers 1 \
    -batch 1 -queue 2 -cache 0 -chaos "11:slownode@0:200ms" >"$TMP/slow.log" 2>&1 &
S1=$!
"$TMP/seaice-serve" -ckpt "$CKPT" -tile 32 -addr 127.0.0.1:17752 -workers 1 \
    -batch 1 -queue 2 -cache 0 >"$TMP/fast.log" 2>&1 &
S2=$!
"$TMP/seaice-serve" -nodes 127.0.0.1:17751,127.0.0.1:17752 -tile 32 \
    -addr 127.0.0.1:17750 >"$TMP/ocoord.log" 2>&1 &
OC=$!
PIDS="$PIDS $S1 $S2 $OC"
wait_healthy 127.0.0.1:17751
wait_healthy 127.0.0.1:17752
wait_healthy 127.0.0.1:17750

rm -f "$TMP"/code.*
CURL_PIDS=""
i=0
while [ "$i" -lt 32 ]; do
    curl -s -o /dev/null -w '%{http_code}' -X POST --data-binary @"$SCENE" \
        -H 'Content-Type: image/png' -H 'X-Seaice-Deadline-Ms: 2000' \
        "http://127.0.0.1:17750/classify" >"$TMP/code.$i" &
    CURL_PIDS="$CURL_PIDS $!"
    i=$((i + 1))
done
for pid in $CURL_PIDS; do wait "$pid" || true; done

ok=0; shed=0; bad=0
for f in "$TMP"/code.*; do
    c=$(cat "$f")
    case "$c" in
    200) ok=$((ok + 1)) ;;
    429 | 504) shed=$((shed + 1)) ;;
    *)
        bad=$((bad + 1))
        echo "unexpected status '$c' under overload"
        ;;
    esac
done
[ "$bad" -eq 0 ] || {
    echo "FAIL: overload produced statuses outside 200/429/504"
    tail -n 20 "$TMP/ocoord.log"; exit 1; }
[ "$ok" -ge 1 ] || {
    echo "FAIL: nothing served under overload"
    tail -n 20 "$TMP/ocoord.log"; exit 1; }
[ "$shed" -ge 1 ] || {
    echo "FAIL: load past capacity but nothing was shed"; exit 1; }
echo "ok: $ok served, $shed shed (429/504), 0 anomalous"

# An infeasible 1 ms budget aimed at the slow node must be refused at
# admission (429) or expire before compute (504) — its +200ms batch
# latch fires ahead of deadline triage, so a computed 200 is impossible
# and would mean expired work reached a forward pass.
c=$(curl -s -o /dev/null -w '%{http_code}' -X POST --data-binary @"$SCENE" \
    -H 'Content-Type: image/png' -H 'X-Seaice-Deadline-Ms: 1' \
    "http://127.0.0.1:17751/classify")
case "$c" in
429 | 504) ;;
*)
    echo "FAIL: infeasible 1ms-deadline request answered $c, want 429/504"
    exit 1
    ;;
esac
curl -s "http://127.0.0.1:17752/statz" | grep -q '"expired_dropped"' || {
    echo "FAIL: /statz lacks the deadline counters"; exit 1; }
echo "ok: infeasible budget never computed; deadline counters live"

kill "$S1" "$S2" "$OC" 2>/dev/null || true
wait "$S1" 2>/dev/null || true
wait "$S2" 2>/dev/null || true
wait "$OC" 2>/dev/null || true
PIDS="$W2 $CO"

echo "== graceful shutdown: SIGTERM drains and flushes stats"
kill -TERM "$CO" "$W2" 2>/dev/null
wait "$CO" 2>/dev/null || true
wait "$W2" 2>/dev/null || true
PIDS=""
grep -q 'shutdown complete' "$TMP/coord.log" || {
    echo "FAIL: coordinator did not shut down gracefully"; cat "$TMP/coord.log"; exit 1; }
grep -q 'final stats' "$TMP/worker2.log" || {
    echo "FAIL: worker did not flush final stats"; cat "$TMP/worker2.log"; exit 1; }

echo "cluster-smoke: ok"
