package nn

import (
	"sync/atomic"

	"seaice/internal/tensor"
)

// legacyKernels routes Conv2D and ConvTranspose2x2 through the pre-engine
// serial, allocate-per-step implementations (tensor's *Ref kernels). It
// exists so the loss-parity test and BenchmarkTrainStep can run the exact
// pre-PR training path against the engine inside one binary.
var legacyKernels atomic.Bool

// SetLegacyKernels toggles the pre-engine convolution path; it returns the
// previous value so callers can restore it.
func SetLegacyKernels(on bool) bool { return legacyKernels.Swap(on) }

// forwardLegacy is the pre-engine Conv2D.Forward: im2col then a serial
// matrix product, allocating every intermediate.
func (c *Conv2D[S]) forwardLegacy(x *tensor.Tensor[S], n, h, w int) *tensor.Tensor[S] {
	c.x = x
	c.cols = tensor.Im2ColRef(x, c.KH, c.KW, c.Stride, c.Pad)

	out := tensor.MatMulRef(c.Weight.W, c.cols) // (OutC, N·OH·OW)
	// add bias and reorder (OutC, N, OH·OW) → (N, OutC, OH, OW)
	y := tensor.New[S](n, c.OutC, c.outH, c.outW)
	plane := c.outH * c.outW
	for oc := 0; oc < c.OutC; oc++ {
		b := c.Bias.W.Data[oc]
		for img := 0; img < n; img++ {
			src := out.Data[oc*n*plane+img*plane : oc*n*plane+(img+1)*plane]
			dst := y.Data[(img*c.OutC+oc)*plane : (img*c.OutC+oc+1)*plane]
			for i, v := range src {
				dst[i] = v + b
			}
		}
	}
	return y
}

// backwardLegacy is the pre-engine Conv2D.Backward.
func (c *Conv2D[S]) backwardLegacy(dy *tensor.Tensor[S]) *tensor.Tensor[S] {
	n, plane := c.numN, c.outH*c.outW
	// reorder dy (N,OutC,OH,OW) → (OutC, N·OH·OW)
	dout := tensor.New[S](c.OutC, n*plane)
	for oc := 0; oc < c.OutC; oc++ {
		for img := 0; img < n; img++ {
			src := dy.Data[(img*c.OutC+oc)*plane : (img*c.OutC+oc+1)*plane]
			dst := dout.Data[oc*n*plane+img*plane : oc*n*plane+(img+1)*plane]
			copy(dst, src)
		}
	}

	// bias gradient: sum over positions
	for oc := 0; oc < c.OutC; oc++ {
		var sum S
		for _, v := range dout.Data[oc*n*plane : (oc+1)*n*plane] {
			sum += v
		}
		c.Bias.Grad.Data[oc] += sum
	}

	// weight gradient: dW = dout × colsᵀ
	dw := tensor.MatMulABTRef(dout, c.cols)
	c.Weight.Grad.AddInPlace(dw)

	// input gradient: dcols = Wᵀ × dout, then fold back
	dcols := tensor.MatMulATBRef(c.Weight.W, dout)
	return tensor.Col2ImRef(dcols, n, c.InC, c.x.Shape[2], c.x.Shape[3], c.KH, c.KW, c.Stride, c.Pad)
}

// forwardLegacy is the pre-engine ConvTranspose2x2.Forward.
func (u *ConvTranspose2x2[S]) forwardLegacy(x *tensor.Tensor[S]) *tensor.Tensor[S] {
	u.x = x
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	y := tensor.New[S](n, u.OutC, 2*h, 2*w)
	for img := 0; img < n; img++ {
		for ic := 0; ic < u.InC; ic++ {
			wrow := u.Weight.W.Data[ic*u.OutC*4 : (ic+1)*u.OutC*4]
			xp := x.Data[(img*u.InC+ic)*h*w : (img*u.InC+ic+1)*h*w]
			for oc := 0; oc < u.OutC; oc++ {
				k := wrow[oc*4 : oc*4+4]
				yp := y.Data[(img*u.OutC+oc)*4*h*w : (img*u.OutC+oc+1)*4*h*w]
				for iy := 0; iy < h; iy++ {
					row0 := yp[(2*iy)*(2*w):]
					row1 := yp[(2*iy+1)*(2*w):]
					xr := xp[iy*w : (iy+1)*w]
					for ix, v := range xr {
						row0[2*ix] += v * k[0]
						row0[2*ix+1] += v * k[1]
						row1[2*ix] += v * k[2]
						row1[2*ix+1] += v * k[3]
					}
				}
			}
		}
	}
	// bias
	plane := 4 * h * w
	for img := 0; img < n; img++ {
		for oc := 0; oc < u.OutC; oc++ {
			b := u.Bias.W.Data[oc]
			yp := y.Data[(img*u.OutC+oc)*plane : (img*u.OutC+oc+1)*plane]
			for i := range yp {
				yp[i] += b
			}
		}
	}
	return y
}

// backwardLegacy is the pre-engine ConvTranspose2x2.Backward.
func (u *ConvTranspose2x2[S]) backwardLegacy(dy *tensor.Tensor[S]) *tensor.Tensor[S] {
	n, h, w := u.x.Shape[0], u.x.Shape[2], u.x.Shape[3]
	dx := tensor.New[S](n, u.InC, h, w)
	plane := 4 * h * w

	for img := 0; img < n; img++ {
		for oc := 0; oc < u.OutC; oc++ {
			dyp := dy.Data[(img*u.OutC+oc)*plane : (img*u.OutC+oc+1)*plane]
			var sum S
			for _, v := range dyp {
				sum += v
			}
			u.Bias.Grad.Data[oc] += sum
		}
		for ic := 0; ic < u.InC; ic++ {
			xp := u.x.Data[(img*u.InC+ic)*h*w : (img*u.InC+ic+1)*h*w]
			dxp := dx.Data[(img*u.InC+ic)*h*w : (img*u.InC+ic+1)*h*w]
			wrow := u.Weight.W.Data[ic*u.OutC*4 : (ic+1)*u.OutC*4]
			grow := u.Weight.Grad.Data[ic*u.OutC*4 : (ic+1)*u.OutC*4]
			for oc := 0; oc < u.OutC; oc++ {
				k := wrow[oc*4 : oc*4+4]
				gk := grow[oc*4 : oc*4+4]
				dyp := dy.Data[(img*u.OutC+oc)*plane : (img*u.OutC+oc+1)*plane]
				for iy := 0; iy < h; iy++ {
					row0 := dyp[(2*iy)*(2*w):]
					row1 := dyp[(2*iy+1)*(2*w):]
					xr := xp[iy*w : (iy+1)*w]
					dxr := dxp[iy*w : (iy+1)*w]
					for ix := range xr {
						g0, g1, g2, g3 := row0[2*ix], row0[2*ix+1], row1[2*ix], row1[2*ix+1]
						dxr[ix] += g0*k[0] + g1*k[1] + g2*k[2] + g3*k[3]
						v := xr[ix]
						gk[0] += v * g0
						gk[1] += v * g1
						gk[2] += v * g2
						gk[3] += v * g3
					}
				}
			}
		}
	}
	return dx
}
