package pipeline

import (
	"fmt"
	"testing"
	"time"

	"seaice/internal/dataset"
	"seaice/internal/scene"
	"seaice/internal/train"
	"seaice/internal/unet"
)

// BenchmarkLabelStageScene measures the real cost of one scene's worth
// of the label stage (generate + filter + auto-label + tile) at the
// seaice-train default scale (256² scene, 32² tiles). This is the
// calibration input for the modeled-latency overlap benchmark below and
// for BENCH_pipeline.json.
func BenchmarkLabelStageScene(b *testing.B) {
	cc := scene.DefaultCollection(7)
	cc.Scenes = 12
	cc.W, cc.H = 256, 256
	build := dataset.DefaultBuild()
	build.TileSize = 32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := scene.GenerateAt(cc, i%cc.Scenes)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dataset.BuildScene(sc, i%cc.Scenes, build); err != nil {
			b.Fatal(err)
		}
	}
}

// sleepSource models the per-scene acquisition cost (generation here; a
// GEE download in the paper's workflow) with a fixed latency on top of a
// trivially small real scene (32², so real compute is negligible).
// Sleeping stages genuinely overlap on any host — including this
// single-core container — so the measured wall-clock isolates what the
// pipeline's concurrency structure buys from what the host's core count
// buys. Latencies are calibrated at 1/10 of the real 256²-scene stage
// costs measured by the benchmarks above (methodology and real numbers
// in BENCH_pipeline.json).
type sleepSource struct {
	CollectionSource
	perScene time.Duration
}

func (s sleepSource) SceneAt(i int) (*scene.Scene, error) {
	time.Sleep(s.perScene)
	return s.CollectionSource.SceneAt(i)
}

// overlapWorkload is the paper-shaped acceptance workload at 1/10 time
// scale: 66 scenes (the Ross Sea campaign size) whose per-scene label
// stage costs 24ms here (≈240ms real at 256², BenchmarkLabelStageScene),
// and 8 training epochs whose steps cost 1ms here (≈10ms real per
// FastConfig step on 32² tiles, cf. BENCH_train.json at 64²).
type overlapWorkload struct {
	scenes   int
	perScene time.Duration
	epochs   int
	batch    int
	perStep  time.Duration
	workers  int
}

func acceptanceWorkload(workers int) overlapWorkload {
	return overlapWorkload{
		scenes:   66,
		perScene: 24 * time.Millisecond,
		epochs:   8,
		batch:    8,
		perStep:  1 * time.Millisecond,
		workers:  workers,
	}
}

func (w overlapWorkload) stream(b *testing.B) *Stream {
	b.Helper()
	cc := scene.DefaultCollection(7)
	cc.Scenes = w.scenes
	cc.W, cc.H = 32, 32
	build := dataset.DefaultBuild()
	build.TileSize = 16
	st, err := New(sleepSource{CollectionSource{Cfg: cc}, w.perScene}, Config{
		Build:   build,
		Workers: w.workers,
		Shards:  4,
		Plan: &TrainPlan{
			TrainFrac: 0.8, SplitSeed: 7,
			Image: dataset.OriginalImages, Labels: dataset.AutoLabels,
			BatchSize: w.batch, BatchSeed: 7,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// consumeEpochs performs the modeled training: pull every batch of every
// epoch from the stream's double-buffered assembler and sleep the
// per-step cost in its place.
func (w overlapWorkload) consumeEpochs(b *testing.B, st *Stream) {
	b.Helper()
	bs, err := st.TrainBatches()
	if err != nil {
		b.Fatal(err)
	}
	for e := 0; e < w.epochs; e++ {
		next := bs.Epoch(e)
		for {
			pb, err := next()
			if err != nil {
				b.Fatal(err)
			}
			if pb == nil {
				break
			}
			time.Sleep(w.perStep)
		}
	}
}

// runLegacySerial is the run-stages-serially baseline — the exact shape
// this PR replaced: every scene is fetched/generated sequentially
// (scene.GenerateCollection and LegacyBuilder materialize the campaign
// one scene at a time), the batch dataset.Build then filters and labels,
// and only then does training start. The per-step training cost is
// modeled with the same sleeps as the pipelined run, over the identical
// deterministic batch schedule.
func runLegacySerial(b *testing.B, w overlapWorkload) time.Duration {
	b.Helper()
	cc := scene.DefaultCollection(7)
	cc.Scenes = w.scenes
	cc.W, cc.H = 32, 32
	build := dataset.DefaultBuild()
	build.TileSize = 16
	build.Workers = w.workers
	src := sleepSource{CollectionSource{Cfg: cc}, w.perScene}

	start := time.Now()
	set, err := (LegacyBuilder{Build: build}).BuildSet(src)
	if err != nil {
		b.Fatal(err)
	}
	trainTiles, _, err := set.Split(0.8, 7)
	if err != nil {
		b.Fatal(err)
	}
	for e := 0; e < w.epochs; e++ {
		for range train.BatchIndices(len(trainTiles), w.batch, 7, e) {
			time.Sleep(w.perStep)
		}
	}
	return time.Since(start)
}

// runStagewiseSerial is the conservative baseline: the same Stream (so
// the label stage already runs on w.workers concurrent workers), but
// drained to completion before any training step — stages in sequence,
// stage-internal parallelism kept. Identical code to runPipelined except
// for the ordering, so the delta against it is pure stage overlap.
func runStagewiseSerial(b *testing.B, w overlapWorkload) time.Duration {
	b.Helper()
	st := w.stream(b)
	defer st.Close()
	start := time.Now()
	if _, err := st.Set(); err != nil {
		b.Fatal(err)
	}
	w.consumeEpochs(b, st)
	return time.Since(start)
}

// runPipelined overlaps the stages: training consumes batches while
// later shards are still being labeled; the final Set drains whatever
// tail the training epochs did not already force.
func runPipelined(b *testing.B, w overlapWorkload) time.Duration {
	b.Helper()
	st := w.stream(b)
	defer st.Close()
	start := time.Now()
	w.consumeEpochs(b, st)
	if _, err := st.Set(); err != nil {
		b.Fatal(err)
	}
	return time.Since(start)
}

// BenchmarkPipelineOverlap reports modeled end-to-end label+train
// wall-clock:
//
//   - legacy-serial: the replaced run-stages-serially shape (sequential
//     scene materialization, batch build, then training) — the
//     acceptance baseline;
//   - stagewise-serial: the new machinery with stages forced into
//     sequence (isolates pure overlap from stage-internal parallelism);
//   - pipelined: stages overlapped.
//
// The acceptance criterion is pipelined-vs-legacy-serial at 4 workers
// (≥1.3×); recorded numbers live in BENCH_pipeline.json.
func BenchmarkPipelineOverlap(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("legacy-serial/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := runLegacySerial(b, acceptanceWorkload(workers))
				b.ReportMetric(d.Seconds(), "wall-s/op")
			}
		})
		b.Run(fmt.Sprintf("stagewise-serial/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := runStagewiseSerial(b, acceptanceWorkload(workers))
				b.ReportMetric(d.Seconds(), "wall-s/op")
			}
		})
		b.Run(fmt.Sprintf("pipelined/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := runPipelined(b, acceptanceWorkload(workers))
				b.ReportMetric(d.Seconds(), "wall-s/op")
			}
		})
	}
}

func mustModel(b *testing.B, cfg unet.Config) *unet.Model[float64] {
	b.Helper()
	m, err := unet.New[float64](cfg)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkPipelineEndToEndReal is the same comparison on real compute
// (no modeled latencies): 6 scenes of 128², tile 32, 2 epochs of a small
// U-Net. On a single-core host every stage is CPU-bound, so the ratio is
// ≈1×; on multi-core hosts the label stage parallelizes and overlaps
// with training. Recorded alongside the modeled numbers for honesty.
func BenchmarkPipelineEndToEndReal(b *testing.B) {
	cc := scene.DefaultCollection(7)
	cc.Scenes = 6
	cc.W, cc.H = 128, 128
	build := dataset.DefaultBuild()
	build.TileSize = 32
	modelCfg := unet.Config{Depth: 2, BaseChannels: 4, InChannels: 3, Classes: 3, Seed: 11}
	trainCfg := train.Config{Epochs: 2, BatchSize: 8, LR: 0.01, Seed: 7}
	plan := &TrainPlan{
		TrainFrac: 0.8, SplitSeed: 7,
		TrainTiles: 48, TrainSeed: 7,
		Image: dataset.OriginalImages, Labels: dataset.AutoLabels,
		BatchSize: 8, BatchSeed: 7,
	}

	b.Run("serial-stages", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			src := CollectionSource{Cfg: cc}
			set, err := (LegacyBuilder{Build: build}).BuildSet(src)
			if err != nil {
				b.Fatal(err)
			}
			trainTiles, _, err := set.Split(plan.TrainFrac, plan.SplitSeed)
			if err != nil {
				b.Fatal(err)
			}
			trainTiles = dataset.Subsample(trainTiles, plan.TrainTiles, plan.TrainSeed)
			m := mustModel(b, modelCfg)
			samples := dataset.Samples(trainTiles, plan.Image, plan.Labels)
			if _, err := train.Fit(m, samples, trainCfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pipelined", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st, err := New(CollectionSource{Cfg: cc}, Config{Build: build, Workers: 4, Plan: plan})
			if err != nil {
				b.Fatal(err)
			}
			bs, err := st.TrainBatches()
			if err != nil {
				b.Fatal(err)
			}
			m := mustModel(b, modelCfg)
			if _, err := train.FitStream(m, bs, trainCfg); err != nil {
				b.Fatal(err)
			}
			st.Close()
		}
	})
}
