package chaos

import (
	"reflect"
	"testing"
	"time"

	"seaice/internal/simtime"
)

func TestParseSpec(t *testing.T) {
	s, err := Parse("7:crash@3:r1,stall@5:r2:50ms,crash@9,kill@12,stage@2,serve@4")
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 7 {
		t.Fatalf("seed = %d, want 7", s.Seed)
	}
	want := []Fault{
		{Kind: ReplicaCrash, Step: 3, Target: 1},
		{Kind: Straggler, Step: 5, Target: 2, Delay: 50 * time.Millisecond},
		{Kind: ReplicaCrash, Step: 9, Target: -1},
		{Kind: ProcessKill, Step: 12, Target: -1},
		{Kind: StagePanic, Step: 2, Target: -1},
		{Kind: ServePanic, Step: 4, Target: -1},
	}
	if !reflect.DeepEqual(s.Faults, want) {
		t.Fatalf("faults = %+v\nwant %+v", s.Faults, want)
	}
}

func TestParseEmptyDisablesChaos(t *testing.T) {
	s, err := Parse("  ")
	if err != nil || s != nil {
		t.Fatalf("Parse(blank) = %v, %v; want nil, nil", s, err)
	}
	if in := New(nil, 4); in != nil {
		t.Fatalf("New(nil) = %v, want nil injector", in)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"nofaults",           // no ':'
		"x:crash@1",          // bad seed
		"7:",                 // no faults
		"7:boom@1",           // unknown kind
		"7:crash",            // missing @step
		"7:crash@-1",         // negative step
		"7:crash@x",          // non-numeric step
		"7:crash@1:rx",       // bad rank
		"7:kill@1:r2",        // kill takes no rank
		"7:stage@1:r0",       // stage takes no rank
		"7:crash@1:50ms",     // only stall takes a duration
		"7:stall@1:r0:-50ms", // negative duration
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

// TestChaosOneShot asserts each fault fires exactly once and the event
// log records the delivery.
func TestChaosOneShot(t *testing.T) {
	s, err := Parse("1:crash@2:r0,serve@1,stage@3,stall@4:r1:5ms,kill@6")
	if err != nil {
		t.Fatal(err)
	}
	in := New(s, 2)
	if in.Remaining() != 5 {
		t.Fatalf("Remaining = %d, want 5", in.Remaining())
	}

	if !in.ReplicaCrash(0, 2) {
		t.Fatal("crash@2:r0 did not fire")
	}
	if in.ReplicaCrash(0, 2) {
		t.Fatal("crash@2:r0 fired twice")
	}
	if in.ReplicaCrash(1, 2) || in.ReplicaCrash(0, 3) {
		t.Fatal("crash fired for wrong rank/step")
	}

	// serve@1 fires on the second pickup (counted from 0).
	if in.ServePanic() {
		t.Fatal("serve fired on pickup 0")
	}
	if !in.ServePanic() {
		t.Fatal("serve@1 did not fire on pickup 1")
	}
	if in.ServePanic() {
		t.Fatal("serve fired twice")
	}

	if in.StagePanic(2) || !in.StagePanic(3) || in.StagePanic(3) {
		t.Fatal("stage@3 misfired")
	}
	if d := in.StragglerDelay(1, 4); d != 5*time.Millisecond {
		t.Fatalf("stall delay = %v, want 5ms", d)
	}
	if d := in.StragglerDelay(1, 4); d != 0 {
		t.Fatalf("stall fired twice (%v)", d)
	}
	if !in.ProcessKill(6) || in.ProcessKill(6) {
		t.Fatal("kill@6 misfired")
	}

	if in.Remaining() != 0 {
		t.Fatalf("Remaining = %d after delivering all, want 0", in.Remaining())
	}
	if len(in.Events()) != 5 {
		t.Fatalf("event log has %d entries, want 5: %v", len(in.Events()), in.Events())
	}
}

// TestAutoTargetsDeterministic asserts seed-derived victims are stable
// across injector constructions and differ across seeds.
func TestAutoTargetsDeterministic(t *testing.T) {
	spec := "42:crash@1,crash@2,crash@3,stall@4"
	s, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	victims := func(in *Injector) []int {
		out := make([]int, len(in.faults))
		for i, f := range in.faults {
			out[i] = f.Target
		}
		return out
	}
	a, b := victims(New(s, 8)), victims(New(s, 8))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("auto targets differ across constructions: %v vs %v", a, b)
	}
	for _, r := range a {
		if r < 0 || r >= 8 {
			t.Fatalf("auto target %d outside rank domain", r)
		}
	}
	if one := victims(New(s, 1)); !reflect.DeepEqual(one, []int{0, 0, 0, 0}) {
		t.Fatalf("single-rank auto targets = %v, want all zero", one)
	}
}

// TestChaosDeliverVirtual asserts faults land at exact virtual instants
// on the simtime clock, simultaneous faults in schedule order.
func TestChaosDeliverVirtual(t *testing.T) {
	s, err := Parse("3:crash@4:r1,crash@2:r0,stall@2:r1,kill@8")
	if err != nil {
		t.Fatal(err)
	}
	in := New(s, 2)
	var clock simtime.Clock
	type hit struct {
		f  Fault
		at float64
	}
	var got []hit
	in.DeliverVirtual(&clock, 0.25, func(f Fault) {
		got = append(got, hit{f, clock.Now()})
	})
	if end := clock.Run(); end != 2.0 {
		t.Fatalf("final virtual time %v, want 2.0", end)
	}
	want := []hit{
		{Fault{Kind: ReplicaCrash, Step: 2, Target: 0}, 0.5},
		{Fault{Kind: Straggler, Step: 2, Target: 1}, 0.5},
		{Fault{Kind: ReplicaCrash, Step: 4, Target: 1}, 1.0},
		{Fault{Kind: ProcessKill, Step: 8, Target: -1}, 2.0},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("virtual delivery = %+v\nwant %+v", got, want)
	}
	if in.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", in.Remaining())
	}
	for _, ev := range in.Events() {
		if ev.Virtual == 0 {
			t.Fatalf("event %v missing virtual instant", ev)
		}
	}
}

// TestNilInjectorNeverFires asserts every query is nil-safe, so
// instrumented call sites need no guards.
func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	if in.ReplicaCrash(0, 0) || in.ProcessKill(0) || in.StagePanic(0) || in.ServePanic() {
		t.Fatal("nil injector fired")
	}
	if in.StragglerDelay(0, 0) != 0 || in.Remaining() != 0 || in.Events() != nil || in.Pending() != nil {
		t.Fatal("nil injector reported state")
	}
	in.DeliverVirtual(&simtime.Clock{}, 1, nil) // must not panic
}

func TestPendingListsUndelivered(t *testing.T) {
	s, err := Parse("1:crash@9:r0,crash@3:r1")
	if err != nil {
		t.Fatal(err)
	}
	in := New(s, 2)
	in.ReplicaCrash(1, 3)
	p := in.Pending()
	if len(p) != 1 || p[0].Step != 9 {
		t.Fatalf("Pending = %+v, want the crash@9 fault", p)
	}
}

// TestParseNetworkFaults covers the transport-level fault kinds added
// for multi-process training: partitions, slow links, dropped frames,
// and forced reconnects.
func TestParseNetworkFaults(t *testing.T) {
	s, err := Parse("9:part@2:r1,slow@3:r2:25ms,drop@4,reconn@5:r0")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Kind: NetPartition, Step: 2, Target: 1},
		{Kind: SlowLink, Step: 3, Target: 2, Delay: 25 * time.Millisecond},
		{Kind: DropFrame, Step: 4, Target: -1},
		{Kind: Reconnect, Step: 5, Target: 0},
	}
	if !reflect.DeepEqual(s.Faults, want) {
		t.Fatalf("faults = %+v\nwant %+v", s.Faults, want)
	}
	// Durations are rejected everywhere except stall and slow.
	if _, err := Parse("9:part@2:r1:50ms"); err == nil {
		t.Fatal("part with a duration parsed, want error")
	}
	if _, err := Parse("9:drop@2:50ms"); err == nil {
		t.Fatal("drop with a duration parsed, want error")
	}
}

// TestNetworkFaultsOneShot asserts the network fault queries deliver
// exactly once at their (rank, step) coordinates, and that auto-targets
// resolve deterministically from the seed.
func TestNetworkFaultsOneShot(t *testing.T) {
	s, err := Parse("3:part@1:r0,slow@2:r1,drop@2:r0,reconn@3:r2")
	if err != nil {
		t.Fatal(err)
	}
	in := New(s, 3)
	if in.Partition(1, 1) || in.Partition(0, 0) {
		t.Fatal("partition fired at the wrong coordinates")
	}
	if !in.Partition(0, 1) {
		t.Fatal("partition did not fire at (r0, step 1)")
	}
	if in.Partition(0, 1) {
		t.Fatal("partition fired twice")
	}
	if d := in.SlowLink(1, 2); d != defaultStall {
		t.Fatalf("slow link delay = %v, want default %v", d, defaultStall)
	}
	if d := in.SlowLink(1, 2); d != 0 {
		t.Fatal("slow link fired twice")
	}
	if !in.DropFrame(0, 2) {
		t.Fatal("drop did not fire at (r0, step 2)")
	}
	if !in.Reconnect(2, 3) {
		t.Fatal("reconnect did not fire at (r2, step 3)")
	}
	if in.Remaining() != 0 {
		t.Fatalf("%d faults pending after delivery: %v", in.Remaining(), in.Pending())
	}

	// Auto-targeted network faults draw their victim from the seed —
	// the same spec resolves identically in every process of a cluster.
	a := New(mustParse(t, "5:part@4,drop@6"), 3)
	b := New(mustParse(t, "5:part@4,drop@6"), 3)
	for r := 0; r < 3; r++ {
		if a.Partition(r, 4) != b.Partition(r, 4) {
			t.Fatalf("auto-targeted partition diverged at rank %d", r)
		}
		if a.DropFrame(r, 6) != b.DropFrame(r, 6) {
			t.Fatalf("auto-targeted drop diverged at rank %d", r)
		}
	}
}

func mustParse(t *testing.T, spec string) *Schedule {
	t.Helper()
	s, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestParseOverloadFaults covers the serve-plane overload grammar:
// burst@N[:D] (no rank) and slownode@N[:rR][:D].
func TestParseOverloadFaults(t *testing.T) {
	s, err := Parse("9:burst@20:2s,slownode@40:r1:30ms,slownode@5,burst@0")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Kind: LoadBurst, Step: 20, Target: -1, Delay: 2 * time.Second},
		{Kind: SlowNode, Step: 40, Target: 1, Delay: 30 * time.Millisecond},
		{Kind: SlowNode, Step: 5, Target: -1},
		{Kind: LoadBurst, Step: 0, Target: -1},
	}
	if !reflect.DeepEqual(s.Faults, want) {
		t.Fatalf("faults = %+v\nwant %+v", s.Faults, want)
	}
	// Auto-targeting resolves slownode victims from the seed; bursts are
	// global and never rank-targeted.
	in := New(s, 4)
	for i, f := range in.faults {
		if f.Kind == SlowNode && (f.Target < 0 || f.Target >= 4) {
			t.Fatalf("fault %d: slownode target %d not resolved into [0,4)", i, f.Target)
		}
	}
	for _, bad := range []string{
		"9:burst@1:r0",     // burst takes no rank
		"9:slownode@1:rx",  // bad rank
		"9:burst@1:banana", // bad duration
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

// TestServeBatchSlowNodeLatch: the first pickup at or past a slownode
// fault's step latches the delay durably — a sick-but-alive node, not a
// one-shot hiccup — while serve@ panics stay one-shot on the shared
// pickup counter.
func TestServeBatchSlowNodeLatch(t *testing.T) {
	s, err := Parse("3:serve@1,slownode@2:25ms")
	if err != nil {
		t.Fatal(err)
	}
	in := New(s, 1)

	if p, slow := in.ServeBatch(); p || slow != 0 { // pickup 0
		t.Fatalf("pickup 0: panic=%v slow=%v, want false/0", p, slow)
	}
	if p, slow := in.ServeBatch(); !p || slow != 0 { // pickup 1: serve@1
		t.Fatalf("pickup 1: panic=%v slow=%v, want true/0", p, slow)
	}
	for pickup := 2; pickup < 5; pickup++ { // slownode@2 latches
		if p, slow := in.ServeBatch(); p || slow != 25*time.Millisecond {
			t.Fatalf("pickup %d: panic=%v slow=%v, want false/25ms", pickup, p, slow)
		}
	}
	if in.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", in.Remaining())
	}
	// nil injector: no faults, no latch.
	var nilInj *Injector
	if p, slow := nilInj.ServeBatch(); p || slow != 0 {
		t.Fatal("nil injector reported a fault")
	}
}
