// Package cloudfilter implements the paper's thin-cloud and shadow filter
// (§III-A "Filtering Out the Thin Clouds and Shadows"). The paper builds
// the filter from classical OpenCV operations — RGB→HSV conversion, noise
// filtering, bitwise operations, absolute difference, Otsu / truncated /
// binary thresholding, and min-max normalization — and this package
// composes the same operator inventory (implemented in internal/imgproc)
// into a two-stage correction:
//
//  1. Thin-cloud (veil) removal. A thin cloud alpha-blends the surface
//     toward a bright veil color, so the darkest pixel in any
//     neighborhood bounds the veil opacity from below (over open water
//     the observed brightness is almost purely veil). The filter
//     estimates per-pixel opacity from a min-filtered value channel
//     (dark-object subtraction), smooths it to the cloud's spatial
//     scale, gates it where no dark evidence exists (a window of pure
//     bright ice carries no signal — and needs no correction, because a
//     white veil over white ice is invisible), and inverts the blend
//     per channel.
//
//  2. Cloud-shadow removal. A shadow multiplies all channels equally, so
//     it lowers brightness while leaving saturation unchanged. Pixels
//     that are mid-bright but nearly unsaturated can only be shadowed
//     thick ice (clean thin ice is always blue-tinted); each such pixel
//     votes for the local shadow strength, the votes are smoothed into
//     a field, and the attenuation is divided back out.
//
// The residual errors of this filter — faint veil over bright ice,
// shadows falling only on water — are exactly the failure modes the paper
// reports surviving its filter (Fig 13's remaining off-diagonal mass).
//
// Filter is a deterministic pure function of (image, config) with no
// shared state, so the pipeline's stage workers run it concurrently on
// different scenes with bit-identical results; it operates at full
// scene scale because its neighborhood statistics need more context
// than a single tile.
package cloudfilter

import (
	"math"

	"seaice/internal/colorspace"
	"seaice/internal/imgproc"
	"seaice/internal/raster"
)

// Config tunes the filter. Defaults follow the scene geometry of the
// Ross Sea dataset (cloud fields ~an order of magnitude smoother than ice
// texture).
type Config struct {
	// VeilColor is the assumed thin-cloud color (R, G, B).
	VeilColor [3]float64
	// DarkRadius is the min-filter window radius for the dark-object
	// veil estimate; it must exceed the ice floe scale so most windows
	// see some dark surface.
	DarkRadius int
	// VeilSmoothSigma smooths the opacity estimate to cloud scale.
	VeilSmoothSigma float64
	// WaterCeil is the brightest value clean open water can take (the
	// paper's water band ends at V=30).
	WaterCeil float64
	// DarkFloor is the typical darkest surface value; the veil
	// estimate treats the window minimum as DarkFloor seen through the
	// veil. Setting it near the true water floor (rather than the band
	// ceiling) keeps the opacity estimate unbiased.
	DarkFloor float64
	// OpacityGate excludes veil-corrected pixels from the shadow
	// stage: residual veil looks exactly like shadowed thick ice
	// (mid-bright, desaturated) and must not feed the shadow field.
	OpacityGate float64
	// MaxOpacity caps the veil estimate; thin clouds are translucent.
	MaxOpacity float64
	// AmbiguousMin is the min-filter level above which a window holds
	// no dark evidence and veil correction is disabled.
	AmbiguousMin float64
	// AmbiguousLow is the min-filter level above which dark evidence
	// becomes ambiguous (a clear field of mid-bright thin ice and a
	// heavy veil over dark water produce the same window minimum); in
	// that band the saturation gate decides.
	AmbiguousLow float64
	// SatGate is the window-mean saturation above which an ambiguous
	// window is judged clear: a veil desaturates every surface below
	// it, while clean thin ice keeps a visible blue tint.
	SatGate uint8
	// SatShadowFloor: an ambiguous window whose mean saturation falls
	// BELOW this is pure (possibly shadowed) thick ice — a veil with
	// dark evidence always leaves moderate residual saturation, while
	// thick ice is nearly gray. Such windows get no veil correction;
	// the shadow stage owns them.
	SatShadowFloor uint8
	// SatGateLow disambiguates the low band (window min between water
	// ceiling and AmbiguousLow): clear dark young ice is strongly
	// saturated blue (S ≈ 107+) and clear water even more so, while a
	// light veil over water already drags the window mean below ~90.
	SatGateLow uint8
	// GrayVMax is the upper brightness bound of the per-pixel gray
	// exemption: a near-gray pixel up to this value is thick ice
	// (possibly shadowed or marginal) and is never veil-inverted.
	// Veiled thin ice bright enough to need inversion keeps S ≥ ~25,
	// so it is not exempted.
	GrayVMax float64
	// SatClearMin is the per-pixel saturation above which a pixel is
	// certainly clear (strongly blue young ice or open water): no
	// surface under a correctable veil keeps S ≥ ~93, so such pixels
	// are exempt from veil inversion even where the opacity field
	// spills past a cloud boundary.
	SatClearMin uint8
	// MinOpacity zeroes negligible veil estimates.
	MinOpacity float64

	// ShadowSatMax and ShadowVMin/ShadowVMax delimit the "shadowed
	// thick ice" evidence region: nearly unsaturated but too dark for
	// clean thick ice.
	ShadowSatMax  uint8
	ShadowVMin    float64
	ShadowVMax    float64
	ThickRefV     float64 // nominal clean thick-ice brightness
	ShadowSmooth  float64 // sigma of the shadow-field smoothing
	MaxShadow     float64 // cap on estimated shadow strength
	MinShadow     float64 // zero negligible shadow estimates
	MinEvidence   float64 // minimum local evidence density to trust the field
	ShadowDarkMin float64 // pixels darker than this are never lifted (water)
}

// DefaultConfig returns the tuning used by every experiment in this repo.
func DefaultConfig() Config {
	return Config{
		VeilColor:       [3]float64{232, 235, 242},
		DarkRadius:      28,
		VeilSmoothSigma: 6,
		WaterCeil:       30,
		DarkFloor:       4,
		OpacityGate:     0.03,
		MaxOpacity:      0.50,
		AmbiguousMin:    135,
		AmbiguousLow:    60,
		SatGate:         52,
		SatShadowFloor:  15,
		SatGateLow:      95,
		GrayVMax:        224,
		SatClearMin:     96,
		MinOpacity:      0.03,

		ShadowSatMax:  18,
		ShadowVMin:    60,
		ShadowVMax:    204,
		ThickRefV:     234,
		ShadowSmooth:  20,
		MaxShadow:     0.45,
		MinShadow:     0.04,
		MinEvidence:   0.02,
		ShadowDarkMin: 34,
	}
}

// Result carries the filtered image and the filter's internal estimates,
// which the tests validate against the generator's ground truth.
type Result struct {
	// Image is the cloud- and shadow-corrected scene.
	Image *raster.RGB
	// CloudMask marks pixels the filter judged veiled or shadowed
	// (255 = disturbed), via Otsu binarization of the combined
	// disturbance field.
	CloudMask *raster.Gray
	// Opacity is the estimated veil alpha per pixel.
	Opacity *raster.Float
	// Shadow is the estimated multiplicative shadow strength per pixel.
	Shadow *raster.Float
}

// Filter runs the two-stage thin-cloud and shadow correction.
func Filter(img *raster.RGB, cfg Config) *Result {
	w, h := img.W, img.H
	srcHSV := colorspace.ToHSV(img)
	val := &raster.Gray{W: w, H: h, Pix: srcHSV.Val}
	sat := &raster.Gray{W: w, H: h, Pix: srcHSV.Sat}
	// Per-pixel saturation decisions must not ride on sensor noise
	// (±1.6/channel moves S by ~±5 on mid-bright pixels); a 3×3 median
	// is the paper pipeline's "noise filtering" step.
	satDenoised := imgproc.MedianFilter(sat, 1)

	// ---- stage 1: thin-cloud veil ----
	// Dark-object veil estimate: min-filter the value channel, then
	// subtract the water ceiling (absolute difference against the
	// darkest legitimate surface) and rescale by the veil brightness.
	minV := imgproc.Erode(val, cfg.DarkRadius)
	// Cap implausible highs with a truncated threshold before the
	// division; windows of pure bright ice are handled by the gate.
	minV = imgproc.Threshold(minV, 250, 255, imgproc.ThreshTrunc)
	// Window-mean saturation over COLORFUL pixels only. Thick ice is
	// near-gray; including it in the mean would let "shadowed thick +
	// clean blue ice" masquerade as "veil over dark water". Excluding
	// gray pixels, clean surfaces keep mean S ≥ ~95 (dark young ice)
	// or ≥ ~56 (bright young ice), while anything under a veil drops
	// to ≤ ~87 (light veil over water) and ≤ ~47 (moderate veil).
	satNum := raster.NewFloat(w, h)
	satDen := raster.NewFloat(w, h)
	for i, s := range sat.Pix {
		if s >= cfg.SatShadowFloor {
			satNum.Pix[i] = float64(s)
			satDen.Pix[i] = 1
		}
	}
	satNumM := imgproc.BoxMeanFloat(satNum, cfg.DarkRadius)
	satDenM := imgproc.BoxMeanFloat(satDen, cfg.DarkRadius)
	// meanS[i] is the colorful-pixel mean; windows that are almost
	// entirely gray (< 5% colorful) report 0, which the gates read as
	// "pure thick ice, no veil evidence".
	meanS := raster.NewGray(w, h)
	for i := range meanS.Pix {
		if satDenM.Pix[i] >= 0.05 {
			m := satNumM.Pix[i] / satDenM.Pix[i]
			if m > 255 {
				m = 255
			}
			meanS.Pix[i] = uint8(m + 0.5)
		}
	}

	veilV := (cfg.VeilColor[0] + cfg.VeilColor[1] + cfg.VeilColor[2]) / 3
	opacityRaw := raster.NewFloat(w, h)
	for i, v := range minV.Pix {
		fv := float64(v)
		if fv > cfg.AmbiguousMin {
			continue // no dark evidence in window; veil invisible here
		}
		if fv > cfg.AmbiguousLow {
			if meanS.Pix[i] > cfg.SatGate {
				continue // window keeps saturated surfaces ⇒ no veil
			}
			if meanS.Pix[i] < cfg.SatShadowFloor {
				continue // near-gray window ⇒ (shadowed) thick ice
			}
		} else if fv > cfg.WaterCeil && (meanS.Pix[i] == 0 || meanS.Pix[i] > cfg.SatGateLow) {
			// Either the window is saturated blue dark ice (clear,
			// not a light veil) or it has no colorful pixels at all —
			// and a veil with dark evidence always leaves colorful
			// residue, so an all-gray window carries no veil.
			continue
		}
		a := (fv - cfg.DarkFloor) / (veilV - cfg.DarkFloor)
		if a < 0 {
			a = 0
		}
		if a > cfg.MaxOpacity {
			a = cfg.MaxOpacity
		}
		opacityRaw.Pix[i] = a
	}
	// The erosion sees the window's darkest pixel, so the raw estimate
	// collapses to zero within DarkRadius of every cloud boundary (the
	// window leaks onto clear ground). Dilating by the same radius
	// restores the estimate's support — an erode-then-dilate pair, the
	// morphological opening of the opacity field — and the Gaussian
	// then irons window artifacts to the cloud's spatial scale.
	opacity := smoothFloat(dilateFloat(opacityRaw, cfg.DarkRadius), cfg.VeilSmoothSigma)
	for i, a := range opacity.Pix {
		if a < cfg.MinOpacity {
			opacity.Pix[i] = 0
		} else if a > cfg.MaxOpacity {
			opacity.Pix[i] = cfg.MaxOpacity
		}
	}

	// isGrayMid flags pixels that can only be shadowed thick ice: a
	// gray (near-zero saturation) pixel at mid brightness. Every
	// veil-affected pixel with dark evidence keeps residual saturation
	// (water and thin ice are blue; the veil color itself is slightly
	// blue), so these pixels belong to the shadow stage and must not
	// be darkened by the veil inversion.
	isGrayMid := func(s, v uint8) bool {
		return s < cfg.SatShadowFloor && float64(v) >= cfg.AmbiguousLow && float64(v) <= cfg.GrayVMax
	}

	// Invert the blend per channel: observed = s·(1-a) + veil·a.
	corrected := raster.NewRGB(w, h)
	for i := 0; i < w*h; i++ {
		a := opacity.Pix[i]
		if a <= 0 || isGrayMid(satDenoised.Pix[i], srcHSV.Val[i]) || satDenoised.Pix[i] >= cfg.SatClearMin {
			corrected.Pix[3*i] = img.Pix[3*i]
			corrected.Pix[3*i+1] = img.Pix[3*i+1]
			corrected.Pix[3*i+2] = img.Pix[3*i+2]
			continue
		}
		for ch := 0; ch < 3; ch++ {
			obs := float64(img.Pix[3*i+ch])
			s := (obs - cfg.VeilColor[ch]*a) / (1 - a)
			corrected.Pix[3*i+ch] = clamp8(s)
		}
	}

	// ---- stage 2: cloud shadow ----
	hsv := colorspace.ToHSV(corrected)
	evidence := raster.NewFloat(w, h)
	weight := raster.NewFloat(w, h)
	for i := 0; i < w*h; i++ {
		if opacity.Pix[i] > cfg.OpacityGate && !isGrayMid(satDenoised.Pix[i], srcHSV.Val[i]) {
			continue // veiled region: residue must not vote for shadow
		}
		v := float64(hsv.Val[i])
		if satDenoised.Pix[i] <= cfg.ShadowSatMax && v >= cfg.ShadowVMin && v <= cfg.ShadowVMax {
			sh := 1 - v/cfg.ThickRefV
			if sh < 0 {
				sh = 0
			}
			if sh > cfg.MaxShadow {
				sh = cfg.MaxShadow
			}
			evidence.Pix[i] = sh
			weight.Pix[i] = 1
		}
	}
	evSmooth := smoothFloat(evidence, cfg.ShadowSmooth)
	wSmooth := smoothFloat(weight, cfg.ShadowSmooth)
	shadow := raster.NewFloat(w, h)
	for i := 0; i < w*h; i++ {
		if wSmooth.Pix[i] < cfg.MinEvidence {
			continue
		}
		if opacity.Pix[i] > cfg.OpacityGate && !isGrayMid(satDenoised.Pix[i], srcHSV.Val[i]) {
			continue // veil correction already handled this pixel
		}
		sh := evSmooth.Pix[i] / wSmooth.Pix[i]
		if sh < cfg.MinShadow {
			continue
		}
		if sh > cfg.MaxShadow {
			sh = cfg.MaxShadow
		}
		shadow.Pix[i] = sh
	}

	out := raster.NewRGB(w, h)
	for i := 0; i < w*h; i++ {
		sh := shadow.Pix[i]
		v := float64(hsv.Val[i])
		if sh <= 0 || v < cfg.ShadowDarkMin {
			out.Pix[3*i] = corrected.Pix[3*i]
			out.Pix[3*i+1] = corrected.Pix[3*i+1]
			out.Pix[3*i+2] = corrected.Pix[3*i+2]
			continue
		}
		k := 1 / (1 - sh)
		out.Pix[3*i] = clamp8(float64(corrected.Pix[3*i]) * k)
		out.Pix[3*i+1] = clamp8(float64(corrected.Pix[3*i+1]) * k)
		out.Pix[3*i+2] = clamp8(float64(corrected.Pix[3*i+2]) * k)
	}

	// ---- disturbance mask ----
	// Combine both disturbance fields into an 8-bit image and Otsu-
	// binarize it (the paper's Otsu + binary threshold step). Guard the
	// clear-sky case: if the field is essentially empty, Otsu on noise
	// would hallucinate a mask.
	dist := raster.NewGray(w, h)
	for i := 0; i < w*h; i++ {
		d := opacity.Pix[i] + shadow.Pix[i]
		if d > 1 {
			d = 1
		}
		dist.Pix[i] = uint8(d*255 + 0.5)
	}
	// Otsu adapts to each scene's disturbance distribution, but its
	// level is floored at 5% combined disturbance (the convention the
	// ground-truth masks use) so the dilation halo of barely-veiled
	// pixels does not leak into the mask, and so a clear scene's noise
	// cannot be split into a fake mask.
	level := imgproc.OtsuThreshold(dist)
	if level < 13 { // 5% of full disturbance
		level = 13
	}
	mask := imgproc.Threshold(dist, level, 255, imgproc.ThreshBinary)

	return &Result{Image: out, CloudMask: mask, Opacity: opacity, Shadow: shadow}
}

// FilterDefault runs the filter with DefaultConfig.
func FilterDefault(img *raster.RGB) *Result {
	return Filter(img, DefaultConfig())
}

// dilateFloat computes a sliding-window maximum of a float raster in
// [0,1] via 8-bit quantization (1/500 steps) and the grayscale dilation
// in imgproc.
func dilateFloat(src *raster.Float, radius int) *raster.Float {
	q := raster.NewGray(src.W, src.H)
	for i, v := range src.Pix {
		s := v * 500
		if s > 255 {
			s = 255
		}
		if s < 0 {
			s = 0
		}
		q.Pix[i] = uint8(s + 0.5)
	}
	d := imgproc.Dilate(q, radius)
	out := raster.NewFloat(src.W, src.H)
	for i, v := range d.Pix {
		out.Pix[i] = float64(v) / 500
	}
	return out
}

// smoothFloat applies a separable Gaussian to a float raster. The kernel
// radius follows the 3σ rule.
func smoothFloat(src *raster.Float, sigma float64) *raster.Float {
	if sigma <= 0 {
		return src.Clone()
	}
	k := imgproc.GaussianKernel(sigma)
	radius := len(k) / 2
	w, h := src.W, src.H
	tmp := raster.NewFloat(w, h)
	dst := raster.NewFloat(w, h)

	for y := 0; y < h; y++ {
		row := src.Pix[y*w : (y+1)*w]
		for x := 0; x < w; x++ {
			sum := 0.0
			for i, kv := range k {
				xx := x + i - radius
				if xx < 0 {
					xx = 0
				} else if xx >= w {
					xx = w - 1
				}
				sum += kv * row[xx]
			}
			tmp.Pix[y*w+x] = sum
		}
	}
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			sum := 0.0
			for i, kv := range k {
				yy := y + i - radius
				if yy < 0 {
					yy = 0
				} else if yy >= h {
					yy = h - 1
				}
				sum += kv * tmp.Pix[yy*w+x]
			}
			dst.Pix[y*w+x] = sum
		}
	}
	return dst
}

func clamp8(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(math.Round(v))
}
