package pipeline

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sync/atomic"
	"testing"
	"time"

	"seaice/internal/catalog"
	"seaice/internal/dataset"
	"seaice/internal/scene"
	"seaice/internal/train"
	"seaice/internal/unet"
)

// testCampaign is a small campaign: 4 scenes of 64², tile 16 → 16 tiles
// per scene, 64 tiles total.
func testCampaign(seed uint64) scene.CollectionConfig {
	cc := scene.DefaultCollection(seed)
	cc.Scenes = 4
	cc.W, cc.H = 64, 64
	return cc
}

func testBuild() dataset.BuildConfig {
	b := dataset.DefaultBuild()
	b.TileSize = 16
	b.Workers = 2
	return b
}

func tilesEqual(t *testing.T, ctx string, a, b dataset.Tile) {
	t.Helper()
	if !bytes.Equal(a.Original.Pix, b.Original.Pix) {
		t.Fatalf("%s: Original differs", ctx)
	}
	if !bytes.Equal(a.Filtered.Pix, b.Filtered.Pix) {
		t.Fatalf("%s: Filtered differs", ctx)
	}
	if !slices.Equal(a.Manual.Pix, b.Manual.Pix) {
		t.Fatalf("%s: Manual differs", ctx)
	}
	if !slices.Equal(a.Auto.Pix, b.Auto.Pix) {
		t.Fatalf("%s: Auto differs", ctx)
	}
	if a.CloudFraction != b.CloudFraction {
		t.Fatalf("%s: CloudFraction %v vs %v", ctx, a.CloudFraction, b.CloudFraction)
	}
	if a.Scene != b.Scene {
		t.Fatalf("%s: Scene %d vs %d", ctx, a.Scene, b.Scene)
	}
}

func setsEqual(t *testing.T, ctx string, a, b *dataset.Set) {
	t.Helper()
	if a.TileSize != b.TileSize || len(a.Tiles) != len(b.Tiles) {
		t.Fatalf("%s: shape mismatch: tile %d/%d, n %d/%d", ctx, a.TileSize, b.TileSize, len(a.Tiles), len(b.Tiles))
	}
	for i := range a.Tiles {
		tilesEqual(t, fmt.Sprintf("%s: tile %d", ctx, i), a.Tiles[i], b.Tiles[i])
	}
}

// TestStreamParityWithLegacy asserts the streaming pipeline's Set is
// byte-identical to the legacy batch path at several shard and worker
// counts — the acceptance property of the PR.
func TestStreamParityWithLegacy(t *testing.T) {
	src := CollectionSource{Cfg: testCampaign(3)}
	want, err := LegacyBuilder{Build: testBuild()}.BuildSet(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 3, 4} {
		for _, workers := range []int{1, 3} {
			cfg := Config{Build: testBuild(), Shards: shards, Workers: workers}
			got, err := StreamBuilder{Config: cfg}.BuildSet(src)
			if err != nil {
				t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
			}
			setsEqual(t, fmt.Sprintf("shards=%d workers=%d", shards, workers), got, want)
		}
	}

	// Pre-materialized scenes through SliceSource give the same set.
	scenes := make([]*scene.Scene, src.Len())
	for i := range scenes {
		sc, err := src.SceneAt(i)
		if err != nil {
			t.Fatal(err)
		}
		scenes[i] = sc
	}
	got, err := StreamBuilder{Config: Config{Build: testBuild(), Shards: 2, Workers: 2}}.BuildSet(SliceSource(scenes))
	if err != nil {
		t.Fatal(err)
	}
	setsEqual(t, "slice source", got, want)
}

// TestMixedSizeSliceRejected: a SliceSource whose scenes disagree on
// dimensions must fail cleanly instead of misaddressing tiles.
func TestMixedSizeSliceRejected(t *testing.T) {
	small := testCampaign(3)
	big := testCampaign(3)
	big.W, big.H = 128, 128
	a, err := scene.GenerateAt(small, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := scene.GenerateAt(big, 1)
	if err != nil {
		t.Fatal(err)
	}
	builder := StreamBuilder{Config: Config{Build: testBuild(), Workers: 2}}
	if _, err := builder.BuildSet(SliceSource{a, b}); err == nil {
		t.Fatal("mixed-size source should fail")
	}
}

// TestSplitSubsampleIndexParity pins the index-level helpers to the
// tile-level legacy functions they were factored from.
func TestSplitSubsampleIndexParity(t *testing.T) {
	src := CollectionSource{Cfg: testCampaign(5)}
	set, err := LegacyBuilder{Build: testBuild()}.BuildSet(src)
	if err != nil {
		t.Fatal(err)
	}
	trainTiles, testTiles, err := set.Split(0.8, 9)
	if err != nil {
		t.Fatal(err)
	}
	trainIdx, testIdx, err := dataset.SplitIndices(len(set.Tiles), 0.8, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(trainIdx) != len(trainTiles) || len(testIdx) != len(testTiles) {
		t.Fatalf("split sizes: %d/%d vs %d/%d", len(trainIdx), len(testIdx), len(trainTiles), len(testTiles))
	}
	for i, idx := range trainIdx {
		tilesEqual(t, fmt.Sprintf("train %d", i), set.Tiles[idx], trainTiles[i])
	}
	for i, idx := range testIdx {
		tilesEqual(t, fmt.Sprintf("test %d", i), set.Tiles[idx], testTiles[i])
	}

	sub := dataset.Subsample(trainTiles, 10, 7)
	subIdx := dataset.SubsampleIndices(len(trainTiles), 10, 7)
	if len(sub) != len(subIdx) {
		t.Fatalf("subsample sizes: %d vs %d", len(sub), len(subIdx))
	}
	for i, idx := range subIdx {
		tilesEqual(t, fmt.Sprintf("sub %d", i), trainTiles[idx], sub[i])
	}
}

// planForTest mirrors the legacy seaice-train flow: 80/20 split, capped
// train subset, auto labels.
func planForTest(seed uint64) *TrainPlan {
	return &TrainPlan{
		TrainFrac: 0.8, SplitSeed: seed,
		TrainTiles: 24, TrainSeed: seed,
		TestTiles: 12, TestSeed: seed + 1,
		Image: dataset.OriginalImages, Labels: dataset.AutoLabels,
		BatchSize: 6, BatchSeed: seed,
	}
}

// legacySamples replays the legacy path for the same plan.
func legacySamples(t *testing.T, src Source, plan *TrainPlan) (trainS []train.Sample, testTiles []dataset.Tile) {
	t.Helper()
	set, err := LegacyBuilder{Build: testBuild()}.BuildSet(src)
	if err != nil {
		t.Fatal(err)
	}
	trainT, testT, err := set.Split(plan.TrainFrac, plan.SplitSeed)
	if err != nil {
		t.Fatal(err)
	}
	trainT = dataset.Subsample(trainT, plan.TrainTiles, plan.TrainSeed)
	testT = dataset.Subsample(testT, plan.TestTiles, plan.TestSeed)
	return dataset.Samples(trainT, plan.Image, plan.Labels), testT
}

// TestStreamedTrainingParity trains one model from the double-buffered
// stream and one from the legacy in-memory path and requires exactly
// equal losses and weights.
func TestStreamedTrainingParity(t *testing.T) {
	src := CollectionSource{Cfg: testCampaign(7)}
	plan := planForTest(7)
	wantSamples, wantTest := legacySamples(t, src, plan)

	modelCfg := unet.Config{Depth: 2, BaseChannels: 4, InChannels: 3, Classes: 3, DropoutRate: 0, Seed: 11}
	trainCfg := train.Config{Epochs: 2, BatchSize: plan.BatchSize, LR: 0.01, Seed: plan.BatchSeed}

	ref, err := unet.New[float64](modelCfg)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := train.Fit(ref, wantSamples, trainCfg)
	if err != nil {
		t.Fatal(err)
	}

	st, err := New(src, Config{Build: testBuild(), Shards: 2, Workers: 2, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	batches, err := st.TrainBatches()
	if err != nil {
		t.Fatal(err)
	}
	got, err := unet.New[float64](modelCfg)
	if err != nil {
		t.Fatal(err)
	}
	gotRes, err := train.FitStream(got, batches, trainCfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(refRes.EpochLosses) != len(gotRes.EpochLosses) || refRes.Steps != gotRes.Steps {
		t.Fatalf("shape: %v/%d vs %v/%d", refRes.EpochLosses, refRes.Steps, gotRes.EpochLosses, gotRes.Steps)
	}
	for e := range refRes.EpochLosses {
		if refRes.EpochLosses[e] != gotRes.EpochLosses[e] {
			t.Fatalf("epoch %d loss %v vs %v", e, refRes.EpochLosses[e], gotRes.EpochLosses[e])
		}
	}
	refP, gotP := ref.Params(), got.Params()
	for i := range refP {
		for j := range refP[i].W.Data {
			if refP[i].W.Data[j] != gotP[i].W.Data[j] {
				t.Fatalf("param %s[%d] differs", refP[i].Name, j)
			}
		}
	}

	// The held-out subset matches the legacy order too.
	gotTest, err := st.TestTiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(gotTest) != len(wantTest) {
		t.Fatalf("test tiles: %d vs %d", len(gotTest), len(wantTest))
	}
	for i := range gotTest {
		tilesEqual(t, fmt.Sprintf("test tile %d", i), gotTest[i], wantTest[i])
	}
}

// countingSource counts SceneAt calls, to observe checkpoint reuse.
type countingSource struct {
	Source
	calls atomic.Int64
}

func (c *countingSource) SceneAt(i int) (*scene.Scene, error) {
	c.calls.Add(1)
	return c.Source.SceneAt(i)
}

// TestCheckpointResume runs a stream with a checkpoint directory, then a
// second stream over the same source: the second run must restore every
// shard without touching the source, and emit identical tiles. A third
// run with a different tile size must ignore the stale checkpoints.
func TestCheckpointResume(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	src := &countingSource{Source: CollectionSource{Cfg: testCampaign(9)}}
	cfg := Config{Build: testBuild(), Shards: 2, Workers: 2, CheckpointDir: dir}

	first, err := StreamBuilder{Config: cfg}.BuildSet(src)
	if err != nil {
		t.Fatal(err)
	}
	if src.calls.Load() == 0 {
		t.Fatal("first run should render scenes")
	}
	files, _ := os.ReadDir(dir)
	if len(files) != 2 {
		t.Fatalf("want 2 shard files, got %d", len(files))
	}

	src.calls.Store(0)
	var resumes int
	cfg2 := cfg
	cfg2.Progress = func(ev Event) {
		if ev.Kind == "resume" {
			resumes++
		}
	}
	second, err := StreamBuilder{Config: cfg2}.BuildSet(src)
	if err != nil {
		t.Fatal(err)
	}
	if n := src.calls.Load(); n != 0 {
		t.Fatalf("resume rendered %d scenes, want 0", n)
	}
	if resumes != 2 {
		t.Fatalf("want 2 resume events, got %d", resumes)
	}
	setsEqual(t, "resumed", second, first)

	// Different build config ⇒ checkpoints must not match.
	src.calls.Store(0)
	cfg3 := cfg
	cfg3.Build.TileSize = 32
	b3 := StreamBuilder{Config: cfg3}
	if _, err := b3.BuildSet(src); err != nil {
		t.Fatal(err)
	}
	if src.calls.Load() == 0 {
		t.Fatal("mismatched checkpoints were wrongly reused")
	}
}

// failingSource errors on one scene.
type failingSource struct{ Source }

func (f failingSource) SceneAt(i int) (*scene.Scene, error) {
	if i == 2 {
		return nil, fmt.Errorf("synthetic failure")
	}
	return f.Source.SceneAt(i)
}

// TestErrorPropagation: a failing scene fails Set and the batch stream
// with the underlying error rather than hanging.
func TestErrorPropagation(t *testing.T) {
	src := failingSource{Source: CollectionSource{Cfg: testCampaign(11)}}
	b := StreamBuilder{Config: Config{Build: testBuild(), Workers: 2}}
	if _, err := b.BuildSet(src); err == nil {
		t.Fatal("Set should fail")
	}

	plan := planForTest(11)
	st, err := New(src, Config{Build: testBuild(), Workers: 2, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	batches, err := st.TrainBatches()
	if err != nil {
		t.Fatal(err)
	}
	next := batches.Epoch(0)
	for {
		pb, err := next()
		if err != nil {
			return // propagated — good
		}
		if pb == nil {
			t.Fatal("epoch ended without surfacing the failure")
		}
	}
}

// panickySource panics on one scene — the failure mode of a bug inside
// a stage worker.
type panickySource struct{ Source }

func (p panickySource) SceneAt(i int) (*scene.Scene, error) {
	if i == 1 {
		panic("synthetic stage-worker panic")
	}
	return p.Source.SceneAt(i)
}

// TestWorkerPanicFailsStream: a panic inside a stage worker must fail
// the stream (pool.Map converts it to an error) rather than leaving
// consumers blocked forever on scenes that will never arrive.
func TestWorkerPanicFailsStream(t *testing.T) {
	src := panickySource{Source: CollectionSource{Cfg: testCampaign(17)}}
	done := make(chan error, 1)
	go func() {
		builder := StreamBuilder{Config: Config{Build: testBuild(), Workers: 2}}
		_, err := builder.BuildSet(src)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Set should fail after a worker panic")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream hung after worker panic")
	}
}

// TestCatalogSourceStreams runs a real catalog query through the
// streaming pipeline and checks it against the legacy fetch-then-build
// path.
func TestCatalogSourceStreams(t *testing.T) {
	ccfg := catalog.DefaultConfig(21)
	ccfg.GridLat, ccfg.GridLon, ccfg.Passes = 2, 2, 1
	ccfg.SceneSize = 64
	cat, err := catalog.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := cat.Find(catalog.Query{Region: catalog.RossSea, MaxCloud: -1})
	if len(ds) != 4 {
		t.Fatalf("query returned %d scenes, want 4", len(ds))
	}
	src := CatalogSource{Cat: cat, Scenes: ds}

	want, err := LegacyBuilder{Build: testBuild()}.BuildSet(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := StreamBuilder{Config: Config{Build: testBuild(), Shards: 2, Workers: 2}}.BuildSet(src)
	if err != nil {
		t.Fatal(err)
	}
	setsEqual(t, "catalog", got, want)
}

// TestSchedulePrioritizesFirstBatches: with a plan, every scene feeding
// epoch-0 batch 0 is scheduled before any scene first needed by a later
// batch.
func TestSchedulePrioritizesFirstBatches(t *testing.T) {
	plan := planForTest(13)
	st, err := New(CollectionSource{Cfg: testCampaign(13)}, Config{Build: testBuild(), Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	pos := make([]int, st.n)
	for p, idx := range st.order {
		pos[idx] = p
	}
	for _, early := range st.plan.batchScenes[0] {
		for later := 0; later < st.n; later++ {
			if st.plan.priority[later] > st.plan.priority[early] && pos[later] < pos[early] {
				t.Fatalf("scene %d (batch %d) scheduled before scene %d (batch %d)",
					later, st.plan.priority[later], early, st.plan.priority[early])
			}
		}
	}
}
