package tensor

import "fmt"

// Im2Col unfolds x (N,C,H,W) into a matrix of shape
// (C·KH·KW, N·OH·OW) for a convolution with the given kernel, stride and
// symmetric zero padding. Column j holds the receptive field of output
// position j, so a convolution becomes weights (Cout, C·KH·KW) × cols.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("tensor: Im2Col needs NCHW input, got %v", x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col output empty for input %v kernel %dx%d", x.Shape, kh, kw))
	}
	cols := New(c*kh*kw, n*oh*ow)
	colW := n * oh * ow

	for ch := 0; ch < c; ch++ {
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := ((ch*kh+ky)*kw + kx) * colW
				for img := 0; img < n; img++ {
					src := ((img*c + ch) * h) * w
					dst := row + img*oh*ow
					for oy := 0; oy < oh; oy++ {
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= h {
							continue // stays zero
						}
						srow := src + iy*w
						drow := dst + oy*ow
						for ox := 0; ox < ow; ox++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= w {
								continue
							}
							cols.Data[drow+ox] = x.Data[srow+ix]
						}
					}
				}
			}
		}
	}
	return cols
}

// Col2Im folds a column matrix back into an (N,C,H,W) tensor, summing
// overlapping contributions — the adjoint of Im2Col, used by convolution
// backward passes to accumulate input gradients.
func Col2Im(cols *Tensor, n, c, h, w, kh, kw, stride, pad int) *Tensor {
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	if cols.Shape[0] != c*kh*kw || cols.Shape[1] != n*oh*ow {
		panic(fmt.Sprintf("tensor: Col2Im shape %v does not match target %dx%dx%dx%d k%dx%d", cols.Shape, n, c, h, w, kh, kw))
	}
	x := New(n, c, h, w)
	colW := n * oh * ow

	for ch := 0; ch < c; ch++ {
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := ((ch*kh+ky)*kw + kx) * colW
				for img := 0; img < n; img++ {
					dst := ((img*c + ch) * h) * w
					src := row + img*oh*ow
					for oy := 0; oy < oh; oy++ {
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= h {
							continue
						}
						drow := dst + iy*w
						srow := src + oy*ow
						for ox := 0; ox < ow; ox++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= w {
								continue
							}
							x.Data[drow+ix] += cols.Data[srow+ox]
						}
					}
				}
			}
		}
	}
	return x
}
