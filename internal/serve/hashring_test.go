package serve

import (
	"crypto/sha256"
	"fmt"
	"testing"
)

// ringTestKeys derives n deterministic content keys.
func ringTestKeys(n int) []CacheKey {
	keys := make([]CacheKey, n)
	for i := range keys {
		keys[i] = sha256.Sum256([]byte(fmt.Sprintf("tile-%d", i)))
	}
	return keys
}

// TestHashRingOwnership: every key has exactly one owner, ownership is
// stable across lookups and ring rebuilds, and the load spreads over all
// nodes.
func TestHashRingOwnership(t *testing.T) {
	const nodes, nkeys = 4, 4096
	h, err := NewHashRing(nodes)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := NewHashRing(nodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, nodes)
	for _, key := range ringTestKeys(nkeys) {
		owner := h.Owner(key)
		if owner < 0 || owner >= nodes {
			t.Fatalf("owner %d out of range", owner)
		}
		if again := h.Owner(key); again != owner {
			t.Fatalf("owner flapped: %d then %d", owner, again)
		}
		if other := h2.Owner(key); other != owner {
			t.Fatalf("independent ring disagrees: %d vs %d", owner, other)
		}
		counts[owner]++
	}
	for node, n := range counts {
		if n == 0 {
			t.Errorf("node %d owns no keys out of %d", node, nkeys)
		}
	}
	t.Logf("key distribution: %v", counts)
}

// TestHashRingAvoidance: with nodes down, OwnerAvoiding returns only
// live nodes, leaves keys of live owners untouched, and reassigns only
// the dead node's keys.
func TestHashRingAvoidance(t *testing.T) {
	const nodes, nkeys = 3, 2048
	h, err := NewHashRing(nodes)
	if err != nil {
		t.Fatal(err)
	}
	keys := ringTestKeys(nkeys)
	alive := func(int) bool { return false }
	for _, key := range keys {
		if got, want := h.OwnerAvoiding(key, alive), h.Owner(key); got != want {
			t.Fatalf("no nodes down: OwnerAvoiding %d != Owner %d", got, want)
		}
	}
	const dead = 1
	oneDown := func(n int) bool { return n == dead }
	moved := 0
	for _, key := range keys {
		owner := h.Owner(key)
		rerouted := h.OwnerAvoiding(key, oneDown)
		if rerouted == dead {
			t.Fatalf("OwnerAvoiding returned the down node")
		}
		if owner != dead && rerouted != owner {
			t.Fatalf("live node's key moved: %d → %d", owner, rerouted)
		}
		if owner == dead {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("dead node owned no keys — avoidance path untested")
	}
	t.Logf("%d of %d keys rerouted off node %d", moved, nkeys, dead)
}

// TestHashRingValidation: an empty ring is rejected.
func TestHashRingValidation(t *testing.T) {
	if _, err := NewHashRing(0); err == nil {
		t.Fatal("NewHashRing(0) succeeded")
	}
}
