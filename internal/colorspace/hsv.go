// Package colorspace implements the RGB↔HSV conversions the workflow uses
// for cloud filtering and color-threshold segmentation. It follows the
// OpenCV 8-bit convention the paper's pipeline relies on: hue is stored in
// [0,180) (degrees halved to fit a byte), saturation and value in [0,255].
// The paper's published thresholds — e.g. thick ice (0,0,205)–(185,255,255)
// — are expressed in this convention.
//
// All conversions are pure per-pixel integer functions — deterministic
// on every platform — and the *Rows variants expose half-open row
// stripes so callers (autolabel, cloudfilter) can parallelize over
// pool.Shared() with byte-identical output at any worker count.
package colorspace

import "seaice/internal/raster"

// HSV is one pixel in OpenCV 8-bit HSV encoding.
type HSV struct {
	H uint8 // hue/2, in [0,180)
	S uint8 // saturation, [0,255]
	V uint8 // value (brightness), [0,255]
}

// RGBToHSV converts a single 8-bit RGB pixel to OpenCV-convention HSV.
func RGBToHSV(r, g, b uint8) HSV {
	ri, gi, bi := int(r), int(g), int(b)
	v := ri
	if gi > v {
		v = gi
	}
	if bi > v {
		v = bi
	}
	mn := ri
	if gi < mn {
		mn = gi
	}
	if bi < mn {
		mn = bi
	}
	delta := v - mn

	var s int
	if v != 0 {
		s = (delta * 255) / v
	}

	var h int
	if delta != 0 {
		switch v {
		case ri:
			h = (30 * (gi - bi)) / delta
		case gi:
			h = 60 + (30*(bi-ri))/delta
		default:
			h = 120 + (30*(ri-gi))/delta
		}
		if h < 0 {
			h += 180
		}
	}
	return HSV{H: uint8(h), S: uint8(s), V: uint8(v)}
}

// HSVToRGB converts an OpenCV-convention HSV pixel back to RGB. The
// conversion is exact for the value channel and within quantization error
// for hue and saturation.
func HSVToRGB(p HSV) (r, g, b uint8) {
	if p.S == 0 {
		return p.V, p.V, p.V
	}
	h := float64(p.H) * 2 // back to degrees [0,360)
	s := float64(p.S) / 255
	v := float64(p.V)

	sector := int(h / 60)
	if sector > 5 {
		sector = 5
	}
	f := h/60 - float64(sector)
	pp := v * (1 - s)
	q := v * (1 - s*f)
	t := v * (1 - s*(1-f))

	var rf, gf, bf float64
	switch sector {
	case 0:
		rf, gf, bf = v, t, pp
	case 1:
		rf, gf, bf = q, v, pp
	case 2:
		rf, gf, bf = pp, v, t
	case 3:
		rf, gf, bf = pp, q, v
	case 4:
		rf, gf, bf = t, pp, v
	default:
		rf, gf, bf = v, pp, q
	}
	return round8(rf), round8(gf), round8(bf)
}

func round8(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}

// Planes holds a whole image converted to HSV as three planar channels,
// which is the layout the threshold and filter kernels iterate over.
type Planes struct {
	W, H int
	Hue  []uint8
	Sat  []uint8
	Val  []uint8
}

// NewPlanes allocates empty planar HSV channels for a w×h image.
func NewPlanes(w, h int) *Planes {
	n := w * h
	return &Planes{
		W: w, H: h,
		Hue: make([]uint8, n),
		Sat: make([]uint8, n),
		Val: make([]uint8, n),
	}
}

// ToHSV converts an RGB raster into planar HSV channels.
func ToHSV(img *raster.RGB) *Planes {
	p := NewPlanes(img.W, img.H)
	ToHSVRows(img, p, 0, img.H)
	return p
}

// ToHSVRows converts pixel rows [y0, y1) of img into p, which must match
// img's dimensions. Rows are independent, so stripe workers can convert
// disjoint row ranges of one Planes concurrently.
func ToHSVRows(img *raster.RGB, p *Planes, y0, y1 int) {
	for i := y0 * img.W; i < y1*img.W; i++ {
		px := RGBToHSV(img.Pix[3*i], img.Pix[3*i+1], img.Pix[3*i+2])
		p.Hue[i] = px.H
		p.Sat[i] = px.S
		p.Val[i] = px.V
	}
}

// ToRGB converts planar HSV channels back into an RGB raster.
func (p *Planes) ToRGB() *raster.RGB {
	img := raster.NewRGB(p.W, p.H)
	for i := 0; i < p.W*p.H; i++ {
		r, g, b := HSVToRGB(HSV{H: p.Hue[i], S: p.Sat[i], V: p.Val[i]})
		img.Pix[3*i], img.Pix[3*i+1], img.Pix[3*i+2] = r, g, b
	}
	return img
}

// ValPlane extracts only the value (brightness) channel of an RGB image as
// a grayscale raster; the cloud filter operates chiefly on this channel.
func ValPlane(img *raster.RGB) *raster.Gray {
	g := raster.NewGray(img.W, img.H)
	for i := 0; i < img.W*img.H; i++ {
		r, gr, b := img.Pix[3*i], img.Pix[3*i+1], img.Pix[3*i+2]
		v := r
		if gr > v {
			v = gr
		}
		if b > v {
			v = b
		}
		g.Pix[i] = v
	}
	return g
}

// Bounds is an inclusive HSV box used for color-range segmentation,
// mirroring OpenCV's inRange(lower, upper) semantics.
type Bounds struct {
	Lo, Hi HSV
}

// Contains reports whether the pixel falls inside the box on all three
// channels.
func (b Bounds) Contains(p HSV) bool {
	return p.H >= b.Lo.H && p.H <= b.Hi.H &&
		p.S >= b.Lo.S && p.S <= b.Hi.S &&
		p.V >= b.Lo.V && p.V <= b.Hi.V
}

// InRange produces a binary mask (255 inside, 0 outside) of the pixels of
// planar HSV channels falling inside the bounds.
func InRange(p *Planes, b Bounds) *raster.Gray {
	m := raster.NewGray(p.W, p.H)
	InRangeRows(p, b, m, 0, p.H)
	return m
}

// InRangeRows fills pixel rows [y0, y1) of the mask m, which must match
// p's dimensions; pixels outside the bounds are written as 0, so a dirty
// mask row range is fully overwritten.
func InRangeRows(p *Planes, b Bounds, m *raster.Gray, y0, y1 int) {
	for i := y0 * p.W; i < y1*p.W; i++ {
		if b.Contains(HSV{H: p.Hue[i], S: p.Sat[i], V: p.Val[i]}) {
			m.Pix[i] = 255
		} else {
			m.Pix[i] = 0
		}
	}
}
