package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"seaice/internal/raster"
	"seaice/internal/unet"
)

// ErrOverloaded reports that the request queue is full; HTTP callers
// translate it to 429 so overload degrades gracefully instead of piling
// unbounded work onto the inference pool.
var ErrOverloaded = errors.New("serve: queue full")

// ErrClosed reports a submit against a scheduler that has shut down.
var ErrClosed = errors.New("serve: scheduler closed")

// request is one tile awaiting classification.
type request struct {
	engine unet.Engine
	tile   *raster.RGB
	// deadline is the client's absolute latency bound; zero means none.
	// Expired requests are dropped at batch pickup, before compute.
	deadline time.Time
	out      chan result
}

type result struct {
	labels *raster.Labels
	err    error
}

// Scheduler coalesces concurrent tile requests into forward-pass
// micro-batches. A fixed pool of workers drains a bounded queue; each
// worker owns one inference session per model (pre-allocated tensor
// buffers that are reused across batches). The first request a worker
// picks up becomes the batch leader and waits up to BatchWait for
// followers with the same model and tile size, up to MaxBatch tiles.
//
// Workers are self-healing: a panic escaping a batch (an injected chaos
// fault or a real session bug) kills only that worker, which is
// restarted immediately; the requests of the crashed batch are pushed
// back onto the bounded queue rather than dropped, and only if the
// queue cannot absorb them do they fail with ErrOverloaded — overload
// semantics (HTTP 429) stay exactly the existing bound. Restart counts
// and the live-worker gauge surface through Stats and /healthz.
type Scheduler struct {
	cfg   Config
	queue chan *request
	done  chan struct{}

	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup // Submit calls between enqueue and response
	workers  sync.WaitGroup

	live atomic.Int64 // currently running workers (health gauge)

	stats *Stats
	model *SvcModel // EWMA service-time model feeding predictive admission
}

// NewScheduler starts the worker pool. stats may be nil.
func NewScheduler(cfg Config, stats *Stats) *Scheduler {
	s := &Scheduler{
		cfg:   cfg,
		queue: make(chan *request, cfg.QueueSize),
		done:  make(chan struct{}),
		stats: stats,
		model: NewSvcModel(cfg.MaxBatch),
	}
	for w := 0; w < cfg.Workers; w++ {
		s.spawn()
	}
	return s
}

// spawn starts one worker goroutine and accounts it live.
func (s *Scheduler) spawn() {
	s.workers.Add(1)
	s.live.Add(1)
	go s.worker()
}

// QueueDepth reports the number of queued (not yet running) requests.
func (s *Scheduler) QueueDepth() int { return len(s.queue) }

// LiveWorkers reports the number of currently running workers — the
// health gauge behind /healthz (a worker mid-restart dips the count
// momentarily; it recovers without intervention).
func (s *Scheduler) LiveWorkers() int { return int(s.live.Load()) }

// Submit enqueues one tile with no deadline and blocks until its
// prediction is ready. A full queue returns ErrOverloaded immediately.
func (s *Scheduler) Submit(e unet.Engine, tile *raster.RGB) (*raster.Labels, error) {
	return s.SubmitDeadline(e, tile, time.Time{})
}

// Model exposes the scheduler's service-time model (for the HTTP layer's
// Retry-After computation and /statz).
func (s *Scheduler) Model() *SvcModel { return s.model }

// SubmitDeadline enqueues one tile and blocks until its prediction is
// ready. Admission is deadline-aware: a request whose predicted
// completion (EWMA service-time model over the current backlog) already
// exceeds its deadline is refused at enqueue with *InfeasibleError —
// never accepted only to be timed out later — and a full queue returns
// ErrOverloaded. Once admitted, a request is never converted back into a
// rejection: it either completes, or expires in queue and fails with
// ErrDeadlineExpired (dropped before compute).
func (s *Scheduler) SubmitDeadline(e unet.Engine, tile *raster.RGB, deadline time.Time) (*raster.Labels, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	defer s.inflight.Done()

	if !deadline.IsZero() {
		now := time.Now()
		budget := deadline.Sub(now)
		predicted := s.model.PredictWait(len(s.queue), s.cfg.Workers)
		if budget <= 0 || (predicted > 0 && predicted > budget) {
			if s.stats != nil {
				s.stats.RecordDeadlineReject()
			}
			return nil, &InfeasibleError{
				Predicted:  predicted,
				Budget:     budget,
				RetryAfter: retryIn(predicted, budget),
			}
		}
	}

	req := &request{engine: e, tile: tile, deadline: deadline, out: make(chan result, 1)}
	select {
	case s.queue <- req:
	default:
		if s.stats != nil {
			s.stats.RecordReject()
		}
		return nil, ErrOverloaded
	}
	res := <-req.out
	return res.labels, res.err
}

// retryIn estimates how long until a request with the given budget would
// be feasible: the excess of the predicted completion over the budget
// (floor 1ms so Retry-After never rounds to zero).
func retryIn(predicted, budget time.Duration) time.Duration {
	d := predicted - budget
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// Close drains in-flight work and stops the workers. Safe to call more
// than once.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.workers.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()

	// No new submits can start; wait for every enqueued request to be
	// answered (workers are still running), then stop the pool.
	s.inflight.Wait()
	close(s.done)
	s.workers.Wait()
}

// worker drains the queue, forming micro-batches. A panic escaping a
// batch is contained here: the crashed batch's requests (and any
// pending next leader) are requeued, the worker is respawned with a
// fresh session map, and the panic never reaches the process.
func (s *Scheduler) worker() {
	defer s.workers.Done()
	defer s.live.Add(-1)

	var cur []*request   // batch being executed, requeued on panic
	var pending *request // first request of the next batch after a mismatch
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if s.stats != nil {
			s.stats.RecordWorkerRestart()
		}
		requeue := cur
		if pending != nil {
			requeue = append(requeue, pending)
		}
		now := time.Now()
		for _, req := range requeue {
			if !req.deadline.IsZero() && now.After(req.deadline) {
				// Already expired: answer the waiting submitter directly
				// instead of spending queue capacity on dead work.
				if s.stats != nil {
					s.stats.RecordExpired()
				}
				req.out <- result{err: ErrDeadlineExpired}
				continue
			}
			select {
			case s.queue <- req:
				// Back onto the bounded queue; a healthy worker (or this
				// worker's replacement) will pick it up.
			default:
				// Queue full: park a goroutine on the blocking send. An
				// admitted request is never converted back into a 429 —
				// the replacement worker (spawned below before this
				// deferred function returns) is guaranteed to drain the
				// queue, so the send always completes.
				req := req
				go func() { s.queue <- req }()
			}
		}
		// The replacement inherits nothing: sessions are rebuilt lazily,
		// so a corrupted buffer cannot outlive the crash.
		s.spawn()
	}()

	sessions := make(map[unet.Engine]unet.Predictor)
	for {
		var leader *request
		if pending != nil {
			leader, pending = pending, nil
		} else {
			select {
			case <-s.done:
				return
			case leader = <-s.queue:
			}
		}
		batch := []*request{leader}
		if s.cfg.MaxBatch > 1 {
			batch, pending = s.collect(batch)
		}
		cur = batch
		s.run(sessions, batch, &cur)
		cur = nil
	}
}

// collect gathers followers for batch's leader until the batch is full,
// BatchWait elapses, or a mismatched request arrives (returned as the
// next leader).
func (s *Scheduler) collect(batch []*request) ([]*request, *request) {
	leader := batch[0]
	timer := time.NewTimer(s.cfg.BatchWait)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case r := <-s.queue:
			if r.engine != leader.engine || r.tile.W != leader.tile.W || r.tile.H != leader.tile.H {
				return batch, r
			}
			batch = append(batch, r)
		case <-timer.C:
			return batch, nil
		case <-s.done:
			return batch, nil
		}
	}
	return batch, nil
}

// run executes one batch on the worker's session for its model and
// delivers per-request results. Requests whose deadline passed while
// queued are dropped here, before any compute — expired work never
// reaches a forward pass. Injected chaos faults fire at the batch-pickup
// ordinal, before any result is delivered — so the restart path always
// sees a whole batch to requeue; a seeded slow-node fault delays the
// batch (capacity degradation, not failure).
func (s *Scheduler) run(sessions map[unet.Engine]unet.Predictor, batch []*request, curp *[]*request) {
	panicNow, slow := s.cfg.Chaos.ServeBatch()
	if panicNow {
		panic("chaos: injected inference-worker fault")
	}
	if slow > 0 {
		time.Sleep(slow)
	}

	// Deadline triage: answer expired requests with ErrDeadlineExpired
	// and compute only the live remainder. curp (the panic-requeue view)
	// shrinks to the live set so an already-answered expired request can
	// never be requeued by a later panic.
	now := time.Now()
	live := make([]*request, 0, len(batch))
	for _, r := range batch {
		if !r.deadline.IsZero() && now.After(r.deadline) {
			if s.stats != nil {
				s.stats.RecordExpired()
			}
			r.out <- result{err: ErrDeadlineExpired}
			continue
		}
		live = append(live, r)
	}
	*curp = live
	if len(live) == 0 {
		return
	}

	sess, ok := sessions[live[0].engine]
	if !ok {
		sess = live[0].engine.NewPredictor()
		sessions[live[0].engine] = sess
	}
	tiles := make([]*raster.RGB, len(live))
	for i, r := range live {
		tiles[i] = r.tile
	}
	start := time.Now()
	labels, err := sess.PredictTiles(tiles)
	s.model.Observe(len(live), time.Since(start))
	if s.stats != nil {
		s.stats.RecordBatch(len(live))
	}
	for i, r := range live {
		if err != nil {
			r.out <- result{err: err}
		} else {
			r.out <- result{labels: labels[i]}
		}
	}
}
