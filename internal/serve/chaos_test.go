package serve

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"seaice/internal/chaos"
	"seaice/internal/raster"
)

// serveInjector parses a chaos spec for the serving tests.
func serveInjector(t *testing.T, spec string) *chaos.Injector {
	t.Helper()
	sched, err := chaos.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return chaos.New(sched, 0)
}

// TestChaosWorkerRestartServesEverything asserts injected worker panics
// are absorbed by the self-healing pool: every submitted request is
// answered (the crashed batch requeues), the restarts are accounted,
// and the pool returns to full strength.
func TestChaosWorkerRestartServesEverything(t *testing.T) {
	m := testModel(t, 7)
	cfg := schedCfg()
	cfg.Workers = 2
	cfg.MaxBatch = 4
	cfg.BatchWait = time.Millisecond
	cfg.QueueSize = 256 // roomy: no request should be shed
	cfg.Chaos = serveInjector(t, "3:serve@0,serve@4")
	stats := NewStats()
	sched := NewScheduler(cfg, stats)
	defer sched.Close()

	const n = 48
	tiles := testTiles(n, 16, 5)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = sched.Submit(m, tiles[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v (queued requests must survive worker panics)", i, err)
		}
	}
	if cfg.Chaos.Remaining() != 0 {
		t.Fatalf("%d serve faults undelivered", cfg.Chaos.Remaining())
	}
	if got := stats.WorkerRestarts(); got != 2 {
		t.Fatalf("worker restarts = %d, want 2", got)
	}
	// The pool self-heals back to its configured strength.
	deadline := time.Now().Add(2 * time.Second)
	for sched.LiveWorkers() != cfg.Workers && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if live := sched.LiveWorkers(); live != cfg.Workers {
		t.Fatalf("live workers = %d, want %d", live, cfg.Workers)
	}
}

// TestChaosWorkerRestartRespectsBound asserts the requeue path never
// exceeds the existing overload semantics: with a tiny queue, a crashed
// batch may shed requests — but only as ErrOverloaded (the 429 path),
// never as silent loss, and the total always accounts.
func TestChaosWorkerRestartRespectsBound(t *testing.T) {
	m := testModel(t, 8)
	cfg := schedCfg()
	cfg.Workers = 1
	cfg.MaxBatch = 4
	cfg.BatchWait = 5 * time.Millisecond
	cfg.QueueSize = 2
	cfg.Chaos = serveInjector(t, "9:serve@0")
	stats := NewStats()
	sched := NewScheduler(cfg, stats)
	defer sched.Close()

	const n = 24
	tiles := testTiles(n, 16, 6)
	var wg sync.WaitGroup
	var mu sync.Mutex
	ok, overloaded := 0, 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := sched.Submit(m, tiles[i])
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok++
			case errors.Is(err, ErrOverloaded):
				overloaded++
			default:
				t.Errorf("submit %d: unexpected error %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if ok+overloaded != n {
		t.Fatalf("accounted %d of %d requests", ok+overloaded, n)
	}
	if ok == 0 {
		t.Fatal("nothing succeeded after the restart")
	}
	if got := stats.WorkerRestarts(); got != 1 {
		t.Fatalf("worker restarts = %d, want 1", got)
	}
	t.Logf("%d served, %d shed as 429 across the restart", ok, overloaded)
}

// TestChaosSchedulerCloseAfterRestart asserts a pool that has been
// through a restart still drains and closes cleanly.
func TestChaosSchedulerCloseAfterRestart(t *testing.T) {
	m := testModel(t, 9)
	cfg := schedCfg()
	cfg.Workers = 2
	cfg.QueueSize = 64
	cfg.Chaos = serveInjector(t, "2:serve@1")
	sched := NewScheduler(cfg, nil)

	tiles := testTiles(8, 16, 7)
	var wg sync.WaitGroup
	for i := range tiles {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := sched.Submit(m, tiles[i]); err != nil && !errors.Is(err, ErrOverloaded) {
				t.Errorf("submit %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	sched.Close()
	sched.Close() // idempotent after a restart too
}

// TestCacheConcurrentEviction hammers the LRU from many goroutines with
// a keyspace larger than its capacity, so gets, puts, and evictions
// interleave constantly — the -race target for the cache (the CI race
// job runs this package).
func TestCacheConcurrentEviction(t *testing.T) {
	c := NewCache(8)
	keys := make([]CacheKey, 64)
	labels := make([]*raster.Labels, len(keys))
	for i := range keys {
		tile := raster.NewRGB(4, 4)
		tile.Pix[0] = uint8(i)
		keys[i] = TileKey(fmt.Sprintf("m%d", i%3), tile)
		labels[i] = raster.NewLabels(4, 4)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 200; round++ {
				k := (g*31 + round) % len(keys)
				if v, hit := c.Get(keys[k]); hit && v == nil {
					t.Error("hit returned nil labels")
				}
				c.Put(keys[k], labels[k])
				if c.Len() > 8 {
					t.Error("cache exceeded capacity")
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Fatalf("cache holds %d entries, capacity 8", c.Len())
	}
	hits, misses := c.Counters()
	if hits+misses == 0 {
		t.Fatal("no lookups accounted")
	}
}
