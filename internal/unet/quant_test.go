package unet

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"seaice/internal/noise"
	"seaice/internal/pool"
	"seaice/internal/raster"
	"seaice/internal/tensor"
)

// calibTiles renders deterministic pseudo-random tiles.
func calibTiles(n, size int, seed uint64) []*raster.RGB {
	rng := noise.NewRNG(seed, 0xca11)
	out := make([]*raster.RGB, n)
	for i := range out {
		img := raster.NewRGB(size, size)
		for p := range img.Pix {
			img.Pix[p] = uint8(rng.Uint64())
		}
		out[i] = img
	}
	return out
}

// quantModel builds a quantized model from a fresh random master.
func quantModel(t testing.TB, seed uint64) (*Model[float64], *QuantModel) {
	t.Helper()
	m, err := New[float64](FastConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	cal, err := Calibrate(m, calibTiles(6, 32, seed), 3)
	if err != nil {
		t.Fatal(err)
	}
	qm, err := Quantize(m, cal)
	if err != nil {
		t.Fatal(err)
	}
	return m, qm
}

// TestCalibrateDeterministic: calibration is a serial min/max sweep, so
// the observed ranges must be bit-identical at any pool worker count and
// any batch split.
func TestCalibrateDeterministic(t *testing.T) {
	m, err := New[float64](FastConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	tiles := calibTiles(7, 32, 5)
	var want *Calibration
	defer pool.SetSharedWorkers(0)
	for _, workers := range []int{1, 3, 4} {
		pool.SetSharedWorkers(workers)
		for _, batch := range []int{1, 3, 7} {
			cal, err := Calibrate(m, tiles, batch)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = cal
				// Sanity: every stage the quantizer needs was observed.
				for _, stage := range RequiredStages(m.Config()) {
					if _, ok := cal.Ranges[stage]; !ok {
						t.Fatalf("calibration missing stage %s; have %v", stage, cal.Stages())
					}
				}
				continue
			}
			if !reflect.DeepEqual(cal.Ranges, want.Ranges) {
				t.Fatalf("workers=%d batch=%d: calibration ranges differ:\n%v\nvs\n%v",
					workers, batch, cal.Ranges, want.Ranges)
			}
		}
	}
}

// TestCalibrateRejectsEmptyAndNaN covers the calibration error paths.
func TestCalibrateRejectsEmptyAndNaN(t *testing.T) {
	m, err := New[float64](FastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Calibrate(m, nil, 4); err == nil {
		t.Fatal("expected error for empty tile set")
	}
	// Poison one weight to NaN: the calibration must name a stage rather
	// than silently producing NaN scales.
	w := m.WeightsF64()
	w["enc0.conv1.weight"][0] = nan()
	if err := m.SetWeightsF64(w); err != nil {
		t.Fatal(err)
	}
	_, err = Calibrate(m, calibTiles(1, 16, 1), 1)
	if err == nil || !strings.Contains(err.Error(), "NaN") {
		t.Fatalf("expected NaN stage error, got %v", err)
	}
}

func nan() float64 { z := 0.0; return z / z }

// TestQuantizeValidation: missing weights or activation stages, and
// corrupt scale tables, must fail with descriptive errors rather than
// building a silently broken model.
func TestQuantizeValidation(t *testing.T) {
	m, err := New[float64](FastConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	cal, err := Calibrate(m, calibTiles(2, 16, 9), 2)
	if err != nil {
		t.Fatal(err)
	}
	acts := cal.ActQuants()

	if _, err := buildQuant(m.Config(), m.WeightsF64(), acts); err != nil {
		t.Fatalf("intact inputs should quantize: %v", err)
	}

	missing := make(map[string]tensor.ActQuant, len(acts))
	for k, v := range acts {
		missing[k] = v
	}
	delete(missing, "dec1.conv2")
	if _, err := buildQuant(m.Config(), m.WeightsF64(), missing); err == nil || !strings.Contains(err.Error(), "dec1.conv2") {
		t.Fatalf("expected missing-stage error naming dec1.conv2, got %v", err)
	}

	bad := make(map[string]tensor.ActQuant, len(acts))
	for k, v := range acts {
		bad[k] = v
	}
	bad["up0"] = tensor.ActQuant{Scale: 0, Zero: 3}
	if _, err := buildQuant(m.Config(), m.WeightsF64(), bad); err == nil || !strings.Contains(err.Error(), "up0") {
		t.Fatalf("expected invalid-scale error naming up0, got %v", err)
	}

	weights := m.WeightsF64()
	delete(weights, "bottleneck.conv1.bias")
	if _, err := buildQuant(m.Config(), weights, acts); err == nil || !strings.Contains(err.Error(), "bottleneck.conv1.bias") {
		t.Fatalf("expected missing-weights error, got %v", err)
	}
}

// TestQuantSessionDeterministic: the quantized forward is fully integer,
// so labels must be bit-identical across pool worker counts, sessions,
// and batched-vs-single evaluation.
func TestQuantSessionDeterministic(t *testing.T) {
	_, qm := quantModel(t, 11)
	tiles := calibTiles(5, 32, 77)

	var want []*raster.Labels
	defer pool.SetSharedWorkers(0)
	for _, workers := range []int{1, 3, 4} {
		pool.SetSharedWorkers(workers)
		s := NewQuantSession(qm)
		got, err := s.PredictTiles(tiles)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			// Batched and single-tile paths must also agree exactly.
			for i, tile := range tiles {
				single, err := s.PredictTiles([]*raster.RGB{tile})
				if err != nil {
					t.Fatal(err)
				}
				for p := range want[i].Pix {
					if single[0].Pix[p] != want[i].Pix[p] {
						t.Fatalf("tile %d pixel %d: single %d, batched %d", i, p, single[0].Pix[p], want[i].Pix[p])
					}
				}
			}
			continue
		}
		for i := range tiles {
			for p := range want[i].Pix {
				if got[i].Pix[p] != want[i].Pix[p] {
					t.Fatalf("workers=%d tile %d pixel %d: %d, want %d", workers, i, p, got[i].Pix[p], want[i].Pix[p])
				}
			}
		}
	}
}

// TestQuantSessionBufferReuse runs mixed batch shapes through one session
// to confirm the grow-only buffers do not leak state between calls.
func TestQuantSessionBufferReuse(t *testing.T) {
	_, qm := quantModel(t, 13)
	s := NewQuantSession(qm)
	fresh := NewQuantSession(qm)
	for _, shape := range []struct{ n, sz int }{{4, 32}, {1, 32}, {2, 16}, {4, 32}, {1, 16}} {
		tiles := calibTiles(shape.n, shape.sz, uint64(shape.n*100+shape.sz))
		want, err := fresh.PredictTiles(tiles)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.PredictTiles(tiles)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			for p := range want[i].Pix {
				if got[i].Pix[p] != want[i].Pix[p] {
					t.Fatalf("batch %dx%d tile %d pixel %d mismatch after reuse", shape.n, shape.sz, i, p)
				}
			}
		}
		fresh = NewQuantSession(qm) // fresh reference session every round
	}
}

// TestQuantSessionRejectsBadInput covers the validation paths.
func TestQuantSessionRejectsBadInput(t *testing.T) {
	_, qm := quantModel(t, 17)
	s := NewQuantSession(qm)
	if _, err := s.PredictTiles(nil); err == nil {
		t.Fatal("expected empty-batch error")
	}
	if _, err := s.PredictTiles(calibTiles(1, 12, 1)); err == nil {
		t.Fatal("expected divisibility error")
	}
	if _, err := s.PredictTiles([]*raster.RGB{raster.NewRGB(16, 16), raster.NewRGB(32, 32)}); err == nil {
		t.Fatal("expected mixed-size error")
	}
}

// TestQuantCheckpointRoundTrip: a version-3 save/load must rebuild a
// model with identical quantization tables and bit-identical
// predictions, and the embedded float64 master must survive unchanged.
func TestQuantCheckpointRoundTrip(t *testing.T) {
	m, qm := quantModel(t, 23)
	var buf bytes.Buffer
	if err := qm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.Bytes()

	loaded, err := LoadQuantized(bytes.NewReader(saved))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.ActQuants(), qm.ActQuants()) {
		t.Fatal("activation tables differ after round trip")
	}
	tiles := calibTiles(3, 32, 55)
	want, err := NewQuantSession(qm).PredictTiles(tiles)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewQuantSession(loaded).PredictTiles(tiles)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for p := range want[i].Pix {
			if got[i].Pix[p] != want[i].Pix[p] {
				t.Fatalf("tile %d pixel %d differs after checkpoint round trip", i, p)
			}
		}
	}

	master, err := LoadMasterFromQuantized(bytes.NewReader(saved))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(master.WeightsF64(), m.WeightsF64()) {
		t.Fatal("embedded master weights differ after round trip")
	}
}

// TestLoadQuantizedTypedErrors pins the ErrBadCheckpoint contract across
// the quantized loader's refusal paths, including cross-version loads.
func TestLoadQuantizedTypedErrors(t *testing.T) {
	m, qm := quantModel(t, 29)
	var v3 bytes.Buffer
	if err := qm.Save(&v3); err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := m.Save(&v2); err != nil {
		t.Fatal(err)
	}

	for name, data := range map[string][]byte{
		"float checkpoint":  v2.Bytes(),
		"malformed magic":   append([]byte("SEAICE-UNET-XKPT\x03"), v3.Bytes()[len(ckptMagicV3):]...),
		"truncated payload": v3.Bytes()[:len(v3.Bytes())-7],
		"empty":             nil,
		"garbage":           []byte("zeros and ones but not these ones"),
	} {
		if _, err := LoadQuantized(bytes.NewReader(data)); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("%s: LoadQuantized = %v, want ErrBadCheckpoint", name, err)
		}
	}
	// A float loader pointed at a quantized file must refuse typedly too.
	if _, err := Load[float64](bytes.NewReader(v3.Bytes())); !errors.Is(err, ErrBadCheckpoint) {
		t.Errorf("Load[float64] on v3 = %v, want ErrBadCheckpoint", err)
	}
}

// TestEngineSeam: all three precision rungs present the same Engine
// surface with the right self-description.
func TestEngineSeam(t *testing.T) {
	m64, qm := quantModel(t, 19)
	m32, err := New[float32](FastConfig(19))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		e    Engine
		want string
	}{{m64, "f64"}, {m32, "f32"}, {qm, "int8"}} {
		if got := tc.e.Precision(); got != tc.want {
			t.Fatalf("precision %q, want %q", got, tc.want)
		}
		if got := tc.e.Config().Depth; got != 3 {
			t.Fatalf("%s config depth %d, want 3", tc.want, got)
		}
		if tc.e.NewPredictor() == nil {
			t.Fatalf("%s engine returned nil predictor", tc.want)
		}
	}
}
