package unet

import (
	"errors"
	"fmt"
	"math"

	"seaice/internal/nn"
	"seaice/internal/pool"
	"seaice/internal/raster"
	"seaice/internal/tensor"
)

// ErrNonFinite reports a forward pass whose logits contain NaN or ±Inf —
// corrupted weights (a flipped bit in a checkpoint, a bad quantized
// table) or poisoned activations. Predictions built from non-finite
// logits are garbage that argmax would silently launder into plausible
// class maps, so the session refuses to emit them; the serving layer
// maps this to an HTTP 400 before the result can enter its cache.
var ErrNonFinite = errors.New("unet: non-finite logits")

// Session is a forward-only inference engine over a trained Model. It
// avoids the training path's costs: convolutions run directly on NCHW
// planes (no im2col materialization), bias and ReLU are applied in a
// fused pass, the skip-connection concatenation is virtualized instead
// of copied, and every intermediate activation lives in a buffer owned
// by the session and reused across calls. Micro-batched serving
// (internal/serve) runs one Session per worker.
//
// A float64 session produces Model.Predict's outputs exactly; a float32
// session additionally routes its 3×3 convolutions through the Winograd
// engine (nn.Winograd) — deterministic, and within the documented
// tolerance of the float64 model rather than bit-equal.
//
// A Session is NOT safe for concurrent use; the underlying Model's
// weights are only read, so many Sessions may share one Model. The
// session runs its kernels serially (pool.Serial()): serving
// concurrency comes from running one Session per worker, and nesting a
// fan-out inside each worker would oversubscribe the cores.
type Session[S tensor.Scalar] struct {
	m *Model[S]

	// Grow-only activation buffers, reused across Forward calls.
	in      []S
	encC1   [][]S // conv1 output per encoder level
	encC2   [][]S // conv2 output per encoder level (skip source)
	pooled  [][]S // pooled output per encoder level
	botC1   []S
	botC2   []S
	up      [][]S // up-convolution output per decoder step
	decC1   [][]S
	decC2   [][]S
	logits  []S
	lastDim []int // shape of the last logits tensor

	// wino is the F(2×2,3×3) reduced-multiplication conv engine; non-nil
	// only for float32 sessions, where tolerance (not bit-identity)
	// scopes the guarantee and the cheaper algebra is admissible. See
	// the precision policy in nn.Winograd's doc.
	wino *nn.Winograd[S]

	// obs, when set, receives every intermediate activation buffer by
	// stage name after it is produced — the calibration pass's window
	// into the forward (see Calibrate). Nil outside calibration.
	obs func(stage string, data []S)
}

// SetObserver registers fn to receive each stage's activation buffer
// (keyed by the producing layer's name) during Forward. Pass nil to
// detach. The buffers alias session memory: observers must not retain
// them.
func (s *Session[S]) SetObserver(fn func(stage string, data []S)) { s.obs = fn }

func (s *Session[S]) observe(stage string, data []S) {
	if s.obs != nil {
		s.obs(stage, data)
	}
}

// NewSession builds an inference session for m.
func NewSession[S tensor.Scalar](m *Model[S]) *Session[S] {
	d := m.cfg.Depth
	var wino *nn.Winograd[S]
	if tensor.IsF32[S]() {
		wino = nn.NewWinograd[S](true)
	}
	return &Session[S]{
		m:      m,
		wino:   wino,
		encC1:  make([][]S, d),
		encC2:  make([][]S, d),
		pooled: make([][]S, d),
		up:     make([][]S, d),
		decC1:  make([][]S, d),
		decC2:  make([][]S, d),
	}
}

// Model returns the session's underlying model.
func (s *Session[S]) Model() *Model[S] { return s.m }

// grow returns buf resized to n elements, reallocating only when the
// capacity is insufficient. Contents are NOT cleared.
func grow[T any](buf *[]T, n int) []T {
	if cap(*buf) < n {
		*buf = make([]T, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// conv3 dispatches one fused 3×3+ReLU convolution: the direct NCHW
// kernel (bit-compatible with the training forward), or — on float32
// sessions, for even plane sizes — the Winograd transform engine.
func (s *Session[S]) conv3(c *nn.Conv2D[S], xa []S, ca int, xb []S, cb int, n, h, w int, dst []S) {
	if s.wino != nil && s.wino.Usable(c, h, w) {
		s.wino.Conv(c, xa, ca, xb, cb, n, h, w, dst, true)
		return
	}
	nn.Conv3x3Planes(pool.Serial(), c, xa, ca, xb, cb, n, h, w, dst, true)
}

// Forward runs the U-Net on x (N, InChannels, H, W) and returns class
// logits (N, Classes, H, W). The returned tensor aliases session-owned
// memory and is only valid until the next Forward/Predict call.
func (s *Session[S]) Forward(x *tensor.Tensor[S]) (*tensor.Tensor[S], error) {
	if len(x.Shape) != 4 || x.Shape[1] != s.m.cfg.InChannels {
		return nil, fmt.Errorf("unet: session expects (N,%d,H,W), got %v", s.m.cfg.InChannels, x.Shape)
	}
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	min := s.m.cfg.MinInputSize()
	if h%min != 0 || w%min != 0 {
		return nil, fmt.Errorf("unet: session input %dx%d not divisible by %d", w, h, min)
	}
	m := s.m
	d := m.cfg.Depth

	// Contracting path.
	cur := x.Data
	ch, cw := h, w
	for l := 0; l < d; l++ {
		b := m.enc[l]
		c1 := grow(&s.encC1[l], n*b.conv1.OutC*ch*cw)
		s.conv3(b.conv1, cur, b.conv1.InC, nil, 0, n, ch, cw, c1)
		s.observe(b.conv1.Name(), c1)
		c2 := grow(&s.encC2[l], n*b.conv2.OutC*ch*cw)
		s.conv3(b.conv2, c1, b.conv2.InC, nil, 0, n, ch, cw, c2)
		s.observe(b.conv2.Name(), c2)
		p := grow(&s.pooled[l], n*b.conv2.OutC*(ch/2)*(cw/2))
		nn.MaxPool2Planes(c2, n*b.conv2.OutC, ch, cw, p)
		cur, ch, cw = p, ch/2, cw/2
	}

	// Bottleneck.
	bb := m.bottleneck
	c1 := grow(&s.botC1, n*bb.conv1.OutC*ch*cw)
	s.conv3(bb.conv1, cur, bb.conv1.InC, nil, 0, n, ch, cw, c1)
	s.observe(bb.conv1.Name(), c1)
	c2 := grow(&s.botC2, n*bb.conv2.OutC*ch*cw)
	s.conv3(bb.conv2, c1, bb.conv2.InC, nil, 0, n, ch, cw, c2)
	s.observe(bb.conv2.Name(), c2)
	cur = c2

	// Expanding path: up-convolve, virtually concat the skip, convolve.
	for i := 0; i < d; i++ {
		l := d - 1 - i
		u := m.ups[i]
		uo := grow(&s.up[i], n*u.OutC*(2*ch)*(2*cw))
		nn.ConvT2x2Planes(pool.Serial(), u, cur, n, ch, cw, uo)
		s.observe(u.Name(), uo)
		ch, cw = 2*ch, 2*cw

		db := m.dec[i]
		skipC := u.OutC // encoder skip has the same channel count
		d1 := grow(&s.decC1[i], n*db.conv1.OutC*ch*cw)
		// conv1 input channels: [0, skipC) from the encoder skip,
		// [skipC, 2·skipC) from the up-convolution output — no copy.
		s.conv3(db.conv1, s.encC2[l], skipC, uo, u.OutC, n, ch, cw, d1)
		s.observe(db.conv1.Name(), d1)
		d2 := grow(&s.decC2[i], n*db.conv2.OutC*ch*cw)
		s.conv3(db.conv2, d1, db.conv2.InC, nil, 0, n, ch, cw, d2)
		s.observe(db.conv2.Name(), d2)
		cur = d2
	}

	out := grow(&s.logits, n*m.cfg.Classes*ch*cw)
	nn.Conv1x1Planes(pool.Serial(), m.final, cur, m.final.InC, n, ch, cw, out)
	s.lastDim = []int{n, m.cfg.Classes, ch, cw}
	return tensor.FromData(out, s.lastDim...), nil
}

// Predict returns per-pixel class predictions for x, like Model.Predict.
// Logits are integrity-checked first: a non-finite value anywhere fails
// the call with ErrNonFinite instead of laundering garbage through
// argmax.
func (s *Session[S]) Predict(x *tensor.Tensor[S]) ([]uint8, error) {
	logits, err := s.Forward(x)
	if err != nil {
		return nil, err
	}
	for i, v := range logits.Data {
		if f := float64(v); math.IsNaN(f) || math.IsInf(f, 0) {
			kind := "NaN"
			if math.IsInf(f, 0) {
				kind = "Inf"
			}
			return nil, fmt.Errorf("%w: %s at element %d of %v", ErrNonFinite, kind, i, logits.Shape)
		}
	}
	return nn.Predict(logits), nil
}

// PredictTiles classifies a batch of equally-sized RGB tiles in one
// forward pass, amortizing per-layer cost across the batch.
func (s *Session[S]) PredictTiles(tiles []*raster.RGB) ([]*raster.Labels, error) {
	if len(tiles) == 0 {
		return nil, fmt.Errorf("unet: empty tile batch")
	}
	w, h := tiles[0].W, tiles[0].H
	plane := h * w
	in := grow(&s.in, len(tiles)*3*plane)
	for ti, t := range tiles {
		if t.W != w || t.H != h {
			return nil, fmt.Errorf("unet: tile %d is %dx%d, batch is %dx%d", ti, t.W, t.H, w, h)
		}
		base := ti * 3 * plane
		for p := 0; p < plane; p++ {
			in[base+p] = S(t.Pix[3*p]) / 255
			in[base+plane+p] = S(t.Pix[3*p+1]) / 255
			in[base+2*plane+p] = S(t.Pix[3*p+2]) / 255
		}
	}
	pred, err := s.Predict(tensor.FromData(in, len(tiles), 3, h, w))
	if err != nil {
		return nil, err
	}
	out := make([]*raster.Labels, len(tiles))
	for ti := range tiles {
		lab := raster.NewLabels(w, h)
		for p := 0; p < plane; p++ {
			lab.Pix[p] = raster.Class(pred[ti*plane+p])
		}
		out[ti] = lab
	}
	return out, nil
}

// The direct NCHW kernels the session is built on (fused 3×3 and 1×1
// convolutions, 2×2 max-pool, 2×2 transposed convolution) live in
// internal/nn (kernels.go) so the training engine and this inference
// session share one implementation.
