// Distributed: Horovod-style synchronous data-parallel U-Net training on
// simulated GPUs with a real ring all-reduce (§III-C1). The example shows
// (i) the ring all-reduce agreeing with a direct sum, (ii) multi-worker
// training staying bit-synchronized, and (iii) the calibrated DGX timing
// model projecting the paper's Table III speedups.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"seaice/internal/dataset"
	"seaice/internal/ddp"
	"seaice/internal/perfmodel"
	"seaice/internal/pipeline"
	"seaice/internal/ring"
	"seaice/internal/scene"
	"seaice/internal/unet"
)

func main() {
	log.SetFlags(0)

	// 1. The ring all-reduce itself.
	vectors := [][]float64{
		{1, 2, 3, 4},
		{10, 20, 30, 40},
		{100, 200, 300, 400},
	}
	if err := ring.AllReduceMean(vectors); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ring all-reduce mean across 3 ranks: %v\n\n", vectors[0])

	// 2. Real distributed training on a small auto-labeled dataset,
	// streamed through the sharded pipeline (generation, filtering, and
	// labeling run as overlapped stages; the output is byte-identical
	// to the batch dataset.Build path).
	cc := scene.DefaultCollection(7)
	cc.Scenes = 2
	cc.W, cc.H = 128, 128
	build := dataset.DefaultBuild()
	build.TileSize = 16
	builder := pipeline.StreamBuilder{Config: pipeline.Config{Build: build}}
	set, err := builder.BuildSet(pipeline.CollectionSource{Cfg: cc})
	if err != nil {
		log.Fatal(err)
	}
	samples := dataset.Samples(dataset.Subsample(set.Tiles, 24, 1), dataset.OriginalImages, dataset.AutoLabels)

	modelCfg := unet.Config{Depth: 2, BaseChannels: 4, InChannels: 3, Classes: 3, DropoutRate: 0, Seed: 11}
	trainer, err := ddp.New[float64](modelCfg, ddp.Config{
		Workers:        4,
		BatchPerWorker: 3,
		Epochs:         3,
		LR:             0.01,
		Seed:           5,
		Timing:         perfmodel.PaperDGX(),
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := trainer.Fit(samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4-worker training: loss %.4f → %.4f, virtual DGX time %.2f s (real %.2f s)\n\n",
		res.Epochs[0].Loss, res.Epochs[len(res.Epochs)-1].Loss, res.VirtualTotal, res.RealTotal)

	// 3. The Table III projection.
	dgx := perfmodel.PaperDGX()
	fmt.Println("projected Table III (50 epochs on the paper's DGX A100):")
	fmt.Println("GPUs  total(s)  s/epoch  img/s    speedup")
	for _, p := range []int{1, 2, 4, 6, 8} {
		fmt.Printf("%4d  %8.2f  %7.3f  %7.1f  %6.2fx\n",
			p, dgx.TotalTime(p, 50), dgx.EpochTime(p), dgx.Throughput(p, 3379), dgx.Speedup(p))
	}
}
