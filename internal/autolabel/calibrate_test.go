package autolabel

import (
	"testing"

	"seaice/internal/metrics"
	"seaice/internal/raster"
	"seaice/internal/scene"
)

// partialNightScene renders the Antarctic partial-night season: the
// surface is dimmed enough that the published summer thresholds misread
// thick ice as thin and thin ice as water (§IV-B2's noted limitation).
func partialNightScene(t *testing.T, seed uint64) *scene.Scene {
	t.Helper()
	cfg := scene.DefaultConfig(seed)
	cfg.W, cfg.H = 256, 256
	cfg.Illumination = 0.55
	cfg.Clouds = scene.ClearClouds()
	sc, err := scene.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return sc
}

// TestSummerThresholdsFailInPartialNight documents the problem Calibrate
// solves: on the same surface, dimming the sun must degrade the published
// summer thresholds substantially (how much depends on the scene's class
// mix — water stays correct under any illumination — so the check is
// differential against the summer rendering of the identical scene).
func TestSummerThresholdsFailInPartialNight(t *testing.T) {
	score := func(illum float64) float64 {
		cfg := scene.DefaultConfig(81)
		cfg.W, cfg.H = 256, 256
		cfg.Illumination = illum
		cfg.Clouds = scene.ClearClouds()
		sc, err := scene.Generate(cfg)
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		lab, err := LabelPaper(sc.Image)
		if err != nil {
			t.Fatalf("label: %v", err)
		}
		acc, err := metrics.PixelAccuracy(sc.Truth, lab)
		if err != nil {
			t.Fatalf("accuracy: %v", err)
		}
		return acc
	}
	summer := score(1.0)
	night := score(0.55)
	t.Logf("summer thresholds: %.4f at full sun, %.4f at partial night", summer, night)
	if night > summer-0.05 {
		t.Fatalf("partial night degraded summer thresholds only %.4f → %.4f; season effect too weak to exercise calibration", summer, night)
	}
}

// TestCalibrateRecoversPartialNight: calibrating on one labeled
// partial-night scene must restore near-perfect accuracy on another.
func TestCalibrateRecoversPartialNight(t *testing.T) {
	ref := partialNightScene(t, 82)
	th, err := Calibrate([]*raster.RGB{ref.Image}, []*raster.Labels{ref.Truth})
	if err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	if err := th.Validate(); err != nil {
		t.Fatalf("calibrated thresholds invalid: %v", err)
	}

	other := partialNightScene(t, 83)
	lab, err := Label(other.Image, th)
	if err != nil {
		t.Fatalf("label: %v", err)
	}
	acc, err := metrics.PixelAccuracy(other.Truth, lab)
	if err != nil {
		t.Fatalf("accuracy: %v", err)
	}
	t.Logf("calibrated partial-night accuracy on unseen scene: %.4f", acc)
	if acc < 0.95 {
		t.Fatalf("calibrated accuracy %.4f < 0.95", acc)
	}
}

// TestCalibrateOnSummerRecoversPaperStructure: calibrating on summer
// imagery must produce bands close to the published ones.
func TestCalibrateOnSummerRecoversPaperStructure(t *testing.T) {
	cfg := scene.DefaultConfig(84)
	cfg.W, cfg.H = 256, 256
	cfg.Clouds = scene.ClearClouds()
	sc, err := scene.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	th, err := Calibrate([]*raster.RGB{sc.Image}, []*raster.Labels{sc.Truth})
	if err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	// The paper's boundaries are 30/31 and 204/205; the renderer leaves
	// gaps, so the empirical boundary lands within the gaps.
	wc := th.Water.Hi.V
	tc := th.ThinIce.Hi.V
	if wc < 26 || wc > 40 {
		t.Errorf("calibrated water ceiling %d far from the paper's 30", wc)
	}
	if tc < 188 || tc > 215 {
		t.Errorf("calibrated thin ceiling %d far from the paper's 204", tc)
	}
}

func TestCalibrateErrors(t *testing.T) {
	if _, err := Calibrate(nil, nil); err == nil {
		t.Fatal("expected empty-input error")
	}
	img := raster.NewRGB(4, 4)
	lab := raster.NewLabels(5, 4)
	if _, err := Calibrate([]*raster.RGB{img}, []*raster.Labels{lab}); err == nil {
		t.Fatal("expected size-mismatch error")
	}
	// all-water labels: missing classes must be rejected
	l2 := raster.NewLabels(4, 4)
	if _, err := Calibrate([]*raster.RGB{img}, []*raster.Labels{l2}); err == nil {
		t.Fatal("expected missing-class error")
	}
}

func TestQuantile(t *testing.T) {
	var h [256]int64
	for v := 0; v < 100; v++ {
		h[v] = 1
	}
	if q := Quantile(h, 0.5); q != 50 {
		t.Fatalf("median %d, want 50", q)
	}
	if q := Quantile(h, 0); q != 0 {
		t.Fatalf("q0 %d", q)
	}
	var empty [256]int64
	if Quantile(empty, 0.5) != 0 {
		t.Fatal("empty histogram quantile")
	}
}
