package ddp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"seaice/internal/chaos"
	"seaice/internal/tensor"
	"seaice/internal/train"
	"seaice/internal/unet"
)

// dropoutConfig exercises the RNG-rewind machinery: recovery is only
// bit-identical if dropout masks are redrawn from the rewound stream.
func dropoutConfig(seed uint64) unet.Config {
	return unet.Config{Depth: 2, BaseChannels: 4, InChannels: 3, Classes: 3, DropoutRate: 0.15, Seed: seed}
}

// chaosTrainCfg is the shared small training configuration of the chaos
// tests: 12 steps total (4 batches/epoch × 3 epochs) at the given worker
// count.
func chaosTrainCfg(workers int, spec string, t *testing.T) Config {
	t.Helper()
	cfg := Config{
		Workers:        workers,
		BatchPerWorker: 2,
		Epochs:         3,
		LR:             0.01,
		Seed:           9,
		SnapshotEvery:  4,
	}
	if spec != "" {
		sched, err := chaos.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Chaos = chaos.New(sched, workers)
	}
	return cfg
}

// weightsOf renders rank 0's parameters as raw bytes (the float64
// widening is exact for either precision) for byte comparison.
func weightsOf[S tensor.Scalar](tr *Trainer[S]) []byte {
	var buf bytes.Buffer
	var b [8]byte
	for _, p := range tr.Replica(0).Params() {
		for _, v := range p.W.Data {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(float64(v)))
			buf.Write(b[:])
		}
	}
	return buf.Bytes()
}

// runFit trains a fresh trainer and returns it with its result.
func runFit[S tensor.Scalar](t *testing.T, model unet.Config, cfg Config, samples []train.Sample) (*Trainer[S], *Result) {
	t.Helper()
	tr, err := New[S](model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	return tr, res
}

// TestChaosRecoveryBitIdentity is the acceptance criterion: a run with
// ≥2 injected replica crashes at distinct steps recovers to final
// weights byte-identical to the uninterrupted run, at worker counts 1,
// 3, and 4 — in float64 and in float32 mixed precision (snapshots store
// exact float64 state, so recovery is bit-exact there too). Dropout is
// enabled: identity also proves the RNG streams rewind correctly.
func TestChaosRecoveryBitIdentity(t *testing.T) {
	for _, tc := range []struct {
		workers int
		spec    string
	}{
		// Single worker: every crash is a no-survivor loss, forcing the
		// snapshot-replay path (crashes land between snapshots at 4k).
		{1, "11:crash@2:r0,crash@7:r0"},
		// Multi-worker: survivor-copy healing; one auto-targeted crash
		// and a straggler riding along.
		{3, "11:crash@3:r1,crash@9:r0,stall@5:r2:2ms"},
		{4, "11:crash@1:r3,crash@6,crash@6:r0"},
	} {
		samples := syntheticSamples(123, tc.workers*2*4, 8)
		t.Run(fmt.Sprintf("workers=%d", tc.workers), func(t *testing.T) {
			t.Run("f64", func(t *testing.T) {
				chaosBitIdentity[float64](t, tc.workers, tc.spec, samples)
			})
			t.Run("f32-mixed", func(t *testing.T) {
				chaosBitIdentity[float32](t, tc.workers, tc.spec, samples)
			})
		})
	}
}

func chaosBitIdentity[S tensor.Scalar](t *testing.T, workers int, spec string, samples []train.Sample) {
	model := dropoutConfig(4)
	base := chaosTrainCfg(workers, "", t)
	base.MasterWeights = tensor.IsF32[S]()
	clean, cleanRes := runFit[S](t, model, base, samples)

	cfg := chaosTrainCfg(workers, spec, t)
	cfg.MasterWeights = base.MasterWeights
	injector := cfg.Chaos
	faulty, res := runFit[S](t, model, cfg, samples)

	if injector.Remaining() != 0 {
		t.Fatalf("schedule not exhausted: %d faults pending (%v)", injector.Remaining(), injector.Pending())
	}
	if res.Recoveries < 2 {
		t.Fatalf("recoveries = %d, want ≥ 2 (events %v)", res.Recoveries, injector.Events())
	}
	if workers == 1 && res.Replays < 2 {
		t.Fatalf("single-worker run used %d snapshot replays, want 2", res.Replays)
	}
	if res.Steps != cleanRes.Steps {
		t.Fatalf("committed steps %d vs clean %d", res.Steps, cleanRes.Steps)
	}
	if got, want := weightsOf(faulty), weightsOf(clean); !bytes.Equal(got, want) {
		t.Fatalf("recovered weights differ from uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}
}

// TestChaosKillResume asserts a run killed by an injected process fault
// resumes from its persisted snapshot bit-identically: kill at step 6,
// restart from the step-4 snapshot, final weights equal the
// uninterrupted run's.
func TestChaosKillResume(t *testing.T) {
	const workers = 3
	samples := syntheticSamples(55, workers*2*4, 8)
	model := dropoutConfig(21)
	snapPath := filepath.Join(t.TempDir(), "train.snap")

	base := chaosTrainCfg(workers, "", t)
	clean, _ := runFit[float64](t, model, base, samples)

	cfg := chaosTrainCfg(workers, "5:kill@6", t)
	cfg.SnapshotPath = snapPath
	tr, err := New[float64](model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Fit(samples)
	if !errors.Is(err, ErrKilled) {
		t.Fatalf("Fit returned %v, want ErrKilled", err)
	}
	if res.Steps != 6 {
		t.Fatalf("killed run committed %d steps, want 6", res.Steps)
	}

	// Restart: a fresh process loads the last persisted snapshot (taken
	// at step 4) and replays the rest of the schedule.
	snap, err := LoadSnapshotFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Step != 4 {
		t.Fatalf("persisted snapshot at step %d, want 4", snap.Step)
	}
	resumeCfg := chaosTrainCfg(workers, "", t)
	resumeCfg.SnapshotPath = snapPath
	resumed, err := New[float64](model, resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(snap); err != nil {
		t.Fatal(err)
	}
	res2, err := resumed.Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Steps != 8 {
		t.Fatalf("resumed run committed %d steps, want 8 (12 total − 4 snapshotted)", res2.Steps)
	}
	if got, want := weightsOf(resumed), weightsOf(clean); !bytes.Equal(got, want) {
		t.Fatal("kill-and-resume weights differ from uninterrupted run")
	}

	// Resuming against a different sample set cannot be bit-identical
	// and must be refused, not silently trained.
	wrongData, err := New[float64](model, chaosTrainCfg(workers, "", t))
	if err != nil {
		t.Fatal(err)
	}
	if err := wrongData.Restore(snap); err != nil {
		t.Fatal(err)
	}
	other := syntheticSamples(56, workers*2*4, 8)
	if _, err := wrongData.Fit(other); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("resume on different data: %v, want ErrSnapshotMismatch", err)
	}
}

// TestChaosRestoreRejectsMismatch asserts snapshots restore only into a
// matching trainer (typed error), and malformed snapshot streams report
// ErrBadSnapshot.
func TestChaosRestoreRejectsMismatch(t *testing.T) {
	model := dropoutConfig(3)
	cfg := chaosTrainCfg(2, "", t)
	tr, err := New[float64](model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := tr.Snapshot(0)

	other := cfg
	other.LR = 0.5
	wrong, err := New[float64](model, other)
	if err != nil {
		t.Fatal(err)
	}
	if err := wrong.Restore(snap); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("mismatched config restore: %v, want ErrSnapshotMismatch", err)
	}
	f32, err := New[float32](model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap32 := f32.Snapshot(0)
	snap32.Precision = "float64"
	// Same key, wrong precision: precision check must trip.
	wrong32, err := New[float32](model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := wrong32.Restore(snap32); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("cross-precision restore: %v, want ErrSnapshotMismatch", err)
	}

	if _, err := ReadSnapshot(bytes.NewReader([]byte("not a snapshot"))); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("garbage stream: %v, want ErrBadSnapshot", err)
	}
	// A valid header followed by garbage is a corruption (the header
	// promised a snapshot), not a malformed stream.
	if _, err := ReadSnapshot(bytes.NewReader([]byte(snapMagic + "truncated"))); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("truncated stream: %v, want ErrCorruptSnapshot", err)
	}
}

// TestChaosElasticDegradedRun asserts elastic mode survives permanent
// rank loss: the run completes over the survivors (resharded batches,
// re-chunked survivor ring), reports the lost ranks, and is
// deterministic given the fault schedule.
func TestChaosElasticDegradedRun(t *testing.T) {
	const workers = 3
	samples := syntheticSamples(200, workers*2*4, 8)
	model := dropoutConfig(8)

	run := func() (*Trainer[float64], *Result) {
		cfg := chaosTrainCfg(workers, "17:crash@2:r1,crash@5:r2", t)
		cfg.Elastic = true
		return runFit[float64](t, model, cfg, samples)
	}
	a, resA := run()
	b, resB := run()

	if !reflect.DeepEqual(resA.LostRanks, []int{1, 2}) {
		t.Fatalf("LostRanks = %v, want [1 2]", resA.LostRanks)
	}
	if resA.Recoveries != 0 || resA.Replays != 0 {
		t.Fatalf("elastic run healed ranks (recoveries %d, replays %d)", resA.Recoveries, resA.Replays)
	}
	if resA.Steps != 12 || resB.Steps != 12 {
		t.Fatalf("elastic runs committed %d/%d steps, want 12", resA.Steps, resB.Steps)
	}
	if !bytes.Equal(weightsOf(a), weightsOf(b)) {
		t.Fatal("elastic runs with the same fault schedule diverged")
	}
	// Degraded math is a *different* (documented) update sequence.
	cleanCfg := chaosTrainCfg(workers, "", t)
	clean, _ := runFit[float64](t, model, cleanCfg, samples)
	if bytes.Equal(weightsOf(a), weightsOf(clean)) {
		t.Fatal("elastic degraded run unexpectedly matched the full-complement run")
	}
}

// TestChaosElasticTotalLossFails asserts elastic mode refuses to
// resurrect ranks: losing every replica is a terminal error, not a
// silent snapshot replay that would rewrite the committed degraded
// steps.
func TestChaosElasticTotalLossFails(t *testing.T) {
	const workers = 2
	samples := syntheticSamples(77, workers*2*4, 8)
	cfg := chaosTrainCfg(workers, "3:crash@2:r0,crash@4:r1", t)
	cfg.Elastic = true
	tr, err := New[float64](dropoutConfig(6), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Fit(samples); err == nil || !strings.Contains(err.Error(), "all replicas lost") {
		t.Fatalf("Fit = %v, want all-replicas-lost error", err)
	}
}

// TestChaosStragglerIsHarmless asserts stragglers cost wall clock only.
func TestChaosStragglerIsHarmless(t *testing.T) {
	const workers = 3
	samples := syntheticSamples(88, workers*2*4, 8)
	model := dropoutConfig(13)

	clean, _ := runFit[float64](t, model, chaosTrainCfg(workers, "", t), samples)
	slow, res := runFit[float64](t, model, chaosTrainCfg(workers, "3:stall@1:r0:1ms,stall@4:r2:1ms", t), samples)
	if res.Stalls != 2 {
		t.Fatalf("stalls = %d, want 2", res.Stalls)
	}
	if !bytes.Equal(weightsOf(slow), weightsOf(clean)) {
		t.Fatal("straggler changed the training result")
	}
}
