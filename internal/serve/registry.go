package serve

import (
	"fmt"
	"sort"
	"sync"

	"seaice/internal/raster"
	"seaice/internal/tensor"
	"seaice/internal/unet"
)

// Registry holds the models the service can classify with, keyed by
// name. The first model registered becomes the default (requests that
// name no model use it). Loading and lookup are safe for concurrent use;
// the models themselves are only ever read after registration.
type Registry[S tensor.Scalar] struct {
	mu     sync.RWMutex
	models map[string]*unet.Model[S]
	def    string
}

// NewRegistry returns an empty registry.
func NewRegistry[S tensor.Scalar]() *Registry[S] {
	return &Registry[S]{models: make(map[string]*unet.Model[S])}
}

// Add registers an in-memory model under name.
func (r *Registry[S]) Add(name string, m *unet.Model[S]) error {
	if name == "" {
		return fmt.Errorf("serve: empty model name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.models[name]; dup {
		return fmt.Errorf("serve: model %q already registered", name)
	}
	r.models[name] = m
	if r.def == "" {
		r.def = name
	}
	return nil
}

// Load reads a checkpoint file and registers it under name.
func (r *Registry[S]) Load(name, path string) error {
	m, err := unet.LoadFile[S](path)
	if err != nil {
		return fmt.Errorf("serve: model %q: %w", name, err)
	}
	return r.Add(name, m)
}

// Get resolves a model by name; the empty string selects the default.
func (r *Registry[S]) Get(name string) (*unet.Model[S], error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		name = r.def
	}
	m, ok := r.models[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown model %q", name)
	}
	return m, nil
}

// Names lists registered model names in sorted order.
func (r *Registry[S]) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.models))
	for n := range r.models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Default returns the default model's name ("" when empty).
func (r *Registry[S]) Default() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.def
}

// Warm verifies every registered model can serve the given tile size
// and runs one throwaway batch per model, pre-faulting weight memory
// and catching broken checkpoints at startup instead of on the first
// request. (Worker sessions still grow their own activation buffers on
// their first batch; that cost is per worker and unavoidable here.)
func (r *Registry[S]) Warm(tileSize int) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	tile := raster.NewRGB(tileSize, tileSize)
	for name, m := range r.models {
		if tileSize%m.Config().MinInputSize() != 0 {
			return fmt.Errorf("serve: model %q needs tile sizes divisible by %d, serving %d",
				name, m.Config().MinInputSize(), tileSize)
		}
		sess := unet.NewSession(m)
		if _, err := sess.PredictTiles([]*raster.RGB{tile}); err != nil {
			return fmt.Errorf("serve: warm %q: %w", name, err)
		}
	}
	return nil
}
