package serve

import (
	"errors"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"seaice/internal/raster"
	"seaice/internal/unet"
)

// testQuantModel calibrates and quantizes a small deterministic master.
func testQuantModel(t testing.TB, seed uint64) *unet.QuantModel {
	t.Helper()
	m := testModel(t, seed)
	cal, err := unet.Calibrate(m, testTiles(6, 32, seed+0x9e37), 3)
	if err != nil {
		t.Fatal(err)
	}
	qm, err := unet.Quantize(m, cal)
	if err != nil {
		t.Fatal(err)
	}
	return qm
}

// TestParsePrecision pins the canonical names, the spelled-out aliases,
// and the typed rejection with its exact message.
func TestParsePrecision(t *testing.T) {
	for in, want := range map[string]string{
		"f64": "f64", "float64": "f64", "F64": "f64", " f64\t": "f64",
		"f32": "f32", "float32": "f32", "Float32": "f32",
		"int8": "int8", "INT8": "int8",
	} {
		got, err := ParsePrecision(in)
		if err != nil || got != want {
			t.Errorf("ParsePrecision(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "f16", "int4", "uint8", "half"} {
		_, err := ParsePrecision(bad)
		var upe *UnknownPrecisionError
		if !errors.As(err, &upe) {
			t.Errorf("ParsePrecision(%q) = %v, want *UnknownPrecisionError", bad, err)
			continue
		}
		if upe.Precision != bad {
			t.Errorf("ParsePrecision(%q) carried %q", bad, upe.Precision)
		}
	}
	_, err := ParsePrecision("f16")
	const want = `serve: unknown precision "f16" (valid: f64, f32, int8)`
	if err == nil || err.Error() != want {
		t.Errorf("message %v, want %q", err, want)
	}
}

// TestRegistryRejectsUnknownPrecision checks Load refuses an unknown
// precision with the typed error before touching the file, leaving the
// registry empty.
func TestRegistryRejectsUnknownPrecision(t *testing.T) {
	r := NewRegistry()
	err := r.Load("m", filepath.Join(t.TempDir(), "never-created.ckpt"), "f16")
	var upe *UnknownPrecisionError
	if !errors.As(err, &upe) || upe.Precision != "f16" {
		t.Fatalf("Load = %v, want *UnknownPrecisionError{f16}", err)
	}
	if n := r.Names(); len(n) != 0 {
		t.Fatalf("registry not empty after rejected load: %v", n)
	}
}

// TestRegistryMixedPrecision loads one quantized (v3) checkpoint at all
// three precision rungs into a single registry — int8 from the calibrated
// tables, f64/f32 from the embedded master — warms it, and checks that
// int8 predictions served through the concurrent micro-batching scheduler
// are bit-identical to a direct single-tile session over the same engine.
func TestRegistryMixedPrecision(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.ckpt")
	qm := testQuantModel(t, 5)
	if err := qm.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	r := NewRegistry()
	for name, prec := range map[string]string{"i": "int8", "s": "f32", "d": "f64"} {
		if err := r.Load(name, path, prec); err != nil {
			t.Fatalf("Load(%s): %v", prec, err)
		}
	}
	if err := r.Warm(32); err != nil {
		t.Fatalf("warm: %v", err)
	}
	for name, prec := range map[string]string{"i": "int8", "s": "f32", "d": "f64"} {
		e, err := r.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if e.Precision() != prec {
			t.Fatalf("model %q serves %q, want %q", name, e.Precision(), prec)
		}
	}

	// A float checkpoint must not serve as int8.
	fpath := filepath.Join(t.TempDir(), "f.ckpt")
	if err := testModel(t, 5).SaveFile(fpath); err != nil {
		t.Fatal(err)
	}
	if err := r.Load("nope", fpath, "int8"); !errors.Is(err, unet.ErrBadCheckpoint) {
		t.Fatalf("float checkpoint loaded as int8: %v", err)
	}

	eInt8, err := r.Get("i")
	if err != nil {
		t.Fatal(err)
	}
	eF32, err := r.Get("s")
	if err != nil {
		t.Fatal(err)
	}

	tiles := testTiles(12, 32, 77)
	want := make([]*raster.Labels, len(tiles))
	direct := eInt8.NewPredictor()
	for i, img := range tiles {
		out, err := direct.PredictTiles([]*raster.RGB{img})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out[0]
	}

	cfg := DefaultConfig()
	cfg.TileSize = 32
	cfg.CacheSize = 0
	cfg.Workers = 3
	sched := NewScheduler(cfg, nil)
	defer sched.Close()

	var wg sync.WaitGroup
	got := make([]*raster.Labels, len(tiles))
	errs := make([]error, 2*len(tiles))
	for i, img := range tiles {
		wg.Add(2)
		go func(i int, img *raster.RGB) {
			defer wg.Done()
			got[i], errs[2*i] = sched.Submit(eInt8, img)
		}(i, img)
		// Interleave f32 traffic so micro-batches must split by engine.
		go func(i int, img *raster.RGB) {
			defer wg.Done()
			_, errs[2*i+1] = sched.Submit(eF32, img)
		}(i, img)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range tiles {
		if !reflect.DeepEqual(got[i].Pix, want[i].Pix) {
			t.Fatalf("tile %d: scheduled int8 prediction differs from direct session", i)
		}
	}
}
