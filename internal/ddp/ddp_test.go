package ddp

import (
	"math"
	"testing"

	"seaice/internal/nn"
	"seaice/internal/noise"
	"seaice/internal/perfmodel"
	"seaice/internal/raster"
	"seaice/internal/train"
	"seaice/internal/unet"
)

// syntheticSamples builds deterministic random tiles with random labels.
func syntheticSamples(seed uint64, n, size int) []train.Sample {
	rng := noise.NewRNG(seed, 1)
	out := make([]train.Sample, n)
	for i := range out {
		img := raster.NewRGB(size, size)
		for j := range img.Pix {
			img.Pix[j] = uint8(rng.Intn(256))
		}
		lab := raster.NewLabels(size, size)
		for j := range lab.Pix {
			lab.Pix[j] = raster.Class(rng.Intn(3))
		}
		out[i] = train.Sample{Image: img, Labels: lab}
	}
	return out
}

func noDropoutConfig(seed uint64) unet.Config {
	return unet.Config{Depth: 2, BaseChannels: 4, InChannels: 3, Classes: 3, DropoutRate: 0, Seed: seed}
}

// TestDDPStepMatchesSingleModel is the core synchronous-data-parallel
// equivalence theorem: a K-worker step over equal shards must produce the
// same weights as one step of a single model on the merged batch (with
// dropout disabled so stochastic masks cannot differ).
func TestDDPStepMatchesSingleModel(t *testing.T) {
	const workers = 4
	const perWorker = 2
	samples := syntheticSamples(77, workers*perWorker, 8)

	// reference: single model, merged batch
	ref, err := unet.New[float64](noDropoutConfig(5))
	if err != nil {
		t.Fatalf("ref model: %v", err)
	}
	refOpt := nn.NewAdam[float64](0.01)
	x, labels, err := train.ToTensor[float64](samples)
	if err != nil {
		t.Fatalf("tensor: %v", err)
	}
	nn.ZeroGrads(ref.Params())
	if _, err := ref.LossAndGrad(x, labels); err != nil {
		t.Fatalf("ref loss: %v", err)
	}
	refOpt.Step(ref.Params())

	// ddp: same init (same seed), round-robin shards
	tr, err := New[float64](noDropoutConfig(5), Config{Workers: workers, BatchPerWorker: perWorker, Epochs: 1, LR: 0.01, Seed: 9})
	if err != nil {
		t.Fatalf("trainer: %v", err)
	}
	shards := make([][]train.Sample, workers)
	for i, s := range samples {
		shards[i%workers] = append(shards[i%workers], s)
	}
	if _, err := tr.Step(shards); err != nil {
		t.Fatalf("step: %v", err)
	}

	// Weight comparison. The DDP gradient is the mean over workers of
	// per-worker means; with equal shard sizes that equals the merged-
	// batch mean, so weights must match to numerical precision.
	refParams := ref.Params()
	for r := 0; r < workers; r++ {
		got := tr.Replica(r).Params()
		for j := range refParams {
			for i := range refParams[j].W.Data {
				d := math.Abs(refParams[j].W.Data[i] - got[j].W.Data[i])
				if d > 1e-9 {
					t.Fatalf("rank %d param %s[%d] differs from single-model step by %g", r, refParams[j].Name, i, d)
				}
			}
		}
	}
}

// TestReplicasStaySynchronized: after several steps all replicas hold
// bit-identical weights.
func TestReplicasStaySynchronized(t *testing.T) {
	const workers = 3
	samples := syntheticSamples(88, 12, 8)
	tr, err := New[float64](noDropoutConfig(6), Config{Workers: workers, BatchPerWorker: 2, Epochs: 2, LR: 0.01, Seed: 10})
	if err != nil {
		t.Fatalf("trainer: %v", err)
	}
	if _, err := tr.Fit(samples); err != nil {
		t.Fatalf("fit: %v", err)
	}
	p0 := tr.Replica(0).Params()
	for r := 1; r < workers; r++ {
		pr := tr.Replica(r).Params()
		for j := range p0 {
			for i := range p0[j].W.Data {
				if p0[j].W.Data[i] != pr[j].W.Data[i] {
					t.Fatalf("rank %d param %s[%d] diverged", r, p0[j].Name, i)
				}
			}
		}
	}
}

// TestDDPLossDecreases: distributed training must actually learn.
func TestDDPLossDecreases(t *testing.T) {
	samples := syntheticSamples(99, 8, 8)
	tr, err := New[float64](noDropoutConfig(7), Config{Workers: 2, BatchPerWorker: 4, Epochs: 8, LR: 0.02, Seed: 11})
	if err != nil {
		t.Fatalf("trainer: %v", err)
	}
	res, err := tr.Fit(samples)
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	first := res.Epochs[0].Loss
	last := res.Epochs[len(res.Epochs)-1].Loss
	t.Logf("ddp loss %f → %f", first, last)
	if last >= first {
		t.Fatalf("ddp training did not reduce loss: %f → %f", first, last)
	}
}

// TestVirtualTiming: with the paper's DGX model attached, reported
// virtual epoch times must follow the calibrated curve.
func TestVirtualTiming(t *testing.T) {
	samples := syntheticSamples(111, 8, 8)
	model := perfmodel.PaperDGX()
	tr, err := New[float64](noDropoutConfig(8), Config{
		Workers: 4, BatchPerWorker: 2, Epochs: 2, LR: 0.01, Seed: 12, Timing: model,
	})
	if err != nil {
		t.Fatalf("trainer: %v", err)
	}
	res, err := tr.Fit(samples)
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	want := model.EpochTime(4) * 2
	if math.Abs(res.VirtualTotal-want) > 1e-9 {
		t.Fatalf("virtual total %f, want %f", res.VirtualTotal, want)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput not computed")
	}
}

// TestConfigErrors rejects invalid configurations.
func TestConfigErrors(t *testing.T) {
	for _, cfg := range []Config{
		{Workers: 0, BatchPerWorker: 1, Epochs: 1},
		{Workers: 1, BatchPerWorker: 0, Epochs: 1},
		{Workers: 1, BatchPerWorker: 1, Epochs: 0},
	} {
		if _, err := New[float64](noDropoutConfig(1), cfg); err == nil {
			t.Fatalf("config %+v should be rejected", cfg)
		}
	}
}
