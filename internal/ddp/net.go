package ddp

import (
	"errors"
	"fmt"
	"math"
	"time"

	"seaice/internal/nn"
	"seaice/internal/noise"
	"seaice/internal/ring"
	"seaice/internal/tensor"
	"seaice/internal/train"
	"seaice/internal/unet"
)

// NetTrainer is the multi-process counterpart of Trainer: one process
// owns exactly one rank's replica and exchanges gradients through a
// ring.Collective — ring.Local for in-process tests, transport's TCP
// ring for a real cluster. The math is the in-process trainer's,
// verbatim: the same per-rank replica construction (seed offsets, rank-0
// weight broadcast), the same deterministic shard assignment, the same
// chunked all-reduce schedule, and the same Adam update, so rank r of a
// NetTrainer run finishes with weights byte-identical to replica r of a
// single-process Workers-way run on the same data (asserted by the
// parity tests and the CI cluster-smoke job, for float64 and
// float32-mixed alike).
//
// Fault tolerance works at step granularity. Every step boundary
// captures a rollback state (exact float64 weights, Adam state, RNG
// position). Any failure — a peer crash surfacing as a connection error,
// an injected partition, a dropped frame timing out — aborts the step
// with *ring.RankError; the trainer restores the boundary state, calls
// Reestablish (rendezvous + agreement on the minimum outstanding step),
// rolls back one committed step if a peer is behind (the commit barrier
// bounds divergence to one), and retries. Each committed update is
// therefore executed exactly once with the full complement, preserving
// PR 5's invariant: a faulted run is byte-identical to a never-failed
// one.
//
// Reported losses are rank-local (the mean over this rank's shard);
// global loss aggregation would cost an extra collective per step for a
// statistic the weights already embody.
type NetTrainer[S tensor.Scalar] struct {
	cfg      Config
	modelCfg unet.Config
	rank     int
	world    int
	coll     ring.Collective[S]
	model    *unet.Model[S]
	opt      *nn.Adam[S]

	flat []S

	snap      *Snapshot
	startStep int
	restored  bool
	batcher   *train.Batcher
	nb        int
	dataFP    string
	// guardRetried is the step already rolled back and retried for a
	// numeric anomaly (-1: none); a second trip at the same step is
	// deterministic and falls to the guard policy.
	guardRetried int
	// lastSnapStep dedupes snapshot persistence across step retries, so
	// a rolled-back attempt cannot churn the rotation generations.
	lastSnapStep int
}

// netBoundary is the rank-local rollback state at a step boundary.
type netBoundary struct {
	step    int
	weights map[string][]float64
	opt     nn.AdamState
	rng     noise.RNGState
}

// NewNet builds one rank of a distributed run. cfg.Workers must equal
// the collective's world size; the model and shard math then match the
// in-process Workers-way trainer exactly.
func NewNet[S tensor.Scalar](modelCfg unet.Config, cfg Config, coll ring.Collective[S]) (*NetTrainer[S], error) {
	if coll == nil {
		return nil, fmt.Errorf("ddp: nil collective")
	}
	if cfg.Workers != coll.World() {
		return nil, fmt.Errorf("ddp: %d workers for world of %d", cfg.Workers, coll.World())
	}
	if cfg.BatchPerWorker <= 0 || cfg.Epochs <= 0 {
		return nil, fmt.Errorf("ddp: invalid batch %d or epochs %d", cfg.BatchPerWorker, cfg.Epochs)
	}
	if cfg.Elastic {
		return nil, fmt.Errorf("ddp: elastic mode is in-process only (network recovery retries with the full complement)")
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	if cfg.SnapshotKeep <= 0 {
		cfg.SnapshotKeep = DefaultSnapshotKeep
	}
	m, err := newReplica[S](modelCfg, coll.Rank(), cfg.Focal)
	if err != nil {
		return nil, err
	}
	opt := nn.NewAdam[S](cfg.LR)
	opt.Master = cfg.MasterWeights
	return &NetTrainer[S]{
		cfg:          cfg,
		modelCfg:     modelCfg,
		rank:         coll.Rank(),
		world:        coll.World(),
		coll:         coll,
		model:        m,
		opt:          opt,
		guardRetried: -1,
		lastSnapStep: -1,
	}, nil
}

// Model exposes this rank's replica (every rank's weights are
// bit-synchronized at step boundaries).
func (t *NetTrainer[S]) Model() *unet.Model[S] { return t.model }

// netKey extends the topology fingerprint with the rank: a rank-local
// snapshot restores only into the same rank of the same run shape.
func (t *NetTrainer[S]) netKey() string {
	return fmt.Sprintf("net rank %d/%d|model %+v|batch %d|epochs %d|lr %g|seed %d|master %t",
		t.rank, t.world, t.modelCfg, t.cfg.BatchPerWorker, t.cfg.Epochs, t.cfg.LR, t.cfg.Seed,
		t.cfg.MasterWeights)
}

// Snapshot captures this rank's exact training state at step boundary
// `step` — the rank-local slice of what the in-process trainer snapshots
// globally (all ranks are bit-synchronized, so each rank's weights and
// optimizer state equal every other's; only the RNG position is its own).
func (t *NetTrainer[S]) Snapshot(step int) *Snapshot {
	return &Snapshot{
		Precision: precisionName[S](),
		Key:       t.netKey(),
		Data:      t.dataFP,
		Step:      step,
		Weights:   t.model.WeightsF64(),
		Opt:       t.opt.State(),
		RNG:       []noise.RNGState{t.model.RNGState()},
	}
}

// Restore loads a rank-local snapshot; Fit then resumes from its step
// without re-broadcasting weights (every rank restored the same
// bit-synchronized state).
func (t *NetTrainer[S]) Restore(s *Snapshot) error {
	if s.Key != t.netKey() {
		return fmt.Errorf("%w: key %q vs trainer %q", ErrSnapshotMismatch, s.Key, t.netKey())
	}
	if s.Precision != precisionName[S]() {
		return fmt.Errorf("%w: snapshot precision %s, trainer %s", ErrSnapshotMismatch, s.Precision, precisionName[S]())
	}
	if len(s.RNG) != 1 {
		return fmt.Errorf("%w: %d RNG states in a rank-local snapshot", ErrSnapshotMismatch, len(s.RNG))
	}
	if err := t.model.SetWeightsF64(s.Weights); err != nil {
		return err
	}
	t.model.SetRNGState(s.RNG[0])
	t.opt.SetState(s.Opt)
	t.snap = s
	t.startStep = s.Step
	t.restored = true
	return nil
}

// capture snapshots the rollback state at the current boundary.
func (t *NetTrainer[S]) capture(step int) *netBoundary {
	return &netBoundary{
		step:    step,
		weights: t.model.WeightsF64(),
		opt:     t.opt.State(),
		rng:     t.model.RNGState(),
	}
}

// rollbackTo restores a boundary state exactly.
func (t *NetTrainer[S]) rollbackTo(b *netBoundary) error {
	if err := t.model.SetWeightsF64(b.weights); err != nil {
		return err
	}
	t.opt.SetState(b.opt)
	t.model.SetRNGState(b.rng)
	return nil
}

// syncWeights broadcasts rank 0's parameters to every rank — the
// network form of Trainer.New's CopyWeightsFrom loop, moving the exact
// S-precision bit patterns.
func (t *NetTrainer[S]) syncWeights() error {
	flatLen := 0
	for _, prm := range t.model.Params() {
		flatLen += prm.W.Len()
	}
	if cap(t.flat) < flatLen {
		t.flat = make([]S, flatLen)
	}
	t.flat = t.flat[:flatLen]
	off := 0
	for _, prm := range t.model.Params() {
		off += copy(t.flat[off:], prm.W.Data)
	}
	if err := t.coll.Broadcast(t.flat); err != nil {
		return err
	}
	if t.rank != 0 {
		off = 0
		for _, prm := range t.model.Params() {
			off += copy(prm.W.Data, t.flat[off:off+prm.W.Len()])
		}
	}
	return nil
}

// reestablishRetry drives the rendezvous until the ring converges; the
// whole complement re-enters Establish after a fault, but not in
// lockstep, so individual attempts can time out while peers catch up.
func (t *NetTrainer[S]) reestablishRetry(step int) (int, error) {
	var lastErr error
	for attempt := 0; attempt < 8; attempt++ {
		agreed, err := t.coll.Reestablish(step)
		if err == nil {
			return agreed, nil
		}
		lastErr = err
	}
	return 0, fmt.Errorf("ddp: rank %d: ring re-establish failed: %w", t.rank, lastErr)
}

// Fit trains this rank for the configured epochs, bit-synchronized with
// its peers. See the type comment for the recovery protocol; a
// ProcessKill fault aborts every rank with ErrKilled after the last
// snapshot (each process resumes from its own rank-local snapshot file).
func (t *NetTrainer[S]) Fit(samples []train.Sample) (*Result, error) {
	globalBatch := t.cfg.Workers * t.cfg.BatchPerWorker
	batcher, err := train.NewBatcher(samples, globalBatch, t.cfg.Seed)
	if err != nil {
		return nil, err
	}
	t.batcher = batcher
	t.nb = batcher.NumBatches()
	totalSteps := t.cfg.Epochs * t.nb
	if t.cfg.Chaos != nil || t.cfg.SnapshotPath != "" || t.restored {
		t.dataFP = dataFingerprint(samples)
	}
	if t.restored && t.snap != nil && t.snap.Data != "" && t.snap.Data != t.dataFP {
		return nil, fmt.Errorf("%w: snapshot was taken over a different sample set", ErrSnapshotMismatch)
	}

	res := &Result{}
	if !t.restored {
		if _, err := t.reestablishRetry(t.startStep); err != nil {
			return res, err
		}
		if err := t.syncWeights(); err != nil {
			return res, err
		}
	} else {
		// Resumed ranks restored identical bit-synchronized state; the
		// rendezvous only has to agree they are at the same step.
		agreed, err := t.reestablishRetry(t.startStep)
		if err != nil {
			return res, err
		}
		if agreed != t.startStep {
			return res, fmt.Errorf("ddp: rank %d resumed at step %d but ring agreed %d (mismatched snapshots?)",
				t.rank, t.startStep, agreed)
		}
	}

	losses := make([]float64, totalSteps)
	var prevB, curB *netBoundary
	epochStart := time.Now()
	samplesTrained := 0
	g := t.startStep
	for g < totalSteps {
		epoch, bi := g/t.nb, g%t.nb
		batch := t.batcher.Epoch(epoch)[bi]
		t.coll.StepStart(g) // boundary faults (partition, reconnect) fire here

		// ---- step boundary: rollback state, snapshot, kill ----
		if curB == nil || curB.step != g {
			prevB = curB
			curB = t.capture(g)
		}
		wantSnaps := t.cfg.Chaos != nil || t.cfg.SnapshotPath != ""
		if wantSnaps && (g == t.startStep || g%t.cfg.SnapshotEvery == 0) && t.lastSnapStep != g {
			t.snap = t.Snapshot(g)
			t.lastSnapStep = g
			if t.cfg.SnapshotPath != "" {
				torn := t.cfg.Chaos.TornWrite(g)
				if err := saveSnapshotFile(t.cfg.SnapshotPath, t.snap, t.cfg.SnapshotKeep, torn); err != nil {
					return res, err
				}
			}
		}
		if t.cfg.Chaos.ProcessKill(g) {
			// Every process of the run sees the same schedule, so the
			// whole cluster dies at this boundary; each rank resumes
			// from its own snapshot file.
			return res, ErrKilled
		}

		loss, err := t.attemptStep(g, batch, res)
		if err == nil {
			losses[g] = loss
			res.Steps++
			samplesTrained += len(batch)
			g++
			if bi == t.nb-1 {
				t.closeEpoch(res, losses, epoch, &epochStart)
			}
			continue
		}
		if errors.Is(err, errGuardRetry) {
			// Numeric anomaly in the reduced gradient. Every rank scanned
			// the identical reduced bytes and reached this verdict in
			// lockstep; connections are intact, so roll back the boundary
			// state locally and retry the step without a rendezvous.
			if rerr := t.rollbackTo(curB); rerr != nil {
				return res, rerr
			}
			continue
		}
		var re *ring.RankError
		if !errors.As(err, &re) {
			return res, err
		}
		// Abort: undo any partial effect of the attempt (applied update,
		// consumed dropout noise), re-rendezvous, and agree where to
		// retry from.
		if rerr := t.rollbackTo(curB); rerr != nil {
			return res, rerr
		}
		agreed, eerr := t.reestablishRetry(g)
		if eerr != nil {
			return res, eerr
		}
		if agreed < g {
			// A peer never committed a step this rank did; the commit
			// barrier bounds the gap to one, so the previous boundary
			// state is always sufficient to rewind.
			if prevB == nil || prevB.step != agreed {
				return res, fmt.Errorf("ddp: rank %d must rewind to step %d but holds no boundary state for it",
					t.rank, agreed)
			}
			if rerr := t.rollbackTo(prevB); rerr != nil {
				return res, rerr
			}
			t.unwindBookkeeping(res, losses, agreed, g, &samplesTrained)
			curB, prevB = prevB, nil
			g = agreed
		}
		res.Recoveries++
	}
	res.LostRanks = nil
	if res.VirtualTotal > 0 {
		res.Throughput = float64(samplesTrained) / res.VirtualTotal
	}
	return res, nil
}

// attemptStep runs one optimistic step: gradients on this rank's shard,
// ring-averaged, Adam-applied, then the commit barrier. Any *RankError
// leaves partial state for the caller to roll back.
func (t *NetTrainer[S]) attemptStep(g int, batch []train.Sample, res *Result) (float64, error) {
	if d := t.cfg.Chaos.StragglerDelay(t.rank, g); d > 0 {
		// Absorbed: the synchronous ring waits, results are unaffected.
		res.Stalls++
		time.Sleep(d)
	}
	shards := shard(batch, t.cfg.Workers)
	mine := shards[t.rank]
	nn.ZeroGrads(t.model.Params())
	var loss float64
	if len(mine) > 0 {
		x, labels, err := train.ToTensor[S](mine)
		if err != nil {
			return 0, err
		}
		if loss, err = t.model.LossAndGrad(x, labels); err != nil {
			return 0, err
		}
	}

	flatLen := 0
	for _, prm := range t.model.Params() {
		flatLen += prm.Grad.Len()
	}
	if cap(t.flat) < flatLen {
		t.flat = make([]S, flatLen)
	}
	t.flat = t.flat[:flatLen]
	off := 0
	for _, prm := range t.model.Params() {
		off += copy(t.flat[off:], prm.Grad.Data)
	}
	if t.cfg.Chaos.NaNStep(t.rank, g) {
		// Poison one pre-reduce element: the ring mean propagates the NaN
		// to every rank, so the guard verdict below is unanimous.
		t.flat[0] = S(math.NaN())
	}
	if err := t.coll.AllReduceMean(t.flat, ring.DefaultChunk); err != nil {
		return 0, err
	}
	if t.cfg.Guard.Enabled() {
		if a := train.CheckGrads(t.cfg.Guard, g, t.flat); a != nil {
			res.Anomalies++
			if t.guardRetried != g {
				// First trip at this step: signal the caller to roll back
				// and re-execute; a transient (injected) corruption comes
				// out clean on the retry.
				t.guardRetried = g
				return 0, fmt.Errorf("%w: %v", errGuardRetry, a)
			}
			if t.cfg.Guard.Policy == train.GuardAbort {
				return 0, a
			}
			// Reproduced anomaly under GuardSkip: drop the update (weights
			// untouched, dropout noise stays consumed) but still commit the
			// barrier so every rank advances in lockstep.
			res.GuardSkips++
			if err := t.coll.Commit(g); err != nil {
				return 0, err
			}
			return loss, nil
		}
	}
	off = 0
	for _, prm := range t.model.Params() {
		off += copy(prm.Grad.Data, t.flat[off:off+prm.Grad.Len()])
	}
	t.opt.Step(t.model.Params())
	if err := t.coll.Commit(g); err != nil {
		return 0, err
	}
	return loss, nil
}

// errGuardRetry asks Fit to roll back the current boundary and retry the
// step after a first numeric-anomaly verdict. Distinct from *RankError:
// the ring is healthy, so no re-rendezvous is needed.
var errGuardRetry = errors.New("ddp: numeric anomaly, retrying step")

// closeEpoch emits the epoch stat from the committed per-step losses.
func (t *NetTrainer[S]) closeEpoch(res *Result, losses []float64, epoch int, epochStart *time.Time) {
	first := epoch * t.nb
	if t.startStep > first {
		first = t.startStep // resumed mid-epoch: only the executed tail
	}
	sum, n := 0.0, 0
	for h := first; h < (epoch+1)*t.nb; h++ {
		sum += losses[h]
		n++
	}
	stat := EpochStat{RealSeconds: time.Since(*epochStart).Seconds()}
	if n > 0 {
		stat.Loss = sum / float64(n)
	}
	if t.cfg.Timing.Compute > 0 {
		stat.VirtualSeconds = t.cfg.Timing.EpochTime(t.world) * float64(n) / float64(t.nb)
	}
	res.Epochs = append(res.Epochs, stat)
	res.RealTotal += stat.RealSeconds
	res.VirtualTotal += stat.VirtualSeconds
	if t.cfg.Progress != nil {
		t.cfg.Progress(epoch, stat.Loss)
	}
	*epochStart = time.Now()
}

// unwindBookkeeping reverses the accounting of committed steps
// [agreed, cursor) that a ring-wide rollback is about to re-execute
// (bit-identically, so the redo restores every number).
func (t *NetTrainer[S]) unwindBookkeeping(res *Result, losses []float64, agreed, cursor int, samplesTrained *int) {
	for h := cursor - 1; h >= agreed; h-- {
		res.Steps--
		*samplesTrained -= len(t.batcher.Epoch(h / t.nb)[h%t.nb])
		if h%t.nb == t.nb-1 && len(res.Epochs) > 0 {
			last := res.Epochs[len(res.Epochs)-1]
			res.Epochs = res.Epochs[:len(res.Epochs)-1]
			res.RealTotal -= last.RealSeconds
			res.VirtualTotal -= last.VirtualSeconds
		}
	}
}
