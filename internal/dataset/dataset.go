// Package dataset assembles the experiment datasets: it runs the
// thin-cloud/shadow filter and the auto-labeler over a scene campaign,
// splits scenes into tiles (the paper cuts 66 scenes into 4224 tiles),
// pairs every tile with its manual (ground-truth) and auto labels, tracks
// per-tile cloud coverage for Table V's buckets, and produces the
// train/test split and train.Sample views the U-Net experiments consume.
//
// Parallelism/bit-identity guarantees: Build fans scenes out over a
// worker pool, but each scene's tiles are a pure function of (scene,
// config) and are concatenated in scene order, so the set is identical
// at any worker count. All split/subsample randomness is exposed as
// index math (SplitIndices, SubsampleIndices) shared with the streaming
// pipeline, which is how internal/pipeline stays byte-identical to this
// batch path.
package dataset

import (
	"fmt"

	"seaice/internal/autolabel"
	"seaice/internal/cloudfilter"
	"seaice/internal/labeler"
	"seaice/internal/noise"
	"seaice/internal/pool"
	"seaice/internal/raster"
	"seaice/internal/scene"
	"seaice/internal/train"
)

// Tile is one dataset entry with every view the experiments need.
type Tile struct {
	// Original is the observed tile, clouds and all.
	Original *raster.RGB
	// Filtered is the thin-cloud/shadow-filtered tile.
	Filtered *raster.RGB
	// Manual holds ground-truth labels (the paper's manually labeled
	// data).
	Manual *raster.Labels
	// Auto holds color-segmentation labels derived from the filtered
	// imagery (the paper's auto-labeling pipeline).
	Auto *raster.Labels
	// CloudFraction is the tile's true disturbed-pixel fraction.
	CloudFraction float64
	// Scene is the source scene index.
	Scene int
}

// Set is a full tile dataset.
type Set struct {
	Tiles    []Tile
	TileSize int
}

// BuildConfig controls dataset assembly.
type BuildConfig struct {
	TileSize int
	Filter   cloudfilter.Config
	Labels   autolabel.Thresholds
	// Labeler selects the auto-labeling engine; nil uses the paper's HSV
	// thresholder with the Labels thresholds above (which are then part
	// of the labeler fingerprint; Labels is ignored when Labeler is
	// set). Select on the CLIs with -labeler hsv|kmeans|gmm[:k].
	Labeler labeler.Labeler
	// Workers parallelizes per-scene processing (pool size); <=0 uses
	// GOMAXPROCS.
	Workers int
}

// ActiveLabeler resolves the engine LabelScene will run: the configured
// Labeler, or the HSV thresholder over cfg.Labels when nil.
func (c BuildConfig) ActiveLabeler() labeler.Labeler {
	if c.Labeler != nil {
		return c.Labeler
	}
	return labeler.HSV{T: c.Labels}
}

// LabelerKey fingerprints the labeling engine and its full configuration
// for checkpoint keys: shard checkpoints written by one engine must
// never be resumed by a run configured with another.
func (c BuildConfig) LabelerKey() string {
	return labeler.Fingerprint(c.ActiveLabeler())
}

// DefaultBuild returns the experiment-scale configuration: 64² tiles so a
// 66-scene campaign of 512² scenes yields the paper's 4224 tiles.
func DefaultBuild() BuildConfig {
	return BuildConfig{
		TileSize: 64,
		Filter:   cloudfilter.DefaultConfig(),
		Labels:   autolabel.PaperThresholds(),
	}
}

// Build processes every scene — filter, auto-label, tile — in parallel
// over the pool.
func Build(scenes []*scene.Scene, cfg BuildConfig) (*Set, error) {
	if cfg.TileSize <= 0 {
		return nil, fmt.Errorf("dataset: tile size %d", cfg.TileSize)
	}
	perScene := make([][]Tile, len(scenes))
	p := pool.New(cfg.Workers)
	err := p.Map(len(scenes), func(i int) error {
		tiles, err := BuildScene(scenes[i], i, cfg)
		if err != nil {
			return fmt.Errorf("dataset: scene %d: %w", i, err)
		}
		perScene[i] = tiles
		return nil
	})
	if err != nil {
		return nil, err
	}
	set := &Set{TileSize: cfg.TileSize}
	for _, tiles := range perScene {
		set.Tiles = append(set.Tiles, tiles...)
	}
	return set, nil
}

// LabeledScene is the product of the filter/label stage: the scene plus
// its scene-scale filtered imagery and auto labels, ready for tiling.
type LabeledScene struct {
	Scene    *scene.Scene
	Filtered *raster.RGB
	Auto     *raster.Labels
}

// LabelScene runs the thin-cloud/shadow filter and the auto-labeler over
// one scene at full scene scale (the filter's neighborhood statistics
// need more context than a single tile). It is the first stage half of
// BuildScene, exposed so the streaming pipeline can run filtering and
// tiling as separate overlapped stages.
func LabelScene(sc *scene.Scene, cfg BuildConfig) (*LabeledScene, error) {
	res := cloudfilter.Filter(sc.Image, cfg.Filter)
	auto, err := cfg.ActiveLabeler().Label(res.Image)
	if err != nil {
		return nil, err
	}
	return &LabeledScene{Scene: sc, Filtered: res.Image, Auto: auto}, nil
}

// TileScene cuts a labeled scene's products into tiles — the second
// stage half of BuildScene.
func TileScene(ls *LabeledScene, index int, cfg BuildConfig) ([]Tile, error) {
	sc := ls.Scene
	origTiles, _, err := raster.Split(sc.Image, cfg.TileSize, cfg.TileSize)
	if err != nil {
		return nil, err
	}
	filtTiles, _, err := raster.Split(ls.Filtered, cfg.TileSize, cfg.TileSize)
	if err != nil {
		return nil, err
	}
	manTiles, _, err := raster.SplitLabels(sc.Truth, cfg.TileSize, cfg.TileSize)
	if err != nil {
		return nil, err
	}
	autoTiles, _, err := raster.SplitLabels(ls.Auto, cfg.TileSize, cfg.TileSize)
	if err != nil {
		return nil, err
	}

	out := make([]Tile, len(origTiles))
	for i := range origTiles {
		// Per-tile cloud coverage from the scene's ground truth mask.
		col, row := origTiles[i].Col, origTiles[i].Row
		disturbed := 0
		for y := 0; y < cfg.TileSize; y++ {
			off := (row*cfg.TileSize+y)*sc.CloudMask.W + col*cfg.TileSize
			for x := 0; x < cfg.TileSize; x++ {
				if sc.CloudMask.Pix[off+x] != 0 {
					disturbed++
				}
			}
		}
		out[i] = Tile{
			Original:      origTiles[i].Image,
			Filtered:      filtTiles[i].Image,
			Manual:        manTiles[i],
			Auto:          autoTiles[i],
			CloudFraction: float64(disturbed) / float64(cfg.TileSize*cfg.TileSize),
			Scene:         index,
		}
	}
	return out, nil
}

// BuildScene filters, labels, and tiles one scene — LabelScene followed
// by TileScene. It is the unit of work of both Build and the streaming
// pipeline (internal/pipeline): each scene's output depends only on the
// scene and cfg, never on processing order or concurrency, which is what
// makes the two paths byte-identical.
func BuildScene(sc *scene.Scene, index int, cfg BuildConfig) ([]Tile, error) {
	ls, err := LabelScene(sc, cfg)
	if err != nil {
		return nil, err
	}
	return TileScene(ls, index, cfg)
}

// SplitIndices computes the deterministic train/test partition of n tiles
// as tile indices, without needing the tiles themselves. The index math is
// separated from Split so the streaming pipeline (internal/pipeline) can
// plan which scenes feed which training batches before a single tile has
// been labeled; Split is a thin wrapper, so the two paths agree by
// construction.
func SplitIndices(n int, trainFrac float64, seed uint64) (trainIdx, testIdx []int, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: train fraction %.2f outside (0,1)", trainFrac)
	}
	rng := noise.NewRNG(seed, 0x5117)
	perm := rng.Perm(n)
	nTrain := int(float64(n) * trainFrac)
	return perm[:nTrain], perm[nTrain:], nil
}

// Split divides the tiles deterministically into train and test subsets
// (the paper uses 80/20).
func (s *Set) Split(trainFrac float64, seed uint64) (trainSet, testSet []Tile, err error) {
	trainIdx, testIdx, err := SplitIndices(len(s.Tiles), trainFrac, seed)
	if err != nil {
		return nil, nil, err
	}
	for _, idx := range trainIdx {
		trainSet = append(trainSet, s.Tiles[idx])
	}
	for _, idx := range testIdx {
		testSet = append(testSet, s.Tiles[idx])
	}
	return trainSet, testSet, nil
}

// CloudBuckets partitions tiles by cloud coverage around the paper's
// "about 10%" boundary (Table V).
func CloudBuckets(tiles []Tile, boundary float64) (cloudy, clear []Tile) {
	for _, t := range tiles {
		if t.CloudFraction > boundary {
			cloudy = append(cloudy, t)
		} else {
			clear = append(clear, t)
		}
	}
	return cloudy, clear
}

// ImageKind selects which imagery view feeds the model.
type ImageKind int

// LabelKind selects which labels supervise training.
type LabelKind int

// The paper's four dataset views: original vs filtered imagery, manual
// vs auto labels.
const (
	OriginalImages ImageKind = iota
	FilteredImages
)
const (
	ManualLabels LabelKind = iota
	AutoLabels
)

// Samples converts tiles into training samples with the chosen image and
// label views.
func Samples(tiles []Tile, img ImageKind, lab LabelKind) []train.Sample {
	out := make([]train.Sample, len(tiles))
	for i, t := range tiles {
		s := train.Sample{}
		switch img {
		case FilteredImages:
			s.Image = t.Filtered
		default:
			s.Image = t.Original
		}
		switch lab {
		case AutoLabels:
			s.Labels = t.Auto
		default:
			s.Labels = t.Manual
		}
		out[i] = s
	}
	return out
}

// SubsampleIndices computes the positions Subsample would keep out of n
// tiles: nil when keep <= 0, the identity order when keep >= n, otherwise
// the first keep entries of a deterministic permutation. Exposed as index
// math for the same reason as SplitIndices.
func SubsampleIndices(n, keep int, seed uint64) []int {
	if keep >= n {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	if keep <= 0 {
		return nil
	}
	rng := noise.NewRNG(seed, 0x5ab5)
	return rng.Perm(n)[:keep]
}

// Subsample returns every k-th tile of a deterministic shuffle — the
// stratification used to fit single-core training budgets while keeping
// scene and cloud-cover diversity.
func Subsample(tiles []Tile, n int, seed uint64) []Tile {
	if n >= len(tiles) {
		return tiles
	}
	if n <= 0 {
		return nil
	}
	idx := SubsampleIndices(len(tiles), n, seed)
	out := make([]Tile, len(idx))
	for i, j := range idx {
		out[i] = tiles[j]
	}
	return out
}
