package autolabel

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"seaice/internal/cloudfilter"
	"seaice/internal/raster"
	"seaice/internal/scene"
)

// -update regenerates the committed golden raster. Run it ONLY when an
// intentional labeling change lands, and re-review the diff: the golden
// file is what turns silent colorspace/autolabel drift into a test
// failure.
var updateGolden = flag.Bool("update", false, "rewrite the golden autolabel raster")

// goldenPath is the committed label raster: the paper-threshold
// auto-labels of the noise-seeded 96×96 scene below, filtered first
// (the paper's pipeline order), one class byte per pixel.
const goldenPath = "testdata/autolabel-golden-seed4242.bin"

// goldenLabels runs the exact pipeline under test: deterministic
// noise-seeded scene → cloud/shadow filter → paper-threshold HSV
// auto-labeling.
func goldenLabels(t *testing.T) *raster.Labels {
	t.Helper()
	cfg := scene.DefaultConfig(4242)
	cfg.W, cfg.H = 96, 96
	sc, err := scene.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := LabelPaper(cloudfilter.FilterDefault(sc.Image).Image)
	if err != nil {
		t.Fatal(err)
	}
	return labels
}

// TestGoldenAutolabelRaster byte-compares the auto-label pipeline's
// output against the committed golden raster. Any colorspace, filter,
// threshold, or segmentation refactor that shifts even one pixel's
// class fails here — downstream accuracy tables are sensitive enough
// (cf. the partial-label results this repo reproduces) that silent
// label drift would corrupt them.
func TestGoldenAutolabelRaster(t *testing.T) {
	labels := goldenLabels(t)
	got := make([]byte, len(labels.Pix))
	for i, c := range labels.Pix {
		got[i] = byte(c)
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden raster rewritten (%d bytes) — review the diff", len(got))
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden raster missing (regenerate with -update after reviewing): %v", err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden raster is %d bytes, pipeline produced %d", len(want), len(got))
	}
	if !bytes.Equal(got, want) {
		diff, first := 0, -1
		for i := range got {
			if got[i] != want[i] {
				diff++
				if first < 0 {
					first = i
				}
			}
		}
		t.Fatalf("auto-label output drifted from golden raster: %d/%d pixels differ (first at index %d: got class %d, want %d)",
			diff, len(got), first, got[first], want[first])
	}
}
