// Kernel-dispatch seam: every scalar kind the stack computes in (float64,
// float32, int8) resolves its low-level kernels through a per-kind backend
// table instead of calling one hard-wired implementation. The float kinds
// register the cache-blocked parallel engine from matmul.go as their
// (currently only) backend; the int8 kind registers several — a scalar
// reference, a portable SWAR kernel, and an AVX2 assembly kernel on amd64
// hosts that support it — and the highest-priority available one serves.
// The seam is what lets the quantized inference path, and later SIMD
// float kernels, plug in without touching the layers above: callers go
// through MatMul*/Int8() and never name an implementation.
//
// Determinism contract: every backend registered for a kind must produce
// bit-identical outputs to that kind's reference backend on identical
// inputs. Float backends inherit the engine's bit-identity-at-any-worker-
// count guarantee; int8 backends compute in exact integer arithmetic, so
// cross-backend equality is absolute (property-tested in qgemm_test.go).
// Selection is process-global and safe for concurrent readers; tests that
// switch backends serialize around SelectInt8.

package tensor

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind enumerates the scalar kinds the dispatch tables are keyed by.
type Kind uint8

const (
	KindF64 Kind = iota
	KindF32
	KindInt8
)

// String names the kind the way the CLIs' -precision flags do.
func (k Kind) String() string {
	switch k {
	case KindF64:
		return "f64"
	case KindF32:
		return "f32"
	case KindInt8:
		return "int8"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// KindOf reports the dispatch kind of the float instantiation S.
func KindOf[S Scalar]() Kind {
	if IsF32[S]() {
		return KindF32
	}
	return KindF64
}

// FloatOps is the kernel table for one float kind: the three GEMM forms
// the convolution layers reduce to. All entries must keep the engine's
// accumulation-order contract (serial reference order per output element)
// so results stay bit-identical at any worker count.
type FloatOps[S Scalar] struct {
	Name string
	// MatMulInto computes dst = a×b, MatMulATBInto dst = aᵀ×b,
	// MatMulABTInto dst = a×bᵀ; shapes as in matmul.go.
	MatMulInto    func(dst, a, b *Tensor[S])
	MatMulATBInto func(dst, a, b *Tensor[S])
	MatMulABTInto func(dst, a, b *Tensor[S])
}

// Int8Ops is the kernel table for the quantized kind. One entry point
// covers every quantized layer: the u8×s8 integer GEMM with int32
// accumulators that conv/up-conv/head all reduce to. Requantization is
// deliberately NOT part of the table — it stays in shared pure-Go code so
// backend choice can never change an output bit.
type Int8Ops struct {
	Name string
	// Priority orders selection: the highest-priority Available backend
	// is active by default.
	Priority int
	// Available reports whether this backend can run on this host
	// (e.g. CPU feature detection); nil means always.
	Available func() bool
	// GemmU8S8 computes out[r·npx+c] = Σ_{i<k} int32(w[r·k+i])·int32(x[c·k+i])
	// for r in [0,rows), c in [0,npx): row-major int8 weights against
	// column-major uint8 activations (each column k contiguous bytes),
	// exact in int32 (callers guarantee k·127·127 < 2³¹; see
	// Int8AccumBoundTaps). Overwrites out[0:rows·npx].
	GemmU8S8 func(w []int8, x []uint8, rows, k, npx int, out []int32)
}

// floatRegistry holds the registered backends of one float kind.
type floatRegistry[S Scalar] struct {
	mu     sync.Mutex
	all    []*FloatOps[S]
	active atomic.Pointer[FloatOps[S]]
}

func (r *floatRegistry[S]) register(ops *FloatOps[S]) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.all = append(r.all, ops)
	if r.active.Load() == nil {
		r.active.Store(ops)
	}
}

var (
	f64Registry floatRegistry[float64]
	f32Registry floatRegistry[float32]

	int8Mu       sync.Mutex
	int8Backends []*Int8Ops
	int8Active   atomic.Pointer[Int8Ops]
)

// floatOps returns the active backend table for S's kind; one is always
// registered (the engine, from init below).
func floatOps[S Scalar]() *FloatOps[S] {
	if IsF32[S]() {
		return any(f32Registry.active.Load()).(*FloatOps[S])
	}
	return any(f64Registry.active.Load()).(*FloatOps[S])
}

// RegisterFloat adds a backend for S's kind. The first registration
// becomes active.
func RegisterFloat[S Scalar](ops *FloatOps[S]) {
	if IsF32[S]() {
		any(&f32Registry).(*floatRegistry[S]).register(ops)
		return
	}
	any(&f64Registry).(*floatRegistry[S]).register(ops)
}

// RegisterInt8 adds a quantized-kernel backend. The highest-priority
// available backend becomes active.
func RegisterInt8(ops *Int8Ops) {
	int8Mu.Lock()
	defer int8Mu.Unlock()
	int8Backends = append(int8Backends, ops)
	best := int8Active.Load()
	if ops.available() && (best == nil || ops.Priority > best.Priority) {
		int8Active.Store(ops)
	}
}

func (o *Int8Ops) available() bool { return o.Available == nil || o.Available() }

// int8EnvOnce applies the SEAICE_INT8_BACKEND override lazily, after all
// init-time registrations have run.
var int8EnvOnce sync.Once

// Int8 returns the active quantized-kernel backend. The first call honors
// a SEAICE_INT8_BACKEND environment override (warning on stderr if the
// named backend is unknown or unavailable).
func Int8() *Int8Ops {
	int8EnvOnce.Do(func() {
		if name := os.Getenv("SEAICE_INT8_BACKEND"); name != "" {
			if err := SelectInt8(name); err != nil {
				fmt.Fprintf(os.Stderr, "seaice: SEAICE_INT8_BACKEND ignored: %v\n", err)
			}
		}
	})
	return int8Active.Load()
}

// SelectInt8 activates the named int8 backend (for tests and the
// SEAICE_INT8_BACKEND override); it must be registered and available.
func SelectInt8(name string) error {
	int8Mu.Lock()
	defer int8Mu.Unlock()
	for _, b := range int8Backends {
		if b.Name == name {
			if !b.available() {
				return fmt.Errorf("tensor: int8 backend %q not available on this host", name)
			}
			int8Active.Store(b)
			return nil
		}
	}
	return fmt.Errorf("tensor: unknown int8 backend %q (have %v)", name, int8BackendNamesLocked())
}

// Int8BackendNames lists the registered int8 backends, available first
// by priority, then unavailable ones, names sorted within each group.
func Int8BackendNames() []string {
	int8Mu.Lock()
	defer int8Mu.Unlock()
	return int8BackendNamesLocked()
}

// int8BackendNamesLocked is Int8BackendNames with int8Mu already held.
func int8BackendNamesLocked() []string {
	names := make([]string, 0, len(int8Backends))
	sort.Slice(int8Backends, func(i, j int) bool {
		a, b := int8Backends[i], int8Backends[j]
		if aa, ba := a.available(), b.available(); aa != ba {
			return aa
		}
		if a.Priority != b.Priority {
			return a.Priority > b.Priority
		}
		return a.Name < b.Name
	})
	for _, b := range int8Backends {
		names = append(names, b.Name)
	}
	return names
}

// The float engine (matmul.go) registers itself as the default backend
// for both float kinds. Registering here — rather than dispatching ad
// hoc — is what makes the seam load-bearing: MatMulInto and friends
// resolve through the table, so a SIMD float backend plugs in the same
// way the int8 backends do.
func init() {
	RegisterFloat(&FloatOps[float64]{
		Name:          "engine",
		MatMulInto:    engineMatMulInto[float64],
		MatMulATBInto: engineMatMulATBInto[float64],
		MatMulABTInto: engineMatMulABTInto[float64],
	})
	RegisterFloat(&FloatOps[float32]{
		Name:          "engine",
		MatMulInto:    engineMatMulInto[float32],
		MatMulATBInto: engineMatMulATBInto[float32],
		MatMulABTInto: engineMatMulABTInto[float32],
	})
}
