package main

import (
	"errors"
	"strings"
	"testing"

	"seaice/internal/serve"
)

// TestValidatePrecision pins the -precision contract: f32/f64 (and their
// spelled-out aliases, case-insensitively) accepted; unknown names
// refused with the serving stack's typed *serve.UnknownPrecisionError
// and its exact message; int8 refused with a redirect to the serve
// benchmark, since the training-step cost cannot run in an
// inference-only precision.
func TestValidatePrecision(t *testing.T) {
	for _, ok := range []string{"f32", "f64", "float32", "float64", "F32", " f64 "} {
		if err := validatePrecision(ok); err != nil {
			t.Errorf("validatePrecision(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", "f16", "mixed", "int4"} {
		err := validatePrecision(bad)
		if err == nil {
			t.Errorf("validatePrecision(%q) accepted, want error", bad)
			continue
		}
		var upe *serve.UnknownPrecisionError
		if !errors.As(err, &upe) {
			t.Errorf("validatePrecision(%q) = %T, want *serve.UnknownPrecisionError", bad, err)
			continue
		}
		if upe.Precision != bad {
			t.Errorf("validatePrecision(%q) carried precision %q", bad, upe.Precision)
		}
	}
	err := validatePrecision("f16")
	want := `serve: unknown precision "f16" (valid: f64, f32, int8)`
	if err == nil || err.Error() != want {
		t.Errorf("validatePrecision(\"f16\") = %v, want %q", err, want)
	}
	if err := validatePrecision("int8"); err == nil || !strings.Contains(err.Error(), "inference-only") {
		t.Errorf("validatePrecision(\"int8\") = %v, want inference-only redirect", err)
	}
}
