// Package ddp is the Horovod analogue: synchronous data-parallel U-Net
// training across N workers with ring all-reduce gradient averaging
// (§III-C1). Each worker is a goroutine owning a full model replica — the
// stand-in for one GPU of the paper's DGX A100 — and every step follows
// Horovod's protocol:
//
//  1. rank 0 broadcasts initial weights (BroadcastGlobalVariables),
//  2. each rank computes gradients on its shard of the global batch,
//  3. gradients are averaged with the bandwidth-optimal ring all-reduce,
//  4. every rank applies an identical Adam update, keeping replicas
//     bit-synchronized.
//
// The trainer is additionally *elastic and fault tolerant*: replica
// failures (injected deterministically via internal/chaos, at exact
// global-step boundaries) are detected through the membership-aware ring
// (ring.Group), and the run recovers without losing a single committed
// update. Two recovery modes exist:
//
//   - Recover (default): the failed step is aborted, the dead replica is
//     healed — weights, optimizer state, and RNG position copied from a
//     survivor, or, when no survivors remain, restored from the latest
//     mid-epoch snapshot and replayed forward — and the step is retried
//     with the full complement. Every committed update is therefore
//     executed exactly once with all ranks, which makes a
//     killed-and-recovered float64 run **bit-identical** to a
//     never-failed one (asserted by the chaos tests at 1, 3, and 4
//     workers; float32-mixed runs are bit-identical too, since snapshots
//     store exact float64 state).
//   - Elastic: dead ranks stay dead; subsequent batches are resharded
//     over the survivors and gradients are averaged by a ring rebuilt
//     over them with re-chunked geometry. Throughput degrades, the
//     update sequence changes (documented, deterministic given the fault
//     schedule), and the run finishes instead of failing.
//
// Mid-epoch snapshots (model weights, Adam moments, master weights,
// each rank's RNG position, and the batch cursor) are taken every
// Config.SnapshotEvery steps and optionally persisted (atomically) to
// Config.SnapshotPath; a process killed at any instant resumes from the
// last snapshot bit-identically, because training from any step boundary
// is a pure function of the snapshot state and the seeded batch
// schedule.
//
// Because this host has a single core, the *wall-clock* speedup of real
// goroutines is ~1×; Table III's timing is therefore reported through the
// calibrated perfmodel.Horovod virtual clock, while the gradient math is
// real and the equivalence theorem "K-worker DDP step == single-model
// step on the merged batch" is verified in the tests.
//
// The trainer consumes materialized sample sets (each rank needs random
// access to its shard of every global batch); streaming callers
// materialize via pipeline.Stream.TrainSamples, which still overlaps
// labeling with scene generation upstream.
//
// The trainer is generic over the compute precision: float64 replicas
// reproduce the reference engine bit-for-bit, float32 replicas halve
// every ring hop's wire bytes and may enable float64 master weights
// (Config.MasterWeights) for mixed-precision stability; either
// instantiation is bit-deterministic across runs and worker counts.
package ddp

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"seaice/internal/chaos"
	"seaice/internal/nn"
	"seaice/internal/noise"
	"seaice/internal/perfmodel"
	"seaice/internal/ring"
	"seaice/internal/tensor"
	"seaice/internal/train"
	"seaice/internal/unet"
)

// DefaultSnapshotEvery is the snapshot cadence (in global steps) when
// Config.SnapshotEvery is unset.
const DefaultSnapshotEvery = 8

// ErrKilled reports a run aborted by an injected process-kill fault.
// The trainer state is abandoned mid-flight (as a real kill would leave
// it); resume by restoring the last snapshot into a fresh trainer.
var ErrKilled = errors.New("ddp: run killed by injected fault (resume from the last snapshot)")

// Config controls a distributed training run.
type Config struct {
	// Workers is the number of simulated GPUs (the paper sweeps
	// 1,2,4,6,8).
	Workers int
	// BatchPerWorker is the per-GPU batch size (paper: 32 per node).
	BatchPerWorker int
	Epochs         int
	LR             float64
	Seed           uint64
	// MasterWeights keeps float64 master copies of the weights in each
	// rank's Adam — the mixed-precision recipe for float32 replicas; it
	// has no effect on float64 replicas.
	MasterWeights bool
	// Focal, if non-nil, trains every replica with the focal loss at
	// these parameters instead of plain softmax cross-entropy; each
	// rank's criterion is stateless apart from scratch buffers, so
	// recovery and snapshot replay are unaffected.
	Focal *nn.FocalParams
	// Timing supplies the virtual clock for reported epoch times; the
	// zero value disables virtual timing.
	Timing perfmodel.Horovod
	// Progress, if non-nil, receives per-epoch mean loss.
	Progress func(epoch int, loss float64)

	// Chaos injects deterministic faults (replica crashes, process
	// kills, stragglers) at global-step boundaries; nil disables
	// injection. Real (non-injected) replica errors — a failing
	// LossAndGrad — still abort the run: recovery is defined for worker
	// *loss*, where retrying is sound, not for compute errors, which
	// would recur deterministically on retry.
	Chaos *chaos.Injector
	// SnapshotEvery is the step cadence of mid-epoch snapshots; <= 0
	// uses DefaultSnapshotEvery. A snapshot is always taken at the first
	// step of a run (or resume), so snapshot-replay recovery is always
	// possible.
	SnapshotEvery int
	// SnapshotPath, when non-empty, persists each snapshot atomically to
	// this file, enabling kill-and-restart resume across processes.
	SnapshotPath string
	// SnapshotKeep is the on-disk snapshot rotation depth (the live file
	// plus SnapshotKeep-1 older generations); <= 0 uses
	// DefaultSnapshotKeep. Resume falls back to the newest generation
	// that passes its checksum, so one corrupt or torn write never
	// strands a run.
	SnapshotKeep int
	// Guard is the per-step numeric anomaly guard over the reduced
	// gradient vector (train.CheckGrads); the zero value disables it.
	// On anomaly the step is rolled back via RNG rewind and retried
	// once; a reproduced anomaly is skipped or aborts per the policy.
	Guard train.GuardConfig
	// Elastic switches recovery policy: instead of heal-and-retry
	// (bit-identical), dead ranks stay dead and training continues over
	// the survivors with resharded batches and a re-chunked survivor
	// ring. Deterministic given the fault schedule, but a different —
	// documented — update sequence than the no-fault run.
	Elastic bool
}

// EpochStat records one epoch's timing and loss.
type EpochStat struct {
	Loss           float64
	VirtualSeconds float64
	RealSeconds    float64
}

// Result summarizes the run.
type Result struct {
	Epochs       []EpochStat
	VirtualTotal float64
	RealTotal    float64
	// Throughput is images/second against the virtual clock (the
	// paper's "Data/s" column).
	Throughput float64

	// Steps is the number of committed global steps this Fit executed
	// (excluding resumed-over steps, discarded attempts, and replays).
	Steps int
	// Recoveries counts replicas healed after a detected failure.
	Recoveries int
	// Replays counts snapshot-replay recoveries (crashes with no
	// survivors, e.g. the single-worker case).
	Replays int
	// Stalls counts absorbed straggler delays.
	Stalls int
	// Anomalies counts gradient anomalies the numeric guard caught; each
	// was rolled back before any weight was touched.
	Anomalies int
	// GuardSkips counts steps whose update was dropped by the skip
	// policy after an anomaly survived its rolled-back retry.
	GuardSkips int
	// LostRanks lists ranks still dead at exit (elastic mode only).
	LostRanks []int
}

// Trainer owns the worker replicas, generic over the compute precision
// of the replicas and the reduced gradient vectors (float32 halves the
// bytes every ring hop moves).
type Trainer[S tensor.Scalar] struct {
	cfg      Config
	modelCfg unet.Config
	replicas []*unet.Model[S]
	opts     []*nn.Adam[S]
	// flat holds one contiguous gradient vector per replica, reused
	// across steps: packing every parameter into one buffer lets the
	// all-reduce run as a single chunked, pipelined operation instead of
	// one serial ring per parameter.
	flat [][]S

	// group tracks live ring membership across failures.
	group *ring.Group
	// snap is the latest in-memory snapshot; startStep is the batch
	// cursor a restored trainer resumes from; restored marks that snap
	// came from Restore, so Fit must verify it against the sample set.
	snap      *Snapshot
	startStep int
	restored  bool
	// batcher/nb/dataFP are installed by Fit; shardsFor uses the batcher
	// to replay any step's deterministic shard assignment, and dataFP
	// guards resume against a different sample set.
	batcher *train.Batcher
	nb      int
	dataFP  string
	// guardSkipped marks global steps whose update the numeric guard
	// dropped (skip policy): a snapshot replay must re-run their compute
	// (to advance the RNG streams) without re-applying the update.
	guardSkipped map[int]bool
}

// New builds a trainer whose rank-0 replica is initialized from the model
// configuration; ranks 1..N-1 receive rank 0's weights by broadcast.
func New[S tensor.Scalar](modelCfg unet.Config, cfg Config) (*Trainer[S], error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("ddp: workers %d", cfg.Workers)
	}
	if cfg.BatchPerWorker <= 0 || cfg.Epochs <= 0 {
		return nil, fmt.Errorf("ddp: invalid batch %d or epochs %d", cfg.BatchPerWorker, cfg.Epochs)
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	if cfg.SnapshotKeep <= 0 {
		cfg.SnapshotKeep = DefaultSnapshotKeep
	}
	t := &Trainer[S]{cfg: cfg, modelCfg: modelCfg}
	for r := 0; r < cfg.Workers; r++ {
		m, err := newReplica[S](modelCfg, r, cfg.Focal)
		if err != nil {
			return nil, err
		}
		t.replicas = append(t.replicas, m)
		opt := nn.NewAdam[S](cfg.LR)
		opt.Master = cfg.MasterWeights
		t.opts = append(t.opts, opt)
	}
	for r := 1; r < cfg.Workers; r++ {
		if err := t.replicas[r].CopyWeightsFrom(t.replicas[0]); err != nil {
			return nil, err
		}
	}
	var err error
	if t.group, err = ring.NewGroup(cfg.Workers); err != nil {
		return nil, err
	}
	return t, nil
}

// newReplica builds rank r's model with its distinct dropout stream;
// weights are overwritten by broadcast or recovery.
func newReplica[S tensor.Scalar](modelCfg unet.Config, r int, focal *nn.FocalParams) (*unet.Model[S], error) {
	mc := modelCfg
	// Distinct dropout streams per rank; weights are broadcast from
	// rank 0, so only regularization noise differs.
	mc.Seed = modelCfg.Seed + uint64(r)*0x9e37
	m, err := unet.New[S](mc)
	if err != nil {
		return nil, err
	}
	if focal != nil {
		m.SetCriterion(nn.NewFocal[S](*focal))
	}
	return m, nil
}

// Replica exposes a rank's model (rank 0 is the canonical result).
func (t *Trainer[S]) Replica(rank int) *unet.Model[S] { return t.replicas[rank] }

// Group exposes the ring membership (for tests and progress reporting).
func (t *Trainer[S]) Group() *ring.Group { return t.group }

// snapshotKey fingerprints the configuration a resumed run must share
// with the run that wrote the snapshot; the sample set is fingerprinted
// separately (dataFingerprint) because it exists only once Fit runs.
func (t *Trainer[S]) snapshotKey() string {
	return fmt.Sprintf("model %+v|workers %d|batch %d|epochs %d|lr %g|seed %d|master %t",
		t.modelCfg, t.cfg.Workers, t.cfg.BatchPerWorker, t.cfg.Epochs, t.cfg.LR, t.cfg.Seed,
		t.cfg.MasterWeights)
}

// dataFingerprint hashes the sample set's count, dimensions, imagery,
// and labels. Resume-on-different-data would silently train the wrong
// batches from the cursor onward, so Fit refuses it.
func dataFingerprint(samples []train.Sample) string {
	h := sha256.New()
	var dims [8]byte
	binary.LittleEndian.PutUint64(dims[:], uint64(len(samples)))
	h.Write(dims[:])
	var lbuf []byte
	for _, s := range samples {
		binary.LittleEndian.PutUint32(dims[:4], uint32(s.Image.W))
		binary.LittleEndian.PutUint32(dims[4:], uint32(s.Image.H))
		h.Write(dims[:])
		h.Write(s.Image.Pix)
		if cap(lbuf) < len(s.Labels.Pix) {
			lbuf = make([]byte, len(s.Labels.Pix))
		}
		lbuf = lbuf[:len(s.Labels.Pix)]
		for i, c := range s.Labels.Pix {
			lbuf[i] = byte(c)
		}
		h.Write(lbuf)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// Snapshot captures the exact training state at the current step
// boundary. All live ranks are bit-synchronized, so weights and
// optimizer state are taken from the lowest live rank; RNG positions are
// per rank.
func (t *Trainer[S]) Snapshot(step int) *Snapshot {
	src := 0
	for r := range t.replicas {
		if t.group.IsLive(r) {
			src = r
			break
		}
	}
	s := &Snapshot{
		Precision: precisionName[S](),
		Key:       t.snapshotKey(),
		Data:      t.dataFP,
		Step:      step,
		Weights:   t.replicas[src].WeightsF64(),
		Opt:       t.opts[src].State(),
		RNG:       make([]noise.RNGState, len(t.replicas)),
	}
	for r, m := range t.replicas {
		s.RNG[r] = m.RNGState()
	}
	return s
}

// precisionName reports the instantiation's precision tag.
func precisionName[S tensor.Scalar]() string {
	if tensor.IsF32[S]() {
		return "float32"
	}
	return "float64"
}

// Restore loads a snapshot into the trainer: every rank gets the
// snapshot weights and optimizer state, its own RNG position, and full
// ring membership. Fit then resumes from the snapshot's batch cursor.
func (t *Trainer[S]) Restore(s *Snapshot) error {
	if s.Key != t.snapshotKey() {
		return fmt.Errorf("%w: key %q vs trainer %q", ErrSnapshotMismatch, s.Key, t.snapshotKey())
	}
	if s.Precision != precisionName[S]() {
		return fmt.Errorf("%w: snapshot precision %s, trainer %s", ErrSnapshotMismatch, s.Precision, precisionName[S]())
	}
	if len(s.RNG) != len(t.replicas) {
		return fmt.Errorf("%w: %d RNG states for %d ranks", ErrSnapshotMismatch, len(s.RNG), len(t.replicas))
	}
	for r, m := range t.replicas {
		if err := m.SetWeightsF64(s.Weights); err != nil {
			return err
		}
		m.SetRNGState(s.RNG[r])
		t.opts[r].SetState(s.Opt) // SetState deep-copies, so ranks do not share buffers
		t.group.Heal(r)
	}
	t.snap = s
	t.startStep = s.Step
	t.restored = true
	return nil
}

// computeGrads runs forward+backward on every listed rank's shard
// concurrently (each replica's kernels fan out on the shared pool) and
// returns the mean loss across ranks that held samples, plus the number
// of straggler delays absorbed. Straggler delays for this step fire
// inside the affected rank's goroutine.
func (t *Trainer[S]) computeGrads(ranks []int, shards [][]train.Sample, step int) (float64, int, error) {
	losses := make([]float64, len(t.replicas))
	counted := make([]bool, len(t.replicas))
	stalled := make([]bool, len(t.replicas))
	errs := make([]error, len(t.replicas))
	var wg sync.WaitGroup
	wg.Add(len(ranks))
	for _, r := range ranks {
		go func(rank int) {
			defer wg.Done()
			if d := t.cfg.Chaos.StragglerDelay(rank, step); d > 0 {
				// A straggler slows the whole synchronous ring (wall
				// clock only — results are unaffected, which the chaos
				// tests assert).
				stalled[rank] = true
				time.Sleep(d)
			}
			m := t.replicas[rank]
			nn.ZeroGrads(m.Params())
			if len(shards[rank]) == 0 {
				return // rank idles this step; contributes zero grads
			}
			x, labels, err := train.ToTensor[S](shards[rank])
			if err != nil {
				errs[rank] = err
				return
			}
			losses[rank], errs[rank] = m.LossAndGrad(x, labels)
			counted[rank] = true
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, 0, err
		}
	}
	total, n, stalls := 0.0, 0, 0
	for r, ok := range counted {
		if ok {
			total += losses[r]
			n++
		}
		if stalled[r] {
			stalls++
		}
	}
	if n == 0 {
		return 0, stalls, nil
	}
	return total / float64(n), stalls, nil
}

// reduceGrads flattens the listed ranks' gradients and averages them
// through the membership-aware chunked ring (rebuilt over the live set,
// re-chunked geometry). An injected NaN fault scheduled for (rank, step)
// poisons that rank's flattened vector just before the reduction — NaN
// propagates through the mean, so every rank's guard sees the same
// non-finite reduced vector. step < 0 (the fault-free Step/replay path)
// never matches a fault.
func (t *Trainer[S]) reduceGrads(ranks []int, step int) error {
	p := len(t.replicas)
	flatLen := 0
	for _, prm := range t.replicas[0].Params() {
		flatLen += prm.Grad.Len()
	}
	if t.flat == nil {
		t.flat = make([][]S, p)
	}
	for _, r := range ranks {
		if cap(t.flat[r]) < flatLen {
			t.flat[r] = make([]S, flatLen)
		}
		t.flat[r] = t.flat[r][:flatLen]
		off := 0
		for _, prm := range t.replicas[r].Params() {
			off += copy(t.flat[r][off:], prm.Grad.Data)
		}
		if step >= 0 && t.cfg.Chaos.NaNStep(r, step) {
			t.flat[r][0] = S(math.NaN())
		}
	}
	// Dead ranks keep stale flat buffers; ensure they exist so the group
	// collective sees a full-length slice set.
	for r := 0; r < p; r++ {
		if t.flat[r] == nil {
			t.flat[r] = make([]S, flatLen)
		}
	}
	if err := ring.AllReduceMeanChunkedGroup(t.group, t.flat, ring.DefaultChunk); err != nil {
		return err
	}
	for _, r := range ranks {
		off := 0
		for _, prm := range t.replicas[r].Params() {
			off += copy(prm.Grad.Data, t.flat[r][off:off+prm.Grad.Len()])
		}
	}
	return nil
}

// applyAdam commits the averaged gradients on the listed ranks
// concurrently; identical updates keep them bit-synchronized.
func (t *Trainer[S]) applyAdam(ranks []int) {
	var wg sync.WaitGroup
	wg.Add(len(ranks))
	for _, r := range ranks {
		go func(rank int) {
			defer wg.Done()
			t.opts[rank].Step(t.replicas[rank].Params())
		}(r)
	}
	wg.Wait()
}

// Step runs one synchronous data-parallel step over the full complement:
// shards[r] is rank r's mini-batch. It returns the mean loss across
// ranks. Step is the fault-free fast path (and the replay primitive);
// Fit's chaos-aware loop wraps it with detection and recovery.
func (t *Trainer[S]) Step(shards [][]train.Sample) (float64, error) {
	p := len(t.replicas)
	if len(shards) != p {
		return 0, fmt.Errorf("ddp: %d shards for %d workers", len(shards), p)
	}
	all := make([]int, p)
	for r := range all {
		all[r] = r
	}
	loss, _, err := t.computeGrads(all, shards, -1)
	if err != nil {
		return 0, err
	}
	if err := t.reduceGrads(all, -1); err != nil {
		return 0, err
	}
	t.applyAdam(all)
	return loss, nil
}

// heal recovers the dead ranks. With survivors, the replacement replica
// copies weights, optimizer state, and its own step-start RNG position
// from the captured state (the crash landed at the step boundary, before
// the rank consumed any noise); with none, the whole trainer restores
// the latest snapshot and replays forward to the current step, which is
// bit-identical by the determinism of Step. Returns whether a replay
// happened.
func (t *Trainer[S]) heal(step int, rngAtStart []noise.RNGState, res *Result) (bool, error) {
	dead := t.group.Dead()
	if len(dead) == 0 {
		return false, nil
	}
	live := t.group.Live()
	if len(live) == 0 {
		// Total loss — snapshot replay. Restore rewinds weights, Adam,
		// RNG, and membership; then deterministically re-execute the
		// steps between the snapshot and the current cursor.
		if t.snap == nil {
			return false, fmt.Errorf("ddp: all ranks failed at step %d with no snapshot", step)
		}
		snapStep := t.snap.Step
		if err := t.Restore(t.snap); err != nil {
			return false, err
		}
		res.Replays++
		res.Recoveries += len(dead)
		for h := snapStep; h < step; h++ {
			if t.guardSkipped[h] {
				// The guard dropped this step's update: re-run the compute
				// so every rank's RNG stream advances exactly as it did,
				// but apply nothing.
				all := make([]int, len(t.replicas))
				for r := range all {
					all[r] = r
				}
				if _, _, err := t.computeGrads(all, t.shardsFor(h), -1); err != nil {
					return false, fmt.Errorf("ddp: replay skipped step %d: %w", h, err)
				}
				continue
			}
			if _, err := t.Step(t.shardsFor(h)); err != nil {
				return false, fmt.Errorf("ddp: replay step %d: %w", h, err)
			}
		}
		return true, nil
	}
	src := live[0]
	for _, r := range dead {
		// A fresh replica stands in for the replacement worker; it
		// inherits the survivor's synchronized state and resumes its own
		// rank's RNG stream where the dead worker left it.
		m, err := newReplica[S](t.modelCfg, r, t.cfg.Focal)
		if err != nil {
			return false, err
		}
		if err := m.CopyWeightsFrom(t.replicas[src]); err != nil {
			return false, err
		}
		m.SetRNGState(rngAtStart[r])
		t.replicas[r] = m
		t.opts[r].SetState(t.opts[src].State())
		t.group.Heal(r)
		res.Recoveries++
	}
	return false, nil
}

// shardsFor reconstructs the deterministic shard assignment of global
// step g — the replay primitive. Requires Fit to have installed the
// batcher.
func (t *Trainer[S]) shardsFor(g int) [][]train.Sample {
	batch := t.batcher.Epoch(g / t.nb)[g%t.nb]
	return shard(batch, t.cfg.Workers)
}

// Fit trains for the configured epochs over the dataset, sharding each
// global batch of Workers×BatchPerWorker samples across ranks. With a
// chaos injector configured, faults fire at their exact step boundaries
// and the run recovers per Config.Elastic; a ProcessKill fault aborts
// with ErrKilled after the last snapshot (resume via Restore +
// LoadSnapshotFile). A trainer restored from a snapshot resumes at its
// batch cursor.
func (t *Trainer[S]) Fit(samples []train.Sample) (*Result, error) {
	globalBatch := t.cfg.Workers * t.cfg.BatchPerWorker
	batcher, err := train.NewBatcher(samples, globalBatch, t.cfg.Seed)
	if err != nil {
		return nil, err
	}
	t.batcher = batcher
	t.nb = batcher.NumBatches()
	totalSteps := t.cfg.Epochs * t.nb
	// The data fingerprint exists for snapshots and resume checks; a
	// plain fault-free run skips the full-dataset hash.
	if t.cfg.Chaos != nil || t.cfg.SnapshotPath != "" || t.restored {
		t.dataFP = dataFingerprint(samples)
	}
	if t.restored && t.snap != nil && t.snap.Data != "" && t.snap.Data != t.dataFP {
		// A cursor into a different sample set would silently train the
		// wrong batches; bit-identical resume is only defined on the
		// data the snapshot was taken over. Checked even at cursor 0 —
		// restoring a snapshot is a claim about the data it came from.
		return nil, fmt.Errorf("%w: snapshot was taken over a different sample set", ErrSnapshotMismatch)
	}

	res := &Result{}
	var (
		epochBatches   [][]train.Sample
		epochLoaded    = -1
		epochLoss      float64
		epochSteps     int
		epochStart     = time.Now()
		samplesTrained int // samples in committed steps (resume-aware)
	)
	for g := t.startStep; g < totalSteps; g++ {
		epoch, bi := g/t.nb, g%t.nb
		if epoch != epochLoaded {
			epochBatches = batcher.Epoch(epoch)
			epochLoaded = epoch
			epochLoss, epochSteps = 0, 0
			epochStart = time.Now()
		}

		// ---- step boundary: snapshot, then faults fire ----
		// Snapshots exist for recovery (chaos) and restart (SnapshotPath);
		// a plain fault-free run skips the deep copies entirely.
		wantSnaps := t.cfg.Chaos != nil || t.cfg.SnapshotPath != ""
		if wantSnaps && (g == t.startStep || g%t.cfg.SnapshotEvery == 0) && t.group.LiveCount() == len(t.replicas) {
			t.snap = t.Snapshot(g)
			if t.cfg.SnapshotPath != "" {
				// An injected torn-write fault truncates this snapshot
				// mid-body; the rotation keeps the previous generation, and
				// resume (LoadSnapshotFallback) detects the tear and falls
				// back to it.
				torn := t.cfg.Chaos.TornWrite(g)
				if err := saveSnapshotFile(t.cfg.SnapshotPath, t.snap, t.cfg.SnapshotKeep, torn); err != nil {
					return res, err
				}
			}
		}
		if t.cfg.Chaos.ProcessKill(g) {
			// The process dies here; in-flight state is abandoned, as a
			// real SIGKILL would leave it. Resume restores the last
			// persisted snapshot into a fresh trainer.
			return res, ErrKilled
		}

		loss, err := t.chaosStep(g, epochBatches[bi], res)
		if err != nil {
			return res, err
		}
		res.Steps++
		epochLoss += loss
		epochSteps++
		samplesTrained += len(epochBatches[bi])

		if bi == t.nb-1 {
			stat := EpochStat{
				Loss:        epochLoss / float64(epochSteps),
				RealSeconds: time.Since(epochStart).Seconds(),
			}
			if t.cfg.Timing.Compute > 0 {
				// A resume entering mid-epoch executed only epochSteps of
				// the epoch's nb steps; scale the modeled epoch time so
				// virtual totals cover the work actually done.
				stat.VirtualSeconds = t.cfg.Timing.EpochTime(t.group.LiveCount()) *
					float64(epochSteps) / float64(t.nb)
			}
			res.Epochs = append(res.Epochs, stat)
			res.RealTotal += stat.RealSeconds
			res.VirtualTotal += stat.VirtualSeconds
			if t.cfg.Progress != nil {
				t.cfg.Progress(epoch, stat.Loss)
			}
		}
	}
	res.LostRanks = t.group.Dead()
	if res.VirtualTotal > 0 {
		// Samples this Fit actually trained — for an unresumed run this
		// is len(samples)×Epochs; a resumed run counts only its own
		// committed steps, so throughput is never inflated by the
		// already-snapshotted portion.
		res.Throughput = float64(samplesTrained) / res.VirtualTotal
	}
	return res, nil
}

// chaosStep executes global step g with failure detection and recovery.
func (t *Trainer[S]) chaosStep(g int, batch []train.Sample, res *Result) (float64, error) {
	p := len(t.replicas)
	guardRetried := false
	for {
		// Capture every rank's RNG position at the step boundary so an
		// aborted attempt can be rewound exactly.
		rngAtStart := make([]noise.RNGState, p)
		for r, m := range t.replicas {
			rngAtStart[r] = m.RNGState()
		}

		// Replica crashes scheduled for this step fire now: the worker
		// dies at the boundary, producing no gradients. The membership
		// group is how the survivors detect it.
		for r := 0; r < p; r++ {
			if t.group.IsLive(r) && t.cfg.Chaos.ReplicaCrash(r, g) {
				t.group.Fail(r)
			}
		}

		live := t.group.Live()
		if len(live) == 0 {
			if t.cfg.Elastic {
				// Elastic mode never resurrects ranks — with the last
				// survivor gone there is nothing to continue on, and a
				// snapshot replay would silently rewrite the degraded
				// steps already committed over survivors.
				return 0, fmt.Errorf("ddp: all replicas lost at step %d (elastic mode does not heal)", g)
			}
			if _, err := t.heal(g, rngAtStart, res); err != nil {
				return 0, err
			}
			continue // retry step g with the restored complement
		}
		if len(live) < len(t.replicas) && !t.cfg.Elastic {
			// Recover mode heals before computing: the boundary detection
			// already knows who died, so spending a full forward/backward
			// + all-reduce on a step that must be retried anyway would be
			// pure waste. (A loss detected mid-exchange — RankError below
			// — still discards the attempt.)
			if _, err := t.heal(g, rngAtStart, res); err != nil {
				return 0, err
			}
			continue
		}

		// Shard the batch: over the full complement in recover mode (the
		// committed execution always has every rank), over the survivors
		// in elastic mode.
		var shards [][]train.Sample
		if t.cfg.Elastic {
			shards = shardOver(batch, live, p)
		} else {
			shards = shard(batch, p)
		}

		loss, stalls, err := t.computeGrads(live, shards, g)
		if err != nil {
			return 0, err
		}
		res.Stalls += stalls
		aborted := false // a peer died mid-exchange; partial sums untrustworthy
		if err := t.reduceGrads(live, g); err != nil {
			var re *ring.RankError
			if !errors.As(err, &re) {
				return 0, err
			}
			aborted = true
		}

		if aborted {
			// Discard the attempt and rewind the participants' RNG
			// streams (they consumed dropout noise that will be redrawn
			// on retry). Recover mode additionally heals the dead ranks
			// so the retry runs with the full complement; elastic mode
			// leaves them dead and retries over the remaining survivors.
			if t.cfg.Elastic {
				for _, r := range live {
					if t.group.IsLive(r) {
						t.replicas[r].SetRNGState(rngAtStart[r])
					}
				}
				continue
			}
			replayed, err := t.heal(g, rngAtStart, res)
			if err != nil {
				return 0, err
			}
			if !replayed {
				for r, m := range t.replicas {
					m.SetRNGState(rngAtStart[r])
				}
			}
			continue
		}

		// Numeric guard: scan the reduced gradient (identical on every
		// participating rank) before any weight moves. An anomaly rolls
		// the attempt back via RNG rewind and retries once — which clears
		// transient corruption like an injected NaN; a reproduced anomaly
		// is deterministic in (weights, batch, RNG) and falls to the
		// policy: drop the update and continue, or abort typed.
		if t.cfg.Guard.Enabled() {
			if a := train.CheckGrads(t.cfg.Guard, g, t.flat[live[0]]); a != nil {
				res.Anomalies++
				if !guardRetried {
					guardRetried = true
					for _, r := range live {
						t.replicas[r].SetRNGState(rngAtStart[r])
					}
					continue
				}
				if t.cfg.Guard.Policy == train.GuardAbort {
					return 0, a
				}
				if t.guardSkipped == nil {
					t.guardSkipped = make(map[int]bool)
				}
				t.guardSkipped[g] = true
				res.GuardSkips++
				return loss, nil
			}
		}

		// Commit: identical Adam updates on the participating ranks.
		t.applyAdam(live)
		return loss, nil
	}
}

// shard splits a batch round-robin across ranks; with batch =
// Workers×BatchPerWorker every rank gets exactly BatchPerWorker samples.
func shard(batch []train.Sample, workers int) [][]train.Sample {
	out := make([][]train.Sample, workers)
	for i, s := range batch {
		r := i % workers
		out[r] = append(out[r], s)
	}
	return out
}

// shardOver distributes a batch round-robin across the live ranks only —
// the elastic resharding that keeps every sample trained when the
// complement shrinks. Dead ranks receive empty shards.
func shardOver(batch []train.Sample, live []int, workers int) [][]train.Sample {
	out := make([][]train.Sample, workers)
	for i, s := range batch {
		r := live[i%len(live)]
		out[r] = append(out[r], s)
	}
	return out
}
