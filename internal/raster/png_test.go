package raster

import (
	"path/filepath"
	"testing"
)

func TestPNGRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scene.png")
	m := randRGB(11, 20, 14)
	if err := m.WritePNG(path); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := ReadPNG(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if back.W != m.W || back.H != m.H {
		t.Fatalf("size %dx%d, want %dx%d", back.W, back.H, m.W, m.H)
	}
	for i := range m.Pix {
		if m.Pix[i] != back.Pix[i] {
			t.Fatalf("pixel byte %d changed through PNG", i)
		}
	}
}

func TestGrayPNG(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mask.png")
	g := NewGray(8, 8)
	g.Fill(200)
	if err := g.WritePNG(path); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := ReadPNG(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	r, gg, b := back.At(3, 3)
	if r != 200 || gg != 200 || b != 200 {
		t.Fatalf("gray pixel came back as (%d,%d,%d)", r, gg, b)
	}
}

func TestReadPNGMissingFile(t *testing.T) {
	if _, err := ReadPNG(filepath.Join(t.TempDir(), "nope.png")); err == nil {
		t.Fatal("expected error for missing file")
	}
}
