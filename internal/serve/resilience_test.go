package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"seaice/internal/chaos"
)

// TestCoordinatorConcurrentRerouteDuringNodeLoss kills a node while a
// burst of scene requests is in flight: the mark-down (breaker trip) and
// the reroutes race each other and every request must still come back
// 200 with bit-identical bytes, served by the survivor.
func TestCoordinatorConcurrentRerouteDuringNodeLoss(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TileSize = 32
	_, tsA, addrA := workerNode(t, cfg)
	_, _, addrB := workerNode(t, cfg)
	coord, cts := testCoordinator(t, cfg, []string{addrA, addrB})

	img := testSceneImg(t, 40, 128, 128)
	var buf bytes.Buffer
	if err := img.EncodePNG(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.Bytes()

	resp, want := postPNG(t, http.DefaultClient, cts.URL+"/classify", img)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline status %d: %s", resp.StatusCode, want)
	}

	const clients = 8
	type result struct {
		status int
		body   []byte
		err    error
	}
	results := make([]result, clients)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(cts.URL+"/classify", "image/png", bytes.NewReader(body))
			if err != nil {
				results[i] = result{err: err}
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			results[i] = result{status: resp.StatusCode, body: b, err: err}
		}(i)
	}
	close(start)
	time.Sleep(2 * time.Millisecond)
	tsA.Close() // node 0 dies mid-burst
	wg.Wait()

	for i, r := range results {
		if r.err != nil {
			t.Fatalf("request %d: %v", i, r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, r.status, r.body)
		}
		if !bytes.Equal(r.body, want) {
			t.Fatalf("request %d: bytes diverged from baseline under reroute race", i)
		}
	}
	s := coord.Stats()
	if len(s.NodesDown) != 1 || s.NodesDown[0] != 0 {
		t.Fatalf("node 0 should be marked down: %+v", s)
	}
	if s.Rerouted == 0 {
		t.Fatal("no tiles recorded as rerouted")
	}
}

// TestCoordinatorStaleFallbackPartial: with every node dead, tiles the
// coordinator has served before come back stale from its fallback cache
// as a 200 marked X-Seaice-Partial — degraded, not dark.
func TestCoordinatorStaleFallbackPartial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TileSize = 32
	_, tsA, addrA := workerNode(t, cfg)
	coord, cts := testCoordinator(t, cfg, []string{addrA})

	img := testSceneImg(t, 41, 128, 128)
	resp, want := postPNG(t, http.DefaultClient, cts.URL+"/classify", img)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline status %d", resp.StatusCode)
	}

	tsA.Close() // the only node dies

	resp, got := postPNG(t, http.DefaultClient, cts.URL+"/classify", img)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded status %d (%s), want 200 from fallback cache", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("stale-served bytes differ from the live answer")
	}
	ph := resp.Header.Get(PartialHeader)
	if ph == "" {
		t.Fatalf("degraded 200 missing %s header", PartialHeader)
	}
	var partial struct {
		Missing int `json:"missing"`
		Stale   int `json:"stale"`
		Total   int `json:"total"`
	}
	if err := json.Unmarshal([]byte(ph), &partial); err != nil {
		t.Fatalf("%s is not JSON: %v (%s)", PartialHeader, err, ph)
	}
	if partial.Missing != 0 || partial.Stale != partial.Total || partial.Total == 0 {
		t.Fatalf("unexpected partial marker: %+v", partial)
	}
	s := coord.Stats()
	if s.PartialResponses != 1 || s.StaleTiles != partial.Stale {
		t.Fatalf("stats disagree with partial response: %+v", s)
	}

	// A scene of unseen tiles has no fallback: that is the real 503.
	cold := testSceneImg(t, 42, 64, 64)
	resp, body := postPNG(t, http.DefaultClient, cts.URL+"/classify", cold)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("cold degraded status %d (%s), want 503", resp.StatusCode, body)
	}
}

// TestCoordinatorHedgesSlowNode degrades one worker with a slownode
// chaos fault and sets a tight fixed hedge delay: strips owned by the
// sick node must be hedged to the healthy node, the hedge must win, and
// the answer must stay bit-identical.
func TestCoordinatorHedgesSlowNode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TileSize = 32

	slowCfg := cfg
	sched, err := chaos.Parse("1:slownode@0:300ms")
	if err != nil {
		t.Fatal(err)
	}
	slowCfg.Chaos = chaos.New(sched, 1)
	_, _, addrSlow := workerNode(t, slowCfg)
	_, _, addrFast := workerNode(t, cfg)

	coord, err := NewCoordinator(CoordConfig{
		TileSize:    cfg.TileSize,
		Nodes:       []string{addrSlow, addrFast},
		Build:       cfg.Build,
		HealthEvery: time.Hour,
		Timeout:     5 * time.Second,
		HedgeAfter:  30 * time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		cts.Close()
		coord.Close()
	})

	// Golden through a healthy standalone server.
	img := testSceneImg(t, 43, 128, 128)
	_, single := testServer(t, cfg)
	_, want := postPNG(t, http.DefaultClient, single.URL+"/classify", img)

	resp, got := postPNG(t, http.DefaultClient, cts.URL+"/classify", img)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("hedged answer differs from the healthy golden")
	}
	s := coord.Stats()
	if s.Hedged == 0 {
		t.Fatalf("no strips hedged despite a 300ms-slow node: %+v", s)
	}
	if s.HedgeWins == 0 {
		t.Fatalf("hedge to the fast node never won: %+v", s)
	}
	// The slow node answered late but alive — cancellation is not a
	// health verdict, so its breaker must not have tripped.
	if len(s.NodesDown) != 0 {
		t.Fatalf("hedging wrongly marked a node down: %+v", s)
	}
}

// TestServerDeadlineHeader400: malformed or non-positive budgets are
// client errors, not silent no-deadline requests.
func TestServerDeadlineHeader400(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TileSize = 16
	_, ts := testServer(t, cfg)
	img := testSceneImg(t, 44, 32, 32)
	var buf bytes.Buffer
	if err := img.EncodePNG(&buf); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"abc", "-5", "0"} {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/classify", bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "image/png")
		req.Header.Set(DeadlineHeader, bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s=%q: status %d, want 400", DeadlineHeader, bad, resp.StatusCode)
		}
	}
	// A generous budget sails through.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/classify", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "image/png")
	req.Header.Set(DeadlineHeader, "60000")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generous deadline: status %d, want 200", resp.StatusCode)
	}
}

// TestSchedulerInfeasibleDeadline: once the model has observed service
// times, a deadline the prediction cannot meet is refused at enqueue
// with a model-derived retry hint — not accepted and timed out later.
func TestSchedulerInfeasibleDeadline(t *testing.T) {
	m := testModel(t, 2)
	cfg := schedCfg()
	cfg.MaxBatch = 1
	stats := NewStats()
	sched := NewScheduler(cfg, stats)
	defer sched.Close()

	// Teach the model that a batch takes 500ms.
	sched.Model().Observe(1, 500*time.Millisecond)

	tile := testTiles(1, 16, 5)[0]
	_, err := sched.SubmitDeadline(m, tile, time.Now().Add(50*time.Millisecond))
	var infeasible *InfeasibleError
	if !errors.As(err, &infeasible) {
		t.Fatalf("err %v, want InfeasibleError", err)
	}
	if infeasible.RetryAfter <= 0 {
		t.Fatalf("non-positive RetryAfter: %+v", infeasible)
	}
	if infeasible.Predicted < infeasible.Budget {
		t.Fatalf("rejected although predicted %v < budget %v", infeasible.Predicted, infeasible.Budget)
	}
	if snap := stats.Snapshot(0, 0, 0, 0); snap.DeadlineRejected != 1 {
		t.Fatalf("DeadlineRejected %d, want 1", snap.DeadlineRejected)
	}

	// The same request with a feasible budget is served.
	if _, err := sched.SubmitDeadline(m, tile, time.Now().Add(30*time.Second)); err != nil {
		t.Fatalf("feasible deadline rejected: %v", err)
	}
}

// TestSchedulerExpiredDroppedBeforeCompute: a request whose deadline
// passes while queued behind a slow batch is answered 504-style at
// pickup — the forward pass never runs for it.
func TestSchedulerExpiredDroppedBeforeCompute(t *testing.T) {
	m := testModel(t, 2)
	cfg := schedCfg()
	cfg.MaxBatch = 1
	cfg.BatchWait = time.Millisecond
	sched, err := chaos.Parse("1:slownode@0:200ms")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Chaos = chaos.New(sched, 1)
	stats := NewStats()
	s := NewScheduler(cfg, stats)
	defer s.Close()

	tiles := testTiles(2, 16, 6)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Occupies the single worker for ≥200ms (injected slow batch).
		if _, err := s.Submit(m, tiles[0]); err != nil {
			t.Errorf("head-of-line request failed: %v", err)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	// 50ms budget, behind a 200ms batch with no model observations yet:
	// admitted optimistically, then dropped expired at pickup.
	_, err2 := s.SubmitDeadline(m, tiles[1], time.Now().Add(50*time.Millisecond))
	wg.Wait()
	if !errors.Is(err2, ErrDeadlineExpired) {
		t.Fatalf("err %v, want ErrDeadlineExpired", err2)
	}
	if snap := stats.Snapshot(0, 0, 0, 0); snap.ExpiredDropped != 1 {
		t.Fatalf("ExpiredDropped %d, want 1", snap.ExpiredDropped)
	}
}
