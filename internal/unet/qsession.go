package unet

import (
	"fmt"
	"math"

	"seaice/internal/nn"
	"seaice/internal/raster"
	"seaice/internal/tensor"
)

// inputLUT maps an 8-bit pixel to its fixed input quantization
// q = round(127·pix/255) (see InputQuant).
var inputLUT = func() (t [256]uint8) {
	for i := range t {
		t[i] = uint8(math.Round(tensor.QuantMax * float64(i) / 255))
	}
	return
}()

// QuantSession is the int8 counterpart of Session: a forward-only,
// buffer-owning engine over a QuantModel. Activations are NHWC uint8,
// accumulation is int32 on the active tensor.Int8 backend, and the
// requantization epilogue is fixed-point — the whole forward is integer
// until the classifier head, so output labels are bit-identical across
// backends, hosts, and pool worker counts.
//
// Like Session, a QuantSession is NOT safe for concurrent use; the
// underlying QuantModel is read-only and may be shared.
type QuantSession struct {
	m *QuantModel

	// Grow-only buffers, reused across calls.
	in     []uint8
	encC1  [][]uint8
	encC2  [][]uint8 // skip sources — live until the decoder consumes them
	pooled [][]uint8
	botC1  []uint8
	botC2  []uint8
	up     [][]uint8
	decC1  [][]uint8
	decC2  [][]uint8
	cols   []uint8 // shared im2col scratch
	acc    []int32 // shared GEMM accumulator scratch
	labels []uint8
}

// NewQuantSession builds an inference session for q.
func NewQuantSession(q *QuantModel) *QuantSession {
	d := q.cfg.Depth
	return &QuantSession{
		m:      q,
		encC1:  make([][]uint8, d),
		encC2:  make([][]uint8, d),
		pooled: make([][]uint8, d),
		up:     make([][]uint8, d),
		decC1:  make([][]uint8, d),
		decC2:  make([][]uint8, d),
	}
}

// Model returns the session's underlying quantized model.
func (s *QuantSession) Model() *QuantModel { return s.m }

// qconv runs one quantized 3×3 convolution over the virtual concat of
// two NHWC sources (xb may be nil) into dst.
func (s *QuantSession) qconv(c *nn.QConv, xa []uint8, ca int, za uint8, xb []uint8, cb int, zb uint8, n, h, w int, dst []uint8) {
	npx := n * h * w
	cols := grow(&s.cols, npx*c.KPad)
	nn.QIm2Col3x3(xa, ca, za, xb, cb, zb, n, h, w, c.KPad, cols)
	acc := grow(&s.acc, c.OutC*npx)
	c.Forward(cols, npx, acc, dst)
}

// forward classifies the NHWC quantized input already staged in s.in,
// returning per-pixel labels in s.labels (n·h·w bytes, pixel-major).
func (s *QuantSession) forward(n, h, w int) []uint8 {
	m := s.m
	d := m.cfg.Depth

	// Contracting path.
	cur := s.in
	curC := m.cfg.InChannels
	ch, cw := h, w
	for l := 0; l < d; l++ {
		b := m.enc[l]
		npx := n * ch * cw
		c1 := grow(&s.encC1[l], npx*b.conv1.OutC)
		s.qconv(b.conv1, cur, curC, b.zIn, nil, 0, 0, n, ch, cw, c1)
		c2 := grow(&s.encC2[l], npx*b.conv2.OutC)
		s.qconv(b.conv2, c1, b.conv1.OutC, b.conv1.OutZ, nil, 0, 0, n, ch, cw, c2)
		p := grow(&s.pooled[l], npx/4*b.conv2.OutC)
		nn.QMaxPool2NHWC(c2, n, ch, cw, b.conv2.OutC, p)
		cur, curC, ch, cw = p, b.conv2.OutC, ch/2, cw/2
	}

	// Bottleneck.
	bb := m.bot
	npx := n * ch * cw
	c1 := grow(&s.botC1, npx*bb.conv1.OutC)
	s.qconv(bb.conv1, cur, curC, bb.zIn, nil, 0, 0, n, ch, cw, c1)
	c2 := grow(&s.botC2, npx*bb.conv2.OutC)
	s.qconv(bb.conv2, c1, bb.conv1.OutC, bb.conv1.OutZ, nil, 0, 0, n, ch, cw, c2)
	cur, curC = c2, bb.conv2.OutC

	// Expanding path.
	for i := 0; i < d; i++ {
		l := d - 1 - i
		u := m.ups[i]
		npx = n * ch * cw
		cols := grow(&s.cols, npx*u.KPad)
		nn.QPadColumns(cur, npx, curC, u.KPad, cols)
		acc := grow(&s.acc, u.OutC*npx)
		uo := grow(&s.up[i], 4*npx*u.OutC)
		u.Forward(cols, n, ch, cw, acc, uo)
		ch, cw = 2*ch, 2*cw
		npx = n * ch * cw

		db := m.dec[i]
		skipC := u.OutC
		d1 := grow(&s.decC1[i], npx*db.conv1.OutC)
		s.qconv(db.conv1, s.encC2[l], skipC, db.zSkip, uo, u.OutC, db.zUp, n, ch, cw, d1)
		d2 := grow(&s.decC2[i], npx*db.conv2.OutC)
		s.qconv(db.conv2, d1, db.conv1.OutC, db.conv1.OutZ, nil, 0, 0, n, ch, cw, d2)
		cur, curC = d2, db.conv2.OutC
	}

	// Head: dequantize to float logits, argmax to labels.
	hd := m.head
	cols := grow(&s.cols, npx*hd.KPad)
	nn.QPadColumns(cur, npx, curC, hd.KPad, cols)
	acc := grow(&s.acc, hd.Classes*npx)
	labels := grow(&s.labels, npx)
	hd.Forward(cols, npx, acc, labels)
	return labels
}

// PredictTiles implements Predictor: it classifies a batch of
// equally-sized RGB tiles in one quantized forward pass.
func (s *QuantSession) PredictTiles(tiles []*raster.RGB) ([]*raster.Labels, error) {
	if len(tiles) == 0 {
		return nil, fmt.Errorf("unet: empty tile batch")
	}
	w, h := tiles[0].W, tiles[0].H
	min := s.m.cfg.MinInputSize()
	if h%min != 0 || w%min != 0 {
		return nil, fmt.Errorf("unet: session input %dx%d not divisible by %d", w, h, min)
	}
	plane := h * w
	in := grow(&s.in, len(tiles)*3*plane)
	for ti, t := range tiles {
		if t.W != w || t.H != h {
			return nil, fmt.Errorf("unet: tile %d is %dx%d, batch is %dx%d", ti, t.W, t.H, w, h)
		}
		// NHWC: channels innermost, quantized through the exact input LUT.
		base := ti * 3 * plane
		for p := 0; p < plane; p++ {
			in[base+3*p] = inputLUT[t.Pix[3*p]]
			in[base+3*p+1] = inputLUT[t.Pix[3*p+1]]
			in[base+3*p+2] = inputLUT[t.Pix[3*p+2]]
		}
	}
	labels := s.forward(len(tiles), h, w)
	out := make([]*raster.Labels, len(tiles))
	for ti := range tiles {
		lab := raster.NewLabels(w, h)
		for p := 0; p < plane; p++ {
			lab.Pix[p] = raster.Class(labels[ti*plane+p])
		}
		out[ti] = lab
	}
	return out, nil
}
