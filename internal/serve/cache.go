package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"seaice/internal/raster"
)

// CacheKey identifies a classification result: the model name plus a
// SHA-256 over the tile's dimensions and pixel content. Identical
// imagery (coastal scenes re-requested, overlapping campaigns, repeated
// open-water tiles) resolves to the same key regardless of source.
type CacheKey [sha256.Size]byte

// TileKey hashes one tile for the given model name.
func TileKey(model string, tile *raster.RGB) CacheKey {
	h := sha256.New()
	var dims [8]byte
	binary.LittleEndian.PutUint32(dims[0:], uint32(tile.W))
	binary.LittleEndian.PutUint32(dims[4:], uint32(tile.H))
	h.Write([]byte(model))
	h.Write(dims[:])
	h.Write(tile.Pix)
	var k CacheKey
	h.Sum(k[:0])
	return k
}

// Cache is a thread-safe LRU over tile classification results. Stored
// label maps are shared across callers and MUST be treated as read-only.
type Cache struct {
	mu     sync.Mutex
	max    int
	ll     *list.List
	items  map[CacheKey]*list.Element
	hits   int64
	misses int64
}

type cacheEntry struct {
	key    CacheKey
	labels *raster.Labels
}

// NewCache returns an LRU holding up to max entries; max <= 0 returns a
// disabled cache (all lookups miss, stores are dropped).
func NewCache(max int) *Cache {
	return &Cache{max: max, ll: list.New(), items: make(map[CacheKey]*list.Element)}
}

// Enabled reports whether the cache stores anything at all; callers can
// skip key hashing entirely when it does not.
func (c *Cache) Enabled() bool { return c.max > 0 }

// Get returns the cached labels for key, marking the entry most
// recently used.
func (c *Cache) Get(key CacheKey) (*raster.Labels, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).labels, true
}

// Put stores labels under key, evicting the least recently used entry
// when at capacity.
func (c *Cache) Put(key CacheKey, labels *raster.Labels) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).labels = labels
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, labels: labels})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len reports the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Counters returns cumulative hit/miss counts.
func (c *Cache) Counters() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
