package pipeline

import (
	"fmt"

	"seaice/internal/dataset"
	"seaice/internal/tensor"
	"seaice/internal/train"
)

// TrainBatches returns a double-buffered train.BatchSource over the
// plan's training subset in the float64 reference precision; see
// TrainBatchesOf for the precision-generic form. The batch sequence
// equals train.Fit(dataset.Samples(...)) exactly — only the overlap
// differs.
func (s *Stream) TrainBatches() (train.BatchSource[float64], error) {
	return TrainBatchesOf[float64](s)
}

// TrainBatchesOf returns the stream's double-buffered batch source packed
// in the requested compute precision: a background assembler waits for
// the scenes batch k+1 needs, gathers its tiles, and packs the tensor
// while the trainer computes batch k. Which samples land in which batch
// is precision-independent (pure index math); only the packed tensor's
// element type differs, so a float32 training run streams half the batch
// bytes through the double buffer.
func TrainBatchesOf[S tensor.Scalar](s *Stream) (train.BatchSource[S], error) {
	if s.plan == nil {
		return nil, fmt.Errorf("pipeline: no TrainPlan configured")
	}
	s.ensureStarted()
	return &batchSource[S]{s: s}, nil
}

type batchSource[S tensor.Scalar] struct{ s *Stream }

type packed[S tensor.Scalar] struct {
	pb  *train.PackedBatch[S]
	err error
}

// Epoch implements train.BatchSource. The capacity-1 channel plus the
// producer working one batch ahead is the double buffer: at steady state
// one packed batch waits while the next is being assembled and the
// trainer consumes a third.
func (b *batchSource[S]) Epoch(epoch int) func() (*train.PackedBatch[S], error) {
	s := b.s
	plan := *s.cfg.Plan
	batches := train.BatchIndices(len(s.plan.trainTileIdx), plan.BatchSize, plan.BatchSeed, epoch)

	ch := make(chan packed[S], 1)
	go func() {
		defer close(ch)
		for _, idxs := range batches {
			global := make([]int, len(idxs))
			for i, j := range idxs {
				global[i] = s.plan.trainTileIdx[j]
			}
			tiles, err := s.gather(global)
			var pb *train.PackedBatch[S]
			if err == nil {
				samples := dataset.Samples(tiles, plan.Image, plan.Labels)
				xt, labels, terr := train.ToTensor[S](samples)
				if terr != nil {
					err = terr
				} else {
					pb = &train.PackedBatch[S]{X: xt, Labels: labels}
				}
			}
			select {
			case ch <- packed[S]{pb: pb, err: err}:
			case <-s.quit:
				return
			}
			if err != nil {
				return
			}
		}
	}()

	delivered := 0
	return func() (*train.PackedBatch[S], error) {
		it, ok := <-ch
		if !ok {
			if delivered < len(batches) {
				return nil, s.interruptErr()
			}
			return nil, nil
		}
		if it.err != nil {
			return nil, it.err
		}
		delivered++
		return it.pb, nil
	}
}

// interruptErr explains an epoch that ended before all its batches were
// delivered.
func (s *Stream) interruptErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return fmt.Errorf("pipeline: batch stream interrupted")
}

// planSamples gathers one of the plan's subsets as training samples.
func (s *Stream) planSamples(trainSubset bool) ([]train.Sample, error) {
	if s.plan == nil {
		return nil, fmt.Errorf("pipeline: no TrainPlan configured")
	}
	idx := s.plan.trainTileIdx
	if !trainSubset {
		idx = s.plan.testTileIdx
	}
	tiles, err := s.gather(idx)
	if err != nil {
		return nil, err
	}
	return dataset.Samples(tiles, s.cfg.Plan.Image, s.cfg.Plan.Labels), nil
}
