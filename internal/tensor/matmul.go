package tensor

import (
	"fmt"

	"seaice/internal/pool"
)

// The GEMM kernels below are the training engine's hot core, generic over
// the compute precision. They are register-blocked (4 output rows × 4
// k-steps for the straight and transposed-A products, 2×4 dot blocks for
// A×Bᵀ) and parallelized over disjoint output panels on the shared pool.
// Every C element still accumulates its k terms in ascending order through
// a single chain, so within one precision results are bit-identical to the
// serial reference kernels in ref.go at any worker count — the property
// tests assert exactly that for both instantiations. The float32
// instantiation moves half the bytes per block through the same blocking,
// which is where its speedup on a bandwidth-bound CPU comes from. The one
// deliberate semantic difference from the reference: zero entries of A are
// multiplied rather than skipped, which only matters for ±0 and non-finite
// inputs (the skip saved no time on dense He-initialized weights anyway).

// serialCutoff is the m·k·n volume below which a product runs inline on
// the calling goroutine: pool dispatch costs more than it saves there.
const serialCutoff = 1 << 15

// minPanel is the smallest per-task output panel width; narrower panels
// would spend more time on goroutine handoff than arithmetic.
const minPanel = 256

// MatMul computes C = A×B for A (m×k) and B (k×n) into a fresh tensor.
func MatMul[S Scalar](a, b *Tensor[S]) *Tensor[S] {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %v × %v", a.Shape, b.Shape))
	}
	c := New[S](a.Shape[0], b.Shape[1])
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes C = A×B into dst, which must be (m×n). dst is fully
// overwritten; it may not alias a or b. The product runs on the active
// float backend for S's kind (backend.go); the default is the blocked
// engine kernel below.
func MatMulInto[S Scalar](dst, a, b *Tensor[S]) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %v × %v", a.Shape, b.Shape))
	}
	m, n := a.Shape[0], b.Shape[1]
	if len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmul dst %v for %d×%d product", dst.Shape, m, n))
	}
	floatOps[S]().MatMulInto(dst, a, b)
}

// engineMatMulInto is the default float backend's A×B kernel; shapes are
// already validated by the public wrapper.
func engineMatMulInto[S Scalar](dst, a, b *Tensor[S]) {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	p := pool.Shared()
	if m*k*n <= serialCutoff || p.Workers() == 1 {
		matMulPanel(dst.Data, a.Data, b.Data, m, k, n, 0, n)
		return
	}
	p.MustMapRanges(n, minPanel, func(lo, hi int) {
		matMulPanel(dst.Data, a.Data, b.Data, m, k, n, lo, hi)
	})
}

// matMulPanel computes columns [jlo,jhi) of C = A×B. Rows are processed in
// blocks of four so each loaded B value feeds four accumulator chains, and
// k is unrolled by four so each C element is loaded and stored once per
// four multiply-adds.
func matMulPanel[S Scalar](c, a, b []S, m, k, n, jlo, jhi int) {
	var i int
	for i = 0; i+4 <= m; i += 4 {
		c0 := c[(i+0)*n+jlo : (i+0)*n+jhi]
		c1 := c[(i+1)*n+jlo : (i+1)*n+jhi]
		c2 := c[(i+2)*n+jlo : (i+2)*n+jhi]
		c3 := c[(i+3)*n+jlo : (i+3)*n+jhi]
		for j := range c0 {
			c0[j], c1[j], c2[j], c3[j] = 0, 0, 0, 0
		}
		a0 := a[(i+0)*k : (i+1)*k]
		a1 := a[(i+1)*k : (i+2)*k]
		a2 := a[(i+2)*k : (i+3)*k]
		a3 := a[(i+3)*k : (i+4)*k]
		var kk int
		for kk = 0; kk+4 <= k; kk += 4 {
			b0 := b[(kk+0)*n+jlo : (kk+0)*n+jhi]
			b1 := b[(kk+1)*n+jlo : (kk+1)*n+jhi]
			b2 := b[(kk+2)*n+jlo : (kk+2)*n+jhi]
			b3 := b[(kk+3)*n+jlo : (kk+3)*n+jhi]
			a00, a01, a02, a03 := a0[kk], a0[kk+1], a0[kk+2], a0[kk+3]
			a10, a11, a12, a13 := a1[kk], a1[kk+1], a1[kk+2], a1[kk+3]
			a20, a21, a22, a23 := a2[kk], a2[kk+1], a2[kk+2], a2[kk+3]
			a30, a31, a32, a33 := a3[kk], a3[kk+1], a3[kk+2], a3[kk+3]
			b1, b2, b3 = b1[:len(b0)], b2[:len(b0)], b3[:len(b0)]
			c0, c1, c2, c3 = c0[:len(b0)], c1[:len(b0)], c2[:len(b0)], c3[:len(b0)]
			for j := range b0 {
				bv0, bv1, bv2, bv3 := b0[j], b1[j], b2[j], b3[j]
				s := c0[j]
				s += a00 * bv0
				s += a01 * bv1
				s += a02 * bv2
				s += a03 * bv3
				c0[j] = s
				s = c1[j]
				s += a10 * bv0
				s += a11 * bv1
				s += a12 * bv2
				s += a13 * bv3
				c1[j] = s
				s = c2[j]
				s += a20 * bv0
				s += a21 * bv1
				s += a22 * bv2
				s += a23 * bv3
				c2[j] = s
				s = c3[j]
				s += a30 * bv0
				s += a31 * bv1
				s += a32 * bv2
				s += a33 * bv3
				c3[j] = s
			}
		}
		for ; kk < k; kk++ {
			brow := b[kk*n+jlo : kk*n+jhi]
			av0, av1, av2, av3 := a0[kk], a1[kk], a2[kk], a3[kk]
			c0, c1, c2, c3 = c0[:len(brow)], c1[:len(brow)], c2[:len(brow)], c3[:len(brow)]
			for j := range brow {
				bv := brow[j]
				c0[j] += av0 * bv
				c1[j] += av1 * bv
				c2[j] += av2 * bv
				c3[j] += av3 * bv
			}
		}
	}
	for ; i < m; i++ {
		crow := c[i*n+jlo : i*n+jhi]
		for j := range crow {
			crow[j] = 0
		}
		arow := a[i*k : (i+1)*k]
		var kk int
		for kk = 0; kk+4 <= k; kk += 4 {
			b0 := b[(kk+0)*n+jlo : (kk+0)*n+jhi]
			b1 := b[(kk+1)*n+jlo : (kk+1)*n+jhi]
			b2 := b[(kk+2)*n+jlo : (kk+2)*n+jhi]
			b3 := b[(kk+3)*n+jlo : (kk+3)*n+jhi]
			av0, av1, av2, av3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
			b1, b2, b3 = b1[:len(b0)], b2[:len(b0)], b3[:len(b0)]
			crow = crow[:len(b0)]
			for j := range b0 {
				s := crow[j]
				s += av0 * b0[j]
				s += av1 * b1[j]
				s += av2 * b2[j]
				s += av3 * b3[j]
				crow[j] = s
			}
		}
		for ; kk < k; kk++ {
			brow := b[kk*n+jlo : kk*n+jhi]
			av := arow[kk]
			for j := range brow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// MatMulSerialInto computes C = A×B into dst entirely on the calling
// goroutine — the same blocked kernel as MatMulInto without the pool
// dispatch. Inference sessions use it: they run one session per serving
// worker, so fanning a session's products out on the shared pool would
// oversubscribe the cores. Results are bit-identical to MatMulInto.
func MatMulSerialInto[S Scalar](dst, a, b *Tensor[S]) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %v × %v", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	if len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmul dst %v for %d×%d product", dst.Shape, m, n))
	}
	matMulPanel(dst.Data, a.Data, b.Data, m, k, n, 0, n)
}

// GemmSerial computes C = A×B on raw row-major slices (A m×k, B k×n, C
// m×n, C fully overwritten) entirely on the calling goroutine — the
// blocked panel kernel without shape bookkeeping. It exists for callers
// that run many small products over hot scratch (the Winograd transform
// domain) where per-call tensor headers would dominate. Results are
// bit-identical to MatMulInto on the same operands.
func GemmSerial[S Scalar](c, a, b []S, m, k, n int) {
	matMulPanel(c, a, b, m, k, n, 0, n)
}

// MatMulATB computes C = Aᵀ×B for A (k×m) and B (k×n) without forming the
// transpose: convolution backward passes need this product shape.
func MatMulATB[S Scalar](a, b *Tensor[S]) *Tensor[S] {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[0] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: matmulATB shape mismatch %v × %v", a.Shape, b.Shape))
	}
	c := New[S](a.Shape[1], b.Shape[1])
	MatMulATBInto(c, a, b)
	return c
}

// MatMulATBInto computes C = Aᵀ×B into dst, which must be (m×n) for
// A (k×m). dst is fully overwritten; it may not alias a or b. Runs on the
// active float backend for S's kind.
func MatMulATBInto[S Scalar](dst, a, b *Tensor[S]) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[0] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: matmulATB shape mismatch %v × %v", a.Shape, b.Shape))
	}
	m, n := a.Shape[1], b.Shape[1]
	if len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmulATB dst %v for %d×%d product", dst.Shape, m, n))
	}
	floatOps[S]().MatMulATBInto(dst, a, b)
}

// engineMatMulATBInto is the default float backend's Aᵀ×B kernel.
func engineMatMulATBInto[S Scalar](dst, a, b *Tensor[S]) {
	k, m, n := a.Shape[0], a.Shape[1], b.Shape[1]
	p := pool.Shared()
	if m*k*n <= serialCutoff || p.Workers() == 1 {
		matMulATBPanel(dst.Data, a.Data, b.Data, k, m, n, 0, n)
		return
	}
	p.MustMapRanges(n, minPanel, func(lo, hi int) {
		matMulATBPanel(dst.Data, a.Data, b.Data, k, m, n, lo, hi)
	})
}

// matMulATBPanel computes columns [jlo,jhi) of C = Aᵀ×B; identical
// blocking to matMulPanel with A elements gathered through their k×m
// layout.
func matMulATBPanel[S Scalar](c, a, b []S, k, m, n, jlo, jhi int) {
	var i int
	for i = 0; i+4 <= m; i += 4 {
		c0 := c[(i+0)*n+jlo : (i+0)*n+jhi]
		c1 := c[(i+1)*n+jlo : (i+1)*n+jhi]
		c2 := c[(i+2)*n+jlo : (i+2)*n+jhi]
		c3 := c[(i+3)*n+jlo : (i+3)*n+jhi]
		for j := range c0 {
			c0[j], c1[j], c2[j], c3[j] = 0, 0, 0, 0
		}
		var kk int
		for kk = 0; kk+4 <= k; kk += 4 {
			b0 := b[(kk+0)*n+jlo : (kk+0)*n+jhi]
			b1 := b[(kk+1)*n+jlo : (kk+1)*n+jhi]
			b2 := b[(kk+2)*n+jlo : (kk+2)*n+jhi]
			b3 := b[(kk+3)*n+jlo : (kk+3)*n+jhi]
			a00, a01, a02, a03 := a[(kk+0)*m+i], a[(kk+1)*m+i], a[(kk+2)*m+i], a[(kk+3)*m+i]
			a10, a11, a12, a13 := a[(kk+0)*m+i+1], a[(kk+1)*m+i+1], a[(kk+2)*m+i+1], a[(kk+3)*m+i+1]
			a20, a21, a22, a23 := a[(kk+0)*m+i+2], a[(kk+1)*m+i+2], a[(kk+2)*m+i+2], a[(kk+3)*m+i+2]
			a30, a31, a32, a33 := a[(kk+0)*m+i+3], a[(kk+1)*m+i+3], a[(kk+2)*m+i+3], a[(kk+3)*m+i+3]
			b1, b2, b3 = b1[:len(b0)], b2[:len(b0)], b3[:len(b0)]
			c0, c1, c2, c3 = c0[:len(b0)], c1[:len(b0)], c2[:len(b0)], c3[:len(b0)]
			for j := range b0 {
				bv0, bv1, bv2, bv3 := b0[j], b1[j], b2[j], b3[j]
				s := c0[j]
				s += a00 * bv0
				s += a01 * bv1
				s += a02 * bv2
				s += a03 * bv3
				c0[j] = s
				s = c1[j]
				s += a10 * bv0
				s += a11 * bv1
				s += a12 * bv2
				s += a13 * bv3
				c1[j] = s
				s = c2[j]
				s += a20 * bv0
				s += a21 * bv1
				s += a22 * bv2
				s += a23 * bv3
				c2[j] = s
				s = c3[j]
				s += a30 * bv0
				s += a31 * bv1
				s += a32 * bv2
				s += a33 * bv3
				c3[j] = s
			}
		}
		for ; kk < k; kk++ {
			brow := b[kk*n+jlo : kk*n+jhi]
			av0, av1, av2, av3 := a[kk*m+i], a[kk*m+i+1], a[kk*m+i+2], a[kk*m+i+3]
			c0, c1, c2, c3 = c0[:len(brow)], c1[:len(brow)], c2[:len(brow)], c3[:len(brow)]
			for j := range brow {
				bv := brow[j]
				c0[j] += av0 * bv
				c1[j] += av1 * bv
				c2[j] += av2 * bv
				c3[j] += av3 * bv
			}
		}
	}
	for ; i < m; i++ {
		crow := c[i*n+jlo : i*n+jhi]
		for j := range crow {
			crow[j] = 0
		}
		var kk int
		for kk = 0; kk+4 <= k; kk += 4 {
			b0 := b[(kk+0)*n+jlo : (kk+0)*n+jhi]
			b1 := b[(kk+1)*n+jlo : (kk+1)*n+jhi]
			b2 := b[(kk+2)*n+jlo : (kk+2)*n+jhi]
			b3 := b[(kk+3)*n+jlo : (kk+3)*n+jhi]
			av0, av1, av2, av3 := a[(kk+0)*m+i], a[(kk+1)*m+i], a[(kk+2)*m+i], a[(kk+3)*m+i]
			b1, b2, b3 = b1[:len(b0)], b2[:len(b0)], b3[:len(b0)]
			crow = crow[:len(b0)]
			for j := range b0 {
				s := crow[j]
				s += av0 * b0[j]
				s += av1 * b1[j]
				s += av2 * b2[j]
				s += av3 * b3[j]
				crow[j] = s
			}
		}
		for ; kk < k; kk++ {
			brow := b[kk*n+jlo : kk*n+jhi]
			av := a[kk*m+i]
			for j := range brow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// MatMulABT computes C = A×Bᵀ for A (m×k) and B (n×k).
func MatMulABT[S Scalar](a, b *Tensor[S]) *Tensor[S] {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("tensor: matmulABT shape mismatch %v × %v", a.Shape, b.Shape))
	}
	c := New[S](a.Shape[0], b.Shape[0])
	MatMulABTInto(c, a, b)
	return c
}

// MatMulABTInto computes C = A×Bᵀ into dst, which must be (m×n) for
// B (n×k). dst is fully overwritten; it may not alias a or b. Runs on the
// active float backend for S's kind.
func MatMulABTInto[S Scalar](dst, a, b *Tensor[S]) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("tensor: matmulABT shape mismatch %v × %v", a.Shape, b.Shape))
	}
	m, n := a.Shape[0], b.Shape[0]
	if len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmulABT dst %v for %d×%d product", dst.Shape, m, n))
	}
	floatOps[S]().MatMulABTInto(dst, a, b)
}

// engineMatMulABTInto is the default float backend's A×Bᵀ kernel.
func engineMatMulABTInto[S Scalar](dst, a, b *Tensor[S]) {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[0]
	p := pool.Shared()
	if m*k*n <= serialCutoff || p.Workers() == 1 {
		matMulABTRows(dst.Data, a.Data, b.Data, m, k, n, 0, m)
		return
	}
	p.MustMapRanges(m, 1, func(lo, hi int) {
		matMulABTRows(dst.Data, a.Data, b.Data, m, k, n, lo, hi)
	})
}

// matMulABTRows computes rows [ilo,ihi) of C = A×Bᵀ. Each C element is an
// independent dot product; processing two A rows against four B rows gives
// eight concurrent accumulator chains, which hides the floating-point add
// latency that throttles the naive single-chain dot product.
func matMulABTRows[S Scalar](c, a, b []S, m, k, n, ilo, ihi int) {
	var i int
	for i = ilo; i+2 <= ihi; i += 2 {
		ar0 := a[(i+0)*k : (i+1)*k]
		ar1 := a[(i+1)*k : (i+2)*k]
		cr0 := c[(i+0)*n : (i+1)*n]
		cr1 := c[(i+1)*n : (i+2)*n]
		var j int
		for j = 0; j+4 <= n; j += 4 {
			br0 := b[(j+0)*k : (j+1)*k]
			br1 := b[(j+1)*k : (j+2)*k]
			br2 := b[(j+2)*k : (j+3)*k]
			br3 := b[(j+3)*k : (j+4)*k]
			var s00, s01, s02, s03, s10, s11, s12, s13 S
			ar1b := ar1[:len(ar0)]
			br0b, br1b, br2b, br3b := br0[:len(ar0)], br1[:len(ar0)], br2[:len(ar0)], br3[:len(ar0)]
			for kk := range ar0 {
				av0, av1 := ar0[kk], ar1b[kk]
				bv0, bv1, bv2, bv3 := br0b[kk], br1b[kk], br2b[kk], br3b[kk]
				s00 += av0 * bv0
				s01 += av0 * bv1
				s02 += av0 * bv2
				s03 += av0 * bv3
				s10 += av1 * bv0
				s11 += av1 * bv1
				s12 += av1 * bv2
				s13 += av1 * bv3
			}
			cr0[j], cr0[j+1], cr0[j+2], cr0[j+3] = s00, s01, s02, s03
			cr1[j], cr1[j+1], cr1[j+2], cr1[j+3] = s10, s11, s12, s13
		}
		for ; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			var s0, s1 S
			for kk := 0; kk < k; kk++ {
				bv := brow[kk]
				s0 += ar0[kk] * bv
				s1 += ar1[kk] * bv
			}
			cr0[j], cr1[j] = s0, s1
		}
	}
	for ; i < ihi; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		var j int
		for j = 0; j+4 <= n; j += 4 {
			br0 := b[(j+0)*k : (j+1)*k]
			br1 := b[(j+1)*k : (j+2)*k]
			br2 := b[(j+2)*k : (j+3)*k]
			br3 := b[(j+3)*k : (j+4)*k]
			var s0, s1, s2, s3 S
			br0b, br1b, br2b, br3b := br0[:len(arow)], br1[:len(arow)], br2[:len(arow)], br3[:len(arow)]
			for kk := range arow {
				av := arow[kk]
				s0 += av * br0b[kk]
				s1 += av * br1b[kk]
				s2 += av * br2b[kk]
				s3 += av * br3b[kk]
			}
			crow[j], crow[j+1], crow[j+2], crow[j+3] = s0, s1, s2, s3
		}
		for ; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			var s S
			for kk := 0; kk < k; kk++ {
				s += arow[kk] * brow[kk]
			}
			crow[j] = s
		}
	}
}
