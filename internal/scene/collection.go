package scene

import (
	"fmt"

	"seaice/internal/noise"
)

// CollectionConfig describes a multi-scene acquisition campaign — the
// analogue of the paper's 66 large Ross Sea scenes with a natural mix of
// clear, lightly clouded, and heavily clouded conditions.
type CollectionConfig struct {
	Scenes int
	W, H   int
	Seed   uint64

	// ClearFraction of scenes get no atmosphere at all; the rest draw a
	// cloud bias uniformly from [HeavyBias, LightBias] (lower bias ⇒
	// more cloud).
	ClearFraction        float64
	LightBias, HeavyBias float64
}

// DefaultCollection mirrors the paper's campaign at experiment scale:
// 66 scenes of 512² (so 66×64 = 4224 tiles of 64², preserving the paper's
// tile count).
func DefaultCollection(seed uint64) CollectionConfig {
	return CollectionConfig{
		Scenes:        66,
		W:             512,
		H:             512,
		Seed:          seed,
		ClearFraction: 0.35,
		LightBias:     0.72,
		HeavyBias:     0.42,
	}
}

// GenerateCollection renders all scenes of a campaign. Scene i is fully
// determined by (cfg.Seed, i).
func GenerateCollection(cfg CollectionConfig) ([]*Scene, error) {
	if cfg.Scenes <= 0 {
		return nil, fmt.Errorf("scene: collection needs at least one scene, got %d", cfg.Scenes)
	}
	if cfg.HeavyBias > cfg.LightBias {
		return nil, fmt.Errorf("scene: HeavyBias %.2f must not exceed LightBias %.2f", cfg.HeavyBias, cfg.LightBias)
	}
	out := make([]*Scene, 0, cfg.Scenes)
	for i := 0; i < cfg.Scenes; i++ {
		sc, err := GenerateAt(cfg, i)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}

// GenerateAt renders scene index i of a campaign without materializing the
// others; used by the parallel loaders. It enforces the same campaign
// validation as GenerateCollection, so the streaming and batch paths
// reject identical inputs.
func GenerateAt(cfg CollectionConfig, i int) (*Scene, error) {
	if i < 0 || i >= cfg.Scenes {
		return nil, fmt.Errorf("scene: index %d outside campaign of %d scenes", i, cfg.Scenes)
	}
	if cfg.HeavyBias > cfg.LightBias {
		return nil, fmt.Errorf("scene: HeavyBias %.2f must not exceed LightBias %.2f", cfg.HeavyBias, cfg.LightBias)
	}
	rng := noise.NewRNG(cfg.Seed, uint64(i)+1)
	sceneSeed := rng.Uint64()

	sc := DefaultConfig(sceneSeed)
	sc.W, sc.H = cfg.W, cfg.H

	// Vary the ice regime a little from scene to scene so the dataset
	// covers open pack, consolidated ice, and marginal zones.
	sc.ThickThreshold = 0.52 + 0.12*rng.Float64()
	sc.ThinThreshold = sc.ThickThreshold - (0.12 + 0.1*rng.Float64())

	if rng.Float64() < cfg.ClearFraction {
		sc.Clouds = ClearClouds()
	} else {
		cl := DefaultClouds()
		cl.Bias = cfg.HeavyBias + (cfg.LightBias-cfg.HeavyBias)*rng.Float64()
		cl.OffsetX = 64 + rng.Intn(96)
		cl.OffsetY = 40 + rng.Intn(72)
		sc.Clouds = cl
	}
	return Generate(sc)
}
