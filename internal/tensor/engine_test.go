package tensor

import (
	"fmt"
	"testing"

	"seaice/internal/noise"
	"seaice/internal/pool"
)

// fillDense fills t with deterministic non-zero pseudo-random values. The
// engine kernels multiply zero A entries where the reference skips them —
// identical except for ±0 bit patterns — so the bit-for-bit properties are
// asserted on dense data, which is what weights and activations are.
func fillDense[S Scalar](t *Tensor[S], seed uint64) {
	rng := noise.NewRNG(seed, 0xe6e)
	for i := range t.Data {
		v := rng.NormFloat64()
		if v == 0 {
			v = 0.5
		}
		t.Data[i] = S(v)
	}
}

// withWorkers runs fn under each shared-pool size, restoring the default.
func withWorkers(t *testing.T, fn func(workers int)) {
	t.Helper()
	defer pool.SetSharedWorkers(0)
	for _, w := range []int{1, 3, 8} {
		pool.SetSharedWorkers(w)
		fn(w)
	}
}

func bitEqual[S Scalar](t *testing.T, label string, workers int, got, want *Tensor[S]) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s (workers=%d): shape %v, want %v", label, workers, got.Shape, want.Shape)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s (workers=%d): element %d = %g, reference %g", label, workers, i, float64(got.Data[i]), float64(want.Data[i]))
		}
	}
}

// testMatMulMatchesReference: the blocked/parallel GEMM must reproduce the
// serial reference bit-for-bit across degenerate, odd, non-square, and
// block-boundary-crossing shapes, at every pool size — per precision; the
// bit-identity guarantee is precision-scoped.
func testMatMulMatchesReference[S Scalar](t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{1, 1, 1},
		{1, 3, 2},
		{3, 1, 5},
		{2, 2, 2},
		{5, 7, 3},
		{4, 4, 4},
		{8, 129, 33},
		{7, 13, 517},
		{3, 5, 1031}, // crosses the parallel panel boundary with odd remainders
		{16, 72, 2048},
		{9, 27, 640},
	}
	for _, s := range shapes {
		a := New[S](s.m, s.k)
		b := New[S](s.k, s.n)
		at := New[S](s.k, s.m)
		bt := New[S](s.n, s.k)
		fillDense(a, uint64(s.m*1000+s.k))
		fillDense(b, uint64(s.k*1000+s.n))
		fillDense(at, uint64(s.m*77+s.n))
		fillDense(bt, uint64(s.n*31+s.k))
		wantAB := MatMulRef(a, b)
		wantATB := MatMulATBRef(at, b)
		wantABT := MatMulABTRef(a, bt)
		withWorkers(t, func(workers int) {
			label := fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n)
			bitEqual(t, "matmul "+label, workers, MatMul(a, b), wantAB)
			bitEqual(t, "matmulATB "+label, workers, MatMulATB(at, b), wantATB)
			bitEqual(t, "matmulABT "+label, workers, MatMulABT(a, bt), wantABT)
		})
	}
}

func TestMatMulMatchesReference(t *testing.T) {
	t.Run("f64", testMatMulMatchesReference[float64])
	t.Run("f32", testMatMulMatchesReference[float32])
}

// TestMatMulIntoReusesBuffer: Into variants must fully overwrite a dirty
// destination and not allocate when the buffer already fits.
func TestMatMulIntoReusesBuffer(t *testing.T) {
	a := New[float64](5, 9)
	b := New[float64](9, 21)
	fillDense(a, 1)
	fillDense(b, 2)
	want := MatMulRef(a, b)

	var buf *F64
	dst := Grow(&buf, 5, 21)
	for i := range dst.Data {
		dst.Data[i] = 1e300 // poison: stale values must not leak through
	}
	MatMulInto(dst, a, b)
	bitEqual(t, "into", pool.Shared().Workers(), dst, want)
	if Grow(&buf, 5, 21) != dst {
		t.Fatalf("Grow reallocated a buffer that already fit")
	}
	if Grow(&buf, 3, 7); buf != dst {
		t.Fatalf("Grow shrink should reuse the backing tensor")
	}
}

// testIm2ColCol2ImMatchReference: the striped unfold/fold must match the
// serial reference bit-for-bit across 1×1 images, non-square shapes,
// pad > 0, stride 2, and asymmetric kernels, at every pool size — per
// precision.
func testIm2ColCol2ImMatchReference[S Scalar](t *testing.T) {
	cases := []struct{ n, c, h, w, kh, kw, stride, pad int }{
		{1, 1, 1, 1, 1, 1, 1, 0},
		{1, 1, 1, 1, 3, 3, 1, 1},
		{2, 3, 4, 4, 3, 3, 1, 1},
		{1, 2, 5, 3, 3, 3, 1, 1},
		{2, 1, 6, 6, 2, 2, 2, 0},
		{1, 4, 7, 5, 3, 3, 2, 2},
		{3, 2, 4, 8, 1, 3, 1, 1},
		{1, 3, 9, 2, 3, 1, 1, 0},
		{2, 2, 8, 8, 5, 5, 1, 2},
	}
	for _, cs := range cases {
		x := New[S](cs.n, cs.c, cs.h, cs.w)
		fillDense(x, uint64(cs.c*100+cs.h*10+cs.w))
		wantCols := Im2ColRef(x, cs.kh, cs.kw, cs.stride, cs.pad)
		cols := wantCols.Clone()
		fillDense(cols, uint64(cs.h*13+cs.kw)) // arbitrary gradient-like data
		wantFold := Col2ImRef(cols, cs.n, cs.c, cs.h, cs.w, cs.kh, cs.kw, cs.stride, cs.pad)
		withWorkers(t, func(workers int) {
			label := fmt.Sprintf("n%dc%d %dx%d k%dx%d s%d p%d", cs.n, cs.c, cs.h, cs.w, cs.kh, cs.kw, cs.stride, cs.pad)
			bitEqual(t, "im2col "+label, workers, Im2Col(x, cs.kh, cs.kw, cs.stride, cs.pad), wantCols)
			bitEqual(t, "col2im "+label, workers, Col2Im(cols, cs.n, cs.c, cs.h, cs.w, cs.kh, cs.kw, cs.stride, cs.pad), wantFold)

			// Into variants over poisoned reusable buffers.
			var colsBuf, foldBuf *Tensor[S]
			dc := Grow(&colsBuf, wantCols.Shape...)
			df := Grow(&foldBuf, cs.n, cs.c, cs.h, cs.w)
			for i := range dc.Data {
				dc.Data[i] = S(1e30)
			}
			for i := range df.Data {
				df.Data[i] = S(1e30)
			}
			Im2ColInto(dc, x, cs.kh, cs.kw, cs.stride, cs.pad)
			Col2ImInto(df, cols, cs.kh, cs.kw, cs.stride, cs.pad)
			bitEqual(t, "im2colInto "+label, workers, dc, wantCols)
			bitEqual(t, "col2imInto "+label, workers, df, wantFold)
		})
	}
}

func TestIm2ColCol2ImMatchReference(t *testing.T) {
	t.Run("f64", testIm2ColCol2ImMatchReference[float64])
	t.Run("f32", testIm2ColCol2ImMatchReference[float32])
}
