package unet

import (
	"testing"

	"seaice/internal/noise"
	"seaice/internal/raster"
	"seaice/internal/tensor"
)

// randInput builds a deterministic pseudo-random NCHW input.
func randInput(n, c, h, w int, seed uint64) *tensor.F64 {
	x := tensor.New[float64](n, c, h, w)
	rng := noise.NewRNG(seed, 0xbeef)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	return x
}

// TestSessionMatchesModel checks that the inference session reproduces
// the training-path forward exactly across configurations and batch
// sizes: identical argmax labels and logits within float tolerance.
func TestSessionMatchesModel(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		n, sz int
	}{
		{"fast-1x32", FastConfig(7), 1, 32},
		{"fast-4x32", FastConfig(7), 4, 32},
		{"fast-3x16", FastConfig(8), 3, 16},
		{"depth1-2x8", Config{Depth: 1, BaseChannels: 4, InChannels: 3, Classes: 3, DropoutRate: 0.1, Seed: 9}, 2, 8},
		{"depth2-min-8", Config{Depth: 2, BaseChannels: 4, InChannels: 3, Classes: 4, DropoutRate: 0, Seed: 10}, 2, 8},
		{"depth4-1x16", Config{Depth: 4, BaseChannels: 4, InChannels: 3, Classes: 3, DropoutRate: 0.2, Seed: 11}, 1, 16},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := New[float64](tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			x := randInput(tc.n, tc.cfg.InChannels, tc.sz, tc.sz, 42)
			want := m.Forward(x, false)
			s := NewSession(m)
			got, err := s.Forward(x)
			if err != nil {
				t.Fatal(err)
			}
			if !got.SameShape(want) {
				t.Fatalf("shape %v, want %v", got.Shape, want.Shape)
			}
			for i := range want.Data {
				d := got.Data[i] - want.Data[i]
				if d < -1e-9 || d > 1e-9 {
					t.Fatalf("logit %d: session %g, model %g", i, got.Data[i], want.Data[i])
				}
			}
			wantPred := m.Predict(x)
			gotPred, err := s.Predict(x)
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantPred {
				if gotPred[i] != wantPred[i] {
					t.Fatalf("pixel %d: session class %d, model class %d", i, gotPred[i], wantPred[i])
				}
			}
		})
	}
}

// TestSessionBufferReuse runs mixed batch shapes through one session to
// confirm the grow-only buffers do not leak state between calls.
func TestSessionBufferReuse(t *testing.T) {
	m, err := New[float64](FastConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(m)
	for _, shape := range []struct{ n, sz int }{{4, 32}, {1, 32}, {2, 16}, {4, 32}} {
		x := randInput(shape.n, 3, shape.sz, shape.sz, uint64(shape.n*100+shape.sz))
		want := m.Predict(x)
		got, err := s.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch %dx%d: pixel %d mismatch after reuse", shape.n, shape.sz, i)
			}
		}
	}
}

// TestSessionPredictTiles checks the raster-level batch API against the
// per-tile path.
func TestSessionPredictTiles(t *testing.T) {
	m, err := New[float64](FastConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	rng := noise.NewRNG(77, 0x7e57)
	tiles := make([]*raster.RGB, 5)
	for i := range tiles {
		img := raster.NewRGB(16, 16)
		for p := range img.Pix {
			img.Pix[p] = uint8(rng.Uint64())
		}
		tiles[i] = img
	}
	s := NewSession(m)
	got, err := s.PredictTiles(tiles)
	if err != nil {
		t.Fatal(err)
	}
	for i, img := range tiles {
		single, err := s.PredictTiles([]*raster.RGB{img})
		if err != nil {
			t.Fatal(err)
		}
		for p := range got[i].Pix {
			if got[i].Pix[p] != single[0].Pix[p] {
				t.Fatalf("tile %d pixel %d: batched %d, single %d", i, p, got[i].Pix[p], single[0].Pix[p])
			}
		}
	}
}

// TestSessionRejectsBadInput covers the session's validation paths.
func TestSessionRejectsBadInput(t *testing.T) {
	m, err := New[float64](FastConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(m)
	if _, err := s.Forward(randInput(1, 2, 16, 16, 1)); err == nil {
		t.Fatal("expected channel-mismatch error")
	}
	if _, err := s.Forward(randInput(1, 3, 12, 12, 1)); err == nil {
		t.Fatal("expected divisibility error")
	}
	if _, err := s.PredictTiles(nil); err == nil {
		t.Fatal("expected empty-batch error")
	}
	if _, err := s.PredictTiles([]*raster.RGB{raster.NewRGB(16, 16), raster.NewRGB(8, 8)}); err == nil {
		t.Fatal("expected mixed-size error")
	}
}
