// Post-training quantization primitives: the affine maps between float
// tensors and the int8/uint8 domains the quantized inference path computes
// in, and the fixed-point requantization arithmetic that keeps that path
// fully integer (and therefore bit-deterministic across hosts, backends,
// and worker counts).
//
// Scheme (the "int8 rung" of the precision ladder, ARCHITECTURE.md):
//
//   - Weights: per-output-channel symmetric int8. Channel oc of a weight
//     matrix with row max-abs A quantizes with scale s = A/QuantMax, so
//     w ≈ s·wq with wq ∈ [−127, 127]. Symmetry (no zero-point) keeps the
//     GEMM a plain integer product.
//   - Activations: uint8 restricted to [0, ActMax] = [0, 127] — one bit
//     below full u8 range, chosen so the AVX2 VPMADDUBSW kernel's s16
//     pair-sums can never saturate (2·127·127 = 32258 < 32767 ⇒ exact).
//     An activation tensor with calibrated range [lo, hi] maps through
//     x ≈ s·(q − z): post-ReLU tensors use z = 0, s = hi/ActMax; signed
//     tensors (up-conv outputs) use an affine zero-point.
//   - Accumulation: int32, exact. A k-tap dot of u8∈[0,127] against
//     s8∈[−127,127] is bounded by k·127·127, so any k ≤
//     Int8AccumBoundTaps is overflow-free; layers assert this.
//   - Requantization: per-output-channel fixed-point multiplier (m, shift)
//     with m normalized to [2³⁰, 2³¹), applied in int64 with
//     round-half-away-from-zero. No float touches the hot path.
//
// Error model, documented here and property-tested in quant_test.go: the
// quantization step ("ULP") of a channel with scale s is s itself, and for
// any x inside the calibrated range |dequant(quant(x)) − x| ≤ s/2 + eps
// where eps covers the float rounding of the scale computation — see
// QuantRoundTripBound.

package tensor

import (
	"fmt"
	"math"

	"seaice/internal/pool"
)

const (
	// QuantMax is the largest quantized magnitude on both sides of the
	// product: weights span [−QuantMax, QuantMax], activations
	// [0, QuantMax].
	QuantMax = 127

	// Int8AccumBoundTaps is the largest dot-product length k for which
	// the int32 accumulator provably cannot overflow:
	// k·127·127 ≤ 2³¹−1 ⇒ k ≤ 133152. The deepest paper-config layer
	// needs k = 9·1024 = 9216, three orders of magnitude inside the
	// bound; quantized layer constructors reject anything larger.
	Int8AccumBoundTaps = (1<<31 - 1) / (QuantMax * QuantMax)
)

// ActQuant is the affine quantization of one activation tensor:
// x ≈ Scale·(q − Zero) with q ∈ [0, QuantMax]. Post-ReLU tensors have
// Zero = 0; tensors that can go negative (up-conv outputs) get a nonzero
// zero-point so their range still lands in the unsigned domain.
type ActQuant struct {
	Scale float64
	Zero  uint8
}

// ActParams derives the activation quantization for a calibrated value
// range [lo, hi]. Degenerate ranges (everything ≤ 0, or hi == lo) still
// produce a valid positive scale so downstream division is safe.
func ActParams(lo, hi float64) ActQuant {
	if lo > 0 {
		lo = 0 // the representable range always includes exact zero
	}
	if hi < lo {
		hi = lo
	}
	span := hi - lo
	if span <= 0 || math.IsNaN(span) || math.IsInf(span, 0) {
		return ActQuant{Scale: 1.0 / QuantMax}
	}
	s := span / QuantMax
	z := int(math.Round(-lo / s))
	if z < 0 {
		z = 0
	} else if z > QuantMax {
		z = QuantMax
	}
	return ActQuant{Scale: s, Zero: uint8(z)}
}

// Quantize maps one float value into the tensor's uint8 domain,
// round-half-away-from-zero, clamped to [0, QuantMax].
func (a ActQuant) Quantize(x float64) uint8 {
	q := math.Round(x/a.Scale) + float64(a.Zero)
	if q < 0 {
		return 0
	}
	if q > QuantMax {
		return QuantMax
	}
	return uint8(q)
}

// Dequantize maps a quantized value back to float.
func (a ActQuant) Dequantize(q uint8) float64 {
	return a.Scale * (float64(q) - float64(a.Zero))
}

// QuantRoundTripBound is the documented per-channel error bound the
// round-trip property test asserts: for x within the calibrated range of
// a channel with quantization step (scale) s,
//
//	|dequant(quant(x)) − x| ≤ s · (1/2 + 2⁻⁴³)
//
// Half a quantization step is the real-arithmetic bound; the s·2⁻⁴³ term
// covers float64 rounding. The quantities involved (x, s·(q−z)) are as
// large as QuantMax·s, so their individual rounding errors reach
// ~127·s·2⁻⁵² ≈ s·2⁻⁴⁵ — and near the range edges they cancel against a
// result of order s/2, where that absolute error is NOT small relative
// to the result. 2⁻⁴³ leaves a 4× margin over the worst compounding.
func QuantRoundTripBound(scale float64) float64 {
	return scale * (0.5 + 0x1p-43)
}

// QuantizeActs quantizes src through a into dst (same length), splitting
// rows across the shared pool. Each element is independent, so the result
// is bit-identical at any worker count — the property test runs it at
// 1/3/4 workers and byte-compares.
func QuantizeActs(dst []uint8, src []float64, a ActQuant) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: QuantizeActs length mismatch %d vs %d", len(dst), len(src)))
	}
	pool.Shared().MustMapRanges(len(src), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = a.Quantize(src[i])
		}
	})
}

// DequantizeActs maps dst[i] = a.Dequantize(src[i]); the parallel inverse
// of QuantizeActs with the same worker-count-independence guarantee.
func DequantizeActs(dst []float64, src []uint8, a ActQuant) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: DequantizeActs length mismatch %d vs %d", len(dst), len(src)))
	}
	pool.Shared().MustMapRanges(len(src), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = a.Dequantize(src[i])
		}
	})
}

// QuantizeWeightsPerChannel quantizes a row-major (rows × k) float weight
// matrix symmetrically per row (output channel): row r gets scale
// scales[r] = maxAbs(row)/QuantMax and q[r·k+i] = round(w[r·k+i]/scales[r]).
// An all-zero row gets scale 1 (its quantized row is all zeros either
// way). Rows are independent and each is processed serially, so the
// result is bit-identical at any worker count.
func QuantizeWeightsPerChannel(w []float64, rows, k int) (q []int8, scales []float64) {
	if len(w) != rows*k {
		panic(fmt.Sprintf("tensor: QuantizeWeightsPerChannel %d values for %d×%d", len(w), rows, k))
	}
	q = make([]int8, rows*k)
	scales = make([]float64, rows)
	pool.Shared().MustMapRanges(rows, 1, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			row := w[r*k : (r+1)*k]
			maxAbs := 0.0
			for _, v := range row {
				if a := math.Abs(v); a > maxAbs {
					maxAbs = a
				}
			}
			s := 1.0
			if maxAbs > 0 {
				s = maxAbs / QuantMax
			}
			scales[r] = s
			qrow := q[r*k : (r+1)*k]
			for i, v := range row {
				qv := math.Round(v / s)
				if qv > QuantMax {
					qv = QuantMax
				} else if qv < -QuantMax {
					qv = -QuantMax
				}
				qrow[i] = int8(qv)
			}
		}
	})
	return q, scales
}

// Requant is one output channel's fixed-point requantization: the real
// multiplier M = s_in·s_w/s_out encoded as M = m·2⁻ᵉ with m ∈ [2³⁰, 2³¹)
// so that Apply computes round(v·M) in pure int64 arithmetic.
type Requant struct {
	M     int32
	Shift uint8
}

// NewRequant encodes the real multiplier M ∈ (0, 1] as fixed point. The
// quantized stack always has M ≤ 1 (the output scale absorbs at least the
// input magnitude); multipliers so small they vanish at int32 precision
// round to zero output, which the encoding handles by saturating Shift.
func NewRequant(M float64) Requant {
	if !(M > 0) || math.IsInf(M, 0) {
		panic(fmt.Sprintf("tensor: requant multiplier %v out of (0, +inf)", M))
	}
	frac, exp := math.Frexp(M) // M = frac·2^exp, frac ∈ [0.5, 1)
	m := int64(math.Round(frac * (1 << 31)))
	if m == 1<<31 { // frac rounded up to exactly 1.0
		m >>= 1
		exp++
	}
	// Apply computes (v·m) >> shift, so shift = 31 − exp.
	shift := 31 - exp
	if shift < 1 {
		panic(fmt.Sprintf("tensor: requant multiplier %v ≥ 2³⁰ unsupported", M))
	}
	for shift > 62 { // too small to matter: renormalize m toward zero
		m >>= 1
		shift--
		if m == 0 {
			shift = 62
			break
		}
	}
	return Requant{M: int32(m), Shift: uint8(shift)}
}

// Apply computes round(v·M) with round-half-up in exact int64 arithmetic:
// (v·m + 2^(shift−1)) >> shift. Accumulators are bounded by
// Int8AccumBoundTaps·127·127 < 2³¹ and m < 2³¹, so the product fits int64
// with bits to spare.
func (r Requant) Apply(v int32) int32 {
	p := int64(v)*int64(r.M) + 1<<(r.Shift-1)
	return int32(p >> r.Shift)
}

// RequantClamp applies r and clamps into the activation domain
// [0, QuantMax] around zero-point z — the fused requantize+ReLU every
// quantized conv output passes through (for post-ReLU tensors z = 0 and
// the lower clamp IS the ReLU).
func RequantClamp(v int32, r Requant, z uint8) uint8 {
	y := r.Apply(v) + int32(z)
	if y < 0 {
		return 0
	}
	if y > QuantMax {
		return QuantMax
	}
	return uint8(y)
}
