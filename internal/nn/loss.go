package nn

import (
	"fmt"
	"math"

	"seaice/internal/tensor"
)

// SoftmaxCrossEntropy is the per-pixel multi-class loss of the paper's
// U-Net: a softmax over the class channel followed by categorical
// cross-entropy against integer labels, averaged over all pixels of the
// batch. Forward returns the mean loss; Backward returns dL/dlogits
// (softmax − one-hot)/numPixels, the standard fused gradient. The
// exponentials and the loss accumulation always run in float64 — only
// the stored probabilities and the returned gradient take the layer
// precision S, so the float32 loss differs from float64 by rounding of
// per-pixel probabilities, not by unstable exp/log arithmetic.
type SoftmaxCrossEntropy[S tensor.Scalar] struct {
	probs   *tensor.Tensor[S]
	gradBuf *tensor.Tensor[S]
	labels  []uint8
}

// Loss computes the mean cross-entropy of logits (N,C,H,W) against
// labels (length N·H·W, class per pixel in row-major image order).
func (s *SoftmaxCrossEntropy[S]) Loss(logits *tensor.Tensor[S], labels []uint8) (float64, error) {
	if len(logits.Shape) != 4 {
		return 0, fmt.Errorf("nn: loss expects NCHW logits, got %v", logits.Shape)
	}
	n, c, h, w := logits.Shape[0], logits.Shape[1], logits.Shape[2], logits.Shape[3]
	if len(labels) != n*h*w {
		return 0, fmt.Errorf("nn: %d labels for %d pixels", len(labels), n*h*w)
	}
	plane := h * w
	s.probs = tensor.Grow(&s.probs, n, c, h, w)
	s.labels = labels

	total := 0.0
	for img := 0; img < n; img++ {
		for p := 0; p < plane; p++ {
			// softmax over channel dim with max-shift stability
			maxv := math.Inf(-1)
			for ch := 0; ch < c; ch++ {
				v := float64(logits.Data[(img*c+ch)*plane+p])
				if v > maxv {
					maxv = v
				}
			}
			sum := 0.0
			for ch := 0; ch < c; ch++ {
				e := math.Exp(float64(logits.Data[(img*c+ch)*plane+p]) - maxv)
				s.probs.Data[(img*c+ch)*plane+p] = S(e)
				sum += e
			}
			lab := int(labels[img*plane+p])
			if lab >= c {
				return 0, fmt.Errorf("nn: label %d out of range for %d classes", lab, c)
			}
			for ch := 0; ch < c; ch++ {
				s.probs.Data[(img*c+ch)*plane+p] = S(float64(s.probs.Data[(img*c+ch)*plane+p]) / sum)
			}
			pTrue := float64(s.probs.Data[(img*c+lab)*plane+p])
			if pTrue < 1e-12 {
				pTrue = 1e-12
			}
			total += -math.Log(pTrue)
		}
	}
	return total / float64(n*plane), nil
}

// Grad returns dL/dlogits for the last Loss call.
func (s *SoftmaxCrossEntropy[S]) Grad() *tensor.Tensor[S] {
	if s.probs == nil {
		panic("nn: Grad before Loss")
	}
	n, c := s.probs.Shape[0], s.probs.Shape[1]
	plane := s.probs.Shape[2] * s.probs.Shape[3]
	g := tensor.Grow(&s.gradBuf, s.probs.Shape...)
	copy(g.Data, s.probs.Data)
	inv := 1 / float64(n*plane)
	for img := 0; img < n; img++ {
		for p := 0; p < plane; p++ {
			lab := int(s.labels[img*plane+p])
			g.Data[(img*c+lab)*plane+p] -= 1
		}
	}
	g.Scale(S(inv))
	return g
}

// Predict returns the argmax class per pixel of logits (N,C,H,W) as a
// flat slice in image order — U-Net inference output.
func Predict[S tensor.Scalar](logits *tensor.Tensor[S]) []uint8 {
	n, c := logits.Shape[0], logits.Shape[1]
	plane := logits.Shape[2] * logits.Shape[3]
	out := make([]uint8, n*plane)
	for img := 0; img < n; img++ {
		for p := 0; p < plane; p++ {
			best, bv := 0, logits.Data[img*c*plane+p]
			for ch := 1; ch < c; ch++ {
				v := logits.Data[(img*c+ch)*plane+p]
				if v > bv {
					best, bv = ch, v
				}
			}
			out[img*plane+p] = uint8(best)
		}
	}
	return out
}
