package nn

import (
	"fmt"
	"math"

	"seaice/internal/noise"
	"seaice/internal/pool"
	"seaice/internal/tensor"
)

// Conv2D is a same-padded 2-D convolution with bias, the workhorse of the
// U-Net's double-convolution blocks (kernel 3×3, stride 1 in the paper).
//
// The training engine runs the paper's two kernel shapes — 3×3 stride-1
// "same" and the final 1×1 — through direct NCHW kernels (kernels.go):
// forward and the weight gradient never materialize an im2col matrix;
// the 3×3 input gradient still builds a dcols scratch (Wᵀ×dout folded by
// Col2Im), and other shapes fall back to im2col plus the blocked
// parallel GEMM. All intermediates live in grow-only scratch buffers
// owned by the layer, so steady-state training steps allocate nothing. A
// layer supports one in-flight forward/backward pair at a time (see the
// package comment); outputs alias layer-owned memory and are valid until
// the layer's next Forward.
type Conv2D[S tensor.Scalar] struct {
	name             string
	InC, OutC        int
	KH, KW           int
	Stride, Pad      int
	Weight           *Param[S] // (OutC, InC·KH·KW)
	Bias             *Param[S] // (OutC)
	x                *tensor.Tensor[S]
	cols             *tensor.Tensor[S]
	outH, outW, numN int

	// Grow-only scratch buffers, reused across steps.
	colsBuf, outBuf, yBuf    *tensor.Tensor[S]
	doutBuf, dwBuf, dcolsBuf *tensor.Tensor[S]
	dxBuf                    *tensor.Tensor[S]

	// wino is the lazily built F(4×4,3×3) transform engine the float32
	// instantiation routes its 3×3 forward and input gradient through
	// (2.25× fewer multiplies; tolerance-scoped, see Winograd). float64
	// layers never touch it — the master path keeps the direct kernels'
	// exact accumulation order.
	wino *Winograd[S]
}

// winogradOK reports whether this layer call takes the float32 Winograd
// fast path: float32 scalar, the 3×3 same-padded shape, and a plane the
// 4×4 tiling covers.
func (c *Conv2D[S]) winogradOK(h, w int) bool {
	return tensor.IsF32[S]() && c.direct3x3() && h%4 == 0 && w%4 == 0
}

// winograd returns the layer's transform engine, building it on first
// use (non-static: weights move every step, so filters re-transform per
// call).
func (c *Conv2D[S]) winograd() *Winograd[S] {
	if c.wino == nil {
		c.wino = NewWinograd[S](false)
	}
	return c.wino
}

// NewConv2D builds a convolution with He-normal initialization (the
// standard choice before ReLU). Pad defaults to "same" for stride 1.
func NewConv2D[S tensor.Scalar](name string, inC, outC, k int, rng *noise.RNG) *Conv2D[S] {
	c := &Conv2D[S]{
		name: name,
		InC:  inC, OutC: outC,
		KH: k, KW: k,
		Stride: 1, Pad: k / 2,
	}
	c.Weight = &Param[S]{
		Name: name + ".weight",
		W:    tensor.New[S](outC, inC*k*k),
		Grad: tensor.New[S](outC, inC*k*k),
	}
	std := heStd(inC * k * k)
	c.Weight.W.FillRandn(rng, std)
	c.Bias = &Param[S]{
		Name: name + ".bias",
		W:    tensor.New[S](outC),
		Grad: tensor.New[S](outC),
	}
	return c
}

func heStd(fanIn int) float64 {
	if fanIn <= 0 {
		return 0.01
	}
	return math.Sqrt(2 / float64(fanIn))
}

// Name implements Layer.
func (c *Conv2D[S]) Name() string { return c.name }

// Params implements Layer.
func (c *Conv2D[S]) Params() []*Param[S] { return []*Param[S]{c.Weight, c.Bias} }

// direct3x3 reports whether the layer can run the fused 3×3 kernel.
func (c *Conv2D[S]) direct3x3() bool {
	return c.KH == 3 && c.KW == 3 && c.Stride == 1 && c.Pad == 1
}

// direct1x1 reports whether the layer can run the fused 1×1 kernel.
func (c *Conv2D[S]) direct1x1() bool {
	return c.KH == 1 && c.KW == 1 && c.Stride == 1 && c.Pad == 0
}

// Forward computes y = W·im2col(x) + b (conceptually; the common kernel
// shapes never build the im2col matrix).
func (c *Conv2D[S]) Forward(x *tensor.Tensor[S], train bool) *tensor.Tensor[S] {
	if len(x.Shape) != 4 || x.Shape[1] != c.InC {
		panic(fmt.Sprintf("nn: %s expects (N,%d,H,W), got %v", c.name, c.InC, x.Shape))
	}
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	c.outH = (h+2*c.Pad-c.KH)/c.Stride + 1
	c.outW = (w+2*c.Pad-c.KW)/c.Stride + 1
	c.numN = n
	if legacyKernels.Load() {
		return c.forwardLegacy(x, n, h, w)
	}
	c.x = x

	switch {
	case c.direct3x3():
		y := tensor.Grow(&c.yBuf, n, c.OutC, c.outH, c.outW)
		if c.winogradOK(h, w) {
			c.winograd().ConvBatch(pool.Shared(), c, x.Data, n, h, w, y.Data, false)
			return y
		}
		Conv3x3Planes(pool.Shared(), c, x.Data, c.InC, nil, 0, n, h, w, y.Data, false)
		return y
	case c.direct1x1():
		y := tensor.Grow(&c.yBuf, n, c.OutC, c.outH, c.outW)
		Conv1x1Planes(pool.Shared(), c, x.Data, c.InC, n, h, w, y.Data)
		return y
	}

	// General shape: im2col into a reused buffer, blocked GEMM, then bias
	// and reorder (OutC, N, OH·OW) → (N, OutC, OH, OW).
	cols := tensor.Grow(&c.colsBuf, c.InC*c.KH*c.KW, n*c.outH*c.outW)
	tensor.Im2ColInto(cols, x, c.KH, c.KW, c.Stride, c.Pad)
	c.cols = cols
	out := tensor.Grow(&c.outBuf, c.OutC, n*c.outH*c.outW)
	tensor.MatMulInto(out, c.Weight.W, cols)
	y := tensor.Grow(&c.yBuf, n, c.OutC, c.outH, c.outW)
	plane := c.outH * c.outW
	for oc := 0; oc < c.OutC; oc++ {
		b := c.Bias.W.Data[oc]
		for img := 0; img < n; img++ {
			src := out.Data[oc*n*plane+img*plane : oc*n*plane+(img+1)*plane]
			dst := y.Data[(img*c.OutC+oc)*plane : (img*c.OutC+oc+1)*plane]
			for i, v := range src {
				dst[i] = v + b
			}
		}
	}
	return y
}

// Backward computes input, weight, and bias gradients. The returned
// gradient aliases layer-owned memory, valid until the next Backward.
func (c *Conv2D[S]) Backward(dy *tensor.Tensor[S]) *tensor.Tensor[S] {
	if legacyKernels.Load() {
		return c.backwardLegacy(dy)
	}
	n, plane := c.numN, c.outH*c.outW
	// reorder dy (N,OutC,OH,OW) → (OutC, N·OH·OW)
	dout := tensor.Grow(&c.doutBuf, c.OutC, n*plane)
	for oc := 0; oc < c.OutC; oc++ {
		for img := 0; img < n; img++ {
			src := dy.Data[(img*c.OutC+oc)*plane : (img*c.OutC+oc+1)*plane]
			dst := dout.Data[oc*n*plane+img*plane : oc*n*plane+(img+1)*plane]
			copy(dst, src)
		}
	}

	// bias gradient: sum over positions
	for oc := 0; oc < c.OutC; oc++ {
		var sum S
		for _, v := range dout.Data[oc*n*plane : (oc+1)*n*plane] {
			sum += v
		}
		c.Bias.Grad.Data[oc] += sum
	}

	h, w := c.x.Shape[2], c.x.Shape[3]

	// weight gradient
	switch {
	case c.direct3x3():
		conv3x3WeightGrad(c, c.x.Data, dout.Data, n, h, w)
	case c.direct1x1():
		conv1x1WeightGrad(c, c.x.Data, dout.Data, n, h, w)
	default:
		dw := tensor.Grow(&c.dwBuf, c.OutC, c.InC*c.KH*c.KW)
		tensor.MatMulABTInto(dw, dout, c.cols)
		c.Weight.Grad.AddInPlace(dw)
	}

	// input gradient
	dx := tensor.Grow(&c.dxBuf, n, c.InC, h, w)
	if c.direct1x1() {
		conv1x1InputGrad(c, dout.Data, n, h, w, dx.Data)
		return dx
	}
	if c.winogradOK(h, w) {
		c.winograd().InputGradBatch(pool.Shared(), c, dout.Data, n, h, w, dx.Data)
		return dx
	}
	dcols := tensor.Grow(&c.dcolsBuf, c.InC*c.KH*c.KW, n*plane)
	tensor.MatMulATBInto(dcols, c.Weight.W, dout)
	tensor.Col2ImInto(dx, dcols, c.KH, c.KW, c.Stride, c.Pad)
	return dx
}

// ConvTranspose2x2 is the paper's "up-convolution": a 2×2 transposed
// convolution with stride 2 that doubles spatial resolution and halves
// the channel count on the U-Net's expansion path. Like Conv2D it owns
// grow-only scratch buffers and allocates nothing at steady state.
type ConvTranspose2x2[S tensor.Scalar] struct {
	name      string
	InC, OutC int
	Weight    *Param[S] // (InC, OutC·2·2)
	Bias      *Param[S] // (OutC)
	x         *tensor.Tensor[S]

	yBuf, dxBuf *tensor.Tensor[S]
}

// NewConvTranspose2x2 builds the up-convolution with He initialization.
func NewConvTranspose2x2[S tensor.Scalar](name string, inC, outC int, rng *noise.RNG) *ConvTranspose2x2[S] {
	u := &ConvTranspose2x2[S]{name: name, InC: inC, OutC: outC}
	u.Weight = &Param[S]{
		Name: name + ".weight",
		W:    tensor.New[S](inC, outC*4),
		Grad: tensor.New[S](inC, outC*4),
	}
	u.Weight.W.FillRandn(rng, heStd(inC))
	u.Bias = &Param[S]{
		Name: name + ".bias",
		W:    tensor.New[S](outC),
		Grad: tensor.New[S](outC),
	}
	return u
}

// Name implements Layer.
func (u *ConvTranspose2x2[S]) Name() string { return u.name }

// Params implements Layer.
func (u *ConvTranspose2x2[S]) Params() []*Param[S] { return []*Param[S]{u.Weight, u.Bias} }

// Forward scatters each input pixel into a 2×2 output block: with stride
// 2 and kernel 2 the blocks do not overlap, so the transposed convolution
// reduces to a per-pixel linear map from InC to OutC·4.
func (u *ConvTranspose2x2[S]) Forward(x *tensor.Tensor[S], train bool) *tensor.Tensor[S] {
	if len(x.Shape) != 4 || x.Shape[1] != u.InC {
		panic(fmt.Sprintf("nn: %s expects (N,%d,H,W), got %v", u.name, u.InC, x.Shape))
	}
	if legacyKernels.Load() {
		return u.forwardLegacy(x)
	}
	u.x = x
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	y := tensor.Grow(&u.yBuf, n, u.OutC, 2*h, 2*w)
	ConvT2x2Planes(pool.Shared(), u, x.Data, n, h, w, y.Data)
	return y
}

// Backward gathers gradients from each 2×2 block. Input channels own
// disjoint slices of the weight gradient and of dx, so the channel loop
// runs on the shared pool; per gradient element the accumulation order
// (images ascending, rows ascending) matches the serial reference.
func (u *ConvTranspose2x2[S]) Backward(dy *tensor.Tensor[S]) *tensor.Tensor[S] {
	if legacyKernels.Load() {
		return u.backwardLegacy(dy)
	}
	n, h, w := u.x.Shape[0], u.x.Shape[2], u.x.Shape[3]
	dx := tensor.Grow(&u.dxBuf, n, u.InC, h, w)
	dx.Zero()
	plane := 4 * h * w

	// bias gradient: per out-channel, images ascending as in the reference
	for oc := 0; oc < u.OutC; oc++ {
		for img := 0; img < n; img++ {
			dyp := dy.Data[(img*u.OutC+oc)*plane : (img*u.OutC+oc+1)*plane]
			var sum S
			for _, v := range dyp {
				sum += v
			}
			u.Bias.Grad.Data[oc] += sum
		}
	}

	xd, dyd := u.x.Data, dy.Data
	poolMapChannels(u.InC, func(ic int) {
		wrow := u.Weight.W.Data[ic*u.OutC*4 : (ic+1)*u.OutC*4]
		growSlice := u.Weight.Grad.Data[ic*u.OutC*4 : (ic+1)*u.OutC*4]
		for img := 0; img < n; img++ {
			xp := xd[(img*u.InC+ic)*h*w : (img*u.InC+ic+1)*h*w]
			dxp := dx.Data[(img*u.InC+ic)*h*w : (img*u.InC+ic+1)*h*w]
			for oc := 0; oc < u.OutC; oc++ {
				k := wrow[oc*4 : oc*4+4]
				k0, k1, k2, k3 := k[0], k[1], k[2], k[3]
				gk := growSlice[oc*4 : oc*4+4]
				dyp := dyd[(img*u.OutC+oc)*plane : (img*u.OutC+oc+1)*plane]
				g0s, g1s, g2s, g3s := gk[0], gk[1], gk[2], gk[3]
				for iy := 0; iy < h; iy++ {
					row0 := dyp[(2*iy)*(2*w):]
					row1 := dyp[(2*iy+1)*(2*w):]
					xr := xp[iy*w : (iy+1)*w]
					dxr := dxp[iy*w : (iy+1)*w]
					for ix := range xr {
						g0, g1, g2, g3 := row0[2*ix], row0[2*ix+1], row1[2*ix], row1[2*ix+1]
						dxr[ix] += g0*k0 + g1*k1 + g2*k2 + g3*k3
						v := xr[ix]
						g0s += v * g0
						g1s += v * g1
						g2s += v * g2
						g3s += v * g3
					}
				}
				gk[0], gk[1], gk[2], gk[3] = g0s, g1s, g2s, g3s
			}
		}
	})
	return dx
}
