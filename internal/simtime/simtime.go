// Package simtime provides a discrete-event virtual clock. The simulated
// cluster (internal/cluster) and the simulated multi-GPU trainer
// (internal/ddp) advance this clock by modeled durations instead of
// sleeping, so the repository reproduces the paper's wall-clock tables
// deterministically on any host — including this single-core one — and
// the simulations run in microseconds of real time.
//
// Determinism guarantee: events firing at the same virtual instant are
// delivered in a fixed, seed-independent order (insertion order within a
// timestamp), so simulated schedules — and every table derived from them
// — are bit-reproducible regardless of host speed or goroutine
// interleaving.
package simtime

import (
	"container/heap"
	"fmt"
)

// Clock is a virtual clock with an event queue. The zero value is ready
// to use and starts at time 0.
type Clock struct {
	now    float64
	events eventHeap
	seq    int
}

// Event is a scheduled callback.
type event struct {
	at  float64
	seq int // tie-breaker: FIFO among simultaneous events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Schedule registers fn to run at absolute virtual time at. Scheduling in
// the past panics — it would mean the simulation violated causality.
func (c *Clock) Schedule(at float64, fn func()) {
	if at < c.now {
		panic(fmt.Sprintf("simtime: scheduling at %.6f before now %.6f", at, c.now))
	}
	heap.Push(&c.events, event{at: at, seq: c.seq, fn: fn})
	c.seq++
}

// After registers fn to run delay seconds from now.
func (c *Clock) After(delay float64, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("simtime: negative delay %.6f", delay))
	}
	c.Schedule(c.now+delay, fn)
}

// Step runs the earliest pending event, advancing the clock to its time.
// It reports whether an event was run.
func (c *Clock) Step() bool {
	if len(c.events) == 0 {
		return false
	}
	ev := heap.Pop(&c.events).(event)
	c.now = ev.at
	ev.fn()
	return true
}

// Run drains the event queue, returning the final virtual time.
func (c *Clock) Run() float64 {
	for c.Step() {
	}
	return c.now
}

// Pending reports the number of scheduled events.
func (c *Clock) Pending() int { return len(c.events) }
