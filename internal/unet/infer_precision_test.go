package unet

import (
	"math"
	"testing"

	"seaice/internal/noise"
	"seaice/internal/tensor"
)

// f32Model builds the float32 twin of a float64 model: FillRandn rounds
// the same float64 draws, so the f32 weights are exactly the rounded f64
// weights.
func f32Model(t *testing.T, cfg Config) (*Model[float64], *Model[float32]) {
	t.Helper()
	m64, err := New[float64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	m32, err := New[float32](cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m64, m32
}

// TestF32SessionWithinToleranceOfF64: the float32 session (Winograd 3×3
// path) must match the float64 model's logits within the documented
// cross-precision bound. The accumulation length per logit is ~InC·9 per
// conv layer; the bound compounds across the depth of the network, so
// the test uses the per-layer bound times a small depth factor.
func TestF32SessionWithinToleranceOfF64(t *testing.T) {
	for _, tc := range []struct {
		name  string
		cfg   Config
		n, sz int
	}{
		{"fast-2x32", FastConfig(7), 2, 32},
		{"depth2-2x8", Config{Depth: 2, BaseChannels: 4, InChannels: 3, Classes: 4, DropoutRate: 0, Seed: 10}, 2, 8},
		{"depth4-1x16", Config{Depth: 4, BaseChannels: 4, InChannels: 3, Classes: 3, DropoutRate: 0.2, Seed: 11}, 1, 16},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m64, m32 := f32Model(t, tc.cfg)
			x64 := tensor.New[float64](tc.n, tc.cfg.InChannels, tc.sz, tc.sz)
			rng := noise.NewRNG(42, 0xbeef)
			for i := range x64.Data {
				x64.Data[i] = rng.Float64()
			}
			x32 := tensor.Convert[float32](x64)

			want := m64.Forward(x64, false)
			s := NewSession(m32)
			got, err := s.Forward(x32)
			if err != nil {
				t.Fatal(err)
			}
			// Worst per-layer accumulation ~maxInC·9 taps; activations are
			// O(1); allow a generous depth-compounding factor of 8.
			maxInC := tc.cfg.BaseChannels << tc.cfg.Depth
			tol := tensor.PrecisionTolerance * float64(maxInC*9) * 8
			worst := 0.0
			for i := range want.Data {
				w := want.Data[i]
				diff := math.Abs(float64(got.Data[i]) - w)
				rel := diff / math.Max(math.Abs(w), 1)
				if rel > worst {
					worst = rel
				}
				if rel > tol {
					t.Fatalf("logit %d: f32 session %g vs f64 model %g (rel %.3g > tol %.3g)", i, got.Data[i], w, rel, tol)
				}
			}
			t.Logf("worst relative logit error %.3g (tol %.3g)", worst, tol)
		})
	}
}

// TestF32SessionDeterministic: two sessions over the same weights must
// produce bit-identical logits — Winograd reassociates arithmetic but is
// still a fixed serial algorithm.
func TestF32SessionDeterministic(t *testing.T) {
	_, m32 := f32Model(t, FastConfig(9))
	x := tensor.New[float32](2, 3, 16, 16)
	rng := noise.NewRNG(5, 1)
	for i := range x.Data {
		x.Data[i] = float32(rng.Float64())
	}
	a, err := NewSession(m32).Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	aCopy := a.Clone()
	b, err := NewSession(m32).Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range aCopy.Data {
		if aCopy.Data[i] != b.Data[i] {
			t.Fatalf("f32 session nondeterministic at logit %d", i)
		}
	}
}

// TestF32SessionOddPlanesFallBack: plane sizes the Winograd tiling cannot
// cover (odd, including the 1×1 bottleneck of a depth-k net on its
// minimum input) must still predict — the direct kernel handles them.
func TestF32SessionOddPlanesFallBack(t *testing.T) {
	cfg := Config{Depth: 3, BaseChannels: 4, InChannels: 3, Classes: 3, DropoutRate: 0, Seed: 13}
	m64, m32 := f32Model(t, cfg)
	// 8×8 input: bottleneck plane is 1×1 — odd, forced fallback.
	x64 := tensor.New[float64](1, 3, 8, 8)
	rng := noise.NewRNG(21, 3)
	for i := range x64.Data {
		x64.Data[i] = rng.Float64()
	}
	wantPred := m64.Predict(x64)
	got, err := NewSession(m32).Predict(tensor.Convert[float32](x64))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(wantPred) {
		t.Fatalf("prediction length %d, want %d", len(got), len(wantPred))
	}
	diff := 0
	for i := range got {
		if got[i] != wantPred[i] {
			diff++
		}
	}
	// Argmax can legitimately flip on near-ties; on 64 pixels expect none
	// or almost none.
	if diff > len(got)/8 {
		t.Fatalf("%d/%d predictions differ between f32 session and f64 model", diff, len(got))
	}
}
