package unet

import (
	"bytes"
	"math"
	"testing"

	"seaice/internal/nn"
	"seaice/internal/noise"
	"seaice/internal/tensor"
)

func tinyConfig(seed uint64) Config {
	return Config{Depth: 2, BaseChannels: 4, InChannels: 3, Classes: 3, DropoutRate: 0, Seed: seed}
}

func TestPaperConfigHas28ConvLayers(t *testing.T) {
	if got := PaperConfig(1).NumConvLayers(); got != 28 {
		t.Fatalf("paper config has %d conv layers, want 28 (§III-C1)", got)
	}
	// The assembled model must agree with the config arithmetic; check
	// on a small instance to keep the test fast.
	m, err := New[float64](tinyConfig(1))
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if got, want := m.NumConvLayers(), m.Config().NumConvLayers(); got != want {
		t.Fatalf("assembled model has %d conv layers, config arithmetic says %d", got, want)
	}
}

func TestForwardShape(t *testing.T) {
	m, err := New[float64](tinyConfig(1))
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	x := tensor.New[float64](2, 3, 16, 16)
	x.FillRandn(noise.NewRNG(1, 1), 1)
	y := m.Forward(x, false)
	want := []int{2, 3, 16, 16}
	for i, d := range want {
		if y.Shape[i] != d {
			t.Fatalf("output shape %v, want %v", y.Shape, want)
		}
	}
}

// TestModelGradients runs a finite-difference check through the entire
// U-Net graph — encoder, bottleneck, skip connections, decoder, head.
func TestModelGradients(t *testing.T) {
	m, err := New[float64](tinyConfig(2))
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	x := tensor.New[float64](1, 3, 8, 8)
	x.FillRandn(noise.NewRNG(2, 1), 1)
	labels := make([]uint8, 64)
	lr := noise.NewRNG(3, 1)
	for i := range labels {
		labels[i] = uint8(lr.Intn(3))
	}

	params := m.Params()
	nn.ZeroGrads(params)
	if _, err := m.LossAndGrad(x, labels); err != nil {
		t.Fatalf("loss: %v", err)
	}

	lossAt := func() float64 {
		logits := m.Forward(x, false)
		var s nn.SoftmaxCrossEntropy[float64]
		l, err := s.Loss(logits, labels)
		if err != nil {
			t.Fatalf("loss: %v", err)
		}
		return l
	}

	const eps = 1e-5
	checked := 0
	for _, p := range params {
		stride := 1 + p.W.Len()/5
		for i := 0; i < p.W.Len(); i += stride {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			lp := lossAt()
			p.W.Data[i] = orig - eps
			lm := lossAt()
			p.W.Data[i] = orig
			want := (lp - lm) / (2 * eps)
			got := p.Grad.Data[i]
			if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
				t.Fatalf("param %s grad [%d] = %.8g, finite diff %.8g", p.Name, i, got, want)
			}
			checked++
		}
	}
	if checked < 30 {
		t.Fatalf("only %d gradient entries checked", checked)
	}
}

// TestTrainingReducesLoss: a few Adam steps on a fixed batch must reduce
// the loss substantially — the end-to-end smoke test of the stack.
func TestTrainingReducesLoss(t *testing.T) {
	m, err := New[float64](tinyConfig(3))
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	x := tensor.New[float64](2, 3, 16, 16)
	x.FillRandn(noise.NewRNG(4, 1), 1)
	labels := make([]uint8, 2*16*16)
	lr := noise.NewRNG(5, 1)
	for i := range labels {
		labels[i] = uint8(lr.Intn(3))
	}

	params := m.Params()
	opt := nn.NewAdam[float64](0.01)
	first, last := 0.0, 0.0
	for step := 0; step < 30; step++ {
		nn.ZeroGrads(params)
		loss, err := m.LossAndGrad(x, labels)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if step == 0 {
			first = loss
		}
		last = loss
		opt.Step(params)
	}
	t.Logf("loss %f → %f over 30 steps", first, last)
	if last > first*0.7 {
		t.Fatalf("training did not reduce loss: %f → %f", first, last)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	m, err := New[float64](tinyConfig(6))
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	m2, err := Load[float64](&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}

	x := tensor.New[float64](1, 3, 8, 8)
	x.FillRandn(noise.NewRNG(7, 1), 1)
	y1 := m.Forward(x, false)
	y2 := m2.Forward(x, false)
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			t.Fatalf("restored model diverges at output %d", i)
		}
	}
}

func TestCopyWeightsBroadcast(t *testing.T) {
	a, _ := New[float64](tinyConfig(8))
	b, _ := New[float64](tinyConfig(9)) // different init
	if err := b.CopyWeightsFrom(a); err != nil {
		t.Fatalf("broadcast: %v", err)
	}
	x := tensor.New[float64](1, 3, 8, 8)
	x.FillRandn(noise.NewRNG(10, 1), 1)
	ya := a.Forward(x, false)
	yb := b.Forward(x, false)
	for i := range ya.Data {
		if ya.Data[i] != yb.Data[i] {
			t.Fatalf("broadcast models diverge at %d", i)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Depth: 0, BaseChannels: 4, InChannels: 3, Classes: 3},
		{Depth: 2, BaseChannels: 0, InChannels: 3, Classes: 3},
		{Depth: 2, BaseChannels: 4, InChannels: 3, Classes: 1},
		{Depth: 2, BaseChannels: 4, InChannels: 3, Classes: 3, DropoutRate: 1.0},
	}
	for i, cfg := range bad {
		if _, err := New[float64](cfg); err == nil {
			t.Fatalf("config %d should be rejected: %+v", i, cfg)
		}
	}
}
