package raster

import "fmt"

// Tile is one fixed-size window of a larger scene together with its grid
// position, so predictions can be stitched back into scene coordinates.
type Tile struct {
	Col, Row int // grid position within the parent scene
	Image    *RGB
}

// Grid describes how a scene divides into tiles.
type Grid struct {
	TileW, TileH int
	Cols, Rows   int
}

// GridFor computes the tile grid for a scene of size (w, h) with the given
// tile size. The scene must divide evenly — the paper's 2048² scenes split
// exactly into 8×8 tiles of 256².
func GridFor(w, h, tileW, tileH int) (Grid, error) {
	if tileW <= 0 || tileH <= 0 {
		return Grid{}, fmt.Errorf("raster: invalid tile size %dx%d", tileW, tileH)
	}
	if w%tileW != 0 || h%tileH != 0 {
		return Grid{}, fmt.Errorf("raster: scene %dx%d does not divide into %dx%d tiles", w, h, tileW, tileH)
	}
	return Grid{TileW: tileW, TileH: tileH, Cols: w / tileW, Rows: h / tileH}, nil
}

// Split cuts the scene into tiles in row-major order.
func Split(scene *RGB, tileW, tileH int) ([]Tile, Grid, error) {
	g, err := GridFor(scene.W, scene.H, tileW, tileH)
	if err != nil {
		return nil, Grid{}, err
	}
	tiles := make([]Tile, 0, g.Cols*g.Rows)
	for row := 0; row < g.Rows; row++ {
		for col := 0; col < g.Cols; col++ {
			t := NewRGB(tileW, tileH)
			for y := 0; y < tileH; y++ {
				srcOff := 3 * ((row*tileH+y)*scene.W + col*tileW)
				dstOff := 3 * y * tileW
				copy(t.Pix[dstOff:dstOff+3*tileW], scene.Pix[srcOff:srcOff+3*tileW])
			}
			tiles = append(tiles, Tile{Col: col, Row: row, Image: t})
		}
	}
	return tiles, g, nil
}

// Stitch reassembles tiles into a scene. Every grid cell must be covered
// exactly once and all tiles must match the grid's tile size.
func Stitch(tiles []Tile, g Grid) (*RGB, error) {
	if len(tiles) != g.Cols*g.Rows {
		return nil, fmt.Errorf("raster: stitch got %d tiles, grid needs %d", len(tiles), g.Cols*g.Rows)
	}
	seen := make([]bool, g.Cols*g.Rows)
	scene := NewRGB(g.Cols*g.TileW, g.Rows*g.TileH)
	for _, t := range tiles {
		if t.Col < 0 || t.Col >= g.Cols || t.Row < 0 || t.Row >= g.Rows {
			return nil, fmt.Errorf("raster: tile position (%d,%d) outside %dx%d grid", t.Col, t.Row, g.Cols, g.Rows)
		}
		if t.Image.W != g.TileW || t.Image.H != g.TileH {
			return nil, fmt.Errorf("raster: tile (%d,%d) is %dx%d, grid expects %dx%d", t.Col, t.Row, t.Image.W, t.Image.H, g.TileW, g.TileH)
		}
		idx := t.Row*g.Cols + t.Col
		if seen[idx] {
			return nil, fmt.Errorf("raster: duplicate tile at (%d,%d)", t.Col, t.Row)
		}
		seen[idx] = true
		for y := 0; y < g.TileH; y++ {
			dstOff := 3 * ((t.Row*g.TileH+y)*scene.W + t.Col*g.TileW)
			srcOff := 3 * y * g.TileW
			copy(scene.Pix[dstOff:dstOff+3*g.TileW], t.Image.Pix[srcOff:srcOff+3*g.TileW])
		}
	}
	return scene, nil
}

// SplitLabels cuts a label map into tiles matching the grid produced by
// Split on the corresponding scene.
func SplitLabels(lab *Labels, tileW, tileH int) ([]*Labels, Grid, error) {
	g, err := GridFor(lab.W, lab.H, tileW, tileH)
	if err != nil {
		return nil, Grid{}, err
	}
	out := make([]*Labels, 0, g.Cols*g.Rows)
	for row := 0; row < g.Rows; row++ {
		for col := 0; col < g.Cols; col++ {
			t := NewLabels(tileW, tileH)
			for y := 0; y < tileH; y++ {
				srcOff := (row*tileH+y)*lab.W + col*tileW
				copy(t.Pix[y*tileW:(y+1)*tileW], lab.Pix[srcOff:srcOff+tileW])
			}
			out = append(out, t)
		}
	}
	return out, g, nil
}

// StitchLabels reassembles label tiles (row-major order) into a scene-sized
// label map.
func StitchLabels(tiles []*Labels, g Grid) (*Labels, error) {
	if len(tiles) != g.Cols*g.Rows {
		return nil, fmt.Errorf("raster: stitch got %d label tiles, grid needs %d", len(tiles), g.Cols*g.Rows)
	}
	out := NewLabels(g.Cols*g.TileW, g.Rows*g.TileH)
	for i, t := range tiles {
		if t.W != g.TileW || t.H != g.TileH {
			return nil, fmt.Errorf("raster: label tile %d is %dx%d, grid expects %dx%d", i, t.W, t.H, g.TileW, g.TileH)
		}
		row, col := i/g.Cols, i%g.Cols
		for y := 0; y < g.TileH; y++ {
			dstOff := (row*g.TileH+y)*out.W + col*g.TileW
			copy(out.Pix[dstOff:dstOff+g.TileW], t.Pix[y*g.TileW:(y+1)*g.TileW])
		}
	}
	return out, nil
}

// Downsample reduces the raster by an integer factor using box averaging,
// used to derive reduced-scale experiment datasets from full-size scenes.
func Downsample(src *RGB, factor int) (*RGB, error) {
	if factor <= 0 || src.W%factor != 0 || src.H%factor != 0 {
		return nil, fmt.Errorf("raster: cannot downsample %dx%d by %d", src.W, src.H, factor)
	}
	w, h := src.W/factor, src.H/factor
	dst := NewRGB(w, h)
	n := factor * factor
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var sr, sg, sb int
			for dy := 0; dy < factor; dy++ {
				off := 3 * ((y*factor+dy)*src.W + x*factor)
				for dx := 0; dx < factor; dx++ {
					sr += int(src.Pix[off])
					sg += int(src.Pix[off+1])
					sb += int(src.Pix[off+2])
					off += 3
				}
			}
			dst.Set(x, y, uint8(sr/n), uint8(sg/n), uint8(sb/n))
		}
	}
	return dst, nil
}

// DownsampleLabels reduces a label map by an integer factor using majority
// vote within each box, so class boundaries stay crisp.
func DownsampleLabels(src *Labels, factor int) (*Labels, error) {
	if factor <= 0 || src.W%factor != 0 || src.H%factor != 0 {
		return nil, fmt.Errorf("raster: cannot downsample labels %dx%d by %d", src.W, src.H, factor)
	}
	w, h := src.W/factor, src.H/factor
	dst := NewLabels(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var votes [NumClasses]int
			for dy := 0; dy < factor; dy++ {
				off := (y*factor+dy)*src.W + x*factor
				for dx := 0; dx < factor; dx++ {
					votes[src.Pix[off+dx]]++
				}
			}
			best := Class(0)
			for c := Class(1); c < NumClasses; c++ {
				if votes[c] > votes[best] {
					best = c
				}
			}
			dst.Set(x, y, best)
		}
	}
	return dst, nil
}
