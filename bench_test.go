// Top-level benchmarks, one (or more) per table and figure of the paper's
// evaluation section. Wall-clock speedup tables from the paper's hardware
// are regenerated through the calibrated virtual clocks (this host has a
// single core — see DESIGN.md §2); those benchmarks report the virtual
// seconds as custom metrics alongside the real cost of the underlying
// work. The accuracy tables' full harness is cmd/seaice-bench; here the
// benchmarks measure their computational building blocks.
package seaice_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"seaice/internal/autolabel"
	"seaice/internal/cloudfilter"
	"seaice/internal/core"
	"seaice/internal/dataset"
	"seaice/internal/ddp"
	"seaice/internal/mapreduce"
	"seaice/internal/metrics"
	"seaice/internal/nn"
	"seaice/internal/perfmodel"
	"seaice/internal/pool"
	"seaice/internal/raster"
	"seaice/internal/ring"
	"seaice/internal/scene"
	"seaice/internal/serve"
	"seaice/internal/tensor"
	"seaice/internal/train"
	"seaice/internal/unet"
)

// benchTiles renders a small tile workload once per process.
var benchTileCache []*raster.RGB

func benchTiles(b *testing.B) []*raster.RGB {
	b.Helper()
	if benchTileCache != nil {
		return benchTileCache
	}
	cfg := scene.DefaultConfig(555)
	cfg.W, cfg.H = 256, 256
	sc, err := scene.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tiles, _, err := raster.Split(sc.Image, 64, 64)
	if err != nil {
		b.Fatal(err)
	}
	for _, t := range tiles {
		benchTileCache = append(benchTileCache, t.Image)
	}
	return benchTileCache
}

// BenchmarkTable1_PoolAutolabel measures the Table I workload — filter +
// color-segmentation auto-labeling of tiles — through the worker pool at
// the paper's process counts, and reports the SMT-machine model's
// paper-hardware speedup as a metric (Fig 10's series).
func BenchmarkTable1_PoolAutolabel(b *testing.B) {
	tiles := benchTiles(b)
	machine := perfmodel.PaperWorkstation()
	for _, procs := range []int{1, 2, 4, 6, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			p := pool.New(procs)
			b.ReportMetric(machine.Speedup(procs), "paper-speedup")
			for i := 0; i < b.N; i++ {
				_, err := pool.MapSlice(p, tiles, func(img *raster.RGB) (*raster.Labels, error) {
					return autolabel.LabelPaper(cloudfilter.FilterDefault(img).Image)
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2_MapReduceGrid measures the Table II job — load, lazy
// map, reduce/collect — on the simulated Dataproc cluster over the
// executor×core grid, reporting the virtual stage seconds.
func BenchmarkTable2_MapReduceGrid(b *testing.B) {
	tiles := benchTiles(b)
	reduceCost := mapreduce.CostFromSparkStage(perfmodel.PaperReduceStage(), len(tiles))
	for _, tc := range []struct{ e, c int }{{1, 1}, {1, 4}, {2, 2}, {4, 4}} {
		b.Run(fmt.Sprintf("exec=%d_cores=%d", tc.e, tc.c), func(b *testing.B) {
			var virtual float64
			for i := 0; i < b.N; i++ {
				runner, err := mapreduce.NewSimRunner(tc.e, tc.c, reduceCost)
				if err != nil {
					b.Fatal(err)
				}
				ds, err := mapreduce.Parallelize(tiles, tc.e*tc.c*4)
				if err != nil {
					b.Fatal(err)
				}
				labeled := mapreduce.Map(ds, func(img *raster.RGB) (*raster.Labels, error) {
					return autolabel.LabelPaper(img)
				})
				_, stats, err := mapreduce.Collect(labeled, runner)
				if err != nil {
					b.Fatal(err)
				}
				virtual = stats.Elapsed
			}
			b.ReportMetric(virtual, "virtual-s")
		})
	}
}

// benchSamples builds a small labeled sample set for the training benches.
func benchSamples(b *testing.B, n, size int) []train.Sample {
	b.Helper()
	cfg := scene.DefaultConfig(777)
	cfg.W, cfg.H = 128, 128
	sc, err := scene.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	build := dataset.DefaultBuild()
	build.TileSize = size
	set, err := dataset.Build([]*scene.Scene{sc}, build)
	if err != nil {
		b.Fatal(err)
	}
	tiles := dataset.Subsample(set.Tiles, n, 1)
	return dataset.Samples(tiles, dataset.OriginalImages, dataset.AutoLabels)
}

// BenchmarkTable3_DDPStep measures one synchronous data-parallel training
// step (forward + backward + ring all-reduce + Adam) at the paper's GPU
// counts, reporting the calibrated DGX per-epoch virtual seconds (Fig 12's
// time-per-epoch series).
func BenchmarkTable3_DDPStep(b *testing.B) {
	dgx := perfmodel.PaperDGX()
	modelCfg := unet.Config{Depth: 2, BaseChannels: 4, InChannels: 3, Classes: 3, DropoutRate: 0, Seed: 3}
	for _, gpus := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("gpus=%d", gpus), func(b *testing.B) {
			samples := benchSamples(b, gpus*2, 16)
			tr, err := ddp.New[float64](modelCfg, ddp.Config{
				Workers: gpus, BatchPerWorker: 2, Epochs: 1, LR: 0.01, Seed: 4,
			})
			if err != nil {
				b.Fatal(err)
			}
			shards := make([][]train.Sample, gpus)
			for i, s := range samples {
				shards[i%gpus] = append(shards[i%gpus], s)
			}
			b.ReportMetric(dgx.EpochTime(gpus), "dgx-epoch-s")
			b.ReportMetric(dgx.Speedup(gpus), "paper-speedup")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.Step(shards); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable4_UNetForward measures the inference cost underlying the
// Table IV/V evaluations: one U-Net forward pass per tile, for both the
// fast preset and the paper's full 28-conv-layer architecture.
func BenchmarkTable4_UNetForward(b *testing.B) {
	for _, preset := range []struct {
		name string
		cfg  unet.Config
		size int
	}{
		{"fast-64px", unet.FastConfig(1), 64},
		{"paper-32px", unet.PaperConfig(1), 32},
	} {
		b.Run(preset.name, func(b *testing.B) {
			m, err := unet.New[float64](preset.cfg)
			if err != nil {
				b.Fatal(err)
			}
			x := tensor.New[float64](1, 3, preset.size, preset.size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Forward(x, false)
			}
		})
	}
}

// BenchmarkTable5_CloudBucketing measures the Table V dataset machinery:
// building cloud-coverage buckets over a tile set.
func BenchmarkTable5_CloudBucketing(b *testing.B) {
	cfg := scene.DefaultConfig(888)
	cfg.W, cfg.H = 256, 256
	sc, err := scene.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	build := dataset.DefaultBuild()
	build.TileSize = 32
	set, err := dataset.Build([]*scene.Scene{sc}, build)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cloudy, clear := dataset.CloudBuckets(set.Tiles, 0.10)
		if len(cloudy)+len(clear) != len(set.Tiles) {
			b.Fatal("buckets lost tiles")
		}
	}
}

// BenchmarkFig13_ConfusionAccumulate measures confusion-matrix
// accumulation over label maps (the Fig 13 evaluation inner loop).
func BenchmarkFig13_ConfusionAccumulate(b *testing.B) {
	truth := raster.NewLabels(256, 256)
	pred := raster.NewLabels(256, 256)
	for i := range truth.Pix {
		truth.Pix[i] = raster.Class(i % 3)
		pred.Pix[i] = raster.Class((i / 2) % 3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conf := metrics.NewConfusion(3)
		if err := conf.AddLabels(truth, pred); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSSIM_AutolabelQuality measures the §IV-B2 SSIM validation on a
// full scene.
func BenchmarkSSIM_AutolabelQuality(b *testing.B) {
	cfg := scene.DefaultConfig(999)
	sc, err := scene.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	lab, err := autolabel.LabelPaper(sc.Image)
	if err != nil {
		b.Fatal(err)
	}
	manual := sc.Truth.Render()
	auto := lab.Render()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.SSIMRGB(manual, auto); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSceneLabelThroughput measures the §IV-C2 sequential workload:
// thin-cloud/shadow filtering plus color segmentation of one full scene
// (the paper reports 349.26 s for 66 scenes at 2048²).
func BenchmarkSceneLabelThroughput(b *testing.B) {
	cfg := scene.DefaultConfig(1111)
	sc, err := scene.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		filtered := core.FilterSceneDefault(sc.Image)
		if _, err := core.LabelDefault(filtered); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_RingVsNaive compares the ring all-reduce against the
// gather-broadcast baseline on gradient-sized vectors — the design choice
// DESIGN.md calls out (Horovod's bandwidth-optimality argument).
func BenchmarkAblation_RingVsNaive(b *testing.B) {
	const n = 1 << 16
	makeVecs := func(p int) [][]float64 {
		out := make([][]float64, p)
		for r := range out {
			out[r] = make([]float64, n)
			for i := range out[r] {
				out[r][i] = float64(r + i)
			}
		}
		return out
	}
	for _, p := range []int{4, 8} {
		b.Run(fmt.Sprintf("ring/p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := ring.AllReduceSum(makeVecs(p)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("naive/p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := ring.NaiveAllReduceSum(makeVecs(p)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_FilterStages separates the cloud filter's cost into
// its full pipeline versus segmentation alone, quantifying what the
// thin-cloud/shadow correction costs per scene.
func BenchmarkAblation_FilterStages(b *testing.B) {
	cfg := scene.DefaultConfig(2222)
	cfg.W, cfg.H = 256, 256
	sc, err := scene.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("segment-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := autolabel.LabelPaper(sc.Image); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("filter+segment", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			filtered := cloudfilter.FilterDefault(sc.Image)
			if _, err := autolabel.LabelPaper(filtered.Image); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServeThroughput compares online classification throughput:
// naive per-tile forward passes (the seed's inference loop) against the
// serving stack's micro-batched path — a fused-kernel inference session
// driven end-to-end through the scheduler (concurrent submits, bounded
// queue, no cache) — at all three compute precisions. Tiles/sec is
// reported as a metric; the batched path sustains ≥2× the naive rate,
// the pure float32 hot path sustains ≥1.6× the float64 batched-serve
// rate, and the int8 quantized engine sustains ≥2× the float32
// batched-serve rate. Recorded rows live in BENCH_infer.json.
func BenchmarkServeThroughput(b *testing.B) {
	b.Run("f64", benchServeThroughput[float64])
	b.Run("f32", benchServeThroughput[float32])
	b.Run("int8", benchServeThroughputInt8)
}

func benchServeThroughput[S tensor.Scalar](b *testing.B) {
	tiles := benchTiles(b) // 64 tiles of 64²
	m, err := unet.New[S](unet.FastConfig(1))
	if err != nil {
		b.Fatal(err)
	}

	b.Run("naive-per-tile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, img := range tiles {
				if _, err := core.PredictTile(m, img); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.N*len(tiles))/b.Elapsed().Seconds(), "tiles/s")
	})

	b.Run("batched-session", func(b *testing.B) {
		pred := core.NewSessionPredictor(m, 16)
		for i := 0; i < b.N; i++ {
			if _, err := pred.PredictTiles(tiles); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N*len(tiles))/b.Elapsed().Seconds(), "tiles/s")
	})

	b.Run("batched-serve", func(b *testing.B) {
		cfg := serve.DefaultConfig()
		cfg.TileSize = 64
		cfg.CacheSize = 0
		cfg.QueueSize = len(tiles) * 2
		sched := serve.NewScheduler(cfg, nil)
		defer sched.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			errs := make([]error, len(tiles))
			for ti, img := range tiles {
				wg.Add(1)
				go func(ti int, img *raster.RGB) {
					defer wg.Done()
					_, errs[ti] = sched.Submit(m, img)
				}(ti, img)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.N*len(tiles))/b.Elapsed().Seconds(), "tiles/s")
	})
}

// benchServeThroughputInt8 is benchServeThroughput for the quantized
// engine: a fresh FastConfig master calibrated on the benchmark tiles and
// quantized (the seaice-train -quantize path, minus training). The naive
// path mints a predictor per tile, matching the seed loop's
// allocate-every-tile behavior.
func benchServeThroughputInt8(b *testing.B) {
	tiles := benchTiles(b)
	m, err := unet.New[float64](unet.FastConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	cal, err := unet.Calibrate(m, tiles, 16)
	if err != nil {
		b.Fatal(err)
	}
	qm, err := unet.Quantize(m, cal)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("naive-per-tile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, img := range tiles {
				if _, err := qm.NewPredictor().PredictTiles([]*raster.RGB{img}); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.N*len(tiles))/b.Elapsed().Seconds(), "tiles/s")
	})

	b.Run("batched-session", func(b *testing.B) {
		pred := core.NewSessionPredictor(qm, 16)
		for i := 0; i < b.N; i++ {
			if _, err := pred.PredictTiles(tiles); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N*len(tiles))/b.Elapsed().Seconds(), "tiles/s")
	})

	b.Run("batched-serve", func(b *testing.B) {
		cfg := serve.DefaultConfig()
		cfg.TileSize = 64
		cfg.CacheSize = 0
		cfg.QueueSize = len(tiles) * 2
		sched := serve.NewScheduler(cfg, nil)
		defer sched.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			errs := make([]error, len(tiles))
			for ti, img := range tiles {
				wg.Add(1)
				go func(ti int, img *raster.RGB) {
					defer wg.Done()
					_, errs[ti] = sched.Submit(qm, img)
				}(ti, img)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.N*len(tiles))/b.Elapsed().Seconds(), "tiles/s")
	})
}

// BenchmarkTrainStep measures one full training step (forward + backward
// + Adam) on the FastConfig U-Net at batch 8 on 64×64 tiles — the
// training engine's acceptance workload. "legacy-serial" is the pre-PR
// path: serial reference GEMM/im2col kernels allocating every
// intermediate; "engine" is the cache-blocked, buffer-reusing parallel
// float64 path; "engine-f32" runs the same kernels in float32 and
// "engine-f32-mixed" adds the float64 master-weight Adam (the training
// default). The recorded baseline-vs-after numbers live in
// BENCH_train.json; the f32 mixed path sustains ≥1.4× the f64 engine.
func BenchmarkTrainStep(b *testing.B) {
	samples := benchSamples(b, 8, 64)
	b.Run("legacy-serial", func(b *testing.B) {
		benchTrainStep[float64](b, samples, true, 1, false)
	})
	b.Run("engine", func(b *testing.B) {
		benchTrainStep[float64](b, samples, false, runtime.NumCPU(), false)
	})
	b.Run("engine-f32", func(b *testing.B) {
		benchTrainStep[float32](b, samples, false, runtime.NumCPU(), false)
	})
	b.Run("engine-f32-mixed", func(b *testing.B) {
		benchTrainStep[float32](b, samples, false, runtime.NumCPU(), true)
	})
}

func benchTrainStep[S tensor.Scalar](b *testing.B, samples []train.Sample, legacy bool, workers int, master bool) {
	prevLegacy := nn.SetLegacyKernels(legacy)
	defer nn.SetLegacyKernels(prevLegacy)
	pool.SetSharedWorkers(workers)
	defer pool.SetSharedWorkers(0)

	m, err := unet.New[S](unet.FastConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	x, labels, err := train.ToTensor[S](samples)
	if err != nil {
		b.Fatal(err)
	}
	params := m.Params()
	opt := nn.NewAdam[S](0.01)
	opt.Master = master
	step := func() {
		nn.ZeroGrads(params)
		if _, err := m.LossAndGrad(x, labels); err != nil {
			b.Fatal(err)
		}
		opt.Step(params)
	}
	step() // warm the grow-only scratch buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// BenchmarkMatMul measures the GEMM core on a convolution-shaped product
// (16×72 × 72×32768, the batch-8 64²-tile encoder shape) for the serial
// reference kernels versus the blocked parallel engine, covering all
// three product forms the conv layers use.
func BenchmarkMatMul(b *testing.B) {
	b.Run("f64", benchMatMul[float64])
	b.Run("f32", benchMatMul[float32])
}

func benchMatMul[S tensor.Scalar](b *testing.B) {
	fill := func(t *tensor.Tensor[S], phase float64) {
		for i := range t.Data {
			t.Data[i] = S(float64(i%17)*0.25 - phase)
		}
	}
	const m, k, n = 16, 72, 8 * 64 * 64
	a := tensor.New[S](m, k)   // weights (OutC, C·KH·KW)
	bb := tensor.New[S](k, n)  // im2col matrix
	at := tensor.New[S](k, m)  // transposed weights for Aᵀ×B
	big := tensor.New[S](m, n) // output-channel-major gradient
	wide := tensor.New[S](k, n)
	fill(a, 0.1)
	fill(bb, 0.2)
	fill(at, 0.3)
	fill(big, 0.5)
	fill(wide, 0.6)

	b.Run("AB/ref", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.MatMulRef(a, bb)
		}
	})
	b.Run("AB/engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.MatMul(a, bb)
		}
	})
	b.Run("ATB/ref", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.MatMulATBRef(at, wide)
		}
	})
	b.Run("ATB/engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.MatMulATB(at, wide)
		}
	})
	b.Run("ABT/ref", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.MatMulABTRef(big, wide)
		}
	})
	b.Run("ABT/engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.MatMulABT(big, wide)
		}
	})
}

// BenchmarkSceneGeneration measures the synthetic data substrate itself.
func BenchmarkSceneGeneration(b *testing.B) {
	cfg := scene.DefaultConfig(3333)
	cfg.W, cfg.H = 256, 256
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		if _, err := scene.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
