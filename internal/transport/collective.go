package transport

import (
	"encoding/binary"
	"fmt"
	"math"

	"seaice/internal/ring"
)

// AllReduceMean averages the ranks' vectors in place over the network
// ring. It is the bit-identical mirror of ring.AllReduceMeanChunked:
// the same segmentation (the whole vector when n ≤ chunk, else segments
// of exactly chunk elements), the same per-segment chunk bounds
// (bounds[c] = c·n/p), the same reduce-scatter/all-gather schedule, the
// same element-order accumulation, and the same 1/p mean scaling —
// scalars travel as exact IEEE-754 bit patterns, so the accumulation
// operates on identical values in an identical order and every result
// bit matches the in-process transport. The in-process version pipelines
// segments concurrently; segments are element-disjoint, so running them
// sequentially here changes wall-clock only, never bytes.
func AllReduceMean[S ring.Scalar](r *Ring, vec []S, chunk int) error {
	if chunk <= 0 {
		chunk = ring.DefaultChunk
	}
	n := len(vec)
	if r.world == 1 || n == 0 {
		return nil
	}
	if n <= chunk {
		return allReduceMeanSeg(r, vec)
	}
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if err := allReduceMeanSeg(r, vec[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// allReduceMeanSeg runs one segment's ring all-reduce-mean: p−1
// reduce-scatter hops, p−1 all-gather hops, then the 1/p scale.
func allReduceMeanSeg[S ring.Scalar](r *Ring, vec []S) error {
	p, rank, n := r.world, r.rank, len(vec)
	bounds := make([]int, p+1)
	for c := 0; c <= p; c++ {
		bounds[c] = c * n / p
	}
	var out []byte
	var in []S

	// reduce-scatter: after p−1 hops this rank holds the fully reduced
	// chunk (rank+1) mod p.
	for s := 0; s < p-1; s++ {
		sendChunk := ((rank-s)%p + p) % p
		lo, hi := bounds[sendChunk], bounds[sendChunk+1]
		out = putScalars(out[:0], vec[lo:hi])

		payload, err := r.hop(out)
		if err != nil {
			return err
		}
		recvChunk := ((rank-s-1)%p + p) % p
		rlo, rhi := bounds[recvChunk], bounds[recvChunk+1]
		if in, err = getScalars(in[:0], payload, rhi-rlo); err != nil {
			return r.prevErr(err)
		}
		for i, v := range in {
			vec[rlo+i] += v
		}
	}
	// all-gather: circulate the reduced chunks until every rank has all.
	for s := 0; s < p-1; s++ {
		sendChunk := ((rank+1-s)%p + p) % p
		lo, hi := bounds[sendChunk], bounds[sendChunk+1]
		out = putScalars(out[:0], vec[lo:hi])

		payload, err := r.hop(out)
		if err != nil {
			return err
		}
		recvChunk := ((rank-s)%p + p) % p
		rlo, rhi := bounds[recvChunk], bounds[recvChunk+1]
		if in, err = getScalars(in[:0], payload, rhi-rlo); err != nil {
			return r.prevErr(err)
		}
		copy(vec[rlo:rlo+len(in)], in)
	}
	inv := S(1) / S(p)
	for i := range vec {
		vec[i] *= inv
	}
	return nil
}

// bcastMaxElems bounds a broadcast frame's element count so the payload
// (8-byte header + scalars) stays under MaxFrame.
func bcastMaxElems[S ring.Scalar]() int {
	return (1<<20 - 8) / scalarSize[S]()
}

// Broadcast copies rank 0's vector to every rank by forwarding it
// around the ring in MaxFrame-bounded pieces: rank 0 sends, ranks
// 1..p−2 receive-store-forward, rank p−1 receives. Bytes are exact bit
// patterns, so the copy is bit-identical to ring.Broadcast.
func Broadcast[S ring.Scalar](r *Ring, vec []S) error {
	if r.world == 1 || len(vec) == 0 {
		return nil
	}
	maxElems := bcastMaxElems[S]()
	var buf []byte
	var in []S
	for lo := 0; lo < len(vec); lo += maxElems {
		hi := lo + maxElems
		if hi > len(vec) {
			hi = len(vec)
		}
		piece := vec[lo:hi]
		if r.rank != 0 {
			payload, err := r.recvData()
			if err != nil {
				return err
			}
			if in, err = getScalars(in[:0], payload, len(piece)); err != nil {
				return r.prevErr(err)
			}
			copy(piece, in)
		}
		if r.rank != r.world-1 {
			buf = putScalars(buf[:0], piece)
			if err := r.sendData(buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// scalarSize reports the wire bytes per element.
func scalarSize[S ring.Scalar]() int {
	var z S
	if _, ok := any(z).(float32); ok {
		return 4
	}
	return 8
}

// putScalars appends src's exact little-endian IEEE-754 bit patterns.
func putScalars[S ring.Scalar](dst []byte, src []S) []byte {
	switch s := any(src).(type) {
	case []float64:
		var b [8]byte
		for _, v := range s {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			dst = append(dst, b[:]...)
		}
	case []float32:
		var b [4]byte
		for _, v := range s {
			binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
			dst = append(dst, b[:]...)
		}
	}
	return dst
}

// getScalars appends exactly want decoded elements from src.
func getScalars[S ring.Scalar](dst []S, src []byte, want int) ([]S, error) {
	size := scalarSize[S]()
	if len(src) != want*size {
		return dst, fmt.Errorf("transport: %d payload bytes for %d scalars of %d bytes", len(src), want, size)
	}
	switch any(dst).(type) {
	case []float64:
		for i := 0; i < want; i++ {
			v := math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
			dst = append(dst, S(v))
		}
	case []float32:
		for i := 0; i < want; i++ {
			v := math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
			dst = append(dst, S(v))
		}
	}
	return dst, nil
}

// Collective adapts a Ring to ring.Collective, making the network
// transport a drop-in replacement for the in-process ring.Local in the
// distributed trainer.
type Collective[S ring.Scalar] struct {
	R *Ring
}

// Rank implements ring.Collective.
func (c *Collective[S]) Rank() int { return c.R.Rank() }

// World implements ring.Collective.
func (c *Collective[S]) World() int { return c.R.World() }

// StepStart implements ring.Collective.
func (c *Collective[S]) StepStart(step int) { c.R.StepStart(step) }

// AllReduceMean implements ring.Collective.
func (c *Collective[S]) AllReduceMean(vec []S, chunk int) error {
	return AllReduceMean(c.R, vec, chunk)
}

// Broadcast implements ring.Collective.
func (c *Collective[S]) Broadcast(vec []S) error { return Broadcast(c.R, vec) }

// Commit implements ring.Collective.
func (c *Collective[S]) Commit(step int) error { return c.R.Commit(step) }

// Reestablish implements ring.Collective.
func (c *Collective[S]) Reestablish(step int) (int, error) { return c.R.Establish(step) }

// Close implements ring.Collective.
func (c *Collective[S]) Close() error { return c.R.Close() }
