package ring

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

func TestGroupMembership(t *testing.T) {
	g, err := NewGroup(4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 4 || g.LiveCount() != 4 {
		t.Fatalf("fresh group: size %d live %d", g.Size(), g.LiveCount())
	}
	g.Fail(2)
	g.Fail(2) // idempotent
	if g.LiveCount() != 3 || g.IsLive(2) {
		t.Fatalf("after Fail(2): live %d, IsLive(2)=%v", g.LiveCount(), g.IsLive(2))
	}
	if !reflect.DeepEqual(g.Live(), []int{0, 1, 3}) || !reflect.DeepEqual(g.Dead(), []int{2}) {
		t.Fatalf("Live=%v Dead=%v", g.Live(), g.Dead())
	}
	g.Heal(2)
	g.Heal(2)
	if g.LiveCount() != 4 || !g.IsLive(2) {
		t.Fatalf("after Heal(2): live %d", g.LiveCount())
	}
	if _, err := NewGroup(0); err == nil {
		t.Fatal("NewGroup(0) succeeded")
	}
}

// TestGroupReduceOverSurvivors asserts the elastic all-reduce averages
// exactly the live ranks' vectors — re-chunked ring geometry over the
// survivor count — and leaves dead ranks' vectors untouched.
func TestGroupReduceOverSurvivors(t *testing.T) {
	const p, n = 4, 1000
	g, err := NewGroup(p)
	if err != nil {
		t.Fatal(err)
	}
	g.Fail(1)

	vectors := make([][]float64, p)
	for r := range vectors {
		vectors[r] = make([]float64, n)
		for i := range vectors[r] {
			vectors[r][i] = float64(r*n + i)
		}
	}
	deadBefore := append([]float64(nil), vectors[1]...)

	// chunk < n forces the re-chunked multi-segment path.
	if err := AllReduceMeanChunkedGroup(g, vectors, 64); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		// mean over live ranks 0, 2, 3.
		want := (float64(0*n+i) + float64(2*n+i) + float64(3*n+i)) / 3
		for _, r := range []int{0, 2, 3} {
			if math.Abs(vectors[r][i]-want) > 1e-12 {
				t.Fatalf("rank %d elem %d = %v, want %v", r, i, vectors[r][i], want)
			}
		}
	}
	if !reflect.DeepEqual(vectors[1], deadBefore) {
		t.Fatal("dead rank's vector was modified")
	}
}

// TestGroupReduceBitIdenticalToFull asserts that with full membership
// the group collective is the plain chunked all-reduce, bit for bit.
func TestGroupReduceBitIdenticalToFull(t *testing.T) {
	const p, n = 3, 777
	mk := func() [][]float64 {
		v := make([][]float64, p)
		for r := range v {
			v[r] = make([]float64, n)
			for i := range v[r] {
				v[r][i] = math.Sin(float64(r*n+i)) * 1e3
			}
		}
		return v
	}
	a, b := mk(), mk()
	g, err := NewGroup(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := AllReduceMeanChunkedGroup(g, a, 128); err != nil {
		t.Fatal(err)
	}
	if err := AllReduceMeanChunked(b, 128); err != nil {
		t.Fatal(err)
	}
	for r := range a {
		for i := range a[r] {
			if a[r][i] != b[r][i] {
				t.Fatalf("rank %d elem %d: group %v != plain %v", r, i, a[r][i], b[r][i])
			}
		}
	}
}

// TestGroupDetectsMidReduceFailure asserts a Fail landing while the
// collective runs surfaces as *RankError — the ring's dead-peer
// detection.
func TestGroupDetectsMidReduceFailure(t *testing.T) {
	const p, n = 3, 1 << 16
	g, err := NewGroup(p)
	if err != nil {
		t.Fatal(err)
	}
	vectors := make([][]float64, p)
	for r := range vectors {
		vectors[r] = make([]float64, n)
	}
	// Deterministic stand-in for "peer died mid-transfer": mark the rank
	// dead while the reduce is in flight from the test's perspective.
	// Fail before the call gives the same detection guarantee for a rank
	// that was in the starting live set of a *previous* snapshot; here we
	// fail between snapshot and completion via a racing goroutine — to
	// stay deterministic we instead fail immediately after start using
	// the synchronous path: fail a rank, then verify a collective started
	// with it live reports it. Simulate by snapshotting manually:
	done := make(chan error, 1)
	go func() {
		done <- AllReduceMeanChunkedGroup(g, vectors, 256)
	}()
	g.Fail(1)
	err = <-done
	if err != nil {
		var re *RankError
		if !errors.As(err, &re) || re.Rank != 1 {
			t.Fatalf("got %v, want RankError{1}", err)
		}
		return
	}
	// The reduce may have completed before Fail landed; rerun — now the
	// dead rank was live at no point, so the reduce succeeds over
	// survivors.
	if err := AllReduceMeanChunkedGroup(g, vectors, 256); err != nil {
		t.Fatalf("post-failure reduce over survivors: %v", err)
	}
}

// TestGroupAllDeadReturnsRankError asserts a fully-dead group cannot
// host a collective.
func TestGroupAllDeadReturnsRankError(t *testing.T) {
	g, err := NewGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	g.Fail(0)
	var re *RankError
	if err := AllReduceMeanChunkedGroup(g, [][]float64{{1}}, 0); !errors.As(err, &re) {
		t.Fatalf("got %v, want RankError", err)
	}
	if err := BroadcastGroup(g, [][]float64{{1}}); !errors.As(err, &re) {
		t.Fatalf("broadcast got %v, want RankError", err)
	}
}

// TestBroadcastGroupSkipsDead asserts recovery broadcast sources from
// the lowest live rank and leaves dead ranks untouched.
func TestBroadcastGroupSkipsDead(t *testing.T) {
	g, err := NewGroup(3)
	if err != nil {
		t.Fatal(err)
	}
	g.Fail(0)
	vectors := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	if err := BroadcastGroup(g, vectors); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vectors, [][]float64{{1, 1}, {2, 2}, {2, 2}}) {
		t.Fatalf("vectors = %v", vectors)
	}
}
