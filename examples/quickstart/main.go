// Quickstart: generate one synthetic Sentinel-2 polar scene, remove thin
// clouds and shadows, auto-label it with the paper's HSV thresholds, and
// score the labels against ground truth — the whole §III-A/B pipeline in
// thirty lines of API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"seaice/internal/autolabel"
	"seaice/internal/cloudfilter"
	"seaice/internal/metrics"
	"seaice/internal/scene"
)

func main() {
	log.SetFlags(0)

	// 1. A 512² scene of the synthetic Ross Sea with thin clouds.
	sc, err := scene.Generate(scene.DefaultConfig(2019))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scene: %dx%d, cloud/shadow over %.1f%% of pixels\n",
		sc.Image.W, sc.Image.H, 100*sc.CloudFraction)

	// 2. Thin-cloud and shadow filtering.
	filtered := cloudfilter.FilterDefault(sc.Image)

	// 3. Color-based auto-labeling, before and after the filter.
	labOriginal, err := autolabel.LabelPaper(sc.Image)
	if err != nil {
		log.Fatal(err)
	}
	labFiltered, err := autolabel.LabelPaper(filtered.Image)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Validation against the ground truth ("manual labels").
	accOrig, err := metrics.PixelAccuracy(sc.Truth, labOriginal)
	if err != nil {
		log.Fatal(err)
	}
	accFilt, err := metrics.PixelAccuracy(sc.Truth, labFiltered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auto-label accuracy: original %.2f%% → filtered %.2f%%\n",
		100*accOrig, 100*accFilt)

	conf := metrics.NewConfusion(3)
	if err := conf.AddLabels(sc.Truth, labFiltered); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfiltered auto-label confusion matrix:")
	fmt.Println(conf)
}
