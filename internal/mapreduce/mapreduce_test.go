package mapreduce

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"seaice/internal/perfmodel"
)

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// TestCollectEqualsSerial: for any partitioning and either runner, the
// engine must produce exactly the serial map result in order.
func TestCollectEqualsSerial(t *testing.T) {
	f := func(nRaw, pRaw uint8) bool {
		n := int(nRaw) % 200
		parts := int(pRaw)%8 + 1
		ds, err := Parallelize(ints(n), parts)
		if err != nil {
			return false
		}
		mapped := Map(ds, func(v int) (int, error) { return v*3 + 1, nil })
		got, _, err := Collect(mapped, LocalRunner{Parallelism: 3})
		if err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i*3+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectSimRunnerEqualsSerial(t *testing.T) {
	ds, _ := Parallelize(ints(100), 7)
	mapped := Map(ds, func(v int) (int, error) { return v * v, nil })
	r, err := NewSimRunner(2, 2, StageCost{PerItem: 0.001})
	if err != nil {
		t.Fatalf("runner: %v", err)
	}
	got, stats, err := Collect(mapped, r)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	if !stats.Virtual || stats.Items != 100 {
		t.Fatalf("stats wrong: %+v", stats)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestMapIsLazy(t *testing.T) {
	calls := 0
	ds, _ := Parallelize(ints(10), 2)
	_ = Map(ds, func(v int) (int, error) {
		calls++
		return v, nil
	})
	if calls != 0 {
		t.Fatalf("map ran %d items before any action (must be lazy)", calls)
	}
}

func TestFilter(t *testing.T) {
	ds, _ := Parallelize(ints(20), 3)
	evens := Filter(ds, func(v int) bool { return v%2 == 0 })
	got, _, err := Collect(evens, LocalRunner{})
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	if len(got) != 10 {
		t.Fatalf("kept %d, want 10", len(got))
	}
	n, _, err := Count(evens, LocalRunner{})
	if err != nil || n != 10 {
		t.Fatalf("count %d err %v", n, err)
	}
}

func TestReduceAssociativeFold(t *testing.T) {
	ds, _ := Parallelize(ints(101), 5)
	sum, _, err := Reduce(ds, LocalRunner{}, func(a, b int) int { return a + b })
	if err != nil {
		t.Fatalf("reduce: %v", err)
	}
	if sum != 101*100/2 {
		t.Fatalf("sum %d, want %d", sum, 101*100/2)
	}
}

func TestReduceEmptyDataset(t *testing.T) {
	ds, _ := Parallelize([]int{}, 3)
	_, _, err := Reduce(ds, LocalRunner{}, func(a, b int) int { return a + b })
	if !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("got %v, want ErrEmptyDataset", err)
	}
}

func TestErrorPropagatesFromUDF(t *testing.T) {
	ds, _ := Parallelize(ints(10), 2)
	bad := Map(ds, func(v int) (int, error) {
		if v == 7 {
			return 0, fmt.Errorf("udf failed on %d", v)
		}
		return v, nil
	})
	if _, _, err := Collect(bad, LocalRunner{}); err == nil {
		t.Fatal("expected UDF error from local runner")
	}
	r, _ := NewSimRunner(1, 2, StageCost{PerItem: 0.01})
	if _, _, err := Collect(bad, r); err == nil {
		t.Fatal("expected UDF error from sim runner")
	}
}

func TestGenerateDataset(t *testing.T) {
	ds, err := Generate(25, 4, func(i int) (int, error) { return i * 10, nil })
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	got, _, err := Collect(ds, LocalRunner{})
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	for i, v := range got {
		if v != i*10 {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestLineageDescribesChain(t *testing.T) {
	ds, _ := Parallelize(ints(5), 2)
	m := Map(ds, func(v int) (int, error) { return v, nil })
	f := Filter(m, func(int) bool { return true })
	if f.Lineage() != "parallelize[5 items, 2 parts] → map → filter" {
		t.Fatalf("lineage %q", f.Lineage())
	}
	if f.NumPartitions() != 2 {
		t.Fatalf("partitions %d", f.NumPartitions())
	}
}

func TestInvalidPartitions(t *testing.T) {
	if _, err := Parallelize(ints(5), 0); err == nil {
		t.Fatal("expected partition-count error")
	}
	if _, err := Generate(5, -1, func(i int) (int, error) { return 0, nil }); err == nil {
		t.Fatal("expected partition-count error")
	}
	if _, err := Generate(-5, 1, func(i int) (int, error) { return 0, nil }); err == nil {
		t.Fatal("expected item-count error")
	}
}

// TestSimRunnerVirtualTimeMatchesModel: with the calibrated Table II
// reduce model and even partitions, the virtual stage time must land on
// the analytic SparkStage prediction.
func TestSimRunnerVirtualTimeMatchesModel(t *testing.T) {
	const items = 4224
	stage := perfmodel.PaperReduceStage()
	cost := CostFromSparkStage(stage, items)
	for _, tc := range []struct{ e, c int }{{1, 1}, {1, 4}, {2, 2}, {4, 4}} {
		r, err := NewSimRunner(tc.e, tc.c, cost)
		if err != nil {
			t.Fatalf("runner: %v", err)
		}
		ds, _ := Generate(items, tc.e*tc.c*4, func(i int) (int, error) { return i, nil })
		_, stats, err := Collect(ds, r)
		if err != nil {
			t.Fatalf("collect: %v", err)
		}
		want := stage.Time(tc.e, tc.c)
		// Partition rounding introduces tiny deviations.
		if math.Abs(stats.Elapsed-want) > want*0.02 {
			t.Fatalf("%dx%d: virtual %f, model %f", tc.e, tc.c, stats.Elapsed, want)
		}
	}
}

// TestStageStatsItems counts processed elements.
func TestStageStatsItems(t *testing.T) {
	ds, _ := Parallelize(ints(42), 5)
	_, stats, err := Collect(ds, LocalRunner{})
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	if stats.Items != 42 || stats.Virtual {
		t.Fatalf("stats %+v", stats)
	}
}
