package tensor

import "fmt"

// This file preserves the original serial kernels exactly as they shipped
// before the parallel training engine. They are the reference semantics the
// engine kernels are property-tested against bit-for-bit, and the baseline
// that BenchmarkTrainStep/BenchmarkMatMul compare the engine to. Keep them
// boring: no blocking, no unrolling, no parallelism.

// MatMulRef is the pre-engine serial C = A×B (ikj loop order).
func MatMulRef[S Scalar](a, b *Tensor[S]) *Tensor[S] {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %v × %v", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New[S](m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.Data[kk*n : (kk+1)*n]
			for j := range brow {
				crow[j] += av * brow[j]
			}
		}
	}
	return c
}

// MatMulATBRef is the pre-engine serial C = Aᵀ×B.
func MatMulATBRef[S Scalar](a, b *Tensor[S]) *Tensor[S] {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[0] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: matmulATB shape mismatch %v × %v", a.Shape, b.Shape))
	}
	k, m, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New[S](m, n)
	for kk := 0; kk < k; kk++ {
		arow := a.Data[kk*m : (kk+1)*m]
		brow := b.Data[kk*n : (kk+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := c.Data[i*n : (i+1)*n]
			for j := range brow {
				crow[j] += av * brow[j]
			}
		}
	}
	return c
}

// MatMulABTRef is the pre-engine serial C = A×Bᵀ.
func MatMulABTRef[S Scalar](a, b *Tensor[S]) *Tensor[S] {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("tensor: matmulABT shape mismatch %v × %v", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[0]
	c := New[S](m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var sum S
			for kk := range arow {
				sum += arow[kk] * brow[kk]
			}
			crow[j] = sum
		}
	}
	return c
}

// Im2ColRef is the pre-engine serial unfold.
func Im2ColRef[S Scalar](x *Tensor[S], kh, kw, stride, pad int) *Tensor[S] {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("tensor: Im2Col needs NCHW input, got %v", x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col output empty for input %v kernel %dx%d", x.Shape, kh, kw))
	}
	cols := New[S](c*kh*kw, n*oh*ow)
	colW := n * oh * ow

	for ch := 0; ch < c; ch++ {
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := ((ch*kh+ky)*kw + kx) * colW
				for img := 0; img < n; img++ {
					src := ((img*c + ch) * h) * w
					dst := row + img*oh*ow
					for oy := 0; oy < oh; oy++ {
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= h {
							continue // stays zero
						}
						srow := src + iy*w
						drow := dst + oy*ow
						for ox := 0; ox < ow; ox++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= w {
								continue
							}
							cols.Data[drow+ox] = x.Data[srow+ix]
						}
					}
				}
			}
		}
	}
	return cols
}

// Col2ImRef is the pre-engine serial fold.
func Col2ImRef[S Scalar](cols *Tensor[S], n, c, h, w, kh, kw, stride, pad int) *Tensor[S] {
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	if cols.Shape[0] != c*kh*kw || cols.Shape[1] != n*oh*ow {
		panic(fmt.Sprintf("tensor: Col2Im shape %v does not match target %dx%dx%dx%d k%dx%d", cols.Shape, n, c, h, w, kh, kw))
	}
	x := New[S](n, c, h, w)
	colW := n * oh * ow

	for ch := 0; ch < c; ch++ {
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := ((ch*kh+ky)*kw + kx) * colW
				for img := 0; img < n; img++ {
					dst := ((img*c + ch) * h) * w
					src := row + img*oh*ow
					for oy := 0; oy < oh; oy++ {
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= h {
							continue
						}
						drow := dst + iy*w
						srow := src + oy*ow
						for ox := 0; ox < ow; ox++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= w {
								continue
							}
							x.Data[drow+ix] += cols.Data[srow+ox]
						}
					}
				}
			}
		}
	}
	return x
}
