package serve

import (
	"math"
	"sync"
	"time"
)

// svcAlpha is the EWMA smoothing factor for service-time observations:
// heavy enough that the model tracks a node turning slow within a few
// batches, light enough that one outlier batch does not swing admission.
const svcAlpha = 0.2

// SvcModel is the predictive admission model: an EWMA service-time
// estimate per batch size, fed by every executed forward pass, plus an
// EWMA of the achieved batch size. From queue depth and worker count it
// predicts how long a newly enqueued request will take to complete, and
// admission compares that prediction against the request's deadline —
// replacing the blanket "queue full ⇒ 429" bound with "model says this
// deadline cannot be met ⇒ 429 now, with a model-derived Retry-After".
//
// All methods are safe for concurrent use. The zero prediction (no
// observations yet) is optimistic: with no data the model admits
// everything, and the first observed batches calibrate it.
type SvcModel struct {
	mu       sync.Mutex
	perBatch []float64 // EWMA seconds per executed batch, indexed by batch size
	seen     []bool    // whether perBatch[i] has ever been observed
	perTile  float64   // EWMA seconds per tile (fallback for unseen sizes)
	avgBatch float64   // EWMA achieved batch size
}

// NewSvcModel sizes the model for batches up to maxBatch tiles.
func NewSvcModel(maxBatch int) *SvcModel {
	if maxBatch < 1 {
		maxBatch = 1
	}
	return &SvcModel{
		perBatch: make([]float64, maxBatch+1),
		seen:     make([]bool, maxBatch+1),
		avgBatch: 1,
	}
}

// Observe feeds one executed batch (size tiles, duration d) into the
// EWMAs.
func (m *SvcModel) Observe(size int, d time.Duration) {
	if m == nil || size < 1 {
		return
	}
	secs := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	if size >= len(m.perBatch) {
		size = len(m.perBatch) - 1
	}
	if !m.seen[size] {
		m.perBatch[size] = secs
		m.seen[size] = true
	} else {
		m.perBatch[size] += svcAlpha * (secs - m.perBatch[size])
	}
	pt := secs / float64(size)
	if m.perTile == 0 {
		m.perTile = pt
	} else {
		m.perTile += svcAlpha * (pt - m.perTile)
	}
	m.avgBatch += svcAlpha * (float64(size) - m.avgBatch)
}

// batchTime estimates one batch execution of the given size, preferring
// the directly observed EWMA for that size and falling back to the
// per-tile rate. Callers hold m.mu.
func (m *SvcModel) batchTime(size int) float64 {
	if size < 1 {
		size = 1
	}
	if size >= len(m.perBatch) {
		size = len(m.perBatch) - 1
	}
	if m.seen[size] {
		return m.perBatch[size]
	}
	return m.perTile * float64(size)
}

// PredictWait estimates the completion time (from now) of a request
// enqueued behind queueDepth others on workers parallel workers: the
// backlog drains in ceil(depth/avgBatch) batches spread across the
// workers, plus the batch that will carry the new request itself.
// Returns 0 while the model has no observations.
func (m *SvcModel) PredictWait(queueDepth, workers int) time.Duration {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.perTile == 0 {
		return 0
	}
	if workers < 1 {
		workers = 1
	}
	ab := m.avgBatch
	if ab < 1 {
		ab = 1
	}
	batchesAhead := math.Ceil(float64(queueDepth) / ab)
	rounds := math.Ceil(batchesAhead/float64(workers)) + 1 // +1: the request's own batch
	secs := rounds * m.batchTime(int(math.Round(ab)))
	return time.Duration(secs * float64(time.Second))
}

// AvgBatch reports the EWMA achieved batch size (1 before any
// observation).
func (m *SvcModel) AvgBatch() float64 {
	if m == nil {
		return 1
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.avgBatch
}
