// Package autolabel implements the paper's central contribution: automatic
// labeling of Sentinel-2 sea-ice imagery by HSV color-threshold
// segmentation (§III-B). Three non-intersecting HSV boxes — determined by
// the authors by inspecting Ross Sea summer imagery — produce three binary
// masks (thick/snow-covered ice, thin/young ice, open water) which are
// merged into a per-pixel class map used as training labels for the U-Net.
//
// Parallelism/bit-identity guarantees: Segment and Label stripe rows
// across pool.Shared(); every pixel's class depends only on that pixel's
// HSV value, so the output is byte-identical to the serial path at any
// worker count (asserted in the package tests). Label fuses the
// three-mask classification into one pass over the image.
package autolabel

import (
	"fmt"

	"seaice/internal/colorspace"
	"seaice/internal/pool"
	"seaice/internal/raster"
)

// minStripeRows is the smallest per-worker row stripe: below this the
// per-pixel work cannot amortize the pool dispatch.
const minStripeRows = 32

// Thresholds holds the HSV box per class.
type Thresholds struct {
	ThickIce colorspace.Bounds
	ThinIce  colorspace.Bounds
	Water    colorspace.Bounds
}

// PaperThresholds returns the published Ross Sea summer-season limits
// (§III-B): thick ice (0,0,205)–(185,255,255), thin ice (0,0,31)–
// (185,255,204), open water (0,0,0)–(185,255,30). The paper's upper hue
// bound of 185 exceeds OpenCV's hue range [0,180) and therefore acts as
// "any hue"; we keep the published value for fidelity.
func PaperThresholds() Thresholds {
	anyHue := uint8(185)
	return Thresholds{
		ThickIce: colorspace.Bounds{
			Lo: colorspace.HSV{H: 0, S: 0, V: 205},
			Hi: colorspace.HSV{H: anyHue, S: 255, V: 255},
		},
		ThinIce: colorspace.Bounds{
			Lo: colorspace.HSV{H: 0, S: 0, V: 31},
			Hi: colorspace.HSV{H: anyHue, S: 255, V: 204},
		},
		Water: colorspace.Bounds{
			Lo: colorspace.HSV{H: 0, S: 0, V: 0},
			Hi: colorspace.HSV{H: anyHue, S: 255, V: 30},
		},
	}
}

// Validate checks that the three value bands are non-intersecting and
// jointly cover [0,255] — the property the paper calls "non-intersecting
// borders [that] can be readily evaluated against individual pixels".
func (t Thresholds) Validate() error {
	// Compare in int: uint8 arithmetic would wrap 255+1 to 0, letting a
	// degenerate config like Water.Hi.V=255, ThinIce.Lo.V=0 (fully
	// overlapping bands) pass as "contiguous".
	if int(t.Water.Hi.V)+1 != int(t.ThinIce.Lo.V) {
		return fmt.Errorf("autolabel: water/thin value bands not contiguous: %d vs %d", t.Water.Hi.V, t.ThinIce.Lo.V)
	}
	if int(t.ThinIce.Hi.V)+1 != int(t.ThickIce.Lo.V) {
		return fmt.Errorf("autolabel: thin/thick value bands not contiguous: %d vs %d", t.ThinIce.Hi.V, t.ThickIce.Lo.V)
	}
	if t.Water.Lo.V != 0 || t.ThickIce.Hi.V != 255 {
		return fmt.Errorf("autolabel: value bands do not cover [0,255]")
	}
	return nil
}

// Masks holds the three binary class masks produced by segmentation.
type Masks struct {
	ThickIce *raster.Gray
	ThinIce  *raster.Gray
	Water    *raster.Gray
}

// Segment converts the image to HSV and produces the three class masks
// with OpenCV-style inRange tests. Pixel rows are independent, so the
// image is split into row stripes distributed over the shared pool — the
// same Fig-9 parallelization the paper gets from its multiprocessing pool
// — and the output is byte-identical at any worker count.
func Segment(img *raster.RGB, t Thresholds) Masks {
	hsv := colorspace.NewPlanes(img.W, img.H)
	m := Masks{
		ThickIce: raster.NewGray(img.W, img.H),
		ThinIce:  raster.NewGray(img.W, img.H),
		Water:    raster.NewGray(img.W, img.H),
	}
	pool.Shared().MustMapRanges(img.H, minStripeRows, func(y0, y1 int) {
		colorspace.ToHSVRows(img, hsv, y0, y1)
		colorspace.InRangeRows(hsv, t.ThickIce, m.ThickIce, y0, y1)
		colorspace.InRangeRows(hsv, t.ThinIce, m.ThinIce, y0, y1)
		colorspace.InRangeRows(hsv, t.Water, m.Water, y0, y1)
	})
	return m
}

// Merge combines the class masks into a label map. Pixels claimed by no
// mask (possible only with non-paper thresholds) default to thin ice, the
// middle class; pixels claimed by several masks resolve brightest-first,
// but with the paper's contiguous bands neither case occurs.
func Merge(m Masks) (*raster.Labels, error) {
	w, h := m.ThickIce.W, m.ThickIce.H
	if m.ThinIce.W != w || m.ThinIce.H != h || m.Water.W != w || m.Water.H != h {
		return nil, fmt.Errorf("autolabel: mask size mismatch")
	}
	out := raster.NewLabels(w, h)
	for i := 0; i < w*h; i++ {
		// Brightest-first: thick before thin before water, so a pixel
		// claimed by overlapping bands resolves to the brightest class.
		switch {
		case m.ThickIce.Pix[i] != 0:
			out.Pix[i] = raster.ClassThickIce
		case m.ThinIce.Pix[i] != 0:
			out.Pix[i] = raster.ClassThinIce
		case m.Water.Pix[i] != 0:
			out.Pix[i] = raster.ClassWater
		default:
			out.Pix[i] = raster.ClassThinIce
		}
	}
	return out, nil
}

// Label runs the full auto-labeling step on one image: segmentation
// followed by the merge. This is the per-tile unit of work that the
// multiprocessing pool and the map-reduce engine parallelize. Instead of
// materializing the three masks it classifies each row stripe in one
// fused pass (convert to HSV, test the three boxes, resolve
// brightest-first with the thin-ice default), which is byte-identical to
// Merge(Segment(img, t)) — the equivalence tests assert exactly that.
func Label(img *raster.RGB, t Thresholds) (*raster.Labels, error) {
	out := raster.NewLabels(img.W, img.H)
	hsv := colorspace.NewPlanes(img.W, img.H)
	err := pool.Shared().MapRanges(img.H, minStripeRows, func(y0, y1 int) error {
		colorspace.ToHSVRows(img, hsv, y0, y1)
		for i := y0 * img.W; i < y1*img.W; i++ {
			px := colorspace.HSV{H: hsv.Hue[i], S: hsv.Sat[i], V: hsv.Val[i]}
			switch {
			case t.ThickIce.Contains(px):
				out.Pix[i] = raster.ClassThickIce
			case t.ThinIce.Contains(px):
				out.Pix[i] = raster.ClassThinIce
			case t.Water.Contains(px):
				out.Pix[i] = raster.ClassWater
			default:
				out.Pix[i] = raster.ClassThinIce
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// LabelPaper labels with the published Ross Sea thresholds.
func LabelPaper(img *raster.RGB) (*raster.Labels, error) {
	return Label(img, PaperThresholds())
}
