package core

import (
	"fmt"
	"time"

	"seaice/internal/autolabel"
	"seaice/internal/cloudfilter"
	"seaice/internal/dataset"
	"seaice/internal/ddp"
	"seaice/internal/mapreduce"
	"seaice/internal/perfmodel"
	"seaice/internal/pool"
	"seaice/internal/raster"
	"seaice/internal/scene"
	"seaice/internal/train"
	"seaice/internal/unet"
)

// labelTile applies the auto-labeler to one image with the build's
// thresholds.
func labelTile(img *raster.RGB, build dataset.BuildConfig) (*raster.Labels, error) {
	return autolabel.Label(img, build.Labels)
}

// filterScene applies the build's thin-cloud/shadow filter to a scene.
func filterScene(img *raster.RGB, build dataset.BuildConfig) *raster.RGB {
	return cloudfilter.Filter(img, build.Filter).Image
}

// FilterScene applies the build's thin-cloud/shadow filter to a scene —
// the exported seam the serve coordinator uses to filter once at scene
// scale before sharding tiles across worker nodes.
func FilterScene(img *raster.RGB, build dataset.BuildConfig) *raster.RGB {
	return filterScene(img, build)
}

// FilterSceneDefault applies the default thin-cloud/shadow filter — the
// per-scene unit of work of the §IV-C2 throughput measurement.
func FilterSceneDefault(img *raster.RGB) *raster.RGB {
	return cloudfilter.FilterDefault(img).Image
}

// LabelDefault applies the paper's published auto-label thresholds.
func LabelDefault(img *raster.RGB) (*raster.Labels, error) {
	return autolabel.LabelPaper(img)
}

// ---------------------------------------------------------------------
// Table I / Fig 10 — Python-multiprocessing-style pool speedup
// ---------------------------------------------------------------------

// Table1Row is one row of Table I.
type Table1Row struct {
	Processes     int
	PaperTime     float64 // seconds, from the paper
	PaperSpeedup  float64
	ModelTime     float64 // SMT machine model prediction
	ModelSpeedup  float64
	MeasuredTime  float64 // real pool run on this host (seconds)
	MeasuredItems int
}

// Table1Paper holds the published Table I (sequential 17.40 s).
var Table1Paper = []Table1Row{
	{Processes: 1, PaperTime: 17.40, PaperSpeedup: 1.0},
	{Processes: 2, PaperTime: 8.89, PaperSpeedup: 2.0},
	{Processes: 4, PaperTime: 4.69, PaperSpeedup: 3.7},
	{Processes: 6, PaperTime: 4.10, PaperSpeedup: 4.2},
	{Processes: 8, PaperTime: 3.89, PaperSpeedup: 4.5},
}

// RunTable1 reproduces Table I: the calibrated SMT workstation model
// supplies the paper-hardware times, and (optionally) the real worker
// pool labels tiles to validate pool semantics and measure this host.
func RunTable1(tiles []*raster.RGB, measure bool) ([]Table1Row, error) {
	machine := perfmodel.PaperWorkstation()
	seq := Table1Paper[0].PaperTime

	rows := make([]Table1Row, len(Table1Paper))
	copy(rows, Table1Paper)
	for i := range rows {
		n := rows[i].Processes
		rows[i].ModelSpeedup = machine.Speedup(n)
		rows[i].ModelTime = machine.Time(seq, n)
		if !measure {
			continue
		}
		p := pool.New(n)
		start := time.Now()
		_, err := pool.MapSlice(p, tiles, func(img *raster.RGB) (*raster.Labels, error) {
			res := cloudfilter.FilterDefault(img)
			return autolabel.LabelPaper(res.Image)
		})
		if err != nil {
			return nil, fmt.Errorf("core: table1: %w", err)
		}
		rows[i].MeasuredTime = time.Since(start).Seconds()
		rows[i].MeasuredItems = len(tiles)
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Table II — PySpark map-reduce scaling on the simulated GCD cluster
// ---------------------------------------------------------------------

// Table2Row is one cell group of Table II.
type Table2Row struct {
	Executors, Cores                 int
	PaperLoad, PaperMap, PaperReduce float64
	PaperSpeedupLoad                 float64
	PaperSpeedupReduce               float64
	SimLoad, SimMap, SimReduce       float64
	SimSpeedupLoad, SimSpeedupReduce float64
	Items                            int
}

// Table2Paper holds the published Table II.
var Table2Paper = []Table2Row{
	{Executors: 1, Cores: 1, PaperLoad: 108, PaperMap: 0.4, PaperReduce: 390, PaperSpeedupLoad: 1, PaperSpeedupReduce: 1},
	{Executors: 1, Cores: 2, PaperLoad: 58, PaperMap: 0.4, PaperReduce: 174, PaperSpeedupLoad: 1.86, PaperSpeedupReduce: 2.24},
	{Executors: 1, Cores: 4, PaperLoad: 33, PaperMap: 0.3, PaperReduce: 72, PaperSpeedupLoad: 3.27, PaperSpeedupReduce: 5.42},
	{Executors: 2, Cores: 1, PaperLoad: 56, PaperMap: 0.3, PaperReduce: 156, PaperSpeedupLoad: 1.93, PaperSpeedupReduce: 2.5},
	{Executors: 2, Cores: 2, PaperLoad: 31, PaperMap: 0.3, PaperReduce: 84, PaperSpeedupLoad: 3.48, PaperSpeedupReduce: 4.64},
	{Executors: 2, Cores: 4, PaperLoad: 19, PaperMap: 0.3, PaperReduce: 41, PaperSpeedupLoad: 5.68, PaperSpeedupReduce: 9.51},
	{Executors: 4, Cores: 1, PaperLoad: 31, PaperMap: 0.2, PaperReduce: 78, PaperSpeedupLoad: 3.48, PaperSpeedupReduce: 5},
	{Executors: 4, Cores: 2, PaperLoad: 17, PaperMap: 0.2, PaperReduce: 39, PaperSpeedupLoad: 6.35, PaperSpeedupReduce: 10},
	{Executors: 4, Cores: 4, PaperLoad: 12, PaperMap: 0.3, PaperReduce: 24, PaperSpeedupLoad: 9, PaperSpeedupReduce: 16.25},
}

// RunTable2 replays the paper's PySpark job on the simulated cluster for
// every executor×core configuration: a load stage (scene tiles read into
// the distributed dataset), a lazy map registering the auto-label UDF,
// and the reduce/collect stage that executes it. The work is real (the
// given scenes are really filtered and labeled by the engine); the clock
// is the calibrated virtual one.
func RunTable2(scenes []*scene.Scene, tileSize int) ([]Table2Row, error) {
	// Materialize tiles once; the engine re-labels them per config.
	var tiles []*raster.RGB
	for _, sc := range scenes {
		ts, _, err := raster.Split(sc.Image, tileSize, tileSize)
		if err != nil {
			return nil, fmt.Errorf("core: table2: %w", err)
		}
		for _, t := range ts {
			tiles = append(tiles, t.Image)
		}
	}
	n := len(tiles)
	if n == 0 {
		return nil, fmt.Errorf("core: table2: no tiles")
	}

	loadCost := mapreduce.CostFromSparkStage(perfmodel.PaperLoadStage(), n)
	reduceCost := mapreduce.CostFromSparkStage(perfmodel.PaperReduceStage(), n)

	rows := make([]Table2Row, len(Table2Paper))
	copy(rows, Table2Paper)
	var base1x1Load, base1x1Reduce float64
	for i := range rows {
		e, c := rows[i].Executors, rows[i].Cores
		parts := e * c * 4 // Spark convention: a few partitions per slot

		// Stage 1: load. Generating/decoding the tile data is the
		// "read into the PySpark dataframe" step.
		loadRunner, err := mapreduce.NewSimRunner(e, c, loadCost)
		if err != nil {
			return nil, err
		}
		ds, err := mapreduce.Generate(n, parts, func(i int) (*raster.RGB, error) {
			return tiles[i], nil
		})
		if err != nil {
			return nil, err
		}
		loaded, loadStats, err := mapreduce.Collect(ds, loadRunner)
		if err != nil {
			return nil, err
		}

		// Stage 2: the lazy map — driver-side registration only.
		parallel, err := mapreduce.Parallelize(loaded, parts)
		if err != nil {
			return nil, err
		}
		labeled := mapreduce.Map(parallel, func(img *raster.RGB) (*raster.Labels, error) {
			res := cloudfilter.FilterDefault(img)
			return autolabel.LabelPaper(res.Image)
		})
		mapTime := perfmodel.PaperMapTime

		// Stage 3: reduce/collect triggers the UDF on the cluster.
		reduceRunner, err := mapreduce.NewSimRunner(e, c, reduceCost)
		if err != nil {
			return nil, err
		}
		labels, reduceStats, err := mapreduce.Collect(labeled, reduceRunner)
		if err != nil {
			return nil, err
		}
		if len(labels) != n {
			return nil, fmt.Errorf("core: table2: %d labels for %d tiles", len(labels), n)
		}

		rows[i].SimLoad = loadStats.Elapsed
		rows[i].SimMap = mapTime
		rows[i].SimReduce = reduceStats.Elapsed
		rows[i].Items = n
		if e == 1 && c == 1 {
			base1x1Load = loadStats.Elapsed
			base1x1Reduce = reduceStats.Elapsed
		}
	}
	for i := range rows {
		if rows[i].SimLoad > 0 {
			rows[i].SimSpeedupLoad = base1x1Load / rows[i].SimLoad
		}
		if rows[i].SimReduce > 0 {
			rows[i].SimSpeedupReduce = base1x1Reduce / rows[i].SimReduce
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Table III / Fig 12 — Horovod distributed U-Net training
// ---------------------------------------------------------------------

// Table3Row is one row of Table III.
type Table3Row struct {
	GPUs            int
	PaperTotal      float64
	PaperPerEpoch   float64
	PaperThroughput float64
	PaperSpeedup    float64
	SimTotal        float64
	SimPerEpoch     float64
	SimThroughput   float64
	SimSpeedup      float64
	FinalLoss       float64
}

// Table3Paper holds the published Table III (50 epochs, batch 32/GPU,
// 3379 training tiles = 80% of 4224).
var Table3Paper = []Table3Row{
	{GPUs: 1, PaperTotal: 280.72, PaperPerEpoch: 5.5, PaperThroughput: 585.88, PaperSpeedup: 1.00},
	{GPUs: 2, PaperTotal: 142.98, PaperPerEpoch: 2.778, PaperThroughput: 1160.81, PaperSpeedup: 1.96},
	{GPUs: 4, PaperTotal: 74.09, PaperPerEpoch: 1.45, PaperThroughput: 2229.56, PaperSpeedup: 3.79},
	{GPUs: 6, PaperTotal: 51.56, PaperPerEpoch: 0.97, PaperThroughput: 3330.03, PaperSpeedup: 5.44},
	{GPUs: 8, PaperTotal: 38.91, PaperPerEpoch: 0.79, PaperThroughput: 4248.56, PaperSpeedup: 7.21},
}

// Table3Config scales the real training the harness runs per GPU count.
type Table3Config struct {
	Samples    []train.Sample
	Model      unet.Config
	Epochs     int // virtual-clock epochs reported for the paper's 50
	RealEpochs int // epochs of real gradient work per configuration
	BatchPer   int
	LR         float64
	Seed       uint64
}

// RunTable3 reproduces Table III: per GPU count it runs real synchronous
// data-parallel training (goroutine GPUs + ring all-reduce) on the given
// sample set for RealEpochs, and reports the paper-scale virtual timing
// from the calibrated DGX model for Epochs epochs with the paper's
// training-set size.
func RunTable3(cfg Table3Config) ([]Table3Row, error) {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 50
	}
	if cfg.RealEpochs <= 0 {
		cfg.RealEpochs = 1
	}
	dgx := perfmodel.PaperDGX()
	const paperTrainSize = 3379 // 80% of 4224 tiles

	rows := make([]Table3Row, len(Table3Paper))
	copy(rows, Table3Paper)
	for i := range rows {
		p := rows[i].GPUs
		tr, err := ddp.New[float64](cfg.Model, ddp.Config{
			Workers:        p,
			BatchPerWorker: cfg.BatchPer,
			Epochs:         cfg.RealEpochs,
			LR:             cfg.LR,
			Seed:           cfg.Seed,
			Timing:         dgx,
		})
		if err != nil {
			return nil, fmt.Errorf("core: table3: %w", err)
		}
		res, err := tr.Fit(cfg.Samples)
		if err != nil {
			return nil, fmt.Errorf("core: table3 (%d GPUs): %w", p, err)
		}
		rows[i].FinalLoss = res.Epochs[len(res.Epochs)-1].Loss
		rows[i].SimPerEpoch = dgx.EpochTime(p)
		rows[i].SimTotal = dgx.TotalTime(p, cfg.Epochs)
		rows[i].SimThroughput = dgx.Throughput(p, paperTrainSize)
		rows[i].SimSpeedup = dgx.Speedup(p)
	}
	return rows, nil
}
