package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// randGemmCase fills a random u8×s8 GEMM instance: weights over the full
// signed range, activations over the scheme's [0, 127] domain.
func randGemmCase(rng *rand.Rand, rows, k, npx int) (w []int8, x []uint8) {
	w = make([]int8, rows*k)
	for i := range w {
		w[i] = int8(rng.Intn(255) - 127)
	}
	x = make([]uint8, npx*k)
	for i := range x {
		x[i] = uint8(rng.Intn(QuantMax + 1))
	}
	return w, x
}

// TestGemmBackendParity asserts the backbone determinism contract: every
// registered int8 backend produces int32 outputs exactly equal to the
// scalar reference, across shapes that exercise row-pair tails, k tails
// (k%32 ≠ 0, k < 32), and the degenerate single-column case.
func TestGemmBackendParity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	shapes := []struct{ rows, k, npx int }{
		{1, 1, 1},
		{3, 7, 5},
		{4, 32, 16},
		{5, 33, 17},
		{8, 27, 64},  // first conv layer shape class: k = 9·3
		{16, 72, 33}, // k = 9·8
		{7, 96, 40},
		{2, 301, 9},
	}
	for _, sh := range shapes {
		w, x := randGemmCase(rng, sh.rows, sh.k, sh.npx)
		want := make([]int32, sh.rows*sh.npx)
		gemmU8S8Ref(w, x, sh.rows, sh.k, sh.npx, want)
		for _, name := range Int8BackendNames() {
			ops := backendByName(t, name)
			if !ops.availableForTest() {
				continue
			}
			got := make([]int32, sh.rows*sh.npx)
			for i := range got {
				got[i] = -1 // poison: every slot must be overwritten
			}
			ops.GemmU8S8(w, x, sh.rows, sh.k, sh.npx, got)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("backend %q (%d×%d×%d): out[%d] = %d, reference %d",
						name, sh.rows, sh.k, sh.npx, i, got[i], want[i])
				}
			}
		}
	}
}

// TestGemmExtremes drives the accumulator to its documented worst case:
// all-max weights against all-max activations at a k near the layer cap,
// verifying no backend overflows where the bound says none can.
func TestGemmExtremes(t *testing.T) {
	const rows, k, npx = 2, 9 * 1024, 3 // deepest paper-config layer shape
	if k > Int8AccumBoundTaps {
		t.Fatalf("test shape k=%d exceeds documented bound %d", k, Int8AccumBoundTaps)
	}
	w := make([]int8, rows*k)
	x := make([]uint8, npx*k)
	for i := range w {
		w[i] = -QuantMax
	}
	for i := range x {
		x[i] = QuantMax
	}
	want := int32(-k * QuantMax * QuantMax)
	for _, name := range Int8BackendNames() {
		ops := backendByName(t, name)
		if !ops.availableForTest() {
			continue
		}
		out := make([]int32, rows*npx)
		ops.GemmU8S8(w, x, rows, k, npx, out)
		for i, v := range out {
			if v != want {
				t.Fatalf("backend %q: out[%d] = %d, want %d", name, i, v, want)
			}
		}
	}
}

func backendByName(t *testing.T, name string) *Int8Ops {
	t.Helper()
	int8Mu.Lock()
	defer int8Mu.Unlock()
	for _, b := range int8Backends {
		if b.Name == name {
			return b
		}
	}
	t.Fatalf("backend %q not registered", name)
	return nil
}

func (o *Int8Ops) availableForTest() bool { return o.available() }

// TestSelectInt8 covers the selection surface: selecting each available
// backend works and sticks; unknown names error and leave the active
// backend unchanged.
func TestSelectInt8(t *testing.T) {
	orig := Int8().Name
	defer func() {
		if err := SelectInt8(orig); err != nil {
			t.Fatalf("restoring backend %q: %v", orig, err)
		}
	}()
	for _, name := range Int8BackendNames() {
		if !backendByName(t, name).availableForTest() {
			continue
		}
		if err := SelectInt8(name); err != nil {
			t.Fatalf("SelectInt8(%q): %v", name, err)
		}
		if got := Int8().Name; got != name {
			t.Fatalf("after SelectInt8(%q), active = %q", name, got)
		}
	}
	if err := SelectInt8("no-such-backend"); err == nil {
		t.Fatal("SelectInt8 accepted an unknown backend")
	}
}

// BenchmarkGemmU8S8 measures each backend on representative conv GEMM
// shapes: enc1/conv2 (mid-encoder), dec2/conv1 (widest k, the post-concat
// decoder conv), and enc0/conv2 (shallow, many pixels).
func BenchmarkGemmU8S8(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	shapes := []struct {
		tag          string
		rows, k, npx int
	}{
		{"enc1c2-16x160x1024", 16, 160, 1024},
		{"dec2c1-32x576x256", 32, 576, 256},
		{"enc0c2-8x96x4096", 8, 96, 4096},
	}
	for _, name := range Int8BackendNames() {
		ops := backendForBench(name)
		if ops == nil || !ops.availableForTest() {
			continue
		}
		for _, sh := range shapes {
			w, x := randGemmCase(rng, sh.rows, sh.k, sh.npx)
			out := make([]int32, sh.rows*sh.npx)
			b.Run(name+"/"+sh.tag, func(b *testing.B) {
				b.SetBytes(int64(sh.rows*sh.k + sh.npx*sh.k))
				for i := 0; i < b.N; i++ {
					ops.GemmU8S8(w, x, sh.rows, sh.k, sh.npx, out)
				}
				b.ReportMetric(float64(sh.rows)*float64(sh.k)*float64(sh.npx)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GMAC/s")
			})
		}
	}
}

func backendForBench(name string) *Int8Ops {
	int8Mu.Lock()
	defer int8Mu.Unlock()
	for _, cand := range int8Backends {
		if cand.Name == name {
			return cand
		}
	}
	return nil
}

func ExampleKind() {
	fmt.Println(KindF64, KindF32, KindInt8)
	// Output: f64 f32 int8
}
