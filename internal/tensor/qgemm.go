// Portable int8 GEMM backends: "ref", the obviously-correct scalar
// kernel every other backend is equality-tested against, and "swar", a
// pure-Go kernel that packs two weight rows into the 32-bit lanes of one
// uint64 so a single 64-bit multiply retires two multiply-accumulates.
// Both compute the exact integer product defined by Int8Ops.GemmU8S8, so
// they are bit-identical to each other and to the AVX2 backend by
// construction.

package tensor

// gemmU8S8Ref computes out[r·npx+c] = Σ_i w[r·k+i]·x[c·k+i] one scalar
// multiply at a time.
func gemmU8S8Ref(w []int8, x []uint8, rows, k, npx int, out []int32) {
	for r := 0; r < rows; r++ {
		wr := w[r*k : (r+1)*k]
		orow := out[r*npx : (r+1)*npx]
		for c := 0; c < npx; c++ {
			xc := x[c*k : (c+1)*k]
			var acc int32
			for i, wv := range wr {
				acc += int32(wv) * int32(xc[i])
			}
			orow[c] = acc
		}
	}
}

// swarMaxK bounds the dot length for which the packed lanes provably
// cannot overflow or carry into each other: each 32-bit lane accumulates
// Σ (w+128)·x ≤ k·255·127, which must stay under 2³² — a slightly
// tighter bound than Int8AccumBoundTaps. Longer products fall back to
// the reference kernel (no real layer comes near either bound).
const swarMaxK = (1<<32 - 1) / (255 * QuantMax)

// gemmU8S8SWAR processes weight rows in pairs. Rows are biased to
// unsigned (w+128 ∈ [1, 255]) and packed as
// p[i] = u0[i] | u1[i]<<32, so p[i]·x[i] accumulates both rows' biased
// products in one 64-bit multiply; the bias is removed afterwards with
// the per-column activation sum: acc_r = lane_r − 128·Σx.
func gemmU8S8SWAR(w []int8, x []uint8, rows, k, npx int, out []int32) {
	if k > swarMaxK {
		gemmU8S8Ref(w, x, rows, k, npx, out)
		return
	}
	colSum := make([]int64, npx)
	for c := 0; c < npx; c++ {
		xc := x[c*k : (c+1)*k]
		var s int64
		for _, v := range xc {
			s += int64(v)
		}
		colSum[c] = s
	}
	packed := make([]uint64, k)
	var r int
	for r = 0; r+2 <= rows; r += 2 {
		w0 := w[r*k : (r+1)*k]
		w1 := w[(r+1)*k : (r+2)*k]
		for i := range packed {
			packed[i] = uint64(uint8(int(w0[i])+128)) | uint64(uint8(int(w1[i])+128))<<32
		}
		o0 := out[r*npx : (r+1)*npx]
		o1 := out[(r+1)*npx : (r+2)*npx]
		for c := 0; c < npx; c++ {
			xc := x[c*k : (c+1)*k]
			var s uint64
			for i, xv := range xc {
				s += packed[i] * uint64(xv)
			}
			bias := 128 * colSum[c]
			o0[c] = int32(int64(uint32(s)) - bias)
			o1[c] = int32(int64(s>>32) - bias)
		}
	}
	if r < rows {
		gemmU8S8Ref(w[r*k:], x, 1, k, npx, out[r*npx:])
	}
}

func init() {
	RegisterInt8(&Int8Ops{Name: "ref", Priority: 0, GemmU8S8: gemmU8S8Ref})
	RegisterInt8(&Int8Ops{Name: "swar", Priority: 10, GemmU8S8: gemmU8S8SWAR})
}
