// Package ring implements the bandwidth-optimal ring all-reduce of
// Patarasuk & Yuan — the gradient-averaging algorithm Horovod uses and
// the paper relies on for distributed U-Net training ("for efficient
// inter-GPU communication, it utilizes a ring-based all-reduce algorithm,
// which has been demonstrated to be bandwidth optimal").
//
// The algorithm runs in two phases over p ranks arranged in a ring, with
// each rank's vector split into p chunks:
//
//   - reduce-scatter: p−1 steps; in step s, rank r sends chunk
//     (r−s) mod p to rank r+1 and accumulates the chunk arriving from
//     rank r−1. After the phase, rank r holds the fully reduced chunk
//     (r+1) mod p.
//   - all-gather: p−1 steps circulating the reduced chunks so every rank
//     ends with the complete reduced vector.
//
// Each rank transfers 2·(p−1)/p · n values in total, which is optimal.
// Ranks run as goroutines connected by channels; the implementation is
// a real concurrent all-reduce, not a simulation.
//
// Parallelism/bit-identity guarantees: the reduce schedule (which chunk
// a rank accumulates at which step) is a pure function of (rank count,
// vector length, chunk size), so floating-point accumulation order —
// and therefore every bit of the result — is identical across runs and
// across goroutine interleavings, for either element precision (the
// ring is generic over Scalar; float32 gradients move half the bytes
// per hop). AllReduceMeanChunked pipelines
// independent chunks concurrently; chunks never share elements, so
// chunking changes wall-clock only, never the result.
package ring

import (
	"fmt"
	"sync"
)

// Scalar is the element constraint: the ring reduces float32 gradient
// vectors (half the wire bytes per reduce) or float64 reference vectors.
// It matches tensor.Scalar; it is redeclared here so the communication
// substrate has no dependency on the tensor package.
type Scalar interface {
	float32 | float64
}

// AllReduceSum performs an in-place ring all-reduce (sum) across the
// vectors; vectors[r] is rank r's input and, on return, every vector
// holds the element-wise sum. All vectors must share one length.
// AllReduceSum blocks until every rank finishes.
func AllReduceSum[S Scalar](vectors [][]S) error {
	p := len(vectors)
	if p == 0 {
		return fmt.Errorf("ring: no ranks")
	}
	n := len(vectors[0])
	for r, v := range vectors {
		if len(v) != n {
			return fmt.Errorf("ring: rank %d has %d values, rank 0 has %d", r, len(v), n)
		}
	}
	if p == 1 || n == 0 {
		return nil
	}

	// chunk boundaries: chunk c covers [bounds[c], bounds[c+1])
	bounds := make([]int, p+1)
	for c := 0; c <= p; c++ {
		bounds[c] = c * n / p
	}

	// links[r] carries chunks from rank r to rank (r+1) mod p. The
	// buffer of 1 lets every rank send before receiving, which is how
	// hardware rings pipeline; with unbuffered channels the uniform
	// send-then-receive schedule would deadlock.
	links := make([]chan []S, p)
	for r := range links {
		links[r] = make(chan []S, 1)
	}

	var wg sync.WaitGroup
	wg.Add(p)
	for r := 0; r < p; r++ {
		go func(rank int) {
			defer wg.Done()
			vec := vectors[rank]
			prev := links[(rank-1+p)%p]
			next := links[rank]

			// reduce-scatter
			for s := 0; s < p-1; s++ {
				sendChunk := ((rank-s)%p + p) % p
				lo, hi := bounds[sendChunk], bounds[sendChunk+1]
				buf := make([]S, hi-lo)
				copy(buf, vec[lo:hi])
				next <- buf

				recvChunk := ((rank-s-1)%p + p) % p
				in := <-prev
				rlo := bounds[recvChunk]
				for i, v := range in {
					vec[rlo+i] += v
				}
			}
			// all-gather
			for s := 0; s < p-1; s++ {
				sendChunk := ((rank+1-s)%p + p) % p
				lo, hi := bounds[sendChunk], bounds[sendChunk+1]
				buf := make([]S, hi-lo)
				copy(buf, vec[lo:hi])
				next <- buf

				recvChunk := ((rank-s)%p + p) % p
				in := <-prev
				rlo := bounds[recvChunk]
				copy(vec[rlo:rlo+len(in)], in)
			}
		}(r)
	}
	wg.Wait()
	return nil
}

// AllReduceMean sums across ranks then divides by the rank count — the
// gradient-averaging step of synchronous data-parallel SGD.
func AllReduceMean[S Scalar](vectors [][]S) error {
	if err := AllReduceSum(vectors); err != nil {
		return err
	}
	inv := S(1) / S(len(vectors))
	for _, v := range vectors {
		for i := range v {
			v[i] *= inv
		}
	}
	return nil
}

// DefaultChunk is the per-segment element count AllReduceMeanChunked
// uses when the caller passes chunk <= 0: 16Ki float64s ≈ 128 KiB per
// rank per segment, small enough that several segments pipeline through
// the ring concurrently, large enough to amortize goroutine startup.
const DefaultChunk = 1 << 14

// maxConcurrentSegments bounds how many chunk all-reduces run at once;
// each segment spawns one goroutine per rank.
const maxConcurrentSegments = 4

// AllReduceMeanChunked splits each rank's vector into segments of at most
// chunk elements and runs an independent ring all-reduce per segment, up
// to maxConcurrentSegments in flight. This is how the distributed trainer
// overlaps communication: with one flattened gradient vector per replica,
// early chunks reduce while later chunks are still queuing instead of one
// serial reduce per parameter. Results equal AllReduceMean's up to
// floating-point association (the per-element rank order depends on chunk
// geometry); all ranks still finish with identical values.
func AllReduceMeanChunked[S Scalar](vectors [][]S, chunk int) error {
	p := len(vectors)
	if p == 0 {
		return fmt.Errorf("ring: no ranks")
	}
	n := len(vectors[0])
	for r, v := range vectors {
		if len(v) != n {
			return fmt.Errorf("ring: rank %d has %d values, rank 0 has %d", r, len(v), n)
		}
	}
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	if p == 1 || n <= chunk {
		return AllReduceMean(vectors)
	}
	nseg := (n + chunk - 1) / chunk
	sem := make(chan struct{}, maxConcurrentSegments)
	errs := make(chan error, nseg)
	var wg sync.WaitGroup
	for s := 0; s < nseg; s++ {
		lo := s * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		views := make([][]S, p)
		for r := range vectors {
			views[r] = vectors[r][lo:hi]
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(views [][]S) {
			defer wg.Done()
			errs <- AllReduceMean(views)
			<-sem
		}(views)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// NaiveAllReduceSum is the gather-broadcast baseline: rank 0 collects
// every vector, reduces, and redistributes. It moves (p−1)·n values
// through a single root in each direction — the bottleneck the ring
// removes — and exists for the ablation benchmarks.
func NaiveAllReduceSum[S Scalar](vectors [][]S) error {
	p := len(vectors)
	if p == 0 {
		return fmt.Errorf("ring: no ranks")
	}
	n := len(vectors[0])
	for r, v := range vectors {
		if len(v) != n {
			return fmt.Errorf("ring: rank %d has %d values, rank 0 has %d", r, len(v), n)
		}
	}
	root := vectors[0]
	for r := 1; r < p; r++ {
		for i, v := range vectors[r] {
			root[i] += v
		}
	}
	for r := 1; r < p; r++ {
		copy(vectors[r], root)
	}
	return nil
}

// Broadcast copies rank 0's vector to every other rank (Horovod's
// BroadcastGlobalVariables at training start).
func Broadcast[S Scalar](vectors [][]S) error {
	if len(vectors) == 0 {
		return fmt.Errorf("ring: no ranks")
	}
	src := vectors[0]
	for r := 1; r < len(vectors); r++ {
		if len(vectors[r]) != len(src) {
			return fmt.Errorf("ring: rank %d has %d values, rank 0 has %d", r, len(vectors[r]), len(src))
		}
		copy(vectors[r], src)
	}
	return nil
}
