// Package tensor provides the dense float64 NCHW tensors underneath the
// from-scratch U-Net. It deliberately implements only what a CNN training
// stack needs — shape bookkeeping, a cache-aware matrix multiply, and the
// im2col/col2im transforms that turn convolutions into matrix products —
// with no autograd: each layer in internal/nn derives its own backward
// pass, validated by finite-difference tests.
package tensor

import (
	"fmt"

	"seaice/internal/noise"
)

// Tensor is a dense row-major tensor.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New allocates a zeroed tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("tensor: invalid dimension %d in %v", s, shape))
		}
		n *= s
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromData wraps existing data; len(data) must match the shape volume.
func FromData(data []float64, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Zero clears all elements in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// SameShape reports whether two tensors have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Reshape returns a view with a new shape of equal volume (shares data).
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v", t.Shape, len(t.Data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// AddInPlace accumulates o into t element-wise.
func (t *Tensor) AddInPlace(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic(fmt.Sprintf("tensor: add size mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// Scale multiplies every element by s in place.
func (t *Tensor) Scale(s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// FillRandn fills the tensor with N(0, std) values from a seeded RNG.
func (t *Tensor) FillRandn(rng *noise.RNG, std float64) {
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
}

// MatMul computes C = A×B for A (m×k) and B (k×n), writing into a fresh
// (m×n) tensor. The ikj loop order keeps the inner loop streaming over
// contiguous rows of B and C, which is the difference between ~100 MFLOP/s
// and ~1 GFLOP/s for the naive triple loop on this workload.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %v × %v", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.Data[kk*n : (kk+1)*n]
			for j := range brow {
				crow[j] += av * brow[j]
			}
		}
	}
	return c
}

// MatMulATB computes C = Aᵀ×B for A (k×m) and B (k×n) without forming the
// transpose: convolution backward passes need this product shape.
func MatMulATB(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[0] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: matmulATB shape mismatch %v × %v", a.Shape, b.Shape))
	}
	k, m, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New(m, n)
	for kk := 0; kk < k; kk++ {
		arow := a.Data[kk*m : (kk+1)*m]
		brow := b.Data[kk*n : (kk+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := c.Data[i*n : (i+1)*n]
			for j := range brow {
				crow[j] += av * brow[j]
			}
		}
	}
	return c
}

// MatMulABT computes C = A×Bᵀ for A (m×k) and B (n×k).
func MatMulABT(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("tensor: matmulABT shape mismatch %v × %v", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[0]
	c := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			sum := 0.0
			for kk := range arow {
				sum += arow[kk] * brow[kk]
			}
			crow[j] = sum
		}
	}
	return c
}
