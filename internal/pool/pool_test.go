package pool

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// TestMapEqualsSerial: pool.Map must compute exactly what a serial loop
// computes, in order, for any worker count.
func TestMapEqualsSerial(t *testing.T) {
	f := func(nRaw, wRaw uint8) bool {
		n := int(nRaw) % 100
		workers := int(wRaw)%8 + 1
		p := New(workers)
		out := make([]int, n)
		err := p.Map(n, func(i int) error {
			out[i] = i * i
			return nil
		})
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if out[i] != i*i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMapSliceOrderPreserved(t *testing.T) {
	p := New(4)
	in := make([]int, 57)
	for i := range in {
		in[i] = i
	}
	out, err := MapSlice(p, in, func(v int) (string, error) {
		return fmt.Sprintf("#%d", v), nil
	})
	if err != nil {
		t.Fatalf("map: %v", err)
	}
	for i, s := range out {
		if s != fmt.Sprintf("#%d", i) {
			t.Fatalf("out[%d] = %q", i, s)
		}
	}
}

func TestErrorPropagation(t *testing.T) {
	p := New(3)
	sentinel := errors.New("boom")
	err := p.Map(20, func(i int) error {
		if i == 7 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
}

// TestPanicContained: a panicking task must surface as an error, not
// crash the process.
func TestPanicContained(t *testing.T) {
	p := New(2)
	err := p.Map(5, func(i int) error {
		if i == 3 {
			panic("worker exploded")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected panic to become an error")
	}
}

// TestAllItemsRunOnce even with more workers than items.
func TestAllItemsRunOnce(t *testing.T) {
	p := New(16)
	var count int64
	seen := make([]int64, 5)
	err := p.Map(5, func(i int) error {
		atomic.AddInt64(&count, 1)
		atomic.AddInt64(&seen[i], 1)
		return nil
	})
	if err != nil {
		t.Fatalf("map: %v", err)
	}
	if count != 5 {
		t.Fatalf("ran %d tasks, want 5", count)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("task %d ran %d times", i, c)
		}
	}
}

func TestZeroItemsNoop(t *testing.T) {
	if err := New(4).Map(0, func(int) error { t.Fatal("should not run"); return nil }); err != nil {
		t.Fatalf("empty map: %v", err)
	}
}

func TestDefaultWorkerCount(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("default pool has no workers")
	}
	if New(-3).Workers() < 1 {
		t.Fatal("negative request has no workers")
	}
	if New(5).Workers() != 5 {
		t.Fatal("explicit worker count ignored")
	}
}

func TestMapSliceErrorReturnsNil(t *testing.T) {
	p := New(2)
	_, err := MapSlice(p, []int{1, 2, 3}, func(v int) (int, error) {
		if v == 2 {
			return 0, errors.New("bad item")
		}
		return v, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
}
