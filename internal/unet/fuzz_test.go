package unet

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// FuzzLoadCheckpoint throws adversarial checkpoint streams at Load and
// asserts the contract: it never panics, and every failure is a typed
// error (ErrBadCheckpoint for malformed content, or a plain error for
// I/O) — so a corrupted checkpoint on a production node degrades into a
// diagnosable refusal, not a crash. Seeds cover the three canonical
// corruptions: malformed magic, truncated gob, bogus version/precision
// byte.
func FuzzLoadCheckpoint(f *testing.F) {
	// A genuine checkpoint to mutate from.
	m, err := New[float64](Config{Depth: 1, BaseChannels: 2, InChannels: 3, Classes: 3, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	var good bytes.Buffer
	if err := m.Save(&good); err != nil {
		f.Fatal(err)
	}
	valid := good.Bytes()

	// Malformed magic.
	f.Add([]byte("SEAICE-UNET-XKPT\x02garbage"))
	// Truncated gob: header intact, payload cut mid-stream.
	f.Add(valid[:len(ckptMagic)+7])
	f.Add(valid[:len(valid)/2])
	// Bogus version/precision byte after the magic text.
	bogus := append([]byte(nil), valid...)
	bogus[len(ckptMagic)-1] = 0x7f
	f.Add(bogus)
	// Bare garbage (legacy-gob path), empty, and magic-only streams.
	f.Add([]byte("not a checkpoint at all"))
	f.Add([]byte{})
	f.Add([]byte(ckptMagic))
	// A legacy-path gob with absurd claimed lengths.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x7f, 0x01, 0x02})

	f.Fuzz(func(t *testing.T, data []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Load panicked on %d-byte input: %v", len(data), r)
			}
		}()
		for _, load := range []func() error{
			func() error { _, err := Load[float64](bytes.NewReader(data)); return err },
			func() error { _, err := Load[float32](bytes.NewReader(data)); return err },
		} {
			err := load()
			if err == nil {
				continue // a mutation may still be a valid checkpoint
			}
			// Every failure must be typed or an honest I/O error —
			// never an internal panic-turned-string.
			if !errors.Is(err, ErrBadCheckpoint) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
				if !strings.HasPrefix(err.Error(), "unet:") {
					t.Fatalf("untyped load error: %v", err)
				}
			}
		}
	})
}

// TestLoadTypedErrors pins the ErrBadCheckpoint contract on the three
// canonical corruptions without needing the fuzz engine.
func TestLoadTypedErrors(t *testing.T) {
	m, err := New[float64](Config{Depth: 1, BaseChannels: 2, InChannels: 3, Classes: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var good bytes.Buffer
	if err := m.Save(&good); err != nil {
		t.Fatal(err)
	}
	valid := good.Bytes()

	bogusVersion := append([]byte(nil), valid...)
	bogusVersion[len(ckptMagic)-1] = 0x09

	for name, data := range map[string][]byte{
		"malformed magic": []byte("SEAICE-UNET-XKPT\x02" + string(valid[len(ckptMagic):])),
		"truncated gob":   valid[:len(valid)-11],
		"bogus version":   bogusVersion,
		"garbage":         []byte("ceci n'est pas un checkpoint"),
	} {
		if _, err := Load[float64](bytes.NewReader(data)); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("%s: Load = %v, want ErrBadCheckpoint", name, err)
		}
	}

	// And the happy path still loads.
	if _, err := Load[float64](bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid checkpoint failed to load: %v", err)
	}
}
