package autolabel

import (
	"fmt"

	"seaice/internal/colorspace"
	"seaice/internal/raster"
)

// Calibrate derives HSV value-band thresholds from a labeled sample —
// the paper's stated future work: "for the partial night season of the
// Antarctic, we had to change the color threshold brightness values
// manually … the same color limits may not work for different regions"
// (§IV-B2). Given imagery with reference labels (a few manually labeled
// scenes of the new region/season), it computes per-class brightness
// distributions and places each class boundary at the crossing point
// that minimizes misassigned pixels between the adjacent classes — the
// two-class Bayes threshold on the empirical histograms.
//
// The returned Thresholds keep the paper's structure (hue and saturation
// unconstrained, contiguous value bands) and satisfy Validate.
func Calibrate(images []*raster.RGB, labels []*raster.Labels) (Thresholds, error) {
	if len(images) == 0 || len(images) != len(labels) {
		return Thresholds{}, fmt.Errorf("autolabel: calibrate needs equal nonzero images (%d) and labels (%d)", len(images), len(labels))
	}

	// Per-class brightness histograms.
	var hist [raster.NumClasses][256]int64
	var count [raster.NumClasses]int64
	for k := range images {
		img, lab := images[k], labels[k]
		if img.W != lab.W || img.H != lab.H {
			return Thresholds{}, fmt.Errorf("autolabel: calibrate pair %d size mismatch %dx%d vs %dx%d", k, img.W, img.H, lab.W, lab.H)
		}
		for i := 0; i < img.W*img.H; i++ {
			v := colorspace.RGBToHSV(img.Pix[3*i], img.Pix[3*i+1], img.Pix[3*i+2]).V
			c := lab.Pix[i]
			hist[c][v]++
			count[c]++
		}
	}
	for c := raster.Class(0); c < raster.NumClasses; c++ {
		if count[c] == 0 {
			return Thresholds{}, fmt.Errorf("autolabel: calibration sample has no %v pixels", c)
		}
	}

	waterCeil := bayesBoundary(hist[raster.ClassWater], hist[raster.ClassThinIce])
	thinCeil := bayesBoundary(hist[raster.ClassThinIce], hist[raster.ClassThickIce])
	if waterCeil >= thinCeil {
		return Thresholds{}, fmt.Errorf("autolabel: degenerate calibration (water ceiling %d ≥ thin ceiling %d)", waterCeil, thinCeil)
	}

	anyHue := uint8(185)
	t := Thresholds{
		Water: colorspace.Bounds{
			Lo: colorspace.HSV{V: 0},
			Hi: colorspace.HSV{H: anyHue, S: 255, V: uint8(waterCeil)},
		},
		ThinIce: colorspace.Bounds{
			Lo: colorspace.HSV{V: uint8(waterCeil + 1)},
			Hi: colorspace.HSV{H: anyHue, S: 255, V: uint8(thinCeil)},
		},
		ThickIce: colorspace.Bounds{
			Lo: colorspace.HSV{V: uint8(thinCeil + 1)},
			Hi: colorspace.HSV{H: anyHue, S: 255, V: 255},
		},
	}
	if err := t.Validate(); err != nil {
		return Thresholds{}, fmt.Errorf("autolabel: calibration produced invalid bands: %w", err)
	}
	return t, nil
}

// bayesBoundary returns a value t in [0,254] minimizing
// (darker-class pixels above t) + (brighter-class pixels at or below t) —
// the empirical two-class decision boundary. When the classes are
// separated by an empty brightness gap, every t inside the gap is
// optimal; the midpoint of the optimal plateau is chosen to maximize the
// margin against distribution shift.
func bayesBoundary(dark, bright [256]int64) int {
	var darkTotal int64
	for _, n := range dark {
		darkTotal += n
	}
	first, last, bestErr := 0, 0, int64(1)<<62
	var darkBelow, brightBelow int64
	for t := 0; t < 255; t++ {
		darkBelow += dark[t]
		brightBelow += bright[t]
		misses := (darkTotal - darkBelow) + brightBelow
		if misses < bestErr {
			bestErr = misses
			first, last = t, t
		} else if misses == bestErr {
			last = t
		}
	}
	return (first + last) / 2
}

// ValueHistogram exposes the per-class brightness distribution of a
// labeled sample, for diagnostics and the threshold-transfer example.
func ValueHistogram(img *raster.RGB, lab *raster.Labels) ([raster.NumClasses][256]int64, error) {
	var hist [raster.NumClasses][256]int64
	if img.W != lab.W || img.H != lab.H {
		return hist, fmt.Errorf("autolabel: histogram size mismatch")
	}
	for i := 0; i < img.W*img.H; i++ {
		v := colorspace.RGBToHSV(img.Pix[3*i], img.Pix[3*i+1], img.Pix[3*i+2]).V
		hist[lab.Pix[i]][v]++
	}
	return hist, nil
}

// Quantile returns the q-quantile (0..1) of a brightness histogram.
func Quantile(h [256]int64, q float64) uint8 {
	var total int64
	for _, n := range h {
		total += n
	}
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	var cum int64
	for v := 0; v < 256; v++ {
		cum += h[v]
		if cum > target {
			return uint8(v)
		}
	}
	return 255
}
