// Package mapreduce is a PySpark-like data-parallel engine: datasets are
// partitioned, transformations (Map, Filter) are lazy and only recorded in
// the lineage, and actions (Collect, Reduce, Count) trigger a stage that
// executes every partition on a Runner. It reproduces the execution
// semantics the paper relies on for distributed auto-labeling (§III-B:
// "we create a Spark user-defined function for our auto-labeling method,
// then apply the Map transformation … the Reduce function then collects
// all the auto-labeled S2 data from multiple machines").
//
// Two runners are provided in runner.go: LocalRunner executes partitions
// on real goroutines (correctness; real speedup where cores exist), and
// SimRunner executes them on the simulated Dataproc cluster of
// internal/cluster with the calibrated Table II cost models — only the
// clock is virtual, the computation is real.
//
// Parallelism/bit-identity guarantees: partitioning is deterministic in
// (dataset length, partition count), partition results are reassembled
// in partition order, and Reduce folds partials in that same fixed
// order — so Collect/Reduce outputs are identical on either runner at
// any parallelism.
package mapreduce

import (
	"errors"
	"fmt"
)

// Dataset is a lazily evaluated, partitioned collection. The compute
// function materializes one partition by applying the recorded lineage to
// the source data.
type Dataset[T any] struct {
	numParts int
	lineage  string
	compute  func(p int) ([]T, error)
}

// NumPartitions reports the partition count.
func (d *Dataset[T]) NumPartitions() int { return d.numParts }

// Lineage describes the transformation chain, for diagnostics.
func (d *Dataset[T]) Lineage() string { return d.lineage }

// Parallelize distributes items across numParts partitions in contiguous
// ranges (Spark's default slicing for parallelize).
func Parallelize[T any](items []T, numParts int) (*Dataset[T], error) {
	if numParts <= 0 {
		return nil, fmt.Errorf("mapreduce: numParts must be positive, got %d", numParts)
	}
	n := len(items)
	return &Dataset[T]{
		numParts: numParts,
		lineage:  fmt.Sprintf("parallelize[%d items, %d parts]", n, numParts),
		compute: func(p int) ([]T, error) {
			lo := p * n / numParts
			hi := (p + 1) * n / numParts
			return items[lo:hi], nil
		},
	}, nil
}

// Generate creates a dataset whose items are produced on demand by gen —
// the analogue of reading source imagery from distributed storage. Each
// partition generates its contiguous index range.
func Generate[T any](n, numParts int, gen func(i int) (T, error)) (*Dataset[T], error) {
	if numParts <= 0 {
		return nil, fmt.Errorf("mapreduce: numParts must be positive, got %d", numParts)
	}
	if n < 0 {
		return nil, fmt.Errorf("mapreduce: negative item count %d", n)
	}
	return &Dataset[T]{
		numParts: numParts,
		lineage:  fmt.Sprintf("generate[%d items, %d parts]", n, numParts),
		compute: func(p int) ([]T, error) {
			lo := p * n / numParts
			hi := (p + 1) * n / numParts
			out := make([]T, 0, hi-lo)
			for i := lo; i < hi; i++ {
				v, err := gen(i)
				if err != nil {
					return nil, fmt.Errorf("mapreduce: generate item %d: %w", i, err)
				}
				out = append(out, v)
			}
			return out, nil
		},
	}, nil
}

// Map records a lazy element-wise transformation (the paper's UDF applied
// with the Map transformation). No work happens until an action runs.
func Map[T, U any](d *Dataset[T], fn func(T) (U, error)) *Dataset[U] {
	return &Dataset[U]{
		numParts: d.numParts,
		lineage:  d.lineage + " → map",
		compute: func(p int) ([]U, error) {
			in, err := d.compute(p)
			if err != nil {
				return nil, err
			}
			out := make([]U, len(in))
			for i, v := range in {
				u, err := fn(v)
				if err != nil {
					return nil, fmt.Errorf("mapreduce: map: %w", err)
				}
				out[i] = u
			}
			return out, nil
		},
	}
}

// Filter records a lazy predicate transformation.
func Filter[T any](d *Dataset[T], keep func(T) bool) *Dataset[T] {
	return &Dataset[T]{
		numParts: d.numParts,
		lineage:  d.lineage + " → filter",
		compute: func(p int) ([]T, error) {
			in, err := d.compute(p)
			if err != nil {
				return nil, err
			}
			out := make([]T, 0, len(in))
			for _, v := range in {
				if keep(v) {
					out = append(out, v)
				}
			}
			return out, nil
		},
	}
}

// ErrEmptyDataset is returned by Reduce on a dataset with no elements.
var ErrEmptyDataset = errors.New("mapreduce: reduce of empty dataset")

// Collect runs the lineage on every partition via the runner and returns
// all elements in partition order — the action the paper's workflow uses
// to gather auto-labeled tiles at the driver.
func Collect[T any](d *Dataset[T], r Runner) ([]T, StageStats, error) {
	parts := make([][]T, d.numParts)
	stats, err := r.RunStage(d.numParts, func(p int) (int, error) {
		out, err := d.compute(p)
		if err != nil {
			return 0, err
		}
		parts[p] = out
		return len(out), nil
	})
	if err != nil {
		return nil, stats, err
	}
	var all []T
	for _, p := range parts {
		all = append(all, p...)
	}
	return all, stats, nil
}

// Reduce folds every partition with fn on the executors, then folds the
// per-partition results at the driver. fn must be associative.
func Reduce[T any](d *Dataset[T], r Runner, fn func(a, b T) T) (T, StageStats, error) {
	type partial struct {
		ok  bool
		val T
	}
	partials := make([]partial, d.numParts)
	stats, err := r.RunStage(d.numParts, func(p int) (int, error) {
		items, err := d.compute(p)
		if err != nil {
			return 0, err
		}
		if len(items) == 0 {
			return 0, nil
		}
		acc := items[0]
		for _, v := range items[1:] {
			acc = fn(acc, v)
		}
		partials[p] = partial{ok: true, val: acc}
		return len(items), nil
	})
	var zero T
	if err != nil {
		return zero, stats, err
	}
	acc := zero
	have := false
	for _, p := range partials {
		if !p.ok {
			continue
		}
		if !have {
			acc, have = p.val, true
		} else {
			acc = fn(acc, p.val)
		}
	}
	if !have {
		return zero, stats, ErrEmptyDataset
	}
	return acc, stats, nil
}

// Count returns the number of elements.
func Count[T any](d *Dataset[T], r Runner) (int, StageStats, error) {
	counts := make([]int, d.numParts)
	stats, err := r.RunStage(d.numParts, func(p int) (int, error) {
		items, err := d.compute(p)
		if err != nil {
			return 0, err
		}
		counts[p] = len(items)
		return len(items), nil
	})
	if err != nil {
		return 0, stats, err
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	return total, stats, nil
}
