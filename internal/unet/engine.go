package unet

import (
	"seaice/internal/raster"
	"seaice/internal/tensor"
)

// Predictor is one serving worker's forward engine: a stateful,
// buffer-owning session that classifies tile batches. It is NOT safe for
// concurrent use — serving concurrency comes from one Predictor per
// worker (see Session and QuantSession, the two implementations).
type Predictor interface {
	PredictTiles(tiles []*raster.RGB) ([]*raster.Labels, error)
}

// Engine is a loaded model of any precision rung — f64 master, f32
// tolerance-scoped, or int8 quantized — abstracted to what the serving
// stack needs: mint per-worker predictors and describe itself. Engines
// are comparable (pointer identity) so the batcher can key its session
// cache by engine.
type Engine interface {
	// NewPredictor builds a fresh single-worker inference session.
	NewPredictor() Predictor
	// Config returns the architecture the engine was built from.
	Config() Config
	// Precision names the engine's rung: "f64", "f32", or "int8".
	Precision() string
}

// NewPredictor implements Engine: a float model serves through its
// fused-kernel Session.
func (m *Model[S]) NewPredictor() Predictor { return NewSession(m) }

// Precision implements Engine.
func (m *Model[S]) Precision() string {
	if tensor.IsF32[S]() {
		return "f32"
	}
	return "f64"
}
