// Package metrics implements the evaluation measures the paper reports:
// overall classification accuracy, per-class and macro-averaged precision,
// recall and F1, the column-normalized confusion matrix of Fig 13, and the
// Structural Similarity Index (SSIM) used to validate auto-labels against
// manual labels (§IV-B2).
//
// All measures accumulate in a fixed, input-defined order — never over a
// map or a worker pool — so every reported number is bit-reproducible
// across runs and platforms.
package metrics

import (
	"fmt"
	"math"
	"strings"

	"seaice/internal/raster"
)

// Confusion is a square confusion matrix: Count[a][b] is the number of
// pixels whose true class is a and predicted class is b.
type Confusion struct {
	N     int
	Count [][]int64
}

// NewConfusion returns an n-class confusion matrix.
func NewConfusion(n int) *Confusion {
	c := &Confusion{N: n, Count: make([][]int64, n)}
	for i := range c.Count {
		c.Count[i] = make([]int64, n)
	}
	return c
}

// ClassRangeError reports an observation whose class byte lies outside
// the matrix — a corrupt prediction or truth value. Evaluation surfaces
// it as a verdict instead of an index panic, matching the repo's
// silent-corruption posture: bad bytes are diagnosed, never trusted.
type ClassRangeError struct {
	Class raster.Class // the offending value
	N     int          // number of classes the matrix holds
}

func (e *ClassRangeError) Error() string {
	return fmt.Sprintf("metrics: class %d outside %d-class confusion matrix (corrupt label byte?)", int(e.Class), e.N)
}

// Add records one observation with true class t and predicted class p.
// Out-of-range classes return a *ClassRangeError and leave the matrix
// unchanged.
func (c *Confusion) Add(t, p raster.Class) error {
	if int(t) >= c.N {
		return &ClassRangeError{Class: t, N: c.N}
	}
	if int(p) >= c.N {
		return &ClassRangeError{Class: p, N: c.N}
	}
	c.Count[t][p]++
	return nil
}

// AddLabels accumulates every pixel of a predicted label map against the
// ground truth. The maps must be the same size; an out-of-range class
// byte in either map aborts with a *ClassRangeError, leaving the counts
// accumulated so far in place.
func (c *Confusion) AddLabels(truth, pred *raster.Labels) error {
	if truth.W != pred.W || truth.H != pred.H {
		return fmt.Errorf("metrics: label size mismatch %dx%d vs %dx%d", truth.W, truth.H, pred.W, pred.H)
	}
	n := raster.Class(c.N)
	for i := range truth.Pix {
		if truth.Pix[i] >= n || pred.Pix[i] >= n {
			if truth.Pix[i] >= n {
				return &ClassRangeError{Class: truth.Pix[i], N: c.N}
			}
			return &ClassRangeError{Class: pred.Pix[i], N: c.N}
		}
		c.Count[truth.Pix[i]][pred.Pix[i]]++
	}
	return nil
}

// Merge adds another confusion matrix (same size) into this one.
func (c *Confusion) Merge(o *Confusion) error {
	if c.N != o.N {
		return fmt.Errorf("metrics: merge size mismatch %d vs %d", c.N, o.N)
	}
	for i := 0; i < c.N; i++ {
		for j := 0; j < c.N; j++ {
			c.Count[i][j] += o.Count[i][j]
		}
	}
	return nil
}

// Total returns the number of observations recorded.
func (c *Confusion) Total() int64 {
	var t int64
	for i := range c.Count {
		for j := range c.Count[i] {
			t += c.Count[i][j]
		}
	}
	return t
}

// Accuracy is the fraction of observations on the diagonal.
func (c *Confusion) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	var d int64
	for i := 0; i < c.N; i++ {
		d += c.Count[i][i]
	}
	return float64(d) / float64(t)
}

// Precision returns per-class precision: diag / column sum.
func (c *Confusion) Precision() []float64 {
	out := make([]float64, c.N)
	for j := 0; j < c.N; j++ {
		var col int64
		for i := 0; i < c.N; i++ {
			col += c.Count[i][j]
		}
		if col > 0 {
			out[j] = float64(c.Count[j][j]) / float64(col)
		}
	}
	return out
}

// Recall returns per-class recall: diag / row sum.
func (c *Confusion) Recall() []float64 {
	out := make([]float64, c.N)
	for i := 0; i < c.N; i++ {
		var row int64
		for j := 0; j < c.N; j++ {
			row += c.Count[i][j]
		}
		if row > 0 {
			out[i] = float64(c.Count[i][i]) / float64(row)
		}
	}
	return out
}

// F1 returns per-class F1 scores.
func (c *Confusion) F1() []float64 {
	p := c.Precision()
	r := c.Recall()
	out := make([]float64, c.N)
	for i := range out {
		if p[i]+r[i] > 0 {
			out[i] = 2 * p[i] * r[i] / (p[i] + r[i])
		}
	}
	return out
}

// macro averages a per-class vector over classes that actually occur.
func (c *Confusion) macro(v []float64) float64 {
	sum, n := 0.0, 0
	for i := 0; i < c.N; i++ {
		var row int64
		for j := 0; j < c.N; j++ {
			row += c.Count[i][j]
		}
		if row > 0 {
			sum += v[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MacroPrecision averages precision over present classes.
func (c *Confusion) MacroPrecision() float64 { return c.macro(c.Precision()) }

// MacroRecall averages recall over present classes.
func (c *Confusion) MacroRecall() float64 { return c.macro(c.Recall()) }

// MacroF1 averages F1 over present classes.
func (c *Confusion) MacroF1() float64 { return c.macro(c.F1()) }

// RowNormalized returns the matrix with each row scaled to percentages
// (each true class sums to 100%), the presentation of Fig 13 where the
// diagonal holds per-class accuracy.
func (c *Confusion) RowNormalized() [][]float64 {
	out := make([][]float64, c.N)
	for i := 0; i < c.N; i++ {
		out[i] = make([]float64, c.N)
		var row int64
		for j := 0; j < c.N; j++ {
			row += c.Count[i][j]
		}
		if row == 0 {
			continue
		}
		for j := 0; j < c.N; j++ {
			out[i][j] = 100 * float64(c.Count[i][j]) / float64(row)
		}
	}
	return out
}

// String renders the row-normalized matrix with class names, in the layout
// of Fig 13.
func (c *Confusion) String() string {
	names := make([]string, c.N)
	for i := range names {
		names[i] = raster.Class(i).String()
	}
	norm := c.RowNormalized()
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "true\\pred")
	for _, n := range names {
		fmt.Fprintf(&b, "%12s", n)
	}
	b.WriteByte('\n')
	for i := 0; i < c.N; i++ {
		fmt.Fprintf(&b, "%-12s", names[i])
		for j := 0; j < c.N; j++ {
			fmt.Fprintf(&b, "%11.2f%%", norm[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SSIM computes the mean Structural Similarity Index between two 8-bit
// rasters using the standard parameters (Wang et al.): an 8×8 sliding
// window (stride 4 for tractability on large scenes), K1=0.01, K2=0.03,
// L=255. Returns a value in [-1, 1]; identical images score 1.
func SSIM(a, b *raster.Gray) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("metrics: SSIM size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	const (
		win    = 8
		stride = 4
		c1     = (0.01 * 255) * (0.01 * 255)
		c2     = (0.03 * 255) * (0.03 * 255)
	)
	if a.W < win || a.H < win {
		return 0, fmt.Errorf("metrics: SSIM image %dx%d smaller than %d window", a.W, a.H, win)
	}
	var total float64
	var n int
	for y := 0; y+win <= a.H; y += stride {
		for x := 0; x+win <= a.W; x += stride {
			var sa, sb, saa, sbb, sab float64
			for dy := 0; dy < win; dy++ {
				off := (y+dy)*a.W + x
				for dx := 0; dx < win; dx++ {
					va := float64(a.Pix[off+dx])
					vb := float64(b.Pix[off+dx])
					sa += va
					sb += vb
					saa += va * va
					sbb += vb * vb
					sab += va * vb
				}
			}
			np := float64(win * win)
			ma := sa / np
			mb := sb / np
			va := saa/np - ma*ma
			vb := sbb/np - mb*mb
			cab := sab/np - ma*mb
			s := ((2*ma*mb + c1) * (2*cab + c2)) / ((ma*ma + mb*mb + c1) * (va + vb + c2))
			total += s
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("metrics: SSIM produced no windows")
	}
	return total / float64(n), nil
}

// SSIMRGB averages SSIM over the three channels of two RGB rasters, the
// form used to compare rendered auto-label maps against manual ones.
func SSIMRGB(a, b *raster.RGB) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("metrics: SSIMRGB size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	sum := 0.0
	for ch := 0; ch < 3; ch++ {
		ga := raster.NewGray(a.W, a.H)
		gb := raster.NewGray(b.W, b.H)
		for i := 0; i < a.W*a.H; i++ {
			ga.Pix[i] = a.Pix[3*i+ch]
			gb.Pix[i] = b.Pix[3*i+ch]
		}
		s, err := SSIM(ga, gb)
		if err != nil {
			return 0, err
		}
		sum += s
	}
	return sum / 3, nil
}

// MSE returns the mean squared error between two rasters.
func MSE(a, b *raster.Gray) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("metrics: MSE size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	if len(a.Pix) == 0 {
		return 0, nil
	}
	var sum float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		sum += d * d
	}
	return sum / float64(len(a.Pix)), nil
}

// PSNR returns the peak signal-to-noise ratio in dB (infinite for
// identical images).
func PSNR(a, b *raster.Gray) (float64, error) {
	mse, err := MSE(a, b)
	if err != nil {
		return 0, err
	}
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}

// PixelAccuracy is a convenience wrapper returning the fraction of
// matching pixels between two label maps.
func PixelAccuracy(truth, pred *raster.Labels) (float64, error) {
	c := NewConfusion(int(raster.NumClasses))
	if err := c.AddLabels(truth, pred); err != nil {
		return 0, err
	}
	return c.Accuracy(), nil
}
