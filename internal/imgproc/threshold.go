package imgproc

import (
	"fmt"

	"seaice/internal/raster"
)

// ThresholdKind selects the thresholding rule, mirroring OpenCV's
// cv2.threshold type constants the paper's filter uses.
type ThresholdKind int

const (
	// ThreshBinary maps v > t to maxval and everything else to 0.
	ThreshBinary ThresholdKind = iota
	// ThreshBinaryInv maps v > t to 0 and everything else to maxval.
	ThreshBinaryInv
	// ThreshTrunc caps values above t at t and keeps the rest.
	ThreshTrunc
	// ThreshToZero zeroes values ≤ t and keeps the rest.
	ThreshToZero
	// ThreshToZeroInv keeps values ≤ t and zeroes the rest.
	ThreshToZeroInv
)

// String names the threshold kind for diagnostics.
func (k ThresholdKind) String() string {
	switch k {
	case ThreshBinary:
		return "binary"
	case ThreshBinaryInv:
		return "binary-inv"
	case ThreshTrunc:
		return "trunc"
	case ThreshToZero:
		return "tozero"
	case ThreshToZeroInv:
		return "tozero-inv"
	}
	return fmt.Sprintf("threshold(%d)", int(k))
}

// Threshold applies the selected rule with threshold t and maximum value
// maxval (used by the binary kinds).
func Threshold(src *raster.Gray, t, maxval uint8, kind ThresholdKind) *raster.Gray {
	dst := raster.NewGray(src.W, src.H)
	for i, v := range src.Pix {
		switch kind {
		case ThreshBinary:
			if v > t {
				dst.Pix[i] = maxval
			}
		case ThreshBinaryInv:
			if v <= t {
				dst.Pix[i] = maxval
			}
		case ThreshTrunc:
			if v > t {
				dst.Pix[i] = t
			} else {
				dst.Pix[i] = v
			}
		case ThreshToZero:
			if v > t {
				dst.Pix[i] = v
			}
		case ThreshToZeroInv:
			if v <= t {
				dst.Pix[i] = v
			}
		}
	}
	return dst
}

// Histogram returns the 256-bin intensity histogram.
func Histogram(src *raster.Gray) [256]int {
	var h [256]int
	for _, v := range src.Pix {
		h[v]++
	}
	return h
}

// OtsuThreshold computes Otsu's optimal global threshold: the level that
// maximizes between-class variance of the bimodal intensity histogram.
// The returned threshold lies within the histogram's occupied range.
func OtsuThreshold(src *raster.Gray) uint8 {
	hist := Histogram(src)
	total := len(src.Pix)
	if total == 0 {
		return 0
	}

	var sum float64
	for v := 0; v < 256; v++ {
		sum += float64(v) * float64(hist[v])
	}

	var sumB, wB float64
	best := 0.0
	threshold := 0
	for v := 0; v < 256; v++ {
		wB += float64(hist[v])
		if wB == 0 {
			continue
		}
		wF := float64(total) - wB
		if wF == 0 {
			break
		}
		sumB += float64(v) * float64(hist[v])
		mB := sumB / wB
		mF := (sum - sumB) / wF
		between := wB * wF * (mB - mF) * (mB - mF)
		if between > best {
			best = between
			threshold = v
		}
	}
	return uint8(threshold)
}

// OtsuBinary thresholds with the Otsu level and the binary rule, the
// combination the cloud filter uses to separate bright veils from surface.
func OtsuBinary(src *raster.Gray) (*raster.Gray, uint8) {
	t := OtsuThreshold(src)
	return Threshold(src, t, 255, ThreshBinary), t
}

// Normalize linearly rescales the raster so its minimum maps to lo and its
// maximum to hi (OpenCV NORM_MINMAX). A constant image maps to lo.
func Normalize(src *raster.Gray, lo, hi uint8) *raster.Gray {
	if len(src.Pix) == 0 {
		return src.Clone()
	}
	mn, mx := src.Pix[0], src.Pix[0]
	for _, v := range src.Pix {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	dst := raster.NewGray(src.W, src.H)
	if mx == mn {
		dst.Fill(lo)
		return dst
	}
	scale := float64(hi-lo) / float64(mx-mn)
	for i, v := range src.Pix {
		dst.Pix[i] = uint8(float64(lo) + float64(v-mn)*scale + 0.5)
	}
	return dst
}
