package unet

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestCheckpointParamsRoundTrip saves a model and reloads it, expecting
// every named parameter back bit-for-bit.
func TestCheckpointParamsRoundTrip(t *testing.T) {
	m, err := New[float64](FastConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load[float64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config() != m.Config() {
		t.Fatalf("config %+v, want %+v", got.Config(), m.Config())
	}
	a, b := m.Params(), got.Params()
	if len(a) != len(b) {
		t.Fatalf("param count %d, want %d", len(b), len(a))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("param %d name %q, want %q", i, b[i].Name, a[i].Name)
		}
		for j := range a[i].W.Data {
			if a[i].W.Data[j] != b[i].W.Data[j] {
				t.Fatalf("param %s[%d] differs after round trip", a[i].Name, j)
			}
		}
	}
}

// TestCheckpointFileRoundTrip exercises SaveFile/LoadFile and confirms
// the reloaded model predicts identically.
func TestCheckpointFileRoundTrip(t *testing.T) {
	m, err := New[float64](FastConfig(22))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "unet.ckpt")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile[float64](path)
	if err != nil {
		t.Fatal(err)
	}
	x := randInput(1, 3, 16, 16, 5)
	want, have := m.Predict(x), got.Predict(x)
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("pixel %d: reloaded model predicts %d, original %d", i, have[i], want[i])
		}
	}
}

// TestLoadFileCorrupt makes sure damaged checkpoints come back as wrapped
// errors, not panics — the serving registry loads checkpoints at startup
// and must fail cleanly.
func TestLoadFileCorrupt(t *testing.T) {
	m, err := New[float64](FastConfig(23))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	dir := t.TempDir()
	cases := map[string][]byte{
		"empty.ckpt":     {},
		"truncated.ckpt": full[:len(full)/2],
		"garbage.ckpt":   []byte("definitely not a gob stream"),
	}
	for name, data := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadFile[float64](path); err == nil {
			t.Errorf("%s: expected error, got nil", name)
		}
	}

	if _, err := LoadFile[float64](filepath.Join(dir, "missing.ckpt")); err == nil {
		t.Error("missing file: expected error, got nil")
	}
}
